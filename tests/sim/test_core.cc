/**
 * @file
 * Core model tests: programs execute to completion with correct
 * functional values, witness recording, forwarding and squash
 * behaviour, on the full System.
 */

#include <gtest/gtest.h>

#include "sim/system.hh"

using namespace mcversi::sim;
using mcversi::Addr;
using mcversi::Pid;
using mcversi::WriteVal;

namespace {

Program
makeProgram(std::initializer_list<ProgInstr> instrs)
{
    Program p;
    p.instrs = instrs;
    p.memSize = 1024;
    p.stride = 16;
    p.mapLogical = [](Addr logical) { return 0x1000 + logical; };
    return p;
}

ProgInstr
instr(InstrKind kind, Addr addr, Addr logical = 0)
{
    ProgInstr i;
    i.kind = kind;
    i.addr = addr;
    i.logical = logical;
    return i;
}

/** Run all cores to completion; returns total events processed. */
std::uint64_t
runAll(System &sys)
{
    for (Pid p = 0; p < static_cast<Pid>(sys.numCores()); ++p)
        sys.core(p).start(sys.eventQueue().now() + 5);
    return sys.runToQuiescence();
}

} // namespace

TEST(Core, EmptyProgramCompletesImmediately)
{
    System sys(SystemConfig{});
    sys.core(0).loadProgram(Program{});
    runAll(sys);
    EXPECT_TRUE(sys.core(0).done());
}

TEST(Core, StoreThenLoadForwardsAndRecords)
{
    System sys(SystemConfig{});
    sys.core(0).loadProgram(makeProgram({
        instr(InstrKind::Store, 0x1000),
        instr(InstrKind::Load, 0x1000),
    }));
    runAll(sys);
    ASSERT_TRUE(sys.core(0).done());
    EXPECT_GE(sys.core(0).forwardedLoads(), 1u);

    auto &ew = sys.witness();
    ew.finalize();
    // Two events: the write and the read; the read sources the write.
    const auto &events = ew.threadEvents(0);
    ASSERT_EQ(events.size(), 2u);
    const auto w = events[0];
    const auto r = events[1];
    EXPECT_TRUE(ew.event(w).isWrite());
    EXPECT_TRUE(ew.event(r).isRead());
    EXPECT_EQ(ew.rfSource(r), w);
}

TEST(Core, LoadOfColdMemoryReadsZero)
{
    System sys(SystemConfig{});
    sys.core(0).loadProgram(makeProgram({
        instr(InstrKind::Load, 0x2000),
    }));
    runAll(sys);
    auto &ew = sys.witness();
    ew.finalize();
    const auto &events = ew.threadEvents(0);
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(ew.event(events[0]).value, mcversi::kInitVal);
}

TEST(Core, UniqueWriteValues)
{
    System sys(SystemConfig{});
    sys.core(0).loadProgram(makeProgram({
        instr(InstrKind::Store, 0x1000),
        instr(InstrKind::Store, 0x1010),
        instr(InstrKind::Store, 0x1000),
    }));
    sys.core(1).loadProgram(makeProgram({
        instr(InstrKind::Store, 0x1020),
    }));
    runAll(sys);
    auto &ew = sys.witness();
    ew.finalize();
    std::set<WriteVal> values;
    for (const auto &ev : ew.events())
        if (ev.isWrite() && !ev.isInit())
            values.insert(ev.value);
    EXPECT_EQ(values.size(), 4u) << "write IDs must be globally unique";
}

TEST(Core, CrossCoreCommunicationVisible)
{
    System sys(SystemConfig{});
    // Core 0 stores; core 1 polls the same address. With one iteration
    // the read may see init or the store; both are fine -- the witness
    // must resolve either way.
    sys.core(0).loadProgram(makeProgram({
        instr(InstrKind::Store, 0x1000),
    }));
    sys.core(1).loadProgram(makeProgram({
        instr(InstrKind::Delay, 0),
        instr(InstrKind::Load, 0x1000),
    }));
    runAll(sys);
    auto &ew = sys.witness();
    ew.finalize();
    EXPECT_EQ(ew.anomaly(), mcversi::mc::WitnessAnomaly::None);
}

TEST(Core, RmwRecordsPairAndSquashes)
{
    System sys(SystemConfig{});
    sys.core(0).loadProgram(makeProgram({
        instr(InstrKind::Store, 0x1000),
        instr(InstrKind::Rmw, 0x1000),
        instr(InstrKind::Load, 0x1000),
    }));
    runAll(sys);
    auto &ew = sys.witness();
    ew.finalize();
    ASSERT_EQ(ew.rmwPairs().size(), 1u);
    const auto [r, w] = ew.rmwPairs()[0];
    // RMW read the store's value; the final load reads the RMW's.
    EXPECT_EQ(ew.coPredecessor(w), ew.rfSource(r));
    const auto &events = ew.threadEvents(0);
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(ew.rfSource(events[3]), w);
}

TEST(Core, FlushAndDelayComplete)
{
    System sys(SystemConfig{});
    ProgInstr delay = instr(InstrKind::Delay, 0);
    delay.delay = 12;
    sys.core(0).loadProgram(makeProgram({
        instr(InstrKind::Store, 0x1000),
        delay,
        instr(InstrKind::Flush, 0x1000),
        instr(InstrKind::Load, 0x1000),
    }));
    runAll(sys);
    EXPECT_TRUE(sys.core(0).done());
    auto &ew = sys.witness();
    ew.finalize();
    // The post-flush load re-fetches and still sees the stored value.
    const auto &events = ew.threadEvents(0);
    ASSERT_EQ(events.size(), 2u); // store + load (flush/delay: none)
    EXPECT_EQ(ew.event(events[1]).value, ew.event(events[0]).value);
}

TEST(Core, AddrDepLoadStaysInRegion)
{
    System sys(SystemConfig{});
    Program p;
    p.memSize = 256;
    p.stride = 16;
    p.mapLogical = [](Addr logical) { return 0x4000 + logical; };
    p.instrs.push_back(instr(InstrKind::Load, 0x4000, 0));
    p.instrs.push_back(instr(InstrKind::LoadAddrDep, 0x4010, 16));
    sys.core(0).loadProgram(p);
    runAll(sys);
    auto &ew = sys.witness();
    ew.finalize();
    const auto &events = ew.threadEvents(0);
    ASSERT_EQ(events.size(), 2u);
    const Addr dep_addr = ew.event(events[1]).addr;
    EXPECT_GE(dep_addr, 0x4000u);
    EXPECT_LT(dep_addr, 0x4000u + 256u);
    EXPECT_EQ(dep_addr % 16, 0u);
}

TEST(Core, ProgramOrderOfRecordedEventsMatchesSlots)
{
    System sys(SystemConfig{});
    sys.core(0).loadProgram(makeProgram({
        instr(InstrKind::Load, 0x1000),
        instr(InstrKind::Store, 0x1010),
        instr(InstrKind::Load, 0x1020),
        instr(InstrKind::Store, 0x1030),
    }));
    runAll(sys);
    auto &ew = sys.witness();
    ew.finalize();
    const auto &events = ew.threadEvents(0);
    ASSERT_EQ(events.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(ew.event(events[i]).iiid.poi,
                  static_cast<std::int32_t>(i));
}

TEST(Core, RestartSupportsNewIteration)
{
    System sys(SystemConfig{});
    sys.core(0).loadProgram(makeProgram({
        instr(InstrKind::Store, 0x1000),
        instr(InstrKind::Load, 0x1000),
    }));
    runAll(sys);
    const auto first_events = sys.witness().numEvents();
    sys.witness().reset();
    sys.resetProtocolState();
    sys.zeroMemory({0x1000});
    runAll(sys);
    EXPECT_EQ(sys.witness().numEvents(), first_events);
    sys.witness().finalize();
    EXPECT_EQ(sys.witness().anomaly(),
              mcversi::mc::WitnessAnomaly::None);
}

TEST(Core, DebugStateMentionsProgress)
{
    System sys(SystemConfig{});
    sys.core(0).loadProgram(makeProgram({
        instr(InstrKind::Load, 0x1000),
    }));
    runAll(sys);
    const std::string s = sys.core(0).debugState();
    EXPECT_NE(s.find("core0"), std::string::npos);
    EXPECT_NE(s.find("done=1"), std::string::npos);
}

TEST(Core, TsoccSystemRunsPrograms)
{
    SystemConfig cfg;
    cfg.protocol = Protocol::Tsocc;
    System sys(cfg);
    sys.core(0).loadProgram(makeProgram({
        instr(InstrKind::Store, 0x1000),
        instr(InstrKind::Load, 0x1000),
        instr(InstrKind::Rmw, 0x1010),
    }));
    sys.core(1).loadProgram(makeProgram({
        instr(InstrKind::Load, 0x1000),
        instr(InstrKind::Store, 0x1010),
    }));
    runAll(sys);
    EXPECT_TRUE(sys.core(0).done());
    EXPECT_TRUE(sys.core(1).done());
    sys.witness().finalize();
    EXPECT_EQ(sys.witness().anomaly(),
              mcversi::mc::WitnessAnomaly::None);
}
