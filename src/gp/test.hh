/**
 * @file
 * Test (chromosome) representation (§3.3).
 *
 * A test is a DAG of a constant number of nodes, with each disjoint
 * sub-graph representing one thread. Nodes are stored as a flat list of
 * 〈pid, op〉 tuples; the order of nodes within the list gives rise to the
 * code sequence of each thread. The flat representation makes both the
 * selective crossover and preservation of relative scheduling positions
 * efficient (paper §3.3).
 */

#ifndef MCVERSI_GP_TEST_HH
#define MCVERSI_GP_TEST_HH

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "gp/ops.hh"

namespace mcversi::gp {

/**
 * Static event identifier: identifies one MCM event of a test across all
 * iterations of a test-run. Encoded as nodeIndex * 2 + sub, where sub is
 * 0 for the read part and 1 for the write part of an instruction.
 */
using StaticEventId = std::int64_t;

constexpr StaticEventId
staticEventId(std::size_t node_index, int sub)
{
    return static_cast<StaticEventId>(node_index) * 2 + sub;
}

constexpr std::size_t
staticEventNode(StaticEventId sid)
{
    return static_cast<std::size_t>(sid / 2);
}

/** A test: fixed-length flat list of genes. */
class Test
{
  public:
    Test() = default;
    explicit Test(std::vector<Node> nodes) : nodes_(std::move(nodes)) {}

    std::size_t size() const { return nodes_.size(); }
    const Node &node(std::size_t i) const { return nodes_[i]; }
    Node &node(std::size_t i) { return nodes_[i]; }
    const std::vector<Node> &nodes() const { return nodes_; }

    /**
     * Node indices of each thread in code-sequence order.
     *
     * @param num_threads size of the returned per-thread table
     */
    std::vector<std::vector<std::size_t>>
    threadSlots(int num_threads) const;

    /** Number of memory operations (Algorithm 1's mem_ops). */
    std::size_t countMemOps() const;

    /** Distinct logical addresses referenced by memory operations. */
    std::unordered_set<Addr> usedAddrs() const;

    /** Total MCM events the test maps to. */
    std::size_t countEvents() const;

    /** Order-sensitive content hash (for dedup and tests). */
    std::uint64_t fingerprint() const;

  private:
    std::vector<Node> nodes_;
};

} // namespace mcversi::gp

#endif // MCVERSI_GP_TEST_HH
