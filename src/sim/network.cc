#include "sim/network.hh"

#include <cstdlib>
#include <stdexcept>

namespace mcversi::sim {

Network::Network(EventQueue &eq, Rng rng, Params params)
    : eq_(eq), rng_(rng), params_(params),
      tiles_(params.cols * params.rows), numNodes_(2 * tiles_ + 1),
      handlers_(static_cast<std::size_t>(numNodes_), nullptr),
      lastDelivery_(static_cast<std::size_t>(numNodes_) *
                        static_cast<std::size_t>(numNodes_) *
                        static_cast<std::size_t>(kNumVnets),
                    Tick{0})
{
}

void
Network::registerNode(NodeId node, MsgHandler *handler)
{
    const int dense = denseNode(node);
    if (dense < 0) {
        throw std::runtime_error(
            "Network: node id " + std::to_string(node) +
            " outside the " + std::to_string(params_.cols) + "x" +
            std::to_string(params_.rows) + " mesh");
    }
    handlers_[static_cast<std::size_t>(dense)] = handler;
}

const char *
msgTypeName(MsgType t)
{
    switch (t) {
      case MsgType::GETS: return "GETS";
      case MsgType::GETX: return "GETX";
      case MsgType::UPGRADE: return "UPGRADE";
      case MsgType::PUTS: return "PUTS";
      case MsgType::PUTX: return "PUTX";
      case MsgType::Unblock: return "Unblock";
      case MsgType::Data: return "Data";
      case MsgType::AckCount: return "AckCount";
      case MsgType::InvAck: return "InvAck";
      case MsgType::WbDataToL2: return "WbDataToL2";
      case MsgType::RecallData: return "RecallData";
      case MsgType::RecallAckNoData: return "RecallAckNoData";
      case MsgType::Inv: return "Inv";
      case MsgType::Recall: return "Recall";
      case MsgType::FwdGETS: return "FwdGETS";
      case MsgType::FwdGETX: return "FwdGETX";
      case MsgType::WbAck: return "WbAck";
      case MsgType::WbNack: return "WbNack";
      case MsgType::TsReset: return "TsReset";
      case MsgType::MemRead: return "MemRead";
      case MsgType::MemWrite: return "MemWrite";
      case MsgType::MemData: return "MemData";
    }
    return "?";
}

std::string
Msg::toString() const
{
    std::string s = msgTypeName(type);
    s += " line=0x";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llx",
                  static_cast<unsigned long long>(line));
    s += buf;
    s += " src=" + std::to_string(src) + " dst=" + std::to_string(dst);
    return s;
}

Network::XY
Network::position(NodeId node) const
{
    if (node == kMemNode)
        return {params_.cols, 0}; // east edge
    int idx = isL2Node(node) ? l2Tile(node) : node;
    return {idx % params_.cols, idx / params_.cols};
}

int
Network::hops(NodeId a, NodeId b) const
{
    const XY pa = position(a);
    const XY pb = position(b);
    int h = std::abs(pa.x - pb.x) + std::abs(pa.y - pb.y);
    // Colocated core/L2 pairs still traverse the local router.
    return h + 1;
}

void
Network::send(Msg *msg)
{
    const int src = denseNode(msg->src);
    const int dst = denseNode(msg->dst);
    MsgHandler *handler =
        dst >= 0 ? handlers_[static_cast<std::size_t>(dst)] : nullptr;
    if (src < 0 || handler == nullptr) {
        const std::string err =
            "Network: no " + std::string(src < 0 ? "source" : "handler") +
            " for node " +
            std::to_string(src < 0 ? msg->src : msg->dst) + " (" +
            msg->toString() + ")";
        eq_.msgPool().release(msg);
        throw std::runtime_error(err);
    }

    const Tick lat = params_.baseLatency +
                     params_.perHop * static_cast<Tick>(
                                          hops(msg->src, msg->dst)) +
                     rng_.below(params_.maxJitter + 1);
    Tick when = eq_.now() + lat;

    Tick &last = lastDelivery_[fifoIndex(
        src, dst, static_cast<int>(msg->vnet))];
    if (when <= last)
        when = last + 1;
    last = when;

    ++sent_;
    eq_.scheduleDeliver(when, handler, msg);
}

} // namespace mcversi::sim
