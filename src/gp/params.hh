/**
 * @file
 * Test generation and GA parameters (Table 3 of the paper).
 */

#ifndef MCVERSI_GP_PARAMS_HH
#define MCVERSI_GP_PARAMS_HH

#include <cstddef>

#include "common/types.hh"

namespace mcversi::gp {

/** Test-generation parameters (Table 3, upper half). */
struct GenParams
{
    /** Total operations across all threads. */
    std::size_t testSize = 1000;
    /** Test executions per test-run. */
    int iterations = 10;
    /** Number of hardware threads tests are generated for. */
    int numThreads = 8;
    /** Usable logical address range (test memory): 1KB or 8KB. */
    Addr memSize = 8 * 1024;
    /** Base addresses are generated in multiples of the stride. */
    Addr stride = 16;

    // Operation biases (must sum to 1).
    double biasRead = 0.50;
    double biasReadAddrDp = 0.05;
    double biasWrite = 0.42;
    double biasRmw = 0.01;
    double biasFlush = 0.01;
    double biasDelay = 0.01;

    /** Number of stride-aligned logical addresses available. */
    std::size_t
    numSlots() const
    {
        return static_cast<std::size_t>(memSize / stride);
    }
};

/** Crossover operator variant, shared by every generation engine. */
enum class XoMode {
    Selective,   ///< Algorithm 1 (McVerSi-ALL)
    SinglePoint, ///< standard flat-list crossover (McVerSi-Std.XO)
};

/** GA parameters (Table 3, lower half). */
struct GaParams
{
    std::size_t population = 100;
    int tournamentSize = 2;
    /** Mutation probability PMUT. */
    double pMut = 0.005;
    /** Crossover probability. */
    double pCrossover = 1.0;
    /** Unconditional memory-op selection probability PUSEL. */
    double pUsel = 0.2;
    /** Bias for new operations drawing addresses from fitaddrs, PBFA. */
    double pBfa = 0.05;
};

} // namespace mcversi::gp

#endif // MCVERSI_GP_PARAMS_HH
