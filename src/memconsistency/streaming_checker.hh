/**
 * @file
 * Streaming (incremental) consistency checking.
 *
 * The post-hoc Checker re-derives fr and rebuilds both constraint
 * graphs from scratch for every finalized witness, and a violation
 * injected early in a test-run is only caught after the whole run has
 * been simulated and recorded. The StreamingChecker instead consumes
 * events *as the simulation commits them* (via the ExecWitness event
 * sink) and maintains both constraint graphs online:
 *
 *  - the sc-per-location graph (po-loc | rf | co | fr) over per
 *    (thread, address) chains,
 *  - the ghb graph (ppo | fences | rf[e] | co | fr) via per-order
 *    incremental edge strategies closure-equivalent to the batch
 *    ProfileModel engine, for any validated ModelProfile
 *    (SC/TSO/PSO/RMO/RC),
 *
 * with Pearce-Kelly dynamic topological ordering (incremental.hh)
 * detecting a cycle at the exact edge insertion -- and therefore the
 * exact event -- that closes it. rf is resolved online from write
 * values (store-forwarded reads can arrive before their producing
 * write: such reads pend on the value and resolve when the write
 * serializes), co from overwritten values, and fr edges are emitted as
 * soon as an rf source gains a co-successor. RMW atomicity and co
 * forks are likewise checked at resolution time.
 *
 * Detection semantics: violationDetected() flips at the first event
 * whose constraints close a cycle (or violate atomicity /
 * well-formedness); eventsUntilDetection() reports how many recorded
 * events the checker had consumed at that point. In throw-on-violation
 * mode the sink throws StreamingViolation out of the recording call so
 * the simulation stops at the violating access instead of running the
 * iteration to quiescence.
 *
 * Verdict parity: Checker::checkStreamed() composes this object with
 * the post-hoc pipeline -- witness anomalies and the model-salted
 * verdict cache behave exactly as in Checker::check(), a clean stream
 * short-circuits the full cycle analysis, and a dirty stream falls
 * back to the full analysis so diagnostics stay byte-identical to
 * post-hoc checking. earlyStopResult() renders the streaming-native
 * verdict for stopped-early (un-finalizable) witness prefixes.
 *
 * All state is capacity-preserving and generation-stamped: begin() is
 * O(touched state) and steady-state iterations allocate nothing.
 *
 * Bounded-window mode (setWindow(W), W > 0) additionally keeps memory
 * O(live set) instead of O(trace): once an event is older than the
 * last W recorded events AND fully resolved -- a read has its rf bound,
 * its fr emitted, and its RMW pair checked; a write has its co
 * predecessor retired, a co successor, no reads still awaiting fr, and
 * its (and its successor's) RMW pair checked -- it is *retired*: its
 * remaining obligations fold into the per-thread/per-location frontier
 * lists, its value mapping is erased, and its node is spliced out of
 * both graphs (IncrementalGraph::retireNode bypass edges preserve
 * reachability among live nodes exactly) and recycled. Periodic
 * compaction remaps the live nodes onto a dense id prefix. Violations
 * whose closing edge lands within the window are detected exactly as
 * in unbounded mode; orderings that would have run through retired
 * events are dropped and *counted* (truncatedStragglers /
 * truncatedStaleReads), never silently ignored: a stream that loses
 * constraints this way reports window truncation instead of a clean
 * verdict. Windowed mode assumes write values are unique within a
 * window span (the McVerSi generator guarantees this); a value reused
 * W events after its first writer retired re-binds to the newer
 * writer.
 */

#ifndef MCVERSI_MEMCONSISTENCY_STREAMING_CHECKER_HH
#define MCVERSI_MEMCONSISTENCY_STREAMING_CHECKER_HH

#include <cstdint>
#include <exception>
#include <vector>

#include "memconsistency/checker.hh"
#include "memconsistency/execwitness.hh"
#include "memconsistency/incremental.hh"
#include "memconsistency/models/profile.hh"

namespace mcversi::mc {

/**
 * Thrown by the event sink (in throw-on-violation mode) to stop the
 * simulation at the violating event. Deliberately NOT derived from
 * std::runtime_error: the workload's livelock watchdog catches
 * runtime_error and must not swallow a detected violation.
 */
class StreamingViolation : public std::exception
{
  public:
    const char *
    what() const noexcept override
    {
        return "streaming checker: consistency violation detected";
    }
};

/** Online checker maintaining the constraint graphs incrementally. */
class StreamingChecker final : public WitnessEventSink
{
  public:
    /** @p profile is validated (throws std::invalid_argument). */
    explicit StreamingChecker(ModelProfile profile);

    /** Start a new stream (new witness); keeps all capacity. */
    void begin();

    /**
     * Bound the live set to roughly the last @p events recorded events
     * (0 = unbounded, the default: byte-identical to pre-window
     * behavior). Takes effect at the next begin(). See the file
     * comment for the retirement rules and truncation semantics.
     */
    void setWindow(std::size_t events) { window_ = events; }

    std::size_t window() const { return window_; }

    /** Peak live (un-retired) node count this stream. */
    std::size_t liveNodeHighWater() const { return liveHighWater_; }

    /**
     * Events whose program-order arrival was so late that orderings
     * through already-retired same-thread events were dropped.
     */
    std::uint64_t truncatedStragglers() const { return truncatedStragglers_; }

    /**
     * Reads (or overwrites) of a value whose producing write -- or of
     * the init state after its node -- retired: the access stays
     * unresolved, so the stream can never report complete.
     */
    std::uint64_t truncatedStaleReads() const { return truncatedStaleReads_; }

    /** True when the window dropped at least one ordering constraint. */
    bool
    windowTruncated() const
    {
        return truncatedStragglers_ + truncatedStaleReads_ > 0;
    }

    /**
     * Remap the live nodes of both graphs (and every structure that
     * names a node) onto a dense id prefix. Runs automatically every
     * few windows in bounded mode; public so tests can force it.
     * No-op after a detected violation.
     */
    void compactNow();

    /**
     * Throw StreamingViolation out of onRecord() when a violation is
     * detected (simulation early stop). Off by default: replay/bench
     * callers poll violationDetected() instead.
     */
    void setThrowOnViolation(bool enable) { throwOnViolation_ = enable; }

    /** WitnessEventSink: consume one recorded event. */
    void onRecord(const ExecWitness &ew, EventId id,
                  WriteVal overwritten) override;

    /**
     * Feed an already-recorded witness through the sink in record
     * order, init events excluded (tests and benches). Stops consuming
     * at the first detected violation. Calls begin() first.
     */
    void replayRecorded(const ExecWitness &ew);

    bool
    violationDetected() const
    {
        return violationKind_ != CheckResult::Kind::Ok;
    }

    CheckResult::Kind violationKind() const { return violationKind_; }

    /** Recorded events consumed so far (stops counting at detection). */
    std::uint64_t eventsConsumed() const { return eventsConsumed_; }

    /**
     * True when every consumed read value and overwritten value has
     * resolved to a producing write (or init). A clean *and* complete
     * stream (every recorded event consumed) proves the finalized
     * witness would be anomaly-free and pass the batch analysis, so
     * Checker::checkStreamed() skips finalize() and the full check
     * entirely on that path.
     */
    bool streamComplete() const { return pending_ == 0; }

    /**
     * Recorded events the checker had consumed when the violation was
     * detected (detection latency in events); 0 if none detected.
     */
    std::uint64_t eventsUntilDetection() const { return detectionEvents_; }

    /**
     * Render the detected violation of a stopped-early stream. Unlike
     * post-hoc diagnostics this works on an un-finalized witness (a
     * stopped prefix cannot be finalized: store-forwarded reads may
     * still await their producing writes). Requires violationDetected().
     */
    CheckResult earlyStopResult(const ExecWitness &ew) const;

    const ModelProfile &profile() const { return profile_; }

  private:
    using Node = IncrementalGraph::Node;
    static constexpr Node kNoNode = -1;
    /**
     * A node reference whose target retired (bounded-window mode).
     * Distinct from kNoNode so "was bound, now gone" never reads as
     * "never bound".
     */
    static constexpr Node kRetiredNode = -2;

    // NodeMeta::flags bits.
    static constexpr std::uint8_t kAgedOut = 1 << 0;
    static constexpr std::uint8_t kRetired = 1 << 1;
    /** fr edge emitted (or will never be needed): reads only. */
    static constexpr std::uint8_t kFrDone = 1 << 2;
    /** RMW atomicity check ran (set at creation for non-RMW nodes). */
    static constexpr std::uint8_t kPairDone = 1 << 3;
    /** This write's co predecessor has itself retired. */
    static constexpr std::uint8_t kCoPredRetired = 1 << 4;

    /** Internal control-flow sentinel: a violation was recorded. */
    struct Detected
    {
    };

    /**
     * Open-addressing u64 -> int32 map with O(1) generation-stamped
     * clear and tombstoned erase; capacity only ever grows (rehashes
     * swap through a retained scratch buffer, so the steady state
     * allocates nothing). Values are dense indices the caller assigns
     * (fresh entries start at -1; -2 is reserved for tombstones).
     */
    class StampedMap
    {
      public:
        void
        clear()
        {
            if (++gen_ == 0) {
                // Stamp wraparound (once per 2^32 streams): stale
                // slots could alias the restarted counter, so drop
                // them wholesale (capacity is kept).
                slots_.clear();
                gen_ = 1;
            }
            live_ = 0;
            tombs_ = 0;
        }
        std::int32_t &findOrInsert(std::uint64_t key);
        /** Value of @p key, or -1 when absent. */
        std::int32_t find(std::uint64_t key) const;
        /** Drop @p key (tombstoned; reclaimed at the next rehash). */
        void erase(std::uint64_t key);

      private:
        static constexpr std::int32_t kTomb = -2;
        struct Slot
        {
            std::uint64_t key = 0;
            std::uint32_t gen = 0;
            std::int32_t val = -1;
        };
        void rehash();
        std::vector<Slot> slots_;
        std::vector<Slot> scratch_;
        std::size_t live_ = 0;
        std::size_t tombs_ = 0;
        std::uint32_t gen_ = 1;
    };

    /** Per-thread po element: total order (poi, slot, node). */
    struct Elem
    {
        std::int32_t poi;
        /** 0 pre-fence, 1 read part, 2 write part, 3 post-fence. */
        std::uint8_t slot;
        Node node;

        friend auto
        operator<=>(const Elem &a, const Elem &b)
        {
            if (const auto c = a.poi <=> b.poi; c != 0)
                return c;
            if (const auto c = a.slot <=> b.slot; c != 0)
                return c;
            return a.node <=> b.node;
        }
    };

    /**
     * Sorted Elem sequence with O(1) amortized erase-at-front: a
     * head-offset wrapper over a vector that compacts lazily.
     * Retirement removes elements almost always at the front (events
     * retire in near program order), and a plain vector::erase there
     * would shift the whole live window on every retirement.
     */
    class ElemList
    {
      public:
        bool empty() const { return head_ == v_.size(); }
        std::size_t size() const { return v_.size() - head_; }
        const Elem &operator[](std::size_t i) const { return v_[head_ + i]; }
        const Elem &back() const { return v_.back(); }
        const Elem *begin() const { return v_.data() + head_; }
        const Elem *end() const { return v_.data() + v_.size(); }
        /** Mutable iteration (compactNow() node-id remapping). */
        Elem *begin() { return v_.data() + head_; }
        Elem *end() { return v_.data() + v_.size(); }
        void push_back(const Elem &el) { v_.push_back(el); }
        void
        insertAt(std::size_t pos, const Elem &el)
        {
            v_.insert(v_.begin() + static_cast<std::ptrdiff_t>(head_ + pos),
                      el);
        }
        void
        eraseAt(std::size_t pos)
        {
            if (pos == 0) {
                ++head_;
                if (head_ > 64 && head_ >= v_.size() - head_) {
                    v_.erase(v_.begin(),
                             v_.begin() + static_cast<std::ptrdiff_t>(head_));
                    head_ = 0;
                }
            } else {
                v_.erase(v_.begin() +
                         static_cast<std::ptrdiff_t>(head_ + pos));
            }
        }
        void
        clear()
        {
            v_.clear();
            head_ = 0;
        }

      private:
        std::vector<Elem> v_;
        std::size_t head_ = 0;
    };

    struct ThreadState
    {
        ElemList reads;
        ElemList writes;
        ElemList fences;
        /** Acquire (RMW read) / release (RMW write) elems (acqrel). */
        ElemList acqs;
        ElemList rels;
        /** Outstanding RMW read halves awaiting their write (poi). */
        std::vector<std::pair<std::int32_t, Node>> pendingRmw;
        /** Per-address po-loc chain slot (witness AddrId -> chains_). */
        std::vector<std::int32_t> chainAt;
        /** Highest poi retired from this thread (window truncation). */
        std::int32_t maxRetiredPoi = -1;
        /** Registered in touchedPids_ this stream (see threadOf()). */
        bool touched = false;

        void clear();
    };

    struct ValueInfo
    {
        /** First write producing this value, or kNoNode. */
        Node writer = kNoNode;
        /** Intrusive list heads of nodes pending on the writer. */
        Node pendingReadsHead = kNoNode;
        Node pendingCoHead = kNoNode;
    };

    /** Per-node metadata (one record per node slot, see newNode()). */
    struct NodeMeta
    {
        EventId event;
        Pid pid;
        /** Address of an init node; kNoAddr for events and fences. */
        Addr aux;
        /** Written value (writes; kInitVal otherwise): retirement
         *  erases it from the value map without the witness event,
         *  which a windowed witness may have evicted. */
        WriteVal value;
        Node rfSrc;
        Node coPred;
        Node coSucc;
        /** Reads rf-bound to this write awaiting a co-successor (fr). */
        Node readersHead;
        Node readerNext;
        Node pendingReadNext;
        Node pendingCoNext;
        Node pairRead;
        Node pairWrite;
        /** Program-order index (Elem reconstruction at retirement). */
        std::int32_t poi;
        /** Witness AddrId (po-loc chain lookup at retirement). */
        AddrId aid;
        /** Elem slot: 0 pre-fence, 1 read, 2 write, 3 post-fence. */
        std::uint8_t slot;
        std::uint8_t flags;
    };

    // -- node space (shared by both graphs) ---------------------------
    Node newNode(EventId ev, Pid pid, Addr aux, std::int32_t poi,
                 std::uint8_t slot, AddrId aid);
    Node initNodeOf(AddrId aid, Addr addr);

    // -- bounded-window retirement ------------------------------------
    bool retirable(const NodeMeta &m) const;
    void retireNow(Node n);
    /** Queue @p n for a retirement attempt at the end of the event. */
    void
    noteCandidate(Node n)
    {
        if (window_ != 0 && n >= 0)
            retireScratch_.push_back(n);
    }
    void drainRetirements();
    void ageWindow();
    void eraseElem(ElemList &v, const Elem &el);

    // -- event ingestion ----------------------------------------------
    void ingest(const ExecWitness &ew, EventId id, WriteVal overwritten);
    void insertPoLoc(ThreadState &t, AddrId aid, Elem el);
    void insertRead(ThreadState &t, Elem el, bool rmw);
    void insertWrite(ThreadState &t, Elem el, bool rmw);
    void insertFence(ThreadState &t, Elem el);
    ThreadState &threadOf(Pid pid);

    // -- online conflict orders ---------------------------------------
    std::int32_t valueInfoIdx(WriteVal v);
    void resolveRead(Node r, WriteVal v, AddrId aid, Addr addr);
    void registerWrite(Node w, WriteVal v, WriteVal overwritten,
                       AddrId aid, Addr addr);
    void bindRf(Node r, Node w);
    void bindCo(Node prev, Node w);
    void checkPairAtomicity(Node r, Node w);

    // -- edge insertion / violation recording -------------------------
    void edgeU(Node from, Node to);
    void edgeG(Node from, Node to);
    [[noreturn]] void fail(CheckResult::Kind kind);
    std::string nodeString(const ExecWitness &ew, Node n) const;

    ModelProfile profile_;
    // Edge-strategy flags (mirrors the batch engine's derivation).
    bool chainRR_ = false;
    bool chainWW_ = false;
    bool orderRW_ = false;
    bool orderWR_ = false;
    bool full_ = false;
    bool acqrel_ = false;
    bool pairEdge_ = false;
    bool rfiGlobal_ = false;

    IncrementalGraph uniproc_;
    IncrementalGraph ghb_;

    // Node metadata, appended by newNode().
    std::vector<NodeMeta> nodes_;

    // Value resolution. Addresses need no map of their own: the
    // witness already interns them to dense AddrIds at record time.
    StampedMap valueMap_;
    std::vector<ValueInfo> valueInfo_;
    std::size_t valueInfoCount_ = 0;
    /** ValueInfo slots freed by write retirement. */
    std::vector<std::int32_t> valueFree_;
    /** Init node per witness AddrId (kRetiredNode once retired). */
    std::vector<Node> initNode_;

    // Per-thread program-order state.
    std::vector<ThreadState> threads_;
    std::vector<Pid> touchedPids_;

    /** Pool of per (thread, address) po-loc chains (see chainAt). */
    std::vector<ElemList> chains_;
    std::size_t chainCount_ = 0;

    // Bounded-window state (all idle when window_ == 0).
    std::size_t window_ = 0;
    /** Un-aged nodes in creation order (head-offset ring). */
    std::vector<Node> ageFifo_;
    std::size_t ageHead_ = 0;
    /** Retirement candidates collected while ingesting one event. */
    std::vector<Node> retireScratch_;
    /** Old-id -> new-id scratch for compactNow(). */
    std::vector<Node> remapScratch_;
    std::size_t liveHighWater_ = 0;
    std::uint64_t truncatedStragglers_ = 0;
    std::uint64_t truncatedStaleReads_ = 0;
    /** Events since the last automatic compaction. */
    std::uint64_t sinceCompact_ = 0;

    // Stream / violation state.
    bool throwOnViolation_ = false;
    std::uint64_t eventsConsumed_ = 0;
    std::uint64_t detectionEvents_ = 0;
    /** Unresolved pending reads + co predecessors (streamComplete()). */
    std::uint32_t pending_ = 0;
    CheckResult::Kind violationKind_ = CheckResult::Kind::Ok;
    /** Nodes carrying the non-cycle diagnostics (atomicity / fork). */
    Node violA_ = kNoNode;
    Node violB_ = kNoNode;
    Node violC_ = kNoNode;
};

} // namespace mcversi::mc

#endif // MCVERSI_MEMCONSISTENCY_STREAMING_CHECKER_HH
