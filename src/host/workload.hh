/**
 * @file
 * The guest workload kernel (Algorithm 2 of the paper).
 *
 * For each test-run: emit each thread's code (make_test_thread), then
 * for every iteration release the threads in lock-step
 * (barrier_wait_precise), run to completion (barrier_wait_coarse),
 * verify the candidate execution and clear its conflict orders
 * (verify_reset_conflict), and reset the test memory (reset_test_mem).
 * After the final iteration verify_reset_all evaluates the run:
 * coverage delta, NDT / NDe / fitaddrs, and timing.
 */

#ifndef MCVERSI_HOST_WORKLOAD_HH
#define MCVERSI_HOST_WORKLOAD_HH

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "gp/ndmetrics.hh"
#include "gp/test.hh"
#include "host/interface.hh"
#include "memconsistency/checker.hh"
#include "memconsistency/streaming_checker.hh"
#include "sim/system.hh"

namespace mcversi::host {

/** Outcome of one test-run (several iterations of one test). */
struct RunResult
{
    /** An MCM violation or witness anomaly was detected. */
    bool violation = false;
    mc::CheckResult checkResult{};
    /** The protocol hit an invalid transition (Ruby-style crash). */
    bool protocolError = false;
    std::string protocolErrorInfo;
    /** A litmus-style forbidden condition was observed. */
    bool conditionHit = false;
    int violationIteration = -1;
    /**
     * Streaming mode only: recorded events the checker had consumed
     * when the violation was detected (detection latency in events);
     * 0 when no violation was stream-detected.
     */
    std::uint64_t eventsUntilDetection = 0;

    gp::NdInfo nd{};
    std::vector<std::uint32_t> coveredTransitions;
    /**
     * View of the global per-transition counts snapshotted at run
     * start, owned by the system's TransitionCoverage. Valid until the
     * next test-run begins on the same system; consumers (the adaptive
     * fitness) read it in place instead of copying the whole counter
     * vector per run.
     */
    std::span<const std::uint64_t> preRunCounts;

    int iterationsRun = 0;
    /** Iterations abandoned by the livelock watchdog (event cap). */
    int watchdogAborts = 0;
    std::uint64_t simTicks = 0;
    std::uint64_t eventsExecuted = 0;
    /** Kernel events dispatched during this run (throughput metric). */
    std::uint64_t simEvents = 0;
    /** Network messages injected during this run. */
    std::uint64_t messagesSent = 0;
    /**
     * Distinct checking equivalence classes this run added to the
     * checker's verdict cache (0 when memoization is off). Feeds the
     * optional interleaving term of the adaptive fitness.
     */
    std::uint64_t newInterleavings = 0;
    double checkSeconds = 0.0;
    double totalSeconds = 0.0;

    bool
    bugDetected() const
    {
        return violation || protocolError || conditionHit;
    }

    std::string describe() const;
};

/**
 * Per-iteration self-check hook (litmus tests): returns true if the
 * forbidden outcome was observed in this iteration's witness.
 */
using ConditionFn = std::function<bool(const mc::ExecWitness &)>;

/** Drives test-runs on a simulated system (the Algorithm 2 kernel). */
class Workload
{
  public:
    struct Params
    {
        int iterations = 10;
        /**
         * Start skew of the precise barrier: ~2 cycles with host
         * assistance, hundreds with a guest software barrier.
         */
        Tick barrierSkew = 2;
        /**
         * Extra simulated cycles consumed per iteration by guest-side
         * setup (0 with full host assistance; the ablation bench models
         * a guest implementation with large values).
         */
        Tick guestOverhead = 0;
        /** Run the axiomatic checker after every iteration. */
        bool checkEveryIteration = true;
        /**
         * Post-hoc (default) or streaming checking. Streaming consumes
         * events as the simulation records them, stops the iteration
         * at the violating event, and requires a profile-interpreted
         * model (ProfileModel).
         */
        mc::CheckMode checkMode = mc::CheckMode::Posthoc;
        /**
         * Bound the streaming checker's live set and the witness event
         * log to roughly the last N events (0 = unbounded, exactly
         * today's behavior). Makes memory O(window) instead of
         * O(trace) for soak iterations; see streaming_checker.hh for
         * the truncation semantics. Streaming mode only; forced to 0
         * when a litmus condition is attached (conditions inspect the
         * finalized witness every iteration).
         */
        std::size_t witnessWindow = 0;
    };

    Workload(sim::System &system, mc::Checker &checker,
             TestMemLayout layout, Params params);

    /**
     * Execute one full test-run of @p test.
     *
     * @param condition optional litmus self-check evaluated after every
     *        iteration
     */
    RunResult runTest(const gp::Test &test,
                      const ConditionFn &condition = nullptr);

    HostServices &services() { return services_; }
    const Params &params() const { return params_; }
    void setParams(Params p);

    /**
     * Translate one test into per-thread programs (code emission).
     * @p slot_tables is reusable scratch filled with the per-thread
     * node-index table (allocation-free in the steady state).
     */
    std::vector<sim::Program>
    emitPrograms(const gp::Test &test,
                 gp::ThreadSlots &slot_tables) const;

  private:
    /** Map a witness event to its static event id. */
    gp::StaticEventId
    staticIdOf(const mc::Event &ev, const gp::ThreadSlots &slots) const;

    void accumulateNd(const mc::ExecWitness &witness,
                      const gp::ThreadSlots &slots);

    /** (Re)build streaming_ to match params_.checkMode. */
    void syncStreamingChecker();

    sim::System &system_;
    mc::Checker &checker_;
    HostServices services_;
    Params params_;
    gp::NdAccumulator nd_;
    /** Per-run thread-slot scratch, capacity reused across runs. */
    gp::ThreadSlots slotScratch_;
    /**
     * Windowed-mode NDT scratch: a fully-retained ring is replayed and
     * finalized here so NDT accumulation (a GA fitness input) matches
     * unbounded mode exactly. Capacity reused across runs.
     */
    mc::ExecWitness ndScratch_;
    /** Online checker, present iff params_.checkMode is Streaming. */
    std::unique_ptr<mc::StreamingChecker> streaming_;
};

} // namespace mcversi::host

#endif // MCVERSI_HOST_WORKLOAD_HH
