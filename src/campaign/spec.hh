/**
 * @file
 * Declarative campaign specification.
 *
 * A CampaignSpec fully describes one verification campaign of the
 * paper's evaluation matrix (§5): which protocol and bug, which test
 * generator, the generation/GA parameters, the budget, and the seed.
 * Specs are plain data: constructible in code, parseable from
 * "key=value" strings (CLI / config files), and serializable back via
 * toString() -- parse(toString()) round-trips exactly.
 *
 * CampaignMatrix expands bug x generator x model x seed lists into the
 * flat vector of specs a CampaignRunner consumes, mirroring the paper's
 * {protocol} x {bug} x {generator} x {seed} sweep with a consistency-
 * model axis on top (the checker verifies against any registered
 * model, not just x86-TSO).
 */

#ifndef MCVERSI_CAMPAIGN_SPEC_HH
#define MCVERSI_CAMPAIGN_SPEC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "gp/evolution.hh"
#include "gp/params.hh"
#include "host/harness.hh"
#include "sim/config.hh"

namespace mcversi::campaign {

/** Declarative description of one verification campaign. */
struct CampaignSpec
{
    /** Paper bug name ("MESI,LQ+IS,Inv", ...) or "none"; see sim/bugs.hh. */
    std::string bug = "none";
    /** Generator registry name or alias; see campaign/registry.hh. */
    std::string generator = "McVerSi-ALL";
    /** Seed for the system, the generator, and everything they fork. */
    std::uint64_t seed = 1;
    /** Protocol selection: "auto" derives it from the bug. */
    std::string protocol = "auto";
    /**
     * Consistency model the checker verifies against: a registered
     * model name (see memconsistency/models/registry.hh). The litmus
     * generator also draws its suite per model.
     */
    std::string model = "tso";

    // Test generation (Table 3 upper half, scaled-down defaults).
    std::size_t testSize = 256;
    int iterations = 4;
    Addr memSize = 8 * 1024;
    Addr stride = 16;
    int guestThreads = 8;

    // GA (Table 3 lower half).
    /** Population size per island. */
    std::size_t population = 50;

    // Evolution-engine topology (gp/evolution.hh).
    /** Island count; also the ParallelHarness lane count. */
    std::size_t islands = 1;
    /** Engine-wide evaluations between ring migrations (0 = never). */
    std::uint64_t migration = 256;
    /** Tests pulled per generate->evaluate batch barrier. */
    std::size_t batch = 1;

    // Budget (0 = unlimited).
    std::uint64_t maxTestRuns = 1000;
    double maxWallSeconds = 0.0;

    /** Iterations per litmus test-run (diy-litmus generator only). */
    int litmusIterations = 12;

    /** Record the per-run NDT history (costs memory on long runs). */
    bool recordNdt = false;

    /**
     * Verdict-cache entries per checker for collective checking
     * ("check-cache=N|Nk|off"; 0 = off). Parallel harnesses size one
     * cache per lane. Verdicts are byte-identical either way; the
     * knob only trades memory for skipped re-checks.
     */
    std::size_t checkCache = 4096;

    /**
     * Checking mode ("check-mode=posthoc|streaming"). Streaming
     * maintains the constraint graphs incrementally as events are
     * recorded and stops the simulation at the violating event; see
     * memconsistency/streaming_checker.hh.
     */
    std::string checkMode = "posthoc";

    /**
     * Bounded-window streaming ("witness-window=N|Nk|off"; 0 = off):
     * retire fully-resolved events once they fall behind the last N
     * recorded events, keeping checker and witness memory O(window)
     * instead of O(trace) on soak runs. Requires check-mode=streaming;
     * see streaming_checker.hh for the truncation semantics.
     */
    std::size_t witnessWindow = 0;

    bool operator==(const CampaignSpec &) const = default;

    /**
     * Apply one "key=value" setting. Throws std::invalid_argument on an
     * unknown key or an unparsable/out-of-range value.
     */
    void set(const std::string &key_value);
    void set(const std::string &key, const std::string &value);

    /** Parse a whitespace-separated "key=value ..." string. */
    static CampaignSpec fromString(const std::string &text);

    /** Apply a sequence of "key=value" settings (e.g. CLI argv). */
    static CampaignSpec fromArgs(const std::vector<std::string> &args);

    /** Canonical "key=value ..." form; fromString() round-trips it. */
    std::string toString() const;

    /**
     * Check that the spec is runnable: known bug name, registered
     * generator, consistent numeric ranges. Throws std::invalid_argument.
     */
    void validate() const;

    // -- Derived views (resolve the declarative fields) ----------------

    /** Protocol after resolving "auto" against the bug. */
    sim::Protocol resolvedProtocol() const;

    /** Coverage controller-name prefix of the resolved protocol. */
    const char *protocolPrefix() const;

    sim::SystemConfig systemConfig() const;
    gp::GenParams genParams() const;
    gp::GaParams gaParams() const;
    gp::EvolutionParams evolutionParams() const;
    host::Budget budget() const;
    host::VerificationHarness::Params harnessParams() const;

    /** True if the spec asks for the batched multi-lane harness. */
    bool
    usesParallelHarness() const
    {
        return islands > 1 || batch > 1;
    }
};

/** Matrix of campaigns: base spec x bugs x generators x models x seeds. */
struct CampaignMatrix
{
    CampaignSpec base{};
    /** Empty list => the base spec's value is used (cardinality 1). */
    std::vector<std::string> bugs;
    std::vector<std::string> generators;
    std::vector<std::string> models;
    std::vector<std::uint64_t> seeds;

    /**
     * Expand to |bugs| x |generators| x |models| x |seeds| specs,
     * bug-major then generator then model then seed (deterministic
     * order).
     */
    std::vector<CampaignSpec> expand() const;
};

// -- List-parsing helpers shared by the CLI and tests ------------------

/** Split on @p sep, dropping empty items ("a;b;;c" => {a,b,c}). */
std::vector<std::string> splitList(const std::string &text, char sep = ';');

/**
 * Parse a seed list: "a..b" (inclusive range), or ';'-separated values,
 * e.g. "1..10" or "17;118;219". Throws std::invalid_argument.
 */
std::vector<std::uint64_t> parseSeedList(const std::string &text);

/**
 * Resolve a bug-list token: "all" => every studied bug, "mesi"/"tsocc"
 * => that protocol's bugs plus the protocol-agnostic ones, otherwise a
 * ';'-separated list of paper bug names.
 */
std::vector<std::string> resolveBugList(const std::string &token);

/**
 * Parse a worker-thread count for the CLI's threads=/eval-threads=
 * keys. Rejects signs, trailing garbage ("4x"), zero, and values
 * above 4096 with std::invalid_argument naming @p key; omitting the
 * key (not passing 0) is how callers select hardware concurrency.
 */
int parseThreadCount(const std::string &key, const std::string &value);

} // namespace mcversi::campaign

#endif // MCVERSI_CAMPAIGN_SPEC_HH
