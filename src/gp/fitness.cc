#include "gp/fitness.hh"

namespace mcversi::gp {

double
AdaptiveCoverageFitness::score(
    std::span<const std::uint64_t> pre_counts,
    const std::vector<std::uint32_t> &covered) const
{
    std::size_t considered = 0;
    for (const std::uint64_t c : pre_counts)
        if (c < cutoff_)
            ++considered;

    std::size_t hit = 0;
    for (const std::uint32_t id : covered) {
        if (id < pre_counts.size() && pre_counts[id] < cutoff_)
            ++hit;
    }

    return considered == 0
               ? 0.0
               : static_cast<double>(hit) /
                     static_cast<double>(considered);
}

void
AdaptiveCoverageFitness::record(double fitness)
{
    if (fitness < params_.stallThreshold) {
        if (++stalled_ >= params_.stallWindow) {
            cutoff_ *= 2;
            stalled_ = 0;
        }
    } else {
        stalled_ = 0;
    }
}

double
AdaptiveCoverageFitness::evaluate(
    std::span<const std::uint64_t> pre_counts,
    const std::vector<std::uint32_t> &covered)
{
    const double fitness = score(pre_counts, covered);
    record(fitness);
    return fitness;
}

} // namespace mcversi::gp
