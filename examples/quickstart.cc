/**
 * @file
 * Quickstart: verify a (buggy) MESI system with McVerSi-ALL.
 *
 * Builds the Table 2 platform with the MESI,LQ+IS,Inv bug injected,
 * drives it with the GP-based test generator via the Campaign API, and
 * reports how many test-runs it took to expose the bug.
 *
 * Usage: quickstart [bug-name] [seed] [test-size] [iterations]
 *   e.g. quickstart "MESI,LQ+IS,Inv" 42
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "mcversi.hh"

using namespace mcversi;

int
main(int argc, char **argv)
{
    campaign::CampaignSpec spec;
    spec.bug = argc > 1 ? argv[1] : "MESI,LQ+IS,Inv";
    spec.seed = argc > 2 ? std::strtoull(argv[2], nullptr, 0) : 42;
    try {
        if (argc > 3)
            spec.set("test-size", argv[3]);
        if (argc > 4)
            spec.set("iterations", argv[4]);
    } catch (const std::exception &e) {
        std::cerr << "bad argument: " << e.what() << "\n";
        return 1;
    }
    spec.generator = "McVerSi-ALL";
    spec.maxTestRuns = 2000;
    spec.maxWallSeconds = 120.0;

    if (sim::findBugByName(spec.bug) == nullptr) {
        std::cerr << "unknown bug: " << spec.bug << "\n";
        std::cerr << "known bugs:\n";
        for (const sim::BugInfo &info : sim::allBugs())
            std::cerr << "  " << info.name << "\n";
        return 1;
    }

    std::cout << "protocol: "
              << (spec.resolvedProtocol() == sim::Protocol::Mesi
                      ? "MESI"
                      : "TSO-CC")
              << ", bug: " << spec.bug
              << ", generator: " << spec.generator << "\n";

    const campaign::CampaignResult result =
        campaign::CampaignRunner::runOne(spec);
    if (!result.ok()) {
        std::cerr << "campaign failed: " << result.error << "\n";
        return 1;
    }

    const host::HarnessResult &run = result.harness;
    if (run.bugFound) {
        std::cout << "BUG FOUND after " << run.testRunsToBug
                  << " test-runs (" << run.wallSecondsToBug
                  << " s wall)\n"
                  << run.detail << "\n";
    } else {
        std::cout << "no bug found in " << run.testRuns
                  << " test-runs (" << run.wallSeconds << " s wall)\n";
    }
    std::cout << "total transition coverage: "
              << 100.0 * run.totalCoverage << "%\n";
    return 0;
}
