#include "memconsistency/models/engine.hh"

#include <stdexcept>

namespace mcversi::mc {

const char *
rmwSemanticsName(RmwSemantics s)
{
    switch (s) {
      case RmwSemantics::Full: return "full-fence";
      case RmwSemantics::AcquireRelease: return "acquire-release";
      case RmwSemantics::None: return "none";
    }
    return "?";
}

void
ModelProfile::validate() const
{
    if (name.empty())
        throw std::invalid_argument("model profile: empty name");
    if (orderRW && !orderRR) {
        throw std::invalid_argument(
            "model profile '" + name +
            "': orderRW requires orderRR (earlier reads reach later "
            "writes through the read chain)");
    }
    if (orderWR && !orderRR && !orderWW) {
        throw std::invalid_argument(
            "model profile '" + name +
            "': orderWR requires orderRR or orderWW (one side must "
            "chain)");
    }
    if (rmwFence == RmwSemantics::AcquireRelease &&
        (orderRR || orderRW || orderWR || orderWW)) {
        throw std::invalid_argument(
            "model profile '" + name +
            "': acquire-release RMWs describe fence-free ppo profiles "
            "(with plain ppo preserved, use full-fence or none)");
    }
}

namespace {

/**
 * Fence strength implied by the profile: a profile preserving all of
 * po orders everything a full fence would, whatever its rmwFence says
 * (SC declares None to skip redundant fence nodes).
 */
int
effectiveRmwRank(const ModelProfile &p)
{
    if (p.orderRR && p.orderRW && p.orderWR && p.orderWW)
        return 2;
    switch (p.rmwFence) {
      case RmwSemantics::Full: return 2;
      case RmwSemantics::AcquireRelease: return 1;
      case RmwSemantics::None: return 0;
    }
    return 0;
}

} // namespace

bool
ModelProfile::atLeastAsStrongAs(const ModelProfile &weaker) const
{
    const bool ppo_superset =
        (orderRR || !weaker.orderRR) && (orderRW || !weaker.orderRW) &&
        (orderWR || !weaker.orderWR) && (orderWW || !weaker.orderWW);
    return ppo_superset && (rfiGlobal || !weaker.rfiGlobal) &&
           effectiveRmwRank(*this) >= effectiveRmwRank(weaker);
}

ProfileModel::ProfileModel(ModelProfile profile)
    : profile_(std::move(profile))
{
    profile_.validate();
    chainRR_ = profile_.orderRR;
    chainWW_ = profile_.orderWW;
    oneshotRW_ = profile_.orderRW && profile_.orderWW;
    persistRW_ = profile_.orderRW && !profile_.orderWW;
    oneshotWR_ = profile_.orderWR && profile_.orderRR;
    persistWR_ = profile_.orderWR && !profile_.orderRR;
    const bool full = profile_.rmwFence == RmwSemantics::Full;
    const bool acqrel = profile_.rmwFence == RmwSemantics::AcquireRelease;
    // Fences collect chainless upstream classes from accumulator
    // lists; releases collect both classes (acq/rel profiles are
    // chainless by validation).
    trackReads_ = (full && !chainRR_) || acqrel;
    trackWrites_ = (full && !chainWW_) || acqrel;
    // The pair's internal read->write order: implied by ppo (oneshot /
    // persistent RW) or by the acquire's downstream edge; with a
    // chainless Full profile the fences sit outside the pair, so the
    // edge must be explicit.
    pairEdge_ = !profile_.orderRW && !acqrel;
}

void
ProfileModel::addProgramOrderEdges(const ExecWitness &ew,
                                   const std::vector<EventId> &thread,
                                   CycleGraph &g) const
{
    EventId last_read = kNoEvent;
    EventId last_write = kNoEvent;
    CycleGraph::Node last_fence = kNoEvent;
    // Persistent downstream sources for chainless classes: the latest
    // fence/acquire node, wired to every subsequent read/write.
    CycleGraph::Node down_read_src = kNoEvent;
    CycleGraph::Node down_write_src = kNoEvent;
    EventId pending_rmw_read = kNoEvent;
    // Pending sources wanting an edge to the next read/write.
    std::vector<CycleGraph::Node> want_next_read;
    std::vector<CycleGraph::Node> want_next_write;
    // Events since the last fence/release, for chainless upstream
    // classes.
    std::vector<CycleGraph::Node> reads_since;
    std::vector<CycleGraph::Node> writes_since;

    auto flush_to = [&g](std::vector<CycleGraph::Node> &pending,
                         CycleGraph::Node dst) {
        for (const CycleGraph::Node n : pending)
            g.addEdge(n, dst);
        pending.clear();
    };

    auto add_fence = [&]() {
        const CycleGraph::Node f = g.addNode();
        if (chainRR_) {
            if (last_read != kNoEvent)
                g.addEdge(last_read, f);
        } else {
            flush_to(reads_since, f);
        }
        if (chainWW_) {
            if (last_write != kNoEvent)
                g.addEdge(last_write, f);
        } else {
            flush_to(writes_since, f);
        }
        if (last_fence != kNoEvent)
            g.addEdge(last_fence, f);
        last_fence = f;
        if (chainRR_)
            want_next_read.push_back(f);
        else
            down_read_src = f;
        if (chainWW_)
            want_next_write.push_back(f);
        else
            down_write_src = f;
    };

    const bool full = profile_.rmwFence == RmwSemantics::Full;
    const bool acqrel = profile_.rmwFence == RmwSemantics::AcquireRelease;

    for (const EventId id : thread) {
        const Event &ev = ew.event(id);
        // A full fence precedes the read part of each RMW.
        if (ev.rmw && ev.isRead() && full)
            add_fence();
        if (ev.isRead()) {
            if (chainRR_ && last_read != kNoEvent)
                g.addEdge(last_read, id);
            if (persistWR_ && last_write != kNoEvent)
                g.addEdge(last_write, id);
            if (down_read_src != kNoEvent)
                g.addEdge(down_read_src, id);
            flush_to(want_next_read, id);
            if (trackReads_)
                reads_since.push_back(id);
            last_read = id;
            if (oneshotRW_)
                want_next_write.push_back(id);
            if (ev.rmw) {
                pending_rmw_read = id;
                if (acqrel) {
                    // Acquire: ordered before everything po-later.
                    down_read_src = id;
                    down_write_src = id;
                }
            }
        } else {
            if (ev.rmw && acqrel) {
                // Release: everything po-earlier is ordered before it.
                flush_to(reads_since, id);
                flush_to(writes_since, id);
            }
            if (chainWW_ && last_write != kNoEvent)
                g.addEdge(last_write, id);
            if (persistRW_ && last_read != kNoEvent)
                g.addEdge(last_read, id);
            if (down_write_src != kNoEvent)
                g.addEdge(down_write_src, id);
            flush_to(want_next_write, id);
            if (ev.rmw && pairEdge_ && pending_rmw_read != kNoEvent)
                g.addEdge(pending_rmw_read, id);
            if (ev.rmw)
                pending_rmw_read = kNoEvent;
            if (trackWrites_)
                writes_since.push_back(id);
            last_write = id;
            if (oneshotWR_)
                want_next_read.push_back(id);
            // A full fence follows the write part of each RMW.
            if (ev.rmw && ev.isWrite() && full)
                add_fence();
        }
    }
}

} // namespace mcversi::mc
