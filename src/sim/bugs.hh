/**
 * @file
 * The 11 studied bugs (§5.3) as injection flags.
 *
 * Bugs marked real ("*" in the paper) were actual Gem5 bugs; the others
 * are artificially injected. Each bug is a single suppressed action or
 * removed transition in an otherwise-correct implementation; see
 * DESIGN.md §5 for the exact injection point of each.
 */

#ifndef MCVERSI_SIM_BUGS_HH
#define MCVERSI_SIM_BUGS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace mcversi::sim {

/** Identifier of a (possibly injected) bug. */
enum class BugId : std::uint8_t {
    None,
    /** L1 does not flag data consumed in IS_I as invalidated. (real) */
    MesiLqIsInv,
    /** L1 in SM drops the LQ forward on Inv. (real) */
    MesiLqSmInv,
    /** L1 in E drops the LQ forward on recall-invalidation. */
    MesiLqEInv,
    /** L1 in M drops the LQ forward on recall-invalidation. */
    MesiLqMInv,
    /** L1 S-state replacement does not notify the LQ. */
    MesiLqSReplacement,
    /** L2 lacks the transition for a PUTX racing a grant. (real) */
    MesiPutxRace,
    /** L2 drops a racing dirty PUTX on a clean-granted block. */
    MesiReplaceRace,
    /** TSO-CC timestamp resets without epoch-ids. */
    TsoccNoEpochIds,
    /** TSO-CC self-invalidation on '>' instead of '>='. */
    TsoccCompare,
    /** LQ ignores forwarded invalidations entirely. (real) */
    LqNoTso,
    /** SQ drains out of order instead of FIFO. */
    SqNoFifo,
};

/** Which protocol a bug applies to. */
enum class ProtocolKind : std::uint8_t {
    Mesi,
    Tsocc,
    /** Core-level bugs applicable under either protocol. */
    Any,
};

/** Static description of one studied bug. */
struct BugInfo
{
    BugId id;
    /** Paper's name, e.g. "MESI,LQ+IS,Inv". */
    const char *name;
    ProtocolKind protocol;
    /** True for bugs that were real Gem5 bugs ("*" in §5.3). */
    bool real;
    const char *description;
};

/** All 11 studied bugs, in the paper's Table 4 order. */
const std::vector<BugInfo> &allBugs();

/** Metadata for one bug id (BugId::None allowed). */
const BugInfo &bugInfo(BugId id);

/**
 * Lookup by paper name, case-insensitive; "none" resolves to the
 * BugId::None metadata. Returns nullptr for unknown names.
 */
const BugInfo *findBugByName(const std::string &name);

/** Lookup by paper name (case-insensitive); BugId::None if unknown. */
BugId bugByName(const std::string &name);

} // namespace mcversi::sim

#endif // MCVERSI_SIM_BUGS_HH
