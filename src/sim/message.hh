/**
 * @file
 * Coherence messages and node addressing.
 *
 * Message types cover both protocols (two-level MESI and TSO-CC). Each
 * message travels on a virtual network (vnet); the network preserves
 * point-to-point FIFO order *within* a vnet but freely reorders across
 * vnets. In particular invalidations (vnet Fwd) can overtake data
 * responses (vnet Resp), which is what makes the IS_I ("Peekaboo")
 * window reachable.
 */

#ifndef MCVERSI_SIM_MESSAGE_HH
#define MCVERSI_SIM_MESSAGE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"

namespace mcversi::sim {

/** Flat node id: cores/L1s, L2 tiles, memory controller. */
using NodeId = std::int32_t;

inline constexpr NodeId kMemNode = 200;

constexpr NodeId
coreNode(Pid pid)
{
    return static_cast<NodeId>(pid);
}

constexpr NodeId
l2Node(int tile)
{
    return 100 + tile;
}

constexpr bool
isL2Node(NodeId n)
{
    return n >= 100 && n < 200;
}

constexpr int
l2Tile(NodeId n)
{
    return n - 100;
}

/** Virtual networks. */
enum class Vnet : std::uint8_t {
    Request = 0,  ///< L1 -> L2 requests, Unblock
    Response = 1, ///< data and ack responses
    Fwd = 2,      ///< L2 -> L1 invalidations/forwards/wb-acks
    Mem = 3,      ///< L2 <-> memory
};

inline constexpr int kNumVnets = 4;

/** Functional contents of one cache line. */
struct LineData
{
    std::array<WriteVal, kLineBytes / kWordBytes> words{};

    WriteVal
    word(Addr addr) const
    {
        return words[wordInLine(addr)];
    }

    void
    setWord(Addr addr, WriteVal v)
    {
        words[wordInLine(addr)] = v;
    }

    friend bool operator==(const LineData &, const LineData &) = default;
};

/** Message types across both protocols. */
enum class MsgType : std::uint8_t {
    // L1 -> L2 requests (Request vnet).
    GETS,
    GETX,
    UPGRADE,
    PUTS,
    PUTX,
    Unblock,

    // Data/ack responses (Response vnet). Data flows L2->L1 or L1->L1.
    Data,
    AckCount,
    InvAck,
    WbDataToL2,
    RecallData,
    RecallAckNoData,

    // L2 -> L1 forwards/invalidations (Fwd vnet).
    Inv,
    Recall,
    FwdGETS,
    FwdGETX,
    WbAck,
    WbNack,
    TsReset,

    // L2 <-> memory (Mem vnet).
    MemRead,
    MemWrite,
    MemData,
};

const char *msgTypeName(MsgType t);

/** TSO-CC per-line timestamp metadata. */
struct TsMeta
{
    Pid writer = kInitPid; ///< kInitPid: no metadata (conservative)
    std::uint32_t ts = 0;
    std::uint32_t epoch = 0;

    bool valid() const { return writer != kInitPid; }
};

/** One coherence / memory message. */
struct Msg
{
    MsgType type = MsgType::GETS;
    Addr line = 0;
    NodeId src = 0;
    NodeId dst = 0;
    Vnet vnet = Vnet::Request;

    /** Original requesting core (forwards, data grants). */
    Pid requester = kInitPid;
    /** Where invalidation acks must be sent. */
    NodeId ackTarget = 0;

    LineData data{};
    bool hasData = false;
    bool dirty = false;
    bool exclusive = false;
    /** Invalidation acks the requester must collect. */
    int ackCount = 0;

    TsMeta meta{};

    std::string toString() const;
};

/** Anything that can receive messages from the network. */
class MsgHandler
{
  public:
    virtual ~MsgHandler() = default;
    virtual void handleMsg(const Msg &msg) = 0;
};

/**
 * Slab-backed freelist pool of Msg payloads.
 *
 * Delivery and delayed-send events reference pool-owned Msg storage
 * instead of capturing a full Msg copy in a heap-allocated closure;
 * after warmup, acquire/release never touch the heap. Slabs are only
 * ever added, so Msg pointers stay stable for the pool's lifetime.
 */
class MsgPool
{
  public:
    /** Fresh default-constructed message (caller fills it in). */
    Msg *
    acquire()
    {
        Msg *m = takeSlot();
        *m = Msg{};
        return m;
    }

    /** Pool-owned copy of @p src. */
    Msg *
    acquireCopy(const Msg &src)
    {
        Msg *m = takeSlot();
        *m = src;
        return m;
    }

    /** Return a message to the freelist. */
    void release(Msg *m) { free_.push_back(m); }

    /** Slabs allocated over the pool's lifetime (perf instrumentation). */
    std::uint64_t slabsAllocated() const { return slabAllocs_; }

    std::size_t capacity() const { return slabs_.size() * kSlabSize; }

  private:
    static constexpr std::size_t kSlabSize = 64;

    Msg *
    takeSlot()
    {
        if (free_.empty())
            addSlab();
        Msg *m = free_.back();
        free_.pop_back();
        return m;
    }

    void
    addSlab()
    {
        slabs_.push_back(std::make_unique<Msg[]>(kSlabSize));
        Msg *base = slabs_.back().get();
        free_.reserve(free_.size() + kSlabSize);
        for (std::size_t i = kSlabSize; i > 0; --i)
            free_.push_back(base + (i - 1));
        ++slabAllocs_;
    }

    std::vector<std::unique_ptr<Msg[]>> slabs_;
    std::vector<Msg *> free_;
    std::uint64_t slabAllocs_ = 0;
};

} // namespace mcversi::sim

#endif // MCVERSI_SIM_MESSAGE_HH
