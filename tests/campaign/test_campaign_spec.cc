/**
 * @file
 * CampaignSpec parsing contract: key=value round-trip, rejection of
 * unknown keys and bad values, matrix expansion cardinality, and the
 * CLI list helpers.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "campaign/registry.hh"
#include "campaign/spec.hh"

using namespace mcversi;
using namespace mcversi::campaign;

TEST(CampaignSpec, DefaultsRoundTripThroughString)
{
    const CampaignSpec spec;
    EXPECT_EQ(CampaignSpec::fromString(spec.toString()), spec);
}

TEST(CampaignSpec, EveryFieldRoundTripsThroughString)
{
    CampaignSpec spec;
    spec.bug = "MESI,LQ+IS,Inv"; // commas must survive
    spec.generator = "McVerSi-Std.XO";
    spec.seed = 123456789;
    spec.protocol = "tsocc";
    spec.testSize = 192;
    spec.iterations = 7;
    spec.memSize = 1024;
    spec.stride = 32;
    spec.guestThreads = 4;
    spec.population = 40;
    spec.islands = 4;
    spec.migration = 128;
    spec.batch = 16;
    spec.maxTestRuns = 777;
    spec.maxWallSeconds = 2.5;
    spec.litmusIterations = 9;
    spec.recordNdt = true;
    spec.checkMode = "streaming";
    spec.witnessWindow = 2048;

    const CampaignSpec parsed =
        CampaignSpec::fromString(spec.toString());
    EXPECT_EQ(parsed, spec);
    // And the canonical form is a fixed point.
    EXPECT_EQ(parsed.toString(), spec.toString());
}

TEST(CampaignSpec, EvolutionKnobsParseAndValidate)
{
    CampaignSpec spec;
    spec.set("islands=4");
    spec.set("migration=64");
    spec.set("batch=16");
    EXPECT_EQ(spec.islands, 4u);
    EXPECT_EQ(spec.migration, 64u);
    EXPECT_EQ(spec.batch, 16u);
    EXPECT_TRUE(spec.usesParallelHarness());
    EXPECT_NO_THROW(spec.validate());

    // migration=0 disables migration but stays valid.
    spec.set("migration=0");
    EXPECT_NO_THROW(spec.validate());

    EXPECT_THROW(spec.set("islands=0"), std::invalid_argument);
    EXPECT_THROW(spec.set("batch=0"), std::invalid_argument);
    EXPECT_THROW(spec.set("islands=-3"), std::invalid_argument);

    // Out-of-range topology is rejected by validate().
    CampaignSpec big;
    big.islands = 65;
    EXPECT_THROW(big.validate(), std::invalid_argument);
    CampaignSpec huge;
    huge.batch = 5000;
    EXPECT_THROW(huge.validate(), std::invalid_argument);

    // The defaults keep the serial harness.
    EXPECT_FALSE(CampaignSpec{}.usesParallelHarness());

    // Litmus generators run the serial litmus loop: asking for the
    // batched harness is a spec error, not a silent no-op.
    CampaignSpec litmus;
    litmus.generator = "diy-litmus";
    litmus.islands = 4;
    EXPECT_THROW(litmus.validate(), std::invalid_argument);
    litmus.islands = 1;
    litmus.batch = 8;
    EXPECT_THROW(litmus.validate(), std::invalid_argument);
    litmus.batch = 1;
    EXPECT_NO_THROW(litmus.validate());

    // Derived view forwards to the engine params.
    CampaignSpec derived;
    derived.islands = 3;
    derived.migration = 99;
    const gp::EvolutionParams evo = derived.evolutionParams();
    EXPECT_EQ(evo.islands, 3u);
    EXPECT_EQ(evo.migrationInterval, 99u);
}

TEST(CampaignSpec, KeyValueSettersParse)
{
    CampaignSpec spec;
    spec.set("mem-size=8k");
    EXPECT_EQ(spec.memSize, 8u * 1024u);
    spec.set("protocol", "TSO-CC");
    EXPECT_EQ(spec.protocol, "tsocc");
    spec.set("record-ndt=true");
    EXPECT_TRUE(spec.recordNdt);
    spec.set("record-ndt=0");
    EXPECT_FALSE(spec.recordNdt);
    spec.set("seed=0x10");
    EXPECT_EQ(spec.seed, 16u);
}

TEST(CampaignSpec, UnknownKeysRejected)
{
    CampaignSpec spec;
    EXPECT_THROW(spec.set("frobnicate=1"), std::invalid_argument);
    EXPECT_THROW(spec.set("no-equals-sign"), std::invalid_argument);
    EXPECT_THROW(spec.set("=value"), std::invalid_argument);
    EXPECT_THROW(CampaignSpec::fromString("bug=none bogus=1"),
                 std::invalid_argument);
}

TEST(CampaignSpec, BadValuesRejected)
{
    CampaignSpec spec;
    EXPECT_THROW(spec.set("seed=abc"), std::invalid_argument);
    EXPECT_THROW(spec.set("seed=-5"), std::invalid_argument);
    EXPECT_THROW(spec.set("seed=12junk"), std::invalid_argument);
    EXPECT_THROW(spec.set("test-size=0"), std::invalid_argument);
    EXPECT_THROW(spec.set("iterations="), std::invalid_argument);
    EXPECT_THROW(spec.set("max-seconds=nope"), std::invalid_argument);
    EXPECT_THROW(spec.set("max-seconds=-1"), std::invalid_argument);
    EXPECT_THROW(spec.set("record-ndt=maybe"), std::invalid_argument);
    EXPECT_THROW(spec.set("protocol=alpha"), std::invalid_argument);
}

TEST(CampaignSpec, ValidateChecksBugGeneratorAndGeometry)
{
    CampaignSpec spec;
    EXPECT_NO_THROW(spec.validate());

    CampaignSpec bad_bug = spec;
    bad_bug.bug = "bogus";
    EXPECT_THROW(bad_bug.validate(), std::invalid_argument);

    CampaignSpec bad_gen = spec;
    bad_gen.generator = "no-such-generator";
    EXPECT_THROW(bad_gen.validate(), std::invalid_argument);

    // Case-insensitive names pass.
    CampaignSpec spongy = spec;
    spongy.bug = "sq+no-fifo";
    spongy.generator = "mcversi-rand";
    EXPECT_NO_THROW(spongy.validate());

    // Protocol strings assigned directly (bypassing set()'s
    // normalization) must be caught, not silently fall back.
    CampaignSpec bad_protocol = spec;
    bad_protocol.protocol = "TSO-CC";
    EXPECT_THROW(bad_protocol.validate(), std::invalid_argument);

    CampaignSpec bad_geometry = spec;
    bad_geometry.memSize = 100; // not a multiple of stride 16
    EXPECT_THROW(bad_geometry.validate(), std::invalid_argument);

    CampaignSpec unbounded = spec;
    unbounded.maxTestRuns = 0;
    unbounded.maxWallSeconds = 0.0;
    EXPECT_THROW(unbounded.validate(), std::invalid_argument);
}

TEST(CampaignSpec, ProtocolResolution)
{
    CampaignSpec spec;
    spec.bug = "TSO-CC+compare";
    EXPECT_EQ(spec.resolvedProtocol(), sim::Protocol::Tsocc);
    EXPECT_STREQ(spec.protocolPrefix(), "TSOCC");

    spec.bug = "MESI,LQ+IS,Inv";
    EXPECT_EQ(spec.resolvedProtocol(), sim::Protocol::Mesi);

    // Explicit protocol overrides the bug's hint.
    spec.bug = "none";
    spec.protocol = "tsocc";
    EXPECT_EQ(spec.resolvedProtocol(), sim::Protocol::Tsocc);

    const sim::SystemConfig config = spec.systemConfig();
    EXPECT_EQ(config.protocol, sim::Protocol::Tsocc);
    EXPECT_EQ(config.bug, sim::BugId::None);
}

TEST(CampaignMatrix, ExpandCardinalityIsTheProduct)
{
    CampaignMatrix matrix;
    matrix.bugs = {"MESI,LQ+IS,Inv", "SQ+no-FIFO"};
    matrix.generators = {"McVerSi-ALL", "McVerSi-Std.XO",
                         "McVerSi-RAND"};
    matrix.seeds = {1, 2, 3, 4};
    const std::vector<CampaignSpec> specs = matrix.expand();
    ASSERT_EQ(specs.size(), 2u * 3u * 4u);

    // Bug-major, then generator, then seed.
    EXPECT_EQ(specs[0].bug, "MESI,LQ+IS,Inv");
    EXPECT_EQ(specs[0].generator, "McVerSi-ALL");
    EXPECT_EQ(specs[0].seed, 1u);
    EXPECT_EQ(specs[1].seed, 2u);
    EXPECT_EQ(specs[4].generator, "McVerSi-Std.XO");
    EXPECT_EQ(specs[12].bug, "SQ+no-FIFO");

    // Non-axis fields come from the base spec.
    CampaignMatrix scaled = matrix;
    scaled.base.testSize = 99;
    for (const CampaignSpec &spec : scaled.expand())
        EXPECT_EQ(spec.testSize, 99u);
}

TEST(CampaignMatrix, EmptyAxesFallBackToTheBaseSpec)
{
    CampaignMatrix matrix;
    matrix.base.bug = "SQ+no-FIFO";
    const std::vector<CampaignSpec> specs = matrix.expand();
    ASSERT_EQ(specs.size(), 1u);
    EXPECT_EQ(specs[0], matrix.base);
}

TEST(CampaignListHelpers, SeedLists)
{
    EXPECT_EQ(parseSeedList("1..4"),
              (std::vector<std::uint64_t>{1, 2, 3, 4}));
    EXPECT_EQ(parseSeedList("7"), (std::vector<std::uint64_t>{7}));
    EXPECT_EQ(parseSeedList("5;9;17"),
              (std::vector<std::uint64_t>{5, 9, 17}));
    EXPECT_THROW(parseSeedList("4..1"), std::invalid_argument);
    EXPECT_THROW(parseSeedList("x..9"), std::invalid_argument);
    EXPECT_THROW(parseSeedList(""), std::invalid_argument);
}

TEST(CampaignListHelpers, BugLists)
{
    EXPECT_EQ(resolveBugList("all").size(), sim::allBugs().size());
    // Protocol filters include the protocol-agnostic bugs.
    EXPECT_EQ(resolveBugList("mesi").size(), 9u);
    EXPECT_EQ(resolveBugList("tsocc").size(), 4u);
    EXPECT_EQ(resolveBugList("MESI,LQ+IS,Inv;SQ+no-FIFO"),
              (std::vector<std::string>{"MESI,LQ+IS,Inv",
                                        "SQ+no-FIFO"}));
}

TEST(CampaignRegistry, BuiltinsAndAliases)
{
    SourceRegistry &registry = SourceRegistry::instance();
    EXPECT_TRUE(registry.has("McVerSi-ALL"));
    EXPECT_TRUE(registry.has("mcversi-all"));
    EXPECT_EQ(registry.canonicalName("rand"), "McVerSi-RAND");
    EXPECT_EQ(registry.canonicalName("stdxo"), "McVerSi-Std.XO");
    EXPECT_FALSE(registry.has("no-such-generator"));
    EXPECT_TRUE(registry.isLitmus("diy-litmus"));
    EXPECT_FALSE(registry.isLitmus("McVerSi-ALL"));

    // Source construction honours the spec and reports paper names.
    CampaignSpec spec;
    const auto source = registry.make("rand", spec);
    ASSERT_NE(source, nullptr);
    EXPECT_EQ(source->name(), "McVerSi-RAND");
    EXPECT_THROW(registry.make("diy-litmus", spec),
                 std::invalid_argument);
    EXPECT_THROW(registry.make("bogus", spec), std::invalid_argument);

    EXPECT_EQ(resolveGeneratorList("all"), registry.names());
}

TEST(CampaignSpec, CheckCacheKeyParsesAndRoundTrips)
{
    CampaignSpec spec;
    EXPECT_EQ(spec.checkCache, 4096u); // collective checking default-on

    spec.set("check-cache=8k");
    EXPECT_EQ(spec.checkCache, 8u * 1024u);
    spec.set("check-cache=off");
    EXPECT_EQ(spec.checkCache, 0u);
    spec.set("check-cache=0");
    EXPECT_EQ(spec.checkCache, 0u);
    EXPECT_THROW(spec.set("check-cache=maybe"), std::invalid_argument);
    EXPECT_THROW(spec.set("check-cache=-1"), std::invalid_argument);

    spec.checkCache = 512;
    EXPECT_EQ(CampaignSpec::fromString(spec.toString()).checkCache,
              512u);

    // The knob reaches the harness params; 0 disables memoization.
    EXPECT_EQ(spec.harnessParams().checkCacheEntries, 512u);
    spec.checkCache = 0;
    EXPECT_EQ(spec.harnessParams().checkCacheEntries, 0u);

    // validate() caps the per-checker footprint.
    CampaignSpec capped;
    capped.checkCache = (1u << 22) + 1;
    EXPECT_THROW(capped.validate(), std::invalid_argument);
    capped.checkCache = 1u << 22;
    EXPECT_NO_THROW(capped.validate());
}

TEST(CampaignSpec, ModelKeyParsesValidatesAndExpands)
{
    CampaignSpec spec;
    EXPECT_EQ(spec.model, "tso"); // the paper's target model

    // set() lower-cases and round-trips through toString().
    spec.set("model=PSO");
    EXPECT_EQ(spec.model, "pso");
    EXPECT_EQ(CampaignSpec::fromString(spec.toString()).model, "pso");
    EXPECT_NO_THROW(spec.validate());

    // Unknown models are rejected at set() time, naming the key and
    // listing what is registered.
    try {
        spec.set("model=alpha");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("model"), std::string::npos) << what;
        EXPECT_NE(what.find("sc, tso, pso, rmo, rc"),
                  std::string::npos)
            << what;
    }

    // Direct assignment (bypassing set()) is caught by validate().
    CampaignSpec direct;
    direct.model = "alpha";
    EXPECT_THROW(direct.validate(), std::invalid_argument);

    // The model reaches the harness checker configuration.
    CampaignSpec weak;
    weak.set("model=rmo");
    EXPECT_EQ(weak.harnessParams().model, "rmo");

    // Matrix: models expand between generators and seeds.
    CampaignMatrix matrix;
    matrix.generators = {"McVerSi-ALL", "McVerSi-RAND"};
    matrix.models = {"tso", "pso", "rmo"};
    matrix.seeds = {1, 2};
    const std::vector<CampaignSpec> specs = matrix.expand();
    ASSERT_EQ(specs.size(), 2u * 3u * 2u);
    EXPECT_EQ(specs[0].model, "tso");
    EXPECT_EQ(specs[1].model, "tso");
    EXPECT_EQ(specs[2].model, "pso");
    EXPECT_EQ(specs[4].model, "rmo");
    EXPECT_EQ(specs[6].generator, "McVerSi-RAND");
    EXPECT_EQ(specs[6].model, "tso");

    // An empty axis inherits the base spec's model.
    CampaignMatrix plain;
    plain.base.set("model=rc");
    ASSERT_EQ(plain.expand().size(), 1u);
    EXPECT_EQ(plain.expand()[0].model, "rc");
}

TEST(CampaignSpec, WitnessWindowParsesValidatesAndRoundTrips)
{
    CampaignSpec spec;
    EXPECT_EQ(spec.witnessWindow, 0u); // unbounded by default

    // Suffixed sizes parse like the other size keys; off/0 disable.
    spec.set("check-mode=streaming");
    spec.set("witness-window=8k");
    EXPECT_EQ(spec.witnessWindow, 8u * 1024u);
    spec.set("witness-window=off");
    EXPECT_EQ(spec.witnessWindow, 0u);
    spec.set("witness-window=0");
    EXPECT_EQ(spec.witnessWindow, 0u);
    EXPECT_THROW(spec.set("witness-window=maybe"),
                 std::invalid_argument);
    EXPECT_THROW(spec.set("witness-window=-1"), std::invalid_argument);

    spec.set("witness-window=4096");
    EXPECT_EQ(CampaignSpec::fromString(spec.toString()).witnessWindow,
              4096u);
    EXPECT_NO_THROW(spec.validate());

    // The knob reaches the harness workload params.
    EXPECT_EQ(spec.harnessParams().workload.witnessWindow, 4096u);

    // Bounded windows require streaming checking (post-hoc needs the
    // whole event log)...
    CampaignSpec posthoc;
    posthoc.witnessWindow = 4096;
    EXPECT_THROW(posthoc.validate(), std::invalid_argument);
    // ...at least one iteration's worth of in-flight events...
    CampaignSpec tiny;
    tiny.checkMode = "streaming";
    tiny.witnessWindow = 32;
    EXPECT_THROW(tiny.validate(), std::invalid_argument);
    // ...and a sane upper bound.
    CampaignSpec huge;
    huge.checkMode = "streaming";
    huge.witnessWindow = (std::size_t{1} << 26) + 1;
    EXPECT_THROW(huge.validate(), std::invalid_argument);
    huge.witnessWindow = std::size_t{1} << 26;
    EXPECT_NO_THROW(huge.validate());
}

TEST(CampaignListHelpers, ThreadCountParsing)
{
    EXPECT_EQ(parseThreadCount("threads", "4"), 4);
    EXPECT_EQ(parseThreadCount("eval-threads", "1"), 1);
    EXPECT_EQ(parseThreadCount("threads", "0x10"), 16);

    // Explicit zero is rejected: hardware concurrency is selected by
    // omitting the key, never by a sentinel value.
    EXPECT_THROW(parseThreadCount("threads", "0"),
                 std::invalid_argument);
    // Negatives must not wrap through unsigned parsing...
    EXPECT_THROW(parseThreadCount("threads", "-2"),
                 std::invalid_argument);
    // ...and trailing garbage must not silently truncate ("4x" -> 4,
    // the old std::stoi behavior).
    EXPECT_THROW(parseThreadCount("threads", "4x"),
                 std::invalid_argument);
    EXPECT_THROW(parseThreadCount("eval-threads", ""),
                 std::invalid_argument);
    EXPECT_THROW(parseThreadCount("threads", "5000"),
                 std::invalid_argument);

    // The error names the offending key.
    try {
        parseThreadCount("eval-threads", "-2");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find("eval-threads"),
                  std::string::npos);
    }
}
