#include "litmus/suites.hh"

#include <stdexcept>

#include "memconsistency/models/registry.hh"

namespace mcversi::litmus {

namespace {

LitmusTest
mustBuild(const CycleSpec &spec, const char *name)
{
    auto test = buildTest(spec);
    if (!test)
        throw std::logic_error(std::string("invalid litmus spec: ") +
                               name);
    return *test;
}

/**
 * Classify one enumerated cycle: walk it thread by thread (comm edges
 * advance the thread, exactly as buildTest lays events out) collecting
 * the program-order edges. If every po edge lies in one thread, the
 * cycle's comm edges chain back onto that thread's own accesses and the
 * forbidden outcome contradicts coherence alone (po-loc), making it
 * forbidden under every model.
 */
SuiteEntry
classify(const CycleSpec &spec, LitmusTest test)
{
    SuiteEntry entry;
    entry.test = std::move(test);
    int tid = 0;
    int po_tid = -1;
    bool uniproc = true;
    for (const EdgeType e : spec) {
        if (isCommEdge(e)) {
            ++tid;
            continue;
        }
        entry.poEdges.push_back(e);
        if (po_tid < 0)
            po_tid = tid;
        else if (po_tid != tid)
            uniproc = false;
    }
    entry.uniproc = uniproc;
    if (uniproc)
        entry.poEdges.clear();
    return entry;
}

} // namespace

const std::vector<SuiteEntry> &
litmusPool()
{
    static const std::vector<SuiteEntry> pool = [] {
        std::vector<SuiteEntry> entries;
        for (const CycleSpec &spec : enumerateCycles(6, kX86SuiteSize)) {
            if (entries.size() >= kX86SuiteSize)
                break;
            if (auto test = buildTest(spec))
                entries.push_back(classify(spec, std::move(*test)));
        }

        SuiteEntry sb;
        sb.test = storeBuffering();
        sb.poEdges = {EdgeType::PodWR, EdgeType::PodWR};
        entries.push_back(std::move(sb));

        SuiteEntry mp_sync;
        mp_sync.test = messagePassingRelAcq();
        mp_sync.needsRelAcq = true;
        entries.push_back(std::move(mp_sync));

        return entries;
    }();
    return pool;
}

bool
forbiddenUnder(const SuiteEntry &entry, const mc::ModelProfile &model)
{
    if (entry.uniproc)
        return true;
    if (entry.needsRelAcq) {
        // Any RMW fencing (full or release/acquire) orders the
        // synchronization pair; a fence-free model needs the full ppo.
        return model.rmwFence != mc::RmwSemantics::None ||
               (model.orderRR && model.orderRW && model.orderWR &&
                model.orderWW);
    }
    for (const EdgeType e : entry.poEdges) {
        bool ordered = true;
        switch (e) {
          case EdgeType::PodRR: ordered = model.orderRR; break;
          case EdgeType::PodRW: ordered = model.orderRW; break;
          case EdgeType::PodWW: ordered = model.orderWW; break;
          case EdgeType::PodWR: ordered = model.orderWR; break;
          case EdgeType::MFencedWR:
            // A full fence bridges the W -> R; so does plain ppo in a
            // model that never relaxes write-to-read in the first
            // place. Release/acquire alone does not: the release edge
            // ends at the RMW's write, the acquire edge starts at its
            // read, and nothing connects the two downward.
            ordered = model.rmwFence == mc::RmwSemantics::Full ||
                      model.orderWR;
            break;
          default:
            break; // comm edges never appear in poEdges
        }
        if (!ordered)
            return false;
    }
    return true;
}

std::vector<LitmusTest>
suiteForModel(const std::string &model)
{
    const mc::ModelProfile profile = mc::modelProfile(model);
    std::vector<LitmusTest> suite;
    for (const SuiteEntry &entry : litmusPool())
        if (forbiddenUnder(entry, profile))
            suite.push_back(entry.test);
    return suite;
}

std::vector<LitmusTest>
x86TsoSuite()
{
    std::vector<LitmusTest> suite;
    for (const CycleSpec &spec : enumerateCycles(6, kX86SuiteSize)) {
        if (auto test = buildTest(spec))
            suite.push_back(std::move(*test));
        if (suite.size() >= kX86SuiteSize)
            break;
    }
    return suite;
}

LitmusTest
messagePassing()
{
    LitmusTest t = mustBuild({EdgeType::PodWW, EdgeType::Rfe,
                              EdgeType::PodRR, EdgeType::Fre},
                             "MP");
    t.name = "MP (" + t.name + ")";
    return t;
}

LitmusTest
storeBuffering()
{
    LitmusTest t = mustBuild({EdgeType::PodWR, EdgeType::Fre,
                              EdgeType::PodWR, EdgeType::Fre},
                             "SB");
    t.name = "SB (" + t.name + ")";
    return t;
}

LitmusTest
storeBufferingFenced()
{
    LitmusTest t = mustBuild({EdgeType::MFencedWR, EdgeType::Fre,
                              EdgeType::MFencedWR, EdgeType::Fre},
                             "SB+fences");
    t.name = "SB+fences (" + t.name + ")";
    return t;
}

LitmusTest
loadBuffering()
{
    LitmusTest t = mustBuild({EdgeType::PodRW, EdgeType::Rfe,
                              EdgeType::PodRW, EdgeType::Rfe},
                             "LB");
    t.name = "LB (" + t.name + ")";
    return t;
}

LitmusTest
twoPlusTwoW()
{
    LitmusTest t = mustBuild({EdgeType::PodWW, EdgeType::Coe,
                              EdgeType::PodWW, EdgeType::Coe},
                             "2+2W");
    t.name = "2+2W (" + t.name + ")";
    return t;
}

LitmusTest
messagePassingRelAcq()
{
    LitmusTest t;
    t.name = "MP+rel-acq";
    t.numThreads = 2;
    t.numAddrs = 2;

    std::vector<gp::Node> flat;
    const auto add = [&](Pid pid, gp::OpKind kind, Addr addr) {
        gp::Node node;
        node.pid = pid;
        node.op.kind = kind;
        node.op.addr = addr;
        flat.push_back(node);
    };
    add(0, gp::OpKind::Write, 0);                     // t0: x = 1
    add(0, gp::OpKind::ReadModifyWrite, kLineBytes);  // t0: release s
    add(1, gp::OpKind::ReadModifyWrite, kLineBytes);  // t1: acquire s
    add(1, gp::OpKind::Read, 0);                      // t1: load x
    t.test = gp::Test(std::move(flat));

    // t1's RMW reads t0's RMW write, yet the po-later load of x still
    // sees the initial value.
    CondAtom sync;
    sync.kind = CondAtom::Kind::ReadsFrom;
    sync.pid = 1;
    sync.slot = 0;
    sync.otherPid = 0;
    sync.otherSlot = 1;
    CondAtom stale;
    stale.kind = CondAtom::Kind::ReadsInit;
    stale.pid = 1;
    stale.slot = 1;
    t.forbidden = {sync, stale};
    return t;
}

} // namespace mcversi::litmus
