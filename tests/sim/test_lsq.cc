/** @file Store queue (post-commit store buffer) tests. */

#include <gtest/gtest.h>

#include "sim/cpu/lsq.hh"

using namespace mcversi::sim;
using mcversi::Rng;

TEST(StoreQueue, FifoDrainOnlyHeadWhenRetired)
{
    StoreQueue sq(8);
    Rng rng(1);
    sq.push(0, 0x100, 1);
    sq.push(1, 0x200, 2);
    EXPECT_EQ(sq.drainCandidate(true, rng), nullptr)
        << "nothing retired yet";
    sq.retire(1);
    EXPECT_EQ(sq.drainCandidate(true, rng), nullptr)
        << "head not retired: FIFO blocks";
    sq.retire(0);
    StoreQueue::Entry *e = sq.drainCandidate(true, rng);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->slot, 0u);
}

TEST(StoreQueue, OutOfOrderDrainBypassesHead)
{
    // The SQ+no-FIFO bug: any retired entry may drain.
    StoreQueue sq(8);
    Rng rng(2);
    sq.push(0, 0x100, 1);
    sq.push(1, 0x200, 2);
    sq.retire(1); // only the younger store retired? (cannot happen in
                  // program order, but the structure allows testing)
    StoreQueue::Entry *e = sq.drainCandidate(false, rng);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->slot, 1u);
}

TEST(StoreQueue, OutOfOrderDrainEventuallyPicksNonHead)
{
    StoreQueue sq(8);
    Rng rng(3);
    sq.push(0, 0x100, 1);
    sq.push(1, 0x200, 2);
    sq.retire(0);
    sq.retire(1);
    bool picked_non_head = false;
    for (int i = 0; i < 100 && !picked_non_head; ++i) {
        StoreQueue::Entry *e = sq.drainCandidate(false, rng);
        ASSERT_NE(e, nullptr);
        if (e->slot == 1)
            picked_non_head = true;
    }
    EXPECT_TRUE(picked_non_head);
}

TEST(StoreQueue, ForwardYoungestOlderMatch)
{
    StoreQueue sq(8);
    sq.push(0, 0x100, 10);
    sq.push(2, 0x100, 20);
    sq.push(4, 0x200, 30);
    // A load at slot 5 reading 0x100 forwards from slot 2 (youngest
    // older match).
    auto v = sq.forward(0x100, 5);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 20u);
    // A load at slot 1 only sees slot 0.
    v = sq.forward(0x100, 1);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 10u);
    // No match for other addresses or older slots.
    EXPECT_FALSE(sq.forward(0x300, 5).has_value());
    EXPECT_FALSE(sq.forward(0x100, 0).has_value());
}

TEST(StoreQueue, PopRemovesBySlot)
{
    StoreQueue sq(4);
    sq.push(0, 0x100, 1);
    sq.push(1, 0x200, 2);
    sq.pop(0);
    EXPECT_EQ(sq.size(), 1u);
    EXPECT_FALSE(sq.forward(0x100, 5).has_value());
    EXPECT_TRUE(sq.forward(0x200, 5).has_value());
}

TEST(StoreQueue, CapacityAndDrainedState)
{
    StoreQueue sq(2);
    EXPECT_TRUE(sq.drained());
    EXPECT_FALSE(sq.full());
    sq.push(0, 0x100, 1);
    sq.push(1, 0x200, 2);
    EXPECT_TRUE(sq.full());
    EXPECT_FALSE(sq.drained());
    sq.pop(0);
    sq.pop(1);
    EXPECT_TRUE(sq.drained());
}

TEST(StoreQueue, HasRetiredEntries)
{
    StoreQueue sq(4);
    EXPECT_FALSE(sq.hasRetiredEntries());
    sq.push(0, 0x100, 1);
    EXPECT_FALSE(sq.hasRetiredEntries())
        << "dispatched but unretired stores do not block an RMW";
    sq.retire(0);
    EXPECT_TRUE(sq.hasRetiredEntries());
    sq.pop(0);
    EXPECT_FALSE(sq.hasRetiredEntries());
}

TEST(StoreQueue, InFlightEntriesNotRedrained)
{
    StoreQueue sq(4);
    Rng rng(4);
    sq.push(0, 0x100, 1);
    sq.retire(0);
    StoreQueue::Entry *e = sq.drainCandidate(true, rng);
    ASSERT_NE(e, nullptr);
    e->inFlight = true;
    EXPECT_EQ(sq.drainCandidate(true, rng), nullptr);
    EXPECT_EQ(sq.drainCandidate(false, rng), nullptr);
}

TEST(StoreQueue, ClearEmpties)
{
    StoreQueue sq(4);
    sq.push(0, 0x100, 1);
    sq.clear();
    EXPECT_TRUE(sq.drained());
    EXPECT_EQ(sq.size(), 0u);
}
