/**
 * @file
 * Example: generate and run the x86-TSO litmus suite (diy-litmus
 * configuration of the paper).
 *
 * Prints the generated suite (diy-style edge names), then cycles it
 * against a chosen system until a forbidden outcome or the budget
 * expires.
 *
 * Usage: litmus_suite [bug-name] [max-test-runs]
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "mcversi.hh"

using namespace mcversi;

int
main(int argc, char **argv)
{
    const std::string bug_name = argc > 1 ? argv[1] : "SQ+no-FIFO";
    const std::uint64_t max_runs =
        argc > 2 ? std::strtoull(argv[2], nullptr, 0) : 2000;

    const sim::BugId bug =
        bug_name == "none" ? sim::BugId::None : sim::bugByName(bug_name);

    auto suite = litmus::x86TsoSuite();
    std::cout << "generated " << suite.size()
              << " x86-TSO litmus tests:\n";
    for (std::size_t i = 0; i < suite.size(); ++i) {
        std::cout << "  [" << i << "] " << suite[i].name << " ("
                  << suite[i].numThreads << " threads, "
                  << suite[i].numAddrs << " vars)\n";
    }

    litmus::LitmusRunner::Params params;
    params.system.bug = bug;
    params.system.seed = 7;
    params.system.protocol =
        sim::bugInfo(bug).protocol == sim::ProtocolKind::Tsocc
            ? sim::Protocol::Tsocc
            : sim::Protocol::Mesi;
    params.iterationsPerRun = 15;
    params.instances = 24;

    std::cout << "\nrunning against bug '"
              << sim::bugInfo(bug).name << "' (budget " << max_runs
              << " test-runs)...\n";
    litmus::LitmusRunner runner(params, std::move(suite));
    host::Budget budget;
    budget.maxTestRuns = max_runs;
    budget.maxWallSeconds = 120.0;
    const host::HarnessResult result = runner.run(budget);

    if (result.bugFound) {
        std::cout << "FORBIDDEN OUTCOME after " << result.testRunsToBug
                  << " litmus runs:\n  " << result.detail << "\n";
    } else {
        std::cout << "no forbidden outcome in " << result.testRuns
                  << " litmus runs (" << result.wallSeconds << " s)\n";
    }
    return 0;
}
