/**
 * @file
 * Litmus suite runner (the diy-litmus configuration of §5.2.2).
 *
 * Runs every test of a suite in an outer loop ("re-execute all tests
 * after the last of the tests has been executed"), since one cannot
 * pre-determine which test will detect an error. Detection is purely
 * self-checking -- a test fires only if its forbidden final condition
 * is observed -- plus protocol crashes (invalid transitions), which any
 * methodology would notice. The axiomatic checker is *not* consulted,
 * faithful to litmus methodology.
 */

#ifndef MCVERSI_LITMUS_RUNNER_HH
#define MCVERSI_LITMUS_RUNNER_HH

#include <memory>

#include "host/harness.hh"
#include "litmus/litmus.hh"

namespace mcversi::litmus {

/** Runs a litmus suite against one simulated system. */
class LitmusRunner
{
  public:
    struct Params
    {
        sim::SystemConfig system{};
        /**
         * Iterations of each test per test-run; the paper uses large
         * -s values post-silicon style, scaled down here for
         * simulation budgets.
         */
        int iterationsPerRun = 20;
        /**
         * Instances per iteration (the diy "-s size" array: each
         * instance has its own variables; running them back-to-back
         * lets thread drift open racy windows). Paper: 8000; scaled
         * down for simulation.
         */
        int instances = 24;
        /** Variable spacing: one cache line. */
        Addr addrStride = kLineBytes;
        /**
         * Consistency model the (crash-only) checker instance is tied
         * to; suites are supplied by the caller, typically
         * suiteForModel() of the same name.
         */
        std::string model = "tso";
        /**
         * Posthoc keeps pure litmus methodology (self-checking only;
         * the axiomatic checker is never consulted). Streaming arms
         * the online checker as an opt-in addition: the simulation
         * stops at the exact violating event even when the forbidden
         * final condition would not have fired.
         */
        mc::CheckMode checkMode = mc::CheckMode::Posthoc;
        /**
         * Bounded-window streaming (0 = unbounded), forwarded to the
         * workload. Litmus self-checks inspect the finalized witness,
         * so the workload keeps windows off while a forbidden-outcome
         * condition is attached -- today that is every litmus run; the
         * knob is plumbed for spec round-trips and condition-free
         * streaming soaks.
         */
        std::size_t witnessWindow = 0;
    };

    LitmusRunner(Params params, std::vector<LitmusTest> suite);

    /** Cycle through the suite until a bug is found or budget ends. */
    host::HarnessResult run(const host::Budget &budget);

    sim::System &system() { return *system_; }

  private:
    Params params_;
    std::vector<LitmusTest> suite_;
    std::unique_ptr<sim::System> system_;
    std::unique_ptr<mc::Checker> checker_;
    std::unique_ptr<host::Workload> workload_;
};

} // namespace mcversi::litmus

#endif // MCVERSI_LITMUS_RUNNER_HH
