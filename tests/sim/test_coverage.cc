/** @file Transition coverage tracker tests. */

#include <gtest/gtest.h>

#include "sim/coverage.hh"
#include "sim/fault.hh"
#include "sim/transition_table.hh"

using namespace mcversi::sim;

TEST(Coverage, RegistrationIsIdempotent)
{
    TransitionCoverage cov;
    const auto a = cov.registerTransition("C", "S1", "E1");
    const auto b = cov.registerTransition("C", "S1", "E1");
    const auto c = cov.registerTransition("C", "S1", "E2");
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    EXPECT_EQ(cov.numTransitions(), 2u);
}

TEST(Coverage, CountsAccumulate)
{
    TransitionCoverage cov;
    const auto id = cov.registerTransition("C", "S", "E");
    cov.record(id);
    cov.record(id);
    EXPECT_EQ(cov.counts()[id], 2u);
}

TEST(Coverage, TotalCoverageFraction)
{
    TransitionCoverage cov;
    const auto a = cov.registerTransition("C", "S", "E1");
    cov.registerTransition("C", "S", "E2");
    EXPECT_DOUBLE_EQ(cov.totalCoverage(), 0.0);
    cov.record(a);
    EXPECT_DOUBLE_EQ(cov.totalCoverage(), 0.5);
}

TEST(Coverage, PrefixCoverage)
{
    TransitionCoverage cov;
    const auto a = cov.registerTransition("MESI-L1", "S", "E");
    cov.registerTransition("MESI-L2", "S", "E");
    cov.record(a);
    EXPECT_DOUBLE_EQ(cov.totalCoverage("MESI-L1"), 1.0);
    EXPECT_DOUBLE_EQ(cov.totalCoverage("MESI-L2"), 0.0);
    EXPECT_DOUBLE_EQ(cov.totalCoverage("MESI"), 0.5);
    EXPECT_DOUBLE_EQ(cov.totalCoverage("TSOCC"), 0.0);
}

TEST(Coverage, RunDeltaCapturesCoveredIds)
{
    TransitionCoverage cov;
    const auto a = cov.registerTransition("C", "S", "E1");
    const auto b = cov.registerTransition("C", "S", "E2");
    cov.record(a); // before the run
    cov.beginRun();
    EXPECT_EQ(cov.preRunCounts()[a], 1u);
    cov.record(b);
    auto covered = cov.endRun();
    ASSERT_EQ(covered.size(), 1u);
    EXPECT_EQ(covered[0], b);
}

TEST(Coverage, RecordsOutsideRunNotInDelta)
{
    TransitionCoverage cov;
    const auto a = cov.registerTransition("C", "S", "E1");
    cov.beginRun();
    auto covered = cov.endRun();
    EXPECT_TRUE(covered.empty());
    cov.record(a);
    cov.beginRun();
    EXPECT_TRUE(cov.endRun().empty());
}

TEST(Coverage, NameLookup)
{
    TransitionCoverage cov;
    const auto a = cov.registerTransition("MESI-L1", "IS", "Inv");
    EXPECT_EQ(cov.name(a), "MESI-L1/IS/Inv");
}

TEST(TransitionTable, RecordsDefinedTransitions)
{
    TransitionCoverage cov;
    TransitionTable table(cov, "T", {"A", "B"}, {"x", "y"});
    table.define(0, 0);
    table.define(1, 1);
    EXPECT_TRUE(table.defined(0, 0));
    EXPECT_FALSE(table.defined(0, 1));
    table.record(0, 0);
    EXPECT_DOUBLE_EQ(cov.totalCoverage(), 0.5);
}

TEST(TransitionTable, UndefinedTransitionThrowsProtocolError)
{
    TransitionCoverage cov;
    TransitionTable table(cov, "T", {"A", "B"}, {"x", "y"});
    table.define(0, 0);
    try {
        table.record(1, 0);
        FAIL() << "expected ProtocolError";
    } catch (const ProtocolError &err) {
        EXPECT_EQ(err.controller(), "T");
        EXPECT_EQ(err.state(), "B");
        EXPECT_EQ(err.event(), "x");
        EXPECT_NE(std::string(err.what()).find("invalid transition"),
                  std::string::npos);
    }
}
