/**
 * @file
 * Figure 2 companion: measurable properties of the selective crossover.
 *
 * Figure 2 of the paper illustrates crossover and mutation on two
 * parents with fitaddrs {a,b} and {a,c}. This bench measures the
 * properties the figure depicts, over many random parent pairs:
 *
 *  1. every memory operation on a parent's fit address is inherited
 *     from that parent (selective preservation);
 *  2. slots unselected by both parents are mutated, biased to the
 *     union of fit addresses with probability PBFA;
 *  3. child length always equals parent length;
 *  4. the expected fraction of child slots inherited grows with the
 *     parents' fitaddr fractions.
 */

#include "bench_common.hh"

using namespace mcvbench;

int
main()
{
    const double scale = benchScale();
    const int trials = static_cast<int>(2000 * scale);

    gp::GenParams gen;
    gen.testSize = 256;
    gen.memSize = 8 * 1024;
    gp::GaParams ga;
    gp::RandomTestGen rtg(gen);
    Rng rng(42);

    std::printf("Figure 2: selective crossover properties over %d "
                "random parent pairs\n\n",
                trials);

    std::uint64_t fit_slots = 0;
    std::uint64_t fit_inherited = 0;
    std::uint64_t mutated_slots = 0;
    std::uint64_t mutated_to_fit_union = 0;
    std::uint64_t inherited_t1 = 0;
    std::uint64_t inherited_t2 = 0;
    std::uint64_t total_slots = 0;
    bool length_ok = true;

    for (int t = 0; t < trials; ++t) {
        gp::Test t1 = rtg.randomTest(rng);
        gp::Test t2 = rtg.randomTest(rng);
        // Synthesize fitaddrs like an evaluated test-run would.
        gp::NdInfo nd1;
        gp::NdInfo nd2;
        for (int i = 0; i < 3; ++i) {
            nd1.fitaddrs.insert(rtg.randomAddr(rng));
            nd2.fitaddrs.insert(rtg.randomAddr(rng));
        }
        gp::Test child =
            gp::crossoverMutate(t1, nd1, t2, nd2, rtg, ga, rng);
        length_ok = length_ok && (child.size() == t1.size());

        AddrSet fit_union = nd1.fitaddrs;
        fit_union.insert(nd2.fitaddrs);

        for (std::size_t i = 0; i < child.size(); ++i) {
            ++total_slots;
            const gp::Node &n1 = t1.node(i);
            const bool is_fit1 =
                n1.op.isMem() && nd1.fitaddrs.count(n1.op.addr);
            if (is_fit1) {
                ++fit_slots;
                if (child.node(i) == n1)
                    ++fit_inherited;
            }
            if (child.node(i) == t1.node(i)) {
                ++inherited_t1;
            } else if (child.node(i) == t2.node(i)) {
                ++inherited_t2;
            } else {
                ++mutated_slots;
                if (child.node(i).op.isMem() &&
                    fit_union.count(child.node(i).op.addr)) {
                    ++mutated_to_fit_union;
                }
            }
        }
    }

    std::printf("child length preserved:           %s\n",
                length_ok ? "yes" : "NO");
    std::printf("parent-1 fit slots inherited:     %.2f%% "
                "(expected 100%%)\n",
                100.0 * static_cast<double>(fit_inherited) /
                    static_cast<double>(fit_slots));
    std::printf("slots inherited from parent 1:    %.1f%%\n",
                100.0 * static_cast<double>(inherited_t1) /
                    static_cast<double>(total_slots));
    std::printf("slots inherited from parent 2:    %.1f%%\n",
                100.0 * static_cast<double>(inherited_t2) /
                    static_cast<double>(total_slots));
    std::printf("slots mutated:                    %.1f%%\n",
                100.0 * static_cast<double>(mutated_slots) /
                    static_cast<double>(total_slots));
    std::printf("mutations drawing fit addresses:  %.2f%% "
                "(PBFA = %.0f%% of mem-op mutations)\n",
                100.0 * static_cast<double>(mutated_to_fit_union) /
                    static_cast<double>(mutated_slots),
                100.0 * ga.pBfa);
    return length_ok &&
                   fit_inherited == fit_slots
               ? 0
               : 1;
}
