/**
 * @file
 * Differential test for collective checking: a Checker with the verdict
 * cache enabled must return byte-identical results -- kind, message,
 * and cycle -- to an uncached Checker on every witness, including
 * repeat presentations where the cached verdict short-circuits the full
 * analysis. Driven by the full x86-TSO golden litmus suite (forbidden
 * and sequential witness of each entry) plus seeded random witnesses,
 * consistent-by-construction and corrupted, so every CheckResult kind
 * crosses the cache path.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hh"
#include "litmus/suites.hh"
#include "memconsistency/checker.hh"
#include "memconsistency/models/registry.hh"
#include "witness_synthesis.hh"

using namespace mcversi;
using namespace mcversi::litmus;

namespace {

/**
 * Check @p ew with the cached checker three times (miss, then two
 * hits for Ok classes) and compare each result byte-for-byte against
 * the uncached verdict.
 */
void
expectByteIdentical(const mc::Checker &cached,
                    const mc::Checker &uncached, mc::ExecWitness &ew,
                    const std::string &label)
{
    const mc::CheckResult want = uncached.check(ew);
    for (int round = 0; round < 3; ++round) {
        const mc::CheckResult got = cached.check(ew);
        ASSERT_EQ(got.kind, want.kind)
            << label << " round " << round << ": cached='"
            << mc::CheckResult::kindName(got.kind) << "' uncached='"
            << mc::CheckResult::kindName(want.kind) << "'";
        ASSERT_EQ(got.message, want.message) << label << " round "
                                             << round;
        ASSERT_EQ(got.cycle, want.cycle) << label << " round " << round;
    }
}

/** Same randomized-witness generator as the checker differential test
 * (stale reads, fabricated values, co forks under corruption). */
mc::ExecWitness
randomWitness(Rng &rng, int threads, int ops, int addrs, bool corrupt)
{
    mc::ExecWitness ew;
    std::vector<WriteVal> memory(static_cast<std::size_t>(addrs),
                                 kInitVal);
    std::vector<std::int32_t> poi(static_cast<std::size_t>(threads), 0);
    std::vector<WriteVal> produced{kInitVal};
    WriteVal next = 1;

    for (int i = 0; i < ops; ++i) {
        const Pid pid = static_cast<Pid>(
            rng.below(static_cast<std::uint64_t>(threads)));
        const auto ai = static_cast<std::size_t>(
            rng.below(static_cast<std::uint64_t>(addrs)));
        const Addr addr = 0x100 + 64 * static_cast<Addr>(ai);
        const std::int32_t p = poi[static_cast<std::size_t>(pid)]++;
        const double roll = rng.uniform();

        auto read_val = [&]() {
            if (corrupt && rng.boolWithProb(0.15)) {
                if (rng.boolWithProb(0.2))
                    return static_cast<WriteVal>(90000 + rng.below(64));
                return produced[static_cast<std::size_t>(
                    rng.below(produced.size()))];
            }
            return memory[ai];
        };
        auto overwritten_val = [&]() {
            if (corrupt && rng.boolWithProb(0.1)) {
                return produced[static_cast<std::size_t>(
                    rng.below(produced.size()))];
            }
            return memory[ai];
        };

        if (roll < 0.5) {
            ew.recordRead(pid, p, addr, read_val());
        } else if (roll < 0.85) {
            const WriteVal v = next++;
            ew.recordWrite(pid, p, addr, v, overwritten_val());
            memory[ai] = v;
            produced.push_back(v);
        } else {
            const WriteVal v = next++;
            ew.recordRead(pid, p, addr, read_val(), /*rmw=*/true);
            ew.recordWrite(pid, p, addr, v, overwritten_val(),
                           /*rmw=*/true);
            memory[ai] = v;
            produced.push_back(v);
        }
    }
    return ew;
}

} // namespace

TEST(CheckerCacheDifferential, GoldenLitmusSuite)
{
    const std::vector<LitmusTest> suite = x86TsoSuite();
    ASSERT_EQ(suite.size(), kX86SuiteSize);

    for (const bool use_tso : {true, false}) {
        auto make_arch = [use_tso]() {
            return use_tso ? mc::makeTso() : mc::makeSc();
        };
        mc::Checker cached(make_arch());
        // Tiny cache: the 76 witnesses force eviction traffic too.
        cached.enableVerdictCache({.capacity = 16, .shards = 2});
        const mc::Checker uncached(make_arch());

        for (const LitmusTest &t : suite) {
            const char *model = use_tso ? " [TSO]" : " [SC]";
            {
                mc::ExecWitness ew = testsupport::forbiddenWitness(t);
                expectByteIdentical(cached, uncached, ew,
                                    t.name + " (forbidden)" + model);
            }
            {
                mc::ExecWitness ew = testsupport::sequentialWitness(t);
                expectByteIdentical(cached, uncached, ew,
                                    t.name + " (sequential)" + model);
            }
        }

        const mc::VerdictCache::Stats &st =
            cached.verdictCache()->stats();
        EXPECT_GT(st.lookups, 0u);
        // The repeat rounds of every Ok witness must actually hit.
        EXPECT_GT(st.hits, 0u);
    }
}

TEST(CheckerCacheDifferential, RandomConsistentWitnesses)
{
    Rng rng(0xd1ff01);
    mc::Checker cached(mc::makeTso());
    cached.enableVerdictCache({.capacity = 256, .shards = 4});
    const mc::Checker uncached(mc::makeTso());
    for (int i = 0; i < 60; ++i) {
        const int threads = 2 + static_cast<int>(rng.below(4));
        const int ops = 20 + static_cast<int>(rng.below(120));
        const int addrs = 1 + static_cast<int>(rng.below(6));
        mc::ExecWitness ew =
            randomWitness(rng, threads, ops, addrs, /*corrupt=*/false);
        expectByteIdentical(cached, uncached, ew,
                            "consistent witness #" + std::to_string(i));
    }
    // Consistent witnesses are Ok: every repeat round is a cache hit.
    EXPECT_GT(cached.verdictCache()->stats().hits, 0u);
}

TEST(CheckerCacheDifferential, RandomCorruptedWitnesses)
{
    Rng rng(0xd1ff02);
    mc::Checker cached(mc::makeTso());
    cached.enableVerdictCache({.capacity = 256, .shards = 4});
    const mc::Checker uncached(mc::makeTso());
    int violations = 0;
    for (int i = 0; i < 120; ++i) {
        const int threads = 2 + static_cast<int>(rng.below(4));
        const int ops = 20 + static_cast<int>(rng.below(80));
        const int addrs = 1 + static_cast<int>(rng.below(4));
        mc::ExecWitness ew =
            randomWitness(rng, threads, ops, addrs, /*corrupt=*/true);
        if (!uncached.check(ew).ok())
            ++violations;
        expectByteIdentical(cached, uncached, ew,
                            "corrupted witness #" + std::to_string(i));
    }
    // The corruption rates must exercise the violation (non-Ok, never
    // short-circuited) cache paths.
    EXPECT_GT(violations, 20);
}

TEST(CheckerCacheDifferential, RepeatedIterationsLandInOneClass)
{
    // The collective-checking win condition: re-running one test yields
    // witnesses that only differ by renaming, so after the first full
    // check every repeat is a signature hash plus a cache hit.
    mc::Checker checker(mc::makeTso());
    checker.enableVerdictCache({.capacity = 64, .shards = 1});

    for (int iter = 0; iter < 10; ++iter) {
        // Same interleaving shape, different values every iteration.
        const WriteVal base = 1 + 100 * iter;
        mc::ExecWitness ew;
        ew.recordWrite(0, 0, 0x100, base, kInitVal);
        ew.recordWrite(0, 1, 0x140, base + 1, kInitVal);
        ew.recordRead(1, 0, 0x140, base + 1);
        ew.recordRead(1, 1, 0x100, base);
        EXPECT_TRUE(checker.check(ew).ok());
    }

    const mc::VerdictCache::Stats &st = checker.verdictCache()->stats();
    EXPECT_EQ(st.distinct, 1u);
    EXPECT_EQ(st.hits, 9u);
    EXPECT_EQ(st.misses, 1u);
}

TEST(CheckerCacheDifferential, VerdictsAreKeyedByModel)
{
    // Regression: verdict memoization is keyed by (shape, model), not
    // shape alone. SB's forbidden outcome is Ok under TSO (W->R
    // relaxed), so the TSO checker caches an Ok verdict for it; a
    // lookup of the same witness fingerprinted for RMO must miss --
    // with an unsalted fingerprint it would alias the TSO entry and
    // leak the Ok short-circuit across models.
    const LitmusTest sb = storeBuffering();
    mc::ExecWitness ew = testsupport::forbiddenWitness(sb);

    mc::Checker tso(mc::makeModel("tso"));
    tso.enableVerdictCache({.capacity = 64, .shards = 1});
    ASSERT_TRUE(tso.check(ew).ok());
    ASSERT_EQ(tso.verdictCache()->stats().distinct, 1u);

    // Positive control: re-fingerprinting with the TSO salt hits.
    mc::SignatureBuilder builder;
    builder.setModelSalt(mc::modelSalt(mc::makeModel("tso")->name()));
    std::uint8_t verdict = 0xff;
    ASSERT_TRUE(tso.verdictCache()->lookup(builder.compute(ew), verdict));
    EXPECT_EQ(verdict,
              static_cast<std::uint8_t>(mc::CheckResult::Kind::Ok));

    // The same witness under the RMO salt belongs to a different
    // equivalence class and must not see TSO's verdict.
    builder.setModelSalt(mc::modelSalt(mc::makeModel("rmo")->name()));
    EXPECT_FALSE(
        tso.verdictCache()->lookup(builder.compute(ew), verdict));

    // Sanity: model salts are non-zero and pairwise distinct, so no
    // two registered models can share a signature space.
    std::vector<std::uint64_t> salts;
    for (const std::string &name : mc::modelNames()) {
        salts.push_back(mc::modelSalt(mc::makeModel(name)->name()));
        EXPECT_NE(salts.back(), 0u) << name;
    }
    for (std::size_t i = 0; i < salts.size(); ++i)
        for (std::size_t j = i + 1; j < salts.size(); ++j)
            EXPECT_NE(salts[i], salts[j]);
}

TEST(CheckerCacheDifferential, AnomalousWitnessesBypassTheCache)
{
    mc::Checker checker(mc::makeTso());
    checker.enableVerdictCache({.capacity = 64, .shards = 1});

    // A read of a value nobody wrote is a witness anomaly.
    mc::ExecWitness ew;
    ew.recordWrite(0, 0, 0x100, 1, kInitVal);
    ew.recordRead(1, 0, 0x100, 424242);
    const mc::CheckResult first = checker.check(ew);
    ASSERT_EQ(first.kind, mc::CheckResult::Kind::WitnessAnomaly);
    const mc::CheckResult second = checker.check(ew);
    EXPECT_EQ(second.kind, first.kind);
    EXPECT_EQ(second.message, first.message);

    const mc::VerdictCache::Stats &st = checker.verdictCache()->stats();
    EXPECT_EQ(st.lookups, 0u);
    EXPECT_EQ(st.distinct, 0u);
}
