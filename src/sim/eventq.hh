/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single global event queue orders events by (tick, insertion
 * sequence). Components schedule future work; the queue runs until
 * quiescent (no pending events), which is also how the harness detects
 * the end of a test iteration -- the simulated system has no periodic
 * background activity.
 *
 * Hot-path design (steady-state allocation-free):
 *
 *  - Events are small tagged records, not heap-allocated closures.
 *    The hot kinds are message delivery and delayed network send
 *    (payload = a MsgPool-owned Msg) and a generic
 *    function-pointer-plus-args record covering core wakeups/retries
 *    and cache responses. std::function thunks remain as a cold-path
 *    kind whose slots are recycled from a freelist.
 *  - Scheduling uses a bucketed time wheel: simulated latencies are
 *    small bounded constants, so an event lands in bucket
 *    (tick mod kWheelSize) in O(1); a 1-bit-per-bucket occupancy map
 *    makes finding the next non-empty tick a couple of ctz scans.
 *    Far-future events (>= kWheelSize ticks ahead: memory backoffs,
 *    guest overhead) go to a small binary-heap overflow and migrate
 *    into the wheel as time advances.
 *
 * Determinism contract: events fire in exactly (tick, insertion-seq)
 * order, byte-identical to a binary-heap kernel. Within a bucket,
 * insertion order IS seq order: direct inserts at a fixed now() arrive
 * in increasing seq, and overflow events migrate (in (tick, seq) heap
 * order) the moment now() comes within the wheel horizon -- before any
 * callback at that tick can append to the same bucket. seq_ is never
 * reset (see reset()): only its monotonicity matters, not its absolute
 * value.
 */

#ifndef MCVERSI_SIM_EVENTQ_HH
#define MCVERSI_SIM_EVENTQ_HH

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/types.hh"

namespace mcversi::sim {

struct Msg;
class MsgHandler;
class MsgPool;
class Network;

/** Global simulation event queue. */
class EventQueue
{
  public:
    /** Cold-path generic callback. */
    using Callback = std::function<void()>;

    /**
     * Hot-path typed callback: a free/static trampoline plus an
     * object and up to four integral payload words (enough for a
     * full cache response: id, value, overwritten, flag).
     */
    using EventFn = void (*)(void *obj, std::uint64_t a, std::uint64_t b,
                             std::uint64_t c, std::uint64_t d);

    EventQueue();
    ~EventQueue();
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Schedule @p cb at absolute tick @p when (cold path). */
    void schedule(Tick when, Callback cb);

    /** Schedule @p cb @p delta ticks from now (cold path). */
    void
    scheduleIn(Tick delta, Callback cb)
    {
        schedule(now_ + delta, std::move(cb));
    }

    /** Schedule a typed function-pointer event (hot path). */
    void
    scheduleFn(Tick when, EventFn fn, void *obj, std::uint64_t a = 0,
               std::uint64_t b = 0, std::uint64_t c = 0,
               std::uint64_t d = 0)
    {
        Event ev{};
        ev.kind = Kind::Fn;
        ev.fn = FnPayload{fn, obj, a, b, c, d};
        commit(when, ev);
    }

    void
    scheduleFnIn(Tick delta, EventFn fn, void *obj, std::uint64_t a = 0,
                 std::uint64_t b = 0, std::uint64_t c = 0,
                 std::uint64_t d = 0)
    {
        scheduleFn(now_ + delta, fn, obj, a, b, c, d);
    }

    /**
     * Deliver pool-owned @p msg to @p handler at @p when; the queue
     * releases the message back to msgPool() after the handler runs.
     */
    void
    scheduleDeliver(Tick when, MsgHandler *handler, Msg *msg)
    {
        Event ev{};
        ev.kind = Kind::Deliver;
        ev.deliver = DeliverPayload{handler, msg};
        commit(when, ev);
    }

    /**
     * Inject pool-owned @p msg into @p net at @p when (delayed send:
     * network latency, FIFO ordering and the jitter draw all happen at
     * injection time, exactly as if send() were called from a thunk).
     */
    void
    scheduleNetSend(Tick when, Network *net, Msg *msg)
    {
        Event ev{};
        ev.kind = Kind::NetSend;
        ev.netSend = NetSendPayload{net, msg};
        commit(when, ev);
    }

    /** Pool that Deliver/NetSend payloads are acquired from. */
    MsgPool &msgPool() { return *pool_; }

    /** Current simulated time. */
    Tick now() const { return now_; }

    bool empty() const { return size_ == 0; }
    std::size_t pending() const { return size_; }

    /**
     * Run until no events remain.
     *
     * @param max_events safety valve against runaway simulations
     *        (deadlock/livelock in a protocol under test); exceeded
     *        throws ProtocolError-like std::runtime_error
     * @return number of events processed
     */
    std::uint64_t runUntilQuiescent(std::uint64_t max_events = 5000000);

    /** Total events processed over the queue's lifetime. */
    std::uint64_t processed() const { return processed_; }

    /**
     * Drop all pending events and reset time to 0.
     *
     * Deliberately does NOT reset the insertion sequence counter:
     * determinism relies only on seq monotonicity (events at one tick
     * fire in insertion order), never on absolute seq values, so
     * keeping the counter running across iterations is free and avoids
     * any cross-iteration aliasing.
     */
    void reset();

    /**
     * Drop all pending events, keeping the current time. O(pending):
     * buckets and pools retain their capacity across iterations, and
     * dropped Deliver/NetSend payloads return to the message pool.
     */
    void clearPending();

    /**
     * True when scheduling in the past throws instead of clamping
     * (debug and sanitizer builds; release clamps to now()).
     */
    static constexpr bool
    strictPastScheduling()
    {
#if !defined(NDEBUG) || defined(MCVERSI_STRICT_SCHEDULE)
        return true;
#else
        return false;
#endif
    }

    /**
     * Structural allocations performed by the kernel since
     * construction: container capacity growth plus message-pool slab
     * allocations. Flat after warmup -- the zero-allocation property
     * the instrumentation tests pin down.
     */
    std::uint64_t structuralAllocations() const;

  private:
    enum class Kind : std::uint8_t {
        Thunk,   ///< cold: pooled std::function slot
        Fn,      ///< typed trampoline + args
        Deliver, ///< handler->handleMsg(*msg), then release msg
        NetSend, ///< net->send(msg) (delayed injection)
    };

    struct ThunkPayload
    {
        std::uint32_t slot;
    };
    struct FnPayload
    {
        EventFn fn;
        void *obj;
        std::uint64_t a, b, c, d;
    };
    struct DeliverPayload
    {
        MsgHandler *handler;
        Msg *msg;
    };
    struct NetSendPayload
    {
        Network *net;
        Msg *msg;
    };

    struct Event
    {
        Tick when = 0;
        std::uint64_t seq = 0;
        Kind kind = Kind::Thunk;
        union {
            ThunkPayload thunk;
            FnPayload fn;
            DeliverPayload deliver;
            NetSendPayload netSend;
        };
    };

    /** Heap order for the overflow list: earliest (when, seq) first. */
    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    struct Bucket
    {
        std::vector<Event> items;
        std::size_t head = 0;
    };

    // Wheel horizon: covers every fixed latency in the system (network
    // <= ~40, L2 access 20, memory 120-230); only exponential replay
    // backoffs and host guest-overhead delays overflow.
    static constexpr std::size_t kWheelBits = 8;
    static constexpr std::size_t kWheelSize = std::size_t{1} << kWheelBits;
    static constexpr std::size_t kWheelMask = kWheelSize - 1;

    /** Stamp seq, clamp/validate the tick, route to wheel/overflow. */
    void commit(Tick when, Event &ev);

    /** Move overflow events now within the horizon into the wheel. */
    void migrateOverflow();

    /** Release pooled payloads of a dropped (never-run) event. */
    void reclaim(Event &ev);

    void dispatch(Event &ev);

    void
    markOccupied(std::size_t bucket)
    {
        occupancy_[bucket >> 6] |= std::uint64_t{1} << (bucket & 63);
    }

    void
    markEmpty(std::size_t bucket)
    {
        occupancy_[bucket >> 6] &= ~(std::uint64_t{1} << (bucket & 63));
    }

    /**
     * Earliest occupied wheel tick > now_ (all wheel events live in
     * (now_, now_ + kWheelSize) once the current bucket drained).
     * Returns false if the wheel is empty.
     */
    bool nextWheelTick(Tick &out) const;

    template <typename T>
    void
    pushCounted(std::vector<T> &v, T &&value)
    {
        if (v.size() == v.capacity())
            ++growths_;
        v.push_back(std::move(value));
    }

    std::array<Bucket, kWheelSize> buckets_{};
    std::array<std::uint64_t, kWheelSize / 64> occupancy_{};
    std::vector<Event> overflow_; ///< min-heap on (when, seq)

    std::vector<Callback> thunkSlots_;
    std::vector<std::uint32_t> thunkFree_;

    std::unique_ptr<MsgPool> pool_;

    Tick now_ = 0;
    std::uint64_t seq_ = 0;
    std::size_t size_ = 0;
    std::uint64_t processed_ = 0;
    std::uint64_t growths_ = 0;
};

} // namespace mcversi::sim

#endif // MCVERSI_SIM_EVENTQ_HH
