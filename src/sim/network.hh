/**
 * @file
 * On-chip interconnect model.
 *
 * A 2D mesh (Table 2: 2 rows) connecting cores/L1s, L2 tiles (one per
 * core, colocated) and a memory controller at the east edge. Latency is
 * base + hops * perHop + uniform jitter, with point-to-point FIFO
 * ordering preserved per (src, dst, vnet) and no ordering across vnets.
 * The jitter, together with per-core issue jitter, is the timing
 * non-determinism that perturbs each test execution differently (§5.1).
 *
 * Routing state is dense: handlers and per-(src, dst, vnet) FIFO
 * release times live in flat arrays indexed by a compact node id
 * (cores, then L2 tiles, then the memory controller), so the per-send
 * path does no hashing and no allocation. Message payloads come from
 * the event queue's MsgPool; hot senders build messages in place via
 * stage() and hand ownership to send(Msg *).
 */

#ifndef MCVERSI_SIM_NETWORK_HH
#define MCVERSI_SIM_NETWORK_HH

#include <algorithm>
#include <vector>

#include "common/rng.hh"
#include "sim/eventq.hh"
#include "sim/message.hh"

namespace mcversi::sim {

/** Mesh interconnect with per-vnet point-to-point ordering. */
class Network
{
  public:
    struct Params
    {
        int cols = 4;
        int rows = 2;
        Tick baseLatency = 2;
        Tick perHop = 3;
        Tick maxJitter = 5; ///< uniform in [0, maxJitter]
    };

    Network(EventQueue &eq, Rng rng, Params params);

    Network(EventQueue &eq, Rng rng) : Network(eq, rng, Params{}) {}

    /** Register the handler for a node id. */
    void registerNode(NodeId node, MsgHandler *handler);

    /**
     * Pool-owned message to fill in place; inject with send(Msg *).
     * Zero-copy path for the protocol controllers.
     */
    Msg &stage() { return *eq_.msgPool().acquire(); }

    /**
     * Inject a staged/pooled message; delivery is scheduled on the
     * event queue, which releases the message after the handler runs.
     * Takes ownership (releases the message on routing errors).
     */
    void send(Msg *msg);

    /** Inject a message by value (copies into the pool). */
    void
    send(const Msg &msg)
    {
        send(eq_.msgPool().acquireCopy(msg));
    }

    /** Manhattan hop count between two nodes. */
    int hops(NodeId a, NodeId b) const;

    std::uint64_t messagesSent() const { return sent_; }

    /** Forget FIFO ordering state (safe only at quiescence). */
    void
    resetOrdering()
    {
        std::fill(lastDelivery_.begin(), lastDelivery_.end(), Tick{0});
    }

  private:
    struct XY
    {
        int x;
        int y;
    };
    XY position(NodeId node) const;

    /**
     * Compact node index: cores [0, tiles), L2s [tiles, 2*tiles),
     * memory 2*tiles; -1 for ids outside the mesh.
     */
    int
    denseNode(NodeId node) const
    {
        if (node == kMemNode)
            return 2 * tiles_;
        if (isL2Node(node)) {
            const int t = l2Tile(node);
            return t < tiles_ ? tiles_ + t : -1;
        }
        return node >= 0 && node < tiles_ ? static_cast<int>(node) : -1;
    }

    std::size_t
    fifoIndex(int src, int dst, int vnet) const
    {
        return (static_cast<std::size_t>(src) *
                    static_cast<std::size_t>(numNodes_) +
                static_cast<std::size_t>(dst)) *
                   static_cast<std::size_t>(kNumVnets) +
               static_cast<std::size_t>(vnet);
    }

    EventQueue &eq_;
    Rng rng_;
    Params params_;
    int tiles_;    ///< cols * rows (cores == colocated L2 tiles)
    int numNodes_; ///< 2 * tiles_ + 1
    std::vector<MsgHandler *> handlers_;
    /** Last scheduled delivery per (src, dst, vnet), for FIFO order. */
    std::vector<Tick> lastDelivery_;
    std::uint64_t sent_ = 0;
};

} // namespace mcversi::sim

#endif // MCVERSI_SIM_NETWORK_HH
