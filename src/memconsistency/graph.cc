#include "memconsistency/graph.hh"

#include <algorithm>

namespace mcversi::mc {

std::optional<std::vector<CycleGraph::Node>>
CycleGraph::findCycle() const
{
    colorScratch_.assign(numNodes_, Color::White);
    auto &stack = stackScratch_;

    // Iterative DFS with an explicit stack of (node, next edge index);
    // the stack spine is the current path, so a back edge to a Grey node
    // lets us cut the cycle straight out of it.
    for (std::size_t root = 0; root < numNodes_; ++root) {
        if (colorScratch_[root] != Color::White)
            continue;
        stack.clear();
        stack.push_back({static_cast<Node>(root)});
        colorScratch_[root] = Color::Grey;
        while (!stack.empty()) {
            Frame &fr = stack.back();
            const auto &succs = adj_[static_cast<std::size_t>(fr.node)];
            if (fr.edge >= succs.size()) {
                colorScratch_[static_cast<std::size_t>(fr.node)] =
                    Color::Black;
                stack.pop_back();
                continue;
            }
            const Node nxt = succs[fr.edge++];
            switch (colorScratch_[static_cast<std::size_t>(nxt)]) {
              case Color::Grey: {
                std::vector<Node> cycle;
                auto it = std::find_if(stack.begin(), stack.end(),
                                       [nxt](const Frame &f) {
                                           return f.node == nxt;
                                       });
                for (; it != stack.end(); ++it)
                    cycle.push_back(it->node);
                return cycle;
              }
              case Color::White:
                colorScratch_[static_cast<std::size_t>(nxt)] =
                    Color::Grey;
                stack.push_back({nxt});
                break;
              case Color::Black:
                break;
            }
        }
    }
    return std::nullopt;
}

} // namespace mcversi::mc
