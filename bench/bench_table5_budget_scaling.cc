/**
 * @file
 * Table 5 reproduction: bugs found when running up to the equivalent
 * of larger budgets.
 *
 * The paper extends the 24h-per-sample runs of the stateless
 * generators to an effective 10 days by pooling samples. Here the
 * budget axis is test-runs: each configuration is given 1x, 5x and 10x
 * the base budget, and the table reports the fraction of the 11 bugs
 * found at each level. McVerSi-ALL (8KB) reaches 100% at 1x; the
 * stateless generators improve with budget but stay short of 100%.
 */

#include "bench_common.hh"

using namespace mcvbench;

int
main()
{
    const double scale = benchScale();
    const auto base_runs = static_cast<std::uint64_t>(100 * scale);
    const double base_secs = 4.0 * scale;

    const std::vector<GenConfig> configs = {
        GenConfig::All8K,
        GenConfig::Rand1K,
        GenConfig::Rand8K,
        GenConfig::DiyLitmus,
    };
    const std::vector<int> multipliers = {1, 4, 8};

    std::printf("Table 5: %% of the 11 bugs found at 1x/4x/8x budget "
                "(base %llu test-runs)\n\n",
                static_cast<unsigned long long>(base_runs));
    std::printf("%-22s | %-8s | %-8s | %-8s\n", "Configuration",
                "1x", "4x", "8x");

    for (GenConfig config : configs) {
        std::printf("%-22s", genConfigName(config));
        std::fflush(stdout);
        for (int mult : multipliers) {
            // McVerSi-ALL is stateful and already complete at 1x; the
            // paper marks larger budgets N/A.
            if (config == GenConfig::All8K && mult > 1) {
                std::printf(" | %-8s", "N/A");
                continue;
            }
            int found = 0;
            for (const sim::BugInfo &bug : sim::allBugs()) {
                const CellResult cell = runCell(
                    config, bug.id, 1,
                    base_runs * static_cast<std::uint64_t>(mult),
                    base_secs * mult);
                if (cell.found > 0)
                    ++found;
            }
            char buf[16];
            std::snprintf(buf, sizeof(buf), "%.0f%%",
                          100.0 * found /
                              static_cast<double>(
                                  sim::allBugs().size()));
            std::printf(" | %-8s", buf);
            std::fflush(stdout);
        }
        std::printf("\n");
    }
    return 0;
}
