#include "sim/mesi/mesi_l1.hh"

#include <cassert>

namespace mcversi::sim {

namespace {

const std::vector<std::string> kStateNames = {
    "I", "S", "E", "M", "IS", "IS_I", "IM", "SM", "MI", "II",
};

const std::vector<std::string> kEventNames = {
    "Load",   "Store",  "Rmw",     "Flush",   "Replacement",
    "DataS",  "DataE",  "AckCount", "InvAck", "Inv",
    "Recall", "FwdGETS", "FwdGETX", "WbAck",  "WbNack",
};

} // namespace

MesiL1::MesiL1(Pid pid, const SystemConfig &cfg, EventQueue &eq,
               Network &net, TransitionCoverage &cov, Rng rng)
    : pid_(pid), cfg_(cfg), eq_(eq), net_(net),
      table_(cov, "MESI-L1", kStateNames, kEventNames), rng_(rng),
      array_(cfg.l1Sets, cfg.l1Ways)
{
    buildTable();
}

void
MesiL1::buildTable()
{
    auto def = [this](State s, Event e) { table_.define(s, e); };

    def(StI, EvLoad);
    def(StI, EvStore);
    def(StI, EvRmw);
    def(StI, EvFlush);
    def(StI, EvInv);

    def(StS, EvLoad);
    def(StS, EvStore);
    def(StS, EvRmw);
    def(StS, EvFlush);
    def(StS, EvReplacement);
    def(StS, EvInv);

    for (State s : {StE, StM}) {
        def(s, EvLoad);
        def(s, EvStore);
        def(s, EvRmw);
        def(s, EvFlush);
        def(s, EvReplacement);
        def(s, EvRecall);
        def(s, EvFwdGETS);
        def(s, EvFwdGETX);
    }

    def(StIS, EvDataShared);
    def(StIS, EvDataExclusive);
    def(StIS, EvInv);

    def(StIS_I, EvDataShared);
    def(StIS_I, EvDataExclusive);
    def(StIS_I, EvInv);

    def(StIM, EvDataExclusive);
    def(StIM, EvInvAckIn);
    def(StIM, EvInv);

    def(StSM, EvLoad);
    def(StSM, EvAckCount);
    def(StSM, EvInvAckIn);
    def(StSM, EvInv);

    def(StMI, EvFwdGETS);
    def(StMI, EvFwdGETX);
    def(StMI, EvRecall);
    def(StMI, EvWbAck);
    def(StMI, EvWbNack);
    def(StMI, EvInv);

    def(StII, EvWbAck);
    def(StII, EvWbNack);
    def(StII, EvInv);
}

NodeId
MesiL1::home(Addr line) const
{
    return l2Node(cfg_.homeTile(line));
}

void
MesiL1::send(MsgType t, Addr line, NodeId dst, Vnet vnet,
             const std::function<void(Msg &)> &fill)
{
    Msg &msg = net_.stage();
    msg.type = t;
    msg.line = line;
    msg.src = coreNode(pid_);
    msg.dst = dst;
    msg.vnet = vnet;
    msg.requester = pid_;
    if (fill)
        fill(msg);
    net_.send(&msg);
}

void
MesiL1::respond(ReqId id, WriteVal value, WriteVal overwritten,
                bool inv_in_flight, Tick latency)
{
    eq_.scheduleFnIn(
        latency,
        [](void *o, std::uint64_t a, std::uint64_t b, std::uint64_t c,
           std::uint64_t d) {
            auto *self = static_cast<MesiL1 *>(o);
            self->hooks_.respond(CacheResp{a, b, c, d != 0});
        },
        this, id, value, overwritten, inv_in_flight ? 1 : 0);
}

void
MesiL1::notifyLq(Addr line)
{
    if (hooks_.addressInvalidated)
        hooks_.addressInvalidated(line);
}

MesiL1::State
MesiL1::lineState(Addr line)
{
    if (auto it = evict_.find(line); it != evict_.end())
        return it->second.state;
    if (CacheEntry *e = array_.find(line))
        return static_cast<State>(e->state);
    return StI;
}

// ---------------------------------------------------------------------
// Core interface: all requests funnel through the per-line queue and
// processPending, which acts on the head against the current state.
// ---------------------------------------------------------------------

void
MesiL1::coreLoad(ReqId id, Addr addr)
{
    enqueue({PendingReq::Kind::Load, id, addr, 0}, false);
    processPending(lineAddr(addr));
}

void
MesiL1::coreStore(ReqId id, Addr addr, WriteVal value)
{
    enqueue({PendingReq::Kind::Store, id, addr, value}, false);
    processPending(lineAddr(addr));
}

void
MesiL1::coreRmw(ReqId id, Addr addr, WriteVal value)
{
    enqueue({PendingReq::Kind::Rmw, id, addr, value}, false);
    processPending(lineAddr(addr));
}

void
MesiL1::coreFlush(ReqId id, Addr addr)
{
    enqueue({PendingReq::Kind::Flush, id, addr, 0}, false);
    processPending(lineAddr(addr));
}

void
MesiL1::enqueue(const PendingReq &req, bool front)
{
    auto &q = pending_[lineAddr(req.addr)];
    if (front)
        q.push_front(req);
    else
        q.push_back(req);
}

void
MesiL1::applyStore(CacheEntry &entry, const PendingReq &req)
{
    const WriteVal old = entry.data.word(req.addr);
    entry.data.setWord(req.addr, req.value);
    if (req.kind == PendingReq::Kind::Rmw) {
        respond(req.id, old, old, false, cfg_.l1HitLatency);
    } else {
        respond(req.id, 0, old, false, cfg_.l1HitLatency);
    }
}

bool
MesiL1::startMiss(Addr line, bool exclusive)
{
    CacheEntry *entry = array_.allocate(line);
    if (!entry) {
        if (!evictVictim(line))
            return false;
        entry = array_.allocate(line);
        assert(entry);
    }
    entry->state = exclusive ? StIM : StIS;
    array_.touch(*entry, eq_.now());
    send(exclusive ? MsgType::GETX : MsgType::GETS, line, home(line),
         Vnet::Request);
    return true;
}

bool
MesiL1::evictVictim(Addr line)
{
    CacheEntry *victim = array_.victim(line, [](const CacheEntry &e) {
        return e.state == StS || e.state == StE || e.state == StM;
    });
    if (!victim)
        return false;
    doReplacement(*victim);
    return true;
}

void
MesiL1::doReplacement(CacheEntry &entry)
{
    const Addr line = entry.line;
    const auto st = static_cast<State>(entry.state);
    table_.record(st, EvReplacement);
    switch (st) {
      case StS:
        send(MsgType::PUTS, line, home(line), Vnet::Request);
        if (cfg_.bug != BugId::MesiLqSReplacement)
            notifyLq(line);
        break;
      case StE:
      case StM: {
        EvictBuf buf;
        buf.state = StMI;
        buf.data = entry.data;
        buf.dirty = (st == StM);
        evict_[line] = buf;
        send(MsgType::PUTX, line, home(line), Vnet::Request,
             [&](Msg &m) {
                 m.data = entry.data;
                 m.hasData = true;
                 m.dirty = (st == StM);
             });
        notifyLq(line);
        break;
      }
      default:
        assert(false && "victim must be stable");
    }
    array_.free(entry);
}

void
MesiL1::processPending(Addr line)
{
    auto it = pending_.find(line);
    if (it == pending_.end())
        return;
    auto &q = it->second;

    while (!q.empty()) {
        // A line parked in the writeback buffer blocks everything.
        if (evict_.count(line))
            return;

        const PendingReq req = q.front();
        CacheEntry *entry = array_.find(line);
        const State st = entry ? static_cast<State>(entry->state) : StI;

        switch (st) {
          case StI:
            switch (req.kind) {
              case PendingReq::Kind::Load:
                table_.record(StI, EvLoad);
                if (!startMiss(line, false)) {
                    eq_.scheduleFnIn(
                        16,
                        [](void *o, std::uint64_t a, std::uint64_t,
                           std::uint64_t, std::uint64_t) {
                            static_cast<MesiL1 *>(o)->processPending(a);
                        },
                        this, line);
                    return;
                }
                return; // Wait for data.
              case PendingReq::Kind::Store:
              case PendingReq::Kind::Rmw:
                table_.record(StI, req.kind == PendingReq::Kind::Rmw
                                       ? EvRmw
                                       : EvStore);
                if (!startMiss(line, true)) {
                    eq_.scheduleFnIn(
                        16,
                        [](void *o, std::uint64_t a, std::uint64_t,
                           std::uint64_t, std::uint64_t) {
                            static_cast<MesiL1 *>(o)->processPending(a);
                        },
                        this, line);
                    return;
                }
                return;
              case PendingReq::Kind::Flush:
                table_.record(StI, EvFlush);
                respond(req.id, 0, 0, false, 1);
                q.pop_front();
                continue;
            }
            break;

          case StS:
            switch (req.kind) {
              case PendingReq::Kind::Load:
                table_.record(StS, EvLoad);
                array_.touch(*entry, eq_.now());
                respond(req.id, entry->data.word(req.addr), 0, false,
                        cfg_.l1HitLatency);
                q.pop_front();
                continue;
              case PendingReq::Kind::Store:
              case PendingReq::Kind::Rmw:
                table_.record(StS, req.kind == PendingReq::Kind::Rmw
                                       ? EvRmw
                                       : EvStore);
                entry->state = StSM;
                entry->acksOutstanding = 0;
                entry->dataReceived = false;
                send(MsgType::UPGRADE, line, home(line), Vnet::Request);
                return; // Wait for acks.
              case PendingReq::Kind::Flush:
                table_.record(StS, EvFlush);
                send(MsgType::PUTS, line, home(line), Vnet::Request);
                notifyLq(line);
                array_.free(*entry);
                respond(req.id, 0, 0, false, 1);
                q.pop_front();
                continue;
            }
            break;

          case StE:
          case StM:
            switch (req.kind) {
              case PendingReq::Kind::Load:
                table_.record(st, EvLoad);
                array_.touch(*entry, eq_.now());
                respond(req.id, entry->data.word(req.addr), 0, false,
                        cfg_.l1HitLatency);
                q.pop_front();
                continue;
              case PendingReq::Kind::Store:
              case PendingReq::Kind::Rmw:
                table_.record(st, req.kind == PendingReq::Kind::Rmw
                                      ? EvRmw
                                      : EvStore);
                entry->state = StM;
                array_.touch(*entry, eq_.now());
                applyStore(*entry, req);
                q.pop_front();
                continue;
              case PendingReq::Kind::Flush: {
                table_.record(st, EvFlush);
                EvictBuf buf;
                buf.state = StMI;
                buf.data = entry->data;
                buf.dirty = (st == StM);
                buf.flushPending = true;
                buf.flushReq = req.id;
                evict_[line] = buf;
                send(MsgType::PUTX, line, home(line), Vnet::Request,
                     [&](Msg &m) {
                         m.data = entry->data;
                         m.hasData = true;
                         m.dirty = (st == StM);
                     });
                notifyLq(line);
                array_.free(*entry);
                q.pop_front();
                return; // Buffer blocks the line until WbAck.
              }
            }
            break;

          case StSM:
            if (req.kind == PendingReq::Kind::Load) {
                // SM retains valid, readable data.
                table_.record(StSM, EvLoad);
                respond(req.id, entry->data.word(req.addr), 0, false,
                        cfg_.l1HitLatency);
                q.pop_front();
                continue;
            }
            return; // Stores/flushes wait for M.

          case StIS:
          case StIS_I:
          case StIM:
            return; // Wait for data.

          default:
            return;
        }
    }
    if (q.empty())
        pending_.erase(it);
}

// ---------------------------------------------------------------------
// Network message handling.
// ---------------------------------------------------------------------

void
MesiL1::enterM(CacheEntry &entry)
{
    entry.state = StM;
    send(MsgType::Unblock, entry.line, home(entry.line), Vnet::Request);
    processPending(entry.line);
}

void
MesiL1::handleMsg(const Msg &msg)
{
    const Addr line = msg.line;

    // Writeback buffer states first (the array way is already free).
    //
    // Every foreign touch (fwd, recall, inv) during the writeback must
    // re-notify the LQ even though the eviction itself already did:
    // between that first notification and the draining of the store
    // that produced the line's data, a squashed load can replay and
    // re-bind the same data via store-buffer forwarding. Once the line
    // is gone from the array, a later competing write reaches this L1
    // only through these writeback-state messages -- skipping the
    // notification here lets such a load retire a coherence-stale
    // value (a genuine TSO violation on a correct system).
    if (auto it = evict_.find(line); it != evict_.end()) {
        EvictBuf &buf = it->second;
        const State st = buf.state;
        switch (msg.type) {
          case MsgType::FwdGETS:
            table_.record(st, EvFwdGETS);
            send(MsgType::Data, line, coreNode(msg.requester),
                 Vnet::Response, [&](Msg &m) {
                     m.data = buf.data;
                     m.hasData = true;
                 });
            send(MsgType::WbDataToL2, line, home(line), Vnet::Response,
                 [&](Msg &m) {
                     m.data = buf.data;
                     m.hasData = true;
                     m.dirty = buf.dirty;
                 });
            buf.state = StII;
            notifyLq(line);
            return;
          case MsgType::FwdGETX:
            table_.record(st, EvFwdGETX);
            send(MsgType::Data, line, coreNode(msg.requester),
                 Vnet::Response, [&](Msg &m) {
                     m.data = buf.data;
                     m.hasData = true;
                     m.exclusive = true;
                 });
            buf.state = StII;
            notifyLq(line);
            return;
          case MsgType::Recall:
            table_.record(st, EvRecall);
            send(MsgType::RecallAckNoData, line, home(line),
                 Vnet::Response);
            buf.state = StII;
            notifyLq(line);
            return;
          case MsgType::WbAck:
          case MsgType::WbNack: {
            table_.record(st, msg.type == MsgType::WbAck ? EvWbAck
                                                         : EvWbNack);
            const bool flush_pending = buf.flushPending;
            const ReqId flush_req = buf.flushReq;
            evict_.erase(it);
            if (flush_pending)
                respond(flush_req, 0, 0, false, 1);
            processPending(line);
            return;
          }
          case MsgType::Inv:
            table_.record(st, EvInv);
            send(MsgType::InvAck, line, msg.ackTarget, Vnet::Response);
            notifyLq(line);
            return;
          default:
            table_.record(st, EvDataShared); // Will throw (undefined).
            return;
        }
    }

    CacheEntry *entry = array_.find(line);
    const State st = entry ? static_cast<State>(entry->state) : StI;

    switch (msg.type) {
      case MsgType::Inv:
        table_.record(st, EvInv);
        send(MsgType::InvAck, line, msg.ackTarget, Vnet::Response);
        switch (st) {
          case StI:
          case StIS_I:
          case StIM:
            break; // Stale invalidation; ack only.
          case StS:
            notifyLq(line);
            array_.free(*entry);
            break;
          case StIS:
            entry->state = StIS_I;
            break;
          case StSM:
            // Lost the upgrade race: the line's data is gone and our
            // queued UPGRADE will be served as a full GETX.
            if (cfg_.bug != BugId::MesiLqSmInv)
                notifyLq(line);
            entry->state = StIM;
            entry->dataReceived = false;
            break;
          default:
            break;
        }
        return;

      case MsgType::Recall:
        table_.record(st, EvRecall);
        switch (st) {
          case StE:
            send(MsgType::RecallData, line, home(line), Vnet::Response,
                 [&](Msg &m) {
                     m.data = entry->data;
                     m.hasData = true;
                     m.dirty = false;
                 });
            if (cfg_.bug != BugId::MesiLqEInv)
                notifyLq(line);
            array_.free(*entry);
            break;
          case StM:
            send(MsgType::RecallData, line, home(line), Vnet::Response,
                 [&](Msg &m) {
                     m.data = entry->data;
                     m.hasData = true;
                     m.dirty = true;
                 });
            if (cfg_.bug != BugId::MesiLqMInv)
                notifyLq(line);
            array_.free(*entry);
            break;
          default:
            break; // table_.record already threw for undefined pairs
        }
        processPending(line);
        return;

      case MsgType::FwdGETS:
        table_.record(st, EvFwdGETS);
        // E or M: supply the requester and the L2, drop to S.
        send(MsgType::Data, line, coreNode(msg.requester), Vnet::Response,
             [&](Msg &m) {
                 m.data = entry->data;
                 m.hasData = true;
             });
        send(MsgType::WbDataToL2, line, home(line), Vnet::Response,
             [&](Msg &m) {
                 m.data = entry->data;
                 m.hasData = true;
                 m.dirty = (st == StM);
             });
        entry->state = StS;
        return;

      case MsgType::FwdGETX:
        table_.record(st, EvFwdGETX);
        send(MsgType::Data, line, coreNode(msg.requester), Vnet::Response,
             [&](Msg &m) {
                 m.data = entry->data;
                 m.hasData = true;
                 m.exclusive = true;
             });
        notifyLq(line);
        array_.free(*entry);
        processPending(line);
        return;

      case MsgType::Data: {
        const Event ev = msg.exclusive ? EvDataExclusive : EvDataShared;
        table_.record(st, ev);
        switch (st) {
          case StIS:
            entry->data = msg.data;
            if (msg.exclusive) {
                entry->state = StE;
                send(MsgType::Unblock, line, home(line), Vnet::Request);
            } else {
                entry->state = StS;
            }
            processPending(line);
            break;
          case StIS_I: {
            // Consume the data once; the LQ must treat the consuming
            // loads as invalidated-at-consume-time ("Peekaboo").
            // BUG MESI,LQ+IS,Inv: the flag is never set.
            const bool flag = (cfg_.bug != BugId::MesiLqIsInv);
            auto pit = pending_.find(line);
            if (pit != pending_.end()) {
                auto &q = pit->second;
                for (auto qit = q.begin(); qit != q.end();) {
                    if (qit->kind == PendingReq::Kind::Load) {
                        respond(qit->id, msg.data.word(qit->addr), 0,
                                flag, 1);
                        qit = q.erase(qit);
                    } else {
                        ++qit;
                    }
                }
            }
            if (msg.exclusive) {
                // The sunk Inv was stale; the grant is authoritative.
                entry->data = msg.data;
                entry->state = StE;
                send(MsgType::Unblock, line, home(line), Vnet::Request);
            } else {
                array_.free(*entry);
            }
            processPending(line);
            break;
          }
          case StIM:
            entry->data = msg.data;
            entry->dataReceived = true;
            entry->acksOutstanding += msg.ackCount;
            if (entry->acksOutstanding == 0)
                enterM(*entry);
            break;
          default:
            break;
        }
        return;
      }

      case MsgType::AckCount:
        table_.record(st, EvAckCount);
        // SM: upgrade grant without data.
        entry->dataReceived = true;
        entry->acksOutstanding += msg.ackCount;
        if (entry->acksOutstanding == 0)
            enterM(*entry);
        return;

      case MsgType::InvAck:
        table_.record(st, EvInvAckIn);
        entry->acksOutstanding -= 1;
        if (entry->dataReceived && entry->acksOutstanding == 0)
            enterM(*entry);
        return;

      default:
        throw ProtocolError("MESI-L1", kStateNames[st],
                            msgTypeName(msg.type));
    }
}

void
MesiL1::resetAll()
{
    array_.reset();
    evict_.clear();
    pending_.clear();
}

} // namespace mcversi::sim
