/**
 * @file
 * Campaign results and machine-readable summaries.
 *
 * A CampaignResult pairs the spec that was run with its harness
 * outcome; a CampaignSummary aggregates the full matrix in spec order,
 * independent of worker interleaving. JSON and CSV export make bench
 * trajectories machine-readable. Timing fields (wall/check seconds)
 * are the only non-deterministic outputs, so both exporters can omit
 * them: toJson(false)/toCsv(false) are byte-identical across repeat
 * runs and worker-thread counts for the same spec vector.
 *
 * Non-finite doubles (e.g. a NaN mean or an inf rate on a degenerate
 * cell) have no JSON literal; they export as null in JSON and as an
 * empty field in CSV so the documents stay parseable.
 */

#ifndef MCVERSI_CAMPAIGN_RESULT_HH
#define MCVERSI_CAMPAIGN_RESULT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/spec.hh"
#include "host/harness.hh"

namespace mcversi::campaign {

/** Outcome of one campaign spec. */
struct CampaignResult
{
    CampaignSpec spec{};
    host::HarnessResult harness{};
    /** Total coverage restricted to the spec's protocol controllers. */
    double protocolCoverage = 0.0;
    /** Non-empty if the campaign failed to run (bad spec, exception). */
    std::string error;

    bool ok() const { return error.empty(); }
};

/** Deterministically aggregated results of one campaign matrix. */
struct CampaignSummary
{
    /** Results in spec order (not completion order). */
    std::vector<CampaignResult> results;

    std::size_t campaigns() const { return results.size(); }
    std::size_t bugsFound() const;
    std::size_t errors() const;
    std::uint64_t totalTestRuns() const;
    double totalWallSeconds() const;

    /**
     * JSON document: {"campaigns": [...], "summary": {...}}. With
     * @p include_timing false, wall-clock fields are omitted and the
     * output depends only on the specs (byte-identical across runs).
     */
    std::string toJson(bool include_timing = true) const;

    /** CSV table, one row per campaign, same timing switch. */
    std::string toCsv(bool include_timing = true) const;
};

} // namespace mcversi::campaign

#endif // MCVERSI_CAMPAIGN_RESULT_HH
