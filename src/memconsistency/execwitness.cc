#include "memconsistency/execwitness.hh"

#include <cassert>
#include <sstream>

namespace mcversi::mc {

const std::vector<EventId> ExecWitness::emptyThread_{};

EventId
ExecWitness::addEvent(Event ev)
{
    const EventId id = static_cast<EventId>(events_.size());
    events_.push_back(ev);
    if (!ev.isInit()) {
        // Keep per-thread events sorted by program order. Events may be
        // recorded out of order (stores are recorded when they serialize,
        // which can be after younger loads retired), so insert in place;
        // the common case is an append.
        auto &vec = perThread_[ev.iiid.pid];
        auto key = [this](EventId e) {
            const Event &x = events_[static_cast<std::size_t>(e)];
            return std::make_pair(x.iiid.poi, x.sub);
        };
        const auto my_key = std::make_pair(ev.iiid.poi, ev.sub);
        auto pos = vec.end();
        while (pos != vec.begin() && key(*(pos - 1)) > my_key)
            --pos;
        vec.insert(pos, id);
    }
    return id;
}

EventId
ExecWitness::getOrCreateInit(Addr addr)
{
    auto it = initEvents_.find(addr);
    if (it != initEvents_.end())
        return it->second;
    Event ev;
    ev.iiid = Iiid{kInitPid, -1};
    ev.type = EventType::Write;
    ev.addr = addr;
    ev.value = kInitVal;
    const EventId id = addEvent(ev);
    initEvents_.emplace(addr, id);
    return id;
}

void
ExecWitness::flagAnomaly(WitnessAnomaly kind, std::string info)
{
    // Keep the first anomaly; later ones are usually fallout.
    if (anomaly_ == WitnessAnomaly::None) {
        anomaly_ = kind;
        anomalyInfo_ = std::move(info);
    }
}

EventId
ExecWitness::recordRead(Pid pid, std::int32_t poi, Addr addr,
                        WriteVal value, bool rmw)
{
    assert(!finalized_ && "witness already finalized");
    Event ev;
    ev.iiid = Iiid{pid, poi};
    ev.type = EventType::Read;
    ev.addr = addr;
    ev.value = value;
    ev.rmw = rmw;
    ev.sub = 0;
    const EventId id = addEvent(ev);
    if (rmw)
        pendingRmwReads_[{pid, poi}] = id;
    return id;
}

EventId
ExecWitness::recordWrite(Pid pid, std::int32_t poi, Addr addr,
                         WriteVal value, WriteVal overwritten, bool rmw)
{
    assert(!finalized_ && "witness already finalized");
    Event ev;
    ev.iiid = Iiid{pid, poi};
    ev.type = EventType::Write;
    ev.addr = addr;
    ev.value = value;
    ev.rmw = rmw;
    ev.sub = 1;
    const EventId id = addEvent(ev);
    valueToWriter_[value] = id;
    overwrittenBy_.emplace_back(id, overwritten);

    if (rmw) {
        auto it = pendingRmwReads_.find({pid, poi});
        if (it != pendingRmwReads_.end()) {
            rmwPairs_.emplace_back(it->second, id);
            pendingRmwReads_.erase(it);
        }
    }
    return id;
}

EventId
ExecWitness::resolveWriter(Addr addr, WriteVal value, bool &unknown)
{
    unknown = false;
    if (value == kInitVal)
        return getOrCreateInit(addr);
    auto it = valueToWriter_.find(value);
    if (it == valueToWriter_.end()) {
        unknown = true;
        return kNoEvent;
    }
    return it->second;
}

void
ExecWitness::finalize()
{
    if (finalized_)
        return;
    finalized_ = true;

    // Resolve read-from. All writes are recorded by now (the system is
    // quiescent when the host verifies), so an unknown value is a real
    // anomaly (data fabrication / corruption), not a race with
    // recording.
    const std::size_t num_events = events_.size();
    for (std::size_t i = 0; i < num_events; ++i) {
        const Event &ev = events_[i];
        if (!ev.isRead())
            continue;
        bool unknown = false;
        const EventId writer = resolveWriter(ev.addr, ev.value, unknown);
        if (unknown) {
            std::ostringstream os;
            os << "read of unknown value: " << ev.toString();
            flagAnomaly(WitnessAnomaly::UnknownValue, os.str());
            continue;
        }
        rf_.insert(writer, static_cast<EventId>(i));
        rfSrc_[static_cast<EventId>(i)] = writer;
    }

    // Resolve immediate coherence edges from overwritten values.
    for (const auto &[w, overwritten] : overwrittenBy_) {
        const Event &ev = events_[static_cast<std::size_t>(w)];
        bool unknown = false;
        const EventId prev = resolveWriter(ev.addr, overwritten, unknown);
        if (unknown) {
            std::ostringstream os;
            os << "write overwrote unknown value " << overwritten << ": "
               << ev.toString();
            flagAnomaly(WitnessAnomaly::UnknownValue, os.str());
            continue;
        }
        if (auto it = coSucc_.find(prev); it != coSucc_.end()) {
            std::ostringstream os;
            os << "co fork: " << ev.toString() << " and "
               << events_[static_cast<std::size_t>(it->second)].toString()
               << " both overwrite "
               << events_[static_cast<std::size_t>(prev)].toString();
            flagAnomaly(WitnessAnomaly::CoFork, os.str());
        } else {
            coSucc_[prev] = w;
        }
        co_.insert(prev, w);
        coPred_[w] = prev;
    }
}

const std::vector<EventId> &
ExecWitness::threadEvents(Pid pid) const
{
    auto it = perThread_.find(pid);
    return it == perThread_.end() ? emptyThread_ : it->second;
}

std::vector<Pid>
ExecWitness::threads() const
{
    std::vector<Pid> out;
    out.reserve(perThread_.size());
    for (const auto &[pid, evs] : perThread_) {
        (void)evs;
        out.push_back(pid);
    }
    return out;
}

EventId
ExecWitness::coSuccessor(EventId w) const
{
    assert(finalized_);
    auto it = coSucc_.find(w);
    return it == coSucc_.end() ? kNoEvent : it->second;
}

EventId
ExecWitness::coPredecessor(EventId w) const
{
    assert(finalized_);
    auto it = coPred_.find(w);
    return it == coPred_.end() ? kNoEvent : it->second;
}

EventId
ExecWitness::rfSource(EventId r) const
{
    assert(finalized_);
    auto it = rfSrc_.find(r);
    return it == rfSrc_.end() ? kNoEvent : it->second;
}

Relation
ExecWitness::computeFrImmediate() const
{
    Relation fr;
    for (const auto &[r, w] : rfSrc_) {
        if (!events_[static_cast<std::size_t>(r)].isRead())
            continue;
        const EventId succ = coSuccessor(w);
        if (succ != kNoEvent)
            fr.insert(r, succ);
    }
    return fr;
}

Relation
ExecWitness::computeFr() const
{
    Relation fr;
    for (const auto &[r, w] : rfSrc_) {
        if (!events_[static_cast<std::size_t>(r)].isRead())
            continue;
        for (EventId succ = coSuccessor(w); succ != kNoEvent;
             succ = coSuccessor(succ)) {
            fr.insert(r, succ);
        }
    }
    return fr;
}

EventId
ExecWitness::initEvent(Addr addr) const
{
    auto it = initEvents_.find(addr);
    return it == initEvents_.end() ? kNoEvent : it->second;
}

void
ExecWitness::reset()
{
    events_.clear();
    perThread_.clear();
    valueToWriter_.clear();
    initEvents_.clear();
    rf_.clear();
    co_.clear();
    coSucc_.clear();
    coPred_.clear();
    rfSrc_.clear();
    overwrittenBy_.clear();
    pendingRmwReads_.clear();
    rmwPairs_.clear();
    anomaly_ = WitnessAnomaly::None;
    anomalyInfo_.clear();
    finalized_ = false;
}

} // namespace mcversi::mc
