/**
 * @file
 * Table 6 reproduction: maximum total transition coverage per
 * configuration, for both protocols.
 *
 * Bug-free systems are fuzzed for a fixed test-run budget per sample;
 * the table reports the maximum total structural coverage observed
 * across samples. Expectations from the paper: 8KB configurations beat
 * 1KB (more of the replacement machinery is exercised), McVerSi-ALL
 * (8KB) is highest, litmus sits in between, and no configuration
 * reaches 100% (some transitions are practically unreachable).
 */

#include <algorithm>

#include "bench_common.hh"

using namespace mcvbench;

namespace {

double
coverageFor(GenConfig config, sim::Protocol protocol,
            std::uint64_t seed, std::uint64_t max_runs,
            double max_secs, const char *prefix)
{
    host::Budget budget;
    budget.maxTestRuns = max_runs;
    budget.maxWallSeconds = max_secs;

    if (isLitmus(config)) {
        litmus::LitmusRunner::Params params;
        params.system.protocol = protocol;
        params.system.seed = seed;
        params.iterationsPerRun = 12;
        litmus::LitmusRunner runner(params, litmus::x86TsoSuite());
        host::Budget lb = budget;
        lb.maxTestRuns = max_runs * 4;
        runner.run(lb);
        return runner.system().coverage().totalCoverage(prefix);
    }

    host::VerificationHarness::Params params;
    params.system.protocol = protocol;
    params.system.seed = seed;
    params.gen = benchGenParams(config);
    params.workload.iterations = params.gen.iterations;
    params.recordNdt = false;

    gp::GaParams ga;
    ga.population = 40;

    if (config == GenConfig::Rand1K || config == GenConfig::Rand8K) {
        host::RandomSource source(params.gen, seed);
        host::VerificationHarness harness(params, source);
        harness.run(budget);
        return harness.system().coverage().totalCoverage(prefix);
    }
    const auto mode = (config == GenConfig::All1K ||
                       config == GenConfig::All8K)
                          ? gp::SteadyStateGa::XoMode::Selective
                          : gp::SteadyStateGa::XoMode::SinglePoint;
    host::GaSource source(ga, params.gen, seed, mode);
    host::VerificationHarness harness(params, source);
    harness.run(budget);
    return harness.system().coverage().totalCoverage(prefix);
}

} // namespace

int
main()
{
    const double scale = benchScale();
    const int samples = benchSamples(2);
    const auto max_runs = static_cast<std::uint64_t>(150 * scale);
    const double max_secs = 15.0 * scale;

    const std::vector<GenConfig> configs = {
        GenConfig::All1K,   GenConfig::All8K, GenConfig::StdXo1K,
        GenConfig::StdXo8K, GenConfig::Rand1K, GenConfig::Rand8K,
        GenConfig::DiyLitmus,
    };

    std::printf("Table 6: maximum total transition coverage observed "
                "across %d samples (budget %llu runs)\n\n",
                samples, static_cast<unsigned long long>(max_runs));
    std::printf("%-10s", "Protocol");
    for (GenConfig c : configs)
        std::printf(" | %-20s", genConfigName(c));
    std::printf("\n");

    struct ProtoCase
    {
        sim::Protocol protocol;
        const char *name;
        const char *prefix;
    };
    const ProtoCase protos[] = {
        {sim::Protocol::Mesi, "MESI", "MESI"},
        {sim::Protocol::Tsocc, "TSO-CC", "TSOCC"},
    };

    for (const ProtoCase &pc : protos) {
        std::printf("%-10s", pc.name);
        std::fflush(stdout);
        for (GenConfig c : configs) {
            double best = 0.0;
            for (int s = 0; s < samples; ++s) {
                best = std::max(
                    best, coverageFor(c, pc.protocol,
                                      1000 + static_cast<std::uint64_t>(
                                                 s * 131),
                                      max_runs, max_secs, pc.prefix));
            }
            char buf[16];
            std::snprintf(buf, sizeof(buf), "%.1f%%", 100.0 * best);
            std::printf(" | %-20s", buf);
            std::fflush(stdout);
        }
        std::printf("\n");
    }
    return 0;
}
