#include "fleet/coordinator.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <deque>

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include "fleet/fs.hh"
#include "fleet/journal.hh"
#include "fleet/worker.hh"

namespace mcversi::fleet {

namespace {

using Clock = std::chrono::steady_clock;

/** Largest response frame the coordinator will believe. */
constexpr std::uint32_t kMaxFrameBytes = 64u * 1024u * 1024u;
/** Stderr bytes attached to an error row. */
constexpr std::size_t kStderrTailBytes = 4096;
/** Grace period between SIGTERM and SIGKILL at shutdown. */
constexpr int kShutdownGraceMs = 5000;

// SIGINT/SIGTERM reach the coordinator through a self-pipe so poll()
// wakes immediately; the flag alone would race a blocking poll.
volatile std::sig_atomic_t g_signalled = 0;
int g_selfPipeWrite = -1;

void
onSignal(int)
{
    g_signalled = 1;
    if (g_selfPipeWrite >= 0) {
        const char byte = 1;
        [[maybe_unused]] const ssize_t n =
            ::write(g_selfPipeWrite, &byte, 1);
    }
}

std::string
describeStatus(int status)
{
    if (WIFEXITED(status)) {
        return "exited with status " +
               std::to_string(WEXITSTATUS(status));
    }
    if (WIFSIGNALED(status)) {
        const int sig = WTERMSIG(status);
        return std::string("killed by signal ") + std::to_string(sig) +
               " (" + strsignal(sig) + ")";
    }
    return "stopped with status " + std::to_string(status);
}

/** One byte per escape-worthy char is enough: exporters escape again. */
std::string
sanitizeTail(std::string tail)
{
    while (!tail.empty() &&
           (tail.back() == '\n' || tail.back() == '\r' ||
            tail.back() == ' ')) {
        tail.pop_back();
    }
    return tail;
}

struct WorkerProc
{
    pid_t pid = -1;
    int requestFd = -1;
    int responseFd = -1;
    bool alive = false;
    /** In-flight cell index, or -1 when idle. */
    long inFlight = -1;
    std::uint32_t attempt = 0;
    Clock::time_point deadline{};
    bool hasDeadline = false;
    /** Stderr-log size at dispatch: the failure capture window. */
    std::uint64_t logOffset = 0;
    /** Partial response frame. */
    std::string buf;
};

/** Installs the coordinator signal handlers; restores on destruction. */
class SignalGuard
{
  public:
    SignalGuard(int self_pipe_write)
    {
        g_signalled = 0;
        g_selfPipeWrite = self_pipe_write;
        struct sigaction sa{};
        sa.sa_handler = onSignal;
        ::sigaction(SIGINT, &sa, &oldInt_);
        ::sigaction(SIGTERM, &sa, &oldTerm_);
        oldPipe_ = ::signal(SIGPIPE, SIG_IGN);
    }
    ~SignalGuard()
    {
        ::sigaction(SIGINT, &oldInt_, nullptr);
        ::sigaction(SIGTERM, &oldTerm_, nullptr);
        ::signal(SIGPIPE, oldPipe_);
        g_selfPipeWrite = -1;
    }

  private:
    struct sigaction oldInt_{};
    struct sigaction oldTerm_{};
    sighandler_t oldPipe_ = SIG_DFL;
};

std::string
workerLogPath(const std::string &run_dir, int slot)
{
    return run_dir + "/worker-" + std::to_string(slot) + ".log";
}

/** The whole mutable state of one fleet run. */
struct FleetRun
{
    const FleetCoordinator::Options &options;
    const std::vector<campaign::CampaignSpec> &specs;
    FleetReport report;

    JournalWriter journal;
    std::map<std::size_t, campaign::CampaignResult> completed;
    std::deque<std::size_t> queue;
    /** Attempts dispatched so far, per cell. */
    std::vector<int> attempts;
    std::vector<WorkerProc> workers;
    int selfPipe[2] = {-1, -1};
    std::size_t respawnBudget = 0;

    FleetRun(const FleetCoordinator::Options &opts,
             const std::vector<campaign::CampaignSpec> &s)
        : options(opts), specs(s), attempts(s.size(), 0)
    {
    }

    ~FleetRun()
    {
        // Emergency path (exception unwinding): make sure no child
        // outlives the coordinator.
        for (WorkerProc &w : workers) {
            if (w.alive && w.pid > 0)
                ::kill(w.pid, SIGKILL);
        }
        for (WorkerProc &w : workers) {
            if (w.alive && w.pid > 0) {
                int status = 0;
                ::waitpid(w.pid, &status, 0);
                w.alive = false;
            }
            closeFds(w);
        }
        for (const int fd : selfPipe) {
            if (fd >= 0)
                ::close(fd);
        }
    }

    static void
    closeFds(WorkerProc &w)
    {
        if (w.requestFd >= 0) {
            ::close(w.requestFd);
            w.requestFd = -1;
        }
        if (w.responseFd >= 0) {
            ::close(w.responseFd);
            w.responseFd = -1;
        }
    }

    std::size_t
    aliveCount() const
    {
        std::size_t n = 0;
        for (const WorkerProc &w : workers)
            n += w.alive ? 1 : 0;
        return n;
    }

    std::size_t
    inFlightCount() const
    {
        std::size_t n = 0;
        for (const WorkerProc &w : workers)
            n += (w.alive && w.inFlight >= 0) ? 1 : 0;
        return n;
    }

    void
    spawnWorker(int slot)
    {
        int req[2] = {-1, -1};
        int resp[2] = {-1, -1};
        if (::pipe(req) != 0 || ::pipe(resp) != 0) {
            if (req[0] >= 0) {
                ::close(req[0]);
                ::close(req[1]);
            }
            throw FleetError(std::string("fleet: pipe failed: ") +
                             std::strerror(errno));
        }
        const pid_t pid = ::fork();
        if (pid < 0) {
            ::close(req[0]);
            ::close(req[1]);
            ::close(resp[0]);
            ::close(resp[1]);
            throw FleetError(std::string("fleet: fork failed: ") +
                             std::strerror(errno));
        }
        if (pid == 0) {
            // Child: drop every coordinator-side fd so a sibling's
            // pipe EOF is decided solely by the coordinator, then
            // point stdout/stderr at the per-slot log and serve cells.
            ::close(req[1]);
            ::close(resp[0]);
            for (const int fd : selfPipe) {
                if (fd >= 0)
                    ::close(fd);
            }
            journal.close();
            for (WorkerProc &other : workers)
                closeFds(other);
            const std::string log =
                workerLogPath(options.runDir, slot);
            const int logfd = ::open(log.c_str(),
                                     O_WRONLY | O_CREAT | O_APPEND,
                                     0644);
            if (logfd >= 0) {
                ::dup2(logfd, STDOUT_FILENO);
                ::dup2(logfd, STDERR_FILENO);
                ::close(logfd);
            }
            WorkerConfig config;
            config.requestFd = req[0];
            config.responseFd = resp[1];
            config.evalThreads = options.evalThreads;
            ::_exit(runWorkerLoop(config, specs));
        }
        ::close(req[0]);
        ::close(resp[1]);
        WorkerProc &w = workers[static_cast<std::size_t>(slot)];
        w = WorkerProc{};
        w.pid = pid;
        w.requestFd = req[1];
        w.responseFd = resp[0];
        w.alive = true;
        if (options.onWorkerSpawn)
            options.onWorkerSpawn(slot, pid);
    }

    void
    attachSpec(std::size_t cell, campaign::CampaignResult &result) const
    {
        result.spec = specs[cell];
    }

    void
    recordCompleted(std::size_t cell, campaign::CampaignResult result)
    {
        attachSpec(cell, result);
        completed[cell] = std::move(result);
        ++report.cellsRun;
        if (options.onResult) {
            options.onResult(completed[cell], completed.size(),
                             specs.size());
        }
    }

    void
    dispatch(WorkerProc &w)
    {
        const std::size_t cell = queue.front();
        queue.pop_front();
        ++attempts[cell];
        w.logOffset =
            fileSize(workerLogPath(options.runDir, slotOf(w)));
        std::uint32_t frame[2] = {
            static_cast<std::uint32_t>(cell),
            static_cast<std::uint32_t>(attempts[cell]),
        };
        const char *bytes = reinterpret_cast<const char *>(frame);
        std::size_t written = 0;
        while (written < sizeof(frame)) {
            const ssize_t n = ::write(w.requestFd, bytes + written,
                                      sizeof(frame) - written);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                // The worker died before taking the cell: run the
                // normal failure path with the cell back in flight.
                w.inFlight = static_cast<long>(cell);
                w.attempt = frame[1];
                ++report.workerCrashes;
                failWorker(w, "request write failed (" +
                                  std::string(std::strerror(errno)) +
                                  ")");
                return;
            }
            written += static_cast<std::size_t>(n);
        }
        w.inFlight = static_cast<long>(cell);
        w.attempt = frame[1];
        if (options.cellTimeoutSeconds > 0.0) {
            w.deadline =
                Clock::now() +
                std::chrono::microseconds(static_cast<std::int64_t>(
                    options.cellTimeoutSeconds * 1e6));
            w.hasDeadline = true;
        }
    }

    int
    slotOf(const WorkerProc &w) const
    {
        return static_cast<int>(&w - workers.data());
    }

    /** Reap @p w (killing it first if @p force), return a status
     * description. */
    std::string
    reap(WorkerProc &w, bool force)
    {
        if (force)
            ::kill(w.pid, SIGKILL);
        int status = 0;
        ::waitpid(w.pid, &status, 0);
        w.alive = false;
        closeFds(w);
        return describeStatus(status);
    }

    /**
     * A worker is gone (crash, timeout kill, protocol damage): retry
     * or degrade its in-flight cell, then refill the pool if work
     * remains.
     */
    void
    failWorker(WorkerProc &w, const std::string &reason,
               bool force_kill = true)
    {
        const std::string status = reap(w, force_kill);
        const std::string tail = sanitizeTail(readFileRange(
            workerLogPath(options.runDir, slotOf(w)), w.logOffset,
            kStderrTailBytes));
        if (w.inFlight >= 0) {
            const std::size_t cell =
                static_cast<std::size_t>(w.inFlight);
            w.inFlight = -1;
            w.hasDeadline = false;
            const std::string why = reason + "; worker " + status;
            if (attempts[cell] <= options.retries) {
                // Back of the queue: surviving workers pick it up
                // without stalling cells that have never run.
                queue.push_back(cell);
                ++report.retriesScheduled;
                if (options.onRetry)
                    options.onRetry(cell, attempts[cell], why);
            } else {
                campaign::CampaignResult error_row;
                error_row.error =
                    "fleet: cell failed after " +
                    std::to_string(attempts[cell]) + " attempt(s): " +
                    why +
                    (tail.empty() ? std::string()
                                  : "; worker stderr: " + tail);
                CellRecord record;
                record.cell = cell;
                record.attempt =
                    static_cast<std::uint32_t>(attempts[cell]);
                record.spec = specs[cell].toString();
                record.result = error_row;
                journal.append(encodeCell(record));
                ++report.cellErrors;
                if (options.onRetry) {
                    options.onRetry(cell, attempts[cell],
                                    "degraded to error row: " + why);
                }
                recordCompleted(cell, std::move(error_row));
            }
        }
        maybeRespawn(slotOf(w));
    }

    void
    maybeRespawn(int slot)
    {
        if (queue.empty() || g_signalled || sliceReached())
            return;
        if (respawnBudget == 0) {
            throw FleetError(
                "fleet: worker respawn budget exhausted (workers are "
                "dying faster than cells complete)");
        }
        --respawnBudget;
        spawnWorker(slot);
        ++report.respawns;
    }

    bool
    sliceReached() const
    {
        return options.maxCells > 0 &&
               report.cellsRun >= options.maxCells;
    }

    /** A full response frame arrived: validate, journal, complete. */
    void
    completeFromFrame(WorkerProc &w, const std::string &payload)
    {
        CellRecord record;
        std::string err;
        if (!decodeCell(payload, record, &err) ||
            w.inFlight < 0 ||
            record.cell != static_cast<std::size_t>(w.inFlight) ||
            record.spec != specs[record.cell].toString()) {
            ++report.workerCrashes;
            failWorker(w, "protocol error in response (" +
                              (err.empty() ? "cell/spec mismatch" : err) +
                              ")");
            return;
        }
        // Journal the worker's exact bytes before acknowledging: once
        // append() returns the record is fsync-durable, so a
        // coordinator crash after this point cannot lose the cell.
        journal.append(payload);
        w.inFlight = -1;
        w.hasDeadline = false;
        recordCompleted(record.cell, std::move(record.result));
    }

    /** Pull whatever the worker wrote; frame up and process. */
    void
    onReadable(WorkerProc &w)
    {
        char chunk[1 << 16];
        const ssize_t n = ::read(w.responseFd, chunk, sizeof(chunk));
        if (n < 0 && errno == EINTR)
            return;
        if (n <= 0) {
            ++report.workerCrashes;
            failWorker(w, "worker pipe closed unexpectedly",
                       /*force_kill=*/true);
            return;
        }
        w.buf.append(chunk, static_cast<std::size_t>(n));
        while (w.alive && w.buf.size() >= 4) {
            std::uint32_t length = 0;
            std::memcpy(&length, w.buf.data(), 4);
            if (length > kMaxFrameBytes) {
                ++report.workerCrashes;
                failWorker(w, "oversized response frame");
                return;
            }
            if (w.buf.size() < 4u + length)
                break;
            const std::string payload = w.buf.substr(4, length);
            w.buf.erase(0, 4u + length);
            completeFromFrame(w, payload);
        }
    }

    void
    killTimedOut()
    {
        if (options.cellTimeoutSeconds <= 0.0)
            return;
        const Clock::time_point now = Clock::now();
        for (WorkerProc &w : workers) {
            if (w.alive && w.hasDeadline && now >= w.deadline) {
                ++report.timeouts;
                failWorker(
                    w,
                    "exceeded cell-timeout (" +
                        std::to_string(options.cellTimeoutSeconds) +
                        " s)");
            }
        }
    }

    /** Milliseconds until the earliest deadline (-1 = no deadline). */
    int
    pollTimeoutMs() const
    {
        if (options.cellTimeoutSeconds <= 0.0)
            return -1;
        const Clock::time_point now = Clock::now();
        std::int64_t best = -1;
        for (const WorkerProc &w : workers) {
            if (!w.alive || !w.hasDeadline)
                continue;
            const std::int64_t ms =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    w.deadline - now)
                    .count();
            const std::int64_t clamped = std::max<std::int64_t>(ms, 0);
            best = best < 0 ? clamped : std::min(best, clamped);
        }
        if (best < 0)
            return -1;
        return static_cast<int>(std::min<std::int64_t>(best + 10, 60000));
    }

    /** Graceful shutdown: EOF + SIGTERM, grace, SIGKILL stragglers. */
    void
    shutdownWorkers()
    {
        for (WorkerProc &w : workers) {
            if (!w.alive)
                continue;
            if (w.requestFd >= 0) {
                ::close(w.requestFd);
                w.requestFd = -1;
            }
            ::kill(w.pid, SIGTERM);
        }
        const Clock::time_point deadline =
            Clock::now() + std::chrono::milliseconds(kShutdownGraceMs);
        for (;;) {
            bool any_alive = false;
            for (WorkerProc &w : workers) {
                if (!w.alive)
                    continue;
                int status = 0;
                const pid_t got = ::waitpid(w.pid, &status, WNOHANG);
                if (got == w.pid || (got < 0 && errno == ECHILD)) {
                    w.alive = false;
                    closeFds(w);
                } else {
                    any_alive = true;
                }
            }
            if (!any_alive)
                return;
            if (Clock::now() >= deadline)
                break;
            ::usleep(20000);
        }
        for (WorkerProc &w : workers) {
            if (w.alive) {
                reap(w, /*force=*/true);
            }
        }
    }

    campaign::CampaignSummary
    merge() const
    {
        campaign::CampaignSummary summary;
        summary.results.resize(specs.size());
        for (std::size_t i = 0; i < specs.size(); ++i) {
            const auto it = completed.find(i);
            if (it != completed.end()) {
                summary.results[i] = it->second;
            } else {
                summary.results[i].spec = specs[i];
                summary.results[i].error =
                    "fleet: cell not run (run interrupted; pass "
                    "resume=1 to continue)";
            }
        }
        return summary;
    }
};

} // namespace

std::string
journalPath(const std::string &run_dir)
{
    return run_dir + "/journal.mcvj";
}

ReplayStats
replayJournal(const std::string &journal_path,
              const std::vector<campaign::CampaignSpec> &specs,
              std::map<std::size_t, campaign::CampaignResult> &completed)
{
    ReplayStats stats;
    const JournalReadResult read = readJournal(journal_path);
    stats.droppedTornTail = read.droppedTornTail;
    stats.corruptSkipped = read.corruptSkipped;
    if (read.payloads.empty()) {
        if (read.droppedTornTail || read.corruptSkipped > 0)
            return stats; // Journal died before its meta record: empty.
        return stats;
    }
    MetaRecord meta;
    if (!decodeMeta(read.payloads.front(), meta)) {
        throw FleetError("fleet: journal " + journal_path +
                         " has no meta record (not a fleet journal?)");
    }
    if (meta.cells != specs.size() ||
        meta.fingerprint != matrixFingerprint(specs)) {
        throw FleetError(
            "fleet: journal " + journal_path +
            " belongs to a different campaign matrix (cells/" +
            "fingerprint mismatch); use a fresh run directory");
    }
    for (std::size_t i = 1; i < read.payloads.size(); ++i) {
        CellRecord record;
        std::string err;
        if (!decodeCell(read.payloads[i], record, &err)) {
            ++stats.corruptSkipped;
            continue;
        }
        ++stats.records;
        if (record.cell >= specs.size()) {
            throw FleetError("fleet: journal record for cell " +
                             std::to_string(record.cell) +
                             " is outside the matrix");
        }
        if (record.spec != specs[record.cell].toString()) {
            throw FleetError(
                "fleet: journal record for cell " +
                std::to_string(record.cell) +
                " does not match its spec (journal from a different "
                "matrix?)");
        }
        record.result.spec = specs[record.cell];
        // Last-wins: duplicates are legal (a retry raced a crash).
        if (completed.count(record.cell) > 0)
            ++stats.duplicates;
        completed[record.cell] = std::move(record.result);
        ++stats.applied;
    }
    return stats;
}

FleetCoordinator::FleetCoordinator(Options options)
    : options_(std::move(options))
{
}

FleetReport
FleetCoordinator::run(const std::vector<campaign::CampaignSpec> &specs)
{
    if (options_.workers < 1)
        throw FleetError("fleet: workers must be >= 1");
    if (options_.retries < 0)
        throw FleetError("fleet: retries must be >= 0");
    if (options_.runDir.empty())
        throw FleetError("fleet: a run directory is required");

    std::string err;
    if (!ensureDir(options_.runDir, &err))
        throw FleetError("fleet: " + err);

    FleetRun run(options_, specs);
    run.report.cellsTotal = specs.size();

    const std::string journal_path = journalPath(options_.runDir);
    const bool journal_exists = nonEmptyFileExists(journal_path);
    if (!options_.resume && journal_exists) {
        throw FleetError(
            "fleet: " + journal_path +
            " already exists; pass resume=1 to continue that run or "
            "use a fresh run directory");
    }
    if (options_.resume && journal_exists) {
        const ReplayStats stats =
            replayJournal(journal_path, specs, run.completed);
        run.report.cellsResumed = run.completed.size();
        run.report.journalDropped =
            stats.corruptSkipped + (stats.droppedTornTail ? 1 : 0);
    }

    run.journal.open(journal_path);
    if (!journal_exists || fileSize(journal_path) == 0) {
        MetaRecord meta;
        meta.cells = specs.size();
        meta.fingerprint = matrixFingerprint(specs);
        run.journal.append(encodeMeta(meta));
    }

    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (run.completed.count(i) == 0)
            run.queue.push_back(i);
    }

    if (run.queue.empty()) {
        run.report.summary = run.merge();
        return std::move(run.report);
    }

    if (::pipe(run.selfPipe) != 0) {
        throw FleetError(std::string("fleet: pipe failed: ") +
                         std::strerror(errno));
    }
    ::fcntl(run.selfPipe[1], F_SETFL, O_NONBLOCK);
    SignalGuard signals(run.selfPipe[1]);

    const std::size_t worker_count =
        std::min<std::size_t>(static_cast<std::size_t>(options_.workers),
                              run.queue.size());
    run.respawnBudget =
        specs.size() *
            (static_cast<std::size_t>(options_.retries) + 1) +
        worker_count * 4;
    run.workers.resize(worker_count);
    for (std::size_t slot = 0; slot < worker_count; ++slot)
        run.spawnWorker(static_cast<int>(slot));

    for (;;) {
        if (g_signalled) {
            run.report.interrupted = true;
            break;
        }
        run.killTimedOut();
        if (!run.sliceReached()) {
            for (WorkerProc &w : run.workers) {
                if (run.queue.empty())
                    break;
                if (w.alive && w.inFlight < 0)
                    run.dispatch(w);
            }
        }
        if (run.completed.size() == specs.size())
            break;
        if (run.inFlightCount() == 0) {
            if (run.sliceReached()) {
                run.report.interrupted = true;
                break;
            }
            if (run.queue.empty())
                break; // Nothing left to do.
            // A dispatch can fail against a worker that died since
            // the last poll; its replacement spawns IDLE, so retry
            // dispatch while alive workers remain (the respawn
            // budget bounds this loop against a crash storm).
            if (run.aliveCount() > 0)
                continue;
            throw FleetError(
                "fleet: all workers are gone with cells pending");
        }

        std::vector<pollfd> fds;
        std::vector<std::size_t> fd_worker;
        fds.push_back({run.selfPipe[0], POLLIN, 0});
        fd_worker.push_back(static_cast<std::size_t>(-1));
        for (std::size_t i = 0; i < run.workers.size(); ++i) {
            const WorkerProc &w = run.workers[i];
            if (w.alive) {
                fds.push_back({w.responseFd, POLLIN, 0});
                fd_worker.push_back(i);
            }
        }
        const int ready =
            ::poll(fds.data(), fds.size(), run.pollTimeoutMs());
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            throw FleetError(std::string("fleet: poll failed: ") +
                             std::strerror(errno));
        }
        for (std::size_t i = 1; i < fds.size(); ++i) {
            if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0)
                continue;
            WorkerProc &w = run.workers[fd_worker[i]];
            if (w.alive)
                run.onReadable(w);
        }
        if ((fds[0].revents & POLLIN) != 0) {
            char drain[64];
            [[maybe_unused]] const ssize_t n =
                ::read(run.selfPipe[0], drain, sizeof(drain));
        }
    }

    run.shutdownWorkers();
    run.report.summary = run.merge();
    return std::move(run.report);
}

} // namespace mcversi::fleet
