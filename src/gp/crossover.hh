/**
 * @file
 * Crossover and mutation operators (§3.3, Algorithm 1).
 *
 * The selective crossover gives preference to memory operations involved
 * in races: nodes whose address is in a parent's fitaddrs set are always
 * inherited, preserving the sequences of operations that contribute to
 * the non-deterministic outcome. Slots selected from neither parent are
 * regenerated randomly (implicit, directed mutation), optionally with
 * addresses biased towards the union of both parents' fitaddrs (PBFA).
 *
 * The standard single-point crossover (McVerSi-Std.XO in the paper) is
 * provided for comparison.
 */

#ifndef MCVERSI_GP_CROSSOVER_HH
#define MCVERSI_GP_CROSSOVER_HH

#include "common/rng.hh"
#include "gp/ndmetrics.hh"
#include "gp/params.hh"
#include "gp/randgen.hh"
#include "gp/test.hh"

namespace mcversi::gp {

/** Fraction of memory operations guaranteed to be selected (Alg. 1). */
double fitaddrFraction(const Test &test,
                       const AddrSet &fitaddrs);

/**
 * Selective crossover + mutation (Algorithm 1).
 *
 * @param t1, nd1  first parent and its test-run non-determinism info
 * @param t2, nd2  second parent and its info
 * @param gen      factory for random replacement nodes
 * @param ga       GA parameters (PUSEL, PBFA, PMUT)
 * @param rng      randomness source
 * @return a child of the same length as the parents
 */
Test crossoverMutate(const Test &t1, const NdInfo &nd1,
                     const Test &t2, const NdInfo &nd2,
                     const RandomTestGen &gen, const GaParams &ga,
                     Rng &rng);

/**
 * Standard single-point crossover over the flat list (McVerSi-Std.XO),
 * followed by per-gene mutation with probability PMUT.
 */
Test singlePointCrossoverMutate(const Test &t1, const Test &t2,
                                const RandomTestGen &gen,
                                const GaParams &ga, Rng &rng);

} // namespace mcversi::gp

#endif // MCVERSI_GP_CROSSOVER_HH
