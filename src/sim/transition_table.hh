/**
 * @file
 * Explicit protocol transition tables (SLICC-style).
 *
 * Each controller declares its defined (state, event) pairs up front,
 * which (a) registers them with the coverage tracker so the denominator
 * of structural coverage is the full table, and (b) makes undefined
 * combinations fail loudly as ProtocolError -- exactly how Ruby reports
 * "invalid transition", which is how MESI+PUTX-Race is caught (§5.3).
 */

#ifndef MCVERSI_SIM_TRANSITION_TABLE_HH
#define MCVERSI_SIM_TRANSITION_TABLE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/coverage.hh"
#include "sim/fault.hh"

namespace mcversi::sim {

/** Registry of one controller type's defined transitions. */
class TransitionTable
{
  public:
    TransitionTable(TransitionCoverage &cov, std::string controller,
                    std::vector<std::string> state_names,
                    std::vector<std::string> event_names)
        : cov_(cov), controller_(std::move(controller)),
          stateNames_(std::move(state_names)),
          eventNames_(std::move(event_names))
    {
    }

    /** Declare (state, event) as a legal transition. */
    void
    define(int state, int event)
    {
        const std::uint32_t id = cov_.registerTransition(
            controller_, stateNames_[static_cast<std::size_t>(state)],
            eventNames_[static_cast<std::size_t>(event)]);
        const std::size_t k = key(state, event);
        if (k >= ids_.size())
            ids_.resize(k + 1, kUndefined);
        ids_[k] = static_cast<std::int64_t>(id);
    }

    bool
    defined(int state, int event) const
    {
        const std::size_t k = key(state, event);
        return k < ids_.size() && ids_[k] != kUndefined;
    }

    /**
     * Record the transition with the coverage tracker; throws
     * ProtocolError if the pair was never defined. Hot path: a flat
     * array lookup (the (state, event) key space is small and dense).
     */
    void
    record(int state, int event)
    {
        const std::size_t k = key(state, event);
        if (k >= ids_.size() || ids_[k] == kUndefined) {
            throw ProtocolError(
                controller_,
                stateNames_[static_cast<std::size_t>(state)],
                eventNames_[static_cast<std::size_t>(event)]);
        }
        cov_.record(static_cast<std::uint32_t>(ids_[k]));
    }

    const std::string &controller() const { return controller_; }

  private:
    static constexpr std::int64_t kUndefined = -1;

    static std::size_t
    key(int state, int event)
    {
        return static_cast<std::size_t>(state) * 64 +
               static_cast<std::size_t>(event);
    }

    TransitionCoverage &cov_;
    std::string controller_;
    std::vector<std::string> stateNames_;
    std::vector<std::string> eventNames_;
    /** Coverage id per (state, event) key, kUndefined where illegal. */
    std::vector<std::int64_t> ids_;
};

} // namespace mcversi::sim

#endif // MCVERSI_SIM_TRANSITION_TABLE_HH
