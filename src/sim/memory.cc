#include "sim/memory.hh"

#include <stdexcept>

#include "sim/network.hh"

namespace mcversi::sim {

const LineData &
MainMemory::line(Addr line_addr)
{
    return lines_[lineAddr(line_addr)];
}

void
MainMemory::setWord(Addr addr, WriteVal value)
{
    lines_[lineAddr(addr)].setWord(addr, value);
}

WriteVal
MainMemory::word(Addr addr)
{
    return lines_[lineAddr(addr)].word(addr);
}

void
MainMemory::handleMsg(const Msg &msg)
{
    switch (msg.type) {
      case MsgType::MemRead: {
        ++reads_;
        const Tick lat = params_.minLatency +
                         rng_.below(params_.maxLatency -
                                    params_.minLatency + 1);
        Msg &resp = net_.stage();
        resp.type = MsgType::MemData;
        resp.line = msg.line;
        resp.src = kMemNode;
        resp.dst = msg.src;
        resp.vnet = Vnet::Mem;
        resp.data = lines_[msg.line];
        resp.hasData = true;
        // Model access latency by delaying injection into the network.
        eq_.scheduleNetSend(eq_.now() + lat, &net_, &resp);
        break;
      }
      case MsgType::MemWrite:
        ++writes_;
        lines_[msg.line] = msg.data;
        break;
      default:
        throw std::runtime_error("MainMemory: unexpected message " +
                                 msg.toString());
    }
}

} // namespace mcversi::sim
