/**
 * @file
 * Checker tests on hand-built witnesses: the classic litmus shapes must
 * be classified correctly under SC and TSO.
 */

#include <gtest/gtest.h>

#include "memconsistency/checker.hh"
#include "memconsistency/models/registry.hh"

using namespace mcversi::mc;
using namespace mcversi;

namespace {

constexpr Addr kX = 0x100;
constexpr Addr kY = 0x140;

} // namespace

TEST(Checker, EmptyWitnessOk)
{
    ExecWitness ew;
    Checker tso(makeTso());
    EXPECT_TRUE(tso.check(ew).ok());
}

TEST(Checker, SequentialSingleThreadOk)
{
    ExecWitness ew;
    ew.recordWrite(0, 0, kX, 1, kInitVal);
    ew.recordRead(0, 1, kX, 1);
    ew.recordWrite(0, 2, kX, 2, 1);
    ew.recordRead(0, 3, kX, 2);
    Checker sc(makeSc());
    EXPECT_TRUE(sc.check(ew).ok());
}

TEST(Checker, CoRRViolationCaughtByUniproc)
{
    // Same-address reads going backwards: r1 sees the newer write,
    // a later r2 sees the older one.
    ExecWitness ew;
    ew.recordWrite(0, 0, kX, 1, kInitVal);
    ew.recordWrite(0, 1, kX, 2, 1);
    ew.recordRead(1, 0, kX, 2);
    ew.recordRead(1, 1, kX, 1);
    Checker tso(makeTso());
    const CheckResult res = tso.check(ew);
    EXPECT_FALSE(res.ok());
    EXPECT_EQ(res.kind, CheckResult::Kind::UniprocViolation);
    EXPECT_FALSE(res.cycle.empty());
}

TEST(Checker, ReadOwnFutureWriteForbidden)
{
    // A read observing a po-later write to the same address.
    ExecWitness ew;
    ew.recordRead(0, 0, kX, 5);
    ew.recordWrite(0, 1, kX, 5, kInitVal);
    Checker tso(makeTso());
    const CheckResult res = tso.check(ew);
    EXPECT_FALSE(res.ok());
    EXPECT_EQ(res.kind, CheckResult::Kind::UniprocViolation);
}

namespace {

/** Build the MP (message passing) outcome r1 = newY, r2 = oldX. */
void
buildMpViolation(ExecWitness &ew)
{
    // P0: x = 1; y = 1.   P1: r1 = y (1); r2 = x (0).
    ew.recordWrite(0, 0, kX, 1, kInitVal);
    ew.recordWrite(0, 1, kY, 2, kInitVal);
    ew.recordRead(1, 0, kY, 2);
    ew.recordRead(1, 1, kX, kInitVal);
}

} // namespace

TEST(Checker, MpForbiddenUnderTso)
{
    ExecWitness ew;
    buildMpViolation(ew);
    Checker tso(makeTso());
    const CheckResult res = tso.check(ew);
    EXPECT_FALSE(res.ok());
    EXPECT_EQ(res.kind, CheckResult::Kind::GhbViolation);
}

TEST(Checker, MpForbiddenUnderSc)
{
    ExecWitness ew;
    buildMpViolation(ew);
    Checker sc(makeSc());
    EXPECT_FALSE(sc.check(ew).ok());
}

TEST(Checker, MpAllowedOutcomesOk)
{
    // r1 = 1, r2 = 1 is fine.
    ExecWitness ew;
    ew.recordWrite(0, 0, kX, 1, kInitVal);
    ew.recordWrite(0, 1, kY, 2, kInitVal);
    ew.recordRead(1, 0, kY, 2);
    ew.recordRead(1, 1, kX, 1);
    Checker tso(makeTso());
    EXPECT_TRUE(tso.check(ew).ok());
}

namespace {

/** Store buffering: both reads see the initial value. */
void
buildSb(ExecWitness &ew)
{
    // P0: x = 1; r0 = y (0).   P1: y = 2; r1 = x (0).
    ew.recordWrite(0, 0, kX, 1, kInitVal);
    ew.recordRead(0, 1, kY, kInitVal);
    ew.recordWrite(1, 0, kY, 2, kInitVal);
    ew.recordRead(1, 1, kX, kInitVal);
}

} // namespace

TEST(Checker, SbAllowedUnderTso)
{
    // The W->R relaxation: TSO permits this, SC does not.
    ExecWitness ew;
    buildSb(ew);
    Checker tso(makeTso());
    EXPECT_TRUE(tso.check(ew).ok());
}

TEST(Checker, SbForbiddenUnderSc)
{
    ExecWitness ew;
    buildSb(ew);
    Checker sc(makeSc());
    const CheckResult res = sc.check(ew);
    EXPECT_FALSE(res.ok());
    EXPECT_EQ(res.kind, CheckResult::Kind::GhbViolation);
}

TEST(Checker, SbWithRmwFencesForbiddenUnderTso)
{
    // SB with an atomic RMW (full fence on x86) between each store and
    // load: the relaxation is gone, the outcome forbidden.
    ExecWitness ew;
    constexpr Addr kS1 = 0x200;
    constexpr Addr kS2 = 0x240;
    ew.recordWrite(0, 0, kX, 1, kInitVal);
    ew.recordRead(0, 1, kS1, kInitVal, true);
    ew.recordWrite(0, 1, kS1, 10, kInitVal, true);
    ew.recordRead(0, 2, kY, kInitVal);
    ew.recordWrite(1, 0, kY, 2, kInitVal);
    ew.recordRead(1, 1, kS2, kInitVal, true);
    ew.recordWrite(1, 1, kS2, 11, kInitVal, true);
    ew.recordRead(1, 2, kX, kInitVal);
    Checker tso(makeTso());
    const CheckResult res = tso.check(ew);
    EXPECT_FALSE(res.ok());
    EXPECT_EQ(res.kind, CheckResult::Kind::GhbViolation);
}

TEST(Checker, LoadBufferingForbiddenUnderTso)
{
    // LB: r0 = x observes P1's write, r1 = y observes P0's write;
    // requires load->store reordering, forbidden under TSO.
    ExecWitness ew;
    ew.recordRead(0, 0, kX, 3);
    ew.recordWrite(0, 1, kY, 2, kInitVal);
    ew.recordRead(1, 0, kY, 2);
    ew.recordWrite(1, 1, kX, 3, kInitVal);
    Checker tso(makeTso());
    EXPECT_FALSE(tso.check(ew).ok());
}

TEST(Checker, StoreForwardingAllowedUnderTso)
{
    // A thread reading its own store early (rfi) plus SB outcome:
    // allowed under TSO (rfi is not global).
    ExecWitness ew;
    ew.recordWrite(0, 0, kX, 1, kInitVal);
    ew.recordRead(0, 1, kX, 1);      // forwarded
    ew.recordRead(0, 2, kY, kInitVal);
    ew.recordWrite(1, 0, kY, 2, kInitVal);
    ew.recordRead(1, 1, kY, 2);      // forwarded
    ew.recordRead(1, 2, kX, kInitVal);
    Checker tso(makeTso());
    EXPECT_TRUE(tso.check(ew).ok());

    // Under SC all rf edges are global: the same witness is forbidden.
    ExecWitness ew2;
    ew2.recordWrite(0, 0, kX, 1, kInitVal);
    ew2.recordRead(0, 1, kX, 1);
    ew2.recordRead(0, 2, kY, kInitVal);
    ew2.recordWrite(1, 0, kY, 2, kInitVal);
    ew2.recordRead(1, 1, kY, 2);
    ew2.recordRead(1, 2, kX, kInitVal);
    Checker sc(makeSc());
    EXPECT_FALSE(sc.check(ew2).ok());
}

TEST(Checker, RmwAtomicityViolation)
{
    // A foreign write slips between the RMW's read and write.
    ExecWitness ew;
    ew.recordRead(0, 0, kX, kInitVal, true);
    ew.recordWrite(1, 0, kX, 7, kInitVal);  // intervening write
    ew.recordWrite(0, 0, kX, 9, 7, true);   // rmw write overwrote 7
    Checker tso(makeTso());
    const CheckResult res = tso.check(ew);
    EXPECT_FALSE(res.ok());
    EXPECT_EQ(res.kind, CheckResult::Kind::AtomicityViolation);
}

TEST(Checker, RmwAtomicityOk)
{
    ExecWitness ew;
    ew.recordRead(0, 0, kX, kInitVal, true);
    ew.recordWrite(0, 0, kX, 9, kInitVal, true);
    ew.recordWrite(1, 0, kX, 7, 9);
    Checker tso(makeTso());
    EXPECT_TRUE(tso.check(ew).ok());
}

TEST(Checker, WitnessAnomalyReported)
{
    ExecWitness ew;
    ew.recordRead(0, 0, kX, 12345); // never written
    Checker tso(makeTso());
    const CheckResult res = tso.check(ew);
    EXPECT_FALSE(res.ok());
    EXPECT_EQ(res.kind, CheckResult::Kind::WitnessAnomaly);
}

TEST(Checker, CoViolationWriteWriteReordering)
{
    // P0 writes x then y; P1 observes y's write but an x older than
    // P0's x write, via fr: forbidden W->W reordering evidence.
    ExecWitness ew;
    ew.recordWrite(0, 0, kX, 1, kInitVal);
    ew.recordWrite(0, 1, kY, 2, kInitVal);
    // P1: r(y)=2 then write x=3 overwriting init (so P0's x=1 must
    // come after, i.e. x=1 overwrote 3)? Build instead the 2+2W shape:
    // P0: x=1; y=2.  P1: y=4; x=5. with co x: 5 -> 1, co y: 2 -> 4.
    ExecWitness w2;
    w2.recordWrite(0, 0, kX, 1, 5);
    w2.recordWrite(0, 1, kY, 2, kInitVal);
    w2.recordWrite(1, 0, kY, 4, 2);
    w2.recordWrite(1, 1, kX, 5, kInitVal);
    Checker tso(makeTso());
    const CheckResult res = tso.check(w2);
    EXPECT_FALSE(res.ok());
    EXPECT_EQ(res.kind, CheckResult::Kind::GhbViolation);
}

TEST(Checker, KindNames)
{
    EXPECT_STREQ(CheckResult::kindName(CheckResult::Kind::Ok), "ok");
    EXPECT_STREQ(
        CheckResult::kindName(CheckResult::Kind::GhbViolation), "ghb");
}

TEST(Checker, NeverMaterializesFr)
{
    // The flattened checker derives immediate fr once per check and
    // streams it from the dense arrays; the Relation-materializing
    // witness helpers (used by tests and tools) must not be called at
    // all -- the pre-flattening checker called computeFrImmediate()
    // twice per check (uniproc + ghb).
    ExecWitness ew;
    ew.recordWrite(0, 0, kX, 1, kInitVal);
    ew.recordWrite(0, 1, kX, 2, 1);
    ew.recordRead(1, 0, kX, 1);
    ew.recordRead(1, 1, kY, kInitVal);
    Checker tso(makeTso());
    EXPECT_TRUE(tso.check(ew).ok());
    EXPECT_EQ(ew.frMaterializations(), 0);

    // The helpers themselves do count (sanity of the counter).
    (void)ew.computeFrImmediate();
    (void)ew.computeFr();
    EXPECT_EQ(ew.frMaterializations(), 2);

    // Checking again (finalize is idempotent) still materializes none.
    EXPECT_TRUE(tso.check(ew).ok());
    EXPECT_EQ(ew.frMaterializations(), 2);
}

TEST(Checker, DegenerateZeroEventWitnessOkUnderEveryModel)
{
    // A test-run that commits nothing at all (e.g. an all-NOP body)
    // must check clean under every registered model, repeatedly, on a
    // reused checker.
    for (const std::string &name : modelNames()) {
        Checker checker(makeModel(name));
        ExecWitness ew;
        EXPECT_TRUE(checker.check(ew).ok()) << name;
        ew.reset();
        EXPECT_TRUE(checker.check(ew).ok()) << name;
    }
}

TEST(Checker, DegenerateSingleThreadWitnessOkUnderEveryModel)
{
    // One thread alone can never violate a multi-copy-atomic model as
    // long as its reads observe the latest same-thread store; include
    // an RMW so the fence machinery runs with no cross-thread edges.
    for (const std::string &name : modelNames()) {
        Checker checker(makeModel(name));
        ExecWitness ew;
        ew.recordWrite(0, 0, kX, 1, kInitVal);
        ew.recordRead(0, 1, kX, 1);
        ew.recordRead(0, 2, kX, 1, /*rmw=*/true);
        ew.recordWrite(0, 2, kX, 2, 1, /*rmw=*/true);
        ew.recordRead(0, 3, kY, kInitVal);
        ew.recordWrite(0, 4, kY, 3, kInitVal);
        ew.recordRead(0, 5, kY, 3);
        EXPECT_TRUE(checker.check(ew).ok()) << name;
    }
}

TEST(Checker, DegenerateAllInitReadsWitnessOkUnderEveryModel)
{
    // A witness with no writes at all: every read observes the initial
    // value, so rf is entirely init-sourced, co is empty, and no fr
    // edge can exist.
    for (const std::string &name : modelNames()) {
        Checker checker(makeModel(name));
        ExecWitness ew;
        for (Pid pid = 0; pid < 3; ++pid) {
            for (std::int32_t poi = 0; poi < 4; ++poi) {
                ew.recordRead(pid, poi, poi % 2 == 0 ? kX : kY,
                              kInitVal);
            }
        }
        EXPECT_TRUE(checker.check(ew).ok()) << name;
    }
}

TEST(Checker, ScratchReuseAcrossChecksIsClean)
{
    // One checker instance must give independent verdicts across
    // witnesses of different shapes and sizes (its scratch graphs and
    // fr buffer are reused in between).
    Checker tso(makeTso());

    ExecWitness bad;
    buildMpViolation(bad);
    EXPECT_EQ(tso.check(bad).kind, CheckResult::Kind::GhbViolation);

    ExecWitness good;
    good.recordWrite(0, 0, kX, 1, kInitVal);
    good.recordRead(1, 0, kX, 1);
    EXPECT_TRUE(tso.check(good).ok());

    ExecWitness bigger;
    buildMpViolation(bigger);
    bigger.recordRead(2, 0, kY, 2);
    bigger.recordRead(2, 1, kX, 1);
    EXPECT_EQ(tso.check(bigger).kind, CheckResult::Kind::GhbViolation);

    ExecWitness empty;
    EXPECT_TRUE(tso.check(empty).ok());
}
