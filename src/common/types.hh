/**
 * @file
 * Fundamental scalar types shared across all McVerSi subsystems.
 */

#ifndef MCVERSI_COMMON_TYPES_HH
#define MCVERSI_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace mcversi {

/** Simulated time, in core clock cycles of the simulated system. */
using Tick = std::uint64_t;

/** Physical byte address in the simulated machine. */
using Addr = std::uint64_t;

/** Processor / hardware thread identifier. */
using Pid = std::int32_t;

/**
 * A value written by a store. Write values are globally unique within a
 * simulation (see §4.1 of the paper: "each write event is assigned a
 * unique ID -- the value to be written"), with 0 reserved for the initial
 * contents of memory.
 */
using WriteVal = std::uint64_t;

/** The initial contents of all memory locations. */
inline constexpr WriteVal kInitVal = 0;

/** Pid used for events not issued by any core (initial writes). */
inline constexpr Pid kInitPid = -1;

/** An invalid / not-present address marker. */
inline constexpr Addr kNoAddr = std::numeric_limits<Addr>::max();

/** Cache line size of the simulated system (Table 2: 64B lines). */
inline constexpr Addr kLineBytes = 64;

/** Size of every data access issued by generated tests, in bytes. */
inline constexpr Addr kWordBytes = 8;

/** Return the line-aligned base address of @p a. */
constexpr Addr
lineAddr(Addr a)
{
    return a & ~(kLineBytes - 1);
}

/** Return the index of the word containing @p a within its line. */
constexpr unsigned
wordInLine(Addr a)
{
    return static_cast<unsigned>((a % kLineBytes) / kWordBytes);
}

} // namespace mcversi

#endif // MCVERSI_COMMON_TYPES_HH
