/**
 * @file
 * A small set of addresses stored as a sorted flat vector.
 *
 * Used wherever the GA carries address sets (fitaddrs, PBFA unions):
 * unlike a hash set, iteration order -- which feeds directed-mutation
 * address picks -- is deterministic and identical across platforms and
 * standard libraries, and membership tests are allocation- and
 * hash-free.
 */

#ifndef MCVERSI_COMMON_ADDRSET_HH
#define MCVERSI_COMMON_ADDRSET_HH

#include <algorithm>
#include <cstddef>
#include <initializer_list>
#include <iterator>
#include <vector>

#include "common/types.hh"

namespace mcversi {

/** Sorted flat set of addresses. */
class AddrSet
{
  public:
    AddrSet() = default;

    AddrSet(std::initializer_list<Addr> addrs)
    {
        for (const Addr a : addrs)
            insert(a);
    }

    /** Insert @p a; returns true if it was new. */
    bool
    insert(Addr a)
    {
        const auto pos = std::lower_bound(addrs_.begin(), addrs_.end(), a);
        if (pos != addrs_.end() && *pos == a)
            return false;
        addrs_.insert(pos, a);
        return true;
    }

    /** Union @p other into this set (linear merge of sorted vectors). */
    void
    insert(const AddrSet &other)
    {
        std::vector<Addr> merged;
        merged.reserve(addrs_.size() + other.addrs_.size());
        std::set_union(addrs_.begin(), addrs_.end(),
                       other.addrs_.begin(), other.addrs_.end(),
                       std::back_inserter(merged));
        addrs_ = std::move(merged);
    }

    bool
    contains(Addr a) const
    {
        return std::binary_search(addrs_.begin(), addrs_.end(), a);
    }

    /** unordered_set-style membership count (0 or 1). */
    std::size_t count(Addr a) const { return contains(a) ? 1 : 0; }

    std::size_t size() const { return addrs_.size(); }
    bool empty() const { return addrs_.empty(); }
    void clear() { addrs_.clear(); }

    /** @p i-th smallest address (for uniform deterministic picks). */
    Addr operator[](std::size_t i) const { return addrs_[i]; }

    auto begin() const { return addrs_.begin(); }
    auto end() const { return addrs_.end(); }

    friend bool operator==(const AddrSet &, const AddrSet &) = default;

  private:
    std::vector<Addr> addrs_;
};

} // namespace mcversi

#endif // MCVERSI_COMMON_ADDRSET_HH
