/**
 * @file
 * Bounded-window streaming tests: windowed-vs-unbounded verdict
 * differentials (clean and in-window-violation streams), the
 * retirement-safety boundary (violating edge just inside vs. just
 * outside the window), O(window) live-node bounds on long traces, and
 * mid-stream compaction.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "memconsistency/checker.hh"
#include "memconsistency/models/registry.hh"
#include "memconsistency/streaming_checker.hh"

using namespace mcversi;

namespace {

/** One recordRead()/recordWrite() call, replayable into any witness. */
struct Rec
{
    bool write;
    Pid pid;
    std::int32_t poi;
    Addr addr;
    WriteVal value;       // Read value / written value.
    WriteVal overwritten; // Writes only.
};

/**
 * Random interleaved trace over a simulated memory; with @p corrupt, a
 * fraction of reads observe stale produced values (coherence
 * violations that both checkers must agree on).
 */
std::vector<Rec>
randomTrace(Rng &rng, int threads, int ops, int addrs, bool corrupt)
{
    std::vector<Rec> trace;
    std::vector<WriteVal> memory(static_cast<std::size_t>(addrs),
                                 kInitVal);
    std::vector<std::int32_t> poi(static_cast<std::size_t>(threads), 0);
    std::vector<WriteVal> produced{kInitVal};
    WriteVal next = 1;
    for (int i = 0; i < ops; ++i) {
        const Pid pid = static_cast<Pid>(
            rng.below(static_cast<std::uint64_t>(threads)));
        const auto ai = static_cast<std::size_t>(
            rng.below(static_cast<std::uint64_t>(addrs)));
        const Addr addr = 0x100 + 64 * static_cast<Addr>(ai);
        const std::int32_t p = poi[static_cast<std::size_t>(pid)]++;
        if (rng.uniform() < 0.5) {
            WriteVal v = memory[ai];
            if (corrupt && rng.boolWithProb(0.15)) {
                v = produced[static_cast<std::size_t>(
                    rng.below(produced.size()))];
            }
            trace.push_back({false, pid, p, addr, v, kInitVal});
        } else {
            const WriteVal v = next++;
            trace.push_back({true, pid, p, addr, v, memory[ai]});
            memory[ai] = v;
            produced.push_back(v);
        }
    }
    return trace;
}

/**
 * Deterministic clean trace with bounded reuse distance: threads take
 * turns, addresses cycle round-robin, every read observes a write at
 * most 2 * addrs events old. A window comfortably above that distance
 * therefore never truncates anything.
 */
std::vector<Rec>
cyclicTrace(int threads, int ops, int addrs)
{
    std::vector<Rec> trace;
    trace.reserve(static_cast<std::size_t>(ops));
    std::vector<WriteVal> memory(static_cast<std::size_t>(addrs),
                                 kInitVal);
    std::vector<std::int32_t> poi(static_cast<std::size_t>(threads), 0);
    WriteVal next = 1;
    for (int i = 0; i < ops; ++i) {
        const Pid pid = static_cast<Pid>(i % threads);
        // Write/read pairs cycle the address space together, so every
        // address keeps being overwritten (a value that is never
        // overwritten has no fr edge to wait for, but also pins its
        // readers live -- real soak traffic keeps overwriting).
        const auto ai = static_cast<std::size_t>((i / 2) % addrs);
        const Addr addr = 0x100 + 64 * static_cast<Addr>(ai);
        const std::int32_t p = poi[static_cast<std::size_t>(pid)]++;
        if (i % 2 == 0) {
            const WriteVal v = next++;
            trace.push_back({true, pid, p, addr, v, memory[ai]});
            memory[ai] = v;
        } else {
            trace.push_back({false, pid, p, addr, memory[ai], kInitVal});
        }
    }
    return trace;
}

/** Record @p trace into @p ew, streaming each event through @p sc. */
void
recordTrace(const std::vector<Rec> &trace, mc::ExecWitness &ew,
            mc::StreamingChecker &sc, std::size_t window)
{
    ew.reset();
    ew.setWindow(window);
    sc.setWindow(window);
    ew.setEventSink(&sc);
    sc.begin();
    for (const Rec &r : trace) {
        if (r.write)
            ew.recordWrite(r.pid, r.poi, r.addr, r.value, r.overwritten);
        else
            ew.recordRead(r.pid, r.poi, r.addr, r.value);
    }
    ew.setEventSink(nullptr);
}

/**
 * Check @p trace with window @p window and require the verdict
 * byte-identical to the unbounded post-hoc verdict. Valid whenever the
 * ring retains the whole stream (window >= trace length).
 */
void
expectWindowedParity(const std::vector<Rec> &trace,
                     const std::string &model, std::size_t window,
                     const std::string &label)
{
    const mc::Checker checker(mc::makeModel(model));

    mc::ExecWitness full;
    mc::StreamingChecker fullSc(mc::modelProfile(model));
    recordTrace(trace, full, fullSc, 0);
    const mc::CheckResult want = checker.check(full);

    mc::ExecWitness ring;
    mc::StreamingChecker sc(mc::modelProfile(model));
    recordTrace(trace, ring, sc, window);
    ASSERT_EQ(ring.droppedEvents(), 0u) << label;
    const mc::CheckResult got = checker.checkStreamed(ring, sc);

    EXPECT_EQ(got.kind, want.kind) << label;
    EXPECT_EQ(got.message, want.message) << label;
    EXPECT_EQ(got.cycle, want.cycle) << label;
}

} // namespace

TEST(StreamingWindow, CleanStreamsMatchUnboundedAcrossModels)
{
    Rng rng(0x9a7e01);
    for (int iter = 0; iter < 12; ++iter) {
        const int threads = 2 + static_cast<int>(rng.below(3));
        const int ops = 40 + static_cast<int>(rng.below(160));
        const int addrs = 1 + static_cast<int>(rng.below(5));
        const auto trace = randomTrace(rng, threads, ops, addrs, false);
        for (const std::string &model : mc::modelNames()) {
            expectWindowedParity(
                trace, model, static_cast<std::size_t>(ops) + 64,
                model + " clean iter " + std::to_string(iter));
        }
    }
}

TEST(StreamingWindow, InWindowViolationsMatchUnboundedAcrossModels)
{
    Rng rng(0x9a7e02);
    int violations = 0;
    for (int iter = 0; iter < 30; ++iter) {
        const int threads = 2 + static_cast<int>(rng.below(3));
        const int ops = 30 + static_cast<int>(rng.below(100));
        const int addrs = 1 + static_cast<int>(rng.below(4));
        const auto trace = randomTrace(rng, threads, ops, addrs, true);
        for (const std::string &model : mc::modelNames()) {
            expectWindowedParity(
                trace, model, static_cast<std::size_t>(ops) + 64,
                model + " corrupt iter " + std::to_string(iter));
        }
        const mc::Checker checker(mc::makeModel("sc"));
        mc::ExecWitness ew;
        mc::StreamingChecker sc(mc::modelProfile("sc"));
        recordTrace(trace, ew, sc, 0);
        violations += checker.check(ew).ok() ? 0 : 1;
    }
    // The corruption scheme must actually produce violating streams,
    // or the parity above proves nothing.
    EXPECT_GT(violations, 15);
}

/**
 * Satellite: retirement safety at the window boundary. The same CoRR
 * shape (w x=1; w x=2; ... filler ...; r x=2; r x=1) either keeps the
 * violating writes live (window > filler: identical violation verdict)
 * or retires them (window < filler: no false verdict -- an explicit
 * window-truncated diagnostic instead of a silent pass).
 */
TEST(StreamingWindow, ViolatingEdgeJustInsideWindowKeepsVerdict)
{
    const int filler = 300;
    std::vector<Rec> trace;
    trace.push_back({true, 0, 0, 0x100, 1, kInitVal}); // w x=1
    trace.push_back({true, 0, 1, 0x100, 2, 1});        // w x=2
    const auto body = cyclicTrace(2, filler, 3);
    for (const Rec &r : body) {
        // Shift filler onto threads 1..2, disjoint addresses, and a
        // disjoint value range (init values stay init).
        const auto shift = [](WriteVal v) {
            return v == kInitVal ? kInitVal : v + 100;
        };
        trace.push_back({r.write, static_cast<Pid>(r.pid + 1), r.poi,
                         r.addr + 0x1000, shift(r.value),
                         shift(r.overwritten)});
    }
    trace.push_back({false, 0, 2, 0x100, 2, kInitVal}); // r x=2
    trace.push_back({false, 0, 3, 0x100, 1, kInitVal}); // r x=1 (stale)

    // Whole stream in the ring: verdict byte-identical to unbounded.
    for (const std::string &model : mc::modelNames())
        expectWindowedParity(trace, model, trace.size() + 64, model);
}

TEST(StreamingWindow, ViolatingEdgeOutsideWindowReportsTruncation)
{
    const int filler = 2000;
    std::vector<Rec> trace;
    trace.push_back({true, 0, 0, 0x100, 1, kInitVal}); // w x=1
    trace.push_back({true, 0, 1, 0x100, 2, 1});        // w x=2
    const auto body = cyclicTrace(2, filler, 3);
    for (const Rec &r : body) {
        const auto shift = [](WriteVal v) {
            return v == kInitVal ? kInitVal : v + 100;
        };
        trace.push_back({r.write, static_cast<Pid>(r.pid + 1), r.poi,
                         r.addr + 0x1000, shift(r.value),
                         shift(r.overwritten)});
    }
    trace.push_back({false, 0, 2, 0x100, 2, kInitVal}); // r x=2
    trace.push_back({false, 0, 3, 0x100, 1, kInitVal}); // r x=1 (stale)

    const std::size_t window = 128;
    const mc::Checker checker(mc::makeModel("sc"));
    mc::ExecWitness ew;
    mc::StreamingChecker sc(mc::modelProfile("sc"));
    recordTrace(trace, ew, sc, window);

    // The violating writes retired long before the stale reads arrive:
    // no (unprovable) violation, but the stream must not pass as clean
    // either -- the reads of evicted values keep it incomplete and the
    // verdict carries an explicit truncation diagnostic.
    EXPECT_FALSE(sc.violationDetected());
    EXPECT_FALSE(sc.streamComplete());
    EXPECT_GT(ew.droppedEvents(), 0u);

    const mc::CheckResult res = checker.checkStreamed(ew, sc);
    EXPECT_EQ(res.kind, mc::CheckResult::Kind::Ok);
    EXPECT_NE(res.message.find("clean within retained window"),
              std::string::npos)
        << res.message;
    EXPECT_NE(res.message.find("truncated"), std::string::npos)
        << res.message;
}

TEST(StreamingWindow, ViolationAmongLiveEventsDetectedDespiteDrops)
{
    // Clean filler far beyond the window, then a CoRR violation whose
    // four events all sit in the last handful of records: the online
    // checker must still catch it, and the rendered verdict must carry
    // the truncation note (the ring cannot replay the whole stream).
    std::vector<Rec> trace = cyclicTrace(3, 2000, 4);
    trace.push_back({true, 0, 1000, 0x9100, 9001, kInitVal});
    trace.push_back({true, 0, 1001, 0x9100, 9002, 9001});
    trace.push_back({false, 1, 1000, 0x9100, 9002, kInitVal});
    trace.push_back({false, 1, 1001, 0x9100, 9001, kInitVal});

    const std::size_t window = 256;
    const mc::Checker checker(mc::makeModel("sc"));
    mc::ExecWitness ew;
    mc::StreamingChecker sc(mc::modelProfile("sc"));
    recordTrace(trace, ew, sc, window);

    EXPECT_TRUE(sc.violationDetected());
    EXPECT_GT(ew.droppedEvents(), 0u);

    const mc::CheckResult res = checker.checkStreamed(ew, sc);
    EXPECT_FALSE(res.ok());
    EXPECT_NE(res.message.find("[window truncated:"), std::string::npos)
        << res.message;
}

TEST(StreamingWindow, LiveNodesStayBoundedOnLongCleanStreams)
{
    const int ops = 20000;
    const std::size_t window = 256;
    const auto trace = cyclicTrace(4, ops, 6);

    mc::ExecWitness ew;
    mc::StreamingChecker sc(mc::modelProfile("tso"));
    recordTrace(trace, ew, sc, window);

    EXPECT_FALSE(sc.violationDetected());
    EXPECT_EQ(sc.eventsConsumed(), static_cast<std::uint64_t>(ops));
    // Retirement-free checking would peak at ~20k live nodes; the
    // window must cap it at O(window), independent of trace length.
    EXPECT_LE(sc.liveNodeHighWater(), window + window / 2 + 64)
        << "live-node high water is O(trace), not O(window)";
    // Bounded reuse distance + ample window: nothing was truncated, so
    // the clean verdict is unqualified.
    EXPECT_FALSE(sc.windowTruncated());
    EXPECT_TRUE(sc.streamComplete());

    const mc::Checker checker(mc::makeModel("tso"));
    const mc::CheckResult res = checker.checkStreamed(ew, sc);
    EXPECT_TRUE(res.ok()) << res.message;
    EXPECT_TRUE(res.message.empty()) << res.message;
}

TEST(StreamingWindow, MidStreamCompactionPreservesVerdicts)
{
    // Clean stream with forced compaction every 500 events.
    {
        const auto trace = cyclicTrace(3, 5000, 4);
        mc::ExecWitness ew;
        mc::StreamingChecker sc(mc::modelProfile("sc"));
        ew.setWindow(128);
        sc.setWindow(128);
        ew.setEventSink(&sc);
        sc.begin();
        int i = 0;
        for (const Rec &r : trace) {
            if (r.write)
                ew.recordWrite(r.pid, r.poi, r.addr, r.value,
                               r.overwritten);
            else
                ew.recordRead(r.pid, r.poi, r.addr, r.value);
            if (++i % 500 == 0)
                sc.compactNow();
        }
        ew.setEventSink(nullptr);
        EXPECT_FALSE(sc.violationDetected());
        EXPECT_FALSE(sc.windowTruncated());
    }

    // Violation after many compactions: node-id remapping must not
    // lose or corrupt the live constraint graph.
    {
        std::vector<Rec> trace = cyclicTrace(3, 5000, 4);
        trace.push_back({true, 0, 1000, 0x9100, 9001, kInitVal});
        trace.push_back({true, 0, 1001, 0x9100, 9002, 9001});
        trace.push_back({false, 1, 1000, 0x9100, 9002, kInitVal});
        trace.push_back({false, 1, 1001, 0x9100, 9001, kInitVal});
        mc::ExecWitness ew;
        mc::StreamingChecker sc(mc::modelProfile("sc"));
        ew.setWindow(128);
        sc.setWindow(128);
        ew.setEventSink(&sc);
        sc.begin();
        int i = 0;
        for (const Rec &r : trace) {
            if (r.write)
                ew.recordWrite(r.pid, r.poi, r.addr, r.value,
                               r.overwritten);
            else
                ew.recordRead(r.pid, r.poi, r.addr, r.value);
            if (++i % 500 == 0)
                sc.compactNow();
        }
        ew.setEventSink(nullptr);
        EXPECT_TRUE(sc.violationDetected());
    }
}

TEST(StreamingWindow, CheckerReusableAcrossWindowedStreams)
{
    // One checker alternating windowed and unbounded streams: begin()
    // must fully reset retirement state, and setWindow() takes effect
    // per stream.
    mc::StreamingChecker sc(mc::modelProfile("sc"));
    const mc::Checker checker(mc::makeModel("sc"));
    const auto trace = cyclicTrace(3, 3000, 4);
    for (int round = 0; round < 3; ++round) {
        mc::ExecWitness ring;
        recordTrace(trace, ring, sc, 128);
        EXPECT_FALSE(sc.violationDetected());
        EXPECT_TRUE(checker.checkStreamed(ring, sc).ok());

        mc::ExecWitness full;
        recordTrace(trace, full, sc, 0);
        EXPECT_FALSE(sc.violationDetected());
        EXPECT_TRUE(checker.checkStreamed(full, sc).ok());
    }
}
