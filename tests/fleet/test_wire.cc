/**
 * @file
 * Wire codec: every field of a CampaignResult must cross the
 * journal/pipe BIT-EXACTLY, because the fleet's byte-identity
 * guarantee reduces to "the merged summary formats the identical
 * double, so it prints the identical text". Doubles travel as C99
 * hexfloats; strings percent-escape anything that would break the
 * space-separated token or one-record-per-line framing.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>

#include "campaign/spec.hh"
#include "fleet/wire.hh"

using namespace mcversi;
using namespace mcversi::fleet;

namespace {

/** Bit-level double equality (distinguishes -0.0, compares NaN). */
bool
sameBits(double a, double b)
{
    std::uint64_t ba = 0;
    std::uint64_t bb = 0;
    std::memcpy(&ba, &a, sizeof(a));
    std::memcpy(&bb, &b, sizeof(b));
    return ba == bb;
}

CellRecord
sampleRecord()
{
    CellRecord record;
    record.cell = 42;
    record.attempt = 3;
    record.spec = "bug=MESI,LQ+IS,Inv generator=McVerSi-ALL seed=7";
    record.result.error = "worker said: \"it = broken\"\ntwo lines";
    record.result.protocolCoverage = 0.6202531646;
    host::HarnessResult &h = record.result.harness;
    h.bugFound = true;
    h.detail = "cycle in hb: [R a=1] %% [W a=2]";
    h.testRuns = 1000;
    h.testRunsToBug = 617;
    h.wallSeconds = 12.75;
    h.wallSecondsToBug = 7.03125;
    h.checkSeconds = 1.0 / 3.0;
    h.simTicks = 123456789;
    h.eventsExecuted = 424242;
    h.simEvents = 999;
    h.messagesSent = 31337;
    h.totalCoverage = 0.1 + 0.2; // deliberately not representable
    h.checkCacheHits = 17;
    h.checkCacheMisses = 4096;
    h.distinctInterleavings = 57;
    h.meanFitness = 0.730000000000000093;
    h.fitnessTrajectory = {0.1, 0.25, 1.0 / 7.0};
    h.ndtHistory = {0.0, -0.0, 2.2250738585072014e-308};
    return record;
}

} // namespace

TEST(WireTokens, EscapeRoundTripsEveryByte)
{
    std::string all;
    for (int c = 0; c < 256; ++c)
        all += static_cast<char>(c);
    const std::string escaped = escapeToken(all);
    // Framing bytes never appear escaped output.
    EXPECT_EQ(escaped.find(' '), std::string::npos);
    EXPECT_EQ(escaped.find('\n'), std::string::npos);
    EXPECT_EQ(escaped.find('='), std::string::npos);
    EXPECT_EQ(unescapeToken(escaped), all);
}

TEST(WireDoubles, HexfloatRoundTripIsBitExact)
{
    const double cases[] = {
        0.0,
        -0.0,
        1.0,
        0.1 + 0.2,
        1.0 / 3.0,
        6.02214076e23,
        -2.2250738585072014e-308, // smallest normal, negated
        4.9406564584124654e-324,  // smallest denormal
        std::numeric_limits<double>::max(),
        std::numeric_limits<double>::infinity(),
        -std::numeric_limits<double>::infinity(),
        std::numeric_limits<double>::quiet_NaN(),
    };
    for (const double v : cases) {
        const double back = decodeDouble(encodeDouble(v));
        if (std::isnan(v)) {
            EXPECT_TRUE(std::isnan(back)) << encodeDouble(v);
        } else {
            EXPECT_TRUE(sameBits(v, back))
                << encodeDouble(v) << " -> " << encodeDouble(back);
        }
    }
}

TEST(WireCell, FullRecordRoundTrips)
{
    const CellRecord record = sampleRecord();
    const std::string payload = encodeCell(record);
    // Journal framing invariant: a payload is a single line.
    EXPECT_EQ(payload.find('\n'), std::string::npos);

    CellRecord back;
    std::string err;
    ASSERT_TRUE(decodeCell(payload, back, &err)) << err;
    EXPECT_EQ(back.cell, record.cell);
    EXPECT_EQ(back.attempt, record.attempt);
    EXPECT_EQ(back.spec, record.spec);
    EXPECT_EQ(back.result.error, record.result.error);
    EXPECT_TRUE(sameBits(back.result.protocolCoverage,
                         record.result.protocolCoverage));

    const host::HarnessResult &a = record.result.harness;
    const host::HarnessResult &b = back.result.harness;
    EXPECT_EQ(b.bugFound, a.bugFound);
    EXPECT_EQ(b.detail, a.detail);
    EXPECT_EQ(b.testRuns, a.testRuns);
    EXPECT_EQ(b.testRunsToBug, a.testRunsToBug);
    EXPECT_TRUE(sameBits(b.wallSeconds, a.wallSeconds));
    EXPECT_TRUE(sameBits(b.wallSecondsToBug, a.wallSecondsToBug));
    EXPECT_TRUE(sameBits(b.checkSeconds, a.checkSeconds));
    EXPECT_EQ(b.simTicks, a.simTicks);
    EXPECT_EQ(b.eventsExecuted, a.eventsExecuted);
    EXPECT_EQ(b.simEvents, a.simEvents);
    EXPECT_EQ(b.messagesSent, a.messagesSent);
    EXPECT_TRUE(sameBits(b.totalCoverage, a.totalCoverage));
    EXPECT_EQ(b.checkCacheHits, a.checkCacheHits);
    EXPECT_EQ(b.checkCacheMisses, a.checkCacheMisses);
    EXPECT_EQ(b.distinctInterleavings, a.distinctInterleavings);
    EXPECT_TRUE(sameBits(b.meanFitness, a.meanFitness));
    ASSERT_EQ(b.fitnessTrajectory.size(), a.fitnessTrajectory.size());
    for (std::size_t i = 0; i < a.fitnessTrajectory.size(); ++i)
        EXPECT_TRUE(
            sameBits(b.fitnessTrajectory[i], a.fitnessTrajectory[i]));
    ASSERT_EQ(b.ndtHistory.size(), a.ndtHistory.size());
    for (std::size_t i = 0; i < a.ndtHistory.size(); ++i)
        EXPECT_TRUE(sameBits(b.ndtHistory[i], a.ndtHistory[i]));
}

TEST(WireCell, UnknownKeysAreIgnoredMissingRequiredKeysFail)
{
    CellRecord back;
    // Forward compatibility: a newer writer may add fields.
    EXPECT_TRUE(
        decodeCell("cell=1 spec=x future-key=whatever bug=1", back));
    EXPECT_EQ(back.cell, 1u);
    EXPECT_TRUE(back.result.harness.bugFound);
    // attempt defaults to 1 when absent.
    EXPECT_EQ(back.attempt, 1u);

    std::string err;
    EXPECT_FALSE(decodeCell("spec=x bug=1", back, &err));
    EXPECT_FALSE(err.empty());
    EXPECT_FALSE(decodeCell("cell=1 bug=1", back, &err));
    EXPECT_FALSE(decodeCell("cell=1 spec=x =broken", back, &err));
}

TEST(WireMeta, RoundTripsAndRejectsNonMeta)
{
    MetaRecord meta;
    meta.cells = 12;
    meta.fingerprint = 0xDEADBEEFCAFEF00Dull;
    MetaRecord back;
    ASSERT_TRUE(decodeMeta(encodeMeta(meta), back));
    EXPECT_EQ(back.cells, meta.cells);
    EXPECT_EQ(back.fingerprint, meta.fingerprint);

    EXPECT_FALSE(decodeMeta("cell=1 spec=x", back));
    EXPECT_FALSE(decodeMeta("meta=mcvj99 cells=1 matrix=0", back));
}

TEST(WireMeta, FingerprintTracksMatrixIdentity)
{
    campaign::CampaignMatrix matrix;
    matrix.base.testSize = 64;
    matrix.bugs = {"none", "SQ+no-FIFO"};
    matrix.seeds = {1, 2};
    const auto specs = matrix.expand();
    const std::uint64_t fp = matrixFingerprint(specs);
    EXPECT_EQ(matrixFingerprint(specs), fp); // stable

    // Any change to any cell -- or to the order -- changes it.
    auto reordered = specs;
    std::swap(reordered.front(), reordered.back());
    EXPECT_NE(matrixFingerprint(reordered), fp);

    auto edited = specs;
    edited[0].seed = 3;
    EXPECT_NE(matrixFingerprint(edited), fp);

    auto shorter = specs;
    shorter.pop_back();
    EXPECT_NE(matrixFingerprint(shorter), fp);
}
