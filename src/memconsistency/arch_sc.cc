/**
 * @file
 * Sequential Consistency: every program-order pair is preserved, so the
 * consecutive-event chain generates the full (transitive) po.
 */

#include "memconsistency/arch.hh"

namespace mcversi::mc {
namespace {

class Sc : public Architecture
{
  public:
    std::string name() const override { return "SC"; }

    void
    addProgramOrderEdges(const ExecWitness &ew,
                         const std::vector<EventId> &thread,
                         CycleGraph &g) const override
    {
        (void)ew;
        for (std::size_t i = 1; i < thread.size(); ++i)
            g.addEdge(thread[i - 1], thread[i]);
    }

    bool ghbIncludesRfi() const override { return true; }
};

} // namespace

std::unique_ptr<Architecture>
makeSc()
{
    return std::make_unique<Sc>();
}

} // namespace mcversi::mc
