/**
 * @file
 * Shared ppo/fence constraint engine over declarative model profiles.
 *
 * One Architecture implementation interprets any valid ModelProfile.
 * The engine generalizes the chain construction the hand-written TSO
 * model used: each preserved order is realized by O(events) generator
 * edges whose transitive closure equals the model's full ppo/fence
 * relation. Per access-type pair:
 *
 *  - chained same-type orders (R->R, W->W) use last-event chain edges;
 *  - a cross-type order whose *destination* type also chains uses a
 *    one-shot edge to the next destination event (later ones follow
 *    through the destination chain);
 *  - a cross-type order whose destination type does not chain uses a
 *    persistent last-source edge at every destination event (earlier
 *    sources follow through the source chain);
 *  - Full RMW fences insert virtual nodes before the read part and
 *    after the write part, collecting everything po-before (chain tail
 *    or, for chainless classes, the events seen since the previous
 *    fence) and reaching everything po-after (chain hook-in or a
 *    persistent downstream edge);
 *  - AcquireRelease RMWs order the read part before all later events
 *    and all earlier events before the write part, with no crossing
 *    edge -- strictly weaker than a full fence.
 */

#ifndef MCVERSI_MEMCONSISTENCY_MODELS_ENGINE_HH
#define MCVERSI_MEMCONSISTENCY_MODELS_ENGINE_HH

#include "memconsistency/arch.hh"
#include "memconsistency/models/profile.hh"

namespace mcversi::mc {

/** Architecture defined by interpreting a ModelProfile. */
class ProfileModel final : public Architecture
{
  public:
    /** Validates the profile (throws std::invalid_argument). */
    explicit ProfileModel(ModelProfile profile);

    std::string name() const override { return profile_.name; }

    void addProgramOrderEdges(const ExecWitness &ew,
                              const std::vector<EventId> &thread,
                              CycleGraph &g) const override;

    bool ghbIncludesRfi() const override { return profile_.rfiGlobal; }

    const ModelProfile &profile() const { return profile_; }

  private:
    ModelProfile profile_;

    // Edge-strategy flags derived once from the profile.
    bool chainRR_;    ///< last_read -> read chain
    bool chainWW_;    ///< last_write -> write chain
    bool oneshotRW_;  ///< read joins the next-write one-shot list
    bool persistRW_;  ///< last_read -> every write
    bool oneshotWR_;  ///< write joins the next-read one-shot list
    bool persistWR_;  ///< last_write -> every read
    bool trackReads_; ///< reads accumulate for fence/release flushes
    bool trackWrites_;
    /** Explicit read->write edge inside an RMW pair (chainless Full). */
    bool pairEdge_;
};

} // namespace mcversi::mc

#endif // MCVERSI_MEMCONSISTENCY_MODELS_ENGINE_HH
