/**
 * @file
 * Memory events in the style of the "herding cats" axiomatic framework
 * (Alglave, Maranget, Tautschnig; TOPLAS 2014), which the paper bases its
 * checker on (§4.1).
 *
 * An event is a dynamic memory operation (read or write) associated with
 * a concrete instruction of a concrete thread. Most instructions map to
 * one event; read-modify-write instructions map to two (a read and a
 * write that form an atomic pair).
 */

#ifndef MCVERSI_MEMCONSISTENCY_EVENT_HH
#define MCVERSI_MEMCONSISTENCY_EVENT_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace mcversi::mc {

/** Dense identifier of an event within one ExecWitness. */
using EventId = std::int32_t;

inline constexpr EventId kNoEvent = -1;

/** Kind of a memory event. */
enum class EventType : std::uint8_t {
    Read,
    Write,
};

/**
 * Instruction identifier: thread id plus program-order index, following
 * the iiid ("instruction instance id") of the herding cats framework.
 *
 * For RMW instructions, the read and write event share the same poi and
 * are distinguished by Event::sub.
 */
struct Iiid
{
    Pid pid = kInitPid;
    /** Program-order index of the instruction within its thread. */
    std::int32_t poi = -1;

    friend bool operator==(const Iiid &, const Iiid &) = default;
    friend auto operator<=>(const Iiid &, const Iiid &) = default;
};

/**
 * A single memory event.
 *
 * Initial writes (the value a location holds before any store) are
 * modelled as events with pid == kInitPid; they are ordered co-before
 * every other write to the same address and carry value kInitVal.
 */
struct Event
{
    Iiid iiid{};
    EventType type = EventType::Read;
    Addr addr = kNoAddr;
    /** Value read (for reads) or written (for writes). */
    WriteVal value = kInitVal;
    /** Sub-index within an instruction: 0 = read part, 1 = write part. */
    std::uint8_t sub = 0;
    /** True if this event belongs to an atomic read-modify-write pair. */
    bool rmw = false;

    bool isRead() const { return type == EventType::Read; }
    bool isWrite() const { return type == EventType::Write; }
    bool isInit() const { return iiid.pid == kInitPid; }

    /** Human-readable rendering, e.g. "P2:14 W a=0x40 v=17". */
    std::string toString() const;
};

} // namespace mcversi::mc

#endif // MCVERSI_MEMCONSISTENCY_EVENT_HH
