/**
 * @file
 * Unit tests for the consistency-model zoo: profile validation, the
 * registry, structural strictness, and the shared engine's per-model
 * ordering behavior on the four classic relaxation shapes (SB, MP, LB,
 * fenced SB) plus release/acquire message passing -- each checked as a
 * hand-built witness through a full Checker, one model at a time.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "memconsistency/checker.hh"
#include "memconsistency/models/engine.hh"
#include "memconsistency/models/registry.hh"

using namespace mcversi;
using namespace mcversi::mc;

namespace {

constexpr Addr kX = 0x100;
constexpr Addr kY = 0x140;
constexpr Addr kS0 = 0x180;
constexpr Addr kS1 = 0x1c0;

CheckResult::Kind
verdict(const std::string &model, ExecWitness ew)
{
    const Checker checker(makeModel(model));
    return checker.check(ew).kind;
}

/** Store buffering: both threads write then read the other variable,
 * both reads see init. Needs W->R order to forbid. */
ExecWitness
storeBufferingWitness()
{
    ExecWitness ew;
    ew.recordWrite(0, 0, kX, 1, kInitVal);
    ew.recordRead(0, 1, kY, kInitVal);
    ew.recordWrite(1, 0, kY, 2, kInitVal);
    ew.recordRead(1, 1, kX, kInitVal);
    return ew;
}

/** Message passing: t1 sees the flag but stale data. Needs W->W (t0)
 * and R->R (t1) to forbid. */
ExecWitness
messagePassingWitness()
{
    ExecWitness ew;
    ew.recordWrite(0, 0, kX, 1, kInitVal);
    ew.recordWrite(0, 1, kY, 2, kInitVal);
    ew.recordRead(1, 0, kY, 2);
    ew.recordRead(1, 1, kX, kInitVal);
    return ew;
}

/** Load buffering: each read sees the other thread's po-later write.
 * Needs R->W order to forbid. */
ExecWitness
loadBufferingWitness()
{
    ExecWitness ew;
    ew.recordRead(0, 0, kY, 2);
    ew.recordWrite(0, 1, kX, 1, kInitVal);
    ew.recordRead(1, 0, kX, 1);
    ew.recordWrite(1, 1, kY, 2, kInitVal);
    return ew;
}

/** Store buffering with a full-fence RMW to a private scratch variable
 * between each thread's write and read. */
ExecWitness
fencedStoreBufferingWitness()
{
    ExecWitness ew;
    ew.recordWrite(0, 0, kX, 1, kInitVal);
    ew.recordRead(0, 1, kS0, kInitVal, /*rmw=*/true);
    ew.recordWrite(0, 1, kS0, 10, kInitVal, /*rmw=*/true);
    ew.recordRead(0, 2, kY, kInitVal);
    ew.recordWrite(1, 0, kY, 2, kInitVal);
    ew.recordRead(1, 1, kS1, kInitVal, /*rmw=*/true);
    ew.recordWrite(1, 1, kS1, 11, kInitVal, /*rmw=*/true);
    ew.recordRead(1, 2, kX, kInitVal);
    return ew;
}

/** Message passing through a release/acquire RMW pair on s: t1's RMW
 * reads t0's RMW write, yet t1's read of x sees init. */
ExecWitness
relAcqMessagePassingWitness()
{
    ExecWitness ew;
    ew.recordWrite(0, 0, kX, 1, kInitVal);
    ew.recordRead(0, 1, kS0, kInitVal, /*rmw=*/true);
    ew.recordWrite(0, 1, kS0, 5, kInitVal, /*rmw=*/true);
    ew.recordRead(1, 0, kS0, 5, /*rmw=*/true);
    ew.recordWrite(1, 0, kS0, 6, 5, /*rmw=*/true);
    ew.recordRead(1, 1, kX, kInitVal);
    return ew;
}

} // namespace

TEST(ModelRegistry, NamesAndLookup)
{
    EXPECT_EQ(modelNames(),
              (std::vector<std::string>{"sc", "tso", "pso", "rmo",
                                        "rc"}));
    EXPECT_EQ(modelNamesJoined(), "sc, tso, pso, rmo, rc");
    for (const std::string &name : modelNames())
        EXPECT_TRUE(hasModel(name)) << name;
    // Lookup is case-insensitive; display names resolve too.
    EXPECT_TRUE(hasModel("TSO"));
    EXPECT_TRUE(hasModel("Sc"));
    EXPECT_FALSE(hasModel("x86"));
    EXPECT_FALSE(hasModel(""));

    EXPECT_EQ(modelProfile("tso").name, "TSO");
    EXPECT_EQ(makeModel("RMO")->name(), "RMO");
    try {
        modelProfile("alpha");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        // The error names every registered model.
        EXPECT_NE(std::string(e.what()).find("sc, tso, pso, rmo, rc"),
                  std::string::npos)
            << e.what();
    }
    EXPECT_THROW(makeModel("alpha"), std::invalid_argument);
}

TEST(ModelRegistry, StoreAtomicityFlags)
{
    // SC is the only multi-copy-atomic profile: internal rf
    // participates in ghb.
    EXPECT_TRUE(makeModel("sc")->ghbIncludesRfi());
    for (const std::string &name : {"tso", "pso", "rmo", "rc"})
        EXPECT_FALSE(makeModel(name)->ghbIncludesRfi()) << name;
}

TEST(ModelProfileValidation, RejectsUninterpretableProfiles)
{
    ModelProfile p{.name = "bad"};

    // orderRW requires the read chain.
    p = {.name = "bad", .orderRW = true};
    EXPECT_THROW(p.validate(), std::invalid_argument);
    EXPECT_THROW(ProfileModel{p}, std::invalid_argument);

    // orderWR requires a chain on at least one side.
    p = {.name = "bad", .orderWR = true};
    EXPECT_THROW(p.validate(), std::invalid_argument);

    // AcquireRelease composes only with fence-free ppo profiles.
    p = {.name = "bad",
         .orderRR = true,
         .rmwFence = RmwSemantics::AcquireRelease};
    EXPECT_THROW(p.validate(), std::invalid_argument);

    // Profiles need a name.
    p = {.name = "", .orderRR = true};
    EXPECT_THROW(p.validate(), std::invalid_argument);

    // Every registered profile is valid by construction.
    for (const std::string &name : modelNames())
        EXPECT_NO_THROW(modelProfile(name).validate()) << name;
}

TEST(ModelProfileValidation, StrictnessLadderAndIncomparables)
{
    const ModelProfile &sc = modelProfile("sc");
    const ModelProfile &tso = modelProfile("tso");
    const ModelProfile &pso = modelProfile("pso");
    const ModelProfile &rmo = modelProfile("rmo");
    const ModelProfile &rc = modelProfile("rc");

    // SC's full ppo subsumes fence semantics even though its RMWs
    // carry no fence of their own (rmwFence = None).
    EXPECT_TRUE(sc.atLeastAsStrongAs(tso));
    EXPECT_TRUE(tso.atLeastAsStrongAs(pso));
    EXPECT_TRUE(pso.atLeastAsStrongAs(rmo));
    EXPECT_TRUE(rmo.atLeastAsStrongAs(rc));
    EXPECT_TRUE(sc.atLeastAsStrongAs(rc));

    EXPECT_FALSE(tso.atLeastAsStrongAs(sc));
    EXPECT_FALSE(pso.atLeastAsStrongAs(tso));
    EXPECT_FALSE(rmo.atLeastAsStrongAs(pso));
    EXPECT_FALSE(rc.atLeastAsStrongAs(rmo));

    // Reflexivity.
    for (const std::string &name : modelNames()) {
        EXPECT_TRUE(modelProfile(name).atLeastAsStrongAs(
            modelProfile(name)))
            << name;
    }

    // Incomparable ppo sets: neither dominates.
    const ModelProfile a{.name = "A", .orderRR = true};
    const ModelProfile b{.name = "B", .orderWW = true};
    EXPECT_FALSE(a.atLeastAsStrongAs(b));
    EXPECT_FALSE(b.atLeastAsStrongAs(a));
}

TEST(ModelEngine, StoreBufferingNeedsWriteReadOrder)
{
    EXPECT_EQ(verdict("sc", storeBufferingWitness()),
              CheckResult::Kind::GhbViolation);
    for (const std::string &name : {"tso", "pso", "rmo", "rc"}) {
        EXPECT_EQ(verdict(name, storeBufferingWitness()),
                  CheckResult::Kind::Ok)
            << name;
    }
}

TEST(ModelEngine, MessagePassingNeedsWriteWriteOrder)
{
    for (const std::string &name : {"sc", "tso"}) {
        EXPECT_EQ(verdict(name, messagePassingWitness()),
                  CheckResult::Kind::GhbViolation)
            << name;
    }
    for (const std::string &name : {"pso", "rmo", "rc"}) {
        EXPECT_EQ(verdict(name, messagePassingWitness()),
                  CheckResult::Kind::Ok)
            << name;
    }
}

TEST(ModelEngine, LoadBufferingNeedsReadWriteOrder)
{
    for (const std::string &name : {"sc", "tso", "pso"}) {
        EXPECT_EQ(verdict(name, loadBufferingWitness()),
                  CheckResult::Kind::GhbViolation)
            << name;
    }
    for (const std::string &name : {"rmo", "rc"}) {
        EXPECT_EQ(verdict(name, loadBufferingWitness()),
                  CheckResult::Kind::Ok)
            << name;
    }
}

TEST(ModelEngine, FullFencesBridgeWriteToRead)
{
    // With full-fence RMWs between each thread's write and read, SB's
    // relaxed outcome is forbidden everywhere except under
    // release/acquire semantics, which provide no W->R crossing edge.
    for (const std::string &name : {"sc", "tso", "pso", "rmo"}) {
        EXPECT_EQ(verdict(name, fencedStoreBufferingWitness()),
                  CheckResult::Kind::GhbViolation)
            << name;
    }
    EXPECT_EQ(verdict("rc", fencedStoreBufferingWitness()),
              CheckResult::Kind::Ok);
}

TEST(ModelEngine, ReleaseAcquireOrdersSynchronizedMessagePassing)
{
    // The release (write part after po-earlier events) and acquire
    // (read part before po-later events) halves chain through the rf
    // edge between the RMW pairs, so every registered model forbids
    // the stale read -- including RC, whose plain po preserves
    // nothing.
    for (const std::string &name : modelNames()) {
        EXPECT_EQ(verdict(name, relAcqMessagePassingWitness()),
                  CheckResult::Kind::GhbViolation)
            << name;
    }
}

TEST(ModelEngine, RmwSemanticsNames)
{
    EXPECT_STREQ(rmwSemanticsName(RmwSemantics::Full), "full-fence");
    EXPECT_STREQ(rmwSemanticsName(RmwSemantics::AcquireRelease),
                 "acquire-release");
    EXPECT_STREQ(rmwSemanticsName(RmwSemantics::None), "none");
}
