/**
 * @file
 * Shared witness synthesis for litmus-suite-driven checker tests.
 *
 * Builds, for any LitmusTest, (a) a witness realizing its forbidden
 * outcome (the condition atoms fully determine the interesting conflict
 * orders) and (b) the sequential one-thread-at-a-time execution, which
 * is SC and therefore permitted by every model. Used by the x86 golden
 * regression and the checker differential test.
 */

#ifndef MCVERSI_TESTS_LITMUS_WITNESS_SYNTHESIS_HH
#define MCVERSI_TESTS_LITMUS_WITNESS_SYNTHESIS_HH

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "litmus/litmus.hh"
#include "memconsistency/execwitness.hh"

namespace mcversi::litmus::testsupport {

/** (pid, slot) coordinate of one instruction of a litmus test. */
using Coord = std::pair<Pid, int>;

/**
 * Build a witness realizing the forbidden outcome of @p t.
 *
 * The condition atoms fully determine the interesting conflict orders:
 * ReadsFrom fixes rf, CoBefore fixes co directly, and ReadsBefore
 * constrains the read's rf source (another atom's write, or init) to be
 * co-before the named write. Writes left unconstrained keep scan order.
 */
inline mc::ExecWitness
forbiddenWitness(const LitmusTest &t)
{
    gp::ThreadSlots slots;
    t.test.threadSlots(t.numThreads, slots);
    auto nodeAt = [&](Pid p, int s) -> const gp::Node & {
        return t.test.node(slots.thread(p)[static_cast<std::size_t>(s)]);
    };

    // Writes per address, in (pid, slot) scan order.
    std::map<Addr, std::vector<Coord>> writesAt;
    for (Pid p = 0; p < t.numThreads; ++p) {
        const auto th = slots.thread(p);
        for (int s = 0; s < static_cast<int>(th.size()); ++s) {
            const gp::Op &op = nodeAt(p, s).op;
            if (op.kind == gp::OpKind::Write ||
                op.kind == gp::OpKind::ReadModifyWrite) {
                writesAt[op.addr].push_back({p, s});
            }
        }
    }

    // rf choices from ReadsFrom atoms (absent => the read sees init).
    std::map<Coord, Coord> rf;
    for (const CondAtom &a : t.forbidden)
        if (a.kind == CondAtom::Kind::ReadsFrom)
            rf[{a.pid, a.slot}] = {a.otherPid, a.otherSlot};

    // co ordering constraints per address.
    std::map<Addr, std::vector<std::pair<Coord, Coord>>> before;
    for (const CondAtom &a : t.forbidden) {
        if (a.kind == CondAtom::Kind::CoBefore) {
            const Addr addr = nodeAt(a.pid, a.slot).op.addr;
            before[addr].push_back(
                {{a.pid, a.slot}, {a.otherPid, a.otherSlot}});
        } else if (a.kind == CondAtom::Kind::ReadsBefore) {
            // Reads-before: rf(r) must be strictly co-before the named
            // write. If rf(r) is init, that holds by construction.
            const auto it = rf.find({a.pid, a.slot});
            if (it != rf.end()) {
                const Addr addr =
                    nodeAt(a.otherPid, a.otherSlot).op.addr;
                before[addr].push_back(
                    {it->second, {a.otherPid, a.otherSlot}});
            }
        }
    }

    // Stable topological order of each address's writes, then value
    // assignment along the co chain.
    std::map<Coord, WriteVal> valueOf;
    std::map<Coord, WriteVal> overwrittenOf;
    WriteVal next = 1;
    for (auto &[addr, ws] : writesAt) {
        const auto &cons = before[addr];
        std::vector<Coord> remaining = ws;
        WriteVal prev = kInitVal;
        while (!remaining.empty()) {
            auto pick = remaining.end();
            for (auto it = remaining.begin(); it != remaining.end();
                 ++it) {
                const bool blocked = std::any_of(
                    cons.begin(), cons.end(), [&](const auto &c) {
                        return c.second == *it && c.first != *it &&
                               std::find(remaining.begin(),
                                         remaining.end(),
                                         c.first) != remaining.end();
                    });
                if (!blocked) {
                    pick = it;
                    break;
                }
            }
            if (pick == remaining.end()) {
                ADD_FAILURE() << t.name
                              << ": cyclic co constraints on addr "
                              << addr;
                return mc::ExecWitness{};
            }
            valueOf[*pick] = next;
            overwrittenOf[*pick] = prev;
            prev = next++;
            remaining.erase(pick);
        }
    }

    // Emit events thread by thread in program order.
    mc::ExecWitness ew;
    for (Pid p = 0; p < t.numThreads; ++p) {
        const auto th = slots.thread(p);
        for (int s = 0; s < static_cast<int>(th.size()); ++s) {
            const gp::Op &op = nodeAt(p, s).op;
            const Coord here{p, s};
            switch (op.kind) {
              case gp::OpKind::Read:
              case gp::OpKind::ReadAddrDp: {
                const auto it = rf.find(here);
                const WriteVal v =
                    it == rf.end() ? kInitVal : valueOf.at(it->second);
                ew.recordRead(p, s, op.addr, v);
                break;
              }
              case gp::OpKind::Write:
                ew.recordWrite(p, s, op.addr, valueOf.at(here),
                               overwrittenOf.at(here));
                break;
              case gp::OpKind::ReadModifyWrite:
                // Atomic pair: the read sees exactly the value the
                // write overwrites.
                ew.recordRead(p, s, op.addr, overwrittenOf.at(here),
                              /*rmw=*/true);
                ew.recordWrite(p, s, op.addr, valueOf.at(here),
                               overwrittenOf.at(here), /*rmw=*/true);
                break;
              default:
                break;
            }
        }
    }
    ew.finalize();
    return ew;
}

/** The sequential execution: thread 0 runs to completion, then 1, ... */
inline mc::ExecWitness
sequentialWitness(const LitmusTest &t)
{
    gp::ThreadSlots slots;
    t.test.threadSlots(t.numThreads, slots);
    mc::ExecWitness ew;
    std::map<Addr, WriteVal> mem;
    WriteVal next = 1;
    auto current = [&](Addr a) {
        const auto it = mem.find(a);
        return it == mem.end() ? kInitVal : it->second;
    };
    for (Pid p = 0; p < t.numThreads; ++p) {
        const auto th = slots.thread(p);
        for (int s = 0; s < static_cast<int>(th.size()); ++s) {
            const gp::Op &op =
                t.test.node(th[static_cast<std::size_t>(s)]).op;
            switch (op.kind) {
              case gp::OpKind::Read:
              case gp::OpKind::ReadAddrDp:
                ew.recordRead(p, s, op.addr, current(op.addr));
                break;
              case gp::OpKind::Write:
                ew.recordWrite(p, s, op.addr, next, current(op.addr));
                mem[op.addr] = next++;
                break;
              case gp::OpKind::ReadModifyWrite: {
                const WriteVal old = current(op.addr);
                ew.recordRead(p, s, op.addr, old, /*rmw=*/true);
                ew.recordWrite(p, s, op.addr, next, old, /*rmw=*/true);
                mem[op.addr] = next++;
                break;
              }
              default:
                break;
            }
        }
    }
    ew.finalize();
    return ew;
}

} // namespace mcversi::litmus::testsupport

#endif // MCVERSI_TESTS_LITMUS_WITNESS_SYNTHESIS_HH
