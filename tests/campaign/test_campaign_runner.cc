/**
 * @file
 * CampaignRunner determinism: extends the per-run seed-determinism
 * guarantee of tests/sim/test_rng_determinism.cc to the campaign
 * layer. The same expanded matrix run with 1 worker thread and with N
 * worker threads must produce byte-identical aggregated summaries
 * (timing excluded -- wall-clock is the one legitimately
 * non-deterministic output), because every campaign owns an
 * independent System + Checker + source seeded only from its spec.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>

#include "campaign/registry.hh"
#include "campaign/runner.hh"

using namespace mcversi;
using namespace mcversi::campaign;

namespace {

/** Small-but-real matrix: 2 bugs x 2 generators x 2 seeds + litmus. */
std::vector<CampaignSpec>
quickstartMatrix()
{
    CampaignMatrix matrix;
    matrix.base.testSize = 64;
    matrix.base.iterations = 2;
    matrix.base.memSize = 1024;
    matrix.base.population = 8;
    matrix.base.maxTestRuns = 3;
    matrix.bugs = {"SQ+no-FIFO", "none"};
    matrix.generators = {"McVerSi-ALL", "McVerSi-RAND"};
    matrix.seeds = {1, 2};
    std::vector<CampaignSpec> specs = matrix.expand();

    CampaignSpec litmus = matrix.base;
    litmus.bug = "MESI,LQ+IS,Inv";
    litmus.generator = "diy-litmus";
    litmus.litmusIterations = 2;
    litmus.maxTestRuns = 2;
    specs.push_back(litmus);
    return specs;
}

} // namespace

TEST(CampaignRunner, WorkerCountDoesNotChangeTheSummary)
{
    const std::vector<CampaignSpec> specs = quickstartMatrix();

    CampaignRunner::Options serial;
    serial.threads = 1;
    const CampaignSummary s1 = CampaignRunner(serial).run(specs);

    CampaignRunner::Options parallel;
    parallel.threads = 8;
    const CampaignSummary s8 = CampaignRunner(parallel).run(specs);

    ASSERT_EQ(s1.campaigns(), specs.size());
    ASSERT_EQ(s8.campaigns(), specs.size());
    EXPECT_EQ(s1.errors(), 0u);
    // Timing-free exports must be byte-identical.
    EXPECT_EQ(s1.toJson(false), s8.toJson(false));
    EXPECT_EQ(s1.toCsv(false), s8.toCsv(false));
    // And a repeat serial run reproduces itself exactly.
    const CampaignSummary again = CampaignRunner(serial).run(specs);
    EXPECT_EQ(s1.toJson(false), again.toJson(false));
}

TEST(CampaignRunner, SummaryByteIdenticalAcrossEvalThreadsAndIslands)
{
    // The ISSUE's determinism matrix: eval-threads {1, 8} x islands
    // {1, 4}. For every island count, the timing-free summary must be
    // byte-identical no matter how many workers evaluate each batch.
    for (const std::size_t islands : {std::size_t{1}, std::size_t{4}}) {
        CampaignSpec spec;
        spec.bug = "none";
        spec.generator = "McVerSi-ALL";
        spec.testSize = 64;
        spec.iterations = 2;
        spec.memSize = 1024;
        spec.population = 8;
        spec.islands = islands;
        spec.migration = 16;
        spec.batch = islands > 1 ? 8 : 1;
        spec.maxTestRuns = 32;
        spec.seed = 5;

        CampaignSummary byThreads[2];
        const int thread_counts[2] = {1, 8};
        for (int t = 0; t < 2; ++t) {
            CampaignRunner::Options options;
            options.threads = 1;
            options.evalThreads = thread_counts[t];
            byThreads[t] = CampaignRunner(options).run({spec});
            ASSERT_EQ(byThreads[t].errors(), 0u)
                << byThreads[t].results[0].error;
        }
        EXPECT_EQ(byThreads[0].toJson(false), byThreads[1].toJson(false))
            << "islands=" << islands;
        EXPECT_EQ(byThreads[0].toCsv(false), byThreads[1].toCsv(false))
            << "islands=" << islands;
    }
}

TEST(CampaignRunner, ParallelSpecFindsInjectedBugDeterministically)
{
    CampaignSpec spec;
    spec.bug = "SQ+no-FIFO";
    spec.generator = "McVerSi-RAND";
    spec.testSize = 96;
    spec.iterations = 3;
    spec.memSize = 1024;
    spec.seed = 2;
    spec.islands = 2;
    spec.batch = 8;
    spec.maxTestRuns = 400;

    const CampaignResult a = CampaignRunner::runOne(spec, 1);
    const CampaignResult b = CampaignRunner::runOne(spec, 4);
    ASSERT_TRUE(a.ok()) << a.error;
    EXPECT_TRUE(a.harness.bugFound);
    EXPECT_EQ(a.harness.testRunsToBug, b.harness.testRunsToBug);
    EXPECT_EQ(a.harness.simTicks, b.harness.simTicks);
    EXPECT_EQ(a.harness.detail, b.harness.detail);
    EXPECT_EQ(a.protocolCoverage, b.protocolCoverage);
}

TEST(CampaignRunner, ResultsStayInSpecOrder)
{
    const std::vector<CampaignSpec> specs = quickstartMatrix();
    CampaignRunner::Options options;
    options.threads = 4;
    const CampaignSummary summary = CampaignRunner(options).run(specs);
    ASSERT_EQ(summary.results.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i)
        EXPECT_EQ(summary.results[i].spec, specs[i]) << "index " << i;
}

TEST(CampaignRunner, ProgressCallbackSeesEveryCompletion)
{
    const std::vector<CampaignSpec> specs = quickstartMatrix();
    std::atomic<std::size_t> calls{0};
    std::size_t last_done = 0;
    CampaignRunner::Options options;
    options.threads = 4;
    options.onResult = [&](const CampaignResult &, std::size_t done,
                           std::size_t total) {
        ++calls;
        last_done = std::max(last_done, done);
        EXPECT_EQ(total, specs.size());
    };
    CampaignRunner(options).run(specs);
    EXPECT_EQ(calls.load(), specs.size());
    EXPECT_EQ(last_done, specs.size());
}

TEST(CampaignRunner, BadSpecsAreReportedNotThrown)
{
    CampaignSpec good;
    good.bug = "SQ+no-FIFO";
    good.generator = "McVerSi-RAND";
    good.testSize = 64;
    good.iterations = 2;
    good.memSize = 1024;
    good.maxTestRuns = 2;

    CampaignSpec bad = good;
    bad.generator = "no-such-generator";

    CampaignRunner runner;
    const CampaignSummary summary = runner.run({good, bad});
    ASSERT_EQ(summary.campaigns(), 2u);
    EXPECT_TRUE(summary.results[0].ok());
    EXPECT_FALSE(summary.results[1].ok());
    EXPECT_NE(summary.results[1].error.find("no-such-generator"),
              std::string::npos);
    EXPECT_EQ(summary.errors(), 1u);

    // The error lands in both machine-readable exports.
    EXPECT_NE(summary.toJson().find("no-such-generator"),
              std::string::npos);
    EXPECT_NE(summary.toCsv().find("no-such-generator"),
              std::string::npos);
}

TEST(CampaignRunner, BugCampaignFindsTheBugDeterministically)
{
    CampaignSpec spec;
    spec.bug = "SQ+no-FIFO";
    spec.generator = "McVerSi-RAND";
    spec.testSize = 96;
    spec.iterations = 3;
    spec.memSize = 1024;
    spec.seed = 2;
    spec.maxTestRuns = 400;

    const CampaignResult a = CampaignRunner::runOne(spec);
    const CampaignResult b = CampaignRunner::runOne(spec);
    ASSERT_TRUE(a.ok());
    EXPECT_TRUE(a.harness.bugFound);
    EXPECT_EQ(a.harness.testRunsToBug, b.harness.testRunsToBug);
    EXPECT_EQ(a.harness.simTicks, b.harness.simTicks);
    EXPECT_EQ(a.harness.detail, b.harness.detail);
    EXPECT_EQ(a.protocolCoverage, b.protocolCoverage);
}

TEST(CampaignSummary, NonFiniteDoublesExportAsNullAndEmptyFields)
{
    // Degenerate cells (0/0 means, zero-wall-time rates) produce NaN
    // and inf doubles; bare "nan"/"inf" tokens are not valid JSON and
    // would poison downstream consumers of the CSV as well.
    CampaignSummary summary;
    CampaignResult r;
    r.harness.meanFitness = std::nan("");
    r.harness.totalCoverage = std::numeric_limits<double>::infinity();
    r.harness.wallSeconds = -std::numeric_limits<double>::infinity();
    r.protocolCoverage = 0.5;
    summary.results.push_back(r);

    const std::string json = summary.toJson(true);
    EXPECT_NE(json.find("\"mean_fitness\":null"), std::string::npos);
    EXPECT_NE(json.find("\"total_coverage\":null"), std::string::npos);
    EXPECT_NE(json.find("\"wall_seconds\":null"), std::string::npos);
    // Finite neighbours still print as numbers...
    EXPECT_NE(json.find("\"protocol_coverage\":0.5"),
              std::string::npos);
    // ...and no bare non-JSON tokens survive anywhere.
    EXPECT_EQ(json.find("nan"), std::string::npos);
    EXPECT_EQ(json.find("inf"), std::string::npos);

    // CSV: the same cells round-trip as empty fields in the right
    // columns.
    const std::string csv = summary.toCsv(true);
    const auto split = [](const std::string &line) {
        std::vector<std::string> fields;
        std::size_t start = 0;
        while (true) {
            const std::size_t comma = line.find(',', start);
            fields.push_back(line.substr(start, comma - start));
            if (comma == std::string::npos)
                break;
            start = comma + 1;
        }
        return fields;
    };
    const std::size_t eol = csv.find('\n');
    ASSERT_NE(eol, std::string::npos);
    const std::vector<std::string> header = split(csv.substr(0, eol));
    const std::size_t eor = csv.find('\n', eol + 1);
    const std::vector<std::string> row =
        split(csv.substr(eol + 1, eor - eol - 1));
    ASSERT_EQ(row.size(), header.size());
    auto field = [&](const std::string &name) {
        const auto it = std::find(header.begin(), header.end(), name);
        EXPECT_NE(it, header.end()) << name;
        return row[static_cast<std::size_t>(it - header.begin())];
    };
    EXPECT_EQ(field("mean_fitness"), "");
    EXPECT_EQ(field("total_coverage"), "");
    EXPECT_EQ(field("wall_seconds"), "");
    EXPECT_EQ(field("protocol_coverage"), "0.5");
    EXPECT_EQ(csv.find("nan"), std::string::npos);
    EXPECT_EQ(csv.find("inf"), std::string::npos);
}

TEST(CampaignRunner, WindowedCampaignMatchesUnboundedWhenNothingDrops)
{
    // A witness window large enough to retain every iteration's stream
    // must not change campaign behavior at all: per-test verdicts are
    // byte-identical by the checker's differential suite, and the GA
    // trajectory (which feeds on the NDT fitness signal accumulated
    // from the finalized witness) must match too -- the windowed path
    // replays the retained ring into scratch for exactly this reason.
    CampaignSpec spec;
    spec.bug = "MESI,LQ+IS,Inv";
    spec.generator = "McVerSi-ALL";
    spec.seed = 1;
    spec.testSize = 96;
    spec.iterations = 2;
    spec.memSize = 1024;
    spec.population = 16;
    spec.maxTestRuns = 25;
    spec.maxWallSeconds = 120.0;
    spec.checkMode = "streaming";

    CampaignSpec windowed = spec;
    windowed.witnessWindow = 8192;

    const CampaignResult unbounded = CampaignRunner::runOne(spec);
    const CampaignResult ringed = CampaignRunner::runOne(windowed);
    ASSERT_TRUE(unbounded.ok()) << unbounded.error;
    ASSERT_TRUE(ringed.ok()) << ringed.error;
    EXPECT_TRUE(unbounded.harness.bugFound);
    EXPECT_EQ(ringed.harness.bugFound, unbounded.harness.bugFound);
    EXPECT_EQ(ringed.harness.testRunsToBug,
              unbounded.harness.testRunsToBug);
    EXPECT_EQ(ringed.harness.eventsUntilDetection,
              unbounded.harness.eventsUntilDetection);
    EXPECT_EQ(ringed.harness.eventsExecuted,
              unbounded.harness.eventsExecuted);
    EXPECT_EQ(ringed.harness.detail, unbounded.harness.detail);
}

TEST(CampaignSummary, ZeroEventCampaignsExportNullCheckCost)
{
    // A campaign that never executed an event (budget exhausted before
    // the first test, or interrupted immediately) has no per-event
    // checking cost: check_us_per_event must render as JSON null / an
    // empty CSV cell, never as a 0/0 nan token.
    CampaignSummary summary;
    CampaignResult r;
    r.spec.checkMode = "streaming";
    r.spec.witnessWindow = 4096;
    r.harness.eventsExecuted = 0;
    r.harness.checkSeconds = 0.0;
    summary.results.push_back(r);

    const std::string json = summary.toJson(true);
    EXPECT_NE(json.find("\"check_us_per_event\":null"),
              std::string::npos);
    // The bounded-window knob is part of the exported spec echo.
    EXPECT_NE(json.find("\"witness_window\":4096"), std::string::npos);
    EXPECT_EQ(json.find("nan"), std::string::npos);
    EXPECT_EQ(json.find("inf"), std::string::npos);

    const std::string csv = summary.toCsv(true);
    const std::size_t eol = csv.find('\n');
    ASSERT_NE(eol, std::string::npos);
    const std::string header = csv.substr(0, eol);
    const std::size_t eor = csv.find('\n', eol + 1);
    const std::string row = csv.substr(eol + 1, eor - eol - 1);
    const auto column = [](const std::string &line,
                           const std::string &upto) {
        // Count commas before the named field / field position.
        return static_cast<std::size_t>(
            std::count(line.begin(),
                       line.begin() +
                           static_cast<std::ptrdiff_t>(line.find(upto)),
                       ','));
    };
    ASSERT_NE(header.find("check_us_per_event"), std::string::npos);
    const std::size_t col = column(header, "check_us_per_event");
    std::size_t start = 0;
    for (std::size_t c = 0; c < col; ++c)
        start = row.find(',', start) + 1;
    const std::size_t end = row.find(',', start);
    EXPECT_EQ(row.substr(start, end - start), "");
    EXPECT_EQ(csv.find("nan"), std::string::npos);
}
