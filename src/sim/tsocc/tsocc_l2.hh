/**
 * @file
 * TSO-CC-style lazy coherence: shared L2 tile.
 *
 * The L2 tracks only the single *owner* of a line (for writes); readers
 * are never registered and never invalidated -- that is the lazy part
 * that explicitly violates SWMR. Lines carry (writer, ts, epoch)
 * metadata supplied to readers for the self-invalidation rule; metadata
 * is lost when a line is evicted to memory, which readers treat
 * conservatively.
 */

#ifndef MCVERSI_SIM_TSOCC_TSOCC_L2_HH
#define MCVERSI_SIM_TSOCC_TSOCC_L2_HH

#include <deque>
#include <string>
#include <unordered_map>

#include "common/rng.hh"
#include "sim/cache_array.hh"
#include "sim/config.hh"
#include "sim/eventq.hh"
#include "sim/network.hh"
#include "sim/transition_table.hh"

namespace mcversi::sim {

/** Shared L2 tile for the TSO-CC protocol. */
class TsoccL2 : public MsgHandler
{
  public:
    enum State : std::uint8_t {
        StNP,
        StU,    ///< cached at L2, no L1 owner (readers untracked)
        StO,    ///< one L1 owner
        StIU_S, ///< memory fetch for GETS
        StIU_X, ///< memory fetch for GETX
        StB_O,  ///< exclusive grant sent, awaiting Unblock
        StO_R,  ///< recalling from owner to serve a request
        StO_I,  ///< side buffer: recalling from owner to evict
        NumStates,
    };

    enum Event : std::uint8_t {
        EvGETS,
        EvGETX,
        EvPutxOwner,
        EvPutxNonOwner,
        EvUnblock,
        EvRecallData,
        EvRecallAckNoData,
        EvMemData,
        EvReplacement,
        NumEvents,
    };

    TsoccL2(int tile, const SystemConfig &cfg, EventQueue &eq,
            Network &net, TransitionCoverage &cov, Rng rng);

    void handleMsg(const Msg &msg) override;
    void resetAll();
    State lineState(Addr line);

    /** One-line state histogram for deadlock diagnosis. */
    std::string debugSummary();

  private:
    struct EvictBuf
    {
        Pid owner = kInitPid;
        bool done = false;
    };

    void buildTable();
    /** Stage and populate a pool-owned outbound message. */
    Msg &buildMsg(MsgType t, Addr line, NodeId dst, Vnet vnet,
                  const std::function<void(Msg &)> &fill);
    void send(MsgType t, Addr line, NodeId dst, Vnet vnet,
              const std::function<void(Msg &)> &fill = {});
    /** Delayed send: the message is injected @p delta ticks from now. */
    void sendAfter(Tick delta, MsgType t, Addr line, NodeId dst,
                   Vnet vnet, const std::function<void(Msg &)> &fill = {});
    void memWrite(Addr line, const LineData &data);

    bool serving(Addr line);
    void drain(Addr line);
    void serveRequest(const Msg &msg);
    bool startFetch(Addr line, Pid c, bool exclusive, const Msg &msg);
    bool evictVictim(Addr line);
    void doReplacement(CacheEntry &entry);

    /** Send data (with metadata) for a completed GETS / GETX. */
    void grant(CacheEntry &entry, Pid c, bool exclusive);
    /** Owner data arrived while O_R / O_I: finish the transaction. */
    void finishRecall(CacheEntry *entry, Addr line, const Msg &msg);

    int tile_;
    const SystemConfig &cfg_;
    EventQueue &eq_;
    Network &net_;
    TransitionTable table_;
    Rng rng_;

    CacheArray array_;
    std::unordered_map<Addr, EvictBuf> evict_;
    std::unordered_map<Addr, std::deque<Msg>> waiting_;
    /** Stale owner recall acks still in flight after a PUTX race. */
    std::unordered_map<Addr, int> staleRecallAcks_;
    /**
     * Directory timestamp metadata, persisted across L2 evictions (the
     * TSO-CC paper keeps timestamps in the directory). Guarantees the
     * invariant: a line without metadata has never been written, so
     * readers need no conservative self-invalidation for it.
     */
    std::unordered_map<Addr, TsMeta> metaStore_;
};

} // namespace mcversi::sim

#endif // MCVERSI_SIM_TSOCC_TSOCC_L2_HH
