#include "litmus/x86_suite.hh"

#include <stdexcept>

namespace mcversi::litmus {

namespace {

LitmusTest
mustBuild(const CycleSpec &spec, const char *name)
{
    auto test = buildTest(spec);
    if (!test)
        throw std::logic_error(std::string("invalid litmus spec: ") +
                               name);
    return *test;
}

} // namespace

std::vector<LitmusTest>
x86TsoSuite()
{
    std::vector<LitmusTest> suite;
    for (const CycleSpec &spec : enumerateCycles(6, kX86SuiteSize)) {
        if (auto test = buildTest(spec))
            suite.push_back(std::move(*test));
        if (suite.size() >= kX86SuiteSize)
            break;
    }
    return suite;
}

LitmusTest
messagePassing()
{
    LitmusTest t = mustBuild({EdgeType::PodWW, EdgeType::Rfe,
                              EdgeType::PodRR, EdgeType::Fre},
                             "MP");
    t.name = "MP (" + t.name + ")";
    return t;
}

LitmusTest
storeBufferingFenced()
{
    LitmusTest t = mustBuild({EdgeType::MFencedWR, EdgeType::Fre,
                              EdgeType::MFencedWR, EdgeType::Fre},
                             "SB+fences");
    t.name = "SB+fences (" + t.name + ")";
    return t;
}

LitmusTest
loadBuffering()
{
    LitmusTest t = mustBuild({EdgeType::PodRW, EdgeType::Rfe,
                              EdgeType::PodRW, EdgeType::Rfe},
                             "LB");
    t.name = "LB (" + t.name + ")";
    return t;
}

LitmusTest
twoPlusTwoW()
{
    LitmusTest t = mustBuild({EdgeType::PodWW, EdgeType::Coe,
                              EdgeType::PodWW, EdgeType::Coe},
                             "2+2W");
    t.name = "2+2W (" + t.name + ")";
    return t;
}

} // namespace mcversi::litmus
