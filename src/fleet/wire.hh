/**
 * @file
 * Wire codec for fleet cell results.
 *
 * One CellRecord describes one completed campaign cell: the matrix
 * index, the attempt number, the canonical spec string, and the full
 * CampaignResult. The encoding is a single line of space-separated
 * key=value tokens in the repo's spec idiom:
 *
 *  - strings are percent-escaped ('%', space, '=', and control bytes
 *    become %XX), so a payload never contains a raw newline and the
 *    journal's one-record-per-line framing holds;
 *  - doubles are printed as C99 hexfloats ("%a") and parsed with
 *    strtod, so every value -- including NaN and inf -- round-trips
 *    BIT-EXACTLY. This is what makes a resumed / multi-process merge
 *    byte-identical to a single-process run: the summary exporter
 *    formats the identical double, so it prints the identical text;
 *  - vectors (NDT history, fitness trajectory) are comma-joined.
 *
 * Unknown keys are ignored on decode (forward compatibility); missing
 * keys keep their default. decode fails only on structural damage.
 */

#ifndef MCVERSI_FLEET_WIRE_HH
#define MCVERSI_FLEET_WIRE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/result.hh"

namespace mcversi::fleet {

/** One journaled / pipe-transmitted campaign cell outcome. */
struct CellRecord
{
    /** Index into the expanded spec vector (merge key). */
    std::size_t cell = 0;
    /** 1-based attempt that produced this result. */
    std::uint32_t attempt = 1;
    /** specs[cell].toString() -- consistency check on replay. */
    std::string spec;
    /** Full result; .spec is left default (merge re-attaches it). */
    campaign::CampaignResult result;
};

/** Encode to a single newline-free line. */
std::string encodeCell(const CellRecord &record);

/** Decode; returns false (and explains in @p err, if given) on
 * structural damage. */
bool decodeCell(const std::string &payload, CellRecord &out,
                std::string *err = nullptr);

/**
 * The journal's first record: matrix shape proof. A resume refuses to
 * merge a journal whose cell count or spec fingerprint does not match
 * the matrix it is asked to resume.
 */
struct MetaRecord
{
    std::size_t cells = 0;
    std::uint64_t fingerprint = 0;
};

std::string encodeMeta(const MetaRecord &meta);
bool decodeMeta(const std::string &payload, MetaRecord &out);

/** FNV-1a over every spec's canonical string (order-sensitive). */
std::uint64_t
matrixFingerprint(const std::vector<campaign::CampaignSpec> &specs);

// -- Token helpers shared with tests -----------------------------------

/** Percent-escape: output contains no spaces, '=', '%', or bytes
 * < 0x21. */
std::string escapeToken(const std::string &text);
std::string unescapeToken(const std::string &text);

/** Bit-exact double <-> text ("%a" hexfloat; nan/inf round-trip). */
std::string encodeDouble(double v);
double decodeDouble(const std::string &text);

} // namespace mcversi::fleet

#endif // MCVERSI_FLEET_WIRE_HH
