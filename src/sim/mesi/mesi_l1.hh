/**
 * @file
 * Two-level MESI protocol: private L1 controller.
 *
 * Modelled after gem5's Ruby MESI_Two_Level L1. Stable states I (absent),
 * S, E, M; fetch transients IS, IS_I (Inv sunk while fetching), IM
 * (exclusive fetch), SM (upgrade in flight, data readable); writeback
 * transients MI (PUTX outstanding) and II (gave data away while MI) live
 * in a side buffer so the array way frees immediately.
 *
 * Every place the protocol must forward an invalidation to the load
 * queue is an explicit notifyLq() call; the §5.3 bugs each suppress
 * exactly one site:
 *   - IS_I data consume flag        (MESI,LQ+IS,Inv)
 *   - SM + Inv                      (MESI,LQ+SM,Inv)
 *   - E + Recall                    (MESI,LQ+E,Inv)
 *   - M + Recall                    (MESI,LQ+M,Inv)
 *   - S replacement                 (MESI,LQ+S,Replacement)
 */

#ifndef MCVERSI_SIM_MESI_MESI_L1_HH
#define MCVERSI_SIM_MESI_MESI_L1_HH

#include <deque>
#include <memory>
#include <unordered_map>

#include "common/rng.hh"
#include "sim/cache_array.hh"
#include "sim/config.hh"
#include "sim/eventq.hh"
#include "sim/network.hh"
#include "sim/ports.hh"
#include "sim/transition_table.hh"

namespace mcversi::sim {

/** Private L1 cache controller for the two-level MESI protocol. */
class MesiL1 : public L1Cache, public MsgHandler
{
  public:
    /** Protocol states; I is represented by an absent entry. */
    enum State : std::uint8_t {
        StI,
        StS,
        StE,
        StM,
        StIS,
        StIS_I,
        StIM,
        StSM,
        StMI, ///< side buffer: PUTX outstanding
        StII, ///< side buffer: data forwarded away while MI
        NumStates,
    };

    /** Transition events. */
    enum Event : std::uint8_t {
        EvLoad,
        EvStore,
        EvRmw,
        EvFlush,
        EvReplacement,
        EvDataShared,
        EvDataExclusive,
        EvAckCount,
        EvInvAckIn,
        EvInv,
        EvRecall,
        EvFwdGETS,
        EvFwdGETX,
        EvWbAck,
        EvWbNack,
        NumEvents,
    };

    MesiL1(Pid pid, const SystemConfig &cfg, EventQueue &eq, Network &net,
           TransitionCoverage &cov, Rng rng);

    void setHooks(CoreHooks hooks) override { hooks_ = std::move(hooks); }

    // Core interface.
    void coreLoad(ReqId id, Addr addr) override;
    void coreStore(ReqId id, Addr addr, WriteVal value) override;
    void coreRmw(ReqId id, Addr addr, WriteVal value) override;
    void coreFlush(ReqId id, Addr addr) override;

    void handleMsg(const Msg &msg) override;
    void resetAll() override;

    /** Introspection for tests: protocol state of a line. */
    State lineState(Addr line);

  private:
    /** A core request queued on a line. */
    struct PendingReq
    {
        enum class Kind { Load, Store, Rmw, Flush } kind;
        ReqId id;
        Addr addr;
        WriteVal value; // store / RMW new value
    };

    /** Writeback side buffer entry (TBE). */
    struct EvictBuf
    {
        State state = StMI;
        LineData data{};
        bool dirty = false;
        bool flushPending = false;
        ReqId flushReq = 0;
    };

    void buildTable();
    NodeId home(Addr line) const;
    void send(MsgType t, Addr line, NodeId dst, Vnet vnet,
              const std::function<void(Msg &)> &fill = {});

    /** Dispatch a core request against the current line state. */
    void dispatch(const PendingReq &req, bool front);
    void enqueue(const PendingReq &req, bool front);
    /** Re-dispatch queued requests after a state change. */
    void processPending(Addr line);

    void respond(ReqId id, WriteVal value, WriteVal overwritten,
                 bool inv_in_flight, Tick latency);
    void notifyLq(Addr line);

    /** Begin a miss: allocate (evicting if needed) and request. */
    bool startMiss(Addr line, bool exclusive);
    /** Evict one stable victim from the set of @p line, if possible. */
    bool evictVictim(Addr line);
    void doReplacement(CacheEntry &entry);

    /** Completion of an exclusive fetch or upgrade: enter M. */
    void enterM(CacheEntry &entry);

    void applyStore(CacheEntry &entry, const PendingReq &req);

    Pid pid_;
    const SystemConfig &cfg_;
    EventQueue &eq_;
    Network &net_;
    TransitionTable table_;
    Rng rng_;
    CoreHooks hooks_;

    CacheArray array_;
    std::unordered_map<Addr, EvictBuf> evict_;
    std::unordered_map<Addr, std::deque<PendingReq>> pending_;
};

} // namespace mcversi::sim

#endif // MCVERSI_SIM_MESI_MESI_L1_HH
