#include "memconsistency/checker.hh"

#include <sstream>
#include <unordered_map>

namespace mcversi::mc {

const char *
CheckResult::kindName(Kind k)
{
    switch (k) {
      case Kind::Ok: return "ok";
      case Kind::WitnessAnomaly: return "witness-anomaly";
      case Kind::UniprocViolation: return "sc-per-location";
      case Kind::AtomicityViolation: return "rmw-atomicity";
      case Kind::GhbViolation: return "ghb";
    }
    return "?";
}

CheckResult
Checker::cycleResult(CheckResult::Kind kind, const ExecWitness &ew,
                     const std::vector<CycleGraph::Node> &cyc,
                     const std::string &constraint)
{
    CheckResult res;
    res.kind = kind;
    std::ostringstream os;
    os << constraint << " cycle:";
    const auto num_events = static_cast<CycleGraph::Node>(ew.numEvents());
    for (const auto node : cyc) {
        if (node < num_events) {
            res.cycle.push_back(node);
            os << "\n  " << ew.event(node).toString();
        } else {
            os << "\n  <fence>";
        }
    }
    res.message = os.str();
    return res;
}

CheckResult
Checker::check(ExecWitness &ew) const
{
    ew.finalize();
    if (ew.anomaly() != WitnessAnomaly::None) {
        CheckResult res;
        res.kind = CheckResult::Kind::WitnessAnomaly;
        res.message = ew.anomalyInfo();
        return res;
    }
    if (auto res = checkUniproc(ew); !res.ok())
        return res;
    if (auto res = checkAtomicity(ew); !res.ok())
        return res;
    return checkGhb(ew);
}

CheckResult
Checker::checkUniproc(const ExecWitness &ew) const
{
    CycleGraph g(ew.numEvents());

    // po-loc: consecutive same-address events per thread (the per
    // (thread, address) sequence is totally ordered, so the chain
    // generates the full po-loc).
    for (Pid pid : ew.threads()) {
        std::unordered_map<Addr, EventId> last;
        for (EventId id : ew.threadEvents(pid)) {
            const Addr a = ew.event(id).addr;
            if (auto it = last.find(a); it != last.end())
                g.addEdge(it->second, id);
            last[a] = id;
        }
    }
    // Communication edges: rf (all), immediate co, immediate fr.
    ew.rf().forEach([&](EventId from, const Relation::SuccSet &succs) {
        for (EventId to : succs)
            g.addEdge(from, to);
    });
    ew.co().forEach([&](EventId from, const Relation::SuccSet &succs) {
        for (EventId to : succs)
            g.addEdge(from, to);
    });
    const Relation fr = ew.computeFrImmediate();
    fr.forEach([&](EventId from, const Relation::SuccSet &succs) {
        for (EventId to : succs)
            g.addEdge(from, to);
    });

    if (auto cyc = g.findCycle()) {
        return cycleResult(CheckResult::Kind::UniprocViolation, ew, *cyc,
                           "sc-per-location");
    }
    return {};
}

CheckResult
Checker::checkAtomicity(const ExecWitness &ew) const
{
    for (const auto &[r, w] : ew.rmwPairs()) {
        const EventId src = ew.rfSource(r);
        if (src == kNoEvent)
            continue; // Anomaly already reported.
        if (ew.coPredecessor(w) != src) {
            CheckResult res;
            res.kind = CheckResult::Kind::AtomicityViolation;
            std::ostringstream os;
            os << "rmw atomicity violated: read " << ew.event(r).toString()
               << " sourced from " << ew.event(src).toString()
               << " but write " << ew.event(w).toString()
               << " does not immediately co-follow it";
            res.message = os.str();
            return res;
        }
    }
    return {};
}

CheckResult
Checker::checkGhb(const ExecWitness &ew) const
{
    CycleGraph g(ew.numEvents());

    for (Pid pid : ew.threads())
        arch_->addProgramOrderEdges(ew, ew.threadEvents(pid), g);

    const bool include_rfi = arch_->ghbIncludesRfi();
    ew.rf().forEach([&](EventId from, const Relation::SuccSet &succs) {
        const Event &w = ew.event(from);
        for (EventId to : succs) {
            if (include_rfi || w.isInit() ||
                w.iiid.pid != ew.event(to).iiid.pid) {
                g.addEdge(from, to);
            }
        }
    });
    ew.co().forEach([&](EventId from, const Relation::SuccSet &succs) {
        for (EventId to : succs)
            g.addEdge(from, to);
    });
    const Relation fr = ew.computeFrImmediate();
    fr.forEach([&](EventId from, const Relation::SuccSet &succs) {
        for (EventId to : succs)
            g.addEdge(from, to);
    });

    if (auto cyc = g.findCycle()) {
        return cycleResult(CheckResult::Kind::GhbViolation, ew, *cyc,
                           "ghb(" + arch_->name() + ")");
    }
    return {};
}

} // namespace mcversi::mc
