#include "memconsistency/relation.hh"

#include <algorithm>
#include <functional>

namespace mcversi::mc {

const Relation::SuccSet Relation::emptySet_{};

bool
Relation::insert(EventId from, EventId to)
{
    auto [it, fresh] = adj_[from].insert(to);
    (void)it;
    if (fresh)
        ++numPairs_;
    return fresh;
}

bool
Relation::contains(EventId from, EventId to) const
{
    auto it = adj_.find(from);
    return it != adj_.end() && it->second.count(to) > 0;
}

void
Relation::clear()
{
    adj_.clear();
    numPairs_ = 0;
}

const Relation::SuccSet &
Relation::successors(EventId from) const
{
    auto it = adj_.find(from);
    return it == adj_.end() ? emptySet_ : it->second;
}

void
Relation::unionWith(const Relation &other)
{
    other.forEach([this](EventId from, const SuccSet &succs) {
        for (EventId to : succs)
            insert(from, to);
    });
}

std::vector<std::pair<EventId, EventId>>
Relation::pairs() const
{
    std::vector<std::pair<EventId, EventId>> out;
    out.reserve(numPairs_);
    for (const auto &[from, succs] : adj_)
        for (EventId to : succs)
            out.emplace_back(from, to);
    return out;
}

std::unordered_map<EventId, std::size_t>
Relation::inDegrees() const
{
    std::unordered_map<EventId, std::size_t> in;
    for (const auto &[from, succs] : adj_) {
        (void)from;
        for (EventId to : succs)
            ++in[to];
    }
    return in;
}

Relation
Relation::transitiveClosure() const
{
    Relation out;
    // For each source node, DFS to find all reachable nodes.
    for (const auto &[src, succs] : adj_) {
        (void)succs;
        std::vector<EventId> stack{src};
        std::unordered_set<EventId> seen;
        while (!stack.empty()) {
            EventId cur = stack.back();
            stack.pop_back();
            for (EventId nxt : successors(cur)) {
                if (seen.insert(nxt).second) {
                    out.insert(src, nxt);
                    stack.push_back(nxt);
                }
            }
        }
    }
    return out;
}

bool
Relation::acyclic() const
{
    // Iterative three-color DFS.
    enum class Color : std::uint8_t { White, Grey, Black };
    std::unordered_map<EventId, Color> color;
    auto colorOf = [&](EventId e) {
        auto it = color.find(e);
        return it == color.end() ? Color::White : it->second;
    };

    for (const auto &[root, succs] : adj_) {
        (void)succs;
        if (colorOf(root) != Color::White)
            continue;
        // Stack of (node, next-successor iterator position).
        std::vector<std::pair<EventId, std::vector<EventId>>> stack;
        auto push = [&](EventId e) {
            color[e] = Color::Grey;
            const auto &s = successors(e);
            stack.emplace_back(e,
                               std::vector<EventId>(s.begin(), s.end()));
        };
        push(root);
        while (!stack.empty()) {
            auto &[node, rest] = stack.back();
            if (rest.empty()) {
                color[node] = Color::Black;
                stack.pop_back();
                continue;
            }
            EventId nxt = rest.back();
            rest.pop_back();
            switch (colorOf(nxt)) {
              case Color::Grey:
                return false;
              case Color::White:
                push(nxt);
                break;
              case Color::Black:
                break;
            }
        }
    }
    return true;
}

bool
Relation::irreflexive() const
{
    for (const auto &[from, succs] : adj_)
        if (succs.count(from))
            return false;
    return true;
}

} // namespace mcversi::mc
