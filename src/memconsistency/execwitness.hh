/**
 * @file
 * The candidate execution object (§4.1).
 *
 * A pre-silicon environment can observe all conflict orders directly, so
 * the witness records exact rf (read-from) and co (coherence order)
 * during execution, without enumeration or approximation:
 *
 *  - every dynamic store writes a globally unique value (its "write ID"),
 *    so the value a read returns identifies the producing write;
 *  - every store also reports the value it overwrote, which identifies
 *    its immediate co-predecessor.
 *
 * Initial memory contents (value kInitVal) map to per-address init write
 * events created on first use.
 *
 * Recording also performs two well-formedness checks that catch data-loss
 * bugs directly: a read of a value that was never written, and two stores
 * claiming to overwrite the same value (a fork in what must be a total
 * per-address coherence chain, e.g. after a lost writeback).
 */

#ifndef MCVERSI_MEMCONSISTENCY_EXECWITNESS_HH
#define MCVERSI_MEMCONSISTENCY_EXECWITNESS_HH

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "memconsistency/event.hh"
#include "memconsistency/relation.hh"

namespace mcversi::mc {

/** Kinds of recording-time anomaly. */
enum class WitnessAnomaly : std::uint8_t {
    None,
    /** A read returned a value no write ever produced. */
    UnknownValue,
    /** Two writes overwrote the same value: co is not a total order. */
    CoFork,
};

/** One candidate execution: events plus observed po / rf / co. */
class ExecWitness
{
  public:
    /**
     * Record a committed read.
     *
     * @param pid   issuing thread
     * @param poi   program-order index of the instruction in its thread
     * @param addr  address read
     * @param value value observed
     * @param rmw   true if part of an atomic RMW pair
     * @return id of the new event
     */
    EventId recordRead(Pid pid, std::int32_t poi, Addr addr, WriteVal value,
                       bool rmw = false);

    /**
     * Record a committed (serialized) write.
     *
     * @param value       unique value written (never kInitVal)
     * @param overwritten value the write replaced in memory order
     */
    EventId recordWrite(Pid pid, std::int32_t poi, Addr addr, WriteVal value,
                        WriteVal overwritten, bool rmw = false);

    /**
     * Resolve conflict orders from the recorded values. Must be called
     * once recording is complete (at quiescence: a store-forwarded read
     * can be recorded before its producing write serializes, so
     * resolution cannot happen at record time). Idempotent.
     */
    void finalize();

    bool finalized() const { return finalized_; }

    const Event &event(EventId id) const { return events_[id]; }
    const std::vector<Event> &events() const { return events_; }
    std::size_t numEvents() const { return events_.size(); }

    /** Per-thread events in program order (recording order). */
    const std::vector<EventId> &threadEvents(Pid pid) const;

    /** All thread ids with at least one event, ascending. */
    std::vector<Pid> threads() const;

    /** rf: producing write -> read. */
    const Relation &rf() const { return rf_; }

    /** Immediate co edges: write -> next write to same address. */
    const Relation &co() const { return co_; }

    /** Immediate co successor of write @p w, or kNoEvent. */
    EventId coSuccessor(EventId w) const;

    /** Immediate co predecessor of write @p w, or kNoEvent. */
    EventId coPredecessor(EventId w) const;

    /** Producing write of read @p r, or kNoEvent. */
    EventId rfSource(EventId r) const;

    /**
     * fr (from-read) as immediate edges: read -> first co-successor of
     * its rf source. Together with the co chain this generates full fr
     * transitively.
     */
    Relation computeFrImmediate() const;

    /** Full fr: read -> every co-successor of its rf source. */
    Relation computeFr() const;

    /** Init event for @p addr, or kNoEvent if never referenced. */
    EventId initEvent(Addr addr) const;

    WitnessAnomaly anomaly() const { return anomaly_; }
    const std::string &anomalyInfo() const { return anomalyInfo_; }

    /** All events that form atomic RMW pairs: (read, write). */
    const std::vector<std::pair<EventId, EventId>> &rmwPairs() const
    {
        return rmwPairs_;
    }

    /** Clear all recorded state (events and conflict orders). */
    void reset();

  private:
    EventId addEvent(Event ev);
    /** Resolve @p value at @p addr to its producing write event. */
    EventId resolveWriter(Addr addr, WriteVal value, bool &unknown);
    EventId getOrCreateInit(Addr addr);
    void flagAnomaly(WitnessAnomaly kind, std::string info);

    std::vector<Event> events_;
    std::map<Pid, std::vector<EventId>> perThread_;
    std::unordered_map<WriteVal, EventId> valueToWriter_;
    std::unordered_map<Addr, EventId> initEvents_;
    Relation rf_;
    Relation co_;
    std::unordered_map<EventId, EventId> coSucc_;
    std::unordered_map<EventId, EventId> coPred_;
    std::unordered_map<EventId, EventId> rfSrc_;
    /** (write event, value it overwrote), resolved at finalize(). */
    std::vector<std::pair<EventId, WriteVal>> overwrittenBy_;
    bool finalized_ = false;
    /** Pending read halves of RMW pairs, keyed by (pid, poi). */
    std::map<std::pair<Pid, std::int32_t>, EventId> pendingRmwReads_;
    std::vector<std::pair<EventId, EventId>> rmwPairs_;
    WitnessAnomaly anomaly_ = WitnessAnomaly::None;
    std::string anomalyInfo_;

    static const std::vector<EventId> emptyThread_;
};

} // namespace mcversi::mc

#endif // MCVERSI_MEMCONSISTENCY_EXECWITNESS_HH
