#include "memconsistency/models/registry.hh"

#include <stdexcept>

#include "common/strings.hh"
#include "memconsistency/models/engine.hh"

namespace mcversi::mc {

namespace {

struct RegisteredModel
{
    const char *key; ///< canonical lowercase lookup name
    ModelProfile profile;
};

/**
 * The built-in zoo, in decreasing strictness. SC preserves all of po,
 * so its RMWs need no extra fence nodes (rmwFence = None); TSO relaxes
 * W->R; PSO additionally relaxes W->W; RMO relaxes all plain po and
 * orders only through its full-fence RMWs; RC weakens those fences to
 * acquire (read part) / release (write part) semantics.
 */
const std::vector<RegisteredModel> &
registry()
{
    static const std::vector<RegisteredModel> models = {
        {"sc",
         {.name = "SC",
          .orderRR = true,
          .orderRW = true,
          .orderWR = true,
          .orderWW = true,
          .rmwFence = RmwSemantics::None,
          .rfiGlobal = true}},
        {"tso",
         {.name = "TSO",
          .orderRR = true,
          .orderRW = true,
          .orderWR = false,
          .orderWW = true,
          .rmwFence = RmwSemantics::Full,
          .rfiGlobal = false}},
        {"pso",
         {.name = "PSO",
          .orderRR = true,
          .orderRW = true,
          .orderWR = false,
          .orderWW = false,
          .rmwFence = RmwSemantics::Full,
          .rfiGlobal = false}},
        {"rmo",
         {.name = "RMO",
          .orderRR = false,
          .orderRW = false,
          .orderWR = false,
          .orderWW = false,
          .rmwFence = RmwSemantics::Full,
          .rfiGlobal = false}},
        {"rc",
         {.name = "RC",
          .orderRR = false,
          .orderRW = false,
          .orderWR = false,
          .orderWW = false,
          .rmwFence = RmwSemantics::AcquireRelease,
          .rfiGlobal = false}},
    };
    return models;
}

const RegisteredModel *
find(const std::string &name)
{
    const std::string key = asciiLowered(name);
    for (const RegisteredModel &m : registry()) {
        if (m.key == key)
            return &m;
    }
    return nullptr;
}

} // namespace

bool
hasModel(const std::string &name)
{
    return find(name) != nullptr;
}

const ModelProfile &
modelProfile(const std::string &name)
{
    const RegisteredModel *m = find(name);
    if (m == nullptr) {
        throw std::invalid_argument("unknown consistency model '" + name +
                                    "' (registered: " +
                                    modelNamesJoined() + ")");
    }
    return m->profile;
}

const std::vector<std::string> &
modelNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> out;
        out.reserve(registry().size());
        for (const RegisteredModel &m : registry())
            out.emplace_back(m.key);
        return out;
    }();
    return names;
}

std::string
modelNamesJoined()
{
    std::string out;
    for (const std::string &name : modelNames()) {
        if (!out.empty())
            out += ", ";
        out += name;
    }
    return out;
}

std::unique_ptr<Architecture>
makeModel(const std::string &name)
{
    return std::make_unique<ProfileModel>(modelProfile(name));
}

std::unique_ptr<Architecture>
makeSc()
{
    return makeModel("sc");
}

std::unique_ptr<Architecture>
makeTso()
{
    return makeModel("tso");
}

} // namespace mcversi::mc
