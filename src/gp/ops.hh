/**
 * @file
 * High-level test operations (genes).
 *
 * Each node of a test DAG is a high-level operation of a thread which
 * maps to executable code of the target ISA (§3.3). The operation mix
 * and biases follow Table 3 of the paper; the set is sufficient to cover
 * all enforced orderings of x86-TSO.
 */

#ifndef MCVERSI_GP_OPS_HH
#define MCVERSI_GP_OPS_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace mcversi::gp {

/** Operation kinds, with Table 3 default biases in comments. */
enum class OpKind : std::uint8_t {
    Read,            ///< 50%: read into register
    ReadAddrDp,      ///< 5%: read with address dependency on prior read
    Write,           ///< 42%: write from register
    ReadModifyWrite, ///< 1%: atomic RMW; on x86 also implies fences
    CacheFlush,      ///< 1%: cache flush (e.g. clflush)
    Delay,           ///< 1%: constant delay using NOPs
};

inline constexpr int kNumOpKinds = 6;

const char *opKindName(OpKind kind);

/**
 * One operation. For memory operations, @ref addr is a *logical* offset
 * into the test memory region (a multiple of the generator stride); the
 * host maps logical offsets to physical addresses when emitting code.
 */
struct Op
{
    OpKind kind = OpKind::Delay;
    /** Logical test-memory offset; meaningful iff isMem(). */
    Addr addr = 0;
    /** NOP count; meaningful only for Delay. */
    std::uint32_t delay = 8;

    /**
     * True if the operation is a memory operation, i.e. carries a valid
     * addr attribute (Algorithm 1's is_memop). Note CacheFlush accesses
     * an address but produces no MCM events.
     */
    bool
    isMem() const
    {
        return kind != OpKind::Delay;
    }

    /** Number of MCM events this operation maps to when executed. */
    int
    numEvents() const
    {
        switch (kind) {
          case OpKind::Read:
          case OpKind::ReadAddrDp:
          case OpKind::Write:
            return 1;
          case OpKind::ReadModifyWrite:
            return 2;
          case OpKind::CacheFlush:
          case OpKind::Delay:
            return 0;
        }
        return 0;
    }

    friend bool operator==(const Op &, const Op &) = default;

    std::string toString() const;
};

/** A gene: a 〈pid, op〉 tuple (§3.3). */
struct Node
{
    Pid pid = 0;
    Op op{};

    friend bool operator==(const Node &, const Node &) = default;
};

} // namespace mcversi::gp

#endif // MCVERSI_GP_OPS_HH
