#include "memconsistency/verdict_cache.hh"

#include <algorithm>

namespace mcversi::mc {

namespace {

/** Smallest power of two >= @p n (and >= 8). */
std::size_t
tableSizeFor(std::size_t n)
{
    std::size_t size = 8;
    while (size < n)
        size <<= 1;
    return size;
}

} // namespace

VerdictCache::VerdictCache(Config config)
{
    const std::size_t capacity = std::max<std::size_t>(config.capacity, 1);
    const std::size_t shards =
        std::clamp<std::size_t>(config.shards, 1, capacity);
    const std::size_t per_shard = (capacity + shards - 1) / shards;

    shards_.resize(shards);
    for (Shard &sh : shards_) {
        sh.slots.resize(per_shard);
        // <= 50% load keeps linear-probe chains short.
        sh.table.assign(tableSizeFor(2 * per_shard), kNil);
        sh.mask = static_cast<std::uint32_t>(sh.table.size() - 1);
    }
}

VerdictCache::Shard &
VerdictCache::shardFor(const WitnessSignature &sig)
{
    // High bits pick the shard; findPos uses the low bits of sig.lo, so
    // the two choices are independent.
    return shards_[(sig.hi >> 32) % shards_.size()];
}

std::uint32_t
VerdictCache::findPos(const Shard &sh, const WitnessSignature &sig)
{
    std::uint32_t pos = static_cast<std::uint32_t>(sig.lo) & sh.mask;
    while (sh.table[pos] != kNil &&
           !(sh.slots[sh.table[pos]].sig == sig)) {
        pos = (pos + 1) & sh.mask;
    }
    return pos;
}

void
VerdictCache::unlink(Shard &sh, std::uint32_t slot)
{
    Entry &e = sh.slots[slot];
    if (e.prev != kNil)
        sh.slots[e.prev].next = e.next;
    else
        sh.head = e.next;
    if (e.next != kNil)
        sh.slots[e.next].prev = e.prev;
    else
        sh.tail = e.prev;
    e.prev = e.next = kNil;
}

void
VerdictCache::pushFront(Shard &sh, std::uint32_t slot)
{
    Entry &e = sh.slots[slot];
    e.prev = kNil;
    e.next = sh.head;
    if (sh.head != kNil)
        sh.slots[sh.head].prev = slot;
    sh.head = slot;
    if (sh.tail == kNil)
        sh.tail = slot;
}

void
VerdictCache::eraseTableAt(Shard &sh, std::uint32_t pos)
{
    // Backward-shift deletion: walk the chain after the hole and move
    // back any entry whose home position cannot reach it through the
    // hole, keeping all probe chains gap-free without tombstones.
    sh.table[pos] = kNil;
    std::uint32_t next = (pos + 1) & sh.mask;
    while (sh.table[next] != kNil) {
        const std::uint32_t slot = sh.table[next];
        const std::uint32_t home =
            static_cast<std::uint32_t>(sh.slots[slot].sig.lo) & sh.mask;
        // Movable iff home lies cyclically outside (pos, next].
        if (((next - home) & sh.mask) >= ((next - pos) & sh.mask)) {
            sh.table[pos] = slot;
            sh.table[next] = kNil;
            pos = next;
        }
        next = (next + 1) & sh.mask;
    }
}

bool
VerdictCache::lookup(const WitnessSignature &sig, std::uint8_t &verdict_out)
{
    ++stats_.lookups;
    Shard &sh = shardFor(sig);
    const std::uint32_t pos = findPos(sh, sig);
    const std::uint32_t slot = sh.table[pos];
    if (slot == kNil) {
        ++stats_.misses;
        return false;
    }
    ++stats_.hits;
    verdict_out = sh.slots[slot].verdict;
    if (sh.head != slot) {
        unlink(sh, slot);
        pushFront(sh, slot);
    }
    return true;
}

void
VerdictCache::insert(const WitnessSignature &sig, std::uint8_t verdict)
{
    Shard &sh = shardFor(sig);
    std::uint32_t pos = findPos(sh, sig);
    std::uint32_t slot = sh.table[pos];
    if (slot != kNil) {
        // Refresh recency only: one class has one verdict.
        if (sh.head != slot) {
            unlink(sh, slot);
            pushFront(sh, slot);
        }
        return;
    }

    if (sh.used < sh.slots.size()) {
        slot = sh.used++;
    } else {
        // Evict the LRU entry; its table removal may shift the chain,
        // so recompute the insert position afterwards.
        slot = sh.tail;
        unlink(sh, slot);
        eraseTableAt(sh, findPos(sh, sh.slots[slot].sig));
        ++stats_.evictions;
        pos = findPos(sh, sig);
    }

    Entry &e = sh.slots[slot];
    e.sig = sig;
    e.verdict = verdict;
    sh.table[pos] = slot;
    pushFront(sh, slot);
    ++stats_.distinct;
}

void
VerdictCache::clear()
{
    for (Shard &sh : shards_) {
        std::fill(sh.table.begin(), sh.table.end(), kNil);
        sh.head = sh.tail = kNil;
        sh.used = 0;
    }
    stats_ = Stats{};
}

std::size_t
VerdictCache::size() const
{
    std::size_t total = 0;
    for (const Shard &sh : shards_)
        total += sh.used;
    return total;
}

std::size_t
VerdictCache::capacity() const
{
    std::size_t total = 0;
    for (const Shard &sh : shards_)
        total += sh.slots.size();
    return total;
}

} // namespace mcversi::mc
