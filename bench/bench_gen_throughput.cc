/**
 * @file
 * Generation-engine throughput bench: serial steady-state GA vs the
 * batched island-model EvolutionEngine.
 *
 * Two measurements over the same seed set:
 *
 *  - Full pipeline: generate -> simulate -> check campaigns through the
 *    serial VerificationHarness (islands=1, batch=1, 1 thread) and
 *    through the batched ParallelHarness (islands x batch, N worker
 *    threads). Aggregate tests/sec on each side; the speedup is the
 *    headline number. Thread scaling needs real cores -- the report
 *    records hardwareConcurrency so a 1-core container's ~1x is
 *    interpretable.
 *
 *  - Generation only: nextTest()/reportResult() on the SteadyStateGa
 *    vs nextBatch()/reportBatch() on the EvolutionEngine with a
 *    synthetic fitness (no simulation), isolating the slab genome pool
 *    and batch amortization from simulator cost. Single-threaded on
 *    both sides, so this speedup is core-count independent.
 *
 * Also re-runs one batched campaign with eval-threads 1 and N and
 * byte-compares the timing-free summaries (the determinism contract).
 *
 * Output: JSON written to BENCH_gen.json (override with
 * MCVERSI_BENCH_JSON). MCVERSI_BENCH_SCALE scales the budgets;
 * MCVERSI_BENCH_THREADS overrides the parallel worker count.
 *
 *   {
 *     "bench": "gen_throughput", "schema": 1,
 *     "hardwareConcurrency": N,
 *     "pipeline": {
 *       "serial":   {"scenarios": [...], "aggregateTestsPerSec": X},
 *       "parallel": {"islands", "batch", "threads",
 *                    "scenarios": [...], "aggregateTestsPerSec": X},
 *       "speedup": X
 *     },
 *     "generationOnly": {"serialTestsPerSec", "batchedTestsPerSec",
 *                        "speedup"},
 *     "determinism": {"evalThreads1VsNIdentical": true}
 *   }
 */

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hh"
#include "host/parallel_harness.hh"

using namespace mcversi;
using namespace mcversi::host;

namespace {

constexpr std::uint64_t kSeeds[] = {21, 22, 23};
constexpr std::size_t kIslands = 8;
constexpr std::size_t kBatch = 16;
constexpr std::uint64_t kMigration = 64;
constexpr std::uint64_t kRunsPerSeed = 192;

VerificationHarness::Params
pipelineParams(std::uint64_t seed)
{
    VerificationHarness::Params p;
    p.system.seed = seed;
    p.gen.testSize = 128;
    p.gen.iterations = 2;
    p.gen.memSize = 1024;
    p.workload.iterations = 2;
    p.recordNdt = false;
    return p;
}

gp::GaParams
benchGa()
{
    gp::GaParams ga;
    ga.population = 16;
    return ga;
}

struct SeedResult
{
    std::uint64_t seed = 0;
    std::uint64_t testRuns = 0;
    std::uint64_t simEvents = 0;
    double seconds = 0.0;
};

double
aggregateTestsPerSec(const std::vector<SeedResult> &results)
{
    std::uint64_t runs = 0;
    double seconds = 0.0;
    for (const SeedResult &r : results) {
        runs += r.testRuns;
        seconds += r.seconds;
    }
    return seconds > 0.0 ? static_cast<double>(runs) / seconds : 0.0;
}

SeedResult
runSerialPipeline(std::uint64_t seed, std::uint64_t budget_runs)
{
    auto params = pipelineParams(seed);
    GaSource source(benchGa(), params.gen, seed, gp::XoMode::Selective);
    VerificationHarness harness(params, source);

    Budget warm;
    warm.maxTestRuns = 8;
    harness.run(warm);

    Budget budget;
    budget.maxTestRuns = budget_runs;
    const auto t0 = std::chrono::steady_clock::now();
    const HarnessResult result = harness.run(budget);
    SeedResult out;
    out.seed = seed;
    out.testRuns = result.testRuns;
    out.simEvents = result.simEvents;
    out.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    return out;
}

SeedResult
runParallelPipeline(std::uint64_t seed, std::uint64_t budget_runs,
                    int threads)
{
    auto params = pipelineParams(seed);
    gp::EvolutionParams evo;
    evo.islands = kIslands;
    evo.migrationInterval = kMigration;
    GaSource source(benchGa(), params.gen, seed, gp::XoMode::Selective,
                    evo);
    ParallelHarness::Params pp;
    pp.harness = params;
    pp.lanes = kIslands;
    pp.batch = kBatch;
    pp.threads = threads;
    ParallelHarness harness(pp, source);

    Budget warm;
    warm.maxTestRuns = kBatch;
    harness.run(warm);

    Budget budget;
    budget.maxTestRuns = budget_runs;
    const auto t0 = std::chrono::steady_clock::now();
    const HarnessResult result = harness.run(budget);
    SeedResult out;
    out.seed = seed;
    out.testRuns = result.testRuns;
    out.simEvents = result.simEvents;
    out.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    return out;
}

/** Synthetic fitness for the generation-only loop (content-derived). */
double
pseudoFitness(std::uint64_t fingerprint)
{
    return static_cast<double>(fingerprint % 1000) / 1000.0;
}

double
genOnlySerial(std::uint64_t evals)
{
    gp::GenParams gen;
    gen.testSize = 128;
    gen.memSize = 1024;
    gp::SteadyStateGa ga(benchGa(), gen, 1);
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < evals; ++i) {
        const gp::Test test = ga.nextTest();
        gp::NdInfo nd;
        nd.ndt = 1.0;
        ga.reportResult(pseudoFitness(test.fingerprint()),
                        std::move(nd));
    }
    const double seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
    return seconds > 0.0 ? static_cast<double>(evals) / seconds : 0.0;
}

double
genOnlyBatched(std::uint64_t evals)
{
    gp::GenParams gen;
    gen.testSize = 128;
    gen.memSize = 1024;
    gp::EvolutionParams evo;
    evo.islands = kIslands;
    evo.migrationInterval = kMigration;
    gp::EvolutionEngine engine(benchGa(), gen, 1,
                               gp::XoMode::Selective, evo);
    std::vector<gp::EvolutionEngine::TestRef> refs(kBatch);
    std::vector<gp::EvalResult> results(kBatch);
    const auto t0 = std::chrono::steady_clock::now();
    std::uint64_t done = 0;
    while (done < evals) {
        const std::size_t n = static_cast<std::size_t>(
            std::min<std::uint64_t>(kBatch, evals - done));
        engine.nextBatch({refs.data(), n});
        for (std::size_t i = 0; i < n; ++i) {
            results[i].fitness = pseudoFitness(
                gp::fingerprintNodes(engine.genome(refs[i])));
            results[i].nd = gp::NdInfo{1.0, {}};
        }
        engine.reportBatch({results.data(), n});
        done += n;
    }
    const double seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
    return seconds > 0.0 ? static_cast<double>(evals) / seconds : 0.0;
}

bool
determinismCheck(int threads)
{
    campaign::CampaignSpec spec;
    spec.bug = "none";
    spec.generator = "McVerSi-ALL";
    spec.testSize = 64;
    spec.iterations = 2;
    spec.memSize = 1024;
    spec.population = 8;
    spec.islands = 4;
    spec.batch = 8;
    spec.migration = 32;
    spec.maxTestRuns = 64;
    spec.seed = 17;

    std::string json[2];
    const int counts[2] = {1, threads};
    for (int i = 0; i < 2; ++i) {
        campaign::CampaignRunner::Options options;
        options.threads = 1;
        options.evalThreads = counts[i];
        json[i] = campaign::CampaignRunner(options)
                      .run({spec})
                      .toJson(false);
    }
    return json[0] == json[1];
}

void
appendScenarios(std::string &out, const std::vector<SeedResult> &results)
{
    char buf[192];
    for (std::size_t i = 0; i < results.size(); ++i) {
        const SeedResult &r = results[i];
        std::snprintf(
            buf, sizeof(buf),
            "        {\"seed\": %" PRIu64 ", \"testRuns\": %" PRIu64
            ", \"simEvents\": %" PRIu64 ", \"seconds\": %.6f, "
            "\"testsPerSec\": %.1f}%s\n",
            r.seed, r.testRuns, r.simEvents, r.seconds,
            r.seconds > 0.0
                ? static_cast<double>(r.testRuns) / r.seconds
                : 0.0,
            i + 1 < results.size() ? "," : "");
        out += buf;
    }
}

} // namespace

int
main()
{
    const int hardware = static_cast<int>(
        std::max(1u, std::thread::hardware_concurrency()));
    int threads = static_cast<int>(mcvbench::benchThreads());
    if (threads <= 0)
        threads = 8;

    const auto budget_runs = static_cast<std::uint64_t>(
        static_cast<double>(kRunsPerSeed) * mcvbench::benchScale());

    std::vector<SeedResult> serial;
    std::vector<SeedResult> parallel;
    for (const std::uint64_t seed : kSeeds) {
        serial.push_back(runSerialPipeline(seed, budget_runs));
        const SeedResult &s = serial.back();
        std::printf("serial   seed=%-4" PRIu64 " %6" PRIu64
                    " runs  %8.3fs  %8.1f tests/s\n",
                    s.seed, s.testRuns, s.seconds,
                    s.seconds > 0.0
                        ? static_cast<double>(s.testRuns) / s.seconds
                        : 0.0);
    }
    for (const std::uint64_t seed : kSeeds) {
        parallel.push_back(
            runParallelPipeline(seed, budget_runs, threads));
        const SeedResult &p = parallel.back();
        std::printf("parallel seed=%-4" PRIu64 " %6" PRIu64
                    " runs  %8.3fs  %8.1f tests/s\n",
                    p.seed, p.testRuns, p.seconds,
                    p.seconds > 0.0
                        ? static_cast<double>(p.testRuns) / p.seconds
                        : 0.0);
    }

    const double serial_tps = aggregateTestsPerSec(serial);
    const double parallel_tps = aggregateTestsPerSec(parallel);
    const double speedup =
        serial_tps > 0.0 ? parallel_tps / serial_tps : 0.0;

    const auto gen_evals = static_cast<std::uint64_t>(
        20000.0 * mcvbench::benchScale());
    const double gen_serial = genOnlySerial(gen_evals);
    const double gen_batched = genOnlyBatched(gen_evals);
    const double gen_speedup =
        gen_serial > 0.0 ? gen_batched / gen_serial : 0.0;

    const bool identical = determinismCheck(threads);

    std::printf("\npipeline:   %.1f -> %.1f tests/s (%.2fx, %d threads, "
                "%d hardware cores)\n",
                serial_tps, parallel_tps, speedup, threads, hardware);
    std::printf("gen-only:   %.0f -> %.0f tests/s (%.2fx, slab pool + "
                "batching, single-threaded)\n",
                gen_serial, gen_batched, gen_speedup);
    std::printf("determinism: eval-threads 1 vs %d summaries %s\n",
                threads, identical ? "IDENTICAL" : "DIVERGED");

    char buf[512];
    std::string json = "{\n  \"bench\": \"gen_throughput\",\n"
                       "  \"schema\": 1,\n";
    std::snprintf(buf, sizeof(buf),
                  "  \"hardwareConcurrency\": %d,\n", hardware);
    json += buf;
    json += "  \"pipeline\": {\n    \"serial\": {\n"
            "      \"scenarios\": [\n";
    appendScenarios(json, serial);
    std::snprintf(buf, sizeof(buf),
                  "      ],\n      \"aggregateTestsPerSec\": %.1f\n"
                  "    },\n",
                  serial_tps);
    json += buf;
    std::snprintf(buf, sizeof(buf),
                  "    \"parallel\": {\n      \"islands\": %zu, "
                  "\"batch\": %zu, \"threads\": %d,\n"
                  "      \"scenarios\": [\n",
                  kIslands, kBatch, threads);
    json += buf;
    appendScenarios(json, parallel);
    std::snprintf(buf, sizeof(buf),
                  "      ],\n      \"aggregateTestsPerSec\": %.1f\n"
                  "    },\n    \"speedup\": %.3f\n  },\n",
                  parallel_tps, speedup);
    json += buf;
    std::snprintf(buf, sizeof(buf),
                  "  \"generationOnly\": {\"serialTestsPerSec\": %.0f, "
                  "\"batchedTestsPerSec\": %.0f, \"speedup\": %.3f},\n",
                  gen_serial, gen_batched, gen_speedup);
    json += buf;
    std::snprintf(buf, sizeof(buf),
                  "  \"determinism\": {\"evalThreads1VsNIdentical\": "
                  "%s}\n}\n",
                  identical ? "true" : "false");
    json += buf;

    const char *path = std::getenv("MCVERSI_BENCH_JSON");
    if (path == nullptr)
        path = "BENCH_gen.json";
    std::ofstream out(path, std::ios::binary);
    out << json;
    std::printf("wrote %s\n", path);
    return identical ? 0 : 1;
}
