/**
 * @file
 * Incremental cycle detection via dynamic topological ordering.
 *
 * The streaming checker maintains its constraint graphs online: one
 * edge insertion at a time, with the insertion that closes a cycle
 * reported immediately. This is the Pearce-Kelly algorithm (Pearce &
 * Kelly, "A Dynamic Topological Sort Algorithm for Directed Acyclic
 * Graphs", JEA 2006): the graph keeps a total order ord[] consistent
 * with the edges; an insertion u->v with ord[u] < ord[v] is a no-op on
 * the order, and one with ord[u] > ord[v] triggers two bounded DFS
 * passes over the *affected region* only -- the nodes whose order
 * indices lie between ord[v] and ord[u] -- after which the vacated
 * indices are redistributed. A cycle exists iff the forward pass
 * reaches u from v.
 *
 * Events arrive from the simulation nearly in commit order, so almost
 * every insertion takes the O(1) fast path; the affected region stays
 * small even for the out-of-order tail (store serialization lag).
 *
 * Like the batch CycleGraph, all scratch is generation-stamped and
 * capacity-preserving: a graph owned by a streaming checker and reset
 * per iteration is allocation-free in the steady state.
 *
 * For bounded-window (soak) streaming the graph additionally supports
 * node retirement and compaction. retireNode() splices a node out of
 * the graph -- every live in-neighbour gains an edge to every live
 * out-neighbour, so reachability (and therefore cycle detection) among
 * the surviving nodes is preserved exactly -- and recycles its slot
 * through a free list, keeping adj_/ord_/scratch sized to the live
 * window instead of the whole trace. compact() remaps the live nodes
 * onto a dense id prefix (capacity-preserving) and renumbers the
 * topological order densely so ord values cannot drift toward overflow
 * on multi-million-event streams.
 */

#ifndef MCVERSI_MEMCONSISTENCY_INCREMENTAL_HH
#define MCVERSI_MEMCONSISTENCY_INCREMENTAL_HH

#include <cassert>
#include <cstdint>
#include <vector>

namespace mcversi::mc {

/** DAG with incremental edge insertion and online cycle detection. */
class IncrementalGraph
{
  public:
    using Node = std::int32_t;

    /** Drop all nodes and edges, keeping every buffer's capacity. */
    void reset();

    /**
     * Add a node at the end of the topological order, reusing a
     * retired slot when one is free. Inline: this runs twice per
     * streamed event.
     */
    Node
    addNode()
    {
        ++numLive_;
        if (!freeList_.empty()) {
            // Recycled slot: retireNode() already cleared its lists.
            const Node id = freeList_.back();
            freeList_.pop_back();
            ord_[static_cast<std::size_t>(id)] = ordNext_++;
            return id;
        }
        const auto id = static_cast<Node>(numNodes_);
        if (numNodes_ == adj_.size()) {
            adj_.emplace_back();
            radj_.emplace_back();
            ord_.push_back(0);
            fwdStamp_.push_back(0);
            bwdStamp_.push_back(0);
            parent_.push_back(-1);
        } else {
            // Reused slot: stale lists from before the last reset()
            // are cleared here, right before first use.
            adj_[numNodes_].clear();
            radj_[numNodes_].clear();
        }
        ++numNodes_;
        // New and recycled nodes join at the end of the order (fresh
        // ordNext_ index): they have no edges yet, so the order stays
        // consistent.
        ord_[static_cast<std::size_t>(id)] = ordNext_++;
        return id;
    }

    /** Slots in use: the exclusive upper bound on valid node ids. */
    std::size_t numNodes() const { return numNodes_; }

    /** Nodes added and not yet retired. */
    std::size_t numLive() const { return numLive_; }

    /**
     * Insert the edge @p from -> @p to, restoring the topological
     * order. The in-order fast path (ord[from] < ord[to]) is inline;
     * self-loops and order repairs take the out-of-line slow path.
     *
     * @return true if the graph is still acyclic; false if this edge
     *         closed a cycle. After a cycle the graph is poisoned:
     *         lastCycle() holds the offending cycle and no further
     *         edges may be inserted until reset().
     */
    bool
    addEdge(Node from, Node to)
    {
        assert(!poisoned_ && "graph poisoned by an earlier cycle");
        if (from != to) {
            adj_[static_cast<std::size_t>(from)].push_back(to);
            radj_[static_cast<std::size_t>(to)].push_back(from);
            if (ord_[static_cast<std::size_t>(from)] <
                ord_[static_cast<std::size_t>(to)]) {
                return true;
            }
        }
        return addEdgeSlow(from, to);
    }

    bool hasCycle() const { return poisoned_; }

    /**
     * The cycle closed by the failing addEdge(): its node sequence in
     * edge order (first node repeated at the end is omitted), starting
     * at the target of the inserted edge.
     */
    const std::vector<Node> &lastCycle() const { return cycle_; }

    /** Successors inserted so far (diagnostics / tests). */
    const std::vector<Node> &successors(Node n) const
    {
        return adj_[static_cast<std::size_t>(n)];
    }

    /** Predecessors inserted so far (diagnostics / tests). */
    const std::vector<Node> &predecessors(Node n) const
    {
        return radj_[static_cast<std::size_t>(n)];
    }

    /**
     * Splice @p n out of the graph and recycle its slot. Every live
     * in-neighbour gains a bypass edge to every live out-neighbour, so
     * reachability -- and therefore cycle detection -- among the
     * surviving nodes is exactly preserved; cycles that would have run
     * *through* @p n can no longer be attributed to it, which is why
     * callers only retire nodes that can receive no further incoming
     * edge. Not callable on a poisoned graph.
     */
    void retireNode(Node n);

    /**
     * Remap the live nodes onto the dense id prefix [0, newCount) and
     * renumber the topological order densely. @p remap gives each old
     * id its new id, or a negative value for retired slots; it must be
     * monotone ascending on live ids (node order is preserved).
     * Capacity-preserving: no buffer shrinks, the free list empties.
     */
    void compact(const std::vector<Node> &remap, Node newCount);

  private:
    /** addEdge() slow path: self-loops and order repairs. */
    bool addEdgeSlow(Node from, Node to);

    /**
     * Restore the order after inserting u->v with ord[u] > ord[v].
     * Returns false (and extracts the cycle) if v reaches u.
     */
    bool reorder(Node u, Node v);

    bool marked(const std::vector<std::uint64_t> &stamp, Node n) const
    {
        return stamp[static_cast<std::size_t>(n)] == gen_;
    }

    std::vector<std::vector<Node>> adj_;
    /** Reverse adjacency, for the backward pass of reorder(). */
    std::vector<std::vector<Node>> radj_;
    /** Node -> index in the maintained topological order. */
    std::vector<std::int32_t> ord_;
    std::size_t numNodes_ = 0;
    std::size_t numLive_ = 0;
    /** Next topological-order index to hand out (monotone; compact()
     *  and reset() rebase it so it cannot creep toward overflow). */
    std::int32_t ordNext_ = 0;
    /** Retired slots available for recycling. */
    std::vector<Node> freeList_;

    bool poisoned_ = false;
    std::vector<Node> cycle_;

    // Reorder scratch, generation-stamped so reset() is O(1).
    std::uint64_t gen_ = 0;
    std::vector<std::uint64_t> fwdStamp_;
    std::vector<std::uint64_t> bwdStamp_;
    /** DFS parent of each forward-visited node (cycle extraction). */
    std::vector<Node> parent_;
    std::vector<Node> stack_;
    std::vector<Node> fwd_;
    std::vector<Node> bwd_;
    std::vector<std::int32_t> idxScratch_;
};

} // namespace mcversi::mc

#endif // MCVERSI_MEMCONSISTENCY_INCREMENTAL_HH
