/** @file Unit tests for the test (chromosome) representation. */

#include <gtest/gtest.h>

#include "gp/test.hh"

namespace gp = mcversi::gp;
using gp::Node;
using gp::Op;
using gp::OpKind;
using gp::staticEventId;
using gp::staticEventNode;
using GpTest = gp::Test;

namespace {

GpTest
makeTest()
{
    std::vector<Node> nodes;
    nodes.push_back({0, Op{OpKind::Read, 0x10}});
    nodes.push_back({1, Op{OpKind::Write, 0x20}});
    nodes.push_back({0, Op{OpKind::Delay}});
    nodes.push_back({1, Op{OpKind::ReadModifyWrite, 0x10}});
    nodes.push_back({2, Op{OpKind::CacheFlush, 0x30}});
    return GpTest(std::move(nodes));
}

} // namespace

TEST(TestRepr, ThreadSlotsPreserveOrder)
{
    GpTest t = makeTest();
    gp::ThreadSlots slots;
    t.threadSlots(4, slots);
    ASSERT_EQ(slots.numThreads(), 4);
    auto asVec = [&](int pid) {
        const auto s = slots.thread(pid);
        return std::vector<std::size_t>(s.begin(), s.end());
    };
    EXPECT_EQ(asVec(0), (std::vector<std::size_t>{0, 2}));
    EXPECT_EQ(asVec(1), (std::vector<std::size_t>{1, 3}));
    EXPECT_EQ(asVec(2), (std::vector<std::size_t>{4}));
    EXPECT_TRUE(slots.thread(3).empty());
}

TEST(TestRepr, ThreadSlotsScratchIsReusedAcrossCalls)
{
    GpTest t = makeTest();
    gp::ThreadSlots slots;
    t.threadSlots(4, slots);
    const auto first = std::vector<std::size_t>(slots.thread(1).begin(),
                                                slots.thread(1).end());
    // Refill with a different thread count, then back: same contents.
    t.threadSlots(2, slots);
    EXPECT_EQ(slots.numThreads(), 2);
    t.threadSlots(4, slots);
    EXPECT_EQ(std::vector<std::size_t>(slots.thread(1).begin(),
                                       slots.thread(1).end()),
              first);
}

TEST(TestRepr, CountMemOps)
{
    EXPECT_EQ(makeTest().countMemOps(), 4u);
}

TEST(TestRepr, CountEvents)
{
    // Read 1 + Write 1 + RMW 2 = 4 (Delay and Flush produce none).
    EXPECT_EQ(makeTest().countEvents(), 4u);
}

TEST(TestRepr, UsedAddrs)
{
    const mcversi::AddrSet addrs = makeTest().usedAddrs();
    EXPECT_EQ(addrs.size(), 3u);
    EXPECT_TRUE(addrs.count(0x10));
    EXPECT_TRUE(addrs.count(0x20));
    EXPECT_TRUE(addrs.count(0x30));
    // Flat sorted set: iteration order is ascending and deterministic.
    EXPECT_EQ(addrs[0], 0x10u);
    EXPECT_EQ(addrs[1], 0x20u);
    EXPECT_EQ(addrs[2], 0x30u);
}

TEST(TestRepr, FingerprintSensitivity)
{
    GpTest a = makeTest();
    GpTest b = makeTest();
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
    b.node(0).op.addr = 0x99;
    EXPECT_NE(a.fingerprint(), b.fingerprint());
    GpTest c = makeTest();
    c.node(0).pid = 3;
    EXPECT_NE(a.fingerprint(), c.fingerprint());
}

TEST(TestRepr, StaticEventIdEncoding)
{
    EXPECT_EQ(staticEventId(5, 0), 10);
    EXPECT_EQ(staticEventId(5, 1), 11);
    EXPECT_EQ(staticEventNode(10), 5u);
    EXPECT_EQ(staticEventNode(11), 5u);
}

TEST(TestRepr, EmptyTest)
{
    GpTest t;
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.countMemOps(), 0u);
    EXPECT_TRUE(t.usedAddrs().empty());
}
