/**
 * @file
 * Small ASCII string helpers shared by the name registries (bug names,
 * generator names, spec keys), which all match case-insensitively.
 */

#ifndef MCVERSI_COMMON_STRINGS_HH
#define MCVERSI_COMMON_STRINGS_HH

#include <algorithm>
#include <cctype>
#include <string>

namespace mcversi {

/** ASCII-lowercased copy of @p s. */
inline std::string
asciiLowered(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return s;
}

/** Case-insensitive ASCII equality. */
inline bool
asciiIEquals(const std::string &a, const std::string &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (std::tolower(static_cast<unsigned char>(a[i])) !=
            std::tolower(static_cast<unsigned char>(b[i]))) {
            return false;
        }
    }
    return true;
}

} // namespace mcversi

#endif // MCVERSI_COMMON_STRINGS_HH
