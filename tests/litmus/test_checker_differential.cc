/**
 * @file
 * Differential test for the flattened witness/checker hot path.
 *
 * A reference checker re-implements the pre-flattening algorithm over
 * the witness's *materialized* relations (rf()/co() Relations,
 * computeFrImmediate(), hash-map po-loc tracking) and plain adjacency
 * lists. The production Checker must agree with it on the verdict kind
 * for:
 *
 *   - all 38 entries of the generated x86-TSO golden litmus suite
 *     (forbidden outcome and sequential execution of each), and
 *   - seeded randomized witnesses, both consistent-by-construction and
 *     randomly corrupted ones (stale reads, fabricated values, co
 *     forks), covering every CheckResult kind;
 *
 * and every cycle the production checker reports must be a genuine
 * cycle of the reference constraint graph (consecutive cycle events
 * connected, possibly through virtual fence nodes).
 */

#include <gtest/gtest.h>

#include <deque>
#include <unordered_map>
#include <vector>

#include "common/rng.hh"
#include "litmus/suites.hh"
#include "memconsistency/checker.hh"
#include "witness_synthesis.hh"

using namespace mcversi;
using namespace mcversi::litmus;

namespace {

/**
 * The pre-flattening checker algorithm: fresh graphs per phase, edges
 * drawn from the witness's materialized Relations, per-thread hash maps
 * for po-loc, computeFrImmediate() materialized per phase.
 */
class ReferenceChecker
{
  public:
    explicit ReferenceChecker(std::unique_ptr<mc::Architecture> arch)
        : arch_(std::move(arch))
    {
    }

    mc::CheckResult
    check(mc::ExecWitness &ew) const
    {
        ew.finalize();
        if (ew.anomaly() != mc::WitnessAnomaly::None) {
            mc::CheckResult res;
            res.kind = mc::CheckResult::Kind::WitnessAnomaly;
            res.message = ew.anomalyInfo();
            return res;
        }
        if (auto res = checkCycle(ew, /*uniproc=*/true); !res.ok())
            return res;
        if (auto res = checkAtomicity(ew); !res.ok())
            return res;
        return checkCycle(ew, /*uniproc=*/false);
    }

    /** True if @p to is reachable from @p from in the phase graph. */
    bool
    reachable(mc::ExecWitness &ew, bool uniproc,
              mc::CycleGraph::Node from, mc::CycleGraph::Node to) const
    {
        const mc::CycleGraph g = buildGraph(ew, uniproc);
        std::vector<bool> seen(g.numNodes(), false);
        std::deque<mc::CycleGraph::Node> queue{from};
        while (!queue.empty()) {
            const auto cur = queue.front();
            queue.pop_front();
            for (const auto nxt : g.successors(cur)) {
                if (nxt == to)
                    return true;
                if (!seen[static_cast<std::size_t>(nxt)]) {
                    seen[static_cast<std::size_t>(nxt)] = true;
                    queue.push_back(nxt);
                }
            }
        }
        return false;
    }

  private:
    mc::CycleGraph
    buildGraph(const mc::ExecWitness &ew, bool uniproc) const
    {
        mc::CycleGraph g(ew.numEvents());
        if (uniproc) {
            for (Pid pid : ew.threads()) {
                std::unordered_map<Addr, mc::EventId> last;
                for (mc::EventId id : ew.threadEvents(pid)) {
                    const Addr a = ew.event(id).addr;
                    if (auto it = last.find(a); it != last.end())
                        g.addEdge(it->second, id);
                    last[a] = id;
                }
            }
        } else {
            for (Pid pid : ew.threads())
                arch_->addProgramOrderEdges(ew, ew.threadEvents(pid), g);
        }
        ew.rf().forEach([&](mc::EventId from, mc::Relation::SuccRange s) {
            const mc::Event &w = ew.event(from);
            for (mc::EventId to : s) {
                if (uniproc || arch_->ghbIncludesRfi() || w.isInit() ||
                    w.iiid.pid != ew.event(to).iiid.pid) {
                    g.addEdge(from, to);
                }
            }
        });
        ew.co().forEach([&](mc::EventId from, mc::Relation::SuccRange s) {
            for (mc::EventId to : s)
                g.addEdge(from, to);
        });
        const mc::Relation fr = ew.computeFrImmediate();
        fr.forEach([&](mc::EventId from, mc::Relation::SuccRange s) {
            for (mc::EventId to : s)
                g.addEdge(from, to);
        });
        return g;
    }

    mc::CheckResult
    checkCycle(const mc::ExecWitness &ew, bool uniproc) const
    {
        const mc::CycleGraph g = buildGraph(ew, uniproc);
        if (g.findCycle()) {
            mc::CheckResult res;
            res.kind = uniproc ? mc::CheckResult::Kind::UniprocViolation
                               : mc::CheckResult::Kind::GhbViolation;
            return res;
        }
        return {};
    }

    mc::CheckResult
    checkAtomicity(const mc::ExecWitness &ew) const
    {
        for (const auto &[r, w] : ew.rmwPairs()) {
            const mc::EventId src = ew.rfSource(r);
            if (src == mc::kNoEvent)
                continue;
            if (ew.coPredecessor(w) != src) {
                mc::CheckResult res;
                res.kind = mc::CheckResult::Kind::AtomicityViolation;
                return res;
            }
        }
        return {};
    }

    std::unique_ptr<mc::Architecture> arch_;
};

/**
 * Compare production and reference verdicts on @p ew; if the production
 * checker reports a cycle, validate it against the reference graph.
 */
void
expectAgreement(mc::ExecWitness &ew, const std::string &label)
{
    for (const bool use_tso : {true, false}) {
        auto make_arch = [use_tso]() {
            return use_tso ? mc::makeTso() : mc::makeSc();
        };
        const mc::Checker prod(make_arch());
        const ReferenceChecker ref(make_arch());

        const mc::CheckResult p = prod.check(ew);
        const mc::CheckResult r = ref.check(ew);
        ASSERT_EQ(p.kind, r.kind)
            << label << (use_tso ? " [TSO]" : " [SC]")
            << ": production='" << mc::CheckResult::kindName(p.kind)
            << "' reference='" << mc::CheckResult::kindName(r.kind)
            << "'\n"
            << p.message;

        // A reported cycle must be a genuine cycle of the violated
        // constraint: each consecutive event pair (including the wrap)
        // connected in the reference graph, possibly through fences.
        if (p.kind == mc::CheckResult::Kind::UniprocViolation ||
            p.kind == mc::CheckResult::Kind::GhbViolation) {
            const bool uniproc =
                p.kind == mc::CheckResult::Kind::UniprocViolation;
            ASSERT_FALSE(p.cycle.empty()) << label;
            for (std::size_t i = 0; i < p.cycle.size(); ++i) {
                const auto from = p.cycle[i];
                const auto to = p.cycle[(i + 1) % p.cycle.size()];
                EXPECT_TRUE(ref.reachable(ew, uniproc, from, to))
                    << label << ": reported cycle edge "
                    << ew.event(from).toString() << " -> "
                    << ew.event(to).toString()
                    << " is not in the reference constraint graph";
            }
        }
    }
}

/**
 * Random witness: interleave threads over a simulated memory. With
 * @p corrupt, a fraction of reads observe a random (possibly stale or
 * fabricated) value and a fraction of writes claim a random overwritten
 * value, producing uniproc/ghb/atomicity violations and anomalies.
 */
mc::ExecWitness
randomWitness(Rng &rng, int threads, int ops, int addrs, bool corrupt)
{
    mc::ExecWitness ew;
    std::vector<WriteVal> memory(static_cast<std::size_t>(addrs),
                                 kInitVal);
    std::vector<std::int32_t> poi(static_cast<std::size_t>(threads), 0);
    std::vector<WriteVal> produced{kInitVal};
    WriteVal next = 1;

    for (int i = 0; i < ops; ++i) {
        const Pid pid = static_cast<Pid>(
            rng.below(static_cast<std::uint64_t>(threads)));
        const auto ai = static_cast<std::size_t>(
            rng.below(static_cast<std::uint64_t>(addrs)));
        const Addr addr = 0x100 + 64 * static_cast<Addr>(ai);
        const std::int32_t p = poi[static_cast<std::size_t>(pid)]++;
        const double roll = rng.uniform();

        auto read_val = [&]() {
            if (corrupt && rng.boolWithProb(0.15)) {
                // Stale / foreign / fabricated value.
                if (rng.boolWithProb(0.2))
                    return static_cast<WriteVal>(90000 + rng.below(64));
                return produced[static_cast<std::size_t>(
                    rng.below(produced.size()))];
            }
            return memory[ai];
        };
        auto overwritten_val = [&]() {
            if (corrupt && rng.boolWithProb(0.1)) {
                return produced[static_cast<std::size_t>(
                    rng.below(produced.size()))];
            }
            return memory[ai];
        };

        if (roll < 0.5) {
            ew.recordRead(pid, p, addr, read_val());
        } else if (roll < 0.85) {
            const WriteVal v = next++;
            ew.recordWrite(pid, p, addr, v, overwritten_val());
            memory[ai] = v;
            produced.push_back(v);
        } else {
            const WriteVal v = next++;
            ew.recordRead(pid, p, addr, read_val(), /*rmw=*/true);
            ew.recordWrite(pid, p, addr, v, overwritten_val(),
                           /*rmw=*/true);
            memory[ai] = v;
            produced.push_back(v);
        }
    }
    return ew;
}

} // namespace

TEST(CheckerDifferential, GoldenLitmusSuiteForbiddenAndSequential)
{
    const std::vector<LitmusTest> suite = x86TsoSuite();
    ASSERT_EQ(suite.size(), kX86SuiteSize);
    for (const LitmusTest &t : suite) {
        {
            mc::ExecWitness ew = testsupport::forbiddenWitness(t);
            expectAgreement(ew, t.name + " (forbidden)");
        }
        {
            mc::ExecWitness ew = testsupport::sequentialWitness(t);
            expectAgreement(ew, t.name + " (sequential)");
        }
    }
}

TEST(CheckerDifferential, RandomConsistentWitnesses)
{
    Rng rng(0xd1ff01);
    for (int i = 0; i < 60; ++i) {
        const int threads = 2 + static_cast<int>(rng.below(4));
        const int ops = 20 + static_cast<int>(rng.below(120));
        const int addrs = 1 + static_cast<int>(rng.below(6));
        mc::ExecWitness ew =
            randomWitness(rng, threads, ops, addrs, /*corrupt=*/false);
        expectAgreement(ew, "consistent witness #" + std::to_string(i));
    }
}

TEST(CheckerDifferential, RandomCorruptedWitnesses)
{
    Rng rng(0xd1ff02);
    int violations = 0;
    for (int i = 0; i < 120; ++i) {
        const int threads = 2 + static_cast<int>(rng.below(4));
        const int ops = 20 + static_cast<int>(rng.below(80));
        const int addrs = 1 + static_cast<int>(rng.below(4));
        mc::ExecWitness ew =
            randomWitness(rng, threads, ops, addrs, /*corrupt=*/true);
        {
            const mc::Checker tso(mc::makeTso());
            if (!tso.check(ew).ok())
                ++violations;
        }
        expectAgreement(ew, "corrupted witness #" + std::to_string(i));
    }
    // The corruption rates must actually exercise the violation paths.
    EXPECT_GT(violations, 20);
}
