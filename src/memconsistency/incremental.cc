#include "memconsistency/incremental.hh"

#include <algorithm>
#include <cassert>

namespace mcversi::mc {

void
IncrementalGraph::reset()
{
    // Stale adjacency lists are NOT cleared here: addNode()'s reuse
    // branch clears each list right before handing the node out again,
    // so reset() stays O(1) no matter how large the last graph was.
    // ord_ is slot-indexed and overwritten on reuse, so it stays too.
    numNodes_ = 0;
    numLive_ = 0;
    ordNext_ = 0;
    freeList_.clear();
    poisoned_ = false;
    cycle_.clear();
}

void
IncrementalGraph::retireNode(Node n)
{
    assert(!poisoned_ && "cannot retire from a poisoned graph");
    const auto un = static_cast<std::size_t>(n);

    // Dedupe the live out-/in-neighbours (addEdge() tolerates duplicate
    // edges, so the raw lists may repeat) into the DFS scratch vectors.
    ++gen_;
    fwd_.clear();
    for (const Node s : adj_[un]) {
        if (!marked(fwdStamp_, s)) {
            fwdStamp_[static_cast<std::size_t>(s)] = gen_;
            fwd_.push_back(s);
        }
    }
    bwd_.clear();
    for (const Node p : radj_[un]) {
        if (!marked(bwdStamp_, p)) {
            bwdStamp_[static_cast<std::size_t>(p)] = gen_;
            bwd_.push_back(p);
        }
    }

    // Splice n out of its neighbours' lists (every duplicate copy).
    for (const Node s : fwd_)
        std::erase(radj_[static_cast<std::size_t>(s)], n);
    for (const Node p : bwd_)
        std::erase(adj_[static_cast<std::size_t>(p)], n);

    // Bypass edges: p -> n -> s becomes p -> s, preserving reachability
    // among the survivors. ord[p] < ord[n] < ord[s] already holds, so
    // every bypass is in-order -- no reorder, no possible cycle.
    for (const Node p : bwd_) {
        const auto up = static_cast<std::size_t>(p);
        for (const Node s : fwd_) {
            assert(ord_[up] < ord_[static_cast<std::size_t>(s)]);
            adj_[up].push_back(s);
            radj_[static_cast<std::size_t>(s)].push_back(p);
        }
    }

    adj_[un].clear();
    radj_[un].clear();
    freeList_.push_back(n);
    --numLive_;
}

void
IncrementalGraph::compact(const std::vector<Node> &remap, Node newCount)
{
    assert(!poisoned_ && "cannot compact a poisoned graph");
    assert(remap.size() >= numNodes_);
    assert(static_cast<std::size_t>(newCount) == numLive_);

    // Move live slots down onto the dense prefix. remap is monotone
    // ascending on live ids, so by the time slot remap[old] is written
    // its original occupant (if it was live) has already moved out;
    // swapping (not moving) keeps every vector's capacity in
    // circulation for the allocation-free steady state.
    for (std::size_t old = 0; old < numNodes_; ++old) {
        const Node nw = remap[old];
        if (nw < 0)
            continue;
        const auto unw = static_cast<std::size_t>(nw);
        assert(unw <= old);
        if (unw != old) {
            std::swap(adj_[unw], adj_[old]);
            std::swap(radj_[unw], radj_[old]);
            ord_[unw] = ord_[old];
        }
    }

    // Rewrite edge targets into the new id space. Retired nodes were
    // purged from every list at retireNode(), so all targets are live.
    for (std::size_t i = 0; i < static_cast<std::size_t>(newCount); ++i) {
        for (Node &t : adj_[i]) {
            assert(remap[static_cast<std::size_t>(t)] >= 0);
            t = remap[static_cast<std::size_t>(t)];
        }
        for (Node &t : radj_[i])
            t = remap[static_cast<std::size_t>(t)];
    }

    // Renumber the order densely: sort live ids by their (gappy) ord
    // value, then assign ranks. Rebases ordNext_ away from overflow.
    fwd_.clear();
    for (Node i = 0; i < newCount; ++i)
        fwd_.push_back(i);
    std::sort(fwd_.begin(), fwd_.end(), [this](Node a, Node b) {
        return ord_[static_cast<std::size_t>(a)] <
               ord_[static_cast<std::size_t>(b)];
    });
    for (std::size_t rank = 0; rank < fwd_.size(); ++rank) {
        ord_[static_cast<std::size_t>(fwd_[rank])] =
            static_cast<std::int32_t>(rank);
    }

    numNodes_ = static_cast<std::size_t>(newCount);
    freeList_.clear();
    ordNext_ = newCount;
}

bool
IncrementalGraph::addEdgeSlow(Node from, Node to)
{
    if (from == to) {
        poisoned_ = true;
        cycle_.assign(1, from);
        return false;
    }
    // The inline fast path already appended the edge to adj_/radj_.
    if (!reorder(from, to)) {
        poisoned_ = true;
        return false;
    }
    return true;
}

bool
IncrementalGraph::reorder(Node u, Node v)
{
    const std::int32_t lb = ord_[static_cast<std::size_t>(v)];
    const std::int32_t ub = ord_[static_cast<std::size_t>(u)];
    ++gen_;

    // Forward pass: descendants of v within the affected region
    // (ord <= ord[u]). In a valid pre-insertion order every ancestor
    // of u sits below ord[u], so if any path v => u exists the pass
    // finds it -- reaching u means the new edge closes a cycle.
    fwd_.clear();
    stack_.clear();
    fwdStamp_[static_cast<std::size_t>(v)] = gen_;
    stack_.push_back(v);
    while (!stack_.empty()) {
        const Node n = stack_.back();
        stack_.pop_back();
        fwd_.push_back(n);
        for (const Node s : adj_[static_cast<std::size_t>(n)]) {
            if (ord_[static_cast<std::size_t>(s)] > ub ||
                marked(fwdStamp_, s)) {
                continue;
            }
            parent_[static_cast<std::size_t>(s)] = n;
            if (s == u) {
                // Cycle: v -> ... -> u plus the inserted edge u -> v.
                cycle_.clear();
                for (Node c = u; c != v;
                     c = parent_[static_cast<std::size_t>(c)]) {
                    cycle_.push_back(c);
                }
                cycle_.push_back(v);
                std::reverse(cycle_.begin(), cycle_.end());
                return false;
            }
            fwdStamp_[static_cast<std::size_t>(s)] = gen_;
            stack_.push_back(s);
        }
    }

    // Backward pass: ancestors of u within the region (ord >= ord[v]).
    bwd_.clear();
    stack_.clear();
    bwdStamp_[static_cast<std::size_t>(u)] = gen_;
    stack_.push_back(u);
    while (!stack_.empty()) {
        const Node n = stack_.back();
        stack_.pop_back();
        bwd_.push_back(n);
        for (const Node p : radj_[static_cast<std::size_t>(n)]) {
            if (ord_[static_cast<std::size_t>(p)] < lb ||
                marked(bwdStamp_, p)) {
                continue;
            }
            bwdStamp_[static_cast<std::size_t>(p)] = gen_;
            stack_.push_back(p);
        }
    }

    // Redistribute: the ancestors of u (in order), then the
    // descendants of v (in order), onto the sorted union of the
    // vacated indices. The two sets are disjoint (an overlap would be
    // a v => x => u path, caught above).
    auto by_ord = [this](Node a, Node b) {
        return ord_[static_cast<std::size_t>(a)] <
               ord_[static_cast<std::size_t>(b)];
    };
    std::sort(bwd_.begin(), bwd_.end(), by_ord);
    std::sort(fwd_.begin(), fwd_.end(), by_ord);

    idxScratch_.clear();
    for (const Node n : bwd_)
        idxScratch_.push_back(ord_[static_cast<std::size_t>(n)]);
    for (const Node n : fwd_)
        idxScratch_.push_back(ord_[static_cast<std::size_t>(n)]);
    std::sort(idxScratch_.begin(), idxScratch_.end());

    std::size_t i = 0;
    for (const Node n : bwd_)
        ord_[static_cast<std::size_t>(n)] = idxScratch_[i++];
    for (const Node n : fwd_)
        ord_[static_cast<std::size_t>(n)] = idxScratch_[i++];
    return true;
}

} // namespace mcversi::mc
