/**
 * @file
 * mcversi_campaign: CLI driver for the Campaign API.
 *
 * Describes a campaign matrix with key=value arguments, runs it on a
 * worker pool, prints a per-campaign table plus totals, and optionally
 * writes the machine-readable JSON/CSV summary.
 *
 * Matrix keys (lists are ';'-separated since bug names contain commas):
 *   bugs=<name;...|all|mesi|tsocc>   generators=<name;...|all>
 *   models=<name;...|all>            seeds=<lo..hi|s;s;...>
 * Runner keys:
 *   threads=N (>= 1; omit for hardware)  json=FILE  csv=FILE  quiet=1
 * Every other key=value is a CampaignSpec setting (see --help).
 *
 * Example (the CI datapoint):
 *   mcversi_campaign "bugs=MESI,LQ+IS,Inv;SQ+no-FIFO" \
 *       "generators=McVerSi-ALL;McVerSi-RAND" seeds=1..2 \
 *       test-size=96 iterations=2 mem-size=1024 population=16 \
 *       max-runs=60 threads=4 json=campaign.json
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "mcversi.hh"

using namespace mcversi;

namespace {

void
printUsage()
{
    std::cout <<
        "usage: mcversi_campaign [key=value ...]\n"
        "\n"
        "Matrix keys (lists use ';' separators):\n"
        "  bugs=<name;...|all|mesi|tsocc>  bug axis (default: base bug)\n"
        "  generators=<name;...|all>       generator axis\n"
        "  models=<name;...|all>           consistency-model axis\n"
        "  seeds=<lo..hi|s1;s2;...>        seed axis\n"
        "\n"
        "Runner keys:\n"
        "  threads=N      worker threads across specs, N >= 1 (omit\n"
        "                 the key for hardware concurrency)\n"
        "  eval-threads=N worker threads inside one spec's batch\n"
        "                 evaluation, N >= 1 (default 1; summaries\n"
        "                 are byte-identical for any value)\n"
        "  json=FILE      write the JSON summary\n"
        "  csv=FILE       write the CSV summary\n"
        "  quiet=1        suppress per-campaign progress lines\n"
        "\n"
        "Campaign spec keys (defaults in parentheses):\n"
        "  bug=NAME (none)            generator=NAME (McVerSi-ALL)\n"
        "  seed=N (1)                 protocol=auto|mesi|tsocc (auto)\n"
        "  model=NAME (tso)           consistency model the checker\n"
        "                             verifies against (--list-models)\n"
        "  test-size=N (256)          iterations=N (4)\n"
        "  mem-size=N[k] (8192)       stride=N (16)\n"
        "  guest-threads=N (8)        population=N (50, per island)\n"
        "  islands=N (1)              migration=N evals (256, 0 = off)\n"
        "  batch=N (1)                \n"
        "  max-runs=N (1000)          max-seconds=X (0 = unlimited)\n"
        "  litmus-iterations=N (12)   record-ndt=0|1 (0)\n"
        "  check-cache=N[k]|off (4096)  verdict-cache entries per\n"
        "                             checker (collective checking)\n"
        "\n"
        "islands>1 or batch>1 selects the batched multi-lane harness:\n"
        "one simulation lane per island, eval-threads workers.\n"
        "\n"
        "Flags: --help, --list-bugs, --list-generators, --list-models\n";
}

void
listBugs()
{
    std::printf("%-24s %-8s %s\n", "Name", "Protocol", "Real");
    for (const sim::BugInfo &info : sim::allBugs()) {
        const char *kind =
            info.protocol == sim::ProtocolKind::Mesi    ? "MESI"
            : info.protocol == sim::ProtocolKind::Tsocc ? "TSO-CC"
                                                        : "any";
        std::printf("%-24s %-8s %s\n", info.name, kind,
                    info.real ? "*" : "");
    }
}

void
listGenerators()
{
    for (const std::string &name :
         campaign::SourceRegistry::instance().names()) {
        std::cout << name << "\n";
    }
}

void
listModels()
{
    for (const std::string &name : mc::modelNames())
        std::cout << name << "\n";
}

/** Resolve a models= token: "all" => every registered model. */
std::vector<std::string>
resolveModelList(const std::string &token)
{
    if (token == "all")
        return mc::modelNames();
    return campaign::splitList(token);
}

bool
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary);
    out << content;
    if (!out) {
        std::cerr << "error: cannot write " << path << "\n";
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    campaign::CampaignMatrix matrix;
    int threads = 0;
    int eval_threads = 1;
    bool quiet = false;
    std::string json_path;
    std::string csv_path;

    try {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--help" || arg == "-h") {
                printUsage();
                return 0;
            }
            if (arg == "--list-bugs") {
                listBugs();
                return 0;
            }
            if (arg == "--list-generators") {
                listGenerators();
                return 0;
            }
            if (arg == "--list-models") {
                listModels();
                return 0;
            }
            const std::size_t eq = arg.find('=');
            const std::string key = arg.substr(0, eq);
            const std::string value =
                eq == std::string::npos ? "" : arg.substr(eq + 1);
            if (key == "bugs") {
                matrix.bugs = campaign::resolveBugList(value);
            } else if (key == "generators") {
                matrix.generators =
                    campaign::resolveGeneratorList(value);
            } else if (key == "models") {
                matrix.models = resolveModelList(value);
            } else if (key == "seeds") {
                matrix.seeds = campaign::parseSeedList(value);
            } else if (key == "threads") {
                threads = campaign::parseThreadCount(key, value);
            } else if (key == "eval-threads") {
                eval_threads = campaign::parseThreadCount(key, value);
            } else if (key == "json") {
                json_path = value;
            } else if (key == "csv") {
                csv_path = value;
            } else if (key == "quiet") {
                quiet = value != "0";
            } else {
                matrix.base.set(arg);
            }
        }
    } catch (const std::exception &e) {
        std::cerr << "error: " << e.what() << "\n\n";
        printUsage();
        return 1;
    }

    const std::vector<campaign::CampaignSpec> specs = matrix.expand();
    for (const campaign::CampaignSpec &spec : specs) {
        try {
            spec.validate();
        } catch (const std::exception &e) {
            std::cerr << "error: " << e.what() << "\n";
            return 1;
        }
    }

    campaign::CampaignRunner::Options options;
    options.threads = threads;
    options.evalThreads = eval_threads;
    if (!quiet) {
        options.onResult = [](const campaign::CampaignResult &r,
                              std::size_t done, std::size_t total) {
            std::fprintf(stderr, "[%zu/%zu] %s %s %s seed=%llu: %s\n",
                         done, total, r.spec.bug.c_str(),
                         r.spec.generator.c_str(), r.spec.model.c_str(),
                         static_cast<unsigned long long>(r.spec.seed),
                         !r.ok() ? "ERROR"
                         : r.harness.bugFound
                             ? "bug found"
                             : "no bug");
        };
    }

    const campaign::CampaignRunner runner(options);
    const campaign::CampaignSummary summary = runner.run(specs);

    std::printf("%-24s %-16s %-6s %-8s %-6s %-10s %-12s %s\n", "Bug",
                "Generator", "Model", "Seed", "Found", "Runs(bug)",
                "Coverage", "Status");
    for (const campaign::CampaignResult &r : summary.results) {
        char runs[24];
        if (r.harness.bugFound) {
            std::snprintf(runs, sizeof(runs), "%llu",
                          static_cast<unsigned long long>(
                              r.harness.testRunsToBug));
        } else {
            std::snprintf(runs, sizeof(runs), "-");
        }
        char coverage[16];
        std::snprintf(coverage, sizeof(coverage), "%.1f%%",
                      100.0 * r.protocolCoverage);
        std::printf("%-24s %-16s %-6s %-8llu %-6s %-10s %-12s %s\n",
                    r.spec.bug.c_str(), r.spec.generator.c_str(),
                    r.spec.model.c_str(),
                    static_cast<unsigned long long>(r.spec.seed),
                    r.harness.bugFound ? "yes" : "no", runs, coverage,
                    r.ok() ? "ok" : r.error.c_str());
    }
    const double wall = summary.totalWallSeconds();
    std::printf("\n%zu campaigns, %zu bugs found, %zu errors, "
                "%llu test-runs, %.1f s total sim wall-clock "
                "(%.1f tests/s aggregate)\n",
                summary.campaigns(), summary.bugsFound(),
                summary.errors(),
                static_cast<unsigned long long>(summary.totalTestRuns()),
                wall,
                wall > 0.0
                    ? static_cast<double>(summary.totalTestRuns()) / wall
                    : 0.0);

    bool files_ok = true;
    if (!json_path.empty())
        files_ok &= writeFile(json_path, summary.toJson());
    if (!csv_path.empty())
        files_ok &= writeFile(csv_path, summary.toCsv());
    if (!files_ok)
        return 1;
    return summary.errors() == 0 ? 0 : 1;
}
