#include "gp/ndmetrics.hh"

// NdAccumulator is header-only; this translation unit anchors the
// component in the build and hosts future out-of-line additions.
