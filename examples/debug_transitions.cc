// Temporary diagnostic: transition frequencies under a bug config.
#include <iostream>
#include <string>

#include "mcversi.hh"

using namespace mcversi;

int
main(int argc, char **argv)
{
    const std::string bug_name = argc > 1 ? argv[1] : "MESI,LQ+M,Inv";
    const std::uint64_t runs =
        argc > 2 ? std::strtoull(argv[2], nullptr, 0) : 100;

    host::VerificationHarness::Params params;
    params.system.bug = sim::bugByName(bug_name);
    params.system.seed = 3;
    params.gen.testSize = 256;
    params.gen.iterations = 4;
    params.gen.memSize = 8 * 1024;
    params.workload.iterations = 4;
    params.recordNdt = false;

    host::RandomSource source(params.gen, 3);
    host::VerificationHarness harness(params, source);
    host::Budget budget;
    budget.maxTestRuns = runs;
    auto result = harness.run(budget);
    std::cout << "bugFound=" << result.bugFound << " runs="
              << result.testRuns << "\n";

    auto &cov = harness.system().coverage();
    for (std::uint32_t id = 0; id < cov.numTransitions(); ++id) {
        std::cout << cov.name(id) << " = " << cov.counts()[id] << "\n";
    }
    std::uint64_t squashes = 0;
    for (Pid p = 0; p < 8; ++p)
        squashes += harness.system().core(p).squashes();
    std::cout << "total squashes = " << squashes << "\n";
    return 0;
}
