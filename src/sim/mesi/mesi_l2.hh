/**
 * @file
 * Two-level MESI protocol: shared L2 tile (directory).
 *
 * Banked NUCA L2 (Table 2: 8 tiles); each tile is the directory/home
 * for the lines it caches and is inclusive of the L1s. Exclusive grants
 * (GETX, upgrades, E grants) block the line until the new owner
 * unblocks; shared (GETS) grants from SS are non-blocking, which is what
 * lets an invalidation from a subsequent GETX overtake the data response
 * in the network and exercise the L1's IS_I window.
 *
 * Replacement of an owned (MT) line recalls it from the owner; the
 * racing owner writeback (PUTX) paths host two of the §5.3 bugs:
 *   - MESI+PUTX-Race: (MT, PUTX-from-non-owner) removed from the table,
 *     reproducing Ruby's "invalid transition" crash.
 *   - MESI+Replace-Race: a dirty PUTX racing the recall of a
 *     clean-granted block is treated as clean and never written back.
 */

#ifndef MCVERSI_SIM_MESI_MESI_L2_HH
#define MCVERSI_SIM_MESI_MESI_L2_HH

#include <deque>
#include <unordered_map>

#include "common/rng.hh"
#include "sim/cache_array.hh"
#include "sim/config.hh"
#include "sim/eventq.hh"
#include "sim/network.hh"
#include "sim/transition_table.hh"

namespace mcversi::sim {

/** One shared L2 tile with integrated directory state. */
class MesiL2 : public MsgHandler
{
  public:
    enum State : std::uint8_t {
        StNP,
        StSS,    ///< cached, sharer set (possibly empty), dirty flag
        StMT,    ///< one L1 owner (granted E or M)
        StISS,   ///< memory fetch for GETS
        StIMM,   ///< memory fetch for GETX
        StB_MT,  ///< exclusive grant sent, awaiting Unblock
        StMT_SB, ///< FwdGETS sent to owner, awaiting its data
        StSS_I,  ///< side buffer: evicting, collecting InvAcks
        StMT_I,  ///< side buffer: evicting, recalling from owner
        NumStates,
    };

    enum Event : std::uint8_t {
        EvGETS,
        EvGETX,
        EvUpgradeSharer,
        EvUpgradeNonSharer,
        EvPutsSharer,
        EvPutsStale,
        EvPutxOwner,
        EvPutxSharer,
        EvPutxNonOwner,
        EvUnblock,
        EvWbDataOwner,
        EvRecallData,
        EvRecallAckNoData,
        EvInvAckIn,
        EvMemData,
        EvReplacement,
        NumEvents,
    };

    MesiL2(int tile, const SystemConfig &cfg, EventQueue &eq, Network &net,
           TransitionCoverage &cov, Rng rng);

    void handleMsg(const Msg &msg) override;

    /** Host-assisted reset (quiescence only). */
    void resetAll();

    /** Introspection for tests. */
    State lineState(Addr line);

  private:
    struct EvictBuf
    {
        State state = StSS_I;
        LineData data{};
        bool dirty = false;
        bool grantedClean = false;
        int acksLeft = 0;
        bool ownerGone = false;
        Pid owner = kInitPid;
    };

    void buildTable();
    /** Stage and populate a pool-owned outbound message. */
    Msg &buildMsg(MsgType t, Addr line, NodeId dst, Vnet vnet,
                  const std::function<void(Msg &)> &fill);
    void send(MsgType t, Addr line, NodeId dst, Vnet vnet,
              const std::function<void(Msg &)> &fill = {});
    /** Delayed send: the message is injected @p delta ticks from now. */
    void sendAfter(Tick delta, MsgType t, Addr line, NodeId dst,
                   Vnet vnet, const std::function<void(Msg &)> &fill = {});
    void memWrite(Addr line, const LineData &data);

    /** True if the line is in a state that serves new requests. */
    bool serving(Addr line);
    void enqueueMsg(const Msg &msg);
    void drain(Addr line);

    /** Serve a request (GETS/GETX/UPGRADE/PUTS/PUTX) in a stable state. */
    void serveRequest(const Msg &msg);
    void serveGets(CacheEntry *entry, Addr line, Pid c);
    void serveGetx(CacheEntry *entry, Addr line, Pid c);
    bool startFetch(Addr line, Pid c, bool exclusive, const Msg &msg);
    bool evictVictim(Addr line);
    void doReplacement(CacheEntry &entry);
    /** Finish an MT_I eviction given the owner's data response. */
    void completeRecall(Addr line, EvictBuf &buf, bool msg_dirty,
                        const LineData &msg_data, bool from_putx);

    static std::uint32_t bit(Pid p) { return 1u << p; }
    static int popcount(std::uint32_t v);

    int tile_;
    const SystemConfig &cfg_;
    EventQueue &eq_;
    Network &net_;
    TransitionTable table_;
    Rng rng_;

    CacheArray array_;
    std::unordered_map<Addr, EvictBuf> evict_;
    std::unordered_map<Addr, std::deque<Msg>> waiting_;
    /**
     * Recalls completed by a racing PUTX still owe us a stale
     * RecallAckNoData from the old owner (its ack and our WbAck cross);
     * absorb them when they arrive.
     */
    std::unordered_map<Addr, int> staleRecallAcks_;
};

} // namespace mcversi::sim

#endif // MCVERSI_SIM_MESI_MESI_L2_HH
