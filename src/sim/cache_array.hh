/**
 * @file
 * Set-associative cache array with LRU replacement.
 *
 * Shared by both protocols' L1 and L2 controllers. An entry holds the
 * protocol state (as an opaque small integer), functional line data, and
 * the metadata fields either protocol needs. Transient (in-flight)
 * entries occupy ways and are never victimized; eviction-in-progress
 * state lives in the controllers' side buffers instead, freeing the way
 * immediately (TBE-style).
 *
 * reset() is O(1): instead of rewriting every entry, the array bumps a
 * generation counter and an entry is live only when its stamp matches.
 * The host-assisted reset runs between every test iteration, so this
 * turns the largest per-iteration cost of the simulator (megabytes of
 * entry clears) into a single increment. Accessors and the visitation
 * order are unchanged from the eager-clear implementation.
 */

#ifndef MCVERSI_SIM_CACHE_ARRAY_HH
#define MCVERSI_SIM_CACHE_ARRAY_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "sim/message.hh"

namespace mcversi::sim {

/** One cache line entry; meta fields are protocol-specific. */
struct CacheEntry
{
    Addr line = kNoAddr;
    std::uint8_t state = 0;
    LineData data{};
    Tick lastUse = 0;

    // MESI L2 metadata.
    std::uint32_t sharers = 0; ///< bitmask of sharer cores
    Pid owner = kInitPid;
    bool dirty = false;
    bool grantedClean = false;
    Pid pendingRequester = kInitPid;
    bool gotOwnerData = false;
    bool gotUnblock = false;

    // L1 ack counting (IM/SM).
    int acksOutstanding = 0;
    bool dataReceived = false;
    /** Fill must be consumed as invalidated-in-flight (stale). */
    bool consumeFlagged = false;

    // TSO-CC metadata.
    TsMeta meta{};
    int accessesLeft = 0;

    /** Generation stamp; the entry is dead unless it matches the
     *  array's current generation (see CacheArray::reset()). */
    std::uint64_t generation = 0;

    bool valid() const { return line != kNoAddr; }

    /** Reset all fields except the tag. */
    void
    clearMeta()
    {
        sharers = 0;
        owner = kInitPid;
        dirty = false;
        grantedClean = false;
        pendingRequester = kInitPid;
        gotOwnerData = false;
        gotUnblock = false;
        acksOutstanding = 0;
        dataReceived = false;
        consumeFlagged = false;
        meta = TsMeta{};
        accessesLeft = 0;
    }
};

/** Set-associative array of CacheEntry with LRU victimization. */
class CacheArray
{
  public:
    CacheArray(int sets, int ways)
        : sets_(sets), ways_(ways),
          entries_(static_cast<std::size_t>(sets) *
                   static_cast<std::size_t>(ways))
    {
    }

    /** Find the entry caching @p line, or nullptr. */
    CacheEntry *
    find(Addr line)
    {
        const std::size_t base = setIndex(line) *
                                 static_cast<std::size_t>(ways_);
        for (int w = 0; w < ways_; ++w) {
            CacheEntry &e =
                entries_[base + static_cast<std::size_t>(w)];
            if (live(e) && e.line == line)
                return &e;
        }
        return nullptr;
    }

    /**
     * Allocate a way for @p line in its set.
     *
     * @return the fresh entry, or nullptr if no way is free (caller
     *         must evict a victim or retry later)
     */
    CacheEntry *
    allocate(Addr line)
    {
        const std::size_t base = setIndex(line) *
                                 static_cast<std::size_t>(ways_);
        for (int w = 0; w < ways_; ++w) {
            CacheEntry &e =
                entries_[base + static_cast<std::size_t>(w)];
            if (!live(e)) {
                e = CacheEntry{};
                e.generation = generation_;
                e.line = line;
                return &e;
            }
        }
        return nullptr;
    }

    /**
     * LRU victim among entries of @p line's set satisfying
     * @p evictable; nullptr if none.
     */
    template <typename Pred>
    CacheEntry *
    victim(Addr line, Pred &&evictable)
    {
        const std::size_t base = setIndex(line) *
                                 static_cast<std::size_t>(ways_);
        CacheEntry *best = nullptr;
        for (int w = 0; w < ways_; ++w) {
            CacheEntry &e =
                entries_[base + static_cast<std::size_t>(w)];
            if (!live(e) || !evictable(e))
                continue;
            if (!best || e.lastUse < best->lastUse)
                best = &e;
        }
        return best;
    }

    /** Invalidate (free) one entry. */
    void
    free(CacheEntry &entry)
    {
        entry.line = kNoAddr;
    }

    /**
     * Drop all entries (host-assisted reset between tests). O(1):
     * bumps the generation, deadening every current entry at once.
     */
    void
    reset()
    {
        ++generation_;
    }

    /** Visit every valid entry, in array (set-major) order. */
    template <typename Fn>
    void
    forEachValid(Fn &&fn)
    {
        for (CacheEntry &e : entries_)
            if (live(e))
                fn(e);
    }

    int sets() const { return sets_; }
    int ways() const { return ways_; }

    /** Touch for LRU. */
    void
    touch(CacheEntry &entry, Tick now)
    {
        entry.lastUse = now;
    }

  private:
    bool
    live(const CacheEntry &e) const
    {
        return e.generation == generation_ && e.line != kNoAddr;
    }

    std::size_t
    setIndex(Addr line) const
    {
        return static_cast<std::size_t>(
            (line / kLineBytes) % static_cast<Addr>(sets_));
    }

    int sets_;
    int ways_;
    std::vector<CacheEntry> entries_;
    std::uint64_t generation_ = 1;
};

} // namespace mcversi::sim

#endif // MCVERSI_SIM_CACHE_ARRAY_HH
