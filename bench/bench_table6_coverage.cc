/**
 * @file
 * Table 6 reproduction: maximum total transition coverage per
 * configuration, for both protocols.
 *
 * Bug-free systems are fuzzed for a fixed test-run budget per sample;
 * the table reports the maximum total structural coverage observed
 * across samples. Expectations from the paper: 8KB configurations beat
 * 1KB (more of the replacement machinery is exercised), McVerSi-ALL
 * (8KB) is highest, litmus sits in between, and no configuration
 * reaches 100% (some transitions are practically unreachable).
 *
 * Campaign specs pin the protocol explicitly (bug=none cannot imply
 * it); CampaignResult::protocolCoverage is the per-protocol metric.
 */

#include <algorithm>

#include "bench_common.hh"

using namespace mcvbench;

int
main()
{
    const double scale = benchScale();
    const int samples = benchSamples(2);
    const auto max_runs = static_cast<std::uint64_t>(150 * scale);
    const double max_secs = 15.0 * scale;

    const std::vector<GenConfig> configs = {
        GenConfig::All1K,   GenConfig::All8K, GenConfig::StdXo1K,
        GenConfig::StdXo8K, GenConfig::Rand1K, GenConfig::Rand8K,
        GenConfig::DiyLitmus,
    };

    struct ProtoCase
    {
        const char *protocol;
        const char *name;
    };
    const ProtoCase protos[] = {
        {"mesi", "MESI"},
        {"tsocc", "TSO-CC"},
    };

    std::vector<campaign::CampaignSpec> specs;
    for (const ProtoCase &pc : protos) {
        for (GenConfig c : configs) {
            for (int s = 0; s < samples; ++s) {
                campaign::CampaignSpec spec = benchSpec(
                    c, "none",
                    1000 + static_cast<std::uint64_t>(s * 131),
                    max_runs, max_secs);
                spec.protocol = pc.protocol;
                specs.push_back(std::move(spec));
            }
        }
    }
    const campaign::CampaignSummary summary = runBenchCampaigns(specs);

    std::printf("Table 6: maximum total transition coverage observed "
                "across %d samples (budget %llu runs)\n\n",
                samples, static_cast<unsigned long long>(max_runs));
    std::printf("%-10s", "Protocol");
    for (GenConfig c : configs)
        std::printf(" | %-20s", genConfigName(c));
    std::printf("\n");

    std::size_t cell_begin = 0;
    for (const ProtoCase &pc : protos) {
        std::printf("%-10s", pc.name);
        for (std::size_t ci = 0; ci < configs.size(); ++ci) {
            double best = 0.0;
            for (int s = 0; s < samples; ++s) {
                best = std::max(
                    best,
                    summary.results[cell_begin +
                                    static_cast<std::size_t>(s)]
                        .protocolCoverage);
            }
            cell_begin += static_cast<std::size_t>(samples);
            char buf[16];
            std::snprintf(buf, sizeof(buf), "%.1f%%", 100.0 * best);
            std::printf(" | %-20s", buf);
        }
        std::printf("\n");
    }
    return 0;
}
