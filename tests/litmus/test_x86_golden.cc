/**
 * @file
 * Golden regression for the generated x86-TSO litmus suite.
 *
 * Pins down, for every one of the 38 suite entries:
 *
 *  1. the suite content itself (deterministic cycle names, in order),
 *  2. that a witness realizing the test's forbidden outcome is rejected
 *     by the TSO checker as a global-happens-before violation (every
 *     suite entry is a forbidden critical cycle, so TSO -- and a
 *     fortiori SC -- must flag it), and
 *  3. that the sequential (one-thread-at-a-time) execution of the same
 *     test is permitted: the TSO and SC checkers accept it and the
 *     test's own forbidden condition does not fire.
 *
 * Witnesses are synthesized directly from the litmus condition atoms,
 * exercising exactly the rf/co/fr shapes the suite claims to cover.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "litmus/x86_suite.hh"
#include "memconsistency/checker.hh"

using namespace mcversi;
using namespace mcversi::litmus;

namespace {

/**
 * Expected suite: the 38 canonical forbidden cycles, in enumeration
 * order, plus the constraint the TSO checker rejects each one's
 * forbidden outcome with. Cycles whose wrap-around address group puts
 * two same-address events in one thread (CoRR-style shapes) violate
 * sc-per-location, which the checker tests before global
 * happens-before; pure multi-address cycles reach the ghb check. Any
 * change to the diy enumerator, the edge alphabet, or the checker's
 * constraint ordering shows up here first.
 */
struct GoldenEntry
{
    const char *name;
    mc::CheckResult::Kind kind;
};

constexpr auto kUniproc = mc::CheckResult::Kind::UniprocViolation;
constexpr auto kGhb = mc::CheckResult::Kind::GhbViolation;

const GoldenEntry kGolden[kX86SuiteSize] = {
    {"Rfe PodRR PodRR Fre", kUniproc},
    {"Rfe PodRR PodRW Coe", kUniproc},
    {"Rfe PodRW PodWW Coe", kUniproc},
    {"Rfe PodRW MFencedWR Fre", kUniproc},
    {"Fre PodWW PodWW Rfe", kUniproc},
    {"Fre MFencedWR PodRW Rfe", kUniproc},
    {"Coe PodWW PodWW Coe", kUniproc},
    {"Coe PodWW MFencedWR Fre", kUniproc},
    {"Coe MFencedWR PodRR Fre", kUniproc},
    {"Coe MFencedWR PodRW Coe", kUniproc},
    {"PodRR Fre PodWW Rfe", kGhb},
    {"PodRW Rfe PodRW Rfe", kGhb},
    {"PodRW Coe PodWW Rfe", kGhb},
    {"PodWW Coe PodWW Coe", kGhb},
    {"PodWW Coe MFencedWR Fre", kGhb},
    {"MFencedWR Fre MFencedWR Fre", kGhb},
    {"Rfe Fre PodWW PodWW Coe", kUniproc},
    {"Rfe Fre PodWW MFencedWR Fre", kUniproc},
    {"Rfe Fre MFencedWR PodRR Fre", kUniproc},
    {"Rfe Fre MFencedWR PodRW Coe", kUniproc},
    {"Rfe PodRR Fre PodWW Coe", kGhb},
    {"Rfe PodRR Fre MFencedWR Fre", kGhb},
    {"Rfe PodRR PodRR Fre Coe", kUniproc},
    {"Rfe PodRR PodRR PodRR Fre", kUniproc},
    {"Rfe PodRR PodRR PodRW Coe", kUniproc},
    {"Rfe PodRR PodRW Rfe Fre", kUniproc},
    {"Rfe PodRR PodRW Coe Coe", kUniproc},
    {"Rfe PodRR PodRW PodWW Coe", kUniproc},
    {"Rfe PodRR PodRW MFencedWR Fre", kUniproc},
    {"Rfe PodRW Rfe PodRR Fre", kGhb},
    {"Rfe PodRW Rfe PodRW Coe", kGhb},
    {"Rfe PodRW Coe PodWW Coe", kGhb},
    {"Rfe PodRW Coe MFencedWR Fre", kGhb},
    {"Rfe PodRW PodWW Rfe Fre", kUniproc},
    {"Rfe PodRW PodWW Coe Coe", kUniproc},
    {"Rfe PodRW PodWW PodWW Coe", kUniproc},
    {"Rfe PodRW PodWW MFencedWR Fre", kUniproc},
    {"Rfe PodRW MFencedWR Fre Coe", kUniproc},
};

/** (pid, slot) coordinate of one instruction of a litmus test. */
using Coord = std::pair<Pid, int>;

/**
 * Build a witness realizing the forbidden outcome of @p t.
 *
 * The condition atoms fully determine the interesting conflict orders:
 * ReadsFrom fixes rf, CoBefore fixes co directly, and ReadsBefore
 * constrains the read's rf source (another atom's write, or init) to be
 * co-before the named write. Writes left unconstrained keep scan order.
 */
mc::ExecWitness
forbiddenWitness(const LitmusTest &t)
{
    const auto slots = t.test.threadSlots(t.numThreads);
    auto nodeAt = [&](Pid p, int s) -> const gp::Node & {
        return t.test.node(slots[static_cast<std::size_t>(p)]
                                [static_cast<std::size_t>(s)]);
    };

    // Writes per address, in (pid, slot) scan order.
    std::map<Addr, std::vector<Coord>> writesAt;
    for (Pid p = 0; p < t.numThreads; ++p) {
        const auto &th = slots[static_cast<std::size_t>(p)];
        for (int s = 0; s < static_cast<int>(th.size()); ++s) {
            const gp::Op &op = nodeAt(p, s).op;
            if (op.kind == gp::OpKind::Write ||
                op.kind == gp::OpKind::ReadModifyWrite) {
                writesAt[op.addr].push_back({p, s});
            }
        }
    }

    // rf choices from ReadsFrom atoms (absent => the read sees init).
    std::map<Coord, Coord> rf;
    for (const CondAtom &a : t.forbidden)
        if (a.kind == CondAtom::Kind::ReadsFrom)
            rf[{a.pid, a.slot}] = {a.otherPid, a.otherSlot};

    // co ordering constraints per address.
    std::map<Addr, std::vector<std::pair<Coord, Coord>>> before;
    for (const CondAtom &a : t.forbidden) {
        if (a.kind == CondAtom::Kind::CoBefore) {
            const Addr addr = nodeAt(a.pid, a.slot).op.addr;
            before[addr].push_back(
                {{a.pid, a.slot}, {a.otherPid, a.otherSlot}});
        } else if (a.kind == CondAtom::Kind::ReadsBefore) {
            // Reads-before: rf(r) must be strictly co-before the named
            // write. If rf(r) is init, that holds by construction.
            const auto it = rf.find({a.pid, a.slot});
            if (it != rf.end()) {
                const Addr addr =
                    nodeAt(a.otherPid, a.otherSlot).op.addr;
                before[addr].push_back(
                    {it->second, {a.otherPid, a.otherSlot}});
            }
        }
    }

    // Stable topological order of each address's writes, then value
    // assignment along the co chain.
    std::map<Coord, WriteVal> valueOf;
    std::map<Coord, WriteVal> overwrittenOf;
    WriteVal next = 1;
    for (auto &[addr, ws] : writesAt) {
        const auto &cons = before[addr];
        std::vector<Coord> remaining = ws;
        WriteVal prev = kInitVal;
        while (!remaining.empty()) {
            auto pick = remaining.end();
            for (auto it = remaining.begin(); it != remaining.end();
                 ++it) {
                const bool blocked = std::any_of(
                    cons.begin(), cons.end(), [&](const auto &c) {
                        return c.second == *it && c.first != *it &&
                               std::find(remaining.begin(),
                                         remaining.end(),
                                         c.first) != remaining.end();
                    });
                if (!blocked) {
                    pick = it;
                    break;
                }
            }
            if (pick == remaining.end()) {
                ADD_FAILURE() << t.name
                              << ": cyclic co constraints on addr "
                              << addr;
                return mc::ExecWitness{};
            }
            valueOf[*pick] = next;
            overwrittenOf[*pick] = prev;
            prev = next++;
            remaining.erase(pick);
        }
    }

    // Emit events thread by thread in program order.
    mc::ExecWitness ew;
    for (Pid p = 0; p < t.numThreads; ++p) {
        const auto &th = slots[static_cast<std::size_t>(p)];
        for (int s = 0; s < static_cast<int>(th.size()); ++s) {
            const gp::Op &op = nodeAt(p, s).op;
            const Coord here{p, s};
            switch (op.kind) {
              case gp::OpKind::Read:
              case gp::OpKind::ReadAddrDp: {
                const auto it = rf.find(here);
                const WriteVal v =
                    it == rf.end() ? kInitVal : valueOf.at(it->second);
                ew.recordRead(p, s, op.addr, v);
                break;
              }
              case gp::OpKind::Write:
                ew.recordWrite(p, s, op.addr, valueOf.at(here),
                               overwrittenOf.at(here));
                break;
              case gp::OpKind::ReadModifyWrite:
                // Atomic pair: the read sees exactly the value the
                // write overwrites.
                ew.recordRead(p, s, op.addr, overwrittenOf.at(here),
                              /*rmw=*/true);
                ew.recordWrite(p, s, op.addr, valueOf.at(here),
                               overwrittenOf.at(here), /*rmw=*/true);
                break;
              default:
                break;
            }
        }
    }
    ew.finalize();
    return ew;
}

/** The sequential execution: thread 0 runs to completion, then 1, ... */
mc::ExecWitness
sequentialWitness(const LitmusTest &t)
{
    const auto slots = t.test.threadSlots(t.numThreads);
    mc::ExecWitness ew;
    std::map<Addr, WriteVal> mem;
    WriteVal next = 1;
    auto current = [&](Addr a) {
        const auto it = mem.find(a);
        return it == mem.end() ? kInitVal : it->second;
    };
    for (Pid p = 0; p < t.numThreads; ++p) {
        const auto &th = slots[static_cast<std::size_t>(p)];
        for (int s = 0; s < static_cast<int>(th.size()); ++s) {
            const gp::Op &op =
                t.test.node(th[static_cast<std::size_t>(s)]).op;
            switch (op.kind) {
              case gp::OpKind::Read:
              case gp::OpKind::ReadAddrDp:
                ew.recordRead(p, s, op.addr, current(op.addr));
                break;
              case gp::OpKind::Write:
                ew.recordWrite(p, s, op.addr, next, current(op.addr));
                mem[op.addr] = next++;
                break;
              case gp::OpKind::ReadModifyWrite: {
                const WriteVal old = current(op.addr);
                ew.recordRead(p, s, op.addr, old, /*rmw=*/true);
                ew.recordWrite(p, s, op.addr, next, old, /*rmw=*/true);
                mem[op.addr] = next++;
                break;
              }
              default:
                break;
            }
        }
    }
    ew.finalize();
    return ew;
}

class X86Golden : public testing::TestWithParam<std::size_t>
{
  protected:
    LitmusTest
    testEntry() const
    {
        static const std::vector<LitmusTest> suite = x86TsoSuite();
        return suite.at(GetParam());
    }
};

std::string
caseName(const testing::TestParamInfo<std::size_t> &info)
{
    std::string name = kGolden[info.param].name;
    for (char &c : name)
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return std::to_string(info.param) + "_" + name;
}

} // namespace

TEST(X86GoldenSuite, NamesAndSizeAreStable)
{
    const std::vector<LitmusTest> suite = x86TsoSuite();
    ASSERT_EQ(suite.size(), kX86SuiteSize);
    for (std::size_t i = 0; i < suite.size(); ++i) {
        EXPECT_EQ(suite[i].name, kGolden[i].name) << "suite index " << i;
        EXPECT_GE(suite[i].numThreads, 2) << suite[i].name;
        EXPECT_GE(suite[i].forbidden.size(), 2u) << suite[i].name;
    }
}

TEST_P(X86Golden, ForbiddenOutcomeViolatesTso)
{
    const LitmusTest t = testEntry();
    mc::ExecWitness ew = forbiddenWitness(t);
    ASSERT_EQ(ew.anomaly(), mc::WitnessAnomaly::None) << t.name;

    // The synthesized witness must actually realize the forbidden
    // outcome the test describes...
    EXPECT_TRUE(evalForbidden(t, ew)) << t.name;

    // ...and the TSO checker must reject it as a ghb cycle.
    const mc::Checker tso(mc::makeTso());
    const mc::CheckResult r = tso.check(ew);
    EXPECT_FALSE(r.ok()) << t.name;
    EXPECT_EQ(r.kind, kGolden[GetParam()].kind)
        << t.name << ": " << r.message;
    EXPECT_FALSE(r.cycle.empty()) << t.name;

    // Whatever TSO forbids, the stronger SC model forbids too.
    const mc::Checker sc(mc::makeSc());
    EXPECT_FALSE(sc.check(ew).ok()) << t.name;
}

TEST_P(X86Golden, SequentialOutcomeIsPermitted)
{
    const LitmusTest t = testEntry();
    mc::ExecWitness ew = sequentialWitness(t);
    ASSERT_EQ(ew.anomaly(), mc::WitnessAnomaly::None) << t.name;

    // A sequential execution is SC, hence permitted by both models,
    // and can never exhibit a forbidden critical cycle.
    EXPECT_FALSE(evalForbidden(t, ew)) << t.name;

    const mc::Checker tso(mc::makeTso());
    const mc::CheckResult rt = tso.check(ew);
    EXPECT_TRUE(rt.ok()) << t.name << ": " << rt.message;

    const mc::Checker sc(mc::makeSc());
    const mc::CheckResult rs = sc.check(ew);
    EXPECT_TRUE(rs.ok()) << t.name << ": " << rs.message;
}

INSTANTIATE_TEST_SUITE_P(Suite, X86Golden,
                         testing::Range<std::size_t>(0, kX86SuiteSize),
                         caseName);
