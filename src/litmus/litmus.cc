#include "litmus/litmus.hh"

namespace mcversi::litmus {

mc::EventId
findEvent(const mc::ExecWitness &ew, Pid pid, int slot, bool want_write)
{
    for (const mc::EventId id : ew.threadEvents(pid)) {
        const mc::Event &ev = ew.event(id);
        if (ev.iiid.poi != slot)
            continue;
        if (ev.isWrite() == want_write)
            return id;
    }
    return mc::kNoEvent;
}

namespace {

/** True if @p w (or init) is strictly co-before @p target. */
bool
coStrictlyBefore(const mc::ExecWitness &ew, mc::EventId w,
                 mc::EventId target)
{
    for (mc::EventId cur = ew.coSuccessor(w); cur != mc::kNoEvent;
         cur = ew.coSuccessor(cur)) {
        if (cur == target)
            return true;
    }
    return false;
}

} // namespace

namespace {

bool evalConjunction(const std::vector<CondAtom> &atoms,
                     const mc::ExecWitness &ew);

} // namespace

bool
evalForbidden(const LitmusTest &test, const mc::ExecWitness &ew)
{
    if (!test.forbiddenAlternatives.empty()) {
        for (const auto &alt : test.forbiddenAlternatives)
            if (evalConjunction(alt, ew))
                return true;
        return false;
    }
    return evalConjunction(test.forbidden, ew);
}

LitmusTest
unroll(const LitmusTest &test, int instances, Addr block_stride)
{
    LitmusTest out;
    out.name = test.name + " x" + std::to_string(instances);
    out.numThreads = test.numThreads;
    out.numAddrs = test.numAddrs * instances;

    // Per-thread op counts of one instance, for slot shifting.
    std::vector<int> ops_per_thread(
        static_cast<std::size_t>(test.numThreads), 0);
    for (const gp::Node &node : test.test.nodes())
        ++ops_per_thread[static_cast<std::size_t>(node.pid)];

    std::vector<gp::Node> nodes;
    nodes.reserve(test.test.size() * static_cast<std::size_t>(instances));
    for (int k = 0; k < instances; ++k) {
        const Addr base = static_cast<Addr>(k) * block_stride;
        for (const gp::Node &node : test.test.nodes()) {
            gp::Node copy = node;
            if (copy.op.isMem())
                copy.op.addr += base;
            nodes.push_back(copy);
        }
        std::vector<CondAtom> alt;
        for (const CondAtom &atom : test.forbidden) {
            CondAtom shifted = atom;
            shifted.slot +=
                k * ops_per_thread[static_cast<std::size_t>(atom.pid)];
            shifted.otherSlot +=
                k * ops_per_thread[static_cast<std::size_t>(
                        atom.otherPid)];
            alt.push_back(shifted);
        }
        out.forbiddenAlternatives.push_back(std::move(alt));
    }
    out.test = gp::Test(std::move(nodes));
    out.forbidden = test.forbidden;
    return out;
}

namespace {

bool
evalConjunction(const std::vector<CondAtom> &atoms,
                const mc::ExecWitness &ew)
{
    for (const CondAtom &atom : atoms) {
        switch (atom.kind) {
          case CondAtom::Kind::ReadsFrom: {
            const mc::EventId r =
                findEvent(ew, atom.pid, atom.slot, false);
            const mc::EventId w =
                findEvent(ew, atom.otherPid, atom.otherSlot, true);
            if (r == mc::kNoEvent || w == mc::kNoEvent)
                return false;
            if (ew.rfSource(r) != w)
                return false;
            break;
          }
          case CondAtom::Kind::ReadsInit: {
            const mc::EventId r =
                findEvent(ew, atom.pid, atom.slot, false);
            if (r == mc::kNoEvent)
                return false;
            const mc::EventId src = ew.rfSource(r);
            if (src == mc::kNoEvent || !ew.event(src).isInit())
                return false;
            break;
          }
          case CondAtom::Kind::ReadsBefore: {
            const mc::EventId r =
                findEvent(ew, atom.pid, atom.slot, false);
            const mc::EventId w =
                findEvent(ew, atom.otherPid, atom.otherSlot, true);
            if (r == mc::kNoEvent || w == mc::kNoEvent)
                return false;
            const mc::EventId src = ew.rfSource(r);
            if (src == mc::kNoEvent)
                return false;
            if (!coStrictlyBefore(ew, src, w))
                return false;
            break;
          }
          case CondAtom::Kind::CoBefore: {
            const mc::EventId w1 =
                findEvent(ew, atom.pid, atom.slot, true);
            const mc::EventId w2 =
                findEvent(ew, atom.otherPid, atom.otherSlot, true);
            if (w1 == mc::kNoEvent || w2 == mc::kNoEvent)
                return false;
            if (!coStrictlyBefore(ew, w1, w2))
                return false;
            break;
          }
        }
    }
    return !atoms.empty();
}

} // namespace

} // namespace mcversi::litmus
