/**
 * @file
 * Crash-safe append-only result journal.
 *
 * A fleet run streams every completed campaign cell into one journal
 * file inside the run directory. Each record is a single line
 *
 *     MCVJ1 <payload-bytes> <crc32-hex8> <payload>\n
 *
 * where the payload never contains a raw newline (the wire codec
 * escapes control bytes) and the CRC32 covers the payload only. Every
 * append is one write(2) followed by fsync(2), so a record is either
 * fully durable or detectably absent: after a crash or SIGKILL the
 * final line may be torn (short, missing its newline, or failing its
 * checksum) and the reader DROPS it instead of trusting it -- the cell
 * it described simply reruns on resume. A corrupt record in the middle
 * of the file (disk damage, manual editing) is skipped and counted,
 * resyncing at the next newline, so one bad record cannot take the
 * rest of the journal with it.
 *
 * Appends are idempotent per cell: duplicate records for the same cell
 * index are legal (a retry raced a crash) and the reader keeps the
 * last one (see fleet/coordinator.hh's replay).
 */

#ifndef MCVERSI_FLEET_JOURNAL_HH
#define MCVERSI_FLEET_JOURNAL_HH

#include <cstdint>
#include <string>
#include <vector>

namespace mcversi::fleet {

/** CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of a byte string. */
std::uint32_t crc32(const std::string &data);

/** Render one full journal line (header + payload + newline). */
std::string journalLine(const std::string &payload);

/** Outcome of reading a journal file back. */
struct JournalReadResult
{
    /** Payloads of every valid record, in file order. */
    std::vector<std::string> payloads;
    /** True if a torn final record was detected and dropped. */
    bool droppedTornTail = false;
    /** Corrupt (checksum/format) non-final records skipped. */
    std::size_t corruptSkipped = 0;
};

/**
 * Parse journal @p content (the raw file bytes). Never throws: damage
 * is reported via the result flags, valid records always survive.
 */
JournalReadResult parseJournal(const std::string &content);

/** Read and parse a journal file; throws std::runtime_error if the
 * file cannot be opened. */
JournalReadResult readJournal(const std::string &path);

/**
 * Appender for a journal file. Each append() writes one complete
 * record with a single write(2) and fsyncs before returning, so the
 * record is durable once append() succeeds.
 */
class JournalWriter
{
  public:
    JournalWriter() = default;
    ~JournalWriter();
    JournalWriter(const JournalWriter &) = delete;
    JournalWriter &operator=(const JournalWriter &) = delete;

    /** Open (creating or appending). Throws std::runtime_error. */
    void open(const std::string &path);

    /** Append one record; throws std::runtime_error on I/O failure.
     * @p payload must not contain raw newlines. */
    void append(const std::string &payload);

    void close();
    bool isOpen() const { return fd_ >= 0; }

  private:
    int fd_ = -1;
    std::string path_;
};

} // namespace mcversi::fleet

#endif // MCVERSI_FLEET_JOURNAL_HH
