/**
 * @file
 * Example: compare the three McVerSi test generation strategies on one
 * bug (the paper's §6.1 question -- how effective is the selective
 * crossover?). One campaign matrix -- generators x seeds -- runs in
 * parallel, then results are aggregated per generator.
 *
 * Usage: compare_generators [bug-name] [samples]
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "mcversi.hh"

using namespace mcversi;

int
main(int argc, char **argv)
{
    const std::string bug_name =
        argc > 1 ? argv[1] : "MESI,LQ+SM,Inv";
    const int samples = argc > 2 ? std::atoi(argv[2]) : 3;
    if (sim::findBugByName(bug_name) == nullptr) {
        std::cerr << "unknown bug: " << bug_name << "\n";
        return 1;
    }

    campaign::CampaignMatrix matrix;
    matrix.base.bug = bug_name;
    matrix.base.testSize = 256;
    matrix.base.iterations = 4;
    matrix.base.maxTestRuns = 1500;
    matrix.base.maxWallSeconds = 90.0;
    matrix.generators = {"McVerSi-ALL", "McVerSi-Std.XO",
                         "McVerSi-RAND"};
    for (int s = 0; s < samples; ++s)
        matrix.seeds.push_back(17 + static_cast<std::uint64_t>(s) * 101);

    std::cout << "bug: " << bug_name << ", " << samples
              << " samples per generator\n\n";

    campaign::CampaignRunner::Options options;
    options.threads = 0; // hardware concurrency
    const campaign::CampaignSummary summary =
        campaign::CampaignRunner(options).run(matrix.expand());

    for (const std::string &generator : matrix.generators) {
        int found = 0;
        double runs_sum = 0.0;
        for (const campaign::CampaignResult &r : summary.results) {
            if (r.spec.generator != generator || !r.ok() ||
                !r.harness.bugFound) {
                continue;
            }
            ++found;
            runs_sum += static_cast<double>(r.harness.testRunsToBug);
        }
        std::cout << (generator == "McVerSi-ALL"      ? "McVerSi-ALL:    "
                      : generator == "McVerSi-Std.XO" ? "McVerSi-Std.XO: "
                                                      : "McVerSi-RAND:   ")
                  << found << "/" << samples << " found";
        if (found > 0)
            std::cout << ", mean " << runs_sum / found
                      << " test-runs to bug";
        std::cout << "\n";
    }
    return 0;
}
