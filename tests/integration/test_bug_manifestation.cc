/**
 * @file
 * Integration: every studied bug (§5.3) manifests and is detected by
 * the McVerSi stack within a modest test-run budget. These are the
 * repository's most important tests -- they establish that the
 * substrate actually contains the bugs the paper studies and that the
 * checker catches them.
 *
 * Parameterized over all 11 bugs. The budget per bug is sized from the
 * observed difficulty ordering (replacement-dependent bugs need 8KB of
 * test memory and more runs, mirroring Table 4).
 */

#include <gtest/gtest.h>

#include "host/harness.hh"
#include "sim/bugs.hh"

using namespace mcversi;
using namespace mcversi::host;

namespace {

struct BugCase
{
    sim::BugId bug;
    /** Test-memory size (paper: some bugs need 8KB, 1KB suffices
     * otherwise and is faster). */
    Addr memSize;
    std::uint64_t maxRuns;
    /** Ops per test; race-window bugs need more concurrent pressure. */
    std::size_t testSize = 192;
};

std::string
caseName(const testing::TestParamInfo<BugCase> &info)
{
    std::string name = sim::bugInfo(info.param.bug).name;
    for (char &c : name)
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return name;
}

class BugManifestation : public testing::TestWithParam<BugCase>
{
};

} // namespace

TEST_P(BugManifestation, FoundWithinBudget)
{
    const BugCase &bc = GetParam();
    const sim::BugInfo &info = sim::bugInfo(bc.bug);

    VerificationHarness::Params params;
    params.system.bug = bc.bug;
    params.system.seed = 20260611;
    params.system.protocol = info.protocol == sim::ProtocolKind::Tsocc
                                 ? sim::Protocol::Tsocc
                                 : sim::Protocol::Mesi;
    params.gen.testSize = bc.testSize;
    params.gen.iterations = 4;
    params.gen.memSize = bc.memSize;
    params.workload.iterations = params.gen.iterations;

    gp::GaParams ga;
    ga.population = 40;
    GaSource source(ga, params.gen, 1,
                    gp::SteadyStateGa::XoMode::Selective);
    VerificationHarness harness(params, source);

    Budget budget;
    budget.maxTestRuns = bc.maxRuns;
    // No wall cap: under parallel ctest load a time cap flakes; the
    // run budget bounds the test on its own.
    HarnessResult result = harness.run(budget);

    EXPECT_TRUE(result.bugFound)
        << info.name << " not found in " << result.testRuns
        << " test-runs";
    if (result.bugFound) {
        SCOPED_TRACE(result.detail);
        EXPECT_FALSE(result.detail.empty());
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllBugs, BugManifestation,
    testing::Values(
        BugCase{sim::BugId::MesiLqIsInv, 1024, 3000},
        BugCase{sim::BugId::MesiLqSmInv, 1024, 3000},
        BugCase{sim::BugId::MesiLqEInv, 8192, 3000},
        BugCase{sim::BugId::MesiLqMInv, 8192, 3000},
        BugCase{sim::BugId::MesiLqSReplacement, 8192, 3000},
        BugCase{sim::BugId::MesiPutxRace, 8192, 3000},
        BugCase{sim::BugId::MesiReplaceRace, 8192, 4000, 256},
        BugCase{sim::BugId::TsoccNoEpochIds, 1024, 3000},
        BugCase{sim::BugId::TsoccCompare, 1024, 3000},
        BugCase{sim::BugId::LqNoTso, 1024, 1500},
        BugCase{sim::BugId::SqNoFifo, 1024, 1500}),
    caseName);

TEST(BugManifestationProperties, ReplacementBugsNeedLargeMemory)
{
    // Paper §6.1: with 1KB of test memory none of the replacement
    // bugs are found (no capacity evictions). Verify the negative for
    // MESI,LQ+S,Replacement with a small budget.
    VerificationHarness::Params params;
    params.system.bug = sim::BugId::MesiLqSReplacement;
    params.system.seed = 7;
    params.gen.testSize = 192;
    params.gen.iterations = 4;
    params.gen.memSize = 1024;
    params.workload.iterations = 4;
    RandomSource source(params.gen, 7);
    VerificationHarness harness(params, source);
    Budget budget;
    budget.maxTestRuns = 150;
    HarnessResult result = harness.run(budget);
    EXPECT_FALSE(result.bugFound)
        << "1KB tests cannot trigger L1 capacity replacements";
}
