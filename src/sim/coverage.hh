/**
 * @file
 * Structural (protocol transition) coverage (§3.2).
 *
 * Coverage is over the coherence protocol's possible state transitions;
 * identical controllers are not distinguished -- their transitions sum
 * into shared counters. Counters accumulate over the whole simulation
 * (the simulation runs continuously, loading tests on-the-fly), and the
 * harness snapshots per-test-run deltas for the adaptive fitness.
 */

#ifndef MCVERSI_SIM_COVERAGE_HH
#define MCVERSI_SIM_COVERAGE_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace mcversi::sim {

/** Global transition coverage registry and counters. */
class TransitionCoverage
{
  public:
    /**
     * Register a transition; idempotent by (controller, state, event)
     * name triple. Returns a dense transition id.
     */
    std::uint32_t registerTransition(const std::string &controller,
                                     const std::string &state,
                                     const std::string &event);

    /** Record one occurrence of a registered transition. */
    void
    record(std::uint32_t id)
    {
        ++counts_[id];
        if (runActive_)
            runCovered_.insert(id);
    }

    /** Begin collecting the per-run covered set. */
    void
    beginRun()
    {
        runActive_ = true;
        runCovered_.clear();
        preCounts_ = counts_;
    }

    /** End the run; returns the ids covered during it. */
    std::vector<std::uint32_t>
    endRun()
    {
        runActive_ = false;
        return {runCovered_.begin(), runCovered_.end()};
    }

    /** Global counts as of beginRun() (for adaptive fitness). */
    const std::vector<std::uint64_t> &preRunCounts() const
    {
        return preCounts_;
    }

    std::size_t numTransitions() const { return counts_.size(); }
    const std::vector<std::uint64_t> &counts() const { return counts_; }

    /** Fraction of registered transitions observed at least once. */
    double totalCoverage() const;

    /** Fraction restricted to one controller name prefix. */
    double totalCoverage(const std::string &controller_prefix) const;

    /** Human-readable name of a transition id. */
    const std::string &name(std::uint32_t id) const
    {
        return names_[id];
    }

  private:
    std::unordered_map<std::string, std::uint32_t> byName_;
    std::vector<std::string> names_;
    std::vector<std::uint64_t> counts_;
    std::vector<std::uint64_t> preCounts_;
    std::unordered_set<std::uint32_t> runCovered_;
    bool runActive_ = false;
};

} // namespace mcversi::sim

#endif // MCVERSI_SIM_COVERAGE_HH
