/**
 * @file
 * Seed round-trip determinism guarantees for common/rng.hh and every GP
 * component that draws from it. Future parallelization (sharded GA,
 * per-worker streams) relies on "same seed => same decisions" holding
 * exactly; these tests pin that contract down at the Rng, generator,
 * crossover, and whole-GA level.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "gp/crossover.hh"
#include "gp/ga.hh"
#include "gp/randgen.hh"

using namespace mcversi;
using namespace mcversi::gp;

namespace {

GenParams
smallGen()
{
    GenParams gen;
    gen.testSize = 96;
    gen.numThreads = 4;
    gen.memSize = 1024;
    return gen;
}

/** Deterministic pseudo-fitness derived from the test content. */
double
pseudoFitness(const Test &t)
{
    return static_cast<double>(t.fingerprint() % 1000) / 1000.0;
}

/** NdInfo derived deterministically from the test content. */
NdInfo
pseudoNd(const Test &t)
{
    NdInfo nd;
    nd.ndt = 1.0 + pseudoFitness(t);
    // Mark roughly half the used addresses as racy so the selective
    // crossover's fitaddr paths are exercised.
    for (const Addr a : t.usedAddrs())
        if ((a / 16) % 2 == 0)
            nd.fitaddrs.insert(a);
    return nd;
}

} // namespace

TEST(RngDeterminism, SameSeedSameStream)
{
    Rng a(42), b(42), c(43);
    bool diverged = false;
    for (int i = 0; i < 10000; ++i) {
        const std::uint64_t va = a.next();
        ASSERT_EQ(va, b.next()) << "draw " << i;
        diverged |= va != c.next();
    }
    EXPECT_TRUE(diverged) << "different seeds must give different streams";
}

TEST(RngDeterminism, ReseedRestartsTheStream)
{
    Rng a(7);
    std::vector<std::uint64_t> first;
    for (int i = 0; i < 100; ++i)
        first.push_back(a.next());
    a.reseed(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), first[static_cast<std::size_t>(i)])
            << "draw " << i;
}

TEST(RngDeterminism, HelpersAreDeterministic)
{
    Rng a(11), b(11);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(a.below(97), b.below(97));
        EXPECT_EQ(a.range(10, 20), b.range(10, 20));
        EXPECT_EQ(a.boolWithProb(0.3), b.boolWithProb(0.3));
        EXPECT_EQ(a.uniform(), b.uniform());
    }
}

TEST(RngDeterminism, ForkedStreamsAreReproducible)
{
    Rng a(5), b(5);
    Rng fa = a.fork();
    Rng fb = b.fork();
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(fa.next(), fb.next());
    // Forking must advance the parent identically on both sides.
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(GeneratorDeterminism, SameSeedSameTests)
{
    const RandomTestGen gen(smallGen());
    Rng a(123), b(123);
    for (int i = 0; i < 20; ++i) {
        const gp::Test ta = gen.randomTest(a);
        const gp::Test tb = gen.randomTest(b);
        ASSERT_EQ(ta.fingerprint(), tb.fingerprint()) << "test " << i;
        ASSERT_EQ(ta.nodes(), tb.nodes()) << "test " << i;
    }
}

TEST(CrossoverDeterminism, SameSeedSameChildAndSameDrawCount)
{
    const RandomTestGen gen(smallGen());
    const GaParams ga;

    Rng setup(99);
    const gp::Test p1 = gen.randomTest(setup);
    const gp::Test p2 = gen.randomTest(setup);
    const NdInfo nd1 = pseudoNd(p1);
    const NdInfo nd2 = pseudoNd(p2);

    Rng a(7), b(7);
    const gp::Test ca = crossoverMutate(p1, nd1, p2, nd2, gen, ga, a);
    const gp::Test cb = crossoverMutate(p1, nd1, p2, nd2, gen, ga, b);
    EXPECT_EQ(ca.nodes(), cb.nodes());
    // The two streams must stay in lockstep: same number of draws.
    EXPECT_EQ(a.next(), b.next());

    Rng c(8), d(8);
    const gp::Test sc = singlePointCrossoverMutate(p1, p2, gen, ga, c);
    const gp::Test sd = singlePointCrossoverMutate(p1, p2, gen, ga, d);
    EXPECT_EQ(sc.nodes(), sd.nodes());
    EXPECT_EQ(c.next(), d.next());
}

TEST(GaDeterminism, SameSeedSamePopulationEvolution)
{
    GaParams ga;
    ga.population = 16;
    const GenParams gen = smallGen();

    for (const auto mode : {SteadyStateGa::XoMode::Selective,
                            SteadyStateGa::XoMode::SinglePoint}) {
        SteadyStateGa g1(ga, gen, 2026, mode);
        SteadyStateGa g2(ga, gen, 2026, mode);

        // Evolve well past the initial population so offspring
        // (tournament + crossover + mutation decisions) are covered.
        for (int i = 0; i < 64; ++i) {
            const gp::Test t1 = g1.nextTest();
            const gp::Test t2 = g2.nextTest();
            ASSERT_EQ(t1.fingerprint(), t2.fingerprint())
                << "evaluation " << i;
            g1.reportResult(pseudoFitness(t1), pseudoNd(t1));
            g2.reportResult(pseudoFitness(t2), pseudoNd(t2));
        }

        ASSERT_EQ(g1.populationSize(), g2.populationSize());
        for (std::size_t i = 0; i < g1.populationSize(); ++i) {
            const Individual &i1 = g1.population()[i];
            const Individual &i2 = g2.population()[i];
            EXPECT_EQ(i1.test.fingerprint(), i2.test.fingerprint());
            EXPECT_EQ(i1.fitness, i2.fitness);
            EXPECT_EQ(i1.bornAt, i2.bornAt);
        }
        EXPECT_EQ(g1.meanFitness(), g2.meanFitness());
    }
}

TEST(GaDeterminism, DifferentSeedsDiverge)
{
    GaParams ga;
    ga.population = 8;
    const GenParams gen = smallGen();
    SteadyStateGa g1(ga, gen, 1);
    SteadyStateGa g2(ga, gen, 2);
    bool diverged = false;
    for (int i = 0; i < 8; ++i) {
        const gp::Test t1 = g1.nextTest();
        const gp::Test t2 = g2.nextTest();
        diverged |= t1.fingerprint() != t2.fingerprint();
        g1.reportResult(pseudoFitness(t1), pseudoNd(t1));
        g2.reportResult(pseudoFitness(t2), pseudoNd(t2));
    }
    EXPECT_TRUE(diverged);
}
