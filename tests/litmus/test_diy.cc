/** @file Mini-diy cycle generator tests. */

#include <gtest/gtest.h>

#include "litmus/diy.hh"
#include "litmus/suites.hh"

using namespace mcversi::litmus;
using namespace mcversi;

TEST(Diy, EdgeProperties)
{
    EXPECT_TRUE(isCommEdge(EdgeType::Rfe));
    EXPECT_TRUE(isCommEdge(EdgeType::Fre));
    EXPECT_TRUE(isCommEdge(EdgeType::Coe));
    EXPECT_FALSE(isCommEdge(EdgeType::PodRR));
    EXPECT_FALSE(isCommEdge(EdgeType::MFencedWR));

    EXPECT_TRUE(edgeSrcIsWrite(EdgeType::Rfe));
    EXPECT_FALSE(edgeDstIsWrite(EdgeType::Rfe));
    EXPECT_FALSE(edgeSrcIsWrite(EdgeType::Fre));
    EXPECT_TRUE(edgeDstIsWrite(EdgeType::Fre));
    EXPECT_TRUE(edgeSrcIsWrite(EdgeType::MFencedWR));
    EXPECT_FALSE(edgeDstIsWrite(EdgeType::MFencedWR));
}

TEST(Diy, MpBuilds)
{
    // MP: PodWW Rfe PodRR Fre.
    auto test = buildTest({EdgeType::PodWW, EdgeType::Rfe,
                           EdgeType::PodRR, EdgeType::Fre});
    ASSERT_TRUE(test.has_value());
    EXPECT_EQ(test->numThreads, 2);
    EXPECT_EQ(test->numAddrs, 2);
    EXPECT_EQ(test->test.size(), 4u);
    EXPECT_EQ(test->forbidden.size(), 2u);
    // Writer thread: two writes; reader thread: two reads.
    gp::ThreadSlots slots;
    test->test.threadSlots(2, slots);
    ASSERT_EQ(slots[0].size(), 2u);
    ASSERT_EQ(slots[1].size(), 2u);
    EXPECT_EQ(test->test.node(slots[0][0]).op.kind, gp::OpKind::Write);
    EXPECT_EQ(test->test.node(slots[1][0]).op.kind, gp::OpKind::Read);
}

TEST(Diy, InvalidSpecsRejected)
{
    // Adjacency violation: Rfe dst is a read, Coe src is a write.
    EXPECT_FALSE(buildTest({EdgeType::Rfe, EdgeType::Coe,
                            EdgeType::PodWW, EdgeType::Fre})
                     .has_value());
    // Last edge must be a communication edge.
    EXPECT_FALSE(buildTest({EdgeType::Rfe, EdgeType::PodRR,
                            EdgeType::Fre, EdgeType::PodWW})
                     .has_value());
    // Too few program-order edges.
    EXPECT_FALSE(
        buildTest({EdgeType::Rfe, EdgeType::Fre, EdgeType::Coe,
                   EdgeType::Rfe, EdgeType::Fre, EdgeType::Coe})
            .has_value());
    // Too short.
    EXPECT_FALSE(buildTest({EdgeType::PodWW, EdgeType::Coe}).has_value());
}

TEST(Diy, FencedEdgeInsertsRmw)
{
    auto test = buildTest({EdgeType::MFencedWR, EdgeType::Fre,
                           EdgeType::MFencedWR, EdgeType::Fre});
    ASSERT_TRUE(test.has_value());
    int rmws = 0;
    for (const gp::Node &n : test->test.nodes())
        if (n.op.kind == gp::OpKind::ReadModifyWrite)
            ++rmws;
    EXPECT_EQ(rmws, 2);
    // Scratch addresses must be distinct from test variables.
    EXPECT_EQ(test->numAddrs, 4);
}

TEST(Diy, VariablesOnDistinctLines)
{
    auto test = buildTest({EdgeType::PodWW, EdgeType::Rfe,
                           EdgeType::PodRR, EdgeType::Fre});
    ASSERT_TRUE(test.has_value());
    std::set<Addr> lines;
    for (const gp::Node &n : test->test.nodes())
        lines.insert(n.op.addr / kLineBytes);
    EXPECT_EQ(lines.size(), 2u);
}

TEST(Diy, EnumerationProducesCanonicalUniqueSpecs)
{
    auto specs = enumerateCycles(4, 1000);
    EXPECT_GT(specs.size(), 3u);
    std::set<std::string> names;
    for (const CycleSpec &spec : specs) {
        EXPECT_TRUE(buildTest(spec).has_value())
            << "enumerated spec must build: " << cycleName(spec);
        EXPECT_TRUE(names.insert(cycleName(spec)).second)
            << "duplicate: " << cycleName(spec);
    }
}

TEST(Diy, EnumerationRespectsLimit)
{
    auto specs = enumerateCycles(6, 10);
    EXPECT_LE(specs.size(), 10u);
}

TEST(Diy, SuiteHas38Tests)
{
    auto suite = x86TsoSuite();
    EXPECT_EQ(suite.size(), kX86SuiteSize);
    std::set<std::string> names;
    for (const LitmusTest &t : suite) {
        EXPECT_FALSE(t.forbidden.empty());
        EXPECT_GE(t.numThreads, 2);
        names.insert(t.name);
    }
    EXPECT_EQ(names.size(), suite.size());
}

TEST(Diy, NamedClassicsBuild)
{
    EXPECT_EQ(messagePassing().numThreads, 2);
    EXPECT_EQ(storeBufferingFenced().numThreads, 2);
    EXPECT_EQ(loadBuffering().numThreads, 2);
    EXPECT_EQ(twoPlusTwoW().numThreads, 2);
    EXPECT_NE(messagePassing().name.find("MP"), std::string::npos);
}

TEST(Diy, CycleNameFormat)
{
    EXPECT_EQ(cycleName({EdgeType::Rfe, EdgeType::PodRR}), "Rfe PodRR");
}
