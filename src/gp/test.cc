#include "gp/test.hh"

namespace mcversi::gp {

std::vector<std::vector<std::size_t>>
Test::threadSlots(int num_threads) const
{
    std::vector<std::vector<std::size_t>> out(
        static_cast<std::size_t>(num_threads));
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        const Pid pid = nodes_[i].pid;
        if (pid >= 0 && pid < num_threads)
            out[static_cast<std::size_t>(pid)].push_back(i);
    }
    return out;
}

std::size_t
Test::countMemOps() const
{
    std::size_t n = 0;
    for (const Node &node : nodes_)
        if (node.op.isMem())
            ++n;
    return n;
}

std::unordered_set<Addr>
Test::usedAddrs() const
{
    std::unordered_set<Addr> out;
    for (const Node &node : nodes_)
        if (node.op.isMem())
            out.insert(node.op.addr);
    return out;
}

std::size_t
Test::countEvents() const
{
    std::size_t n = 0;
    for (const Node &node : nodes_)
        n += static_cast<std::size_t>(node.op.numEvents());
    return n;
}

std::uint64_t
Test::fingerprint() const
{
    // FNV-1a over the node contents.
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 1099511628211ull;
    };
    for (const Node &node : nodes_) {
        mix(static_cast<std::uint64_t>(node.pid));
        mix(static_cast<std::uint64_t>(node.op.kind));
        mix(node.op.addr);
        mix(node.op.delay);
    }
    return h;
}

} // namespace mcversi::gp
