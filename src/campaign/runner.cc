#include "campaign/runner.hh"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "campaign/registry.hh"
#include "host/parallel_harness.hh"
#include "litmus/runner.hh"
#include "litmus/suites.hh"

namespace mcversi::campaign {

CampaignResult
CampaignRunner::runOne(const CampaignSpec &spec, int eval_threads,
                       std::function<bool()> cancel)
{
    CampaignResult result;
    result.spec = spec;
    host::Budget budget = spec.budget();
    budget.interrupted = std::move(cancel);
    try {
        spec.validate();
        const SourceRegistry &registry = SourceRegistry::instance();
        if (registry.isLitmus(spec.generator)) {
            litmus::LitmusRunner::Params params;
            params.system = spec.systemConfig();
            params.iterationsPerRun = spec.litmusIterations;
            params.model = spec.model;
            params.checkMode = mc::parseCheckMode(spec.checkMode);
            params.witnessWindow = spec.witnessWindow;
            litmus::LitmusRunner runner(
                params, litmus::suiteForModel(spec.model));
            result.harness = runner.run(budget);
            result.protocolCoverage =
                runner.system().coverage().totalCoverage(
                    spec.protocolPrefix());
        } else if (spec.usesParallelHarness()) {
            // Batched multi-lane evaluation: one lane per island,
            // eval_threads workers, deterministic for any worker count.
            const std::unique_ptr<host::TestSource> source =
                registry.make(spec.generator, spec);
            host::ParallelHarness::Params params;
            params.harness = spec.harnessParams();
            params.lanes = spec.islands;
            params.batch = spec.batch;
            params.threads = eval_threads;
            host::ParallelHarness harness(params, *source);
            result.harness = harness.run(budget);
            result.protocolCoverage =
                harness.aggregateCoverage(spec.protocolPrefix());
        } else {
            const std::unique_ptr<host::TestSource> source =
                registry.make(spec.generator, spec);
            host::VerificationHarness harness(spec.harnessParams(),
                                              *source);
            result.harness = harness.run(budget);
            result.protocolCoverage =
                harness.system().coverage().totalCoverage(
                    spec.protocolPrefix());
        }
    } catch (const std::exception &e) {
        result.error = e.what();
    }
    return result;
}

CampaignSummary
CampaignRunner::run(const std::vector<CampaignSpec> &specs) const
{
    CampaignSummary summary;
    summary.results.resize(specs.size());
    if (specs.empty())
        return summary;

    std::size_t threads = options_.threads > 0
        ? static_cast<std::size_t>(options_.threads)
        : std::max(1u, std::thread::hardware_concurrency());
    threads = std::min(threads, specs.size());

    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex progress_mutex;

    auto worker = [&]() {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= specs.size())
                return;
            // Results land at the spec's own index: aggregation order
            // (and thus the exported summary) never depends on which
            // worker finished first.
            summary.results[i] = runOne(specs[i], options_.evalThreads);
            const std::size_t completed =
                done.fetch_add(1, std::memory_order_relaxed) + 1;
            if (options_.onResult) {
                std::lock_guard<std::mutex> lock(progress_mutex);
                options_.onResult(summary.results[i], completed,
                                  specs.size());
            }
        }
    };

    if (threads == 1) {
        worker();
        return summary;
    }
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();
    return summary;
}

} // namespace mcversi::campaign
