/**
 * @file
 * Consistency-model registry: name -> axiom profile.
 *
 * The built-in zoo covers the classic relaxation ladder -- SC, x86-ish
 * TSO, SPARC-ish PSO and RMO, and a release/acquire (RC-like) model --
 * each a ModelProfile interpreted by the shared engine. Lookup is
 * case-insensitive. Campaigns select a model with the "model=" spec
 * key; everything above the checker identifies models by these names.
 */

#ifndef MCVERSI_MEMCONSISTENCY_MODELS_REGISTRY_HH
#define MCVERSI_MEMCONSISTENCY_MODELS_REGISTRY_HH

#include <string>
#include <vector>

#include "memconsistency/models/profile.hh"

namespace mcversi::mc {

/** True if @p name (case-insensitive) is a registered model. */
bool hasModel(const std::string &name);

/**
 * Profile of a registered model. Throws std::invalid_argument naming
 * the registered models on an unknown name.
 */
const ModelProfile &modelProfile(const std::string &name);

/** Registered model names in strictness order (sc, tso, pso, rmo, rc). */
const std::vector<std::string> &modelNames();

/** The registered names joined as "sc, tso, pso, rmo, rc". */
std::string modelNamesJoined();

} // namespace mcversi::mc

#endif // MCVERSI_MEMCONSISTENCY_MODELS_REGISTRY_HH
