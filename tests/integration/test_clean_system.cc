/**
 * @file
 * Integration: the un-bugged implementations must never violate TSO.
 * Any failure here is a bug in the substrate (protocols, LSQ, network)
 * or the checker -- exactly the false positives a verification
 * framework must not produce.
 */

#include <gtest/gtest.h>

#include "host/harness.hh"
#include "litmus/runner.hh"
#include "litmus/suites.hh"

using namespace mcversi;
using namespace mcversi::host;

namespace {

struct CleanCase
{
    sim::Protocol protocol;
    Addr memSize;
    std::uint64_t seed;
};

std::string
caseName(const testing::TestParamInfo<CleanCase> &info)
{
    std::string name =
        info.param.protocol == sim::Protocol::Mesi ? "Mesi" : "Tsocc";
    name += info.param.memSize >= 8192 ? "8KB" : "1KB";
    name += "s" + std::to_string(info.param.seed);
    return name;
}

class CleanSystem : public testing::TestWithParam<CleanCase>
{
};

} // namespace

TEST_P(CleanSystem, NoViolationUnderGaFuzzing)
{
    const CleanCase &cc = GetParam();
    VerificationHarness::Params params;
    params.system.protocol = cc.protocol;
    params.system.seed = cc.seed;
    params.gen.testSize = 192;
    params.gen.iterations = 4;
    params.gen.memSize = cc.memSize;
    params.workload.iterations = 4;

    gp::GaParams ga;
    ga.population = 30;
    GaSource source(ga, params.gen, cc.seed,
                    gp::SteadyStateGa::XoMode::Selective);
    VerificationHarness harness(params, source);

    Budget budget;
    budget.maxTestRuns = 250;
    budget.maxWallSeconds = 180.0;
    HarnessResult result = harness.run(budget);
    EXPECT_FALSE(result.bugFound)
        << "false positive on the correct system: " << result.detail;
    EXPECT_GT(result.totalCoverage, 0.3);
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, CleanSystem,
    testing::Values(CleanCase{sim::Protocol::Mesi, 8192, 1},
                    CleanCase{sim::Protocol::Mesi, 1024, 2},
                    CleanCase{sim::Protocol::Tsocc, 8192, 3},
                    CleanCase{sim::Protocol::Tsocc, 1024, 4}),
    caseName);

TEST(CleanSystemLitmus, SuitePassesOnBothProtocols)
{
    for (const sim::Protocol protocol :
         {sim::Protocol::Mesi, sim::Protocol::Tsocc}) {
        litmus::LitmusRunner::Params params;
        params.system.protocol = protocol;
        params.system.seed = 9;
        params.iterationsPerRun = 10;
        litmus::LitmusRunner runner(params, litmus::x86TsoSuite());
        Budget budget;
        budget.maxTestRuns = 38;
        HarnessResult result = runner.run(budget);
        EXPECT_FALSE(result.bugFound)
            << "litmus false positive: " << result.detail;
    }
}

TEST(CleanSystemDeterminism, SameSeedSameOutcome)
{
    auto run_once = [](std::uint64_t seed) {
        VerificationHarness::Params params;
        params.system.seed = seed;
        params.gen.testSize = 64;
        params.gen.iterations = 2;
        params.gen.memSize = 1024;
        params.workload.iterations = 2;
        RandomSource source(params.gen, seed);
        VerificationHarness harness(params, source);
        Budget budget;
        budget.maxTestRuns = 10;
        HarnessResult r = harness.run(budget);
        return std::make_tuple(r.simTicks, r.eventsExecuted,
                               r.testRuns);
    };
    EXPECT_EQ(run_once(42), run_once(42))
        << "simulation must be reproducible given a seed";
}
