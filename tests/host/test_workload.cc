/** @file Workload (Algorithm 2) tests on the real system. */

#include <gtest/gtest.h>

#include "host/harness.hh"
#include "host/workload.hh"
#include "gp/randgen.hh"

using namespace mcversi;
using namespace mcversi::host;
using mcversi::host::layoutFor;

namespace {

struct WorkloadFixture
{
    sim::SystemConfig cfg;
    std::unique_ptr<sim::System> sys;
    std::unique_ptr<mc::Checker> checker;
    std::unique_ptr<Workload> workload;
    gp::GenParams gen;

    explicit WorkloadFixture(sim::BugId bug = sim::BugId::None,
                             int iterations = 3)
    {
        cfg.bug = bug;
        cfg.seed = 11;
        sys = std::make_unique<sim::System>(cfg);
        checker = std::make_unique<mc::Checker>(mc::makeTso());
        gen.testSize = 64;
        gen.iterations = iterations;
        gen.memSize = 1024;
        Workload::Params params;
        params.iterations = iterations;
        workload = std::make_unique<Workload>(*sys, *checker,
                                              layoutFor(gen), params);
    }
};

} // namespace

TEST(Workload, RunsAllIterationsOnCleanSystem)
{
    WorkloadFixture f;
    gp::RandomTestGen rtg(f.gen);
    Rng rng(1);
    RunResult r = f.workload->runTest(rtg.randomTest(rng));
    EXPECT_FALSE(r.bugDetected());
    EXPECT_EQ(r.iterationsRun, 3);
    EXPECT_GT(r.eventsExecuted, 0u);
    EXPECT_GT(r.simTicks, 0u);
    EXPECT_EQ(r.describe(), "ok");
}

TEST(Workload, CoverageDeltaNonEmpty)
{
    WorkloadFixture f;
    gp::RandomTestGen rtg(f.gen);
    Rng rng(2);
    RunResult r = f.workload->runTest(rtg.randomTest(rng));
    EXPECT_FALSE(r.coveredTransitions.empty());
    EXPECT_FALSE(r.preRunCounts.empty());
}

TEST(Workload, NdtAtLeastOneForRacyMemory)
{
    // With a tiny 1KB region and 64 ops the test is automatically racy
    // (paper: 1KB tests start with NDT > 2); at minimum every executed
    // event has one producer.
    WorkloadFixture f;
    gp::RandomTestGen rtg(f.gen);
    Rng rng(3);
    RunResult r = f.workload->runTest(rtg.randomTest(rng));
    EXPECT_GE(r.nd.ndt, 0.9);
}

TEST(Workload, EmitProgramsMapsThreadsAndAddresses)
{
    WorkloadFixture f;
    std::vector<gp::Node> nodes;
    nodes.push_back({0, gp::Op{gp::OpKind::Write, 0x10}});
    nodes.push_back({1, gp::Op{gp::OpKind::Read, 0x20}});
    nodes.push_back({0, gp::Op{gp::OpKind::Delay}});
    gp::Test test(std::move(nodes));
    gp::ThreadSlots slots;
    auto programs = f.workload->emitPrograms(test, slots);
    ASSERT_EQ(programs.size(), 8u);
    EXPECT_EQ(programs[0].instrs.size(), 2u);
    EXPECT_EQ(programs[1].instrs.size(), 1u);
    EXPECT_EQ(programs[0].instrs[0].kind, sim::InstrKind::Store);
    const TestMemLayout &layout = f.workload->services().layout();
    EXPECT_EQ(programs[0].instrs[0].addr, layout.toPhys(0x10));
    EXPECT_EQ(std::vector<std::size_t>(slots.thread(0).begin(),
                                       slots.thread(0).end()),
              (std::vector<std::size_t>{0, 2}));
    EXPECT_EQ(std::vector<std::size_t>(slots.thread(1).begin(),
                                       slots.thread(1).end()),
              (std::vector<std::size_t>{1}));
}

TEST(Workload, DetectsInjectedLqBug)
{
    // LQ+no-TSO is the easiest bug (found in ~0.00h in the paper):
    // random 1KB tests should expose it within a modest budget.
    WorkloadFixture f(sim::BugId::LqNoTso, 4);
    gp::RandomTestGen rtg(f.gen);
    Rng rng(4);
    bool found = false;
    for (int t = 0; t < 300 && !found; ++t) {
        RunResult r = f.workload->runTest(rtg.randomTest(rng));
        if (r.bugDetected()) {
            found = true;
            EXPECT_TRUE(r.violation);
            EXPECT_GE(r.violationIteration, 0);
            EXPECT_FALSE(r.describe().empty());
        }
    }
    EXPECT_TRUE(found);
}

TEST(Workload, ConditionHookStopsRun)
{
    WorkloadFixture f;
    gp::RandomTestGen rtg(f.gen);
    Rng rng(5);
    int calls = 0;
    RunResult r = f.workload->runTest(
        rtg.randomTest(rng), [&calls](const mc::ExecWitness &) {
            ++calls;
            return true; // "forbidden outcome" on first iteration
        });
    EXPECT_TRUE(r.conditionHit);
    EXPECT_TRUE(r.bugDetected());
    EXPECT_EQ(r.iterationsRun, 1);
    EXPECT_EQ(calls, 1);
}

TEST(Workload, CheckTimeIsMeasured)
{
    WorkloadFixture f;
    gp::RandomTestGen rtg(f.gen);
    Rng rng(6);
    RunResult r = f.workload->runTest(rtg.randomTest(rng));
    EXPECT_GT(r.checkSeconds, 0.0);
    EXPECT_GT(r.totalSeconds, r.checkSeconds);
}

TEST(Workload, GuestBarrierSkewStillCorrect)
{
    WorkloadFixture f;
    Workload::Params params = f.workload->params();
    params.barrierSkew = 400; // guest software barrier
    params.guestOverhead = 1000;
    f.workload->setParams(params);
    gp::RandomTestGen rtg(f.gen);
    Rng rng(7);
    RunResult r = f.workload->runTest(rtg.randomTest(rng));
    EXPECT_FALSE(r.bugDetected())
        << "skewed starts must not break correctness";
}
