#include "memconsistency/signature.hh"

namespace mcversi::mc {

namespace {

constexpr std::int32_t kUnassigned = -1;

/** Canonical encoding of "no conflict predecessor" (kNoEvent). No real
 * canonical id reaches this value: ids are bounded by events + addrs,
 * both int32. */
constexpr std::uint64_t kNoneRef = 0xffffffffull;

// Domain separators so a thread boundary can never be confused with an
// event record or a conflict edge.
constexpr std::uint64_t kThreadTag = 0x7464'0001ull;
constexpr std::uint64_t kRfTag = 0x7264'0002ull;
constexpr std::uint64_t kCoTag = 0x636f'0003ull;

/** splitMix64 finalizer: full-avalanche 64-bit mix. */
inline std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
}

/**
 * Two independently-mixed 64-bit accumulators. Each lane absorbs every
 * fed word through a different injection (xor vs multiply-add), so a
 * collision requires both 64-bit states to collide simultaneously.
 */
struct Mixer
{
    std::uint64_t lo = 0x243f6a8885a308d3ull;
    std::uint64_t hi = 0x13198a2e03707344ull;

    void
    feed(std::uint64_t v)
    {
        lo = mix64(lo ^ v);
        hi = mix64(hi + v * 0x9e3779b97f4a7c15ull + 0x165667b19e3779f9ull);
    }
};

} // namespace

std::uint64_t
modelSalt(const std::string &model_name)
{
    // FNV-1a over the name bytes; never returns 0, the "no salt"
    // sentinel that keeps model-free signatures byte-stable.
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : model_name) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h == 0 ? 0x9e3779b97f4a7c15ull : h;
}

WitnessSignature
SignatureBuilder::compute(const ExecWitness &ew)
{
    canonEvent_.assign(ew.numEvents(), kUnassigned);
    canonAddr_.assign(ew.numAddrs(), kUnassigned);
    std::int32_t next_event = 0;
    std::int32_t next_addr = 0;

    Mixer mix;
    // Model keying: identical shapes checked under different models
    // belong to different verdict equivalence classes.
    if (salt_ != 0)
        mix.feed(salt_);

    // Canonical names are handed out by first occurrence -- own
    // position or first reference -- in the single (ascending pid,
    // program order) traversal. Init events and forward conflict
    // references (a read observing a write later in the traversal) are
    // therefore named at their first *reference*; the reference order
    // is itself canonical, so the assignment stays renaming-invariant.
    auto canonRef = [&](EventId target) -> std::uint64_t {
        if (target == kNoEvent)
            return kNoneRef;
        std::int32_t &c = canonEvent_[static_cast<std::size_t>(target)];
        if (c == kUnassigned)
            c = next_event++;
        return static_cast<std::uint64_t>(static_cast<std::uint32_t>(c));
    };

    // One pass hashes both the per-thread ppo shape -- (type, rmw, sub,
    // address class) per event -- and the conflict orders: rf as each
    // read's producing write, co as each write's immediate predecessor
    // (the per-address chains are total, so the predecessor mapping
    // determines them completely). Addresses are named by first touch
    // in the same traversal, so raw address values never enter the
    // hash. Tag and canonical reference pack into one word --
    // references are 32-bit -- keeping the cost at two feeds per
    // event; the cheaper the hash, the bigger the collective-checking
    // win per cache hit.
    for (const Pid pid : ew.threads()) {
        mix.feed((kThreadTag << 32) |
                 static_cast<std::uint64_t>(static_cast<std::uint32_t>(pid)));
        for (const EventId id : ew.threadEvents(pid)) {
            std::int32_t &ce = canonEvent_[static_cast<std::size_t>(id)];
            if (ce == kUnassigned)
                ce = next_event++;
            const Event &ev = ew.event(id);
            const AddrId aid = ew.addrId(id);
            std::int32_t ca = kUnassigned; // address-less event
            if (aid >= 0) {
                std::int32_t &slot =
                    canonAddr_[static_cast<std::size_t>(aid)];
                if (slot == kUnassigned)
                    slot = next_addr++;
                ca = slot;
            }
            mix.feed(
                (static_cast<std::uint64_t>(ev.type) << 48) |
                (static_cast<std::uint64_t>(ev.rmw) << 40) |
                (static_cast<std::uint64_t>(ev.sub) << 32) |
                static_cast<std::uint64_t>(static_cast<std::uint32_t>(ca)));
            if (ev.isRead())
                mix.feed((kRfTag << 32) | canonRef(ew.rfSource(id)));
            else
                mix.feed((kCoTag << 32) | canonRef(ew.coPredecessor(id)));
        }
    }

    return WitnessSignature{mix.lo, mix.hi};
}

} // namespace mcversi::mc
