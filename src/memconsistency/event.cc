#include "memconsistency/event.hh"

#include <sstream>

namespace mcversi::mc {

std::string
Event::toString() const
{
    std::ostringstream os;
    if (isInit()) {
        os << "Init";
    } else {
        os << "P" << iiid.pid << ":" << iiid.poi;
        if (rmw)
            os << (sub == 0 ? "r" : "w");
    }
    os << " " << (isRead() ? "R" : "W") << " 0x" << std::hex << addr
       << std::dec << " v=" << value;
    return os.str();
}

} // namespace mcversi::mc
