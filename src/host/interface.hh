/**
 * @file
 * Guest-host interface (Table 1 of the paper).
 *
 * The guest workload is simulation-aware: functions that would dominate
 * wall-clock time if executed as guest code are implemented by the host
 * (the simulator) instead. HostServices exposes the Table 1 functions;
 * the Workload (Algorithm 2) is their only caller.
 *
 * Test memory layout: to ensure cache capacity evictions take place,
 * test memory is partitioned into contiguous 512B blocks whose starting
 * addresses are separated by 1MB (§5.2.1); e.g. 8KB of test memory maps
 * to 16 such partitions.
 */

#ifndef MCVERSI_HOST_INTERFACE_HH
#define MCVERSI_HOST_INTERFACE_HH

#include <vector>

#include "common/types.hh"
#include "sim/cpu/program.hh"
#include "sim/system.hh"

namespace mcversi::host {

/** Logical test-memory to physical address mapping. */
class TestMemLayout
{
  public:
    static constexpr Addr kDefaultPhysBase = 0x100000;
    static constexpr Addr kPartitionSize = 512;
    static constexpr Addr kPartitionSpacing = 1024 * 1024;

    TestMemLayout() = default;

    TestMemLayout(Addr mem_size, Addr stride,
                  Addr phys_base = kDefaultPhysBase)
        : memSize_(mem_size), stride_(stride), physBase_(phys_base)
    {
    }

    Addr memSize() const { return memSize_; }
    Addr stride() const { return stride_; }

    /** Number of 512B partitions. */
    Addr
    numPartitions() const
    {
        return (memSize_ + kPartitionSize - 1) / kPartitionSize;
    }

    /** Map a logical test-memory offset to a physical address. */
    Addr
    toPhys(Addr logical) const
    {
        const Addr partition = logical / kPartitionSize;
        const Addr offset = logical % kPartitionSize;
        return physBase_ + partition * kPartitionSpacing + offset;
    }

    /** Inverse of toPhys (physical address must be in the region). */
    Addr
    toLogical(Addr phys) const
    {
        const Addr rel = phys - physBase_;
        const Addr partition = rel / kPartitionSpacing;
        const Addr offset = rel % kPartitionSpacing;
        return partition * kPartitionSize + offset;
    }

    /** True if @p phys lies inside the mapped test region. */
    bool
    contains(Addr phys) const
    {
        if (phys < physBase_)
            return false;
        const Addr rel = phys - physBase_;
        if (rel % kPartitionSpacing >= kPartitionSize)
            return false;
        return toLogical(phys) < memSize_;
    }

    /** All word addresses of the region (for host-side zeroing). */
    std::vector<Addr> wordAddrs() const;

  private:
    Addr memSize_ = 0;
    Addr stride_ = 16;
    Addr physBase_ = kDefaultPhysBase;
};

/**
 * Host side of the guest-host interface (Table 1).
 *
 * Function-to-method mapping:
 *   barrier_wait_coarse()   -> barrierWaitCoarse()
 *   barrier_wait_precise()  -> barrierWaitPrecise()
 *   make_test_thread(code)  -> makeTestThread(pid, program)
 *   mark_test_mem_range(a,b)-> markTestMemRange(layout)
 *   reset_test_mem()        -> resetTestMem()
 *   verify_reset_all()/verify_reset_conflict() are implemented by the
 *   Workload (they need the checker and the GA feedback path).
 */
class HostServices
{
  public:
    explicit HostServices(sim::System &system)
        : system_(system), skewRng_(system.config().seed ^ 0x5eedULL)
    {
    }

    /** mark_test_mem_range: configure the test generator range. */
    void
    markTestMemRange(const TestMemLayout &layout)
    {
        layout_ = layout;
    }

    const TestMemLayout &layout() const { return layout_; }

    /** make_test_thread: host writes the code for one thread. */
    void
    makeTestThread(Pid pid, sim::Program program)
    {
        system_.core(pid).loadProgram(std::move(program));
    }

    /**
     * barrier_wait_coarse: wait for all threads and the memory system
     * to quiesce. Host-assisted: the event queue simply runs dry.
     * May throw sim::ProtocolError.
     */
    void
    barrierWaitCoarse()
    {
        system_.runToQuiescence();
    }

    /**
     * barrier_wait_precise: release all threads in lock-step.
     *
     * @param max_skew 0 for host-assisted precision (threads start
     *        within 2 cycles); large values model a guest software
     *        barrier's release skew (ablation studies)
     * @return the base start tick used
     */
    Tick barrierWaitPrecise(Tick max_skew = 2);

    /**
     * reset_test_mem: write initial values to all test locations and
     * flush caches and other structures affecting the next execution.
     * Only legal at quiescence.
     */
    void resetTestMem();

    sim::System &system() { return system_; }

  private:
    sim::System &system_;
    Rng skewRng_;
    TestMemLayout layout_;
};

} // namespace mcversi::host

#endif // MCVERSI_HOST_INTERFACE_HH
