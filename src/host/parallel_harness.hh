/**
 * @file
 * Batched multi-lane verification harness.
 *
 * The serial VerificationHarness owns one simulated system and strictly
 * alternates generate/evaluate. The ParallelHarness scales one campaign
 * across worker threads while staying byte-deterministic for any worker
 * count:
 *
 *  - Lanes: L independent simulation shards (System + Checker +
 *    Workload), one per engine island. Batch slot b of batch n is
 *    always evaluated on lane (issued + b) % L, the same round-robin
 *    deal the EvolutionEngine uses for islands -- an island's tests
 *    always execute on the same lane's continuously-running system, so
 *    coverage counters, write-value IDs and sim RNG streams evolve per
 *    lane exactly as in a serial campaign on that lane.
 *
 *  - Batch barriers: each cycle pulls one batch from the source,
 *    evaluates all slots (workers claim whole lanes, each lane runs its
 *    slots in ascending order), then merges at the barrier in slot
 *    order: adaptive-fitness scores were computed against the cut-off
 *    frozen at batch start (AdaptiveCoverageFitness::score), and the
 *    cut-off/stall state is advanced by record() replayed in slot
 *    order. Worker count never changes what is computed -- only which
 *    OS thread computes it.
 *
 *  - Bug stop: the batch containing the first bug is still merged in
 *    full (batch semantics); bugFound/testRunsToBug point at the
 *    earliest bug slot. Wall-clock budget is checked at barriers.
 *
 * threads=1 and threads=N produce byte-identical HarnessResults (and
 * thus campaign summaries) because every lane's work and the merge
 * order are functions of the spec alone.
 */

#ifndef MCVERSI_HOST_PARALLEL_HARNESS_HH
#define MCVERSI_HOST_PARALLEL_HARNESS_HH

#include <memory>
#include <string>
#include <vector>

#include "gp/fitness.hh"
#include "host/harness.hh"
#include "host/sources.hh"
#include "host/workload.hh"
#include "memconsistency/checker.hh"
#include "sim/system.hh"

namespace mcversi::host {

/** Batched, lane-sharded verification harness. */
class ParallelHarness
{
  public:
    struct Params
    {
        /** Per-lane system/generation/workload configuration. */
        VerificationHarness::Params harness{};
        /**
         * Simulation shards. Must equal the source's island count when
         * driving a GaSource (both deal round-robin by the same
         * counter); any value works for stateless sources.
         */
        std::size_t lanes = 1;
        /** Tests pulled per batch barrier. */
        std::size_t batch = 1;
        /** Worker threads; <= 0 selects the hardware concurrency. */
        int threads = 1;
    };

    ParallelHarness(Params params, TestSource &source);

    /** Run until a bug is found or the budget is exhausted. */
    HarnessResult run(const Budget &budget);

    std::size_t lanes() const { return lanes_.size(); }
    sim::System &laneSystem(std::size_t lane)
    {
        return *lanes_[lane]->system;
    }
    gp::AdaptiveCoverageFitness &fitness() { return fitness_; }

    /**
     * Coverage aggregated across lanes: the fraction of registered
     * transitions observed on at least one lane, optionally restricted
     * to a controller-name prefix. (Transition registration is
     * config-deterministic, so ids agree across lanes.)
     */
    double aggregateCoverage(const std::string &prefix = "") const;

  private:
    struct Lane
    {
        std::unique_ptr<sim::System> system;
        std::unique_ptr<mc::Checker> checker;
        std::unique_ptr<Workload> workload;
    };

    /** Deterministic per-slot evaluation record, merged at barriers. */
    struct SlotOutcome
    {
        bool bug = false;
        std::string detail;
        /** Streaming-mode detection latency of a bug slot (events). */
        std::uint64_t eventsUntilDetection = 0;
        double ndt = 0.0;
        double checkSeconds = 0.0;
        std::uint64_t simTicks = 0;
        std::uint64_t eventsExecuted = 0;
        std::uint64_t simEvents = 0;
        std::uint64_t messagesSent = 0;
    };

    /** Evaluate every slot of lane @p lane for the current batch. */
    void evaluateLane(std::size_t lane);

    Params params_;
    TestSource &source_;
    std::vector<std::unique_ptr<Lane>> lanes_;
    gp::AdaptiveCoverageFitness fitness_;

    /** Batch state (slot-indexed, reused across batches). */
    std::vector<gp::Test> batchTests_;
    std::vector<RunFeedback> batchFeedback_;
    std::vector<SlotOutcome> batchOutcome_;
    std::vector<std::uint32_t> laneOfSlot_;
    std::size_t batchSize_ = 0;
    /** Monotone issue counter aligning slots with engine islands. */
    std::uint64_t issued_ = 0;
};

} // namespace mcversi::host

#endif // MCVERSI_HOST_PARALLEL_HARNESS_HH
