#include "sim/system.hh"

namespace mcversi::sim {

System::System(SystemConfig cfg) : cfg_(cfg), masterRng_(cfg.seed)
{
    Network::Params net_params;
    net_params.cols = cfg_.meshCols;
    net_params.rows = cfg_.meshRows;
    net_params.baseLatency = cfg_.netBaseLatency;
    net_params.perHop = cfg_.netPerHop;
    net_params.maxJitter = cfg_.netMaxJitter;
    net_ = std::make_unique<Network>(eq_, masterRng_.fork(), net_params);

    MainMemory::Params mem_params;
    mem_params.minLatency = cfg_.memMinLatency;
    mem_params.maxLatency = cfg_.memMaxLatency;
    mem_ = std::make_unique<MainMemory>(eq_, *net_, masterRng_.fork(),
                                        mem_params);
    net_->registerNode(kMemNode, mem_.get());

    for (int t = 0; t < cfg_.numL2Tiles(); ++t) {
        if (cfg_.protocol == Protocol::Mesi) {
            mesiL2s_.push_back(std::make_unique<MesiL2>(
                t, cfg_, eq_, *net_, cov_, masterRng_.fork()));
            net_->registerNode(l2Node(t), mesiL2s_.back().get());
        } else {
            tsoccL2s_.push_back(std::make_unique<TsoccL2>(
                t, cfg_, eq_, *net_, cov_, masterRng_.fork()));
            net_->registerNode(l2Node(t), tsoccL2s_.back().get());
        }
    }

    for (Pid p = 0; p < static_cast<Pid>(cfg_.numCores); ++p) {
        L1Cache *l1_ptr = nullptr;
        if (cfg_.protocol == Protocol::Mesi) {
            mesiL1s_.push_back(std::make_unique<MesiL1>(
                p, cfg_, eq_, *net_, cov_, masterRng_.fork()));
            net_->registerNode(coreNode(p), mesiL1s_.back().get());
            l1_ptr = mesiL1s_.back().get();
        } else {
            tsoccL1s_.push_back(std::make_unique<TsoccL1>(
                p, cfg_, eq_, *net_, cov_, masterRng_.fork()));
            net_->registerNode(coreNode(p), tsoccL1s_.back().get());
            l1_ptr = tsoccL1s_.back().get();
        }
        cores_.push_back(std::make_unique<Core>(p, cfg_, eq_, l1_ptr,
                                                masterRng_.fork()));
        cores_.back()->setWitness(&witness_);
        cores_.back()->setValueSource([this]() { return takeWriteVal(); });
    }
}

L1Cache *
System::l1(Pid pid)
{
    if (cfg_.protocol == Protocol::Mesi)
        return mesiL1s_[static_cast<std::size_t>(pid)].get();
    return tsoccL1s_[static_cast<std::size_t>(pid)].get();
}

MesiL1 *
System::mesiL1(Pid pid)
{
    return pid < static_cast<Pid>(mesiL1s_.size())
               ? mesiL1s_[static_cast<std::size_t>(pid)].get()
               : nullptr;
}

MesiL2 *
System::mesiL2(int tile)
{
    return tile < static_cast<int>(mesiL2s_.size())
               ? mesiL2s_[static_cast<std::size_t>(tile)].get()
               : nullptr;
}

TsoccL1 *
System::tsoccL1(Pid pid)
{
    return pid < static_cast<Pid>(tsoccL1s_.size())
               ? tsoccL1s_[static_cast<std::size_t>(pid)].get()
               : nullptr;
}

TsoccL2 *
System::tsoccL2(int tile)
{
    return tile < static_cast<int>(tsoccL2s_.size())
               ? tsoccL2s_[static_cast<std::size_t>(tile)].get()
               : nullptr;
}

void
System::resetProtocolState()
{
    for (auto &l1 : mesiL1s_)
        l1->resetAll();
    for (auto &l2 : mesiL2s_)
        l2->resetAll();
    for (auto &l1 : tsoccL1s_)
        l1->resetAll();
    for (auto &l2 : tsoccL2s_)
        l2->resetAll();
    net_->resetOrdering();
}

void
System::zeroMemory(const std::vector<Addr> &word_addrs)
{
    for (const Addr a : word_addrs)
        mem_->setWord(a, kInitVal);
}

std::uint64_t
System::runToQuiescence()
{
    return eq_.runUntilQuiescent();
}

} // namespace mcversi::sim
