/**
 * @file
 * §5.2.1 companion: checker cost as a fraction of total wall-clock.
 *
 * The paper reports that with 1k-op tests the checker generally uses
 * between 30%% and 40%% of the total wall-clock time. This bench runs
 * test-runs at the paper's full test size and reports the measured
 * fraction, plus absolute checking throughput (events/s).
 */

#include "bench_common.hh"

using namespace mcvbench;

int
main()
{
    const double scale = benchScale();
    const auto runs = static_cast<std::uint64_t>(20 * scale);

    host::VerificationHarness::Params params;
    params.system.seed = 17;
    params.gen.testSize = 1000; // Table 3: the paper's test size
    params.gen.iterations = 10; // Table 3
    params.gen.memSize = 8 * 1024;
    params.workload.iterations = params.gen.iterations;
    params.recordNdt = false;

    host::RandomSource source(params.gen, 17);
    host::VerificationHarness harness(params, source);

    host::Budget budget;
    budget.maxTestRuns = runs;
    const host::HarnessResult result = harness.run(budget);

    const double frac = result.checkSeconds / result.wallSeconds;
    std::printf("checker cost at 1k-op tests, 10 iterations/run "
                "(%llu test-runs):\n",
                static_cast<unsigned long long>(result.testRuns));
    std::printf("  total wall:    %.3f s\n", result.wallSeconds);
    std::printf("  checker wall:  %.3f s\n", result.checkSeconds);
    std::printf("  fraction:      %.1f%%   (paper: 30-40%%)\n",
                100.0 * frac);
    std::printf("  events checked: %llu (%.0f events/s in checker)\n",
                static_cast<unsigned long long>(result.eventsExecuted),
                static_cast<double>(result.eventsExecuted) /
                    result.checkSeconds);
    return 0;
}
