#include "gp/crossover.hh"

namespace mcversi::gp {

double
fitaddrFraction(const Test &test, const AddrSet &fitaddrs)
{
    std::size_t mem_ops = 0;
    std::size_t fit = 0;
    for (const Node &node : test.nodes()) {
        if (!node.op.isMem())
            continue;
        ++mem_ops;
        if (fitaddrs.count(node.op.addr))
            ++fit;
    }
    if (mem_ops == 0)
        return 0.0;
    return static_cast<double>(fit) / static_cast<double>(mem_ops);
}

Test
crossoverMutate(const Test &t1, const NdInfo &nd1, const Test &t2,
                const NdInfo &nd2, const RandomTestGen &gen,
                const GaParams &ga, Rng &rng)
{
    const std::size_t len = t1.size();

    const double a1 = fitaddrFraction(t1, nd1.fitaddrs);
    const double a2 = fitaddrFraction(t2, nd2.fitaddrs);
    // Selection probability for non-memory ops: matches the expected
    // selection rate of memory ops in the same parent.
    const double p_select1 = a1 + ga.pUsel - a1 * ga.pUsel;
    const double p_select2 = a2 + ga.pUsel - a2 * ga.pUsel;

    // Union of both parents' fit addresses, for PBFA-directed mutation.
    AddrSet fit_union = nd1.fitaddrs;
    fit_union.insert(nd2.fitaddrs);

    Test child = t1;
    std::size_t mutations = 0;

    for (std::size_t i = 0; i < len; ++i) {
        const Node &n1 = t1.node(i);
        bool select1;
        if (n1.op.isMem()) {
            select1 = rng.boolWithProb(ga.pUsel) ||
                      nd1.fitaddrs.count(n1.op.addr) > 0;
        } else {
            select1 = rng.boolWithProb(p_select1);
        }

        const Node &n2 = t2.node(i);
        bool select2;
        if (n2.op.isMem()) {
            select2 = rng.boolWithProb(ga.pUsel) ||
                      nd2.fitaddrs.count(n2.op.addr) > 0;
        } else {
            select2 = rng.boolWithProb(p_select2);
        }

        if (!select1 && select2) {
            child.node(i) = t2.node(i);
        } else if (!select1 && !select2) {
            ++mutations;
            if (rng.boolWithProb(ga.pBfa)) {
                child.node(i) =
                    gen.randomNodeConstrained(rng, fit_union);
            } else {
                child.node(i) = gen.randomNode(rng);
            }
        }
        // Otherwise retain child[i] (== t1[i]).
    }

    // Top up mutation if the implicit mutation rate fell short.
    if (len > 0 &&
        static_cast<double>(mutations) / static_cast<double>(len) <
            ga.pMut) {
        for (std::size_t i = 0; i < len; ++i) {
            if (rng.boolWithProb(ga.pMut))
                child.node(i) = gen.randomNode(rng);
        }
    }
    return child;
}

Test
singlePointCrossoverMutate(const Test &t1, const Test &t2,
                           const RandomTestGen &gen, const GaParams &ga,
                           Rng &rng)
{
    const std::size_t len = t1.size();
    Test child = t1;
    if (len > 1) {
        const std::size_t point =
            static_cast<std::size_t>(rng.below(len - 1)) + 1;
        for (std::size_t i = point; i < len; ++i)
            child.node(i) = t2.node(i);
    }
    for (std::size_t i = 0; i < len; ++i) {
        if (rng.boolWithProb(ga.pMut))
            child.node(i) = gen.randomNode(rng);
    }
    return child;
}

} // namespace mcversi::gp
