#include "gp/crossover.hh"

namespace mcversi::gp {

double
fitaddrFraction(std::span<const Node> genes, const AddrSet &fitaddrs)
{
    std::size_t mem_ops = 0;
    std::size_t fit = 0;
    for (const Node &node : genes) {
        if (!node.op.isMem())
            continue;
        ++mem_ops;
        if (fitaddrs.count(node.op.addr))
            ++fit;
    }
    if (mem_ops == 0)
        return 0.0;
    return static_cast<double>(fit) / static_cast<double>(mem_ops);
}

void
crossoverMutateInto(std::span<const Node> t1, const NdInfo &nd1,
                    std::span<const Node> t2, const NdInfo &nd2,
                    const RandomTestGen &gen, const GaParams &ga,
                    Rng &rng, std::span<Node> child, AddrSet &fit_union)
{
    const std::size_t len = t1.size();

    const double a1 = fitaddrFraction(t1, nd1.fitaddrs);
    const double a2 = fitaddrFraction(t2, nd2.fitaddrs);
    // Selection probability for non-memory ops: matches the expected
    // selection rate of memory ops in the same parent.
    const double p_select1 = a1 + ga.pUsel - a1 * ga.pUsel;
    const double p_select2 = a2 + ga.pUsel - a2 * ga.pUsel;

    // Union of both parents' fit addresses, for PBFA-directed mutation.
    // Elementwise inserts into the caller's scratch keep its capacity.
    fit_union.clear();
    for (const Addr a : nd1.fitaddrs)
        fit_union.insert(a);
    for (const Addr a : nd2.fitaddrs)
        fit_union.insert(a);

    std::size_t mutations = 0;

    for (std::size_t i = 0; i < len; ++i) {
        const Node &n1 = t1[i];
        bool select1;
        if (n1.op.isMem()) {
            select1 = rng.boolWithProb(ga.pUsel) ||
                      nd1.fitaddrs.count(n1.op.addr) > 0;
        } else {
            select1 = rng.boolWithProb(p_select1);
        }

        const Node &n2 = t2[i];
        bool select2;
        if (n2.op.isMem()) {
            select2 = rng.boolWithProb(ga.pUsel) ||
                      nd2.fitaddrs.count(n2.op.addr) > 0;
        } else {
            select2 = rng.boolWithProb(p_select2);
        }

        if (!select1 && select2) {
            child[i] = n2;
        } else if (!select1 && !select2) {
            ++mutations;
            if (rng.boolWithProb(ga.pBfa)) {
                child[i] = gen.randomNodeConstrained(rng, fit_union);
            } else {
                child[i] = gen.randomNode(rng);
            }
        } else {
            child[i] = n1;
        }
    }

    // Top up mutation if the implicit mutation rate fell short.
    if (len > 0 &&
        static_cast<double>(mutations) / static_cast<double>(len) <
            ga.pMut) {
        for (std::size_t i = 0; i < len; ++i) {
            if (rng.boolWithProb(ga.pMut))
                child[i] = gen.randomNode(rng);
        }
    }
}

Test
crossoverMutate(const Test &t1, const NdInfo &nd1, const Test &t2,
                const NdInfo &nd2, const RandomTestGen &gen,
                const GaParams &ga, Rng &rng)
{
    Test child;
    child.resize(t1.size());
    AddrSet fit_union;
    crossoverMutateInto(t1.genes(), nd1, t2.genes(), nd2, gen, ga, rng,
                        child.genes(), fit_union);
    return child;
}

void
singlePointCrossoverMutateInto(std::span<const Node> t1,
                               std::span<const Node> t2,
                               const RandomTestGen &gen,
                               const GaParams &ga, Rng &rng,
                               std::span<Node> child)
{
    const std::size_t len = t1.size();
    std::size_t point = len;
    if (len > 1)
        point = static_cast<std::size_t>(rng.below(len - 1)) + 1;
    for (std::size_t i = 0; i < len; ++i)
        child[i] = i < point ? t1[i] : t2[i];
    for (std::size_t i = 0; i < len; ++i) {
        if (rng.boolWithProb(ga.pMut))
            child[i] = gen.randomNode(rng);
    }
}

Test
singlePointCrossoverMutate(const Test &t1, const Test &t2,
                           const RandomTestGen &gen, const GaParams &ga,
                           Rng &rng)
{
    Test child;
    child.resize(t1.size());
    singlePointCrossoverMutateInto(t1.genes(), t2.genes(), gen, ga, rng,
                                   child.genes());
    return child;
}

} // namespace mcversi::gp
