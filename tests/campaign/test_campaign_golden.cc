/**
 * @file
 * Golden regression for campaign-summary determinism.
 *
 * Runs a fixed small campaign matrix and compares the timing-free JSON
 * export byte-for-byte against a checked-in golden file. This pins the
 * entire pipeline -- test generation, simulation, witness recording,
 * checking, coverage accounting, aggregation, JSON formatting -- to a
 * single deterministic artifact: any unintended behavioral change in a
 * refactor shows up as a byte diff here.
 *
 * The golden was generated with the pre-flattening seed checker and
 * re-verified byte-identical under the flattened hot path (the only
 * regeneration since was for the LQ writeback-window notification fix,
 * a deliberate behavioral change; see git history of this file's
 * golden). To regenerate after an intentional change, run this test
 * and copy the summary the failure message points at, or rebuild the
 * matrix below through CampaignRunner and write toJson(false) to
 * tests/campaign/golden_summary.json.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "campaign/runner.hh"

using namespace mcversi;
using namespace mcversi::campaign;

namespace {

std::vector<CampaignSpec>
goldenMatrix()
{
    CampaignMatrix matrix;
    matrix.base.testSize = 64;
    matrix.base.iterations = 2;
    matrix.base.memSize = 1024;
    matrix.base.population = 8;
    matrix.base.maxTestRuns = 3;
    matrix.bugs = {"none"};
    matrix.generators = {"McVerSi-ALL", "McVerSi-RAND"};
    matrix.seeds = {1, 2};
    std::vector<CampaignSpec> specs = matrix.expand();

    CampaignSpec litmus = matrix.base;
    litmus.bug = "none";
    litmus.generator = "diy-litmus";
    litmus.litmusIterations = 2;
    litmus.maxTestRuns = 2;
    specs.push_back(litmus);
    return specs;
}

std::string
readGolden()
{
    std::ifstream in(MCVERSI_CAMPAIGN_GOLDEN_PATH, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

} // namespace

TEST(CampaignGolden, SummaryJsonIsByteIdenticalToGolden)
{
    CampaignRunner::Options options;
    options.threads = 2;
    const CampaignSummary summary =
        CampaignRunner(options).run(goldenMatrix());
    ASSERT_EQ(summary.errors(), 0u);

    const std::string json = summary.toJson(false);

    if (std::getenv("MCVERSI_UPDATE_GOLDEN") != nullptr) {
        std::ofstream outf(MCVERSI_CAMPAIGN_GOLDEN_PATH,
                           std::ios::binary);
        outf << json;
        ASSERT_TRUE(outf.good())
            << "failed to write " << MCVERSI_CAMPAIGN_GOLDEN_PATH;
        GTEST_SKIP() << "golden regenerated at "
                     << MCVERSI_CAMPAIGN_GOLDEN_PATH;
    }

    const std::string golden = readGolden();
    ASSERT_FALSE(golden.empty())
        << "missing golden file: " << MCVERSI_CAMPAIGN_GOLDEN_PATH;
    EXPECT_EQ(json, golden)
        << "campaign summary diverged from the golden artifact; if the "
           "change is intentional, write the new summary to "
        << MCVERSI_CAMPAIGN_GOLDEN_PATH;
}
