/** @file Discrete-event kernel tests. */

#include <stdexcept>

#include <gtest/gtest.h>

#include "sim/eventq.hh"

using namespace mcversi::sim;
using mcversi::Tick;

TEST(EventQueue, OrdersByTick)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(10, [&]() { order.push_back(2); });
    eq.schedule(5, [&]() { order.push_back(1); });
    eq.schedule(20, [&]() { order.push_back(3); });
    eq.runUntilQuiescent();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 20u);
}

TEST(EventQueue, FifoWithinSameTick)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(7, [&order, i]() { order.push_back(i); });
    eq.runUntilQuiescent();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, NestedScheduling)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&]() {
        ++fired;
        eq.scheduleIn(5, [&]() { ++fired; });
    });
    EXPECT_EQ(eq.runUntilQuiescent(), 2u);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 6u);
}

TEST(EventQueue, PastTickClampedToNow)
{
    EventQueue eq;
    Tick seen = 0;
    eq.schedule(10, [&]() {
        eq.schedule(3, [&]() { seen = eq.now(); }); // in the past
    });
    eq.runUntilQuiescent();
    EXPECT_EQ(seen, 10u);
}

TEST(EventQueue, MaxEventsGuard)
{
    EventQueue eq;
    std::function<void()> loop = [&]() { eq.scheduleIn(1, loop); };
    eq.schedule(0, loop);
    EXPECT_THROW(eq.runUntilQuiescent(1000), std::runtime_error);
}

TEST(EventQueue, ResetClears)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(5, [&]() { ++fired; });
    eq.reset();
    EXPECT_TRUE(eq.empty());
    eq.runUntilQuiescent();
    EXPECT_EQ(fired, 0);
    EXPECT_EQ(eq.now(), 0u);
}

TEST(EventQueue, ProcessedCounter)
{
    EventQueue eq;
    for (int i = 0; i < 5; ++i)
        eq.schedule(static_cast<Tick>(i), []() {});
    eq.runUntilQuiescent();
    EXPECT_EQ(eq.processed(), 5u);
}
