/**
 * @file
 * Non-determinism metrics (Definitions 1-3 of the paper).
 *
 * The simulator records the conflict orders rf_i and co_i of each
 * iteration i of a test-run; their union over all iterations is
 * rfcoRUN (Def. 1). Events are identified *statically* (by test node),
 * so the same operation observed with different conflict predecessors in
 * different iterations accumulates multiple predecessors:
 *
 *   NDT  = |rfcoRUN| / n          (Def. 2, n = events in the test)
 *   NDe  = |{e | (e, ek) in rfcoRUN}|   (Def. 3)
 *
 * NDT == 1 means every event only ever follows one producer (typically
 * the initial write): the test-run was observed fully deterministic.
 * fitaddrs is the set of addresses of events whose NDe exceeds the
 * rounded NDT (§3.3).
 *
 * Consumers of conflict-order edges are always dynamic test events, so
 * their static ids are non-negative and dense (nodeIndex * 2 + sub);
 * the accumulator indexes them directly into flat per-consumer
 * producer lists. Producers may be negative (per-address init writes).
 * beginRun() keeps all capacity, so the accumulation across a
 * campaign's test-runs is allocation-free in the steady state.
 */

#ifndef MCVERSI_GP_NDMETRICS_HH
#define MCVERSI_GP_NDMETRICS_HH

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/addrset.hh"
#include "common/types.hh"
#include "gp/test.hh"

namespace mcversi::gp {

/** Static id for the initial write of a logical address. */
constexpr StaticEventId
initStaticEventId(Addr logical_addr)
{
    return -2 - static_cast<StaticEventId>(logical_addr);
}

/** Summary of a test-run's non-determinism, attached to individuals. */
struct NdInfo
{
    double ndt = 0.0;
    /** Sorted flat set: deterministic iteration for directed mutation. */
    AddrSet fitaddrs;
};

/** Accumulates rfcoRUN across the iterations of one test-run. */
class NdAccumulator
{
  public:
    /**
     * Start a new test-run. Clears all accumulated state but keeps
     * every buffer's capacity.
     *
     * @param num_events number of (static) MCM events in the test (n in
     *                   Def. 2)
     */
    void
    beginRun(std::size_t num_events)
    {
        for (const StaticEventId sid : touched_) {
            preds_[static_cast<std::size_t>(sid)].clear();
            eventAddr_[static_cast<std::size_t>(sid)] = kNoAddr;
        }
        touched_.clear();
        numPairs_ = 0;
        numEvents_ = num_events;
    }

    /**
     * Record one conflict-order pair (producer, consumer) observed in
     * some iteration. Idempotent across iterations. The consumer must
     * be a dynamic event (non-negative static id).
     */
    void
    addEdge(StaticEventId producer, StaticEventId consumer)
    {
        auto &producers = predsOf(consumer);
        const auto pos = std::lower_bound(producers.begin(),
                                          producers.end(), producer);
        if (pos != producers.end() && *pos == producer)
            return;
        producers.insert(pos, producer);
        ++numPairs_;
    }

    /** Record the (logical) address of a static event. */
    void
    noteEventAddr(StaticEventId sid, Addr logical_addr)
    {
        predsOf(sid); // Registers sid as touched and sizes the arrays.
        eventAddr_[static_cast<std::size_t>(sid)] = logical_addr;
    }

    /** |rfcoRUN|: distinct conflict-order pairs observed. */
    std::size_t distinctPairs() const { return numPairs_; }

    /** NDT (Def. 2). */
    double
    ndt() const
    {
        if (numEvents_ == 0)
            return 0.0;
        return static_cast<double>(numPairs_) /
               static_cast<double>(numEvents_);
    }

    /** NDe of one event (Def. 3). */
    std::size_t
    nde(StaticEventId sid) const
    {
        if (sid < 0 ||
            static_cast<std::size_t>(sid) >= preds_.size()) {
            return 0;
        }
        return preds_[static_cast<std::size_t>(sid)].size();
    }

    /** Addresses of events whose NDe exceeds the rounded NDT. */
    AddrSet
    fitaddrs() const
    {
        const auto threshold =
            static_cast<std::size_t>(std::llround(ndt()));
        AddrSet out;
        for (const StaticEventId sid : touched_) {
            const auto idx = static_cast<std::size_t>(sid);
            if (preds_[idx].size() <= threshold)
                continue;
            if (eventAddr_[idx] != kNoAddr)
                out.insert(eventAddr_[idx]);
        }
        return out;
    }

    /** Bundle NDT and fitaddrs. */
    NdInfo
    info() const
    {
        return NdInfo{ndt(), fitaddrs()};
    }

  private:
    /** Producer list of @p consumer, growing the dense arrays. */
    std::vector<StaticEventId> &
    predsOf(StaticEventId consumer)
    {
        assert(consumer >= 0 &&
               "conflict-order consumers are dynamic test events");
        const auto idx = static_cast<std::size_t>(consumer);
        if (idx >= preds_.size()) {
            preds_.resize(idx + 1);
            eventAddr_.resize(idx + 1, kNoAddr);
        }
        if (preds_[idx].empty() && eventAddr_[idx] == kNoAddr)
            touched_.push_back(consumer);
        return preds_[idx];
    }

    /** Sorted producer set per consumer sid (dense index). */
    std::vector<std::vector<StaticEventId>> preds_;
    /** Logical address per consumer sid; kNoAddr if never noted. */
    std::vector<Addr> eventAddr_;
    /** Consumer sids with any recorded state, for sparse iteration. */
    std::vector<StaticEventId> touched_;
    std::size_t numPairs_ = 0;
    std::size_t numEvents_ = 0;
};

} // namespace mcversi::gp

#endif // MCVERSI_GP_NDMETRICS_HH
