/**
 * @file
 * Parallel multi-campaign runner.
 *
 * Two independent levels of parallelism, both summary-deterministic:
 *
 *  - Across specs: a vector of CampaignSpecs runs on a pool of worker
 *    threads. Each worker owns an independent System + Checker + test
 *    source built from its spec (per-spec seed streams), so campaigns
 *    share no mutable state; the "same seed => same decisions" contract
 *    pinned down by tests/sim/test_rng_determinism.cc makes every
 *    campaign's outcome independent of which worker runs it. Results
 *    are collected into spec order, so the aggregated CampaignSummary
 *    is identical for any worker count and completion interleaving.
 *
 *  - Within a spec: a spec with islands > 1 or batch > 1 runs on the
 *    batched host::ParallelHarness -- one simulation lane per island,
 *    evalThreads workers evaluating each batch, deterministic merges at
 *    batch barriers -- so its summary is also byte-identical for any
 *    evalThreads value (see host/parallel_harness.hh).
 */

#ifndef MCVERSI_CAMPAIGN_RUNNER_HH
#define MCVERSI_CAMPAIGN_RUNNER_HH

#include <cstddef>
#include <functional>
#include <vector>

#include "campaign/result.hh"
#include "campaign/spec.hh"

namespace mcversi::campaign {

/** Runs campaign matrices on a worker-thread pool. */
class CampaignRunner
{
  public:
    struct Options
    {
        /** Worker threads across specs; <= 0 selects the hardware
         * concurrency. */
        int threads = 1;
        /**
         * Worker threads *within* one spec's batch evaluation (specs
         * with islands > 1 or batch > 1); <= 0 selects the hardware
         * concurrency. Summaries are byte-identical for any value.
         */
        int evalThreads = 1;
        /**
         * Progress hook, called once per completed campaign (in
         * completion order, serialized). @p done counts completions so
         * far, @p total the matrix size. Must not assume spec order.
         */
        std::function<void(const CampaignResult &result,
                           std::size_t done, std::size_t total)>
            onResult;
    };

    CampaignRunner() = default;
    explicit CampaignRunner(Options options)
        : options_(std::move(options))
    {
    }

    /** Run every spec; results are aggregated in spec order. */
    CampaignSummary run(const std::vector<CampaignSpec> &specs) const;

    /**
     * Run one campaign in the calling thread (plus @p eval_threads
     * batch-evaluation workers when the spec asks for the parallel
     * harness). Never throws: a bad spec or a run-time failure is
     * reported via CampaignResult::error.
     *
     * @p cancel, if set, is polled between test-runs (see
     * host::Budget::interrupted): returning true stops the campaign
     * early with a PARTIAL result. Fleet workers use it to drain on
     * SIGTERM and then discard the partial result; anything that needs
     * deterministic summaries must do the same.
     */
    static CampaignResult
    runOne(const CampaignSpec &spec, int eval_threads = 1,
           std::function<bool()> cancel = nullptr);

  private:
    Options options_{};
};

} // namespace mcversi::campaign

#endif // MCVERSI_CAMPAIGN_RUNNER_HH
