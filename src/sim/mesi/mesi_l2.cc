#include "sim/mesi/mesi_l2.hh"

#include <cassert>

namespace mcversi::sim {

namespace {

const std::vector<std::string> kStateNames = {
    "NP", "SS", "MT", "ISS", "IMM", "B_MT", "MT_SB", "SS_I", "MT_I",
};

const std::vector<std::string> kEventNames = {
    "GETS",      "GETX",       "UpgradeSharer", "UpgradeNonSharer",
    "PutsSharer", "PutsStale", "PutxOwner",     "PutxSharer",
    "PutxNonOwner", "Unblock", "WbDataOwner",   "RecallData",
    "RecallAckNoData", "InvAckIn", "MemData",   "Replacement",
};

} // namespace

MesiL2::MesiL2(int tile, const SystemConfig &cfg, EventQueue &eq,
               Network &net, TransitionCoverage &cov, Rng rng)
    : tile_(tile), cfg_(cfg), eq_(eq), net_(net),
      table_(cov, "MESI-L2", kStateNames, kEventNames), rng_(rng),
      array_(cfg.l2SetsPerTile, cfg.l2Ways)
{
    buildTable();
}

int
MesiL2::popcount(std::uint32_t v)
{
    int n = 0;
    while (v) {
        v &= v - 1;
        ++n;
    }
    return n;
}

void
MesiL2::buildTable()
{
    auto def = [this](State s, Event e) { table_.define(s, e); };

    def(StNP, EvGETS);
    def(StNP, EvGETX);
    def(StNP, EvUpgradeNonSharer);
    def(StNP, EvPutsStale);
    def(StNP, EvPutxNonOwner);

    def(StSS, EvGETS);
    def(StSS, EvGETX);
    def(StSS, EvUpgradeSharer);
    def(StSS, EvUpgradeNonSharer);
    def(StSS, EvPutsSharer);
    def(StSS, EvPutsStale);
    def(StSS, EvPutxSharer);
    def(StSS, EvPutxNonOwner);
    def(StSS, EvReplacement);

    def(StMT, EvGETS);
    def(StMT, EvGETX);
    def(StMT, EvUpgradeNonSharer);
    def(StMT, EvPutxOwner);
    def(StMT, EvPutsStale);
    def(StMT, EvReplacement);
    // The PUTX-Race bug removes exactly this transition (§5.3): a PUTX
    // from a core that is no longer the owner, i.e. the writeback lost
    // the race against an ownership transfer (Komuravelli et al.).
    if (cfg_.bug != BugId::MesiPutxRace)
        def(StMT, EvPutxNonOwner);

    def(StISS, EvMemData);
    def(StIMM, EvMemData);
    def(StB_MT, EvUnblock);
    def(StMT_SB, EvWbDataOwner);

    def(StSS_I, EvInvAckIn);
    def(StMT_I, EvRecallData);
    def(StMT_I, EvRecallAckNoData);
    def(StMT_I, EvPutxOwner);
    // Stale recall ack from a PUTX-completed recall (absorbed).
    def(StNP, EvRecallAckNoData);
}

Msg &
MesiL2::buildMsg(MsgType t, Addr line, NodeId dst, Vnet vnet,
                 const std::function<void(Msg &)> &fill)
{
    Msg &msg = net_.stage();
    msg.type = t;
    msg.line = line;
    msg.src = l2Node(tile_);
    msg.dst = dst;
    msg.vnet = vnet;
    if (fill)
        fill(msg);
    return msg;
}

void
MesiL2::send(MsgType t, Addr line, NodeId dst, Vnet vnet,
             const std::function<void(Msg &)> &fill)
{
    net_.send(&buildMsg(t, line, dst, vnet, fill));
}

void
MesiL2::sendAfter(Tick delta, MsgType t, Addr line, NodeId dst,
                  Vnet vnet, const std::function<void(Msg &)> &fill)
{
    // Build the message now (all inputs are already captured by value
    // in the old thunk idiom); latency, FIFO order and the jitter draw
    // still happen at injection time, inside the NetSend event.
    eq_.scheduleNetSend(eq_.now() + delta, &net_,
                        &buildMsg(t, line, dst, vnet, fill));
}

void
MesiL2::memWrite(Addr line, const LineData &data)
{
    send(MsgType::MemWrite, line, kMemNode, Vnet::Mem, [&](Msg &m) {
        m.data = data;
        m.hasData = true;
    });
}

MesiL2::State
MesiL2::lineState(Addr line)
{
    if (auto it = evict_.find(line); it != evict_.end())
        return it->second.state;
    if (CacheEntry *e = array_.find(line))
        return static_cast<State>(e->state);
    return StNP;
}

bool
MesiL2::serving(Addr line)
{
    const State st = lineState(line);
    return st == StNP || st == StSS || st == StMT;
}

void
MesiL2::enqueueMsg(const Msg &msg)
{
    waiting_[msg.line].push_back(msg);
}

void
MesiL2::drain(Addr line)
{
    // serveRequest below can transition the line away from a serving
    // state (or call drain recursively); the loop re-reads the queue and
    // the state every iteration, so recursion simply consumes the queue
    // a little earlier.
    for (;;) {
        auto it = waiting_.find(line);
        if (it == waiting_.end())
            return;
        if (it->second.empty()) {
            waiting_.erase(it);
            return;
        }
        if (!serving(line))
            return;
        Msg msg = it->second.front();
        it->second.pop_front();
        serveRequest(msg);
    }
}

// ---------------------------------------------------------------------
// Request service.
// ---------------------------------------------------------------------

void
MesiL2::serveGets(CacheEntry *entry, Addr line, Pid c)
{
    if (!entry) {
        table_.record(StNP, EvGETS);
        Msg retry;
        retry.type = MsgType::GETS;
        retry.line = line;
        retry.requester = c;
        startFetch(line, c, false, retry);
        return;
    }
    if (entry->state == StMT) {
        table_.record(StMT, EvGETS);
        send(MsgType::FwdGETS, line, coreNode(entry->owner), Vnet::Fwd,
             [&](Msg &m) { m.requester = c; });
        entry->state = StMT_SB;
        entry->pendingRequester = c;
        return;
    }
    table_.record(StSS, EvGETS);
    array_.touch(*entry, eq_.now());
    if (entry->sharers == 0) {
        // Grant exclusivity (MESI E); block until the new owner
        // unblocks.
        entry->state = StB_MT;
        entry->pendingRequester = c;
        entry->grantedClean = true;
        sendAfter(cfg_.l2AccessLatency, MsgType::Data, line,
                  coreNode(c), Vnet::Response, [&](Msg &m) {
                      m.data = entry->data;
                      m.hasData = true;
                      m.exclusive = true;
                  });
    } else {
        // Non-blocking shared grant: the sharer is registered before
        // its data arrives, so a later GETX's Inv can overtake the data
        // in the network (IS_I at the L1).
        entry->sharers |= bit(c);
        sendAfter(cfg_.l2AccessLatency, MsgType::Data, line,
                  coreNode(c), Vnet::Response, [&](Msg &m) {
                      m.data = entry->data;
                      m.hasData = true;
                  });
    }
}

void
MesiL2::serveGetx(CacheEntry *entry, Addr line, Pid c)
{
    if (!entry) {
        Msg retry;
        retry.type = MsgType::GETX;
        retry.line = line;
        retry.requester = c;
        startFetch(line, c, true, retry);
        return;
    }
    array_.touch(*entry, eq_.now());
    if (entry->state == StMT) {
        send(MsgType::FwdGETX, line, coreNode(entry->owner), Vnet::Fwd,
             [&](Msg &m) { m.requester = c; });
        entry->state = StB_MT;
        entry->pendingRequester = c;
        entry->grantedClean = false;
        entry->owner = kInitPid;
        return;
    }
    // SS: invalidate sharers, send data + ack count.
    const std::uint32_t others = entry->sharers & ~bit(c);
    const int acks = popcount(others);
    for (Pid p = 0; p < static_cast<Pid>(cfg_.numCores); ++p) {
        if (others & bit(p)) {
            send(MsgType::Inv, line, coreNode(p), Vnet::Fwd,
                 [&](Msg &m) {
                     m.requester = c;
                     m.ackTarget = coreNode(c);
                 });
        }
    }
    entry->sharers = 0;
    entry->state = StB_MT;
    entry->pendingRequester = c;
    entry->grantedClean = false;
    sendAfter(cfg_.l2AccessLatency, MsgType::Data, line, coreNode(c),
              Vnet::Response, [&](Msg &m) {
                  m.data = entry->data;
                  m.hasData = true;
                  m.exclusive = true;
                  m.ackCount = acks;
              });
}

bool
MesiL2::startFetch(Addr line, Pid c, bool exclusive, const Msg &msg)
{
    CacheEntry *entry = array_.allocate(line);
    if (!entry) {
        if (!evictVictim(line)) {
            // No stable victim yet; retry the whole request later.
            eq_.scheduleDeliver(eq_.now() + 16, this,
                                eq_.msgPool().acquireCopy(msg));
            return false;
        }
        entry = array_.allocate(line);
        assert(entry);
    }
    entry->state = exclusive ? StIMM : StISS;
    entry->pendingRequester = c;
    array_.touch(*entry, eq_.now());
    send(MsgType::MemRead, line, kMemNode, Vnet::Mem);
    return true;
}

bool
MesiL2::evictVictim(Addr line)
{
    CacheEntry *victim = array_.victim(line, [](const CacheEntry &e) {
        return e.state == StSS || e.state == StMT;
    });
    if (!victim)
        return false;
    doReplacement(*victim);
    return true;
}

void
MesiL2::doReplacement(CacheEntry &entry)
{
    const Addr line = entry.line;
    const auto st = static_cast<State>(entry.state);
    table_.record(st, EvReplacement);
    if (st == StSS) {
        if (entry.sharers == 0) {
            if (entry.dirty)
                memWrite(line, entry.data);
            array_.free(entry);
            return;
        }
        EvictBuf buf;
        buf.state = StSS_I;
        buf.data = entry.data;
        buf.dirty = entry.dirty;
        buf.acksLeft = popcount(entry.sharers);
        for (Pid p = 0; p < static_cast<Pid>(cfg_.numCores); ++p) {
            if (entry.sharers & bit(p)) {
                send(MsgType::Inv, line, coreNode(p), Vnet::Fwd,
                     [&](Msg &m) { m.ackTarget = l2Node(tile_); });
            }
        }
        evict_[line] = buf;
        array_.free(entry);
        return;
    }
    // MT: recall from the owner (an invalidating recall; this is the
    // path on which the L1-side E/M recall-invalidation bugs manifest).
    assert(st == StMT);
    EvictBuf buf;
    buf.state = StMT_I;
    buf.data = entry.data;
    buf.dirty = entry.dirty;
    buf.grantedClean = entry.grantedClean;
    buf.owner = entry.owner;
    send(MsgType::Recall, line, coreNode(entry.owner), Vnet::Fwd);
    evict_[line] = buf;
    array_.free(entry);
}

void
MesiL2::completeRecall(Addr line, EvictBuf &buf, bool msg_dirty,
                       const LineData &msg_data, bool from_putx)
{
    // BUG MESI+Replace-Race: the block was granted clean (E), so the
    // eviction logic "does not expect modified data" from the racing
    // owner writeback and drops it without checking the dirty flag.
    bool effective_dirty = msg_dirty;
    if (from_putx && buf.grantedClean &&
        cfg_.bug == BugId::MesiReplaceRace) {
        effective_dirty = false;
    }
    if (effective_dirty) {
        memWrite(line, msg_data);
    } else if (buf.dirty) {
        memWrite(line, buf.data);
    }
    evict_.erase(line);
    drain(line);
}

void
MesiL2::serveRequest(const Msg &msg)
{
    const Addr line = msg.line;

    // A PUTX from the recalled owner completes an in-flight MT_I
    // eviction and must not be queued behind it.
    if (msg.type == MsgType::PUTX) {
        if (auto it = evict_.find(line);
            it != evict_.end() && it->second.state == StMT_I &&
            it->second.owner == msg.requester) {
            table_.record(StMT_I, EvPutxOwner);
            send(MsgType::WbAck, line, coreNode(msg.requester),
                 Vnet::Fwd);
            // Unless the owner's recall ack already arrived, it is
            // still in flight and must be absorbed later.
            if (!it->second.ownerGone)
                ++staleRecallAcks_[line];
            completeRecall(line, it->second, msg.dirty, msg.data, true);
            return;
        }
    }

    if (!serving(line)) {
        enqueueMsg(msg);
        return;
    }
    CacheEntry *entry = array_.find(line);
    const State st = entry ? static_cast<State>(entry->state) : StNP;
    const Pid c = msg.requester;

    switch (msg.type) {
      case MsgType::GETS:
        serveGets(entry, line, c);
        return;

      case MsgType::GETX:
        table_.record(st, EvGETX);
        serveGetx(entry, line, c);
        return;

      case MsgType::UPGRADE: {
        const bool sharer =
            entry && st == StSS && (entry->sharers & bit(c));
        table_.record(st, sharer ? EvUpgradeSharer : EvUpgradeNonSharer);
        if (!sharer) {
            // Requester lost the line (or it left the L2): full GETX.
            serveGetx(entry, line, c);
            return;
        }
        const std::uint32_t others = entry->sharers & ~bit(c);
        const int acks = popcount(others);
        for (Pid p = 0; p < static_cast<Pid>(cfg_.numCores); ++p) {
            if (others & bit(p)) {
                send(MsgType::Inv, line, coreNode(p), Vnet::Fwd,
                     [&](Msg &m) {
                         m.requester = c;
                         m.ackTarget = coreNode(c);
                     });
            }
        }
        entry->sharers = 0;
        entry->state = StB_MT;
        entry->pendingRequester = c;
        entry->grantedClean = false;
        sendAfter(cfg_.l2AccessLatency, MsgType::AckCount, line,
                  coreNode(c), Vnet::Response,
                  [&](Msg &m) { m.ackCount = acks; });
        return;
      }

      case MsgType::PUTS: {
        const bool sharer =
            entry && st == StSS && (entry->sharers & bit(c));
        table_.record(st, sharer ? EvPutsSharer : EvPutsStale);
        if (sharer)
            entry->sharers &= ~bit(c);
        return;
      }

      case MsgType::PUTX: {
        Event ev;
        if (entry && st == StMT && entry->owner == c) {
            ev = EvPutxOwner;
        } else if (entry && st == StSS && (entry->sharers & bit(c))) {
            ev = EvPutxSharer;
        } else {
            ev = EvPutxNonOwner;
        }
        table_.record(st, ev); // Throws for (MT, PutxNonOwner) w/ bug.
        switch (ev) {
          case EvPutxOwner:
            if (msg.dirty) {
                entry->data = msg.data;
                entry->dirty = true;
            }
            entry->owner = kInitPid;
            entry->grantedClean = false;
            entry->state = StSS;
            entry->sharers = 0;
            send(MsgType::WbAck, line, coreNode(c), Vnet::Fwd);
            return;
          case EvPutxSharer:
            // Leftover of a FwdGETS race: the data already reached us
            // via WbDataToL2; just retire the writeback.
            entry->sharers &= ~bit(c);
            send(MsgType::WbAck, line, coreNode(c), Vnet::Fwd);
            return;
          default:
            send(MsgType::WbNack, line, coreNode(c), Vnet::Fwd);
            return;
        }
      }

      default:
        throw ProtocolError("MESI-L2", kStateNames[st],
                            msgTypeName(msg.type));
    }
}

// ---------------------------------------------------------------------
// Message dispatch.
// ---------------------------------------------------------------------

void
MesiL2::handleMsg(const Msg &msg)
{
    const Addr line = msg.line;

    switch (msg.type) {
      case MsgType::GETS:
      case MsgType::GETX:
      case MsgType::UPGRADE:
      case MsgType::PUTS:
      case MsgType::PUTX:
        serveRequest(msg);
        return;

      case MsgType::MemData: {
        CacheEntry *entry = array_.find(line);
        const State st = entry ? static_cast<State>(entry->state) : StNP;
        table_.record(st, EvMemData); // Only ISS/IMM defined.
        entry->data = msg.data;
        entry->dirty = false;
        const Pid c = entry->pendingRequester;
        entry->grantedClean = (st == StISS);
        entry->state = StB_MT;
        send(MsgType::Data, line, coreNode(c), Vnet::Response,
             [&](Msg &m) {
                 m.data = msg.data;
                 m.hasData = true;
                 m.exclusive = true;
             });
        return;
      }

      case MsgType::Unblock: {
        CacheEntry *entry = array_.find(line);
        const State st = entry ? static_cast<State>(entry->state) : StNP;
        table_.record(st, EvUnblock); // Only B_MT defined.
        entry->state = StMT;
        entry->owner = entry->pendingRequester;
        entry->pendingRequester = kInitPid;
        drain(line);
        return;
      }

      case MsgType::WbDataToL2: {
        CacheEntry *entry = array_.find(line);
        const State st = entry ? static_cast<State>(entry->state) : StNP;
        table_.record(st, EvWbDataOwner); // Only MT_SB defined.
        // The owner supplied data for a FwdGETS; the line becomes
        // shared by the old owner and the requester.
        entry->data = msg.data;
        if (msg.dirty)
            entry->dirty = true;
        entry->sharers = bit(static_cast<Pid>(msg.src)) |
                         bit(entry->pendingRequester);
        entry->owner = kInitPid;
        entry->grantedClean = false;
        entry->pendingRequester = kInitPid;
        entry->state = StSS;
        drain(line);
        return;
      }

      case MsgType::RecallData:
      case MsgType::RecallAckNoData: {
        auto it = evict_.find(line);
        if (it == evict_.end() && msg.type == MsgType::RecallAckNoData) {
            if (auto sit = staleRecallAcks_.find(line);
                sit != staleRecallAcks_.end()) {
                table_.record(StNP, EvRecallAckNoData);
                if (--sit->second == 0)
                    staleRecallAcks_.erase(sit);
                return;
            }
        }
        const State st =
            it != evict_.end() ? it->second.state : lineState(line);
        table_.record(st, msg.type == MsgType::RecallData
                              ? EvRecallData
                              : EvRecallAckNoData); // Only MT_I defined.
        EvictBuf &buf = it->second;
        if (msg.type == MsgType::RecallAckNoData) {
            // The owner's PUTX is in flight and completes the recall.
            buf.ownerGone = true;
            return;
        }
        completeRecall(line, buf, msg.dirty, msg.data, false);
        return;
      }

      case MsgType::InvAck: {
        auto it = evict_.find(line);
        const State st =
            it != evict_.end() ? it->second.state : lineState(line);
        table_.record(st, EvInvAckIn); // Only SS_I defined.
        EvictBuf &buf = it->second;
        if (--buf.acksLeft == 0) {
            if (buf.dirty)
                memWrite(line, buf.data);
            evict_.erase(it);
            drain(line);
        }
        return;
      }

      default:
        throw ProtocolError("MESI-L2", kStateNames[lineState(line)],
                            msgTypeName(msg.type));
    }
}

void
MesiL2::resetAll()
{
    array_.reset();
    evict_.clear();
    waiting_.clear();
    staleRecallAcks_.clear();
}

} // namespace mcversi::sim
