#include "memconsistency/relation.hh"

#include <algorithm>
#include <cassert>

namespace mcversi::mc {

bool
Relation::insert(EventId from, EventId to)
{
    assert(from >= 0 && to >= 0 && "Relation ids must be non-negative");
    if (static_cast<std::size_t>(from) >= adj_.size())
        adj_.resize(static_cast<std::size_t>(from) + 1);
    auto &succs = adj_[static_cast<std::size_t>(from)];
    maxSource_ = std::max(maxSource_, from);
    maxTarget_ = std::max(maxTarget_, to);
    // Hot path: the witness inserts successors in ascending id order.
    if (succs.empty() || succs.back() < to) {
        succs.push_back(to);
        ++numPairs_;
        return true;
    }
    const auto pos = std::lower_bound(succs.begin(), succs.end(), to);
    if (pos != succs.end() && *pos == to)
        return false;
    succs.insert(pos, to);
    ++numPairs_;
    return true;
}

bool
Relation::contains(EventId from, EventId to) const
{
    if (from < 0 || static_cast<std::size_t>(from) >= adj_.size())
        return false;
    const auto &succs = adj_[static_cast<std::size_t>(from)];
    return std::binary_search(succs.begin(), succs.end(), to);
}

void
Relation::clear()
{
    // Keep both the outer vector and every successor list's capacity:
    // the next witness of the same test reuses them without touching
    // the allocator.
    for (auto &succs : adj_)
        succs.clear();
    numPairs_ = 0;
    maxSource_ = -1;
    maxTarget_ = -1;
}

Relation::SuccRange
Relation::successors(EventId from) const
{
    if (from < 0 || static_cast<std::size_t>(from) >= adj_.size())
        return {};
    return SuccRange(adj_[static_cast<std::size_t>(from)]);
}

void
Relation::unionWith(const Relation &other)
{
    other.forEach([this](EventId from, SuccRange succs) {
        for (EventId to : succs)
            insert(from, to);
    });
}

std::vector<std::pair<EventId, EventId>>
Relation::pairs() const
{
    std::vector<std::pair<EventId, EventId>> out;
    out.reserve(numPairs_);
    forEach([&out](EventId from, SuccRange succs) {
        for (EventId to : succs)
            out.emplace_back(from, to);
    });
    return out;
}

std::size_t
Relation::numNodes() const
{
    return static_cast<std::size_t>(
        std::max(maxSource_, maxTarget_) + 1);
}

std::vector<std::size_t>
Relation::inDegrees() const
{
    std::vector<std::size_t> in(numNodes(), 0);
    forEach([&in](EventId, SuccRange succs) {
        for (EventId to : succs)
            ++in[static_cast<std::size_t>(to)];
    });
    return in;
}

Relation
Relation::transitiveClosure() const
{
    Relation out;
    std::vector<bool> seen(numNodes());
    std::vector<EventId> stack;
    for (std::size_t src = 0; src < adj_.size(); ++src) {
        if (adj_[src].empty())
            continue;
        std::fill(seen.begin(), seen.end(), false);
        stack.assign(1, static_cast<EventId>(src));
        while (!stack.empty()) {
            const EventId cur = stack.back();
            stack.pop_back();
            for (EventId nxt : successors(cur)) {
                if (seen[static_cast<std::size_t>(nxt)])
                    continue;
                seen[static_cast<std::size_t>(nxt)] = true;
                out.insert(static_cast<EventId>(src), nxt);
                stack.push_back(nxt);
            }
        }
    }
    return out;
}

bool
Relation::acyclic() const
{
    // Iterative three-color DFS over the dense id space. The frame
    // keeps an index into the (stable) successor list, so no successor
    // set is ever copied.
    enum class Color : std::uint8_t { White, Grey, Black };
    std::vector<Color> color(numNodes(), Color::White);

    struct Frame
    {
        EventId node;
        std::size_t edge = 0;
    };

    std::vector<Frame> stack;
    for (std::size_t root = 0; root < adj_.size(); ++root) {
        if (adj_[root].empty() ||
            color[root] != Color::White) {
            continue;
        }
        stack.clear();
        stack.push_back({static_cast<EventId>(root)});
        color[root] = Color::Grey;
        while (!stack.empty()) {
            Frame &fr = stack.back();
            const SuccRange succs = successors(fr.node);
            if (fr.edge >= succs.size()) {
                color[static_cast<std::size_t>(fr.node)] = Color::Black;
                stack.pop_back();
                continue;
            }
            const EventId nxt = succs[fr.edge++];
            switch (color[static_cast<std::size_t>(nxt)]) {
              case Color::Grey:
                return false;
              case Color::White:
                color[static_cast<std::size_t>(nxt)] = Color::Grey;
                stack.push_back({nxt});
                break;
              case Color::Black:
                break;
            }
        }
    }
    return true;
}

bool
Relation::irreflexive() const
{
    for (std::size_t from = 0; from < adj_.size(); ++from) {
        const auto &succs = adj_[from];
        if (std::binary_search(succs.begin(), succs.end(),
                               static_cast<EventId>(from))) {
            return false;
        }
    }
    return true;
}

} // namespace mcversi::mc
