/**
 * @file
 * Core <-> L1 cache interfaces.
 *
 * The L1 controllers implement L1Cache; the core supplies CoreHooks.
 * Responses carry functional values: the value read (loads / RMW read
 * part) and the value overwritten (stores / RMW write part), which the
 * core records into the candidate execution witness, plus the
 * invalidated-in-flight flag for data consumed from an IS_I line (the
 * "Peekaboo" case the LQ must treat as an invalidation at consume time).
 */

#ifndef MCVERSI_SIM_PORTS_HH
#define MCVERSI_SIM_PORTS_HH

#include <cstdint>
#include <functional>

#include "common/types.hh"

namespace mcversi::sim {

/** Core-assigned identifier of an outstanding cache request. */
using ReqId = std::uint64_t;

/** Response to a core request. */
struct CacheResp
{
    ReqId id = 0;
    /** Value read (loads, RMW read part). */
    WriteVal value = kInitVal;
    /** Value overwritten (stores, RMW). */
    WriteVal overwritten = kInitVal;
    /**
     * True if the data was consumed from a line invalidated while the
     * fill was in flight (IS_I); the LQ must treat this as an
     * invalidation of the consuming load at consume time.
     */
    bool invalidatedInFlight = false;
};

/** Callbacks from the L1 into the core. */
struct CoreHooks
{
    /** Deliver a response for an outstanding request. */
    std::function<void(const CacheResp &)> respond;
    /**
     * Forwarded invalidation: the line was invalidated / lost (Inv,
     * recall, replacement, flush, self-invalidation). The LQ reacts by
     * squashing speculative performed loads to the line.
     */
    std::function<void(Addr line)> addressInvalidated;
};

/** Abstract L1 data cache as seen by a core. */
class L1Cache
{
  public:
    virtual ~L1Cache() = default;

    virtual void coreLoad(ReqId id, Addr addr) = 0;
    virtual void coreStore(ReqId id, Addr addr, WriteVal value) = 0;
    /** Atomic read-modify-write: reads old value, writes @p value. */
    virtual void coreRmw(ReqId id, Addr addr, WriteVal value) = 0;
    /** Write back (if dirty) and invalidate one line. */
    virtual void coreFlush(ReqId id, Addr addr) = 0;

    virtual void setHooks(CoreHooks hooks) = 0;

    /** Host-assisted reset: drop all cached state (quiescence only). */
    virtual void resetAll() = 0;
};

} // namespace mcversi::sim

#endif // MCVERSI_SIM_PORTS_HH
