/**
 * @file
 * Test (chromosome) representation (§3.3).
 *
 * A test is a DAG of a constant number of nodes, with each disjoint
 * sub-graph representing one thread. Nodes are stored as a flat list of
 * 〈pid, op〉 tuples; the order of nodes within the list gives rise to the
 * code sequence of each thread. The flat representation makes both the
 * selective crossover and preservation of relative scheduling positions
 * efficient (paper §3.3).
 */

#ifndef MCVERSI_GP_TEST_HH
#define MCVERSI_GP_TEST_HH

#include <cstdint>
#include <span>
#include <vector>

#include "common/addrset.hh"
#include "gp/ops.hh"

namespace mcversi::gp {

/**
 * Static event identifier: identifies one MCM event of a test across all
 * iterations of a test-run. Encoded as nodeIndex * 2 + sub, where sub is
 * 0 for the read part and 1 for the write part of an instruction.
 */
using StaticEventId = std::int64_t;

constexpr StaticEventId
staticEventId(std::size_t node_index, int sub)
{
    return static_cast<StaticEventId>(node_index) * 2 + sub;
}

constexpr std::size_t
staticEventNode(StaticEventId sid)
{
    return static_cast<std::size_t>(sid / 2);
}

/**
 * Per-thread node-index table in CSR form: one flat slot array grouped
 * by pid plus an offset table. A caller-owned instance is filled by
 * Test::threadSlots() and keeps its capacity across runs, so the per
 * test-run code emission allocates nothing in the steady state (unlike
 * the nested std::vector table it replaces).
 */
class ThreadSlots
{
  public:
    int
    numThreads() const
    {
        return offsets_.empty() ? 0
                                : static_cast<int>(offsets_.size() - 1);
    }

    /** Node indices of thread @p pid in code-sequence order. */
    std::span<const std::size_t>
    thread(int pid) const
    {
        const auto p = static_cast<std::size_t>(pid);
        return std::span<const std::size_t>(slots_)
            .subspan(offsets_[p], offsets_[p + 1] - offsets_[p]);
    }

    std::span<const std::size_t>
    operator[](int pid) const
    {
        return thread(pid);
    }

  private:
    friend class Test;
    /** slots_ grouped by pid; offsets_ has numThreads+1 entries. */
    std::vector<std::size_t> slots_;
    std::vector<std::size_t> offsets_;
    /** Fill cursors, reused across calls. */
    std::vector<std::size_t> cursor_;
};

/** A test: fixed-length flat list of genes. */
class Test
{
  public:
    Test() = default;
    explicit Test(std::vector<Node> nodes) : nodes_(std::move(nodes)) {}

    std::size_t size() const { return nodes_.size(); }
    const Node &node(std::size_t i) const { return nodes_[i]; }
    Node &node(std::size_t i) { return nodes_[i]; }
    const std::vector<Node> &nodes() const { return nodes_; }

    /** Flat view of the genes (for slab-backed storage interop). */
    std::span<const Node> genes() const { return nodes_; }
    std::span<Node> genes() { return nodes_; }

    /** Replace the contents, reusing this test's node capacity. */
    void
    assign(std::span<const Node> nodes)
    {
        nodes_.assign(nodes.begin(), nodes.end());
    }

    /** Resize to @p n genes (new genes value-initialized). */
    void resize(std::size_t n) { nodes_.resize(n); }

    /**
     * Fill @p out with the node indices of each thread in code-sequence
     * order. @p out is caller-owned scratch whose capacity is reused
     * across calls (allocation-free in the steady state).
     *
     * @param num_threads size of the per-thread table
     */
    void threadSlots(int num_threads, ThreadSlots &out) const;

    /** Number of memory operations (Algorithm 1's mem_ops). */
    std::size_t countMemOps() const;

    /**
     * Distinct logical addresses referenced by memory operations, as a
     * sorted flat set: iteration order is deterministic and identical
     * across platforms, and building it performs no hashing.
     */
    AddrSet usedAddrs() const;

    /** Total MCM events the test maps to. */
    std::size_t countEvents() const;

    /** Order-sensitive content hash (for dedup and tests). */
    std::uint64_t fingerprint() const;

  private:
    std::vector<Node> nodes_;
};

/** Content hash of a flat gene sequence (== Test::fingerprint()). */
std::uint64_t fingerprintNodes(std::span<const Node> nodes);

} // namespace mcversi::gp

#endif // MCVERSI_GP_TEST_HH
