/**
 * @file
 * §6.1 companion: evolution of test non-determinism (NDT) over a GA
 * run.
 *
 * The paper reports that with 8KB of test memory the initial test
 * population has an NDT around 1.1, and only McVerSi-ALL (the
 * selective crossover) evolves tests to NDT >= 2.0; with 1KB, tests
 * are automatically racy (NDT > 2) from the start. This bench prints
 * the NDT time-series (mean over windows of test-runs) for
 * McVerSi-ALL, McVerSi-Std.XO and McVerSi-RAND at 8KB, and the 1KB
 * baseline. The four configurations run as one parallel campaign with
 * record-ndt enabled.
 */

#include <iterator>
#include <numeric>

#include "bench_common.hh"

using namespace mcvbench;

namespace {

double
windowMean(const std::vector<double> &v, std::size_t begin,
           std::size_t end)
{
    end = std::min(end, v.size());
    if (begin >= end)
        return 0.0;
    return std::accumulate(v.begin() + static_cast<std::ptrdiff_t>(begin),
                           v.begin() + static_cast<std::ptrdiff_t>(end),
                           0.0) /
           static_cast<double>(end - begin);
}

} // namespace

int
main()
{
    const double scale = benchScale();
    const auto runs = static_cast<std::uint64_t>(400 * scale);
    const std::size_t windows = 8;

    const GenConfig configs[] = {
        GenConfig::All8K,
        GenConfig::StdXo8K,
        GenConfig::Rand8K,
        GenConfig::All1K,
    };

    std::vector<campaign::CampaignSpec> specs;
    for (GenConfig c : configs) {
        campaign::CampaignSpec spec = benchSpec(c, "none", 31, runs,
                                                0.0);
        spec.recordNdt = true;
        specs.push_back(std::move(spec));
    }
    const campaign::CampaignSummary summary = runBenchCampaigns(specs);

    std::printf("NDT evolution over %llu test-runs "
                "(mean NDT per window of %llu runs)\n\n",
                static_cast<unsigned long long>(runs),
                static_cast<unsigned long long>(runs / windows));
    std::printf("%-22s", "Configuration");
    for (std::size_t w = 0; w < windows; ++w)
        std::printf(" | w%-4zu", w);
    std::printf("\n");

    for (std::size_t ci = 0; ci < std::size(configs); ++ci) {
        const std::vector<double> &series =
            summary.results[ci].harness.ndtHistory;
        std::printf("%-22s", genConfigName(configs[ci]));
        const std::size_t step =
            std::max<std::size_t>(1, series.size() / windows);
        for (std::size_t w = 0; w < windows; ++w) {
            std::printf(" | %5.2f",
                        windowMean(series, w * step, (w + 1) * step));
        }
        std::printf("\n");
    }
    std::printf("\nExpectation: at 8KB only McVerSi-ALL climbs "
                "towards NDT >= 2; 1KB starts racy (> 2) for free.\n");
    return 0;
}
