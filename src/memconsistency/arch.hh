/**
 * @file
 * Architecture (memory consistency model) interface.
 *
 * Following the herding cats framework, an architecture is defined by
 * which program-order pairs it preserves (ppo), which fences it provides,
 * and whether internal read-from participates in global ordering. The
 * checker (checker.hh) combines these with the observed conflict orders.
 */

#ifndef MCVERSI_MEMCONSISTENCY_ARCH_HH
#define MCVERSI_MEMCONSISTENCY_ARCH_HH

#include <memory>
#include <string>
#include <vector>

#include "memconsistency/event.hh"
#include "memconsistency/execwitness.hh"
#include "memconsistency/graph.hh"

namespace mcversi::mc {

/**
 * A hardware memory consistency model.
 *
 * Implementations add generator edges for ppo and fence orderings into a
 * cycle graph; the edge set must have the same transitive closure as the
 * model's full ppo/fence relation when combined with the communication
 * edges the checker adds.
 */
class Architecture
{
  public:
    virtual ~Architecture() = default;

    /** Short model name, e.g. "TSO". */
    virtual std::string name() const = 0;

    /**
     * Add preserved-program-order and fence edges for one thread.
     *
     * @param ew     the witness (for event attributes)
     * @param thread event ids of one thread, in program order
     * @param g      graph to add edges (and fence nodes) to
     */
    virtual void addProgramOrderEdges(const ExecWitness &ew,
                                      const std::vector<EventId> &thread,
                                      CycleGraph &g) const = 0;

    /**
     * Whether internal (same-thread) rf edges participate in the global
     * happens-before check. TSO permits reading own stores early (store
     * forwarding), so only external rf is globally ordered; SC orders
     * all rf.
     */
    virtual bool ghbIncludesRfi() const = 0;
};

/**
 * Instantiate a registered consistency model (models/registry.hh) by
 * name, case-insensitively: "sc", "tso", "pso", "rmo", "rc". Throws
 * std::invalid_argument listing the registered models on an unknown
 * name.
 */
std::unique_ptr<Architecture> makeModel(const std::string &name);

/** Sequential Consistency: ppo = po, all rf global. */
std::unique_ptr<Architecture> makeSc();

/**
 * Total Store Order (x86-style): ppo = po minus write-to-read pairs;
 * atomic RMW instructions imply full fences; internal rf not global.
 */
std::unique_ptr<Architecture> makeTso();

} // namespace mcversi::mc

#endif // MCVERSI_MEMCONSISTENCY_ARCH_HH
