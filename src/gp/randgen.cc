#include "gp/randgen.hh"

namespace mcversi::gp {

Addr
RandomTestGen::randomAddr(Rng &rng) const
{
    const std::size_t slots = params_.numSlots();
    return static_cast<Addr>(rng.below(slots)) * params_.stride;
}

Op
RandomTestGen::randomOp(Rng &rng) const
{
    Op op;
    const double x = rng.uniform();
    double acc = params_.biasRead;
    if (x < acc) {
        op.kind = OpKind::Read;
    } else if (x < (acc += params_.biasReadAddrDp)) {
        op.kind = OpKind::ReadAddrDp;
    } else if (x < (acc += params_.biasWrite)) {
        op.kind = OpKind::Write;
    } else if (x < (acc += params_.biasRmw)) {
        op.kind = OpKind::ReadModifyWrite;
    } else if (x < (acc += params_.biasFlush)) {
        op.kind = OpKind::CacheFlush;
    } else {
        op.kind = OpKind::Delay;
    }
    if (op.isMem())
        op.addr = randomAddr(rng);
    return op;
}

Node
RandomTestGen::randomNode(Rng &rng) const
{
    Node node;
    node.pid = static_cast<Pid>(
        rng.below(static_cast<std::uint64_t>(params_.numThreads)));
    node.op = randomOp(rng);
    return node;
}

Node
RandomTestGen::randomNodeConstrained(Rng &rng, const AddrSet &addrs) const
{
    Node node = randomNode(rng);
    if (node.op.isMem() && !addrs.empty()) {
        // Pick uniformly among the (sorted) constraint set.
        node.op.addr = addrs[static_cast<std::size_t>(
            rng.below(addrs.size()))];
    }
    return node;
}

Test
RandomTestGen::randomTest(Rng &rng) const
{
    std::vector<Node> nodes;
    nodes.reserve(params_.testSize);
    for (std::size_t i = 0; i < params_.testSize; ++i)
        nodes.push_back(randomNode(rng));
    return Test(std::move(nodes));
}

void
RandomTestGen::randomTestInto(Rng &rng, Test &out) const
{
    out.resize(params_.testSize);
    for (std::size_t i = 0; i < params_.testSize; ++i)
        out.node(i) = randomNode(rng);
}

void
RandomTestGen::randomTestInto(Rng &rng, std::span<Node> out) const
{
    for (Node &node : out)
        node = randomNode(rng);
}

} // namespace mcversi::gp
