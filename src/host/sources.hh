/**
 * @file
 * Test sources: where the next test comes from (§5.2).
 *
 *  - RandomSource: McVerSi-RAND, stateless pseudo-random generation.
 *  - GaSource: the GP-based generators. In Selective mode (McVerSi-ALL)
 *    fitness is the adaptive coverage alone; in SinglePoint mode
 *    (McVerSi-Std.XO) fitness adds normalized NDT with equal weighting,
 *    since the standard crossover cannot otherwise converge towards
 *    racy tests.
 */

#ifndef MCVERSI_HOST_SOURCES_HH
#define MCVERSI_HOST_SOURCES_HH

#include <memory>
#include <string>

#include "gp/fitness.hh"
#include "gp/ga.hh"
#include "gp/ndmetrics.hh"
#include "gp/randgen.hh"
#include "gp/test.hh"

namespace mcversi::host {

/** Feedback passed back to a source after evaluating its test. */
struct RunFeedback
{
    /** Adaptive coverage fitness in [0, 1]. */
    double coverageFitness = 0.0;
    /** Non-determinism metrics of the test-run. */
    gp::NdInfo nd{};
};

/** Produces tests and consumes evaluation feedback. */
class TestSource
{
  public:
    virtual ~TestSource() = default;
    virtual gp::Test next() = 0;
    virtual void report(const RunFeedback &feedback) = 0;
    virtual std::string name() const = 0;
};

/** McVerSi-RAND: stateless pseudo-random tests. */
class RandomSource : public TestSource
{
  public:
    RandomSource(gp::GenParams params, std::uint64_t seed)
        : gen_(params), rng_(seed)
    {
    }

    gp::Test next() override { return gen_.randomTest(rng_); }
    void report(const RunFeedback &) override {}
    std::string name() const override { return "McVerSi-RAND"; }

  private:
    gp::RandomTestGen gen_;
    Rng rng_;
};

/** McVerSi-ALL / McVerSi-Std.XO: steady-state GP generation. */
class GaSource : public TestSource
{
  public:
    GaSource(gp::GaParams ga, gp::GenParams gen, std::uint64_t seed,
             gp::SteadyStateGa::XoMode mode)
        : ga_(ga, gen, seed, mode)
    {
    }

    gp::Test next() override { return ga_.nextTest(); }

    void
    report(const RunFeedback &feedback) override
    {
        double fitness = feedback.coverageFitness;
        if (ga_.mode() == gp::SteadyStateGa::XoMode::SinglePoint) {
            // Std.XO: equal weighting of coverage and normalized NDT.
            fitness = 0.5 * fitness +
                      0.5 * gp::normalizedNdt(feedback.nd.ndt);
        }
        ga_.reportResult(fitness, feedback.nd);
    }

    std::string
    name() const override
    {
        return ga_.mode() == gp::SteadyStateGa::XoMode::Selective
                   ? "McVerSi-ALL"
                   : "McVerSi-Std.XO";
    }

    const gp::SteadyStateGa &ga() const { return ga_; }

  private:
    gp::SteadyStateGa ga_;
};

} // namespace mcversi::host

#endif // MCVERSI_HOST_SOURCES_HH
