/**
 * @file
 * Deterministic, seedable pseudo-random number generation.
 *
 * Every source of randomness in McVerSi (test generation, GA decisions,
 * simulator timing perturbation) draws from an explicitly seeded Rng so
 * that simulation runs are exactly reproducible given a seed, matching
 * the paper's methodology ("Each simulation run ... uses a different
 * random seed for both simulation and test generation").
 *
 * The generator is xoshiro256** (public domain, Blackman & Vigna),
 * implemented locally so the library has no dependency on platform
 * random facilities.
 */

#ifndef MCVERSI_COMMON_RNG_HH
#define MCVERSI_COMMON_RNG_HH

#include <array>
#include <cstdint>

#include "common/types.hh"

namespace mcversi {

/** xoshiro256** PRNG with SplitMix64 seeding. */
class Rng
{
  public:
    using result_type = std::uint64_t;

    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

    /** Re-initialize the full state from a 64-bit seed via SplitMix64. */
    void
    reseed(std::uint64_t seed)
    {
        for (auto &word : state_)
            word = splitMix64(seed);
    }

    /** Raw 64 bits of randomness. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    // UniformRandomBitGenerator interface.
    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type{0}; }
    result_type operator()() { return next(); }

    /** Uniform integer in [0, bound). @p bound must be > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Debiased via rejection sampling (Lemire-style threshold).
        const std::uint64_t threshold = (0 - bound) % bound;
        for (;;) {
            const std::uint64_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform integer in the inclusive range [lo, hi]. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Bernoulli variate with probability @p p (clamped to [0,1]). */
    bool
    boolWithProb(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return toUnit(next()) < p;
    }

    /** Uniform double in [0, 1). */
    double uniform() { return toUnit(next()); }

    /** Derive an independent child generator (for per-component streams). */
    Rng
    fork()
    {
        return Rng(next() ^ 0xd2b74407b1ce6e93ull);
    }

    /**
     * Counter-based stream derivation: the seed of the @p stream-th
     * independent stream of @p seed. Unlike fork(), no generator state
     * is consumed -- the mapping is a pure function of (seed, stream),
     * so shards can derive their streams concurrently and in any order.
     * Stream 0 is the base seed itself: a single-stream user is
     * byte-compatible with code that seeded Rng(seed) directly.
     */
    static std::uint64_t
    streamSeed(std::uint64_t seed, std::uint64_t stream)
    {
        if (stream == 0)
            return seed;
        // Two SplitMix64 rounds over a (seed, stream) mix; the odd
        // multiplier decorrelates consecutive stream indices.
        std::uint64_t x = seed ^ (stream * 0x9e3779b97f4a7c15ull);
        splitMix64(x);
        return splitMix64(x);
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    static std::uint64_t
    splitMix64(std::uint64_t &x)
    {
        std::uint64_t z = (x += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    static double
    toUnit(std::uint64_t r)
    {
        return static_cast<double>(r >> 11) * (1.0 / 9007199254740992.0);
    }

    std::array<std::uint64_t, 4> state_{};
};

} // namespace mcversi

#endif // MCVERSI_COMMON_RNG_HH
