// Temporary diagnostic: find what livelocks a small random workload.
#include <iostream>
#include <string>

#include "mcversi.hh"

using namespace mcversi;

int
main(int argc, char **argv)
{
    const std::uint64_t seed =
        argc > 1 ? std::strtoull(argv[1], nullptr, 0) : 1;
    const std::size_t test_size =
        argc > 2 ? std::strtoull(argv[2], nullptr, 0) : 64;

    sim::SystemConfig cfg;
    cfg.seed = seed;
    if (argc > 3 && std::string(argv[3]) == "tsocc")
        cfg.protocol = sim::Protocol::Tsocc;
    sim::System system(cfg);
    mc::Checker checker(mc::makeTso());

    gp::GenParams gen;
    gen.testSize = test_size;
    gen.iterations = 4;
    gen.memSize = 8 * 1024;

    host::Workload::Params wl;
    wl.iterations = gen.iterations;
    host::Workload workload(system, checker, host::layoutFor(gen), wl);

    gp::RandomTestGen rtg(gen);
    Rng rng(seed);

    for (int t = 0; t < 60; ++t) {
        gp::Test test = rtg.randomTest(rng);
        try {
            host::RunResult r = workload.runTest(test);
            std::cout << "test " << t << ": " << r.describe()
                      << " iters=" << r.iterationsRun
                      << " events=" << r.eventsExecuted << "\n";
            if (r.bugDetected())
                return 2;
        } catch (const std::exception &e) {
            std::cout << "test " << t << " EXCEPTION: " << e.what()
                      << "\n";
            for (Pid p = 0; p < 8; ++p)
                std::cout << "  " << system.core(p).debugState() << "\n";
            for (int t = 0; t < 8; ++t) {
                if (auto *l2 = system.tsoccL2(t))
                    std::cout << "  " << l2->debugSummary() << "\n";
            }
            for (Pid p = 0; p < 8; ++p) {
                if (auto *l1 = system.tsoccL1(p))
                    std::cout << "  " << l1->debugSummary() << "\n";
            }
            return 1;
        }
    }
    std::cout << "all ok\n";
    return 0;
}
