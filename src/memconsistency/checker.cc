#include "memconsistency/checker.hh"

#include <cassert>
#include <sstream>
#include <stdexcept>

#include "memconsistency/streaming_checker.hh"

namespace mcversi::mc {

const char *
checkModeName(CheckMode mode)
{
    switch (mode) {
      case CheckMode::Posthoc: return "posthoc";
      case CheckMode::Streaming: return "streaming";
    }
    return "?";
}

CheckMode
parseCheckMode(const std::string &name)
{
    if (name == "posthoc")
        return CheckMode::Posthoc;
    if (name == "streaming")
        return CheckMode::Streaming;
    throw std::invalid_argument("unknown check mode: '" + name +
                                "' (expected posthoc|streaming)");
}

const char *
CheckResult::kindName(Kind k)
{
    switch (k) {
      case Kind::Ok: return "ok";
      case Kind::WitnessAnomaly: return "witness-anomaly";
      case Kind::UniprocViolation: return "sc-per-location";
      case Kind::AtomicityViolation: return "rmw-atomicity";
      case Kind::GhbViolation: return "ghb";
    }
    return "?";
}

CheckResult
Checker::cycleResult(CheckResult::Kind kind, const ExecWitness &ew,
                     const std::vector<CycleGraph::Node> &cyc,
                     const std::string &constraint)
{
    CheckResult res;
    res.kind = kind;
    std::ostringstream os;
    os << constraint << " cycle:";
    const auto num_events = static_cast<CycleGraph::Node>(ew.numEvents());
    for (const auto node : cyc) {
        if (node < num_events) {
            res.cycle.push_back(node);
            os << "\n  " << ew.event(node).toString();
        } else {
            os << "\n  <fence>";
        }
    }
    res.message = os.str();
    return res;
}

void
Checker::enableVerdictCache(VerdictCache::Config config)
{
    cache_ = std::make_unique<VerdictCache>(config);
}

void
Checker::disableVerdictCache()
{
    cache_.reset();
}

CheckResult
Checker::check(ExecWitness &ew) const
{
    ew.finalize();
    if (ew.anomaly() != WitnessAnomaly::None) {
        CheckResult res;
        res.kind = CheckResult::Kind::WitnessAnomaly;
        res.message = ew.anomalyInfo();
        return res;
    }

    // Collective checking: a cached Ok verdict for this witness's
    // equivalence class settles the check immediately (Ok carries no
    // diagnostics, so returning a fresh Ok is byte-identical).
    // Violation hits fall through to the full analysis, which rebuilds
    // the message/cycle in this witness's event ids.
    WitnessSignature sig;
    if (cache_ != nullptr) {
        sig = signatureScratch_.compute(ew);
        std::uint8_t verdict = 0;
        if (cache_->lookup(sig, verdict) &&
            static_cast<CheckResult::Kind>(verdict) ==
                CheckResult::Kind::Ok) {
            return {};
        }
    }

    const CheckResult res = fullCheck(ew);
    if (cache_ != nullptr)
        cache_->insert(sig, static_cast<std::uint8_t>(res.kind));
    return res;
}

CheckResult
Checker::checkStreamed(ExecWitness &ew, const StreamingChecker &sc) const
{
    // Windowed (ring-buffer) witness: the event log cannot finalize,
    // so the post-hoc pipeline only ever runs over the retained tail.
    // The verdict cache is skipped (its signature needs resolved
    // conflict orders over the whole stream).
    if (ew.window() != 0) {
        // Clean, complete, and truncation-free: the incremental graphs
        // proved acyclicity over the whole stream, nothing more to do.
        if (!sc.violationDetected() && sc.streamComplete() &&
            !sc.windowTruncated() &&
            sc.eventsConsumed() == ew.numEvents()) {
            return {};
        }
        if (ew.droppedEvents() == 0) {
            // The whole stream is still in the ring (dirty, or clean
            // but incomplete, e.g. a read of a never-written value):
            // replay it into a full-mode scratch witness and run the
            // exact post-hoc pipeline -- ids, message, and cycle come
            // out byte-identical to unbounded checking.
            ew.replayRetainedInto(windowScratch_);
            windowScratch_.finalize();
            if (windowScratch_.anomaly() != WitnessAnomaly::None) {
                CheckResult res;
                res.kind = CheckResult::Kind::WitnessAnomaly;
                res.message = windowScratch_.anomalyInfo();
                return res;
            }
            return fullCheck(windowScratch_);
        }
        if (!sc.violationDetected()) {
            // Constraints were dropped at retirement and the evicted
            // prefix is gone: the live window closed no cycle, but the
            // verdict does not cover the whole stream -- say so
            // instead of reporting an unqualified pass.
            CheckResult res;
            res.message =
                "clean within retained window (truncated: " +
                std::to_string(ew.droppedEvents()) +
                " events evicted, " +
                std::to_string(sc.truncatedStragglers()) +
                " straggler orderings dropped, " +
                std::to_string(sc.truncatedStaleReads()) +
                " stale accesses unresolved)";
            return res;
        }
        // Violation past the ring's reach: render the streaming-native
        // verdict over what remains, flagged with the truncation note.
        return sc.earlyStopResult(ew);
    }

    // Fast path: the stream consumed every recorded event, resolved
    // every conflict order online, and closed no cycle -- which proves
    // the finalized witness would be anomaly-free and pass the batch
    // analysis. finalize() and the full check are skipped entirely;
    // this is where streaming mode earns its keep on clean executions.
    if (!sc.violationDetected() && sc.streamComplete() &&
        !ew.finalized() && sc.eventsConsumed() == ew.numEvents()) {
#ifndef NDEBUG
        // Cross-check the completeness claim against the batch
        // pipeline (Debug builds only).
        ew.finalize();
        assert(ew.anomaly() == WitnessAnomaly::None &&
               "clean complete stream disagrees with witness anomaly");
        assert(fullCheck(ew).ok() &&
               "streaming checker missed a violation");
#endif
        if (cache_ != nullptr) {
            // The canonical signature hashes resolved conflict orders,
            // so the cache still costs a finalize().
            ew.finalize();
            const WitnessSignature sig = signatureScratch_.compute(ew);
            std::uint8_t verdict = 0;
            if (!cache_->lookup(sig, verdict)) {
                cache_->insert(sig, static_cast<std::uint8_t>(
                                        CheckResult::Kind::Ok));
            }
        }
        return {};
    }

    ew.finalize();
    if (ew.anomaly() != WitnessAnomaly::None) {
        CheckResult res;
        res.kind = CheckResult::Kind::WitnessAnomaly;
        res.message = ew.anomalyInfo();
        return res;
    }

    WitnessSignature sig;
    if (cache_ != nullptr) {
        sig = signatureScratch_.compute(ew);
        std::uint8_t verdict = 0;
        if (cache_->lookup(sig, verdict) &&
            static_cast<CheckResult::Kind>(verdict) ==
                CheckResult::Kind::Ok) {
            return {};
        }
    }

    CheckResult res;
    if (sc.violationDetected()) {
        // Re-derive the verdict post-hoc so the diagnostics (message,
        // cycle event ids) are byte-identical to check(). Violations
        // are the rare path, so this costs nothing in the steady state.
        res = fullCheck(ew);
    } else {
#ifndef NDEBUG
        // A clean stream must mean a clean witness; cross-check the
        // incremental edge strategies against the batch analysis.
        assert(fullCheck(ew).ok() &&
               "streaming checker missed a violation");
#endif
    }
    if (cache_ != nullptr)
        cache_->insert(sig, static_cast<std::uint8_t>(res.kind));
    return res;
}

CheckResult
Checker::fullCheck(const ExecWitness &ew) const
{
    // Derive the immediate fr edges exactly once; both the uniproc and
    // the ghb phase stream them from this buffer.
    frScratch_.clear();
    const auto num_events = static_cast<EventId>(ew.numEvents());
    for (EventId r = 0; r < num_events; ++r) {
        if (!ew.event(r).isRead())
            continue;
        const EventId src = ew.rfSource(r);
        if (src == kNoEvent)
            continue;
        const EventId succ = ew.coSuccessor(src);
        if (succ != kNoEvent)
            frScratch_.emplace_back(r, succ);
    }

    if (auto res = checkUniproc(ew); !res.ok())
        return res;
    if (auto res = checkAtomicity(ew); !res.ok())
        return res;
    return checkGhb(ew);
}

void
Checker::addCoEdges(const ExecWitness &ew, CycleGraph &g)
{
    const auto num_events = static_cast<EventId>(ew.numEvents());
    for (EventId w = 0; w < num_events; ++w) {
        const EventId prev = ew.coPredecessor(w);
        if (prev != kNoEvent)
            g.addEdge(prev, w);
    }
}

void
Checker::addFrEdges(CycleGraph &g) const
{
    for (const auto &[r, succ] : frScratch_)
        g.addEdge(r, succ);
}

CheckResult
Checker::checkUniproc(const ExecWitness &ew) const
{
    CycleGraph &g = uniprocScratch_;
    g.reset(ew.numEvents());

    // po-loc: consecutive same-address events per thread (the per
    // (thread, address) sequence is totally ordered, so the chain
    // generates the full po-loc). Per-address state lives in a flat
    // array indexed by the witness's dense AddrIds.
    if (lastAtAddr_.size() < ew.numAddrs()) {
        lastAtAddr_.resize(ew.numAddrs());
        addrStamp_.resize(ew.numAddrs(), 0);
    }
    for (Pid pid : ew.threads()) {
        ++stamp_;
        for (EventId id : ew.threadEvents(pid)) {
            const AddrId aid = ew.addrId(id);
            if (aid < 0)
                continue; // Address-less event: no po-loc ordering.
            const auto a = static_cast<std::size_t>(aid);
            if (addrStamp_[a] == stamp_)
                g.addEdge(lastAtAddr_[a], id);
            else
                addrStamp_[a] = stamp_;
            lastAtAddr_[a] = id;
        }
    }

    // Communication edges: rf (all), immediate co, immediate fr.
    const auto num_events = static_cast<EventId>(ew.numEvents());
    for (EventId r = 0; r < num_events; ++r) {
        const EventId src = ew.rfSource(r);
        if (src != kNoEvent && ew.event(r).isRead())
            g.addEdge(src, r);
    }
    addCoEdges(ew, g);
    addFrEdges(g);

    if (auto cyc = g.findCycle()) {
        return cycleResult(CheckResult::Kind::UniprocViolation, ew, *cyc,
                           "sc-per-location");
    }
    return {};
}

CheckResult
Checker::checkAtomicity(const ExecWitness &ew) const
{
    for (const auto &[r, w] : ew.rmwPairs()) {
        const EventId src = ew.rfSource(r);
        if (src == kNoEvent)
            continue; // Anomaly already reported.
        if (ew.coPredecessor(w) != src) {
            CheckResult res;
            res.kind = CheckResult::Kind::AtomicityViolation;
            std::ostringstream os;
            os << "rmw atomicity violated: read " << ew.event(r).toString()
               << " sourced from " << ew.event(src).toString()
               << " but write " << ew.event(w).toString()
               << " does not immediately co-follow it";
            res.message = os.str();
            return res;
        }
    }
    return {};
}

CheckResult
Checker::checkGhb(const ExecWitness &ew) const
{
    CycleGraph &g = ghbScratch_;
    g.reset(ew.numEvents());

    for (Pid pid : ew.threads())
        arch_->addProgramOrderEdges(ew, ew.threadEvents(pid), g);

    const bool include_rfi = arch_->ghbIncludesRfi();
    const auto num_events = static_cast<EventId>(ew.numEvents());
    for (EventId r = 0; r < num_events; ++r) {
        const EventId src = ew.rfSource(r);
        if (src == kNoEvent || !ew.event(r).isRead())
            continue;
        const Event &w = ew.event(src);
        if (include_rfi || w.isInit() ||
            w.iiid.pid != ew.event(r).iiid.pid) {
            g.addEdge(src, r);
        }
    }
    addCoEdges(ew, g);
    addFrEdges(g);

    if (auto cyc = g.findCycle()) {
        return cycleResult(CheckResult::Kind::GhbViolation, ew, *cyc,
                           "ghb(" + arch_->name() + ")");
    }
    return {};
}

} // namespace mcversi::mc
