/**
 * @file
 * McVerSi umbrella header: the full public API.
 *
 * Typical use is the declarative Campaign API (see
 * examples/quickstart.cc): describe campaigns as specs, expand a
 * matrix, and run it on a worker pool:
 *
 *   using namespace mcversi::campaign;
 *   CampaignMatrix matrix;
 *   matrix.base = CampaignSpec::fromString(
 *       "test-size=256 iterations=4 max-runs=1000");
 *   matrix.bugs = {"MESI,LQ+IS,Inv", "MESI+PUTX-Race"};
 *   matrix.generators = {"McVerSi-ALL", "McVerSi-RAND"};
 *   matrix.seeds = {1, 2, 3};
 *   CampaignRunner runner({.threads = 8});
 *   CampaignSummary summary = runner.run(matrix.expand());
 *   std::cout << summary.toJson();
 *
 * Custom generators register by name next to the built-in
 * "McVerSi-ALL" / "McVerSi-Std.XO" / "McVerSi-RAND" / "diy-litmus":
 *
 *   campaign::SourceRegistry::instance().add("my-gen",
 *       [](const campaign::CampaignSpec &spec) { ... });
 *
 * The lower layers stay public for single-run control: build a
 * host::TestSource via the registry (or directly) and drive a
 * host::VerificationHarness yourself.
 */

#ifndef MCVERSI_MCVERSI_HH
#define MCVERSI_MCVERSI_HH

#include "common/rng.hh"
#include "common/types.hh"

#include "memconsistency/arch.hh"
#include "memconsistency/checker.hh"
#include "memconsistency/event.hh"
#include "memconsistency/execwitness.hh"
#include "memconsistency/graph.hh"
#include "memconsistency/models/engine.hh"
#include "memconsistency/models/profile.hh"
#include "memconsistency/models/registry.hh"
#include "memconsistency/relation.hh"

#include "sim/bugs.hh"
#include "sim/config.hh"
#include "sim/coverage.hh"
#include "sim/fault.hh"
#include "sim/system.hh"

#include "gp/crossover.hh"
#include "gp/fitness.hh"
#include "gp/ga.hh"
#include "gp/ndmetrics.hh"
#include "gp/ops.hh"
#include "gp/params.hh"
#include "gp/randgen.hh"
#include "gp/test.hh"

#include "host/harness.hh"
#include "host/interface.hh"
#include "host/sources.hh"
#include "host/workload.hh"

#include "litmus/diy.hh"
#include "litmus/litmus.hh"
#include "litmus/runner.hh"
#include "litmus/suites.hh"

#include "campaign/registry.hh"
#include "campaign/result.hh"
#include "campaign/runner.hh"
#include "campaign/spec.hh"

#include "fleet/coordinator.hh"
#include "fleet/fs.hh"
#include "fleet/journal.hh"
#include "fleet/wire.hh"

#endif // MCVERSI_MCVERSI_HH
