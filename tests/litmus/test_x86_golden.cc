/**
 * @file
 * Golden regression for the generated x86-TSO litmus suite.
 *
 * Pins down, for every one of the 38 suite entries:
 *
 *  1. the suite content itself (deterministic cycle names, in order),
 *  2. that a witness realizing the test's forbidden outcome is rejected
 *     by the TSO checker as a global-happens-before violation (every
 *     suite entry is a forbidden critical cycle, so TSO -- and a
 *     fortiori SC -- must flag it), and
 *  3. that the sequential (one-thread-at-a-time) execution of the same
 *     test is permitted: the TSO and SC checkers accept it and the
 *     test's own forbidden condition does not fire.
 *
 * Witnesses are synthesized directly from the litmus condition atoms,
 * exercising exactly the rf/co/fr shapes the suite claims to cover.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "litmus/suites.hh"
#include "memconsistency/checker.hh"
#include "witness_synthesis.hh"

using namespace mcversi;
using namespace mcversi::litmus;

namespace {

/**
 * Expected suite: the 38 canonical forbidden cycles, in enumeration
 * order, plus the constraint the TSO checker rejects each one's
 * forbidden outcome with. Cycles whose wrap-around address group puts
 * two same-address events in one thread (CoRR-style shapes) violate
 * sc-per-location, which the checker tests before global
 * happens-before; pure multi-address cycles reach the ghb check. Any
 * change to the diy enumerator, the edge alphabet, or the checker's
 * constraint ordering shows up here first.
 */
struct GoldenEntry
{
    const char *name;
    mc::CheckResult::Kind kind;
};

constexpr auto kUniproc = mc::CheckResult::Kind::UniprocViolation;
constexpr auto kGhb = mc::CheckResult::Kind::GhbViolation;

const GoldenEntry kGolden[kX86SuiteSize] = {
    {"Rfe PodRR PodRR Fre", kUniproc},
    {"Rfe PodRR PodRW Coe", kUniproc},
    {"Rfe PodRW PodWW Coe", kUniproc},
    {"Rfe PodRW MFencedWR Fre", kUniproc},
    {"Fre PodWW PodWW Rfe", kUniproc},
    {"Fre MFencedWR PodRW Rfe", kUniproc},
    {"Coe PodWW PodWW Coe", kUniproc},
    {"Coe PodWW MFencedWR Fre", kUniproc},
    {"Coe MFencedWR PodRR Fre", kUniproc},
    {"Coe MFencedWR PodRW Coe", kUniproc},
    {"PodRR Fre PodWW Rfe", kGhb},
    {"PodRW Rfe PodRW Rfe", kGhb},
    {"PodRW Coe PodWW Rfe", kGhb},
    {"PodWW Coe PodWW Coe", kGhb},
    {"PodWW Coe MFencedWR Fre", kGhb},
    {"MFencedWR Fre MFencedWR Fre", kGhb},
    {"Rfe Fre PodWW PodWW Coe", kUniproc},
    {"Rfe Fre PodWW MFencedWR Fre", kUniproc},
    {"Rfe Fre MFencedWR PodRR Fre", kUniproc},
    {"Rfe Fre MFencedWR PodRW Coe", kUniproc},
    {"Rfe PodRR Fre PodWW Coe", kGhb},
    {"Rfe PodRR Fre MFencedWR Fre", kGhb},
    {"Rfe PodRR PodRR Fre Coe", kUniproc},
    {"Rfe PodRR PodRR PodRR Fre", kUniproc},
    {"Rfe PodRR PodRR PodRW Coe", kUniproc},
    {"Rfe PodRR PodRW Rfe Fre", kUniproc},
    {"Rfe PodRR PodRW Coe Coe", kUniproc},
    {"Rfe PodRR PodRW PodWW Coe", kUniproc},
    {"Rfe PodRR PodRW MFencedWR Fre", kUniproc},
    {"Rfe PodRW Rfe PodRR Fre", kGhb},
    {"Rfe PodRW Rfe PodRW Coe", kGhb},
    {"Rfe PodRW Coe PodWW Coe", kGhb},
    {"Rfe PodRW Coe MFencedWR Fre", kGhb},
    {"Rfe PodRW PodWW Rfe Fre", kUniproc},
    {"Rfe PodRW PodWW Coe Coe", kUniproc},
    {"Rfe PodRW PodWW PodWW Coe", kUniproc},
    {"Rfe PodRW PodWW MFencedWR Fre", kUniproc},
    {"Rfe PodRW MFencedWR Fre Coe", kUniproc},
};

class X86Golden : public testing::TestWithParam<std::size_t>
{
  protected:
    LitmusTest
    testEntry() const
    {
        static const std::vector<LitmusTest> suite = x86TsoSuite();
        return suite.at(GetParam());
    }
};

std::string
caseName(const testing::TestParamInfo<std::size_t> &info)
{
    std::string name = kGolden[info.param].name;
    for (char &c : name)
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return std::to_string(info.param) + "_" + name;
}

} // namespace

TEST(X86GoldenSuite, NamesAndSizeAreStable)
{
    const std::vector<LitmusTest> suite = x86TsoSuite();
    ASSERT_EQ(suite.size(), kX86SuiteSize);
    for (std::size_t i = 0; i < suite.size(); ++i) {
        EXPECT_EQ(suite[i].name, kGolden[i].name) << "suite index " << i;
        EXPECT_GE(suite[i].numThreads, 2) << suite[i].name;
        EXPECT_GE(suite[i].forbidden.size(), 2u) << suite[i].name;
    }
}

TEST_P(X86Golden, ForbiddenOutcomeViolatesTso)
{
    const LitmusTest t = testEntry();
    mc::ExecWitness ew = testsupport::forbiddenWitness(t);
    ASSERT_EQ(ew.anomaly(), mc::WitnessAnomaly::None) << t.name;

    // The synthesized witness must actually realize the forbidden
    // outcome the test describes...
    EXPECT_TRUE(evalForbidden(t, ew)) << t.name;

    // ...and the TSO checker must reject it as a ghb cycle.
    const mc::Checker tso(mc::makeTso());
    const mc::CheckResult r = tso.check(ew);
    EXPECT_FALSE(r.ok()) << t.name;
    EXPECT_EQ(r.kind, kGolden[GetParam()].kind)
        << t.name << ": " << r.message;
    EXPECT_FALSE(r.cycle.empty()) << t.name;

    // Whatever TSO forbids, the stronger SC model forbids too.
    const mc::Checker sc(mc::makeSc());
    EXPECT_FALSE(sc.check(ew).ok()) << t.name;
}

TEST_P(X86Golden, SequentialOutcomeIsPermitted)
{
    const LitmusTest t = testEntry();
    mc::ExecWitness ew = testsupport::sequentialWitness(t);
    ASSERT_EQ(ew.anomaly(), mc::WitnessAnomaly::None) << t.name;

    // A sequential execution is SC, hence permitted by both models,
    // and can never exhibit a forbidden critical cycle.
    EXPECT_FALSE(evalForbidden(t, ew)) << t.name;

    const mc::Checker tso(mc::makeTso());
    const mc::CheckResult rt = tso.check(ew);
    EXPECT_TRUE(rt.ok()) << t.name << ": " << rt.message;

    const mc::Checker sc(mc::makeSc());
    const mc::CheckResult rs = sc.check(ew);
    EXPECT_TRUE(rs.ok()) << t.name << ": " << rs.message;
}

INSTANTIATE_TEST_SUITE_P(Suite, X86Golden,
                         testing::Range<std::size_t>(0, kX86SuiteSize),
                         caseName);
