/** @file Unit tests for the candidate execution object. */

#include <gtest/gtest.h>

#include "memconsistency/execwitness.hh"

using namespace mcversi::mc;
using namespace mcversi;

TEST(ExecWitness, ReadOfInitCreatesInitEvent)
{
    ExecWitness ew;
    const EventId r = ew.recordRead(0, 0, 0x100, kInitVal);
    ew.finalize();
    const EventId init = ew.initEvent(0x100);
    ASSERT_NE(init, kNoEvent);
    EXPECT_TRUE(ew.event(init).isInit());
    EXPECT_EQ(ew.rfSource(r), init);
    EXPECT_EQ(ew.anomaly(), WitnessAnomaly::None);
}

TEST(ExecWitness, ReadFromWrite)
{
    ExecWitness ew;
    const EventId w = ew.recordWrite(0, 0, 0x100, 42, kInitVal);
    const EventId r = ew.recordRead(1, 0, 0x100, 42);
    ew.finalize();
    EXPECT_EQ(ew.rfSource(r), w);
    EXPECT_TRUE(ew.rf().contains(w, r));
}

TEST(ExecWitness, ReadBeforeWriteRecordingOrderIsFine)
{
    // Store-forwarded reads are recorded before the producing store
    // serializes; resolution is deferred to finalize().
    ExecWitness ew;
    const EventId r = ew.recordRead(0, 1, 0x100, 42);
    const EventId w = ew.recordWrite(0, 0, 0x100, 42, kInitVal);
    ew.finalize();
    EXPECT_EQ(ew.anomaly(), WitnessAnomaly::None);
    EXPECT_EQ(ew.rfSource(r), w);
}

TEST(ExecWitness, CoChainFromOverwrites)
{
    ExecWitness ew;
    const EventId w1 = ew.recordWrite(0, 0, 0x40, 1, kInitVal);
    const EventId w2 = ew.recordWrite(1, 0, 0x40, 2, 1);
    const EventId w3 = ew.recordWrite(0, 1, 0x40, 3, 2);
    ew.finalize();
    const EventId init = ew.initEvent(0x40);
    EXPECT_EQ(ew.coSuccessor(init), w1);
    EXPECT_EQ(ew.coSuccessor(w1), w2);
    EXPECT_EQ(ew.coSuccessor(w2), w3);
    EXPECT_EQ(ew.coSuccessor(w3), kNoEvent);
    EXPECT_EQ(ew.coPredecessor(w2), w1);
}

TEST(ExecWitness, UnknownValueAnomaly)
{
    ExecWitness ew;
    ew.recordRead(0, 0, 0x100, 999);
    ew.finalize();
    EXPECT_EQ(ew.anomaly(), WitnessAnomaly::UnknownValue);
}

TEST(ExecWitness, CoForkAnomaly)
{
    // Two writes claiming to overwrite the same value: the coherence
    // chain forks, e.g. after a lost writeback.
    ExecWitness ew;
    ew.recordWrite(0, 0, 0x40, 1, kInitVal);
    ew.recordWrite(1, 0, 0x40, 2, 1);
    ew.recordWrite(2, 0, 0x40, 3, 1);
    ew.finalize();
    EXPECT_EQ(ew.anomaly(), WitnessAnomaly::CoFork);
    EXPECT_FALSE(ew.anomalyInfo().empty());
}

TEST(ExecWitness, FrImmediateAndFull)
{
    ExecWitness ew;
    const EventId w1 = ew.recordWrite(0, 0, 0x40, 1, kInitVal);
    const EventId w2 = ew.recordWrite(0, 1, 0x40, 2, 1);
    const EventId r = ew.recordRead(1, 0, 0x40, kInitVal);
    ew.finalize();

    const Relation fr_imm = ew.computeFrImmediate();
    const EventId init = ew.initEvent(0x40);
    ASSERT_NE(init, kNoEvent);
    EXPECT_TRUE(fr_imm.contains(r, w1));
    EXPECT_FALSE(fr_imm.contains(r, w2)); // Only immediate.

    const Relation fr = ew.computeFr();
    EXPECT_TRUE(fr.contains(r, w1));
    EXPECT_TRUE(fr.contains(r, w2));
}

TEST(ExecWitness, ThreadEventsSortedByProgramOrder)
{
    ExecWitness ew;
    // Record out of order: poi 2, then 0, then 1.
    ew.recordRead(0, 2, 0x10, kInitVal);
    ew.recordRead(0, 0, 0x20, kInitVal);
    ew.recordWrite(0, 1, 0x30, 5, kInitVal);
    const auto &events = ew.threadEvents(0);
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(ew.event(events[0]).iiid.poi, 0);
    EXPECT_EQ(ew.event(events[1]).iiid.poi, 1);
    EXPECT_EQ(ew.event(events[2]).iiid.poi, 2);
}

TEST(ExecWitness, RmwPairTracking)
{
    ExecWitness ew;
    const EventId r = ew.recordRead(3, 7, 0x40, kInitVal, true);
    const EventId w = ew.recordWrite(3, 7, 0x40, 10, kInitVal, true);
    ew.finalize();
    ASSERT_EQ(ew.rmwPairs().size(), 1u);
    EXPECT_EQ(ew.rmwPairs()[0].first, r);
    EXPECT_EQ(ew.rmwPairs()[0].second, w);
    EXPECT_TRUE(ew.event(r).rmw);
    EXPECT_EQ(ew.event(r).sub, 0);
    EXPECT_EQ(ew.event(w).sub, 1);
}

TEST(ExecWitness, ThreadsEnumeration)
{
    ExecWitness ew;
    ew.recordRead(2, 0, 0x10, kInitVal);
    ew.recordRead(0, 0, 0x10, kInitVal);
    auto threads = ew.threads();
    ASSERT_EQ(threads.size(), 2u);
    EXPECT_EQ(threads[0], 0);
    EXPECT_EQ(threads[1], 2);
}

TEST(ExecWitness, ResetClearsEverything)
{
    ExecWitness ew;
    ew.recordWrite(0, 0, 0x40, 1, kInitVal);
    ew.recordRead(0, 1, 0x40, 1);
    ew.finalize();
    ew.reset();
    EXPECT_EQ(ew.numEvents(), 0u);
    EXPECT_TRUE(ew.rf().empty());
    EXPECT_TRUE(ew.co().empty());
    EXPECT_FALSE(ew.finalized());
    EXPECT_EQ(ew.anomaly(), WitnessAnomaly::None);
    // Reusable after reset; finalize materializes the init event for
    // the overwritten value, hence 2 events.
    ew.recordWrite(0, 0, 0x40, 7, kInitVal);
    ew.finalize();
    EXPECT_EQ(ew.numEvents(), 2u);
}

TEST(ExecWitness, FinalizeIdempotent)
{
    ExecWitness ew;
    const EventId w = ew.recordWrite(0, 0, 0x40, 1, kInitVal);
    ew.finalize();
    ew.finalize();
    const EventId init = ew.initEvent(0x40);
    EXPECT_EQ(ew.coSuccessor(init), w);
    EXPECT_EQ(ew.co().size(), 1u);
}

TEST(ExecWitness, DenseAddrIds)
{
    ExecWitness ew;
    const EventId a = ew.recordRead(0, 0, 0x40, kInitVal);
    const EventId b = ew.recordRead(0, 1, 0x80, kInitVal);
    const EventId c = ew.recordRead(1, 0, 0x40, kInitVal);
    EXPECT_EQ(ew.numAddrs(), 2u);
    EXPECT_EQ(ew.addrId(a), ew.addrId(c));
    EXPECT_NE(ew.addrId(a), ew.addrId(b));
    EXPECT_LT(ew.addrId(a), static_cast<AddrId>(ew.numAddrs()));
    EXPECT_LT(ew.addrId(b), static_cast<AddrId>(ew.numAddrs()));
    ew.finalize();
    // Init events share their address's dense id.
    const EventId init = ew.initEvent(0x40);
    ASSERT_NE(init, kNoEvent);
    EXPECT_EQ(ew.addrId(init), ew.addrId(a));
}

TEST(ExecWitness, ThreadsViewIsStableAndSorted)
{
    ExecWitness ew;
    EXPECT_TRUE(ew.threads().empty());
    ew.recordRead(5, 0, 0x10, kInitVal);
    ew.recordRead(1, 0, 0x10, kInitVal);
    ew.recordRead(5, 1, 0x10, kInitVal);
    const auto &threads = ew.threads();
    ASSERT_EQ(threads.size(), 2u);
    EXPECT_EQ(threads[0], 1);
    EXPECT_EQ(threads[1], 5);
    ew.finalize();
    // Same view after finalize; no per-call rebuilding.
    EXPECT_EQ(&ew.threads(), &threads);
}

TEST(ExecWitness, EventToString)
{
    ExecWitness ew;
    const EventId w = ew.recordWrite(1, 4, 0x80, 9, kInitVal);
    const std::string s = ew.event(w).toString();
    EXPECT_NE(s.find("P1"), std::string::npos);
    EXPECT_NE(s.find("W"), std::string::npos);
}
