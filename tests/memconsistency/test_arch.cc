/**
 * @file
 * Architecture (ppo edge generator) tests: the generator edges must
 * have the same reachability as the full ppo relation.
 */

#include <gtest/gtest.h>

#include "memconsistency/arch.hh"
#include "memconsistency/checker.hh"

using namespace mcversi::mc;
using namespace mcversi;

namespace {

/** Reachability query over the generated graph. */
bool
reaches(const CycleGraph &g_const, CycleGraph::Node from,
        CycleGraph::Node to)
{
    // Rebuild reachability by DFS over a copy of the adjacency using
    // findCycle is not possible; do BFS manually via the public API --
    // CycleGraph lacks adjacency access, so test reachability through a
    // helper: add edge to -> from and check a cycle appears.
    CycleGraph g = g_const; // copyable
    g.addEdge(to, from);
    return g.findCycle().has_value();
}

struct ThreadBuilder
{
    ExecWitness ew;
    std::vector<EventId> ids;

    EventId
    read(Addr a, int poi, bool rmw = false)
    {
        EventId id = ew.recordRead(0, poi, a, kInitVal, rmw);
        ids.push_back(id);
        return id;
    }

    EventId
    write(Addr a, int poi, WriteVal v, bool rmw = false)
    {
        EventId id = ew.recordWrite(0, poi, a, v, kInitVal, rmw);
        ids.push_back(id);
        return id;
    }

    CycleGraph
    graph(const Architecture &arch)
    {
        ew.finalize();
        CycleGraph g(ew.numEvents());
        arch.addProgramOrderEdges(ew, ew.threadEvents(0), g);
        return g;
    }
};

} // namespace

TEST(ArchSc, FullProgramOrderPreserved)
{
    ThreadBuilder b;
    const EventId w1 = b.write(0x100, 0, 1);
    const EventId r1 = b.read(0x140, 1);
    const EventId w2 = b.write(0x180, 2, 2);
    auto arch = makeSc();
    CycleGraph g = b.graph(*arch);
    EXPECT_TRUE(reaches(g, w1, r1));
    EXPECT_TRUE(reaches(g, w1, w2));
    EXPECT_TRUE(reaches(g, r1, w2));
    EXPECT_FALSE(reaches(g, w2, w1));
    EXPECT_TRUE(arch->ghbIncludesRfi());
}

TEST(ArchTso, WriteToReadRelaxed)
{
    ThreadBuilder b;
    const EventId w = b.write(0x100, 0, 1);
    const EventId r = b.read(0x140, 1);
    auto arch = makeTso();
    CycleGraph g = b.graph(*arch);
    EXPECT_FALSE(reaches(g, w, r)) << "TSO must relax W->R";
    EXPECT_FALSE(arch->ghbIncludesRfi());
}

TEST(ArchTso, ReadOrderedWithEverythingLater)
{
    ThreadBuilder b;
    const EventId r = b.read(0x100, 0);
    const EventId w = b.write(0x140, 1, 1);
    const EventId r2 = b.read(0x180, 2);
    auto arch = makeTso();
    CycleGraph g = b.graph(*arch);
    EXPECT_TRUE(reaches(g, r, w));
    EXPECT_TRUE(reaches(g, r, r2));
}

TEST(ArchTso, ReadReachesLaterReadAcrossWrite)
{
    // r1; w; r2: (r1, r2) in ppo even though (w, r2) is not.
    ThreadBuilder b;
    const EventId r1 = b.read(0x100, 0);
    const EventId w = b.write(0x140, 1, 1);
    const EventId r2 = b.read(0x180, 2);
    auto arch = makeTso();
    CycleGraph g = b.graph(*arch);
    EXPECT_TRUE(reaches(g, r1, r2));
    EXPECT_FALSE(reaches(g, w, r2));
}

TEST(ArchTso, WriteChainPreserved)
{
    ThreadBuilder b;
    const EventId w1 = b.write(0x100, 0, 1);
    const EventId r = b.read(0x140, 1);
    const EventId w2 = b.write(0x180, 2, 2);
    const EventId w3 = b.write(0x1c0, 3, 3);
    auto arch = makeTso();
    CycleGraph g = b.graph(*arch);
    EXPECT_TRUE(reaches(g, w1, w2));
    EXPECT_TRUE(reaches(g, w1, w3));
    EXPECT_TRUE(reaches(g, w2, w3));
    EXPECT_FALSE(reaches(g, w1, r));
}

TEST(ArchTso, RmwActsAsFullFence)
{
    // w1; rmw; r2 -- through the fence, (w1, r2) IS ordered.
    ThreadBuilder b;
    const EventId w1 = b.write(0x100, 0, 1);
    const EventId rr = b.read(0x140, 1, true);
    const EventId rw = b.write(0x140, 1, 2, true);
    const EventId r2 = b.read(0x180, 2);
    auto arch = makeTso();
    CycleGraph g = b.graph(*arch);
    EXPECT_TRUE(reaches(g, w1, rr));
    EXPECT_TRUE(reaches(g, rr, rw));
    EXPECT_TRUE(reaches(g, rw, r2));
    EXPECT_TRUE(reaches(g, w1, r2)) << "fence must restore W->R";
}

TEST(ArchTso, NoSpuriousBackwardEdges)
{
    ThreadBuilder b;
    const EventId r1 = b.read(0x100, 0);
    const EventId w1 = b.write(0x140, 1, 1);
    const EventId rr = b.read(0x180, 2, true);
    const EventId rw = b.write(0x180, 2, 2, true);
    const EventId r2 = b.read(0x1c0, 3);
    auto arch = makeTso();
    CycleGraph g = b.graph(*arch);
    EXPECT_FALSE(reaches(g, r2, r1));
    EXPECT_FALSE(reaches(g, rw, w1));
    EXPECT_FALSE(reaches(g, rr, r1));
    EXPECT_FALSE(reaches(g, w1, r1));
}

TEST(ArchNames, Names)
{
    EXPECT_EQ(makeSc()->name(), "SC");
    EXPECT_EQ(makeTso()->name(), "TSO");
}
