#include "sim/coverage.hh"

namespace mcversi::sim {

std::uint32_t
TransitionCoverage::registerTransition(const std::string &controller,
                                       const std::string &state,
                                       const std::string &event)
{
    const std::string key = controller + "/" + state + "/" + event;
    auto it = byName_.find(key);
    if (it != byName_.end())
        return it->second;
    const auto id = static_cast<std::uint32_t>(names_.size());
    byName_.emplace(key, id);
    names_.push_back(key);
    counts_.push_back(0);
    return id;
}

double
TransitionCoverage::totalCoverage() const
{
    if (counts_.empty())
        return 0.0;
    std::size_t hit = 0;
    for (const auto c : counts_)
        if (c > 0)
            ++hit;
    return static_cast<double>(hit) /
           static_cast<double>(counts_.size());
}

double
TransitionCoverage::totalCoverage(const std::string &prefix) const
{
    std::size_t total = 0;
    std::size_t hit = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        if (names_[i].rfind(prefix, 0) != 0)
            continue;
        ++total;
        if (counts_[i] > 0)
            ++hit;
    }
    if (total == 0)
        return 0.0;
    return static_cast<double>(hit) / static_cast<double>(total);
}

} // namespace mcversi::sim
