/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single global event queue orders callbacks by (tick, insertion
 * sequence). Components schedule future work; the queue runs until
 * quiescent (no pending events), which is also how the harness detects
 * the end of a test iteration -- the simulated system has no periodic
 * background activity.
 */

#ifndef MCVERSI_SIM_EVENTQ_HH
#define MCVERSI_SIM_EVENTQ_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.hh"

namespace mcversi::sim {

/** Global simulation event queue. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Schedule @p cb at absolute tick @p when (>= now()). */
    void schedule(Tick when, Callback cb);

    /** Schedule @p cb @p delta ticks from now. */
    void
    scheduleIn(Tick delta, Callback cb)
    {
        schedule(now_ + delta, std::move(cb));
    }

    /** Current simulated time. */
    Tick now() const { return now_; }

    bool empty() const { return queue_.empty(); }
    std::size_t pending() const { return queue_.size(); }

    /**
     * Run until no events remain.
     *
     * @param max_events safety valve against runaway simulations
     *        (deadlock/livelock in a protocol under test); exceeded
     *        throws ProtocolError-like std::runtime_error
     * @return number of events processed
     */
    std::uint64_t runUntilQuiescent(std::uint64_t max_events = 5000000);

    /** Total events processed over the queue's lifetime. */
    std::uint64_t processed() const { return processed_; }

    /** Drop all pending events and reset time to 0. */
    void reset();

    /** Drop all pending events, keeping the current time. */
    void clearPending();

  private:
    struct Item
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;
    };
    struct Later
    {
        bool
        operator()(const Item &a, const Item &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Item, std::vector<Item>, Later> queue_;
    Tick now_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t processed_ = 0;
};

} // namespace mcversi::sim

#endif // MCVERSI_SIM_EVENTQ_HH
