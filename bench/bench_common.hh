/**
 * @file
 * Shared infrastructure for the paper-reproduction benches, built on
 * the Campaign API: a bench declares its cell matrix as CampaignSpecs,
 * runs them all on one parallel CampaignRunner, and aggregates cells
 * from the deterministic summary.
 *
 * Absolute numbers from the paper (hours on the authors' Xeon host)
 * are meaningless here; budgets are expressed in test-runs and scaled
 * down so every bench finishes in minutes. Environment knobs:
 *   MCVERSI_BENCH_SCALE    scale all budgets (e.g. 4 for longer runs)
 *   MCVERSI_BENCH_SAMPLES  per-cell sample count (paper: 10)
 *   MCVERSI_BENCH_THREADS  campaign worker threads (default: hardware)
 *   MCVERSI_BENCH_JSON     write the campaign summary JSON to a file
 *   MCVERSI_BENCH_CSV      write the campaign summary CSV to a file
 */

#ifndef MCVERSI_BENCH_BENCH_COMMON_HH
#define MCVERSI_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "mcversi.hh"

namespace mcvbench {

using namespace mcversi;

/**
 * Parse a numeric environment variable once: unset, unparsable, or
 * <= @p min_exclusive values fall back to @p dflt.
 */
inline double
envNumber(const char *name, double dflt, double min_exclusive = 0.0)
{
    const char *s = std::getenv(name);
    if (s == nullptr)
        return dflt;
    char *end = nullptr;
    const double v = std::strtod(s, &end);
    if (end == s || v <= min_exclusive)
        return dflt;
    return v;
}

inline double
benchScale()
{
    return envNumber("MCVERSI_BENCH_SCALE", 1.0);
}

inline int
benchSamples(int dflt)
{
    // Fractional values would truncate to 0 samples; fall back instead.
    const int samples = static_cast<int>(
        envNumber("MCVERSI_BENCH_SAMPLES", dflt));
    return samples > 0 ? samples : dflt;
}

/** Campaign worker threads; 0 lets the runner pick the hardware count. */
inline int
benchThreads()
{
    return static_cast<int>(
        envNumber("MCVERSI_BENCH_THREADS", 0.0));
}

/**
 * Process peak resident set (VmHWM) in KiB from /proc/self/status, or 0
 * where unavailable (non-Linux). Monotone over the process lifetime:
 * sample it after each phase and compare deltas/ratios, not absolutes.
 */
inline std::size_t
peakRssKb()
{
    std::ifstream status("/proc/self/status");
    std::string line;
    while (std::getline(status, line)) {
        if (line.rfind("VmHWM:", 0) == 0)
            return static_cast<std::size_t>(
                std::strtoull(line.c_str() + 6, nullptr, 10));
    }
    return 0;
}

/** Generator configurations of §5.2 (Table 4 columns). */
enum class GenConfig {
    All1K,
    All8K,
    StdXo1K,
    StdXo8K,
    Rand1K,
    Rand8K,
    DiyLitmus,
};

inline const char *
genConfigName(GenConfig c)
{
    switch (c) {
      case GenConfig::All1K: return "McVerSi-ALL (1KB)";
      case GenConfig::All8K: return "McVerSi-ALL (8KB)";
      case GenConfig::StdXo1K: return "McVerSi-Std.XO (1KB)";
      case GenConfig::StdXo8K: return "McVerSi-Std.XO (8KB)";
      case GenConfig::Rand1K: return "McVerSi-RAND (1KB)";
      case GenConfig::Rand8K: return "McVerSi-RAND (8KB)";
      case GenConfig::DiyLitmus: return "diy-litmus";
    }
    return "?";
}

inline bool
isLitmus(GenConfig c)
{
    return c == GenConfig::DiyLitmus;
}

inline const char *
generatorOf(GenConfig c)
{
    switch (c) {
      case GenConfig::All1K:
      case GenConfig::All8K:
        return "McVerSi-ALL";
      case GenConfig::StdXo1K:
      case GenConfig::StdXo8K:
        return "McVerSi-Std.XO";
      case GenConfig::Rand1K:
      case GenConfig::Rand8K:
        return "McVerSi-RAND";
      case GenConfig::DiyLitmus:
        return "diy-litmus";
    }
    return "?";
}

inline Addr
memSizeOf(GenConfig c)
{
    switch (c) {
      case GenConfig::All1K:
      case GenConfig::StdXo1K:
      case GenConfig::Rand1K:
        return 1024;
      default:
        return 8 * 1024;
    }
}

/** Per-sample seed, stable across benches for comparability. */
inline std::uint64_t
cellSeed(int sample, sim::BugId bug, GenConfig config)
{
    return 0xb5297a4dull * static_cast<std::uint64_t>(sample + 1) +
           static_cast<std::uint64_t>(bug) * 97 +
           static_cast<std::uint64_t>(config);
}

/**
 * Scaled-down Table 3 campaign spec for one bench cell sample. Litmus
 * runs are much cheaper per test-run, so that config gets 4x the
 * test-run budget (mirroring the original bench setup).
 */
inline campaign::CampaignSpec
benchSpec(GenConfig config, const std::string &bug, std::uint64_t seed,
          std::uint64_t max_runs, double max_seconds)
{
    campaign::CampaignSpec spec;
    spec.bug = bug;
    spec.generator = generatorOf(config);
    spec.seed = seed;
    spec.testSize = 192; // paper: 1k ops; scaled for wall-clock budgets
    spec.iterations = 4; // paper: 10
    spec.memSize = memSizeOf(config);
    spec.population = 40;
    spec.maxTestRuns = isLitmus(config) ? max_runs * 4 : max_runs;
    spec.maxWallSeconds = max_seconds;
    spec.litmusIterations = 12;
    return spec;
}

struct CellResult
{
    int found = 0;
    int samples = 0;
    double meanRunsToBug = 0.0;
    double meanSecondsToBug = 0.0;
    std::vector<std::uint64_t> runsToBug;
};

/** Aggregate one cell from its sample results (§5.1 methodology). */
inline CellResult
aggregateCell(const std::vector<campaign::CampaignResult> &results,
              std::size_t begin, std::size_t count)
{
    CellResult cell;
    cell.samples = static_cast<int>(count);
    double total_runs = 0.0;
    double total_secs = 0.0;
    for (std::size_t i = begin; i < begin + count; ++i) {
        const campaign::CampaignResult &r = results[i];
        if (!r.ok() || !r.harness.bugFound)
            continue;
        ++cell.found;
        total_runs += static_cast<double>(r.harness.testRunsToBug);
        total_secs += r.harness.wallSecondsToBug;
        cell.runsToBug.push_back(r.harness.testRunsToBug);
    }
    if (cell.found > 0) {
        cell.meanRunsToBug = total_runs / cell.found;
        cell.meanSecondsToBug = total_secs / cell.found;
    }
    return cell;
}

/**
 * Run a bench matrix on the shared parallel runner, with a progress
 * tick per completed campaign on stderr.
 */
inline campaign::CampaignSummary
runBenchCampaigns(const std::vector<campaign::CampaignSpec> &specs)
{
    campaign::CampaignRunner::Options options;
    options.threads = benchThreads();
    options.onResult = [](const campaign::CampaignResult &r,
                          std::size_t done, std::size_t total) {
        if (!r.ok()) {
            std::fprintf(stderr, "\ncampaign error: %s\n",
                         r.error.c_str());
        }
        std::fprintf(stderr, "\r%zu/%zu campaigns done", done, total);
        if (done == total)
            std::fprintf(stderr, "\n");
    };
    const campaign::CampaignSummary summary =
        campaign::CampaignRunner(options).run(specs);
    if (const char *path = std::getenv("MCVERSI_BENCH_JSON")) {
        std::ofstream out(path, std::ios::binary);
        out << summary.toJson();
    }
    if (const char *path = std::getenv("MCVERSI_BENCH_CSV")) {
        std::ofstream out(path, std::ios::binary);
        out << summary.toCsv();
    }
    return summary;
}

} // namespace mcvbench

#endif // MCVERSI_BENCH_BENCH_COMMON_HH
