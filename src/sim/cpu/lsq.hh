/**
 * @file
 * Store queue (the SQ half of the LSQ).
 *
 * Stores enter the queue in program order at dispatch (so loads can
 * forward from them as soon as their data is known) and become eligible
 * to drain once retired -- a post-commit store buffer, which is exactly
 * the structure that gives rise to TSO. Draining is FIFO; the
 * SQ+no-FIFO bug (§5.3) instead picks a random retired entry, breaking
 * write-to-write order.
 */

#ifndef MCVERSI_SIM_CPU_LSQ_HH
#define MCVERSI_SIM_CPU_LSQ_HH

#include <cstddef>
#include <deque>
#include <optional>

#include "common/rng.hh"
#include "common/types.hh"

namespace mcversi::sim {

/** Post-commit store buffer with forwarding. */
class StoreQueue
{
  public:
    struct Entry
    {
        std::size_t slot; ///< program slot of the store
        Addr addr;
        WriteVal value;
        bool retired = false;
        bool inFlight = false;
    };

    explicit StoreQueue(std::size_t capacity) : capacity_(capacity) {}

    bool full() const { return entries_.size() >= capacity_; }
    bool empty() const { return entries_.empty(); }
    std::size_t size() const { return entries_.size(); }

    /** Dispatch a store (program order). */
    void
    push(std::size_t slot, Addr addr, WriteVal value)
    {
        entries_.push_back(Entry{slot, addr, value, false, false});
    }

    /** Mark the store of @p slot as retired (drain-eligible). */
    void
    retire(std::size_t slot)
    {
        for (Entry &e : entries_) {
            if (e.slot == slot) {
                e.retired = true;
                return;
            }
        }
    }

    /**
     * Youngest entry older than @p before_slot matching @p addr, for
     * store-to-load forwarding. Returns the forwarded value.
     */
    std::optional<WriteVal>
    forward(Addr addr, std::size_t before_slot) const
    {
        for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
            if (it->slot < before_slot && it->addr == addr)
                return it->value;
        }
        return std::nullopt;
    }

    /**
     * Pick the next entry to drain, honouring FIFO order unless
     * @p fifo is false (the SQ+no-FIFO bug), in which case any retired
     * entry may drain. Returns nullptr if nothing is eligible.
     */
    Entry *
    drainCandidate(bool fifo, Rng &rng)
    {
        if (entries_.empty())
            return nullptr;
        if (fifo) {
            Entry &head = entries_.front();
            return (head.retired && !head.inFlight) ? &head : nullptr;
        }
        // Out-of-order drain: uniform choice among retired entries.
        std::size_t eligible = 0;
        for (const Entry &e : entries_)
            if (e.retired && !e.inFlight)
                ++eligible;
        if (eligible == 0)
            return nullptr;
        std::size_t pick = static_cast<std::size_t>(rng.below(eligible));
        for (Entry &e : entries_) {
            if (e.retired && !e.inFlight) {
                if (pick == 0)
                    return &e;
                --pick;
            }
        }
        return nullptr;
    }

    /** Remove the (drained) entry for @p slot. */
    void
    pop(std::size_t slot)
    {
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
            if (it->slot == slot) {
                entries_.erase(it);
                return;
            }
        }
    }

    /** True once every entry has retired and drained. */
    bool
    drained() const
    {
        return entries_.empty();
    }

    /**
     * True if any retired (drain-eligible) entry remains. An RMW at the
     * head of the ROB must wait for these (x86 lock semantics), but NOT
     * for younger, unretired stores dispatched behind it.
     */
    bool
    hasRetiredEntries() const
    {
        for (const Entry &e : entries_)
            if (e.retired)
                return true;
        return false;
    }

    void clear() { entries_.clear(); }

    const std::deque<Entry> &entries() const { return entries_; }

  private:
    std::size_t capacity_;
    std::deque<Entry> entries_;
};

} // namespace mcversi::sim

#endif // MCVERSI_SIM_CPU_LSQ_HH
