#include "sim/tsocc/tsocc_l2.hh"

#include <cassert>
#include <sstream>

namespace mcversi::sim {

namespace {

const std::vector<std::string> kStateNames = {
    "NP", "U", "O", "IU_S", "IU_X", "B_O", "O_R", "O_I",
};

const std::vector<std::string> kEventNames = {
    "GETS",       "GETX",   "PutxOwner",  "PutxNonOwner",    "Unblock",
    "RecallData", "RecallAckNoData", "MemData", "Replacement",
};

} // namespace

TsoccL2::TsoccL2(int tile, const SystemConfig &cfg, EventQueue &eq,
                 Network &net, TransitionCoverage &cov, Rng rng)
    : tile_(tile), cfg_(cfg), eq_(eq), net_(net),
      table_(cov, "TSOCC-L2", kStateNames, kEventNames), rng_(rng),
      array_(cfg.l2SetsPerTile, cfg.l2Ways)
{
    buildTable();
}

void
TsoccL2::buildTable()
{
    auto def = [this](State s, Event e) { table_.define(s, e); };

    def(StNP, EvGETS);
    def(StNP, EvGETX);
    def(StNP, EvPutxNonOwner);

    def(StU, EvGETS);
    def(StU, EvGETX);
    def(StU, EvPutxNonOwner);
    def(StU, EvReplacement);

    def(StO, EvGETS);
    def(StO, EvGETX);
    def(StO, EvPutxOwner);
    def(StO, EvPutxNonOwner);
    def(StO, EvReplacement);

    def(StIU_S, EvMemData);
    def(StIU_X, EvMemData);
    def(StB_O, EvUnblock);

    def(StO_R, EvRecallData);
    def(StO_R, EvRecallAckNoData);
    def(StO_R, EvPutxOwner);

    def(StO_I, EvRecallData);
    def(StO_I, EvRecallAckNoData);
    def(StO_I, EvPutxOwner);
    // Stale recall ack from a PUTX-completed recall (absorbed).
    def(StNP, EvRecallAckNoData);
}

void
TsoccL2::send(MsgType t, Addr line, NodeId dst, Vnet vnet,
              const std::function<void(Msg &)> &fill)
{
    net_.send(&buildMsg(t, line, dst, vnet, fill));
}

Msg &
TsoccL2::buildMsg(MsgType t, Addr line, NodeId dst, Vnet vnet,
                  const std::function<void(Msg &)> &fill)
{
    Msg &msg = net_.stage();
    msg.type = t;
    msg.line = line;
    msg.src = l2Node(tile_);
    msg.dst = dst;
    msg.vnet = vnet;
    if (fill)
        fill(msg);
    return msg;
}

void
TsoccL2::sendAfter(Tick delta, MsgType t, Addr line, NodeId dst,
                   Vnet vnet, const std::function<void(Msg &)> &fill)
{
    // Build now (matches the old by-value thunk captures); latency,
    // FIFO order and jitter are drawn at injection time.
    eq_.scheduleNetSend(eq_.now() + delta, &net_,
                        &buildMsg(t, line, dst, vnet, fill));
}

void
TsoccL2::memWrite(Addr line, const LineData &data)
{
    send(MsgType::MemWrite, line, kMemNode, Vnet::Mem, [&](Msg &m) {
        m.data = data;
        m.hasData = true;
    });
}

TsoccL2::State
TsoccL2::lineState(Addr line)
{
    if (evict_.count(line))
        return StO_I;
    if (CacheEntry *e = array_.find(line))
        return static_cast<State>(e->state);
    return StNP;
}

bool
TsoccL2::serving(Addr line)
{
    const State st = lineState(line);
    return st == StNP || st == StU || st == StO;
}

void
TsoccL2::drain(Addr line)
{
    for (;;) {
        auto it = waiting_.find(line);
        if (it == waiting_.end())
            return;
        if (it->second.empty()) {
            waiting_.erase(it);
            return;
        }
        if (!serving(line))
            return;
        Msg msg = it->second.front();
        it->second.pop_front();
        serveRequest(msg);
    }
}

void
TsoccL2::grant(CacheEntry &entry, Pid c, bool exclusive)
{
    const Addr line = entry.line;
    sendAfter(cfg_.l2AccessLatency, MsgType::Data, line, coreNode(c),
              Vnet::Response, [&](Msg &m) {
                  m.data = entry.data;
                  m.hasData = true;
                  m.exclusive = exclusive;
                  m.meta = entry.meta;
              });
}

bool
TsoccL2::startFetch(Addr line, Pid c, bool exclusive, const Msg &msg)
{
    CacheEntry *entry = array_.allocate(line);
    if (!entry) {
        if (!evictVictim(line)) {
            eq_.scheduleDeliver(eq_.now() + 16, this,
                                eq_.msgPool().acquireCopy(msg));
            return false;
        }
        entry = array_.allocate(line);
        assert(entry);
    }
    entry->state = exclusive ? StIU_X : StIU_S;
    entry->pendingRequester = c;
    array_.touch(*entry, eq_.now());
    send(MsgType::MemRead, line, kMemNode, Vnet::Mem);
    return true;
}

bool
TsoccL2::evictVictim(Addr line)
{
    CacheEntry *victim = array_.victim(line, [](const CacheEntry &e) {
        return e.state == StU || e.state == StO;
    });
    if (!victim)
        return false;
    doReplacement(*victim);
    return true;
}

void
TsoccL2::doReplacement(CacheEntry &entry)
{
    const Addr line = entry.line;
    const auto st = static_cast<State>(entry.state);
    table_.record(st, EvReplacement);
    if (st == StU) {
        // Persist the timestamp metadata in the directory store so a
        // later memory fetch still carries it.
        if (entry.meta.valid())
            metaStore_[line] = entry.meta;
        if (entry.dirty)
            memWrite(line, entry.data);
        array_.free(entry);
        return;
    }
    assert(st == StO);
    EvictBuf buf;
    buf.owner = entry.owner;
    send(MsgType::Recall, line, coreNode(entry.owner), Vnet::Fwd);
    evict_[line] = buf;
    array_.free(entry);
}

void
TsoccL2::finishRecall(CacheEntry *entry, Addr line, const Msg &msg)
{
    // entry is in O_R: install the owner's data and complete the
    // pending request.
    entry->data = msg.data;
    entry->meta = msg.meta;
    entry->dirty = true;
    entry->owner = kInitPid;
    const Pid c = entry->pendingRequester;
    // dataReceived doubles as want-exclusive for O_R (see serveRequest).
    const bool want_exclusive = entry->dataReceived;
    entry->pendingRequester = kInitPid;
    entry->dataReceived = false;
    if (want_exclusive) {
        entry->state = StB_O;
        entry->pendingRequester = c;
        grant(*entry, c, true);
    } else {
        entry->state = StU;
        grant(*entry, c, false);
        drain(line);
    }
}

void
TsoccL2::serveRequest(const Msg &msg)
{
    const Addr line = msg.line;
    const Pid c = msg.requester;

    // A PUTX from a recalled owner completes O_R / O_I transactions and
    // must not queue behind them.
    if (msg.type == MsgType::PUTX) {
        if (auto it = evict_.find(line);
            it != evict_.end() && it->second.owner == c) {
            table_.record(StO_I, EvPutxOwner);
            send(MsgType::WbAck, line, coreNode(c), Vnet::Fwd);
            if (!it->second.done)
                ++staleRecallAcks_[line];
            if (msg.meta.valid())
                metaStore_[line] = msg.meta;
            memWrite(line, msg.data);
            evict_.erase(it);
            drain(line);
            return;
        }
        if (CacheEntry *entry = array_.find(line);
            entry && entry->state == StO_R && entry->owner == c) {
            table_.record(StO_R, EvPutxOwner);
            send(MsgType::WbAck, line, coreNode(c), Vnet::Fwd);
            if (!entry->gotOwnerData)
                ++staleRecallAcks_[line];
            finishRecall(entry, line, msg);
            return;
        }
    }

    if (!serving(line)) {
        waiting_[line].push_back(msg);
        return;
    }

    CacheEntry *entry = array_.find(line);
    const State st = entry ? static_cast<State>(entry->state) : StNP;

    switch (msg.type) {
      case MsgType::GETS:
        table_.record(st, EvGETS);
        if (!entry) {
            startFetch(line, c, false, msg);
            return;
        }
        array_.touch(*entry, eq_.now());
        if (st == StO) {
            send(MsgType::Recall, line, coreNode(entry->owner),
                 Vnet::Fwd);
            entry->state = StO_R;
            entry->pendingRequester = c;
            entry->dataReceived = false; // want shared
            return;
        }
        grant(*entry, c, false); // U: non-blocking shared grant.
        return;

      case MsgType::GETX:
        table_.record(st, EvGETX);
        if (!entry) {
            startFetch(line, c, true, msg);
            return;
        }
        array_.touch(*entry, eq_.now());
        if (st == StO) {
            send(MsgType::Recall, line, coreNode(entry->owner),
                 Vnet::Fwd);
            entry->state = StO_R;
            entry->pendingRequester = c;
            entry->dataReceived = true; // want exclusive
            return;
        }
        entry->state = StB_O;
        entry->pendingRequester = c;
        grant(*entry, c, true);
        return;

      case MsgType::PUTX: {
        const bool is_owner =
            entry && st == StO && entry->owner == c;
        table_.record(st, is_owner ? EvPutxOwner : EvPutxNonOwner);
        if (is_owner) {
            entry->data = msg.data;
            entry->meta = msg.meta;
            entry->dirty = true;
            entry->owner = kInitPid;
            entry->state = StU;
            send(MsgType::WbAck, line, coreNode(c), Vnet::Fwd);
            drain(line);
        } else {
            send(MsgType::WbNack, line, coreNode(c), Vnet::Fwd);
        }
        return;
      }

      default:
        throw ProtocolError("TSOCC-L2", kStateNames[st],
                            msgTypeName(msg.type));
    }
}

void
TsoccL2::handleMsg(const Msg &msg)
{
    const Addr line = msg.line;

    switch (msg.type) {
      case MsgType::GETS:
      case MsgType::GETX:
      case MsgType::PUTX:
        serveRequest(msg);
        return;

      case MsgType::MemData: {
        CacheEntry *entry = array_.find(line);
        const State st = entry ? static_cast<State>(entry->state) : StNP;
        table_.record(st, EvMemData); // Only IU_S / IU_X defined.
        entry->data = msg.data;
        entry->dirty = false;
        // Restore directory metadata; absent means never written.
        if (auto mit = metaStore_.find(line); mit != metaStore_.end())
            entry->meta = mit->second;
        else
            entry->meta = TsMeta{};
        const Pid c = entry->pendingRequester;
        if (st == StIU_S) {
            entry->state = StU;
            entry->pendingRequester = kInitPid;
            grant(*entry, c, false);
            drain(line);
        } else {
            entry->state = StB_O;
            grant(*entry, c, true);
        }
        return;
      }

      case MsgType::Unblock: {
        CacheEntry *entry = array_.find(line);
        const State st = entry ? static_cast<State>(entry->state) : StNP;
        table_.record(st, EvUnblock); // Only B_O defined.
        entry->state = StO;
        entry->owner = entry->pendingRequester;
        entry->pendingRequester = kInitPid;
        drain(line);
        return;
      }

      case MsgType::RecallData:
      case MsgType::RecallAckNoData: {
        const bool has_data = (msg.type == MsgType::RecallData);
        if (!has_data && !evict_.count(line)) {
            if (auto sit = staleRecallAcks_.find(line);
                sit != staleRecallAcks_.end()) {
                table_.record(StNP, EvRecallAckNoData);
                if (--sit->second == 0)
                    staleRecallAcks_.erase(sit);
                return;
            }
        }
        if (auto it = evict_.find(line); it != evict_.end()) {
            table_.record(StO_I, has_data ? EvRecallData
                                          : EvRecallAckNoData);
            if (has_data) {
                if (msg.meta.valid())
                    metaStore_[line] = msg.meta;
                memWrite(line, msg.data);
                evict_.erase(it);
                drain(line);
            } else {
                it->second.done = true; // Owner's PUTX will complete it.
            }
            return;
        }
        CacheEntry *entry = array_.find(line);
        const State st = entry ? static_cast<State>(entry->state) : StNP;
        table_.record(st, has_data ? EvRecallData : EvRecallAckNoData);
        if (has_data) {
            finishRecall(entry, line, msg);
        } else {
            // O_R: the owner is writing back; wait for its PUTX.
            entry->gotOwnerData = true;
        }
        return;
      }

      default:
        throw ProtocolError("TSOCC-L2", kStateNames[lineState(line)],
                            msgTypeName(msg.type));
    }
}

std::string
TsoccL2::debugSummary()
{
    int hist[NumStates] = {};
    std::vector<Addr> stuck;
    array_.forEachValid([&](CacheEntry &e) {
        ++hist[e.state];
        if (e.state != StU && e.state != StO)
            stuck.push_back(e.line);
    });
    std::ostringstream os;
    os << "L2[" << tile_ << "]";
    for (int i = 0; i < NumStates; ++i)
        if (hist[i])
            os << " " << kStateNames[static_cast<std::size_t>(i)] << "="
               << hist[i];
    os << " evict=" << evict_.size() << " waitq=" << waiting_.size();
    for (Addr a : stuck)
        os << " stuck:0x" << std::hex << a << std::dec << "/"
           << kStateNames[array_.find(a)->state];
    return os.str();
}

void
TsoccL2::resetAll()
{
    array_.reset();
    evict_.clear();
    waiting_.clear();
    staleRecallAcks_.clear();
    metaStore_.clear();
}

} // namespace mcversi::sim
