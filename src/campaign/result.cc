#include "campaign/result.hh"

#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

namespace mcversi::campaign {

namespace {

/**
 * Mean checking cost per committed event, in microseconds. NaN (-> JSON
 * null / empty CSV field) when no events executed at all.
 */
double
checkUsPerEvent(const host::HarnessResult &h)
{
    // Guard the division explicitly: a zero-run campaign (exhausted
    // budget, interrupted before the first test) must render as
    // null/empty, not as whatever inf/NaN the FP environment produces.
    if (h.eventsExecuted == 0)
        return std::numeric_limits<double>::quiet_NaN();
    return h.checkSeconds / static_cast<double>(h.eventsExecuted) * 1e6;
}

/** Shortest deterministic decimal form for identical finite doubles. */
std::string
fmtDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    return buf;
}

/**
 * JSON rendering of a double: non-finite values (NaN from 0/0 fitness
 * means, inf from zero-wall-time rates) have no JSON literal, so they
 * serialize as null instead of the invalid bare nan/inf tokens
 * "%.10g" would print.
 */
std::string
jsonDouble(double v)
{
    return std::isfinite(v) ? fmtDouble(v) : "null";
}

/** CSV rendering of a double: non-finite values become empty fields. */
std::string
csvDouble(double v)
{
    return std::isfinite(v) ? fmtDouble(v) : std::string();
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
csvField(const std::string &s)
{
    if (s.find_first_of(",\"\n\r") == std::string::npos)
        return s;
    std::string out = "\"";
    for (const char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

void
appendSpecJson(std::ostringstream &out, const CampaignSpec &spec)
{
    out << "{\"bug\":\"" << jsonEscape(spec.bug) << "\""
        << ",\"generator\":\"" << jsonEscape(spec.generator) << "\""
        << ",\"seed\":" << spec.seed
        << ",\"protocol\":\"" << jsonEscape(spec.protocol) << "\""
        << ",\"model\":\"" << jsonEscape(spec.model) << "\""
        << ",\"test_size\":" << spec.testSize
        << ",\"iterations\":" << spec.iterations
        << ",\"mem_size\":" << spec.memSize
        << ",\"stride\":" << spec.stride
        << ",\"guest_threads\":" << spec.guestThreads
        << ",\"population\":" << spec.population
        << ",\"islands\":" << spec.islands
        << ",\"migration\":" << spec.migration
        << ",\"batch\":" << spec.batch
        << ",\"max_runs\":" << spec.maxTestRuns
        << ",\"max_seconds\":" << jsonDouble(spec.maxWallSeconds)
        << ",\"litmus_iterations\":" << spec.litmusIterations
        << ",\"record_ndt\":" << (spec.recordNdt ? "true" : "false")
        << ",\"check_cache\":" << spec.checkCache
        << ",\"check_mode\":\"" << jsonEscape(spec.checkMode) << "\""
        << ",\"witness_window\":" << spec.witnessWindow
        << "}";
}

} // namespace

std::size_t
CampaignSummary::bugsFound() const
{
    std::size_t n = 0;
    for (const CampaignResult &r : results)
        n += r.ok() && r.harness.bugFound ? 1 : 0;
    return n;
}

std::size_t
CampaignSummary::errors() const
{
    std::size_t n = 0;
    for (const CampaignResult &r : results)
        n += r.ok() ? 0 : 1;
    return n;
}

std::uint64_t
CampaignSummary::totalTestRuns() const
{
    std::uint64_t n = 0;
    for (const CampaignResult &r : results)
        n += r.harness.testRuns;
    return n;
}

double
CampaignSummary::totalWallSeconds() const
{
    double s = 0.0;
    for (const CampaignResult &r : results)
        s += r.harness.wallSeconds;
    return s;
}

std::string
CampaignSummary::toJson(bool include_timing) const
{
    std::ostringstream out;
    out << "{\"campaigns\":[";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const CampaignResult &r = results[i];
        if (i > 0)
            out << ",";
        out << "{\"spec\":";
        appendSpecJson(out, r.spec);
        out << ",\"bug_found\":" << (r.harness.bugFound ? "true" : "false")
            << ",\"test_runs\":" << r.harness.testRuns
            << ",\"test_runs_to_bug\":" << r.harness.testRunsToBug
            << ",\"sim_ticks\":" << r.harness.simTicks
            << ",\"events_executed\":" << r.harness.eventsExecuted
            << ",\"sim_events\":" << r.harness.simEvents
            << ",\"messages_sent\":" << r.harness.messagesSent
            << ",\"total_coverage\":" << jsonDouble(r.harness.totalCoverage)
            << ",\"protocol_coverage\":" << jsonDouble(r.protocolCoverage)
            << ",\"mean_fitness\":" << jsonDouble(r.harness.meanFitness)
            << ",\"distinct_interleavings\":"
            << r.harness.distinctInterleavings
            << ",\"check_cache_hits\":" << r.harness.checkCacheHits
            << ",\"check_cache_misses\":" << r.harness.checkCacheMisses
            << ",\"check_cache_hit_rate\":"
            << jsonDouble(r.harness.checkCacheHitRate())
            << ",\"events_until_detection\":"
            << r.harness.eventsUntilDetection
            << ",\"fitness_trajectory\":[";
        for (std::size_t t = 0; t < r.harness.fitnessTrajectory.size();
             ++t) {
            if (t > 0)
                out << ",";
            out << jsonDouble(r.harness.fitnessTrajectory[t]);
        }
        out << "]"
            << ",\"detail\":\"" << jsonEscape(r.harness.detail) << "\""
            << ",\"error\":\"" << jsonEscape(r.error) << "\"";
        if (include_timing) {
            out << ",\"wall_seconds\":" << jsonDouble(r.harness.wallSeconds)
                << ",\"wall_seconds_to_bug\":"
                << jsonDouble(r.harness.wallSecondsToBug)
                << ",\"check_seconds\":"
                << jsonDouble(r.harness.checkSeconds)
                << ",\"check_us_per_event\":"
                << jsonDouble(checkUsPerEvent(r.harness))
                << ",\"tests_per_sec\":"
                << jsonDouble(r.harness.testsPerSec());
        }
        out << "}";
    }
    out << "],\"summary\":{\"campaigns\":" << campaigns()
        << ",\"bugs_found\":" << bugsFound()
        << ",\"errors\":" << errors()
        << ",\"test_runs\":" << totalTestRuns();
    if (include_timing)
        out << ",\"wall_seconds\":" << jsonDouble(totalWallSeconds());
    out << "}}\n";
    return out.str();
}

std::string
CampaignSummary::toCsv(bool include_timing) const
{
    std::ostringstream out;
    out << "bug,generator,seed,protocol,model,test_size,iterations,"
           "mem_size,"
           "stride,guest_threads,population,islands,migration,batch,"
           "max_runs,max_seconds,litmus_iterations,record_ndt,"
           "check_cache,check_mode,witness_window,"
           "bug_found,test_runs,test_runs_to_bug,sim_ticks,"
           "events_executed,sim_events,messages_sent,total_coverage,"
           "protocol_coverage,mean_fitness,distinct_interleavings,"
           "check_cache_hits,check_cache_misses,check_cache_hit_rate,"
           "events_until_detection,"
           "error";
    if (include_timing) {
        out << ",wall_seconds,wall_seconds_to_bug,check_seconds,"
               "check_us_per_event,tests_per_sec";
    }
    out << "\n";
    for (const CampaignResult &r : results) {
        out << csvField(r.spec.bug) << ","
            << csvField(r.spec.generator) << ","
            << r.spec.seed << ","
            << r.spec.protocol << ","
            << r.spec.model << ","
            << r.spec.testSize << ","
            << r.spec.iterations << ","
            << r.spec.memSize << ","
            << r.spec.stride << ","
            << r.spec.guestThreads << ","
            << r.spec.population << ","
            << r.spec.islands << ","
            << r.spec.migration << ","
            << r.spec.batch << ","
            << r.spec.maxTestRuns << ","
            << csvDouble(r.spec.maxWallSeconds) << ","
            << r.spec.litmusIterations << ","
            << (r.spec.recordNdt ? 1 : 0) << ","
            << r.spec.checkCache << ","
            << csvField(r.spec.checkMode) << ","
            << r.spec.witnessWindow << ","
            << (r.harness.bugFound ? 1 : 0) << ","
            << r.harness.testRuns << ","
            << r.harness.testRunsToBug << ","
            << r.harness.simTicks << ","
            << r.harness.eventsExecuted << ","
            << r.harness.simEvents << ","
            << r.harness.messagesSent << ","
            << csvDouble(r.harness.totalCoverage) << ","
            << csvDouble(r.protocolCoverage) << ","
            << csvDouble(r.harness.meanFitness) << ","
            << r.harness.distinctInterleavings << ","
            << r.harness.checkCacheHits << ","
            << r.harness.checkCacheMisses << ","
            << csvDouble(r.harness.checkCacheHitRate()) << ","
            << r.harness.eventsUntilDetection << ","
            << csvField(r.error);
        if (include_timing) {
            out << "," << csvDouble(r.harness.wallSeconds)
                << "," << csvDouble(r.harness.wallSecondsToBug)
                << "," << csvDouble(r.harness.checkSeconds)
                << "," << csvDouble(checkUsPerEvent(r.harness))
                << "," << csvDouble(r.harness.testsPerSec());
        }
        out << "\n";
    }
    return out.str();
}

} // namespace mcversi::campaign
