/**
 * @file
 * Seed -> witness byte-identity golden.
 *
 * Runs fixed RandomSource campaigns on both protocols and canonically
 * serializes everything the simulation kernel determines: the final
 * execution witness (events, rf, co), the exact number of kernel
 * events processed, simulated ticks, and messages sent. The dump is
 * compared byte-for-byte against a checked-in golden.
 *
 * This is the proof obligation for DES-kernel refactors (typed event
 * records, time-wheel scheduling, pooled messages): any change to
 * event ordering, RNG draw order, or message delivery shows up as a
 * byte diff here. The golden was generated with the pre-time-wheel
 * binary-heap kernel and must stay byte-identical under any
 * performance-only rework of the scheduler.
 *
 * Regenerate (only after a deliberate behavioral change) with:
 *   MCVERSI_UPDATE_GOLDEN=1 ./mcversi_integration_test_witness_identity
 */

#include <gtest/gtest.h>

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "host/harness.hh"

using namespace mcversi;
using namespace mcversi::host;

namespace {

struct Scenario
{
    const char *name;
    sim::Protocol protocol;
    std::uint64_t systemSeed;
    std::uint64_t sourceSeed;
    std::uint64_t testRuns;
};

constexpr Scenario kScenarios[] = {
    {"mesi-a", sim::Protocol::Mesi, 101, 11, 4},
    {"mesi-b", sim::Protocol::Mesi, 202, 22, 4},
    {"tsocc-a", sim::Protocol::Tsocc, 303, 33, 4},
};

void
appendU64(std::string &out, const char *key, std::uint64_t v)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), " %s=%" PRIu64, key, v);
    out += buf;
}

/** Canonical text dump of one scenario's end state. */
std::string
dumpScenario(const Scenario &sc)
{
    VerificationHarness::Params params;
    params.system.protocol = sc.protocol;
    params.system.seed = sc.systemSeed;
    params.gen.testSize = 96;
    params.gen.iterations = 4;
    params.gen.memSize = 1024;
    params.workload.iterations = params.gen.iterations;

    RandomSource source(params.gen, sc.sourceSeed);
    VerificationHarness harness(params, source);

    Budget budget;
    budget.maxTestRuns = sc.testRuns;
    const HarnessResult result = harness.run(budget);

    std::string out;
    out += "scenario ";
    out += sc.name;
    out += "\n";
    out += "run";
    appendU64(out, "testRuns", result.testRuns);
    appendU64(out, "bugFound", result.bugFound ? 1 : 0);
    appendU64(out, "simTicks", result.simTicks);
    appendU64(out, "witnessEvents", result.eventsExecuted);
    appendU64(out, "kernelEvents",
              harness.system().eventQueue().processed());
    appendU64(out, "messagesSent",
              harness.system().network().messagesSent());
    out += "\n";

    // Final iteration's witness: events in recording order plus the
    // reads-from source and coherence predecessor of each event.
    const mc::ExecWitness &w = harness.system().witness();
    const auto n = static_cast<mc::EventId>(w.numEvents());
    char buf[160];
    std::snprintf(buf, sizeof(buf), "witness events=%d\n",
                  static_cast<int>(n));
    out += buf;
    for (mc::EventId e = 0; e < n; ++e) {
        const mc::Event &ev = w.event(e);
        std::snprintf(
            buf, sizeof(buf),
            "e %d pid=%d poi=%d sub=%u %c rmw=%d addr=%" PRIx64
            " val=%" PRIu64 " rf=%d co=%d\n",
            static_cast<int>(e), static_cast<int>(ev.iiid.pid),
            static_cast<int>(ev.iiid.poi),
            static_cast<unsigned>(ev.sub), ev.isRead() ? 'R' : 'W',
            ev.rmw ? 1 : 0, static_cast<std::uint64_t>(ev.addr),
            static_cast<std::uint64_t>(ev.value),
            static_cast<int>(ev.isRead() ? w.rfSource(e) : mc::kNoEvent),
            static_cast<int>(ev.isWrite() ? w.coPredecessor(e)
                                          : mc::kNoEvent));
        out += buf;
    }
    return out;
}

std::string
dumpAll()
{
    std::string out;
    for (const Scenario &sc : kScenarios)
        out += dumpScenario(sc);
    return out;
}

} // namespace

TEST(WitnessIdentity, KernelBehaviorMatchesGolden)
{
    const std::string dump = dumpAll();

    if (std::getenv("MCVERSI_UPDATE_GOLDEN") != nullptr) {
        std::ofstream outf(MCVERSI_WITNESS_GOLDEN_PATH, std::ios::binary);
        outf << dump;
        ASSERT_TRUE(outf.good())
            << "failed to write " << MCVERSI_WITNESS_GOLDEN_PATH;
        GTEST_SKIP() << "golden regenerated at "
                     << MCVERSI_WITNESS_GOLDEN_PATH;
    }

    std::ifstream in(MCVERSI_WITNESS_GOLDEN_PATH, std::ios::binary);
    std::ostringstream golden;
    golden << in.rdbuf();
    ASSERT_FALSE(golden.str().empty())
        << "missing golden file: " << MCVERSI_WITNESS_GOLDEN_PATH;

    EXPECT_EQ(dump, golden.str())
        << "simulated behavior diverged from the golden witness; a "
           "kernel/scheduling refactor must not change event order. If "
           "the change is deliberate, regenerate with "
           "MCVERSI_UPDATE_GOLDEN=1.";
}
