#include "memconsistency/graph.hh"

#include <algorithm>

namespace mcversi::mc {

std::optional<std::vector<CycleGraph::Node>>
CycleGraph::findCycle() const
{
    enum class Color : std::uint8_t { White, Grey, Black };
    std::vector<Color> color(adj_.size(), Color::White);

    // Iterative DFS with an explicit stack of (node, next edge index);
    // the stack spine is the current path, so a back edge to a Grey node
    // lets us cut the cycle straight out of it.
    struct Frame
    {
        Node node;
        std::size_t edge = 0;
    };

    for (std::size_t root = 0; root < adj_.size(); ++root) {
        if (color[root] != Color::White)
            continue;
        std::vector<Frame> stack;
        stack.push_back({static_cast<Node>(root)});
        color[root] = Color::Grey;
        while (!stack.empty()) {
            Frame &fr = stack.back();
            const auto &succs = adj_[static_cast<std::size_t>(fr.node)];
            if (fr.edge >= succs.size()) {
                color[static_cast<std::size_t>(fr.node)] = Color::Black;
                stack.pop_back();
                continue;
            }
            const Node nxt = succs[fr.edge++];
            switch (color[static_cast<std::size_t>(nxt)]) {
              case Color::Grey: {
                std::vector<Node> cycle;
                auto it = std::find_if(stack.begin(), stack.end(),
                                       [nxt](const Frame &f) {
                                           return f.node == nxt;
                                       });
                for (; it != stack.end(); ++it)
                    cycle.push_back(it->node);
                return cycle;
              }
              case Color::White:
                color[static_cast<std::size_t>(nxt)] = Color::Grey;
                stack.push_back({nxt});
                break;
              case Color::Black:
                break;
            }
        }
    }
    return std::nullopt;
}

} // namespace mcversi::mc
