/**
 * @file
 * Declarative consistency-model axiom profiles.
 *
 * Following the herding-cats decomposition, a hardware model is
 * determined by (a) which program-order pairs it preserves per
 * access-type pair, (b) what ordering its fence-ish operations provide
 * (here: the atomic RMW, the only fence the op set has), and (c)
 * whether internal read-from participates in global happens-before
 * (store atomicity). A ModelProfile states exactly those axioms as
 * data; one shared constraint engine (engine.hh) interprets any valid
 * profile, so adding a model means writing a profile, not a checker.
 */

#ifndef MCVERSI_MEMCONSISTENCY_MODELS_PROFILE_HH
#define MCVERSI_MEMCONSISTENCY_MODELS_PROFILE_HH

#include <cstdint>
#include <string>

namespace mcversi::mc {

/** Ordering semantics of atomic RMW instructions. */
enum class RmwSemantics : std::uint8_t {
    /**
     * Full fence around the pair (x86 lock prefix): everything
     * po-before is ordered before the read part, everything po-after
     * after the write part.
     */
    Full,
    /**
     * Release/acquire pair: the read part is an acquire (ordered
     * before everything po-later), the write part a release (ordered
     * after everything po-earlier). No W->R crossing edge.
     */
    AcquireRelease,
    /** No fence semantics beyond the profile's plain ppo. */
    None,
};

const char *rmwSemanticsName(RmwSemantics s);

/** Axiom profile of one memory consistency model. */
struct ModelProfile
{
    /** Display name, e.g. "TSO"; registry lookup is case-insensitive. */
    std::string name;

    // Preserved program order per (source, destination) access types.
    bool orderRR = false; ///< read  -> po-later read
    bool orderRW = false; ///< read  -> po-later write
    bool orderWR = false; ///< write -> po-later read
    bool orderWW = false; ///< write -> po-later write

    RmwSemantics rmwFence = RmwSemantics::Full;

    /** Internal rf participates in ghb (multi-copy store atomicity). */
    bool rfiGlobal = false;

    bool operator==(const ModelProfile &) const = default;

    /**
     * Check the profile is one the shared engine can interpret with
     * O(events) generator edges. Throws std::invalid_argument:
     *
     *  - orderRW requires orderRR (earlier reads reach a later write
     *    through the read chain),
     *  - orderWR requires orderRR or orderWW (one side must chain),
     *  - AcquireRelease describes fence-free ppo profiles only (with
     *    plain ppo present, use Full or None).
     */
    void validate() const;

    /**
     * Structural strictness: true if every execution this profile
     * permits is permitted by @p weaker too (ppo superset, store
     * atomicity at least as strong, RMW fencing at least as strong;
     * a profile preserving all of po subsumes any fence semantics).
     */
    bool atLeastAsStrongAs(const ModelProfile &weaker) const;
};

} // namespace mcversi::mc

#endif // MCVERSI_MEMCONSISTENCY_MODELS_PROFILE_HH
