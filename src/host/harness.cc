#include "host/harness.hh"

#include <chrono>

namespace mcversi::host {

TestMemLayout
layoutFor(const gp::GenParams &gen)
{
    return TestMemLayout(gen.memSize, gen.stride);
}

VerificationHarness::VerificationHarness(Params params,
                                         TestSource &source)
    : params_(params), source_(source), fitness_(params.fitness)
{
    system_ = std::make_unique<sim::System>(params_.system);
    checker_ = std::make_unique<mc::Checker>(mc::makeModel(params_.model));
    if (params_.checkCacheEntries > 0) {
        checker_->enableVerdictCache(
            {.capacity = params_.checkCacheEntries});
    }
    workload_ = std::make_unique<Workload>(*system_, *checker_,
                                           layoutFor(params_.gen),
                                           params_.workload);
}

RunResult
VerificationHarness::runOne(const gp::Test &test,
                            const ConditionFn &condition)
{
    return workload_->runTest(test, condition);
}

HarnessResult
VerificationHarness::run(const Budget &budget)
{
    const auto t0 = std::chrono::steady_clock::now();
    auto elapsed = [&t0]() {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
            .count();
    };

    HarnessResult result;
    for (;;) {
        if (budget.isInterrupted())
            break;
        if (budget.maxTestRuns > 0 && result.testRuns >= budget.maxTestRuns)
            break;
        if (budget.maxWallSeconds > 0.0 &&
            elapsed() >= budget.maxWallSeconds) {
            break;
        }

        gp::Test test = source_.next();
        RunResult run = workload_->runTest(test);
        ++result.testRuns;
        result.checkSeconds += run.checkSeconds;
        result.simTicks += run.simTicks;
        result.eventsExecuted += run.eventsExecuted;
        result.simEvents += run.simEvents;
        result.messagesSent += run.messagesSent;
        if (params_.recordNdt)
            result.ndtHistory.push_back(run.nd.ndt);

        RunFeedback feedback;
        feedback.coverageFitness =
            fitness_.evaluate(run.preRunCounts, run.coveredTransitions,
                              run.newInterleavings);
        feedback.nd = run.nd;
        source_.report(feedback);

        if (run.bugDetected()) {
            result.bugFound = true;
            result.detail = run.describe();
            result.testRunsToBug = result.testRuns;
            result.eventsUntilDetection = run.eventsUntilDetection;
            result.wallSecondsToBug = elapsed();
            break;
        }
    }
    result.wallSeconds = elapsed();
    result.totalCoverage = system_->coverage().totalCoverage();
    result.meanFitness = source_.meanFitness();
    if (const mc::VerdictCache *cache = checker_->verdictCache()) {
        result.checkCacheHits = cache->stats().hits;
        result.checkCacheMisses = cache->stats().misses;
        result.distinctInterleavings = cache->stats().distinct;
    }
    return result;
}

} // namespace mcversi::host
