/** @file Random test generation: constraints and bias properties. */

#include <map>

#include <gtest/gtest.h>

#include "gp/randgen.hh"

namespace gp = mcversi::gp;
using namespace mcversi::gp;
using mcversi::Addr;
using mcversi::Rng;

TEST(RandGen, AddressesAreStrideAlignedAndInRange)
{
    GenParams p;
    p.memSize = 1024;
    p.stride = 16;
    RandomTestGen gen(p);
    Rng rng(1);
    for (int i = 0; i < 2000; ++i) {
        const Addr a = gen.randomAddr(rng);
        EXPECT_LT(a, p.memSize);
        EXPECT_EQ(a % p.stride, 0u);
    }
}

TEST(RandGen, TestHasConfiguredSize)
{
    GenParams p;
    p.testSize = 777;
    RandomTestGen gen(p);
    Rng rng(2);
    gp::Test t = gen.randomTest(rng);
    EXPECT_EQ(t.size(), 777u);
}

TEST(RandGen, PidsWithinThreadCount)
{
    GenParams p;
    p.numThreads = 4;
    p.testSize = 500;
    RandomTestGen gen(p);
    Rng rng(3);
    gp::Test t = gen.randomTest(rng);
    for (const Node &n : t.nodes()) {
        EXPECT_GE(n.pid, 0);
        EXPECT_LT(n.pid, 4);
    }
}

TEST(RandGen, OperationBiasesRoughlyRespected)
{
    // Table 3 biases: Read 50%, Write 42%, rest 8%.
    GenParams p;
    p.testSize = 20000;
    RandomTestGen gen(p);
    Rng rng(4);
    gp::Test t = gen.randomTest(rng);
    std::map<OpKind, int> hist;
    for (const Node &n : t.nodes())
        ++hist[n.op.kind];
    const double total = static_cast<double>(t.size());
    EXPECT_NEAR(hist[OpKind::Read] / total, 0.50, 0.03);
    EXPECT_NEAR(hist[OpKind::Write] / total, 0.42, 0.03);
    EXPECT_NEAR(hist[OpKind::ReadAddrDp] / total, 0.05, 0.02);
    EXPECT_GT(hist[OpKind::ReadModifyWrite], 0);
    EXPECT_GT(hist[OpKind::CacheFlush], 0);
    EXPECT_GT(hist[OpKind::Delay], 0);
}

TEST(RandGen, ConstrainedNodeUsesGivenAddrs)
{
    GenParams p;
    p.memSize = 8192;
    RandomTestGen gen(p);
    Rng rng(5);
    mcversi::AddrSet fit{0x40, 0x80, 0xc0};
    int mem_ops = 0;
    for (int i = 0; i < 500; ++i) {
        Node n = gen.randomNodeConstrained(rng, fit);
        if (n.op.isMem()) {
            ++mem_ops;
            EXPECT_TRUE(fit.count(n.op.addr))
                << "addr 0x" << std::hex << n.op.addr;
        }
    }
    EXPECT_GT(mem_ops, 400);
}

TEST(RandGen, ConstrainedNodeFallsBackWhenEmpty)
{
    GenParams p;
    RandomTestGen gen(p);
    Rng rng(6);
    mcversi::AddrSet empty;
    Node n = gen.randomNodeConstrained(rng, empty);
    if (n.op.isMem())
        EXPECT_LT(n.op.addr, p.memSize);
}

TEST(RandGen, DeterministicGivenSeed)
{
    GenParams p;
    p.testSize = 100;
    RandomTestGen gen(p);
    Rng rng1(42);
    Rng rng2(42);
    EXPECT_EQ(gen.randomTest(rng1).fingerprint(),
              gen.randomTest(rng2).fingerprint());
}

TEST(RandGen, DifferentSeedsDiffer)
{
    GenParams p;
    p.testSize = 100;
    RandomTestGen gen(p);
    Rng rng1(42);
    Rng rng2(43);
    EXPECT_NE(gen.randomTest(rng1).fingerprint(),
              gen.randomTest(rng2).fingerprint());
}
