/**
 * @file
 * Main memory model (Table 2: 512MB, 120-230 cycle latency).
 *
 * Functionally accurate: lines hold real word values, so a protocol bug
 * that drops a writeback leaves memory observably stale. Sparse storage
 * keyed by line address.
 */

#ifndef MCVERSI_SIM_MEMORY_HH
#define MCVERSI_SIM_MEMORY_HH

#include <unordered_map>

#include "common/rng.hh"
#include "sim/eventq.hh"
#include "sim/message.hh"

namespace mcversi::sim {

class Network;

/** Sparse functional main memory with a message interface. */
class MainMemory : public MsgHandler
{
  public:
    struct Params
    {
        Tick minLatency = 120;
        Tick maxLatency = 230;
    };

    MainMemory(EventQueue &eq, Network &net, Rng rng, Params params)
        : eq_(eq), net_(net), rng_(rng), params_(params)
    {
    }

    MainMemory(EventQueue &eq, Network &net, Rng rng)
        : MainMemory(eq, net, rng, Params{})
    {
    }

    void handleMsg(const Msg &msg) override;

    /** Direct functional access (host-side reset / inspection). */
    const LineData &line(Addr line_addr);
    void setWord(Addr addr, WriteVal value);
    WriteVal word(Addr addr);

    std::uint64_t reads() const { return reads_; }
    std::uint64_t writes() const { return writes_; }

  private:
    EventQueue &eq_;
    Network &net_;
    Rng rng_;
    Params params_;
    std::unordered_map<Addr, LineData> lines_;
    std::uint64_t reads_ = 0;
    std::uint64_t writes_ = 0;
};

} // namespace mcversi::sim

#endif // MCVERSI_SIM_MEMORY_HH
