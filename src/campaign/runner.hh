/**
 * @file
 * Parallel multi-campaign runner.
 *
 * Executes a vector of CampaignSpecs on a pool of worker threads. Each
 * worker owns an independent System + Checker + test source built from
 * its spec (per-spec seed streams), so campaigns share no mutable
 * state; the "same seed => same decisions" contract pinned down by
 * tests/sim/test_rng_determinism.cc makes every campaign's outcome
 * independent of which worker runs it. Results are collected into spec
 * order, so the aggregated CampaignSummary is identical for any worker
 * count and any completion interleaving.
 */

#ifndef MCVERSI_CAMPAIGN_RUNNER_HH
#define MCVERSI_CAMPAIGN_RUNNER_HH

#include <cstddef>
#include <functional>
#include <vector>

#include "campaign/result.hh"
#include "campaign/spec.hh"

namespace mcversi::campaign {

/** Runs campaign matrices on a worker-thread pool. */
class CampaignRunner
{
  public:
    struct Options
    {
        /** Worker threads; <= 0 selects the hardware concurrency. */
        int threads = 1;
        /**
         * Progress hook, called once per completed campaign (in
         * completion order, serialized). @p done counts completions so
         * far, @p total the matrix size. Must not assume spec order.
         */
        std::function<void(const CampaignResult &result,
                           std::size_t done, std::size_t total)>
            onResult;
    };

    CampaignRunner() = default;
    explicit CampaignRunner(Options options)
        : options_(std::move(options))
    {
    }

    /** Run every spec; results are aggregated in spec order. */
    CampaignSummary run(const std::vector<CampaignSpec> &specs) const;

    /**
     * Run one campaign in the calling thread. Never throws: a bad spec
     * or a run-time failure is reported via CampaignResult::error.
     */
    static CampaignResult runOne(const CampaignSpec &spec);

  private:
    Options options_{};
};

} // namespace mcversi::campaign

#endif // MCVERSI_CAMPAIGN_RUNNER_HH
