/**
 * @file
 * Quickstart: verify a (buggy) MESI system with McVerSi-ALL.
 *
 * Builds the Table 2 platform with the MESI,LQ+IS,Inv bug injected,
 * drives it with the GP-based test generator, and reports how many
 * test-runs it took to expose the bug.
 *
 * Usage: quickstart [bug-name] [seed]
 *   e.g. quickstart "MESI,LQ+IS,Inv" 42
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "mcversi.hh"

using namespace mcversi;

int
main(int argc, char **argv)
{
    const std::string bug_name =
        argc > 1 ? argv[1] : "MESI,LQ+IS,Inv";
    const std::uint64_t seed =
        argc > 2 ? std::strtoull(argv[2], nullptr, 0) : 42;

    const sim::BugId bug = sim::bugByName(bug_name);
    if (bug == sim::BugId::None && bug_name != "none") {
        std::cerr << "unknown bug: " << bug_name << "\n";
        std::cerr << "known bugs:\n";
        for (const sim::BugInfo &info : sim::allBugs())
            std::cerr << "  " << info.name << "\n";
        return 1;
    }

    // Configure the system (Table 2) and the generator (Table 3,
    // scaled down so the quickstart finishes in seconds).
    host::VerificationHarness::Params params;
    params.system.bug = bug;
    params.system.seed = seed;
    params.system.protocol =
        sim::bugInfo(bug).protocol == sim::ProtocolKind::Tsocc
            ? sim::Protocol::Tsocc
            : sim::Protocol::Mesi;

    gp::GenParams gen;
    gen.testSize = argc > 3 ? std::strtoull(argv[3], nullptr, 0) : 256;
    gen.iterations = argc > 4 ? std::atoi(argv[4]) : 4;
    gen.memSize = 8 * 1024;
    params.gen = gen;
    params.workload.iterations = gen.iterations;

    gp::GaParams ga;
    ga.population = 50;

    host::GaSource source(ga, gen, seed,
                          gp::SteadyStateGa::XoMode::Selective);
    host::VerificationHarness harness(params, source);

    std::cout << "protocol: "
              << (params.system.protocol == sim::Protocol::Mesi
                      ? "MESI"
                      : "TSO-CC")
              << ", bug: " << sim::bugInfo(bug).name
              << ", generator: " << source.name() << "\n";

    host::Budget budget;
    budget.maxTestRuns = 2000;
    budget.maxWallSeconds = 120.0;
    const host::HarnessResult result = harness.run(budget);

    if (result.bugFound) {
        std::cout << "BUG FOUND after " << result.testRunsToBug
                  << " test-runs (" << result.wallSecondsToBug
                  << " s wall)\n"
                  << result.detail << "\n";
    } else {
        std::cout << "no bug found in " << result.testRuns
                  << " test-runs (" << result.wallSeconds
                  << " s wall)\n";
    }
    std::cout << "total transition coverage: "
              << 100.0 * result.totalCoverage << "%\n";
    return 0;
}
