/**
 * @file
 * Protocol fault reporting.
 *
 * Like Ruby in gem5, the protocol controllers look up every (state,
 * event) pair in an explicit transition table; a missing entry raises
 * ProtocolError ("invalid transition"). Some bugs manifest this way
 * rather than as an MCM violation (e.g. MESI+PUTX-Race, §5.3), and the
 * verification harness counts a ProtocolError as a found bug.
 */

#ifndef MCVERSI_SIM_FAULT_HH
#define MCVERSI_SIM_FAULT_HH

#include <stdexcept>
#include <string>

namespace mcversi::sim {

/** Invalid protocol transition or other unrecoverable protocol fault. */
class ProtocolError : public std::runtime_error
{
  public:
    ProtocolError(std::string controller, std::string state,
                  std::string event)
        : std::runtime_error("invalid transition: " + controller + " in " +
                             state + " got " + event),
          controller_(std::move(controller)), state_(std::move(state)),
          event_(std::move(event))
    {
    }

    const std::string &controller() const { return controller_; }
    const std::string &state() const { return state_; }
    const std::string &event() const { return event_; }

  private:
    std::string controller_;
    std::string state_;
    std::string event_;
};

} // namespace mcversi::sim

#endif // MCVERSI_SIM_FAULT_HH
