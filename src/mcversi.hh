/**
 * @file
 * McVerSi umbrella header: the full public API.
 *
 * Typical use (see examples/quickstart.cc):
 *
 *   mcversi::host::VerificationHarness::Params params;
 *   params.system.protocol = mcversi::sim::Protocol::Mesi;
 *   params.system.bug = mcversi::sim::BugId::MesiLqIsInv;
 *   mcversi::host::GaSource source(ga, gen, seed,
 *       mcversi::gp::SteadyStateGa::XoMode::Selective);
 *   mcversi::host::VerificationHarness harness(params, source);
 *   auto result = harness.run({.maxTestRuns = 1000});
 */

#ifndef MCVERSI_MCVERSI_HH
#define MCVERSI_MCVERSI_HH

#include "common/rng.hh"
#include "common/types.hh"

#include "memconsistency/arch.hh"
#include "memconsistency/checker.hh"
#include "memconsistency/event.hh"
#include "memconsistency/execwitness.hh"
#include "memconsistency/graph.hh"
#include "memconsistency/relation.hh"

#include "sim/bugs.hh"
#include "sim/config.hh"
#include "sim/coverage.hh"
#include "sim/fault.hh"
#include "sim/system.hh"

#include "gp/crossover.hh"
#include "gp/fitness.hh"
#include "gp/ga.hh"
#include "gp/ndmetrics.hh"
#include "gp/ops.hh"
#include "gp/params.hh"
#include "gp/randgen.hh"
#include "gp/test.hh"

#include "host/harness.hh"
#include "host/interface.hh"
#include "host/sources.hh"
#include "host/workload.hh"

#include "litmus/diy.hh"
#include "litmus/litmus.hh"
#include "litmus/runner.hh"
#include "litmus/x86_suite.hh"

#endif // MCVERSI_MCVERSI_HH
