#include "sim/eventq.hh"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <utility>

#include "sim/message.hh"
#include "sim/network.hh"

namespace mcversi::sim {

EventQueue::EventQueue() : pool_(std::make_unique<MsgPool>()) {}

EventQueue::~EventQueue() = default;

void
EventQueue::commit(Tick when, Event &ev)
{
    if (when < now_) {
        if (strictPastScheduling()) {
            reclaim(ev);
            throw std::logic_error(
                "EventQueue: scheduling in the past (when=" +
                std::to_string(when) + " < now=" + std::to_string(now_) +
                "); a protocol latency computation is broken");
        }
        when = now_;
    }
    ev.when = when;
    ev.seq = seq_++;
    ++size_;

    if (when - now_ < static_cast<Tick>(kWheelSize)) {
        const std::size_t b = static_cast<std::size_t>(when) & kWheelMask;
        pushCounted(buckets_[b].items, std::move(ev));
        markOccupied(b);
        return;
    }
    pushCounted(overflow_, std::move(ev));
    std::push_heap(overflow_.begin(), overflow_.end(), Later{});
}

void
EventQueue::schedule(Tick when, Callback cb)
{
    std::uint32_t slot;
    if (!thunkFree_.empty()) {
        slot = thunkFree_.back();
        thunkFree_.pop_back();
        thunkSlots_[slot] = std::move(cb);
    } else {
        slot = static_cast<std::uint32_t>(thunkSlots_.size());
        pushCounted(thunkSlots_, std::move(cb));
    }
    Event ev{};
    ev.kind = Kind::Thunk;
    ev.thunk = ThunkPayload{slot};
    commit(when, ev);
}

void
EventQueue::migrateOverflow()
{
    while (!overflow_.empty() &&
           overflow_.front().when - now_ < static_cast<Tick>(kWheelSize)) {
        std::pop_heap(overflow_.begin(), overflow_.end(), Later{});
        Event ev = overflow_.back();
        overflow_.pop_back();
        const std::size_t b =
            static_cast<std::size_t>(ev.when) & kWheelMask;
        pushCounted(buckets_[b].items, std::move(ev));
        markOccupied(b);
    }
}

bool
EventQueue::nextWheelTick(Tick &out) const
{
    const std::size_t start = static_cast<std::size_t>(now_ + 1) &
                              kWheelMask;
    std::size_t wi = start >> 6;
    std::uint64_t word = occupancy_[wi] &
                         (~std::uint64_t{0} << (start & 63));
    for (std::size_t scanned = 0; scanned <= occupancy_.size();
         ++scanned) {
        if (word != 0) {
            const std::size_t bucket =
                (wi << 6) +
                static_cast<std::size_t>(std::countr_zero(word));
            std::size_t delta =
                (bucket - (static_cast<std::size_t>(now_) & kWheelMask)) &
                kWheelMask;
            if (delta == 0)
                delta = kWheelSize; // Defensive; current bucket drained.
            out = now_ + static_cast<Tick>(delta);
            return true;
        }
        wi = (wi + 1) % occupancy_.size();
        word = occupancy_[wi];
    }
    return false;
}

void
EventQueue::dispatch(Event &ev)
{
    switch (ev.kind) {
      case Kind::Thunk: {
        Callback cb = std::move(thunkSlots_[ev.thunk.slot]);
        pushCounted(thunkFree_, std::uint32_t{ev.thunk.slot});
        cb();
        break;
      }
      case Kind::Fn:
        ev.fn.fn(ev.fn.obj, ev.fn.a, ev.fn.b, ev.fn.c, ev.fn.d);
        break;
      case Kind::Deliver: {
        // Release after the handler returns (or throws): the handler
        // may acquire new messages, which must not alias this one.
        struct Guard
        {
            MsgPool *pool;
            Msg *msg;
            ~Guard() { pool->release(msg); }
        } guard{pool_.get(), ev.deliver.msg};
        ev.deliver.handler->handleMsg(*ev.deliver.msg);
        break;
      }
      case Kind::NetSend:
        // Ownership transfers to the network (which re-files the same
        // Msg into the delivery event it schedules).
        ev.netSend.net->send(ev.netSend.msg);
        break;
    }
}

std::uint64_t
EventQueue::runUntilQuiescent(std::uint64_t max_events)
{
    std::uint64_t n = 0;
    while (size_ > 0) {
        migrateOverflow();
        const std::size_t bi = static_cast<std::size_t>(now_) &
                               kWheelMask;
        Bucket &b = buckets_[bi];
        while (b.head < b.items.size()) {
            if (++n > max_events) {
                throw std::runtime_error(
                    "EventQueue: exceeded max events; likely protocol "
                    "deadlock/livelock");
            }
            // Copy out: dispatch may append to (and reallocate) this
            // bucket's storage.
            Event ev = b.items[b.head++];
            --size_;
            ++processed_;
            dispatch(ev);
        }
        b.items.clear();
        b.head = 0;
        markEmpty(bi);
        if (size_ == 0)
            break;
        Tick next;
        if (nextWheelTick(next)) {
            now_ = next;
        } else {
            // Wheel empty; the remaining events are all far-future.
            now_ = overflow_.front().when;
        }
    }
    return n;
}

void
EventQueue::reclaim(Event &ev)
{
    switch (ev.kind) {
      case Kind::Thunk:
        thunkSlots_[ev.thunk.slot] = nullptr;
        pushCounted(thunkFree_, std::uint32_t{ev.thunk.slot});
        break;
      case Kind::Deliver:
        pool_->release(ev.deliver.msg);
        break;
      case Kind::NetSend:
        pool_->release(ev.netSend.msg);
        break;
      case Kind::Fn:
        break;
    }
}

void
EventQueue::clearPending()
{
    for (Bucket &b : buckets_) {
        for (std::size_t i = b.head; i < b.items.size(); ++i)
            reclaim(b.items[i]);
        b.items.clear();
        b.head = 0;
    }
    for (Event &ev : overflow_)
        reclaim(ev);
    overflow_.clear();
    occupancy_.fill(0);
    size_ = 0;
}

void
EventQueue::reset()
{
    clearPending();
    now_ = 0;
}

std::uint64_t
EventQueue::structuralAllocations() const
{
    return growths_ + pool_->slabsAllocated();
}

} // namespace mcversi::sim
