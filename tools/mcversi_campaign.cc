/**
 * @file
 * mcversi_campaign: CLI driver for the Campaign API.
 *
 * Describes a campaign matrix with key=value arguments, runs it either
 * in-process on a worker-thread pool or -- with workers= / run-dir= --
 * as a fault-tolerant multi-process fleet (crash-safe result journal,
 * per-cell timeouts, straggler retry, resume), prints a per-campaign
 * table plus totals, and optionally writes the machine-readable
 * JSON/CSV summary (atomically: write-to-temp + rename).
 *
 * Matrix keys (lists are ';'-separated since bug names contain commas):
 *   bugs=<name;...|all|mesi|tsocc>   generators=<name;...|all>
 *   models=<name;...|all>            seeds=<lo..hi|s;s;...>
 * Runner keys:
 *   threads=N (>= 1; omit for hardware)  json=FILE  csv=FILE  quiet=1
 * Fleet keys (any may be written --key=value as well):
 *   workers=N run-dir=DIR resume=0|1 retries=N cell-timeout=SECONDS
 * Every other key=value is a CampaignSpec setting (see --help).
 *
 * Exit codes (all error text goes to stderr):
 *   0    success
 *   1    usage / spec-parse error
 *   2    campaign-cell error rows in the merged summary
 *   3    fleet or worker-pool failure (run dir, journal, I/O)
 *   130  interrupted (SIGINT/SIGTERM); resume=1 continues the run
 *
 * Example (the CI fleet datapoint):
 *   mcversi_campaign "bugs=MESI,LQ+IS,Inv;SQ+no-FIFO" \
 *       "generators=McVerSi-ALL;McVerSi-RAND" seeds=1..2 \
 *       test-size=96 iterations=2 mem-size=1024 population=16 \
 *       max-runs=60 workers=4 run-dir=fleet-run timing=0 \
 *       json=campaign.json
 */

#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "mcversi.hh"

using namespace mcversi;

namespace {

// Distinct exit codes, so CI and scripts can tell a bad invocation
// from a failed cell from a broken fleet (see file header).
constexpr int kExitOk = 0;
constexpr int kExitUsage = 1;
constexpr int kExitCellError = 2;
constexpr int kExitFleet = 3;
constexpr int kExitInterrupted = 130;

void
printUsage(std::FILE *out)
{
    std::fprintf(out, "%s",
        "usage: mcversi_campaign [key=value ...]\n"
        "\n"
        "Matrix keys (lists use ';' separators):\n"
        "  bugs=<name;...|all|mesi|tsocc>  bug axis (default: base bug)\n"
        "  generators=<name;...|all>       generator axis\n"
        "  models=<name;...|all>           consistency-model axis\n"
        "  seeds=<lo..hi|s1;s2;...>        seed axis\n"
        "\n"
        "Runner keys:\n"
        "  threads=N      worker threads across specs, N >= 1 (omit\n"
        "                 the key for hardware concurrency; ignored in\n"
        "                 fleet mode)\n"
        "  eval-threads=N worker threads inside one spec's batch\n"
        "                 evaluation, N >= 1 (default 1; summaries\n"
        "                 are byte-identical for any value)\n"
        "  json=FILE      write the JSON summary (atomic tmp+rename)\n"
        "  csv=FILE       write the CSV summary (atomic tmp+rename)\n"
        "  timing=0|1     include wall-clock fields in JSON/CSV (1);\n"
        "                 timing=0 output is byte-identical across\n"
        "                 runs, thread counts, and fleet worker counts\n"
        "  quiet=1        suppress per-campaign progress lines\n"
        "\n"
        "Fleet keys (multi-process; --key=value also accepted):\n"
        "  workers=N        fork N worker processes; cells shard\n"
        "                   dynamically and every completed cell is\n"
        "                   streamed into a crash-safe journal\n"
        "  run-dir=DIR      run directory (journal + worker logs);\n"
        "                   required in fleet mode\n"
        "  resume=0|1       replay DIR's journal, run only missing\n"
        "                   cells (default 0)\n"
        "  retries=N        extra attempts for a cell whose worker\n"
        "                   crashed or timed out (default 2); a cell\n"
        "                   that exhausts them becomes an error row\n"
        "  cell-timeout=SEC kill a worker whose cell exceeds SEC\n"
        "                   wall-clock seconds and retry the cell\n"
        "                   (default 0 = no timeout)\n"
        "\n"
        "Campaign spec keys (defaults in parentheses):\n"
        "  bug=NAME (none)            generator=NAME (McVerSi-ALL)\n"
        "  seed=N (1)                 protocol=auto|mesi|tsocc (auto)\n"
        "  model=NAME (tso)           consistency model the checker\n"
        "                             verifies against (--list-models)\n"
        "  test-size=N (256)          iterations=N (4)\n"
        "  mem-size=N[k] (8192)       stride=N (16)\n"
        "  guest-threads=N (8)        population=N (50, per island)\n"
        "  islands=N (1)              migration=N evals (256, 0 = off)\n"
        "  batch=N (1)                \n"
        "  max-runs=N (1000)          max-seconds=X (0 = unlimited)\n"
        "  litmus-iterations=N (12)   record-ndt=0|1 (0)\n"
        "  check-cache=N[k]|off (4096)  verdict-cache entries per\n"
        "                             checker (collective checking)\n"
        "  check-mode=posthoc|streaming (posthoc)\n"
        "  witness-window=N[k]|off (off)  bounded-window streaming:\n"
        "                             retire resolved events older\n"
        "                             than the last N recorded ones,\n"
        "                             keeping soak-run memory\n"
        "                             O(window); needs\n"
        "                             check-mode=streaming\n"
        "\n"
        "islands>1 or batch>1 selects the batched multi-lane harness:\n"
        "one simulation lane per island, eval-threads workers.\n"
        "\n"
        "Exit codes: 0 ok, 1 usage/spec error, 2 cell error rows,\n"
        "3 fleet/worker failure, 130 interrupted (resumable).\n"
        "\n"
        "Flags: --help, --list-bugs, --list-generators, --list-models\n");
}

void
listBugs()
{
    std::printf("%-24s %-8s %s\n", "Name", "Protocol", "Real");
    for (const sim::BugInfo &info : sim::allBugs()) {
        const char *kind =
            info.protocol == sim::ProtocolKind::Mesi    ? "MESI"
            : info.protocol == sim::ProtocolKind::Tsocc ? "TSO-CC"
                                                        : "any";
        std::printf("%-24s %-8s %s\n", info.name, kind,
                    info.real ? "*" : "");
    }
}

void
listGenerators()
{
    for (const std::string &name :
         campaign::SourceRegistry::instance().names()) {
        std::printf("%s\n", name.c_str());
    }
}

void
listModels()
{
    for (const std::string &name : mc::modelNames())
        std::printf("%s\n", name.c_str());
}

/** Resolve a models= token: "all" => every registered model. */
std::vector<std::string>
resolveModelList(const std::string &token)
{
    if (token == "all")
        return mc::modelNames();
    return campaign::splitList(token);
}

int
parseNonNegInt(const std::string &key, const std::string &value)
{
    if (value.empty() ||
        value.find_first_not_of("0123456789") != std::string::npos) {
        throw std::invalid_argument("bad value '" + value +
                                    "' for key '" + key +
                                    "': expected a non-negative "
                                    "integer");
    }
    const unsigned long v = std::stoul(value);
    if (v > 1000000) {
        throw std::invalid_argument("bad value '" + value +
                                    "' for key '" + key +
                                    "': out of range");
    }
    return static_cast<int>(v);
}

double
parseSeconds(const std::string &key, const std::string &value)
{
    std::size_t pos = 0;
    double v = 0.0;
    try {
        v = std::stod(value, &pos);
    } catch (const std::exception &) {
        pos = std::string::npos;
    }
    if (pos != value.size() || v < 0.0) {
        throw std::invalid_argument("bad value '" + value +
                                    "' for key '" + key +
                                    "': expected non-negative "
                                    "seconds");
    }
    return v;
}

/** Atomic summary export: a crash mid-write never leaves a torn
 * file (fleet::writeFileAtomic = tmp + fsync + rename). */
bool
exportFile(const std::string &path, const std::string &content)
{
    std::string err;
    if (!fleet::writeFileAtomic(path, content, &err)) {
        std::fprintf(stderr, "error: %s\n", err.c_str());
        return false;
    }
    return true;
}

void
printTable(const campaign::CampaignSummary &summary)
{
    std::printf("%-24s %-16s %-6s %-8s %-6s %-10s %-12s %s\n", "Bug",
                "Generator", "Model", "Seed", "Found", "Runs(bug)",
                "Coverage", "Status");
    for (const campaign::CampaignResult &r : summary.results) {
        char runs[24];
        if (r.harness.bugFound) {
            std::snprintf(runs, sizeof(runs), "%llu",
                          static_cast<unsigned long long>(
                              r.harness.testRunsToBug));
        } else {
            std::snprintf(runs, sizeof(runs), "-");
        }
        char coverage[16];
        std::snprintf(coverage, sizeof(coverage), "%.1f%%",
                      100.0 * r.protocolCoverage);
        std::printf("%-24s %-16s %-6s %-8llu %-6s %-10s %-12s %s\n",
                    r.spec.bug.c_str(), r.spec.generator.c_str(),
                    r.spec.model.c_str(),
                    static_cast<unsigned long long>(r.spec.seed),
                    r.harness.bugFound ? "yes" : "no", runs, coverage,
                    r.ok() ? "ok" : r.error.c_str());
    }
    const double wall = summary.totalWallSeconds();
    std::printf("\n%zu campaigns, %zu bugs found, %zu errors, "
                "%llu test-runs, %.1f s total sim wall-clock "
                "(%.1f tests/s aggregate)\n",
                summary.campaigns(), summary.bugsFound(),
                summary.errors(),
                static_cast<unsigned long long>(summary.totalTestRuns()),
                wall,
                wall > 0.0
                    ? static_cast<double>(summary.totalTestRuns()) / wall
                    : 0.0);
}

} // namespace

int
main(int argc, char **argv)
{
    campaign::CampaignMatrix matrix;
    int threads = 0;
    int eval_threads = 1;
    bool quiet = false;
    bool include_timing = true;
    std::string json_path;
    std::string csv_path;

    // Fleet mode is selected by workers= and/or run-dir=.
    bool fleet_mode = false;
    fleet::FleetCoordinator::Options fleet_options;

    try {
        for (int i = 1; i < argc; ++i) {
            std::string arg = argv[i];
            if (arg == "--help" || arg == "-h") {
                printUsage(stdout);
                return kExitOk;
            }
            if (arg == "--list-bugs") {
                listBugs();
                return kExitOk;
            }
            if (arg == "--list-generators") {
                listGenerators();
                return kExitOk;
            }
            if (arg == "--list-models") {
                listModels();
                return kExitOk;
            }
            // Fleet keys read naturally as flags: accept --key=value
            // for any key.
            if (arg.size() > 2 && arg.compare(0, 2, "--") == 0 &&
                arg.find('=') != std::string::npos) {
                arg = arg.substr(2);
            }
            const std::size_t eq = arg.find('=');
            const std::string key = arg.substr(0, eq);
            const std::string value =
                eq == std::string::npos ? "" : arg.substr(eq + 1);
            if (key == "bugs") {
                matrix.bugs = campaign::resolveBugList(value);
            } else if (key == "generators") {
                matrix.generators =
                    campaign::resolveGeneratorList(value);
            } else if (key == "models") {
                matrix.models = resolveModelList(value);
            } else if (key == "seeds") {
                matrix.seeds = campaign::parseSeedList(value);
            } else if (key == "threads") {
                threads = campaign::parseThreadCount(key, value);
            } else if (key == "eval-threads") {
                eval_threads = campaign::parseThreadCount(key, value);
            } else if (key == "json") {
                json_path = value;
            } else if (key == "csv") {
                csv_path = value;
            } else if (key == "quiet") {
                quiet = value != "0";
            } else if (key == "timing") {
                include_timing = value != "0";
            } else if (key == "workers") {
                fleet_options.workers =
                    campaign::parseThreadCount(key, value);
                fleet_mode = true;
            } else if (key == "run-dir") {
                fleet_options.runDir = value;
                fleet_mode = true;
            } else if (key == "resume") {
                fleet_options.resume = value != "0";
                fleet_mode = true;
            } else if (key == "retries") {
                fleet_options.retries = parseNonNegInt(key, value);
                fleet_mode = true;
            } else if (key == "cell-timeout") {
                fleet_options.cellTimeoutSeconds =
                    parseSeconds(key, value);
                fleet_mode = true;
            } else {
                matrix.base.set(arg);
            }
        }
        if (fleet_mode && fleet_options.runDir.empty()) {
            throw std::invalid_argument(
                "fleet mode (workers=/resume=/retries=/cell-timeout=) "
                "requires run-dir=DIR");
        }
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n\n", e.what());
        printUsage(stderr);
        return kExitUsage;
    }

    const std::vector<campaign::CampaignSpec> specs = matrix.expand();
    for (const campaign::CampaignSpec &spec : specs) {
        try {
            spec.validate();
        } catch (const std::exception &e) {
            std::fprintf(stderr, "error: %s\n", e.what());
            return kExitUsage;
        }
    }

    campaign::CampaignSummary summary;
    bool interrupted = false;
    if (fleet_mode) {
        fleet_options.evalThreads = eval_threads;
        if (!quiet) {
            fleet_options.onResult =
                [](const campaign::CampaignResult &r, std::size_t done,
                   std::size_t total) {
                    std::fprintf(
                        stderr, "[%zu/%zu] %s %s %s seed=%llu: %s\n",
                        done, total, r.spec.bug.c_str(),
                        r.spec.generator.c_str(), r.spec.model.c_str(),
                        static_cast<unsigned long long>(r.spec.seed),
                        !r.ok() ? "ERROR"
                        : r.harness.bugFound ? "bug found"
                                             : "no bug");
                };
            fleet_options.onRetry = [](std::size_t cell, int attempt,
                                       const std::string &why) {
                std::fprintf(stderr,
                             "fleet: cell %zu attempt %d: %s\n", cell,
                             attempt, why.c_str());
            };
        }
        try {
            fleet::FleetCoordinator coordinator(fleet_options);
            fleet::FleetReport report = coordinator.run(specs);
            summary = std::move(report.summary);
            interrupted = report.interrupted;
            std::fprintf(stderr,
                         "fleet: %zu cells (%zu resumed, %zu run, "
                         "%zu error rows), %zu retries, %zu timeouts, "
                         "%zu worker crashes, %zu respawns\n",
                         report.cellsTotal, report.cellsResumed,
                         report.cellsRun, report.cellErrors,
                         report.retriesScheduled, report.timeouts,
                         report.workerCrashes, report.respawns);
            // Always leave a merged snapshot in the run directory
            // next to the journal (atomic, safe to re-run).
            if (!exportFile(fleet_options.runDir + "/summary.json",
                            summary.toJson(include_timing)) ||
                !exportFile(fleet_options.runDir + "/summary.csv",
                            summary.toCsv(include_timing))) {
                return kExitFleet;
            }
        } catch (const std::exception &e) {
            std::fprintf(stderr, "error: %s\n", e.what());
            return kExitFleet;
        }
    } else {
        campaign::CampaignRunner::Options options;
        options.threads = threads;
        options.evalThreads = eval_threads;
        if (!quiet) {
            options.onResult = [](const campaign::CampaignResult &r,
                                  std::size_t done, std::size_t total) {
                std::fprintf(
                    stderr, "[%zu/%zu] %s %s %s seed=%llu: %s\n", done,
                    total, r.spec.bug.c_str(), r.spec.generator.c_str(),
                    r.spec.model.c_str(),
                    static_cast<unsigned long long>(r.spec.seed),
                    !r.ok() ? "ERROR"
                    : r.harness.bugFound ? "bug found"
                                         : "no bug");
            };
        }
        const campaign::CampaignRunner runner(options);
        summary = runner.run(specs);
    }

    printTable(summary);

    bool files_ok = true;
    if (!json_path.empty())
        files_ok &= exportFile(json_path, summary.toJson(include_timing));
    if (!csv_path.empty())
        files_ok &= exportFile(csv_path, summary.toCsv(include_timing));
    if (!files_ok)
        return kExitFleet;
    if (interrupted) {
        std::fprintf(stderr,
                     "fleet: interrupted; rerun with resume=1 to "
                     "continue from the journal\n");
        return kExitInterrupted;
    }
    return summary.errors() == 0 ? kExitOk : kExitCellError;
}
