/**
 * @file
 * Counting-allocator proof that bounded-window streaming checking is
 * allocation-free in steady state: after a warmup cycle has sized the
 * witness ring, the node/meta arrays, the value map, and the graph
 * adjacency pools, every further begin() -> stream -> verdict cycle
 * performs exactly zero heap allocations, and the live-node high water
 * stays O(window) rather than O(trace).
 *
 * This binary replaces global operator new/delete with counting
 * wrappers (same scheme as sim/test_eventq_zero_alloc.cc). Skipped
 * under ASan/UBSan: the sanitizer runtime interposes and allocates on
 * its own schedule, so the counter is not meaningful.
 */

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include <gtest/gtest.h>

#include "memconsistency/execwitness.hh"
#include "memconsistency/models/registry.hh"
#include "memconsistency/streaming_checker.hh"

#if defined(__SANITIZE_ADDRESS__)
#define MCVERSI_ZERO_ALLOC_SKIP 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define MCVERSI_ZERO_ALLOC_SKIP 1
#endif
#endif

namespace {

std::atomic<std::uint64_t> g_allocs{0};

} // namespace

void *
operator new(std::size_t size)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace {

using namespace mcversi;

/** One recordRead()/recordWrite() call. */
struct Rec
{
    bool write;
    Pid pid;
    std::int32_t poi;
    Addr addr;
    WriteVal value;
    WriteVal overwritten;
};

/**
 * Deterministic clean trace with bounded reuse distance (every read
 * observes a write at most 2 * addrs events old), so a window above
 * that distance retires nodes promptly and never truncates.
 */
std::vector<Rec>
cyclicTrace(int threads, int ops, int addrs)
{
    std::vector<Rec> trace;
    trace.reserve(static_cast<std::size_t>(ops));
    std::vector<WriteVal> memory(static_cast<std::size_t>(addrs),
                                 kInitVal);
    std::vector<std::int32_t> poi(static_cast<std::size_t>(threads), 0);
    WriteVal next = 1;
    for (int i = 0; i < ops; ++i) {
        const Pid pid = static_cast<Pid>(i % threads);
        // Write/read pairs cycle the address space together, so every
        // address keeps being overwritten (a value that is never
        // overwritten has no fr edge to wait for, but also pins its
        // readers live -- real soak traffic keeps overwriting).
        const auto ai = static_cast<std::size_t>((i / 2) % addrs);
        const Addr addr = 0x100 + 64 * static_cast<Addr>(ai);
        const std::int32_t p = poi[static_cast<std::size_t>(pid)]++;
        if (i % 2 == 0) {
            const WriteVal v = next++;
            trace.push_back({true, pid, p, addr, v, memory[ai]});
            memory[ai] = v;
        } else {
            trace.push_back({false, pid, p, addr, memory[ai], kInitVal});
        }
    }
    return trace;
}

/**
 * One steady-state cycle: reset the witness, stream the whole trace
 * through the checker, and poll the online verdict -- exactly what a
 * soak workload's per-test loop does. (checkStreamed() is not called
 * here: its verdict strings allocate by design; the soak loop only
 * renders them on the rare dirty stream.)
 */
bool
spin(const std::vector<Rec> &trace, mc::ExecWitness &ew,
     mc::StreamingChecker &sc, std::size_t window)
{
    ew.reset();
    ew.setWindow(window);
    sc.setWindow(window);
    ew.setEventSink(&sc);
    sc.begin();
    for (const Rec &r : trace) {
        if (r.write)
            ew.recordWrite(r.pid, r.poi, r.addr, r.value, r.overwritten);
        else
            ew.recordRead(r.pid, r.poi, r.addr, r.value);
    }
    ew.setEventSink(nullptr);
    return !sc.violationDetected() && sc.streamComplete() &&
           !sc.windowTruncated();
}

TEST(StreamingZeroAlloc, SteadyStateWindowedCyclesDoNotTouchTheHeap)
{
#ifdef MCVERSI_ZERO_ALLOC_SKIP
    GTEST_SKIP() << "allocation counting is not meaningful under "
                    "sanitizers";
#else
    const std::size_t window = 256;
    const auto trace = cyclicTrace(4, 8192, 6);

    mc::ExecWitness ew;
    mc::StreamingChecker sc(mc::modelProfile("tso"));

    // Warmup: the ring, node arrays, value map, retirement FIFO, and
    // graph adjacency pools all reach steady-state capacity here.
    ASSERT_TRUE(spin(trace, ew, sc, window));

    const std::uint64_t heap_before = g_allocs.load();
    const bool clean = spin(trace, ew, sc, window);
    const bool clean2 = spin(trace, ew, sc, window);
    const std::uint64_t heap_after = g_allocs.load();

    EXPECT_TRUE(clean);
    EXPECT_TRUE(clean2);
    EXPECT_EQ(heap_after - heap_before, 0u)
        << "steady-state windowed streaming allocated "
        << (heap_after - heap_before) << " times over two cycles";
    // O(window) live set: unbounded checking of this trace would peak
    // at ~8k live nodes.
    EXPECT_LE(sc.liveNodeHighWater(), window + window / 2 + 64);
#endif
}

} // namespace
