/**
 * @file
 * Example: compare the three McVerSi test generation strategies on one
 * bug (the paper's §6.1 question -- how effective is the selective
 * crossover?).
 *
 * Usage: compare_generators [bug-name] [samples]
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "mcversi.hh"

using namespace mcversi;

namespace {

host::HarnessResult
runOne(const std::string &generator, sim::BugId bug, std::uint64_t seed)
{
    host::VerificationHarness::Params params;
    params.system.bug = bug;
    params.system.seed = seed;
    params.system.protocol =
        sim::bugInfo(bug).protocol == sim::ProtocolKind::Tsocc
            ? sim::Protocol::Tsocc
            : sim::Protocol::Mesi;
    params.gen.testSize = 256;
    params.gen.iterations = 4;
    params.gen.memSize = 8 * 1024;
    params.workload.iterations = params.gen.iterations;
    params.recordNdt = false;

    host::Budget budget;
    budget.maxTestRuns = 1500;
    budget.maxWallSeconds = 90.0;

    gp::GaParams ga;
    ga.population = 50;

    if (generator == "rand") {
        host::RandomSource source(params.gen, seed);
        host::VerificationHarness harness(params, source);
        return harness.run(budget);
    }
    const auto mode = generator == "all"
                          ? gp::SteadyStateGa::XoMode::Selective
                          : gp::SteadyStateGa::XoMode::SinglePoint;
    host::GaSource source(ga, params.gen, seed, mode);
    host::VerificationHarness harness(params, source);
    return harness.run(budget);
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string bug_name =
        argc > 1 ? argv[1] : "MESI,LQ+SM,Inv";
    const int samples = argc > 2 ? std::atoi(argv[2]) : 3;
    const sim::BugId bug = sim::bugByName(bug_name);
    if (bug == sim::BugId::None) {
        std::cerr << "unknown bug: " << bug_name << "\n";
        return 1;
    }

    std::cout << "bug: " << bug_name << ", " << samples
              << " samples per generator\n\n";
    for (const std::string generator : {"all", "stdxo", "rand"}) {
        int found = 0;
        double runs_sum = 0.0;
        for (int s = 0; s < samples; ++s) {
            const host::HarnessResult r =
                runOne(generator, bug,
                       17 + static_cast<std::uint64_t>(s) * 101);
            if (r.bugFound) {
                ++found;
                runs_sum += static_cast<double>(r.testRunsToBug);
            }
        }
        std::cout << (generator == "all"      ? "McVerSi-ALL:    "
                      : generator == "stdxo" ? "McVerSi-Std.XO: "
                                              : "McVerSi-RAND:   ")
                  << found << "/" << samples << " found";
        if (found > 0)
            std::cout << ", mean " << runs_sum / found
                      << " test-runs to bug";
        std::cout << "\n";
    }
    return 0;
}
