/**
 * @file
 * Fault-tolerant campaign fleet: coordinator/worker process sharding.
 *
 * The FleetCoordinator expands nothing itself -- it takes the already
 * expanded CampaignMatrix cell vector and shards the cells across N
 * forked worker processes over a pipe protocol (fleet/worker.hh).
 * Robustness is the point; the contract is:
 *
 *  - every completed cell is streamed into an append-only, fsync'd,
 *    checksummed journal in the run directory (fleet/journal.hh), so
 *    a crash -- of a worker OR of the coordinator -- loses at most the
 *    cells that were still in flight;
 *  - cells are dispatched dynamically (work stealing): an idle worker
 *    always takes the oldest pending cell, so one slow cell never
 *    serializes the tail behind a static shard assignment;
 *  - a worker that crashes or exceeds the per-cell timeout is killed
 *    and replaced; its in-flight cell is retried (up to Options::
 *    retries extra attempts) on the surviving/replacement workers;
 *  - a cell that fails every attempt degrades to an `error` row that
 *    carries the worker's captured stderr -- the campaign keeps going;
 *  - Options::resume replays the journal (validating its cell count
 *    and matrix fingerprint) and runs only the missing cells;
 *  - SIGINT/SIGTERM stop dispatching, drain the workers, and return
 *    with FleetReport::interrupted -- the journal is already durable,
 *    so a later --resume continues where the run stopped.
 *
 * Determinism: each cell's result is computed by CampaignRunner::
 * runOne in a worker process exactly as a single-process run would
 * compute it, results merge by CELL INDEX (never arrival order), and
 * doubles cross the journal/pipe bit-exactly (fleet/wire.hh). The
 * timing-free summary (toJson(false)/toCsv(false)) is therefore
 * byte-identical for any worker count, any retry/kill schedule, and
 * any resume split -- the process-level extension of the worker-
 * thread-count independence the campaign layer already guarantees.
 */

#ifndef MCVERSI_FLEET_COORDINATOR_HH
#define MCVERSI_FLEET_COORDINATOR_HH

#include <cstdint>
#include <functional>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include <sys/types.h>

#include "campaign/result.hh"
#include "campaign/spec.hh"
#include "fleet/wire.hh"

namespace mcversi::fleet {

/** Fleet-level failure (run directory, journal, or worker pool --
 * distinct from a campaign-cell error, which degrades to an error
 * row). */
class FleetError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Outcome of one fleet run. */
struct FleetReport
{
    /** Merged, cell-indexed summary (spec order, as always). */
    campaign::CampaignSummary summary;
    /** True if SIGINT/SIGTERM (or Options::maxCells) stopped the run
     * before every cell completed; resume continues it. */
    bool interrupted = false;

    // -- Robustness accounting -----------------------------------------
    std::size_t cellsTotal = 0;
    /** Cells replayed from the journal instead of run. */
    std::size_t cellsResumed = 0;
    /** Cells newly completed by this run (including error rows). */
    std::size_t cellsRun = 0;
    /** Cells that exhausted their attempts and became error rows. */
    std::size_t cellErrors = 0;
    /** Retry dispatches after a crash/timeout. */
    std::size_t retriesScheduled = 0;
    /** Workers killed for exceeding the cell timeout. */
    std::size_t timeouts = 0;
    /** Workers that died on their own (crash, OOM-kill, ...). */
    std::size_t workerCrashes = 0;
    /** Replacement workers forked. */
    std::size_t respawns = 0;
    /** Torn-tail / corrupt records dropped while replaying. */
    std::size_t journalDropped = 0;
};

/** Statistics of one journal replay (resume path; exposed for tests). */
struct ReplayStats
{
    std::size_t records = 0;
    std::size_t applied = 0;
    std::size_t duplicates = 0;
    bool droppedTornTail = false;
    std::size_t corruptSkipped = 0;
};

/**
 * Replay a journal against @p specs: validates the meta record (cell
 * count + matrix fingerprint), keeps the LAST record per cell
 * (duplicates are legal -- a retry can race a crash), and
 * cross-checks every record's spec string. Throws FleetError on a
 * mismatched journal. @p completed maps cell index -> result.
 */
ReplayStats
replayJournal(const std::string &journal_path,
              const std::vector<campaign::CampaignSpec> &specs,
              std::map<std::size_t, campaign::CampaignResult> &completed);

/** Journal location inside a run directory. */
std::string journalPath(const std::string &run_dir);

class FleetCoordinator
{
  public:
    struct Options
    {
        /** Forked worker processes (>= 1). */
        int workers = 1;
        /** Extra attempts per cell after its first try fails. */
        int retries = 2;
        /** Per-cell wall-clock timeout in seconds (0 = none). A cell
         * past its deadline gets its worker SIGKILLed and is retried. */
        double cellTimeoutSeconds = 0.0;
        /** Run directory: journal + per-worker logs. Required. */
        std::string runDir;
        /** Replay an existing journal and run only the missing cells. */
        bool resume = false;
        /** Batch-evaluation threads inside each cell. */
        int evalThreads = 1;
        /** Stop cleanly after this many newly completed cells
         * (0 = unlimited); the journal makes the slice resumable. */
        std::size_t maxCells = 0;

        /** Called when a replacement or initial worker is forked. */
        std::function<void(int slot, pid_t pid)> onWorkerSpawn;
        /** Called per completed cell (arrival order; the merged
         * summary itself is cell-indexed). */
        std::function<void(const campaign::CampaignResult &result,
                           std::size_t done, std::size_t total)>
            onResult;
        /** Called on every retry dispatch / error-row degradation. */
        std::function<void(std::size_t cell, int attempt,
                           const std::string &why)>
            onRetry;
    };

    explicit FleetCoordinator(Options options);

    /**
     * Run the matrix. Throws FleetError on fleet-level failure (bad
     * run dir, journal mismatch, worker pool unrecoverable); cell
     * failures never throw -- they become error rows.
     */
    FleetReport run(const std::vector<campaign::CampaignSpec> &specs);

  private:
    Options options_;
};

} // namespace mcversi::fleet

#endif // MCVERSI_FLEET_COORDINATOR_HH
