/**
 * @file
 * The candidate execution object (§4.1).
 *
 * A pre-silicon environment can observe all conflict orders directly, so
 * the witness records exact rf (read-from) and co (coherence order)
 * during execution, without enumeration or approximation:
 *
 *  - every dynamic store writes a globally unique value (its "write ID"),
 *    so the value a read returns identifies the producing write;
 *  - every store also reports the value it overwrote, which identifies
 *    its immediate co-predecessor.
 *
 * Initial memory contents (value kInitVal) map to per-address init write
 * events created on first use.
 *
 * Recording also performs two well-formedness checks that catch data-loss
 * bugs directly: a read of a value that was never written, and two stores
 * claiming to overwrite the same value (a fork in what must be a total
 * per-address coherence chain, e.g. after a lost writeback).
 *
 * The witness sits on the verification hot path (it is rebuilt for every
 * iteration of every test-run), so all per-event lookup structures are
 * dense EventId-indexed vectors, recording appends in O(1) with sorting
 * deferred to finalize(), and reset() preserves every buffer's capacity
 * so steady-state iterations are allocation-free.
 *
 * Windowed (sink-only) mode: setWindow(W) turns recording into a ring
 * buffer of the last W events, for soak runs where a streaming checker
 * consumes each event as it is recorded and the O(trace) event log
 * would otherwise dominate memory. Only the per-event ring and the
 * address table are maintained -- per-thread lists, the value index,
 * the overwrite log, and RMW pairing are all skipped, so a windowed
 * witness can never finalize() (it throws). The retained window exists
 * purely for violation diagnostics: replayRetainedInto() re-records it
 * into a scratch full-mode witness for post-hoc analysis, and
 * droppedEvents()/eventRetained() let the checker report honestly when
 * the ring has evicted part of a cycle.
 */

#ifndef MCVERSI_MEMCONSISTENCY_EXECWITNESS_HH
#define MCVERSI_MEMCONSISTENCY_EXECWITNESS_HH

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "memconsistency/event.hh"
#include "memconsistency/relation.hh"

namespace mcversi::mc {

/** Kinds of recording-time anomaly. */
enum class WitnessAnomaly : std::uint8_t {
    None,
    /** A read returned a value no write ever produced. */
    UnknownValue,
    /** Two writes overwrote the same value: co is not a total order. */
    CoFork,
};

/** Dense identifier of a distinct address within one ExecWitness. */
using AddrId = std::int32_t;

class ExecWitness;

/**
 * Observer of the recording path: invoked once per recorded event,
 * immediately after the event is appended (streaming checkers consume
 * the execution as it happens instead of waiting for finalize()).
 * Init events are created during finalize() and never reach the sink.
 */
class WitnessEventSink
{
  public:
    virtual ~WitnessEventSink() = default;

    /**
     * @param ew          the witness the event was recorded into
     * @param id          id of the freshly recorded event
     * @param overwritten value the write replaced (kInitVal for reads)
     */
    virtual void onRecord(const ExecWitness &ew, EventId id,
                          WriteVal overwritten) = 0;
};

/** One candidate execution: events plus observed po / rf / co. */
class ExecWitness
{
  public:
    /**
     * Record a committed read.
     *
     * @param pid   issuing thread
     * @param poi   program-order index of the instruction in its thread
     * @param addr  address read
     * @param value value observed
     * @param rmw   true if part of an atomic RMW pair
     * @return id of the new event
     */
    EventId recordRead(Pid pid, std::int32_t poi, Addr addr, WriteVal value,
                       bool rmw = false);

    /**
     * Record a committed (serialized) write.
     *
     * @param value       unique value written (never kInitVal)
     * @param overwritten value the write replaced in memory order
     */
    EventId recordWrite(Pid pid, std::int32_t poi, Addr addr, WriteVal value,
                        WriteVal overwritten, bool rmw = false);

    /**
     * Resolve conflict orders from the recorded values. Must be called
     * once recording is complete (at quiescence: a store-forwarded read
     * can be recorded before its producing write serializes, so
     * resolution cannot happen at record time). Idempotent.
     */
    void finalize();

    bool finalized() const { return finalized_; }

    /**
     * Record into a ring of the last @p events events (0 = unbounded,
     * the default). Must be set before the first record of a stream;
     * survives reset(). See the file comment for what windowed mode
     * does NOT maintain.
     */
    void
    setWindow(std::size_t events)
    {
        assert(events_.empty() && "cannot change window mid-recording");
        window_ = events;
    }

    std::size_t window() const { return window_; }

    /** Events evicted from the ring so far (0 when unbounded). */
    std::uint64_t
    droppedEvents() const
    {
        return window_ == 0 || recorded_ <= window_ ? 0
                                                    : recorded_ - window_;
    }

    /** True when @p id is still addressable via event()/addrId(). */
    bool
    eventRetained(EventId id) const
    {
        return window_ == 0 ||
               static_cast<std::uint64_t>(id) + window_ >= recorded_;
    }

    /**
     * Re-record the retained window into @p dst (a full-mode scratch
     * witness with no sink), in record order, so the post-hoc pipeline
     * can run over it. When droppedEvents() == 0 this reproduces the
     * whole stream byte-identically.
     */
    void replayRetainedInto(ExecWitness &dst) const;

    const Event &event(EventId id) const
    {
        assert(eventRetained(id));
        return events_[window_ == 0
                           ? static_cast<std::size_t>(id)
                           : static_cast<std::size_t>(id) % window_];
    }
    /** Raw event storage: ring-ordered (not id-ordered) when windowed. */
    const std::vector<Event> &events() const { return events_; }
    /** Events recorded (logical count, including evicted ones). */
    std::size_t
    numEvents() const
    {
        return window_ == 0 ? events_.size()
                            : static_cast<std::size_t>(recorded_);
    }

    /** Per-thread events in program order. */
    const std::vector<EventId> &threadEvents(Pid pid) const;

    /** All thread ids with at least one event, ascending. */
    const std::vector<Pid> &threads() const { return threadIds_; }

    /**
     * rf: producing write -> read. A derived view over rfSource(),
     * materialized lazily on first access after finalize() (the hot
     * path streams the dense arrays and never builds it).
     */
    const Relation &
    rf() const
    {
        if (finalized_)
            buildConflictRelations();
        return rf_;
    }

    /** Immediate co edges: write -> next write to same address. */
    const Relation &
    co() const
    {
        if (finalized_)
            buildConflictRelations();
        return co_;
    }

    /** Immediate co successor of write @p w, or kNoEvent. */
    EventId coSuccessor(EventId w) const;

    /** Immediate co predecessor of write @p w, or kNoEvent. */
    EventId coPredecessor(EventId w) const;

    /** Producing write of read @p r, or kNoEvent. */
    EventId rfSource(EventId r) const;

    /**
     * fr (from-read) as immediate edges: read -> first co-successor of
     * its rf source. Together with the co chain this generates full fr
     * transitively.
     *
     * Materializes a fresh Relation; the checker streams the same edges
     * from the dense arrays instead (see frMaterializations()).
     */
    Relation computeFrImmediate() const;

    /** Full fr: read -> every co-successor of its rf source. */
    Relation computeFr() const;

    /**
     * Number of computeFrImmediate()/computeFr() calls since the last
     * reset(). Lets tests assert the checker never materializes fr.
     */
    int frMaterializations() const { return frMaterializations_; }

    /** Init event for @p addr, or kNoEvent if never referenced. */
    EventId initEvent(Addr addr) const;

    /**
     * Dense id of @p e's address within this witness (ids are assigned
     * in first-touch order; see numAddrs()). Lets the checker keep
     * per-address state in flat arrays instead of hash maps.
     */
    AddrId addrId(EventId e) const
    {
        assert(eventRetained(e));
        return addrIdOf_[window_ == 0
                             ? static_cast<std::size_t>(e)
                             : static_cast<std::size_t>(e) % window_];
    }

    /** Number of distinct addresses referenced by recorded events. */
    std::size_t numAddrs() const { return addrTable_.size(); }

    WitnessAnomaly anomaly() const { return anomaly_; }
    const std::string &anomalyInfo() const { return anomalyInfo_; }

    /** All events that form atomic RMW pairs: (read, write). */
    const std::vector<std::pair<EventId, EventId>> &rmwPairs() const
    {
        return rmwPairs_;
    }

    /**
     * Recorded (write event, overwritten value) pairs, one per
     * recordWrite() in record order (streaming replay).
     */
    const std::vector<std::pair<EventId, WriteVal>> &overwrites() const
    {
        return overwrittenBy_;
    }

    /**
     * Attach an observer of the recording path (nullptr to detach).
     * Deliberately NOT cleared by reset(): the sink outlives
     * iterations; callers re-arm its per-stream state instead.
     */
    void setEventSink(WitnessEventSink *sink) { sink_ = sink; }
    WitnessEventSink *eventSink() const { return sink_; }

    /**
     * Clear all recorded state (events and conflict orders), keeping
     * every buffer's capacity for the next iteration.
     */
    void reset();

  private:
    EventId addEvent(const Event &ev);
    /** Resolve @p value at @p addr to its producing write event. */
    EventId resolveWriter(Addr addr, WriteVal value, bool &unknown);
    EventId getOrCreateInit(Addr addr);
    AddrId internAddr(Addr addr);
    void flagAnomaly(WitnessAnomaly kind, std::string info);
    /** Sort per-thread event lists by (poi, sub, id) if needed. */
    void ensurePoSorted() const;
    /** Materialize rf_/co_ from the dense arrays (idempotent). */
    void buildConflictRelations() const;

    std::vector<Event> events_;
    /** Per-thread event lists, indexed directly by Pid. */
    mutable std::vector<std::vector<EventId>> perThread_;
    /** Pids with at least one event, kept sorted as events arrive. */
    std::vector<Pid> threadIds_;
    /** False once some thread recorded out of program order. */
    mutable bool poSorted_ = true;
    /** (value, writer), sorted by value at finalize() for lookups. */
    std::vector<std::pair<WriteVal, EventId>> valueToWriter_;
    bool writersSorted_ = false;
    /** Sorted (address, init event) pairs. */
    std::vector<std::pair<Addr, EventId>> initEvents_;
    /** Distinct addresses in dense-id order; kept sorted for lookup. */
    std::vector<Addr> addrTable_;
    /** Dense AddrId assigned to addrTable_ entries (parallel array). */
    std::vector<AddrId> addrTableIds_;
    /** Per-event dense address id. */
    std::vector<AddrId> addrIdOf_;
    /** Lazily-built Relation views of rf/co (see rf()). */
    mutable Relation rf_;
    mutable Relation co_;
    mutable bool relationsBuilt_ = false;
    /**
     * Dense per-event conflict-order neighbours, kNoEvent if absent.
     * Grown alongside events_; filled by finalize().
     */
    std::vector<EventId> coSucc_;
    std::vector<EventId> coPred_;
    std::vector<EventId> rfSrc_;
    /** (write event, value it overwrote), resolved at finalize(). */
    std::vector<std::pair<EventId, WriteVal>> overwrittenBy_;
    bool finalized_ = false;
    /** Pending read halves of RMW pairs (few outstanding at a time). */
    std::vector<std::pair<Iiid, EventId>> pendingRmwReads_;
    std::vector<std::pair<EventId, EventId>> rmwPairs_;
    WitnessAnomaly anomaly_ = WitnessAnomaly::None;
    std::string anomalyInfo_;
    mutable int frMaterializations_ = 0;
    /** Recording observer; survives reset() (see setEventSink()). */
    WitnessEventSink *sink_ = nullptr;
    /** Ring size in events; 0 = unbounded. Survives reset(). */
    std::size_t window_ = 0;
    /** Total events recorded this stream (windowed mode only). */
    std::uint64_t recorded_ = 0;
    /** Per-ring-slot overwritten value (windowed replay). */
    std::vector<WriteVal> overwrittenOf_;

    static const std::vector<EventId> emptyThread_;
};

} // namespace mcversi::mc

#endif // MCVERSI_MEMCONSISTENCY_EXECWITNESS_HH
