/** @file Unit tests for the cycle-detection graph. */

#include <algorithm>

#include <gtest/gtest.h>

#include "memconsistency/graph.hh"

using namespace mcversi::mc;

TEST(CycleGraph, EmptyAcyclic)
{
    CycleGraph g(0);
    EXPECT_TRUE(g.acyclic());
    CycleGraph g2(5);
    EXPECT_TRUE(g2.acyclic());
}

TEST(CycleGraph, SimpleCycleFound)
{
    CycleGraph g(3);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(2, 0);
    auto cycle = g.findCycle();
    ASSERT_TRUE(cycle.has_value());
    EXPECT_EQ(cycle->size(), 3u);
}

TEST(CycleGraph, SelfLoop)
{
    CycleGraph g(2);
    g.addEdge(1, 1);
    auto cycle = g.findCycle();
    ASSERT_TRUE(cycle.has_value());
    EXPECT_EQ(cycle->size(), 1u);
    EXPECT_EQ((*cycle)[0], 1);
}

TEST(CycleGraph, DagNoCycle)
{
    CycleGraph g(4);
    g.addEdge(0, 1);
    g.addEdge(0, 2);
    g.addEdge(1, 3);
    g.addEdge(2, 3);
    EXPECT_FALSE(g.findCycle().has_value());
}

TEST(CycleGraph, CycleNodesAreOnCycle)
{
    // A tail leading into a cycle: returned nodes must be exactly the
    // cycle, not the tail.
    CycleGraph g(5);
    g.addEdge(0, 1); // tail
    g.addEdge(1, 2);
    g.addEdge(2, 3);
    g.addEdge(3, 4);
    g.addEdge(4, 2); // cycle 2-3-4
    auto cycle = g.findCycle();
    ASSERT_TRUE(cycle.has_value());
    EXPECT_EQ(cycle->size(), 3u);
    EXPECT_EQ(std::count(cycle->begin(), cycle->end(), 0), 0);
    EXPECT_EQ(std::count(cycle->begin(), cycle->end(), 2), 1);
}

TEST(CycleGraph, AddNodeExtends)
{
    CycleGraph g(2);
    const auto n = g.addNode();
    EXPECT_EQ(n, 2);
    EXPECT_EQ(g.numNodes(), 3u);
    g.addEdge(0, n);
    g.addEdge(n, 1);
    g.addEdge(1, 0);
    EXPECT_TRUE(g.findCycle().has_value());
}

TEST(CycleGraph, ParallelEdgesHarmless)
{
    CycleGraph g(2);
    g.addEdge(0, 1);
    g.addEdge(0, 1);
    EXPECT_FALSE(g.findCycle().has_value());
}

TEST(CycleGraph, DeepChainIterative)
{
    const int n = 200000;
    CycleGraph g(static_cast<std::size_t>(n));
    for (int i = 0; i + 1 < n; ++i)
        g.addEdge(i, i + 1);
    EXPECT_FALSE(g.findCycle().has_value());
    g.addEdge(n - 1, 0);
    EXPECT_TRUE(g.findCycle().has_value());
}
