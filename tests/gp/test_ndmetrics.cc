/** @file NDT / NDe / fitaddrs (Definitions 1-3) unit tests. */

#include <gtest/gtest.h>

#include "gp/ndmetrics.hh"

using namespace mcversi::gp;
using mcversi::Addr;

TEST(NdMetrics, DeterministicRunHasNdtOne)
{
    // Every event always ordered after exactly one (init) producer.
    NdAccumulator acc;
    acc.beginRun(4);
    for (int iter = 0; iter < 10; ++iter) {
        for (int e = 0; e < 4; ++e)
            acc.addEdge(initStaticEventId(static_cast<Addr>(e * 16)),
                        staticEventId(static_cast<std::size_t>(e), 0));
    }
    EXPECT_DOUBLE_EQ(acc.ndt(), 1.0);
    EXPECT_EQ(acc.distinctPairs(), 4u);
}

TEST(NdMetrics, EdgesAreDeduplicatedAcrossIterations)
{
    NdAccumulator acc;
    acc.beginRun(2);
    acc.addEdge(1, 2);
    acc.addEdge(1, 2);
    acc.addEdge(1, 2);
    EXPECT_EQ(acc.distinctPairs(), 1u);
}

TEST(NdMetrics, NdePerEvent)
{
    NdAccumulator acc;
    acc.beginRun(3);
    const StaticEventId e0 = staticEventId(0, 0);
    acc.addEdge(10, e0);
    acc.addEdge(11, e0);
    acc.addEdge(12, e0);
    acc.addEdge(10, staticEventId(1, 0));
    EXPECT_EQ(acc.nde(e0), 3u);
    EXPECT_EQ(acc.nde(staticEventId(1, 0)), 1u);
    EXPECT_EQ(acc.nde(staticEventId(2, 0)), 0u);
}

TEST(NdMetrics, FitaddrsSelectsAboveRoundedNdt)
{
    // 4 events; event 0 has 3 producers, others 1 => NDT = 6/4 = 1.5,
    // rounded 2 => only events with NDe > 2 qualify.
    NdAccumulator acc;
    acc.beginRun(4);
    const StaticEventId hot = staticEventId(0, 0);
    acc.addEdge(100, hot);
    acc.addEdge(101, hot);
    acc.addEdge(102, hot);
    for (std::size_t e = 1; e < 4; ++e)
        acc.addEdge(100, staticEventId(e, 0));
    acc.noteEventAddr(hot, 0x40);
    for (std::size_t e = 1; e < 4; ++e)
        acc.noteEventAddr(staticEventId(e, 0),
                          static_cast<Addr>(0x100 + e * 16));

    EXPECT_DOUBLE_EQ(acc.ndt(), 1.5);
    auto fit = acc.fitaddrs();
    ASSERT_EQ(fit.size(), 1u);
    EXPECT_TRUE(fit.count(0x40));
}

TEST(NdMetrics, HighNdtManyRaces)
{
    // Every event saw a different producer in each of 5 iterations.
    NdAccumulator acc;
    acc.beginRun(10);
    for (int iter = 0; iter < 5; ++iter)
        for (std::size_t e = 0; e < 10; ++e)
            acc.addEdge(1000 + iter, staticEventId(e, 0));
    EXPECT_DOUBLE_EQ(acc.ndt(), 5.0);
}

TEST(NdMetrics, BeginRunResets)
{
    NdAccumulator acc;
    acc.beginRun(2);
    acc.addEdge(1, 2);
    acc.noteEventAddr(2, 0x40);
    acc.beginRun(2);
    EXPECT_EQ(acc.distinctPairs(), 0u);
    EXPECT_TRUE(acc.fitaddrs().empty());
}

TEST(NdMetrics, InfoBundlesNdtAndFitaddrs)
{
    // Two events: one with 3 producers, one with 1. NDT = 4/2 = 2,
    // so only NDe = 3 > round(2) qualifies as a fit address.
    NdAccumulator acc;
    acc.beginRun(2);
    const StaticEventId e = staticEventId(0, 0);
    acc.addEdge(7, e);
    acc.addEdge(8, e);
    acc.addEdge(9, e);
    acc.addEdge(7, staticEventId(1, 0));
    acc.noteEventAddr(e, 0x20);
    acc.noteEventAddr(staticEventId(1, 0), 0x30);
    NdInfo info = acc.info();
    EXPECT_DOUBLE_EQ(info.ndt, 2.0);
    EXPECT_TRUE(info.fitaddrs.count(0x20));
    EXPECT_FALSE(info.fitaddrs.count(0x30));
}

TEST(NdMetrics, InitEventIdsDistinctPerAddress)
{
    EXPECT_NE(initStaticEventId(0x10), initStaticEventId(0x20));
    EXPECT_LT(initStaticEventId(0x10), 0);
}

TEST(NdMetrics, ZeroEventsSafe)
{
    NdAccumulator acc;
    acc.beginRun(0);
    EXPECT_DOUBLE_EQ(acc.ndt(), 0.0);
}
