/**
 * @file
 * Streaming (incremental) consistency checking.
 *
 * The post-hoc Checker re-derives fr and rebuilds both constraint
 * graphs from scratch for every finalized witness, and a violation
 * injected early in a test-run is only caught after the whole run has
 * been simulated and recorded. The StreamingChecker instead consumes
 * events *as the simulation commits them* (via the ExecWitness event
 * sink) and maintains both constraint graphs online:
 *
 *  - the sc-per-location graph (po-loc | rf | co | fr) over per
 *    (thread, address) chains,
 *  - the ghb graph (ppo | fences | rf[e] | co | fr) via per-order
 *    incremental edge strategies closure-equivalent to the batch
 *    ProfileModel engine, for any validated ModelProfile
 *    (SC/TSO/PSO/RMO/RC),
 *
 * with Pearce-Kelly dynamic topological ordering (incremental.hh)
 * detecting a cycle at the exact edge insertion -- and therefore the
 * exact event -- that closes it. rf is resolved online from write
 * values (store-forwarded reads can arrive before their producing
 * write: such reads pend on the value and resolve when the write
 * serializes), co from overwritten values, and fr edges are emitted as
 * soon as an rf source gains a co-successor. RMW atomicity and co
 * forks are likewise checked at resolution time.
 *
 * Detection semantics: violationDetected() flips at the first event
 * whose constraints close a cycle (or violate atomicity /
 * well-formedness); eventsUntilDetection() reports how many recorded
 * events the checker had consumed at that point. In throw-on-violation
 * mode the sink throws StreamingViolation out of the recording call so
 * the simulation stops at the violating access instead of running the
 * iteration to quiescence.
 *
 * Verdict parity: Checker::checkStreamed() composes this object with
 * the post-hoc pipeline -- witness anomalies and the model-salted
 * verdict cache behave exactly as in Checker::check(), a clean stream
 * short-circuits the full cycle analysis, and a dirty stream falls
 * back to the full analysis so diagnostics stay byte-identical to
 * post-hoc checking. earlyStopResult() renders the streaming-native
 * verdict for stopped-early (un-finalizable) witness prefixes.
 *
 * All state is capacity-preserving and generation-stamped: begin() is
 * O(touched state) and steady-state iterations allocate nothing.
 */

#ifndef MCVERSI_MEMCONSISTENCY_STREAMING_CHECKER_HH
#define MCVERSI_MEMCONSISTENCY_STREAMING_CHECKER_HH

#include <cstdint>
#include <exception>
#include <vector>

#include "memconsistency/checker.hh"
#include "memconsistency/execwitness.hh"
#include "memconsistency/incremental.hh"
#include "memconsistency/models/profile.hh"

namespace mcversi::mc {

/**
 * Thrown by the event sink (in throw-on-violation mode) to stop the
 * simulation at the violating event. Deliberately NOT derived from
 * std::runtime_error: the workload's livelock watchdog catches
 * runtime_error and must not swallow a detected violation.
 */
class StreamingViolation : public std::exception
{
  public:
    const char *
    what() const noexcept override
    {
        return "streaming checker: consistency violation detected";
    }
};

/** Online checker maintaining the constraint graphs incrementally. */
class StreamingChecker final : public WitnessEventSink
{
  public:
    /** @p profile is validated (throws std::invalid_argument). */
    explicit StreamingChecker(ModelProfile profile);

    /** Start a new stream (new witness); keeps all capacity. */
    void begin();

    /**
     * Throw StreamingViolation out of onRecord() when a violation is
     * detected (simulation early stop). Off by default: replay/bench
     * callers poll violationDetected() instead.
     */
    void setThrowOnViolation(bool enable) { throwOnViolation_ = enable; }

    /** WitnessEventSink: consume one recorded event. */
    void onRecord(const ExecWitness &ew, EventId id,
                  WriteVal overwritten) override;

    /**
     * Feed an already-recorded witness through the sink in record
     * order, init events excluded (tests and benches). Stops consuming
     * at the first detected violation. Calls begin() first.
     */
    void replayRecorded(const ExecWitness &ew);

    bool
    violationDetected() const
    {
        return violationKind_ != CheckResult::Kind::Ok;
    }

    CheckResult::Kind violationKind() const { return violationKind_; }

    /** Recorded events consumed so far (stops counting at detection). */
    std::uint64_t eventsConsumed() const { return eventsConsumed_; }

    /**
     * True when every consumed read value and overwritten value has
     * resolved to a producing write (or init). A clean *and* complete
     * stream (every recorded event consumed) proves the finalized
     * witness would be anomaly-free and pass the batch analysis, so
     * Checker::checkStreamed() skips finalize() and the full check
     * entirely on that path.
     */
    bool streamComplete() const { return pending_ == 0; }

    /**
     * Recorded events the checker had consumed when the violation was
     * detected (detection latency in events); 0 if none detected.
     */
    std::uint64_t eventsUntilDetection() const { return detectionEvents_; }

    /**
     * Render the detected violation of a stopped-early stream. Unlike
     * post-hoc diagnostics this works on an un-finalized witness (a
     * stopped prefix cannot be finalized: store-forwarded reads may
     * still await their producing writes). Requires violationDetected().
     */
    CheckResult earlyStopResult(const ExecWitness &ew) const;

    const ModelProfile &profile() const { return profile_; }

  private:
    using Node = IncrementalGraph::Node;
    static constexpr Node kNoNode = -1;

    /** Internal control-flow sentinel: a violation was recorded. */
    struct Detected
    {
    };

    /**
     * Open-addressing u64 -> int32 map with O(1) generation-stamped
     * clear; capacity only ever grows. Values are dense indices the
     * caller assigns (fresh entries start at -1).
     */
    class StampedMap
    {
      public:
        void
        clear()
        {
            if (++gen_ == 0) {
                // Stamp wraparound (once per 2^32 streams): stale
                // slots could alias the restarted counter, so drop
                // them wholesale (capacity is kept).
                slots_.clear();
                gen_ = 1;
            }
            live_ = 0;
        }
        std::int32_t &findOrInsert(std::uint64_t key);

      private:
        struct Slot
        {
            std::uint64_t key = 0;
            std::uint32_t gen = 0;
            std::int32_t val = -1;
        };
        void grow();
        std::vector<Slot> slots_;
        std::size_t live_ = 0;
        std::uint32_t gen_ = 1;
    };

    /** Per-thread po element: total order (poi, slot, node). */
    struct Elem
    {
        std::int32_t poi;
        /** 0 pre-fence, 1 read part, 2 write part, 3 post-fence. */
        std::uint8_t slot;
        Node node;

        friend auto
        operator<=>(const Elem &a, const Elem &b)
        {
            if (const auto c = a.poi <=> b.poi; c != 0)
                return c;
            if (const auto c = a.slot <=> b.slot; c != 0)
                return c;
            return a.node <=> b.node;
        }
    };

    struct ThreadState
    {
        std::vector<Elem> reads;
        std::vector<Elem> writes;
        std::vector<Elem> fences;
        /** Acquire (RMW read) / release (RMW write) elems (acqrel). */
        std::vector<Elem> acqs;
        std::vector<Elem> rels;
        /** Outstanding RMW read halves awaiting their write (poi). */
        std::vector<std::pair<std::int32_t, Node>> pendingRmw;
        /** Per-address po-loc chain slot (witness AddrId -> chains_). */
        std::vector<std::int32_t> chainAt;
        /** Registered in touchedPids_ this stream (see threadOf()). */
        bool touched = false;

        void clear();
    };

    struct ValueInfo
    {
        /** First write producing this value, or kNoNode. */
        Node writer = kNoNode;
        /** Intrusive list heads of nodes pending on the writer. */
        Node pendingReadsHead = kNoNode;
        Node pendingCoHead = kNoNode;
    };

    /** Per-node metadata (one record appended by newNode()). */
    struct NodeMeta
    {
        EventId event;
        Pid pid;
        /** Address of an init node; kNoAddr for events and fences. */
        Addr aux;
        Node rfSrc;
        Node coPred;
        Node coSucc;
        /** Reads rf-bound to this write awaiting a co-successor (fr). */
        Node readersHead;
        Node readerNext;
        Node pendingReadNext;
        Node pendingCoNext;
        Node pairRead;
        Node pairWrite;
    };

    // -- node space (shared by both graphs) ---------------------------
    Node newNode(EventId ev, Pid pid, Addr aux);
    Node initNodeOf(AddrId aid, Addr addr);

    // -- event ingestion ----------------------------------------------
    void ingest(const ExecWitness &ew, EventId id, WriteVal overwritten);
    void insertPoLoc(ThreadState &t, AddrId aid, Elem el);
    void insertRead(ThreadState &t, Elem el, bool rmw);
    void insertWrite(ThreadState &t, Elem el, bool rmw);
    void insertFence(ThreadState &t, Elem el);
    ThreadState &threadOf(Pid pid);

    // -- online conflict orders ---------------------------------------
    std::int32_t valueInfoIdx(WriteVal v);
    void resolveRead(Node r, WriteVal v, AddrId aid, Addr addr);
    void registerWrite(Node w, WriteVal v, WriteVal overwritten,
                       AddrId aid, Addr addr);
    void bindRf(Node r, Node w);
    void bindCo(Node prev, Node w);
    void checkPairAtomicity(Node r, Node w);

    // -- edge insertion / violation recording -------------------------
    void edgeU(Node from, Node to);
    void edgeG(Node from, Node to);
    [[noreturn]] void fail(CheckResult::Kind kind);
    std::string nodeString(const ExecWitness &ew, Node n) const;

    ModelProfile profile_;
    // Edge-strategy flags (mirrors the batch engine's derivation).
    bool chainRR_ = false;
    bool chainWW_ = false;
    bool orderRW_ = false;
    bool orderWR_ = false;
    bool full_ = false;
    bool acqrel_ = false;
    bool pairEdge_ = false;
    bool rfiGlobal_ = false;

    IncrementalGraph uniproc_;
    IncrementalGraph ghb_;

    // Node metadata, appended by newNode().
    std::vector<NodeMeta> nodes_;

    // Value resolution. Addresses need no map of their own: the
    // witness already interns them to dense AddrIds at record time.
    StampedMap valueMap_;
    std::vector<ValueInfo> valueInfo_;
    std::size_t valueInfoCount_ = 0;
    /** Init node per witness AddrId, grown on demand. */
    std::vector<Node> initNode_;

    // Per-thread program-order state.
    std::vector<ThreadState> threads_;
    std::vector<Pid> touchedPids_;

    /** Pool of per (thread, address) po-loc chains (see chainAt). */
    std::vector<std::vector<Elem>> chains_;
    std::size_t chainCount_ = 0;

    // Stream / violation state.
    bool throwOnViolation_ = false;
    std::uint64_t eventsConsumed_ = 0;
    std::uint64_t detectionEvents_ = 0;
    /** Unresolved pending reads + co predecessors (streamComplete()). */
    std::uint32_t pending_ = 0;
    CheckResult::Kind violationKind_ = CheckResult::Kind::Ok;
    /** Nodes carrying the non-cycle diagnostics (atomicity / fork). */
    Node violA_ = kNoNode;
    Node violB_ = kNoNode;
    Node violC_ = kNoNode;
};

} // namespace mcversi::mc

#endif // MCVERSI_MEMCONSISTENCY_STREAMING_CHECKER_HH
