/**
 * @file
 * POSIX filesystem helpers for the campaign fleet.
 *
 * Everything here is crash-safety plumbing: atomic whole-file
 * replacement (write-to-temp + fsync + rename, so readers never see a
 * torn file), recursive directory creation for run directories, and
 * bounded range reads used to capture a failed worker's stderr tail.
 */

#ifndef MCVERSI_FLEET_FS_HH
#define MCVERSI_FLEET_FS_HH

#include <cstdint>
#include <string>

namespace mcversi::fleet {

/**
 * Atomically replace @p path with @p content: the bytes are written to
 * "<path>.tmp", fsync'd, and renamed over @p path (the containing
 * directory is fsync'd too, so the rename itself is durable). A crash
 * at any point leaves either the old file or the new file, never a
 * torn mixture. Returns false (with @p err set, if given) on failure.
 */
bool writeFileAtomic(const std::string &path, const std::string &content,
                     std::string *err = nullptr);

/** mkdir -p: create @p path and any missing parents (mode 0755). */
bool ensureDir(const std::string &path, std::string *err = nullptr);

/** True if @p path names an existing regular file with size > 0. */
bool nonEmptyFileExists(const std::string &path);

/** Size of @p path in bytes, or 0 if it does not exist. */
std::uint64_t fileSize(const std::string &path);

/**
 * Read up to @p max_bytes from @p path starting at @p offset (used to
 * capture only the failing cell's slice of a worker stderr log).
 * Returns what could be read; missing files read as empty.
 */
std::string readFileRange(const std::string &path, std::uint64_t offset,
                          std::size_t max_bytes);

/** Read a whole file into a string; returns false if it cannot open. */
bool readFile(const std::string &path, std::string &out,
              std::string *err = nullptr);

} // namespace mcversi::fleet

#endif // MCVERSI_FLEET_FS_HH
