/**
 * @file
 * End-to-end pipeline smoke test: the fastest possible exercise of the
 * whole McVerSi stack (GP test generation -> workload -> simulator ->
 * witness recording -> axiomatic checker), in both polarities:
 *
 *  - a short GA campaign on the clean MESI system must report no
 *    violation (no false positives), while actually running tests and
 *    accumulating coverage;
 *  - the same campaign on a bug-injected system must manifest the bug
 *    and have the checker flag it.
 *
 * Deliberately small budgets: this is the first test to run after a
 * build to tell "the pipeline works" from "the pipeline is broken",
 * in seconds. Deeper coverage lives in test_clean_system.cc and
 * test_bug_manifestation.cc.
 */

#include <gtest/gtest.h>

#include "host/harness.hh"
#include "sim/bugs.hh"

using namespace mcversi;
using namespace mcversi::host;

namespace {

/** One small, fast GA campaign; returns the harness result. */
HarnessResult
runCampaign(sim::BugId bug, std::uint64_t max_runs)
{
    VerificationHarness::Params params;
    params.system.protocol = sim::Protocol::Mesi;
    params.system.bug = bug;
    params.system.seed = 20260728;
    params.gen.testSize = 128;
    params.gen.iterations = 4;
    params.gen.memSize = 1024;
    params.workload.iterations = params.gen.iterations;

    gp::GaParams ga;
    ga.population = 16;
    GaSource source(ga, params.gen, 11,
                    gp::SteadyStateGa::XoMode::Selective);
    VerificationHarness harness(params, source);

    Budget budget;
    budget.maxTestRuns = max_runs;
    return harness.run(budget);
}

} // namespace

TEST(PipelineSmoke, CleanMesiSystemReportsNoViolation)
{
    const HarnessResult result = runCampaign(sim::BugId::None, 60);

    EXPECT_FALSE(result.bugFound)
        << "false positive on the clean system: " << result.detail;
    EXPECT_EQ(result.testRuns, 60u);
    EXPECT_GT(result.simTicks, 0u);
    EXPECT_GT(result.eventsExecuted, 0u);
    EXPECT_GT(result.totalCoverage, 0.0);
    // The GA evaluated every test-run it generated.
    EXPECT_EQ(result.ndtHistory.size(), 60u);
}

TEST(PipelineSmoke, InjectedBugManifestsAndIsFlagged)
{
    // SQ+no-FIFO (store queue drains out of order) races early and
    // often, making it the cheapest bug to smoke out.
    const HarnessResult result =
        runCampaign(sim::BugId::SqNoFifo, 1500);

    EXPECT_TRUE(result.bugFound)
        << "injected bug not detected in " << result.testRuns
        << " test-runs";
    EXPECT_FALSE(result.detail.empty());
    EXPECT_GE(result.testRunsToBug, 1u);
    EXPECT_LE(result.testRunsToBug, result.testRuns);
}
