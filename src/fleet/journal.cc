#include "fleet/journal.hh"

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include <fcntl.h>
#include <unistd.h>

#include "fleet/fs.hh"

namespace mcversi::fleet {

namespace {

constexpr const char *kMagic = "MCVJ1";

std::array<std::uint32_t, 256>
makeCrcTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

/**
 * Parse one journal line (without its trailing newline). Returns true
 * and sets @p payload only if the magic, the length prefix, and the
 * checksum all agree.
 */
bool
parseLine(const std::string &line, std::string &payload)
{
    // "MCVJ1 <len> <crc8hex> <payload>"
    const std::size_t magic_len = std::strlen(kMagic);
    if (line.size() < magic_len + 1 ||
        line.compare(0, magic_len, kMagic) != 0 ||
        line[magic_len] != ' ') {
        return false;
    }
    std::size_t pos = magic_len + 1;
    const std::size_t len_end = line.find(' ', pos);
    if (len_end == std::string::npos)
        return false;
    std::uint64_t len = 0;
    for (std::size_t i = pos; i < len_end; ++i) {
        const char c = line[i];
        if (c < '0' || c > '9' || i - pos > 9)
            return false;
        len = len * 10 + static_cast<std::uint64_t>(c - '0');
    }
    pos = len_end + 1;
    const std::size_t crc_end = line.find(' ', pos);
    if (crc_end == std::string::npos || crc_end - pos != 8)
        return false;
    std::uint32_t crc = 0;
    for (std::size_t i = pos; i < crc_end; ++i) {
        const char c = line[i];
        std::uint32_t digit = 0;
        if (c >= '0' && c <= '9')
            digit = static_cast<std::uint32_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            digit = static_cast<std::uint32_t>(c - 'a') + 10;
        else
            return false;
        crc = (crc << 4) | digit;
    }
    const std::string body = line.substr(crc_end + 1);
    if (body.size() != len || crc32(body) != crc)
        return false;
    payload = body;
    return true;
}

} // namespace

std::uint32_t
crc32(const std::string &data)
{
    static const std::array<std::uint32_t, 256> table = makeCrcTable();
    std::uint32_t c = 0xFFFFFFFFu;
    for (const char ch : data)
        c = table[(c ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

std::string
journalLine(const std::string &payload)
{
    char header[32];
    std::snprintf(header, sizeof(header), "%s %zu %08x ", kMagic,
                  payload.size(), crc32(payload));
    std::string line = header;
    line += payload;
    line += '\n';
    return line;
}

JournalReadResult
parseJournal(const std::string &content)
{
    JournalReadResult result;
    std::size_t pos = 0;
    while (pos < content.size()) {
        const std::size_t eol = content.find('\n', pos);
        if (eol == std::string::npos) {
            // No terminating newline: the final append was torn.
            result.droppedTornTail = true;
            break;
        }
        const std::string line = content.substr(pos, eol - pos);
        pos = eol + 1;
        std::string payload;
        if (parseLine(line, payload)) {
            result.payloads.push_back(std::move(payload));
        } else if (pos >= content.size()) {
            // Invalid but newline-terminated final line: still treat
            // as a torn tail (a crash can land between the payload
            // write reaching the disk and the full line doing so).
            result.droppedTornTail = true;
        } else {
            ++result.corruptSkipped;
        }
    }
    return result;
}

JournalReadResult
readJournal(const std::string &path)
{
    std::string content;
    std::string err;
    if (!readFile(path, content, &err))
        throw std::runtime_error("journal: " + err);
    return parseJournal(content);
}

JournalWriter::~JournalWriter()
{
    close();
}

void
JournalWriter::open(const std::string &path)
{
    close();
    fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd_ < 0) {
        throw std::runtime_error("journal: cannot open " + path + ": " +
                                 std::strerror(errno));
    }
    path_ = path;
}

void
JournalWriter::append(const std::string &payload)
{
    if (fd_ < 0)
        throw std::runtime_error("journal: append on closed writer");
    if (payload.find('\n') != std::string::npos)
        throw std::runtime_error("journal: payload contains a newline");
    const std::string line = journalLine(payload);
    std::size_t written = 0;
    while (written < line.size()) {
        const ssize_t n =
            ::write(fd_, line.data() + written, line.size() - written);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throw std::runtime_error("journal: write failed for " +
                                     path_ + ": " + std::strerror(errno));
        }
        written += static_cast<std::size_t>(n);
    }
    if (::fsync(fd_) != 0) {
        throw std::runtime_error("journal: fsync failed for " + path_ +
                                 ": " + std::strerror(errno));
    }
}

void
JournalWriter::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

} // namespace mcversi::fleet
