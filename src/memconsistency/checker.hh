/**
 * @file
 * Polynomial-time MCM checker over a recorded candidate execution (§4.1).
 *
 * With full conflict-order visibility (rf and co observed, fr derived),
 * checking reduces to:
 *
 *   1. witness well-formedness (no unknown values, co total per address),
 *   2. sc-per-location: acyclic(po-loc | rf | co | fr),
 *   3. RMW atomicity: the write of an atomic pair immediately
 *      co-follows the read's rf source,
 *   4. global happens-before: acyclic(ppo | fences | rf[e] | co | fr),
 *
 * each a single DFS over generator edges.
 *
 * The checker runs once per iteration of every test-run, so it never
 * materializes intermediate Relations: communication edges (rf, co, and
 * fr -- the latter derived exactly once per check) stream from the
 * witness's dense arrays straight into two scratch CycleGraphs owned by
 * the checker and reused across checks. A Checker is therefore NOT
 * thread-safe; concurrent campaigns own one checker each.
 *
 * Optionally the checker memoizes verdicts per witness equivalence
 * class (enableVerdictCache): campaigns re-observe the same
 * interleaving shapes constantly, and a cached Ok verdict settles a
 * repeat check for the cost of a signature hash instead of the full
 * cycle analysis. See signature.hh / verdict_cache.hh.
 */

#ifndef MCVERSI_MEMCONSISTENCY_CHECKER_HH
#define MCVERSI_MEMCONSISTENCY_CHECKER_HH

#include <memory>
#include <string>
#include <vector>

#include "memconsistency/arch.hh"
#include "memconsistency/execwitness.hh"
#include "memconsistency/signature.hh"
#include "memconsistency/verdict_cache.hh"

namespace mcversi::mc {

class StreamingChecker;

/**
 * When a harness checks each candidate execution: post-hoc on the
 * finalized witness (the default), or streaming -- incrementally as
 * events are recorded, stopping the simulation at the violating event
 * (see streaming_checker.hh).
 */
enum class CheckMode : std::uint8_t {
    Posthoc,
    Streaming,
};

/** Canonical lower-case name, e.g. "posthoc". */
const char *checkModeName(CheckMode mode);

/** Parse a canonical name; throws std::invalid_argument. */
CheckMode parseCheckMode(const std::string &name);

/** Verdict of checking one candidate execution. */
struct CheckResult
{
    enum class Kind : std::uint8_t {
        Ok,
        /** Witness ill-formed (unknown value / co fork): data-loss bug. */
        WitnessAnomaly,
        /** Per-location coherence violated. */
        UniprocViolation,
        /** Atomic RMW pair not atomic. */
        AtomicityViolation,
        /** Global happens-before cycle: the MCM proper is violated. */
        GhbViolation,
    };

    Kind kind = Kind::Ok;
    std::string message;
    /** Events on the offending cycle (empty for non-cycle violations). */
    std::vector<EventId> cycle;

    bool ok() const { return kind == Kind::Ok; }
    static const char *kindName(Kind k);
};

/** Checks executions against one architecture. */
class Checker
{
  public:
    explicit Checker(std::unique_ptr<Architecture> arch)
        : arch_(std::move(arch))
    {
        // Key memoized verdicts by model: a verdict cached under one
        // architecture must never short-circuit a check under another.
        signatureScratch_.setModelSalt(modelSalt(arch_->name()));
    }

    /**
     * Check one candidate execution; first violated constraint wins.
     * Finalizes the witness (resolves conflict orders) if needed.
     */
    CheckResult check(ExecWitness &ew) const;

    /**
     * Settle a fully-streamed witness: like check(), but the cycle
     * analysis is skipped when the streaming checker saw a clean
     * stream (the incremental graphs already proved acyclicity). A
     * dirty stream falls back to the full analysis so diagnostics are
     * byte-identical to post-hoc checking. @p sc must have consumed
     * every recorded event of @p ew under this checker's model;
     * anomaly handling and the verdict cache behave exactly as in
     * check(). A windowed witness (ew.window() != 0) cannot finalize:
     * a clean stream settles from the streaming verdict alone (with a
     * truncation note when constraints were dropped), a violation with
     * the whole stream still in the ring replays it into a full-mode
     * scratch witness for byte-identical diagnostics, and a violation
     * past the ring's reach reports the streaming-native verdict
     * flagged as window-truncated. The verdict cache is bypassed.
     */
    CheckResult checkStreamed(ExecWitness &ew,
                              const StreamingChecker &sc) const;

    /**
     * Enable collective checking: memoize verdicts per witness
     * equivalence class (see signature.hh). Only Ok verdicts
     * short-circuit the full analysis -- an Ok check carries no
     * diagnostics, so the cached answer is byte-identical to a fresh
     * one; violation hits still re-run the check to rebuild the
     * message and cycle in the current witness's event ids. Anomalous
     * witnesses always bypass the cache.
     */
    void enableVerdictCache(VerdictCache::Config config = {});
    void disableVerdictCache();

    /** The memoization cache, or nullptr when disabled. */
    VerdictCache *verdictCache() const { return cache_.get(); }

    const Architecture &arch() const { return *arch_; }

  private:
    /** The three-phase cycle analysis, bypassing the verdict cache. */
    CheckResult fullCheck(const ExecWitness &ew) const;
    CheckResult checkUniproc(const ExecWitness &ew) const;
    CheckResult checkAtomicity(const ExecWitness &ew) const;
    CheckResult checkGhb(const ExecWitness &ew) const;

    /** Stream co edges (immediate co-predecessor chains) into @p g. */
    static void addCoEdges(const ExecWitness &ew, CycleGraph &g);
    /** Stream the shared per-check fr edges into @p g. */
    void addFrEdges(CycleGraph &g) const;

    static CheckResult cycleResult(CheckResult::Kind kind,
                                   const ExecWitness &ew,
                                   const std::vector<CycleGraph::Node> &cyc,
                                   const std::string &constraint);

    std::unique_ptr<Architecture> arch_;

    // Per-check scratch, reused so steady-state checks are
    // allocation-free (the reason a Checker is not thread-safe).
    mutable CycleGraph uniprocScratch_{0};
    mutable CycleGraph ghbScratch_{0};
    /** Immediate fr edges, derived once per check() from rf and co. */
    mutable std::vector<std::pair<EventId, EventId>> frScratch_;
    /**
     * Last same-address event per AddrId during the po-loc pass. An
     * entry is valid only if its stamp matches the current thread's
     * stamp, so per-thread resets are O(1) instead of O(numAddrs).
     */
    mutable std::vector<EventId> lastAtAddr_;
    mutable std::vector<std::uint64_t> addrStamp_;
    mutable std::uint64_t stamp_ = 0;

    // Collective checking (optional): signature scratch plus the
    // verdict cache. Mutable like the other scratch -- memoization is
    // an implementation detail of the logically-const check().
    mutable SignatureBuilder signatureScratch_;
    mutable std::unique_ptr<VerdictCache> cache_;
    /**
     * Full-mode witness the retained window of a windowed stream is
     * replayed into for post-hoc diagnostics (see checkStreamed()).
     */
    mutable ExecWitness windowScratch_;
};

} // namespace mcversi::mc

#endif // MCVERSI_MEMCONSISTENCY_CHECKER_HH
