/**
 * @file
 * Verification harness: the full generate-execute-verify-reset loop.
 *
 * One harness = one simulation run of §5.1: a fresh system with a given
 * protocol, bug injection and seed, driven by a test source until a bug
 * is found or the budget (test-runs and/or wall-clock) is exhausted.
 * The simulation runs continuously, loading tests on-the-fly; coverage
 * counters, write-value IDs and RNG streams all persist across tests.
 */

#ifndef MCVERSI_HOST_HARNESS_HH
#define MCVERSI_HOST_HARNESS_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "gp/fitness.hh"
#include "host/sources.hh"
#include "host/workload.hh"
#include "memconsistency/checker.hh"
#include "sim/system.hh"

namespace mcversi::host {

/** Stop conditions for a harness run. */
struct Budget
{
    /** Max test-runs (0 = unlimited). */
    std::uint64_t maxTestRuns = 0;
    /** Max wall-clock seconds (0 = unlimited). */
    double maxWallSeconds = 0.0;
    /**
     * Cooperative cancellation hook, polled between test-runs (and at
     * batch barriers / litmus entries). Returning true stops the run
     * as if the budget were exhausted. Fleet workers use this to drain
     * cleanly on SIGTERM instead of being killed mid-cell; note that a
     * run cut short this way reports fewer test-runs than an
     * uninterrupted one, so callers that need deterministic summaries
     * must discard a cancelled run's result (the fleet does).
     */
    std::function<bool()> interrupted;

    bool
    isInterrupted() const
    {
        return interrupted && interrupted();
    }
};

/** Outcome of a harness run. */
struct HarnessResult
{
    bool bugFound = false;
    std::string detail;
    std::uint64_t testRuns = 0;
    std::uint64_t testRunsToBug = 0;
    /**
     * Streaming check mode: events the checker had consumed when the
     * bug-triggering violation was detected (0 post-hoc or bug-free).
     */
    std::uint64_t eventsUntilDetection = 0;
    double wallSeconds = 0.0;
    double wallSecondsToBug = 0.0;
    double checkSeconds = 0.0;
    std::uint64_t simTicks = 0;
    std::uint64_t eventsExecuted = 0;
    /** Kernel events dispatched (sim-throughput observability). */
    std::uint64_t simEvents = 0;
    /** Network messages injected (sim-throughput observability). */
    std::uint64_t messagesSent = 0;
    /** NDT of each evaluated test-run, in order. */
    std::vector<double> ndtHistory;
    /** Final total structural coverage per protocol prefix. */
    double totalCoverage = 0.0;

    // -- Collective-checking metrics (deterministic; timing-free) -----
    // Zero when the verdict cache is off. ParallelHarness sums its
    // per-lane caches, so the totals are byte-identical for any
    // eval-thread count.
    /** Verdict-cache lookups that hit a known equivalence class. */
    std::uint64_t checkCacheHits = 0;
    /** Verdict-cache lookups that required a full check. */
    std::uint64_t checkCacheMisses = 0;
    /** Distinct interleaving (equivalence-class) signatures seen. */
    std::uint64_t distinctInterleavings = 0;

    double
    checkCacheHitRate() const
    {
        const std::uint64_t lookups = checkCacheHits + checkCacheMisses;
        return lookups == 0 ? 0.0
                            : static_cast<double>(checkCacheHits) /
                                  static_cast<double>(lookups);
    }

    // -- Generation metrics (deterministic; timing-free) --------------
    /** Final mean population fitness (0 for fitness-free sources). */
    double meanFitness = 0.0;
    /**
     * Mean population fitness sampled at batch barriers (ParallelHarness
     * only; capped at kMaxTrajectorySamples). Deterministic for a given
     * spec: depends only on seed, batch size and test-run budget.
     */
    std::vector<double> fitnessTrajectory;

    /** Aggregate generate->evaluate throughput (timing-dependent). */
    double
    testsPerSec() const
    {
        return wallSeconds > 0.0
                   ? static_cast<double>(testRuns) / wallSeconds
                   : 0.0;
    }

    static constexpr std::size_t kMaxTrajectorySamples = 512;
};

/** One verification campaign on one simulated system. */
class VerificationHarness
{
  public:
    struct Params
    {
        sim::SystemConfig system{};
        /** Test-memory geometry (memSize/stride drive the layout). */
        gp::GenParams gen{};
        Workload::Params workload{};
        gp::AdaptiveCoverageFitness::Params fitness{};
        /**
         * Registered consistency model the checker verifies executions
         * against (memconsistency/models/registry.hh).
         */
        std::string model = "tso";
        /** Record per-run NDT history (costs memory on long runs). */
        bool recordNdt = true;
        /**
         * Verdict-cache capacity in entries (collective checking);
         * 0 disables memoization. Parallel harnesses size one cache
         * per lane with this many entries.
         */
        std::size_t checkCacheEntries = 4096;
    };

    VerificationHarness(Params params, TestSource &source);

    /** Run until a bug is found or the budget is exhausted. */
    HarnessResult run(const Budget &budget);

    /** Run exactly one test through the workload (building block). */
    RunResult runOne(const gp::Test &test,
                     const ConditionFn &condition = nullptr);

    sim::System &system() { return *system_; }
    Workload &workload() { return *workload_; }
    mc::Checker &checker() { return *checker_; }
    gp::AdaptiveCoverageFitness &fitness() { return fitness_; }

  private:
    Params params_;
    TestSource &source_;
    std::unique_ptr<sim::System> system_;
    std::unique_ptr<mc::Checker> checker_;
    std::unique_ptr<Workload> workload_;
    gp::AdaptiveCoverageFitness fitness_;
};

/** GenParams-consistent layout helper. */
TestMemLayout layoutFor(const gp::GenParams &gen);

} // namespace mcversi::host

#endif // MCVERSI_HOST_HARNESS_HH
