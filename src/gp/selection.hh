/**
 * @file
 * Shared steady-state selection/replacement primitives.
 *
 * SteadyStateGa and the island-model EvolutionEngine must make
 * identical decisions draw-for-draw (the engine's single-island
 * configuration is pinned byte-equal to the serial GA), so the
 * tournament and delete-oldest policies live here once, templated over
 * the individual representation (heap-backed Individual vs pool-backed
 * PoolIndividual — anything with `fitness` and `bornAt`).
 */

#ifndef MCVERSI_GP_SELECTION_HH
#define MCVERSI_GP_SELECTION_HH

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <vector>

#include "common/rng.hh"

namespace mcversi::gp {

/**
 * Tournament of size @p tournament_size over @p population; returns
 * the index of the fittest sampled member. Draws exactly
 * @p tournament_size times from @p rng.
 */
template <typename Ind>
std::size_t
tournamentSelect(const std::vector<Ind> &population,
                 int tournament_size, Rng &rng)
{
    assert(!population.empty());
    std::size_t best = static_cast<std::size_t>(
        rng.below(population.size()));
    for (int i = 1; i < tournament_size; ++i) {
        const std::size_t cand = static_cast<std::size_t>(
            rng.below(population.size()));
        if (population[cand].fitness > population[best].fitness)
            best = cand;
    }
    return best;
}

/** Iterator to the member with the smallest birth stamp. */
template <typename Ind>
typename std::vector<Ind>::iterator
oldestMember(std::vector<Ind> &population)
{
    return std::min_element(population.begin(), population.end(),
                            [](const Ind &a, const Ind &b) {
                                return a.bornAt < b.bornAt;
                            });
}

} // namespace mcversi::gp

#endif // MCVERSI_GP_SELECTION_HH
