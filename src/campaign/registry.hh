/**
 * @file
 * Named test-generator registry.
 *
 * Replaces hand-constructed RandomSource/GaSource wiring with named,
 * extensible registrations: a CampaignSpec names its generator
 * ("McVerSi-ALL", "McVerSi-Std.XO", "McVerSi-RAND", "diy-litmus") and
 * the registry builds the matching host::TestSource from the spec.
 * Lookup is case-insensitive and alias-aware ("rand" == "McVerSi-RAND").
 *
 * Litmus-style generators are registered as a kind of their own: they
 * have no TestSource (the litmus runner owns the whole loop), and the
 * CampaignRunner dispatches on isLitmus() instead.
 */

#ifndef MCVERSI_CAMPAIGN_REGISTRY_HH
#define MCVERSI_CAMPAIGN_REGISTRY_HH

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "campaign/spec.hh"
#include "host/sources.hh"

namespace mcversi::campaign {

/** Process-wide registry of named test-generator factories. */
class SourceRegistry
{
  public:
    using Factory = std::function<std::unique_ptr<host::TestSource>(
        const CampaignSpec &)>;

    /** The singleton, pre-populated with the paper's generators. */
    static SourceRegistry &instance();

    /**
     * Register a generator. @p name is the canonical (display) name;
     * @p aliases resolve to it case-insensitively. Throws
     * std::invalid_argument on a duplicate name/alias.
     */
    void add(const std::string &name, Factory factory,
             const std::vector<std::string> &aliases = {});

    /** Register a litmus-kind generator (no TestSource factory). */
    void addLitmus(const std::string &name,
                   const std::vector<std::string> &aliases = {});

    bool has(const std::string &name) const;

    /** Canonical display name; throws std::invalid_argument if unknown. */
    std::string canonicalName(const std::string &name) const;

    /** True if @p name resolves to a litmus-kind generator. */
    bool isLitmus(const std::string &name) const;

    /**
     * Build the named generator's TestSource from @p spec. Throws
     * std::invalid_argument if unknown or litmus-kind.
     */
    std::unique_ptr<host::TestSource>
    make(const std::string &name, const CampaignSpec &spec) const;

    /** Canonical names in registration order. */
    std::vector<std::string> names() const;

  private:
    SourceRegistry();

    struct Entry
    {
        std::string name;
        Factory factory;
        bool litmus = false;
    };

    const Entry &lookup(const std::string &name) const;
    void addEntry(Entry entry, const std::vector<std::string> &aliases);

    mutable std::mutex mutex_;
    std::vector<Entry> entries_;
    /** Lowercased name/alias -> index into entries_. */
    std::unordered_map<std::string, std::size_t> index_;
};

/**
 * Resolve a generator-list token: "all" => every registered generator,
 * otherwise a ';'-separated list of names/aliases.
 */
std::vector<std::string> resolveGeneratorList(const std::string &token);

} // namespace mcversi::campaign

#endif // MCVERSI_CAMPAIGN_REGISTRY_HH
