/**
 * @file
 * Counting-allocator proof that the schedule/dispatch/deliver path is
 * allocation-free in steady state.
 *
 * This binary replaces global operator new/delete with counting
 * wrappers. After a warmup round has sized the wheel buckets, thunk
 * slots, message pool and network routing arrays, a full
 * schedule -> dispatch -> Network::send -> deliver cycle must perform
 * exactly zero heap allocations -- the strongest form of the
 * steady-state property (the structuralAllocations() instrumentation
 * in test_eventq.cc is the portable cross-check that also runs under
 * sanitizers).
 *
 * Skipped under ASan/UBSan: the sanitizer runtime interposes and
 * allocates on its own schedule, so the counter is not meaningful.
 */

#include <atomic>
#include <cstdlib>
#include <new>

#include <gtest/gtest.h>

#include "sim/network.hh"

#if defined(__SANITIZE_ADDRESS__)
#define MCVERSI_ZERO_ALLOC_SKIP 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define MCVERSI_ZERO_ALLOC_SKIP 1
#endif
#endif

namespace {

std::atomic<std::uint64_t> g_allocs{0};

} // namespace

void *
operator new(std::size_t size)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace {

using namespace mcversi;
using namespace mcversi::sim;

class Sink : public MsgHandler
{
  public:
    void handleMsg(const Msg &msg) override { last = msg.type; }
    MsgType last = MsgType::GETS;
};

/** One steady-state round: typed events, pooled sends, deliveries. */
void
spin(EventQueue &eq, Network &net, Sink & /*sink*/)
{
    // Phase-align the wheel so warmup and measurement hit the same
    // buckets (the steady state a test-iteration loop reaches), and
    // clear FIFO floors exactly like the per-iteration protocol reset.
    eq.reset();
    net.resetOrdering();
    for (int round = 0; round < 20; ++round) {
        for (std::uint64_t i = 0; i < 16; ++i) {
            eq.scheduleFnIn(
                i % 61,
                [](void *, std::uint64_t, std::uint64_t, std::uint64_t,
                   std::uint64_t) {},
                nullptr);
        }
        for (int i = 0; i < 8; ++i) {
            Msg &m = net.stage();
            m.type = i % 2 == 0 ? MsgType::GETS : MsgType::Inv;
            m.src = 0;
            m.dst = i % 4;
            m.vnet = i % 2 == 0 ? Vnet::Request : Vnet::Fwd;
            net.send(&m);
        }
        // Far-future pooled delivery exercises the overflow path.
        eq.scheduleNetSend(eq.now() + 400, &net,
                           eq.msgPool().acquireCopy([&] {
                               Msg m;
                               m.type = MsgType::Data;
                               m.src = 4;
                               m.dst = 1;
                               m.vnet = Vnet::Response;
                               return m;
                           }()));
        eq.runUntilQuiescent();
    }
}

TEST(EventQueueZeroAlloc, SteadyStateDoesNotTouchTheHeap)
{
#ifdef MCVERSI_ZERO_ALLOC_SKIP
    GTEST_SKIP() << "allocation counting is not meaningful under "
                    "sanitizers";
#else
    EventQueue eq;
    // Zero jitter so warmup and measurement see identical delivery
    // ticks (the RNG stream advances across rounds; jitter only shifts
    // which bucket an event lands in, never whether paths allocate).
    Network::Params params;
    params.maxJitter = 0;
    Network net(eq, Rng(7), params);
    Sink sinks[8];
    for (NodeId n = 0; n < 8; ++n)
        net.registerNode(n, &sinks[n]);

    spin(eq, net, sinks[0]); // Warmup: all capacities grow here.

    const std::uint64_t heap_before = g_allocs.load();
    const std::uint64_t structural_before = eq.structuralAllocations();
    spin(eq, net, sinks[0]);
    const std::uint64_t heap_after = g_allocs.load();

    EXPECT_EQ(heap_after - heap_before, 0u)
        << "steady-state schedule/dispatch/deliver allocated "
        << (heap_after - heap_before) << " times";
    // The portable instrumentation must agree with the raw counter.
    EXPECT_EQ(eq.structuralAllocations(), structural_before);
#endif
}

} // namespace
