#include "memconsistency/incremental.hh"

#include <algorithm>
#include <cassert>

namespace mcversi::mc {

void
IncrementalGraph::reset()
{
    // Stale adjacency lists are NOT cleared here: addNode()'s reuse
    // branch clears each list right before handing the node out again,
    // so reset() stays O(1) no matter how large the last graph was.
    numNodes_ = 0;
    ord_.clear();
    poisoned_ = false;
    cycle_.clear();
}

bool
IncrementalGraph::addEdgeSlow(Node from, Node to)
{
    if (from == to) {
        poisoned_ = true;
        cycle_.assign(1, from);
        return false;
    }
    // The inline fast path already appended the edge to adj_/radj_.
    if (!reorder(from, to)) {
        poisoned_ = true;
        return false;
    }
    return true;
}

bool
IncrementalGraph::reorder(Node u, Node v)
{
    const std::int32_t lb = ord_[static_cast<std::size_t>(v)];
    const std::int32_t ub = ord_[static_cast<std::size_t>(u)];
    ++gen_;

    // Forward pass: descendants of v within the affected region
    // (ord <= ord[u]). In a valid pre-insertion order every ancestor
    // of u sits below ord[u], so if any path v => u exists the pass
    // finds it -- reaching u means the new edge closes a cycle.
    fwd_.clear();
    stack_.clear();
    fwdStamp_[static_cast<std::size_t>(v)] = gen_;
    stack_.push_back(v);
    while (!stack_.empty()) {
        const Node n = stack_.back();
        stack_.pop_back();
        fwd_.push_back(n);
        for (const Node s : adj_[static_cast<std::size_t>(n)]) {
            if (ord_[static_cast<std::size_t>(s)] > ub ||
                marked(fwdStamp_, s)) {
                continue;
            }
            parent_[static_cast<std::size_t>(s)] = n;
            if (s == u) {
                // Cycle: v -> ... -> u plus the inserted edge u -> v.
                cycle_.clear();
                for (Node c = u; c != v;
                     c = parent_[static_cast<std::size_t>(c)]) {
                    cycle_.push_back(c);
                }
                cycle_.push_back(v);
                std::reverse(cycle_.begin(), cycle_.end());
                return false;
            }
            fwdStamp_[static_cast<std::size_t>(s)] = gen_;
            stack_.push_back(s);
        }
    }

    // Backward pass: ancestors of u within the region (ord >= ord[v]).
    bwd_.clear();
    stack_.clear();
    bwdStamp_[static_cast<std::size_t>(u)] = gen_;
    stack_.push_back(u);
    while (!stack_.empty()) {
        const Node n = stack_.back();
        stack_.pop_back();
        bwd_.push_back(n);
        for (const Node p : radj_[static_cast<std::size_t>(n)]) {
            if (ord_[static_cast<std::size_t>(p)] < lb ||
                marked(bwdStamp_, p)) {
                continue;
            }
            bwdStamp_[static_cast<std::size_t>(p)] = gen_;
            stack_.push_back(p);
        }
    }

    // Redistribute: the ancestors of u (in order), then the
    // descendants of v (in order), onto the sorted union of the
    // vacated indices. The two sets are disjoint (an overlap would be
    // a v => x => u path, caught above).
    auto by_ord = [this](Node a, Node b) {
        return ord_[static_cast<std::size_t>(a)] <
               ord_[static_cast<std::size_t>(b)];
    };
    std::sort(bwd_.begin(), bwd_.end(), by_ord);
    std::sort(fwd_.begin(), fwd_.end(), by_ord);

    idxScratch_.clear();
    for (const Node n : bwd_)
        idxScratch_.push_back(ord_[static_cast<std::size_t>(n)]);
    for (const Node n : fwd_)
        idxScratch_.push_back(ord_[static_cast<std::size_t>(n)]);
    std::sort(idxScratch_.begin(), idxScratch_.end());

    std::size_t i = 0;
    for (const Node n : bwd_)
        ord_[static_cast<std::size_t>(n)] = idxScratch_[i++];
    for (const Node n : fwd_)
        ord_[static_cast<std::size_t>(n)] = idxScratch_[i++];
    return true;
}

} // namespace mcversi::mc
