#include "memconsistency/execwitness.hh"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <stdexcept>

namespace mcversi::mc {

const std::vector<EventId> ExecWitness::emptyThread_{};

namespace {

/** Total per-thread event order: program order, id as tie-break. */
struct PoKey
{
    std::int32_t poi;
    std::uint8_t sub;
    EventId id;

    friend auto operator<=>(const PoKey &, const PoKey &) = default;
};

} // namespace

AddrId
ExecWitness::internAddr(Addr addr)
{
    const auto pos =
        std::lower_bound(addrTable_.begin(), addrTable_.end(), addr);
    const auto idx =
        static_cast<std::size_t>(pos - addrTable_.begin());
    if (pos != addrTable_.end() && *pos == addr)
        return addrTableIds_[idx];
    const auto id = static_cast<AddrId>(addrTable_.size());
    addrTable_.insert(pos, addr);
    addrTableIds_.insert(addrTableIds_.begin() +
                             static_cast<std::ptrdiff_t>(idx),
                         id);
    return id;
}

EventId
ExecWitness::addEvent(const Event &ev)
{
    if (window_ != 0) {
        // Ring mode: overwrite the slot of the event evicted W ids ago.
        // None of the finalize-supporting structures are maintained --
        // the stream's checker is the consumer, the ring is only for
        // post-hoc diagnostics over the retained tail.
        assert(!ev.isInit());
        const auto id = static_cast<EventId>(recorded_++);
        const std::size_t slot = static_cast<std::size_t>(id) % window_;
        const AddrId aid =
            ev.addr == kNoAddr ? AddrId{-1} : internAddr(ev.addr);
        if (slot < events_.size()) {
            events_[slot] = ev;
            addrIdOf_[slot] = aid;
        } else {
            events_.push_back(ev);
            addrIdOf_.push_back(aid);
        }
        return id;
    }

    const EventId id = static_cast<EventId>(events_.size());
    events_.push_back(ev);
    addrIdOf_.push_back(ev.addr == kNoAddr ? AddrId{-1}
                                           : internAddr(ev.addr));
    // The dense conflict-order arrays grow with the events; finalize()
    // fills them in.
    rfSrc_.push_back(kNoEvent);
    coSucc_.push_back(kNoEvent);
    coPred_.push_back(kNoEvent);
    if (ev.isInit())
        return id;

    if (static_cast<std::size_t>(ev.iiid.pid) >= perThread_.size())
        perThread_.resize(static_cast<std::size_t>(ev.iiid.pid) + 1);
    auto &vec = perThread_[static_cast<std::size_t>(ev.iiid.pid)];
    if (vec.empty()) {
        threadIds_.insert(std::lower_bound(threadIds_.begin(),
                                           threadIds_.end(),
                                           ev.iiid.pid),
                          ev.iiid.pid);
    } else {
        // Events may be recorded out of program order (stores are
        // recorded when they serialize, which can be after younger
        // loads retired). Append now, sort once at finalize().
        const Event &prev =
            events_[static_cast<std::size_t>(vec.back())];
        if (PoKey{prev.iiid.poi, prev.sub, vec.back()} >
            PoKey{ev.iiid.poi, ev.sub, id}) {
            poSorted_ = false;
        }
    }
    vec.push_back(id);
    return id;
}

void
ExecWitness::ensurePoSorted() const
{
    if (poSorted_)
        return;
    for (Pid pid : threadIds_) {
        auto &vec = perThread_[static_cast<std::size_t>(pid)];
        std::sort(vec.begin(), vec.end(),
                  [this](EventId a, EventId b) {
                      const Event &ea =
                          events_[static_cast<std::size_t>(a)];
                      const Event &eb =
                          events_[static_cast<std::size_t>(b)];
                      return PoKey{ea.iiid.poi, ea.sub, a} <
                             PoKey{eb.iiid.poi, eb.sub, b};
                  });
    }
    poSorted_ = true;
}

EventId
ExecWitness::getOrCreateInit(Addr addr)
{
    const auto pos = std::lower_bound(
        initEvents_.begin(), initEvents_.end(), addr,
        [](const auto &entry, Addr a) { return entry.first < a; });
    if (pos != initEvents_.end() && pos->first == addr)
        return pos->second;
    const auto idx = pos - initEvents_.begin();
    Event ev;
    ev.iiid = Iiid{kInitPid, -1};
    ev.type = EventType::Write;
    ev.addr = addr;
    ev.value = kInitVal;
    const EventId id = addEvent(ev); // Does not touch initEvents_.
    initEvents_.insert(initEvents_.begin() + idx, {addr, id});
    return id;
}

void
ExecWitness::flagAnomaly(WitnessAnomaly kind, std::string info)
{
    // Keep the first anomaly; later ones are usually fallout.
    if (anomaly_ == WitnessAnomaly::None) {
        anomaly_ = kind;
        anomalyInfo_ = std::move(info);
    }
}

EventId
ExecWitness::recordRead(Pid pid, std::int32_t poi, Addr addr,
                        WriteVal value, bool rmw)
{
    assert(!finalized_ && "witness already finalized");
    Event ev;
    ev.iiid = Iiid{pid, poi};
    ev.type = EventType::Read;
    ev.addr = addr;
    ev.value = value;
    ev.rmw = rmw;
    ev.sub = 0;
    const EventId id = addEvent(ev);
    if (window_ != 0) {
        const std::size_t slot = static_cast<std::size_t>(id) % window_;
        if (slot < overwrittenOf_.size())
            overwrittenOf_[slot] = kInitVal;
        else
            overwrittenOf_.push_back(kInitVal);
    } else if (rmw) {
        pendingRmwReads_.emplace_back(Iiid{pid, poi}, id);
    }
    if (sink_)
        sink_->onRecord(*this, id, kInitVal);
    return id;
}

EventId
ExecWitness::recordWrite(Pid pid, std::int32_t poi, Addr addr,
                         WriteVal value, WriteVal overwritten, bool rmw)
{
    assert(!finalized_ && "witness already finalized");
    Event ev;
    ev.iiid = Iiid{pid, poi};
    ev.type = EventType::Write;
    ev.addr = addr;
    ev.value = value;
    ev.rmw = rmw;
    ev.sub = 1;
    const EventId id = addEvent(ev);
    if (window_ != 0) {
        const std::size_t slot = static_cast<std::size_t>(id) % window_;
        if (slot < overwrittenOf_.size())
            overwrittenOf_[slot] = overwritten;
        else
            overwrittenOf_.push_back(overwritten);
        if (sink_)
            sink_->onRecord(*this, id, overwritten);
        return id;
    }
    valueToWriter_.emplace_back(value, id);
    writersSorted_ = false;
    overwrittenBy_.emplace_back(id, overwritten);

    if (rmw) {
        const Iiid iiid{pid, poi};
        const auto it = std::find_if(
            pendingRmwReads_.begin(), pendingRmwReads_.end(),
            [&iiid](const auto &entry) { return entry.first == iiid; });
        if (it != pendingRmwReads_.end()) {
            rmwPairs_.emplace_back(it->second, id);
            pendingRmwReads_.erase(it);
        }
    }
    if (sink_)
        sink_->onRecord(*this, id, overwritten);
    return id;
}

EventId
ExecWitness::resolveWriter(Addr addr, WriteVal value, bool &unknown)
{
    unknown = false;
    if (value == kInitVal)
        return getOrCreateInit(addr);
    assert(writersSorted_);
    const auto pos = std::lower_bound(
        valueToWriter_.begin(), valueToWriter_.end(), value,
        [](const auto &entry, WriteVal v) { return entry.first < v; });
    if (pos == valueToWriter_.end() || pos->first != value) {
        unknown = true;
        return kNoEvent;
    }
    return pos->second;
}

void
ExecWitness::replayRetainedInto(ExecWitness &dst) const
{
    assert(window_ != 0);
    assert(dst.window() == 0 && dst.eventSink() == nullptr);
    dst.reset();
    const std::uint64_t first =
        recorded_ > window_ ? recorded_ - window_ : 0;
    for (std::uint64_t id = first; id < recorded_; ++id) {
        const std::size_t slot = static_cast<std::size_t>(id) % window_;
        const Event &ev = events_[slot];
        if (ev.isRead()) {
            dst.recordRead(ev.iiid.pid, ev.iiid.poi, ev.addr, ev.value,
                           ev.rmw);
        } else {
            dst.recordWrite(ev.iiid.pid, ev.iiid.poi, ev.addr, ev.value,
                            overwrittenOf_[slot], ev.rmw);
        }
    }
}

void
ExecWitness::finalize()
{
    if (finalized_)
        return;
    if (window_ != 0) {
        throw std::logic_error(
            "ExecWitness: a windowed (ring-buffer) witness cannot "
            "finalize; replay the retained window into a full-mode "
            "witness instead");
    }
    finalized_ = true;

    ensurePoSorted();
    // Write values are globally unique, so one sort turns the recorded
    // (value, writer) log into a binary-searchable index.
    std::sort(valueToWriter_.begin(), valueToWriter_.end());
    writersSorted_ = true;

    // Resolve read-from. All writes are recorded by now (the system is
    // quiescent when the host verifies), so an unknown value is a real
    // anomaly (data fabrication / corruption), not a race with
    // recording. Init events created during resolution append to
    // events_ and the dense arrays; iterate the pre-finalize snapshot.
    // NOTE: resolveWriter() can append init events (reallocating
    // events_), so no reference into events_ may be held across it --
    // copy the fields it needs first and re-index afterwards.
    const std::size_t num_events = events_.size();
    for (std::size_t i = 0; i < num_events; ++i) {
        if (!events_[i].isRead())
            continue;
        const Addr addr = events_[i].addr;
        const WriteVal value = events_[i].value;
        bool unknown = false;
        const EventId writer = resolveWriter(addr, value, unknown);
        if (unknown) {
            std::ostringstream os;
            os << "read of unknown value: " << events_[i].toString();
            flagAnomaly(WitnessAnomaly::UnknownValue, os.str());
            continue;
        }
        rfSrc_[i] = writer;
    }

    // Resolve immediate coherence edges from overwritten values.
    for (const auto &[w, overwritten] : overwrittenBy_) {
        const Addr addr = events_[static_cast<std::size_t>(w)].addr;
        bool unknown = false;
        const EventId prev = resolveWriter(addr, overwritten, unknown);
        const auto event_str = [this](EventId e) {
            return events_[static_cast<std::size_t>(e)].toString();
        };
        if (unknown) {
            std::ostringstream os;
            os << "write overwrote unknown value " << overwritten << ": "
               << event_str(w);
            flagAnomaly(WitnessAnomaly::UnknownValue, os.str());
            continue;
        }
        const EventId claimed = coSucc_[static_cast<std::size_t>(prev)];
        if (claimed != kNoEvent) {
            std::ostringstream os;
            os << "co fork: " << event_str(w) << " and "
               << event_str(claimed) << " both overwrite "
               << event_str(prev);
            flagAnomaly(WitnessAnomaly::CoFork, os.str());
        } else {
            coSucc_[static_cast<std::size_t>(prev)] = w;
        }
        coPred_[static_cast<std::size_t>(w)] = prev;
    }
}

void
ExecWitness::buildConflictRelations() const
{
    // rf()/co() are derived views over the dense arrays, materialized
    // on first access only: the hot path (checker, NDT accumulation,
    // litmus conditions) streams the arrays directly and never pays
    // for the Relations.
    if (relationsBuilt_)
        return;
    relationsBuilt_ = true;
    const auto num_events = static_cast<EventId>(events_.size());
    for (EventId e = 0; e < num_events; ++e) {
        if (events_[static_cast<std::size_t>(e)].isRead()) {
            const EventId src = rfSrc_[static_cast<std::size_t>(e)];
            if (src != kNoEvent)
                rf_.insert(src, e);
        } else {
            const EventId prev = coPred_[static_cast<std::size_t>(e)];
            if (prev != kNoEvent)
                co_.insert(prev, e);
        }
    }
}

const std::vector<EventId> &
ExecWitness::threadEvents(Pid pid) const
{
    if (pid < 0 || static_cast<std::size_t>(pid) >= perThread_.size())
        return emptyThread_;
    ensurePoSorted();
    return perThread_[static_cast<std::size_t>(pid)];
}

EventId
ExecWitness::coSuccessor(EventId w) const
{
    assert(finalized_);
    return coSucc_[static_cast<std::size_t>(w)];
}

EventId
ExecWitness::coPredecessor(EventId w) const
{
    assert(finalized_);
    return coPred_[static_cast<std::size_t>(w)];
}

EventId
ExecWitness::rfSource(EventId r) const
{
    assert(finalized_);
    return rfSrc_[static_cast<std::size_t>(r)];
}

Relation
ExecWitness::computeFrImmediate() const
{
    ++frMaterializations_;
    Relation fr;
    const auto num_events = static_cast<EventId>(events_.size());
    for (EventId r = 0; r < num_events; ++r) {
        if (!events_[static_cast<std::size_t>(r)].isRead())
            continue;
        const EventId w = rfSrc_[static_cast<std::size_t>(r)];
        if (w == kNoEvent)
            continue;
        const EventId succ = coSuccessor(w);
        if (succ != kNoEvent)
            fr.insert(r, succ);
    }
    return fr;
}

Relation
ExecWitness::computeFr() const
{
    ++frMaterializations_;
    Relation fr;
    const auto num_events = static_cast<EventId>(events_.size());
    for (EventId r = 0; r < num_events; ++r) {
        if (!events_[static_cast<std::size_t>(r)].isRead())
            continue;
        const EventId w = rfSrc_[static_cast<std::size_t>(r)];
        if (w == kNoEvent)
            continue;
        for (EventId succ = coSuccessor(w); succ != kNoEvent;
             succ = coSuccessor(succ)) {
            fr.insert(r, succ);
        }
    }
    return fr;
}

EventId
ExecWitness::initEvent(Addr addr) const
{
    const auto pos = std::lower_bound(
        initEvents_.begin(), initEvents_.end(), addr,
        [](const auto &entry, Addr a) { return entry.first < a; });
    return pos != initEvents_.end() && pos->first == addr ? pos->second
                                                          : kNoEvent;
}

void
ExecWitness::reset()
{
    // Every container is cleared, never shrunk: the steady state of a
    // test-run (same test, many iterations) reuses all capacity.
    events_.clear();
    for (auto &vec : perThread_)
        vec.clear();
    threadIds_.clear();
    poSorted_ = true;
    valueToWriter_.clear();
    writersSorted_ = false;
    initEvents_.clear();
    addrTable_.clear();
    addrTableIds_.clear();
    addrIdOf_.clear();
    rf_.clear();
    co_.clear();
    relationsBuilt_ = false;
    coSucc_.clear();
    coPred_.clear();
    rfSrc_.clear();
    overwrittenBy_.clear();
    pendingRmwReads_.clear();
    rmwPairs_.clear();
    anomaly_ = WitnessAnomaly::None;
    anomalyInfo_.clear();
    frMaterializations_ = 0;
    finalized_ = false;
    // window_ survives (like sink_); the ring restarts empty.
    recorded_ = 0;
    overwrittenOf_.clear();
}

} // namespace mcversi::mc
