/**
 * @file
 * Island-model evolution engine with a batched generate→evaluate API.
 *
 * The serial SteadyStateGa's one-at-a-time nextTest()/reportResult()
 * contract forbids any intra-campaign parallelism: selection cannot run
 * ahead of evaluation. The EvolutionEngine generalizes it along three
 * axes while keeping McVerSi's crossover-aware selective GP semantics
 * (§5.2.1, Algorithm 1) and byte-identical determinism:
 *
 *  - Islands: N independent steady-state populations (tournament
 *    selection, delete-oldest replacement), each drawing from its own
 *    counter-based RNG stream (Rng::streamSeed). Batch slots are dealt
 *    to islands round-robin by a monotone issue counter, so the island
 *    schedule depends only on the seed and the evaluation count --
 *    never on evaluation timing or worker threads.
 *
 *  - Migration: every migrationInterval evaluations (engine-wide), each
 *    island's best individual is copied to its ring successor
 *    (island i -> (i+1) % N), replacing the recipient's oldest member.
 *    Migration happens at reportBatch() barriers only, so its order is
 *    a pure function of the seed and the evaluation count.
 *
 *  - Batching: nextBatch() emits any number of tests (selection uses
 *    the population state at batch start), reportBatch() inserts the
 *    results in slot order. A batch of one on a single island
 *    reproduces the SteadyStateGa evaluation sequence draw-for-draw:
 *    the serial engine is the degenerate configuration, not a separate
 *    code path.
 *
 * Genomes live in a slab-backed GenomePool: population members, pending
 * offspring and migrants are slots in reusable arena storage instead of
 * per-individual std::vector<Node>s, so steady-state generation
 * performs no allocation (offspring slots are recycled from evicted
 * members).
 *
 * Contract: nextBatch() and reportBatch() strictly alternate, and the
 * report must carry exactly one result per emitted test. In debug and
 * sanitizer builds a violation throws std::logic_error naming the
 * offending call (common/strict.hh); release builds clamp.
 */

#ifndef MCVERSI_GP_EVOLUTION_HH
#define MCVERSI_GP_EVOLUTION_HH

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hh"
#include "gp/crossover.hh"
#include "gp/genome_pool.hh"
#include "gp/ndmetrics.hh"
#include "gp/params.hh"
#include "gp/randgen.hh"
#include "gp/test.hh"

namespace mcversi::gp {

/** Engine topology knobs (the campaign's islands=/migration= keys). */
struct EvolutionParams
{
    /** Independent populations; 1 degenerates to the serial GA. */
    std::size_t islands = 1;
    /**
     * Engine-wide evaluations between ring migrations; 0 disables
     * migration. Ignored for a single island.
     */
    std::uint64_t migrationInterval = 256;
};

/** One evaluated member of an island population (pool-backed). */
struct PoolIndividual
{
    GenomePool::Slot slot = 0;
    double fitness = 0.0;
    NdInfo nd;
    /** Monotone per-island birth counter (delete-oldest). */
    std::uint64_t bornAt = 0;
};

/** Evaluation result of one emitted test, in batch-slot order. */
struct EvalResult
{
    double fitness = 0.0;
    NdInfo nd;
};

/** One ring-migration event (for determinism audits and tests). */
struct MigrationRecord
{
    /** Engine-wide evaluation count when the migration fired. */
    std::uint64_t atEvaluation = 0;
    std::uint32_t fromIsland = 0;
    std::uint32_t toIsland = 0;
    /** Content hash of the migrated genome. */
    std::uint64_t genomeFingerprint = 0;
};

/** Island-model GA with slab genomes and a batched pull/report API. */
class EvolutionEngine
{
  public:
    /** Handle to a pending (emitted, not yet reported) test. */
    struct TestRef
    {
        GenomePool::Slot slot = 0;
        std::uint32_t island = 0;
    };

    EvolutionEngine(GaParams ga, GenParams gen, std::uint64_t seed,
                    XoMode mode = XoMode::Selective,
                    EvolutionParams evo = {});

    /**
     * Emit out.size() tests to evaluate (selection against the
     * population state at batch start). Must be followed by exactly one
     * reportBatch() of the same size before the next call. Genomes stay
     * readable via genome() until that reportBatch().
     */
    void nextBatch(std::span<TestRef> out);

    /**
     * Report the results of the pending batch, in the slot order of the
     * matching nextBatch(). NdInfo payloads are moved out of @p results.
     * Runs ring migration when the evaluation counter crosses
     * migrationInterval boundaries.
     */
    void reportBatch(std::span<EvalResult> results);

    /** Genes of a pending test (valid until its reportBatch()). */
    std::span<const Node>
    genome(const TestRef &ref) const
    {
        return pool_.nodes(ref.slot);
    }

    std::size_t islandCount() const { return islands_.size(); }
    const std::vector<PoolIndividual> &
    islandPopulation(std::size_t island) const
    {
        return islands_[island].pop;
    }
    std::span<const Node>
    memberGenome(const PoolIndividual &member) const
    {
        return pool_.nodes(member.slot);
    }

    std::uint64_t evaluated() const { return evaluated_; }
    std::size_t pendingBatchSize() const { return pending_.size(); }

    /** Mean fitness across all island members (0 if empty). */
    double meanFitness() const;
    /** Mean NDT across all island members (0 if empty). */
    double meanNdt() const;

    /** Migrations performed, in order (capped at kMaxMigrationLog). */
    const std::vector<MigrationRecord> &migrationLog() const
    {
        return migrationLog_;
    }
    std::uint64_t migrations() const { return migrationCount_; }

    XoMode mode() const { return mode_; }
    const EvolutionParams &evolutionParams() const { return evo_; }
    const GenomePool &pool() const { return pool_; }

    static constexpr std::size_t kMaxMigrationLog = 4096;

  private:
    struct Island
    {
        Rng rng{0};
        std::vector<PoolIndividual> pop;
        std::uint64_t births = 0;
    };

    /** Tournament over @p island's population; returns a pop index. */
    std::size_t tournamentSelect(Island &island);

    /** Generate one offspring of @p island into pool slot @p slot. */
    void generateInto(Island &island, GenomePool::Slot slot);

    /** Insert one evaluated pending test into its island. */
    void insertResult(const TestRef &ref, EvalResult &result);

    /** One ring migration across all islands. */
    void migrateOnce();

    GaParams ga_;
    RandomTestGen gen_;
    XoMode mode_;
    EvolutionParams evo_;

    GenomePool pool_;
    std::vector<Island> islands_;
    std::vector<TestRef> pending_;

    /** Monotone issue counter: batch slot -> island round-robin. */
    std::uint64_t issued_ = 0;
    std::uint64_t evaluated_ = 0;
    std::uint64_t lastMigrationAt_ = 0;
    std::uint64_t migrationCount_ = 0;
    std::vector<MigrationRecord> migrationLog_;

    /** Scratch for the selective crossover's fitaddr union. */
    AddrSet fitUnionScratch_;
    /** Scratch for migration staging (donor copies). */
    std::vector<PoolIndividual> migrantScratch_;
    std::vector<bool> migrantValid_;
};

} // namespace mcversi::gp

#endif // MCVERSI_GP_EVOLUTION_HH
