#include "gp/ops.hh"

#include <sstream>

namespace mcversi::gp {

const char *
opKindName(OpKind kind)
{
    switch (kind) {
      case OpKind::Read: return "Read";
      case OpKind::ReadAddrDp: return "ReadAddrDp";
      case OpKind::Write: return "Write";
      case OpKind::ReadModifyWrite: return "ReadModifyWrite";
      case OpKind::CacheFlush: return "CacheFlush";
      case OpKind::Delay: return "Delay";
    }
    return "?";
}

std::string
Op::toString() const
{
    std::ostringstream os;
    os << opKindName(kind);
    if (isMem())
        os << "@0x" << std::hex << addr;
    return os.str();
}

} // namespace mcversi::gp
