/**
 * @file
 * Full simulated system: cores + L1s + L2 tiles + mesh + memory.
 *
 * Builds the Table 2 platform for either protocol, wires the network
 * routing, shares one TransitionCoverage across identical controllers,
 * and provides the host-assisted primitives (protocol reset, memory
 * zeroing, quiescence) the guest-host interface is built on.
 */

#ifndef MCVERSI_SIM_SYSTEM_HH
#define MCVERSI_SIM_SYSTEM_HH

#include <memory>
#include <vector>

#include "memconsistency/execwitness.hh"
#include "sim/config.hh"
#include "sim/coverage.hh"
#include "sim/cpu/core.hh"
#include "sim/eventq.hh"
#include "sim/memory.hh"
#include "sim/mesi/mesi_l1.hh"
#include "sim/mesi/mesi_l2.hh"
#include "sim/network.hh"
#include "sim/tsocc/tsocc_l1.hh"
#include "sim/tsocc/tsocc_l2.hh"

namespace mcversi::sim {

/** A complete simulated multicore system. */
class System
{
  public:
    explicit System(SystemConfig cfg);

    const SystemConfig &config() const { return cfg_; }

    EventQueue &eventQueue() { return eq_; }
    Network &network() { return *net_; }
    MainMemory &memory() { return *mem_; }
    TransitionCoverage &coverage() { return cov_; }
    mc::ExecWitness &witness() { return witness_; }

    int numCores() const { return cfg_.numCores; }
    Core &core(Pid pid) { return *cores_[static_cast<std::size_t>(pid)]; }
    L1Cache *l1(Pid pid);

    /** Protocol-specific controllers, for white-box tests. */
    MesiL1 *mesiL1(Pid pid);
    MesiL2 *mesiL2(int tile);
    TsoccL1 *tsoccL1(Pid pid);
    TsoccL2 *tsoccL2(int tile);

    /** Next globally unique write value. */
    WriteVal takeWriteVal() { return nextVal_++; }

    /**
     * Host-assisted cache/coherence reset (reset_test_mem). Only legal
     * at quiescence; coverage counters and RNG streams persist.
     */
    void resetProtocolState();

    /** Zero the given word addresses in main memory. */
    void zeroMemory(const std::vector<Addr> &word_addrs);

    /** Run the event queue dry. May throw ProtocolError. */
    std::uint64_t runToQuiescence();

  private:
    SystemConfig cfg_;
    EventQueue eq_;
    Rng masterRng_;
    std::unique_ptr<Network> net_;
    std::unique_ptr<MainMemory> mem_;
    TransitionCoverage cov_;
    mc::ExecWitness witness_;
    WriteVal nextVal_ = 1;

    std::vector<std::unique_ptr<MesiL1>> mesiL1s_;
    std::vector<std::unique_ptr<MesiL2>> mesiL2s_;
    std::vector<std::unique_ptr<TsoccL1>> tsoccL1s_;
    std::vector<std::unique_ptr<TsoccL2>> tsoccL2s_;
    std::vector<std::unique_ptr<Core>> cores_;
};

} // namespace mcversi::sim

#endif // MCVERSI_SIM_SYSTEM_HH
