#include "gp/ga.hh"

#include "common/strict.hh"
#include "gp/selection.hh"

namespace mcversi::gp {

std::size_t
SteadyStateGa::tournamentSelect()
{
    return gp::tournamentSelect(population_, ga_.tournamentSize, rng_);
}

Test
SteadyStateGa::nextTest()
{
    checkApiContract(!hasPending_,
                     "SteadyStateGa::nextTest(): the previous test is "
                     "still pending; call reportResult() first");
    if (population_.size() < ga_.population) {
        // Still building the initial random population.
        pending_ = gen_.randomTest(rng_);
    } else if (!rng_.boolWithProb(ga_.pCrossover)) {
        // Crossover probability < 1: clone-and-mutate a parent.
        const Individual &p = population_[tournamentSelect()];
        Test child = p.test;
        for (std::size_t i = 0; i < child.size(); ++i)
            if (rng_.boolWithProb(ga_.pMut))
                child.node(i) = gen_.randomNode(rng_);
        pending_ = std::move(child);
    } else {
        const Individual &p1 = population_[tournamentSelect()];
        const Individual &p2 = population_[tournamentSelect()];
        if (mode_ == XoMode::Selective) {
            pending_ = crossoverMutate(p1.test, p1.nd, p2.test, p2.nd,
                                       gen_, ga_, rng_);
        } else {
            pending_ = singlePointCrossoverMutate(p1.test, p2.test, gen_,
                                                  ga_, rng_);
        }
    }
    hasPending_ = true;
    return pending_;
}

void
SteadyStateGa::reportResult(double fitness, NdInfo nd)
{
    checkApiContract(hasPending_,
                     "SteadyStateGa::reportResult(): no pending test; "
                     "call nextTest() first");
    hasPending_ = false;
    ++evaluated_;

    Individual ind;
    ind.test = std::move(pending_);
    ind.fitness = fitness;
    ind.nd = std::move(nd);
    ind.bornAt = births_++;

    if (population_.size() < ga_.population) {
        population_.push_back(std::move(ind));
        return;
    }
    // Delete-oldest replacement.
    *oldestMember(population_) = std::move(ind);
}

double
SteadyStateGa::meanFitness() const
{
    if (population_.empty())
        return 0.0;
    double sum = 0.0;
    for (const Individual &ind : population_)
        sum += ind.fitness;
    return sum / static_cast<double>(population_.size());
}

double
SteadyStateGa::meanNdt() const
{
    if (population_.empty())
        return 0.0;
    double sum = 0.0;
    for (const Individual &ind : population_)
        sum += ind.nd.ndt;
    return sum / static_cast<double>(population_.size());
}

} // namespace mcversi::gp
