/**
 * @file
 * Differential test for streaming (incremental) checking.
 *
 * The StreamingChecker must agree with the post-hoc pipeline --
 * byte-identical CheckResults via Checker::checkStreamed(), and an
 * online detection flag matching the verdict -- over:
 *
 *   - every entry of every model's golden litmus suite (forbidden
 *     outcome and sequential execution), across all registered models
 *     (SC/TSO/PSO/RMO/RC), and
 *   - seeded randomized witnesses, consistent-by-construction and
 *     randomly corrupted, across all registered models;
 *
 * plus streaming-specific semantics: detection latency bounds, the
 * early-stop verdict on detected violations, capacity-preserving reuse
 * of one StreamingChecker across many streams, and the sink-driven
 * recording path (events consumed as the witness records them).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hh"
#include "litmus/suites.hh"
#include "memconsistency/checker.hh"
#include "memconsistency/models/registry.hh"
#include "memconsistency/streaming_checker.hh"
#include "witness_synthesis.hh"

using namespace mcversi;
using namespace mcversi::litmus;

namespace {

/**
 * Stream @p ew through @p sc and require checkStreamed() byte-identical
 * to the post-hoc verdict, with violationDetected() agreeing. One
 * asymmetry is inherent: a read of a value no write ever produces
 * (WitnessAnomaly/UnknownValue post-hoc) is undecidable mid-stream --
 * the producing write could still arrive -- so the online flag may
 * stay false there; checkStreamed() still reports the identical
 * anomaly verdict via its incomplete-stream fallback.
 */
void
expectStreamingParity(mc::ExecWitness &ew, const mc::Checker &checker,
                      mc::StreamingChecker &sc, const std::string &label)
{
    const mc::CheckResult want = checker.check(ew);
    sc.replayRecorded(ew);
    if (want.ok()) {
        EXPECT_FALSE(sc.violationDetected())
            << label << ": spurious online detection ('"
            << mc::CheckResult::kindName(sc.violationKind()) << "')";
    } else if (want.kind != mc::CheckResult::Kind::WitnessAnomaly) {
        EXPECT_TRUE(sc.violationDetected())
            << label << ": online detection missed post-hoc '"
            << mc::CheckResult::kindName(want.kind) << "'\n"
            << want.message;
    }
    const mc::CheckResult got = checker.checkStreamed(ew, sc);
    EXPECT_EQ(got.kind, want.kind) << label;
    EXPECT_EQ(got.message, want.message) << label;
    EXPECT_EQ(got.cycle, want.cycle) << label;

    if (sc.violationDetected()) {
        EXPECT_GT(sc.eventsUntilDetection(), 0u) << label;
        EXPECT_LE(sc.eventsUntilDetection(), ew.numEvents()) << label;
        const mc::CheckResult early = sc.earlyStopResult(ew);
        EXPECT_FALSE(early.ok()) << label;
    }
}

/**
 * Random witness over a simulated interleaved memory; with @p corrupt,
 * a fraction of reads observe stale/fabricated values and a fraction
 * of writes claim a wrong overwritten value (same scheme as the
 * post-hoc differential test).
 */
mc::ExecWitness
randomWitness(Rng &rng, int threads, int ops, int addrs, bool corrupt)
{
    mc::ExecWitness ew;
    std::vector<WriteVal> memory(static_cast<std::size_t>(addrs),
                                 kInitVal);
    std::vector<std::int32_t> poi(static_cast<std::size_t>(threads), 0);
    std::vector<WriteVal> produced{kInitVal};
    WriteVal next = 1;

    for (int i = 0; i < ops; ++i) {
        const Pid pid = static_cast<Pid>(
            rng.below(static_cast<std::uint64_t>(threads)));
        const auto ai = static_cast<std::size_t>(
            rng.below(static_cast<std::uint64_t>(addrs)));
        const Addr addr = 0x100 + 64 * static_cast<Addr>(ai);
        const std::int32_t p = poi[static_cast<std::size_t>(pid)]++;
        const double roll = rng.uniform();

        auto read_val = [&]() {
            if (corrupt && rng.boolWithProb(0.15)) {
                if (rng.boolWithProb(0.2))
                    return static_cast<WriteVal>(90000 + rng.below(64));
                return produced[static_cast<std::size_t>(
                    rng.below(produced.size()))];
            }
            return memory[ai];
        };
        auto overwritten_val = [&]() {
            if (corrupt && rng.boolWithProb(0.1)) {
                return produced[static_cast<std::size_t>(
                    rng.below(produced.size()))];
            }
            return memory[ai];
        };

        if (roll < 0.5) {
            ew.recordRead(pid, p, addr, read_val());
        } else if (roll < 0.85) {
            const WriteVal v = next++;
            ew.recordWrite(pid, p, addr, v, overwritten_val());
            memory[ai] = v;
            produced.push_back(v);
        } else {
            const WriteVal v = next++;
            ew.recordRead(pid, p, addr, read_val(), /*rmw=*/true);
            ew.recordWrite(pid, p, addr, v, overwritten_val(),
                           /*rmw=*/true);
            memory[ai] = v;
            produced.push_back(v);
        }
    }
    return ew;
}

} // namespace

TEST(CheckerStreaming, GoldenSuitesAllModels)
{
    for (const std::string &model : mc::modelNames()) {
        const mc::Checker checker(mc::makeModel(model));
        mc::StreamingChecker sc(mc::modelProfile(model));
        for (const LitmusTest &t : suiteForModel(model)) {
            {
                mc::ExecWitness ew = testsupport::forbiddenWitness(t);
                expectStreamingParity(
                    ew, checker, sc,
                    t.name + " (forbidden) [" + model + "]");
            }
            {
                mc::ExecWitness ew = testsupport::sequentialWitness(t);
                expectStreamingParity(
                    ew, checker, sc,
                    t.name + " (sequential) [" + model + "]");
            }
        }
    }
}

TEST(CheckerStreaming, RandomConsistentWitnessesAllModels)
{
    Rng rng(0x57e401);
    for (int i = 0; i < 40; ++i) {
        const int threads = 2 + static_cast<int>(rng.below(4));
        const int ops = 20 + static_cast<int>(rng.below(120));
        const int addrs = 1 + static_cast<int>(rng.below(6));
        mc::ExecWitness ew =
            randomWitness(rng, threads, ops, addrs, /*corrupt=*/false);
        for (const std::string &model : mc::modelNames()) {
            const mc::Checker checker(mc::makeModel(model));
            mc::StreamingChecker sc(mc::modelProfile(model));
            expectStreamingParity(ew, checker, sc,
                                  "consistent #" + std::to_string(i) +
                                      " [" + model + "]");
        }
    }
}

TEST(CheckerStreaming, RandomCorruptedWitnessesAllModels)
{
    Rng rng(0x57e402);
    int violations = 0;
    for (int i = 0; i < 80; ++i) {
        const int threads = 2 + static_cast<int>(rng.below(4));
        const int ops = 20 + static_cast<int>(rng.below(80));
        const int addrs = 1 + static_cast<int>(rng.below(4));
        mc::ExecWitness ew =
            randomWitness(rng, threads, ops, addrs, /*corrupt=*/true);
        for (const std::string &model : mc::modelNames()) {
            const mc::Checker checker(mc::makeModel(model));
            mc::StreamingChecker sc(mc::modelProfile(model));
            expectStreamingParity(ew, checker, sc,
                                  "corrupted #" + std::to_string(i) +
                                      " [" + model + "]");
            if (sc.violationDetected())
                ++violations;
        }
    }
    // The corruption rates must actually exercise detection.
    EXPECT_GT(violations, 50);
}

namespace {

/**
 * Re-record @p src (finalized or not) into @p dst, which may be in
 * windowed ring mode -- the litmus-side equivalent of a workload
 * recording straight into a bounded witness.
 */
void
rerecordInto(const mc::ExecWitness &src, mc::ExecWitness &dst)
{
    const auto &ows = src.overwrites();
    std::size_t oi = 0;
    const auto num = static_cast<mc::EventId>(src.numEvents());
    for (mc::EventId id = 0; id < num; ++id) {
        const mc::Event &e = src.event(id);
        if (e.isInit())
            continue;
        if (e.isWrite()) {
            ASSERT_LT(oi, ows.size());
            ASSERT_EQ(ows[oi].first, id);
            dst.recordWrite(e.iiid.pid, e.iiid.poi, e.addr, e.value,
                            ows[oi].second, e.rmw);
            ++oi;
        } else {
            dst.recordRead(e.iiid.pid, e.iiid.poi, e.addr, e.value,
                           e.rmw);
        }
    }
}

} // namespace

TEST(CheckerStreaming, WindowedFullRingParityAllModels)
{
    // Ring mode with the whole stream retained (window >= stream
    // length): clean streams return the unqualified fast-path Ok, and
    // dirty or incomplete streams replay the ring through the exact
    // post-hoc pipeline -- either way the verdict must be
    // byte-identical to unbounded checking, anomalies included.
    Rng rng(0x57e404);
    for (int i = 0; i < 40; ++i) {
        const int threads = 2 + static_cast<int>(rng.below(4));
        const int ops = 20 + static_cast<int>(rng.below(80));
        const int addrs = 1 + static_cast<int>(rng.below(4));
        const bool corrupt = (i % 2) == 0;
        mc::ExecWitness ew = randomWitness(rng, threads, ops, addrs,
                                           corrupt);
        const std::size_t window = ew.numEvents() + 64;
        for (const std::string &model : mc::modelNames()) {
            const mc::Checker checker(mc::makeModel(model));
            const mc::CheckResult want = checker.check(ew);

            mc::ExecWitness ring;
            ring.setWindow(window);
            mc::StreamingChecker sc(mc::modelProfile(model));
            sc.setWindow(window);
            ring.setEventSink(&sc);
            sc.begin();
            rerecordInto(ew, ring);
            ring.setEventSink(nullptr);
            ASSERT_EQ(ring.droppedEvents(), 0u);

            const mc::CheckResult got = checker.checkStreamed(ring, sc);
            const std::string label = std::string(corrupt ? "corrupt"
                                                          : "clean") +
                                      " #" + std::to_string(i) + " [" +
                                      model + "]";
            EXPECT_EQ(got.kind, want.kind) << label;
            EXPECT_EQ(got.message, want.message) << label;
            EXPECT_EQ(got.cycle, want.cycle) << label;
        }
    }
}

TEST(CheckerStreaming, OneCheckerReusedAcrossStreams)
{
    // A single StreamingChecker cycled over witnesses of different
    // shapes (the campaign steady state) must give verdicts identical
    // to a fresh checker each time.
    Rng rng(0x57e403);
    const mc::Checker checker(mc::makeTso());
    mc::StreamingChecker reused(mc::modelProfile("tso"));
    for (int i = 0; i < 30; ++i) {
        const bool corrupt = (i % 3) == 0;
        mc::ExecWitness ew = randomWitness(
            rng, 2 + i % 4, 16 + 7 * i, 1 + i % 5, corrupt);
        mc::StreamingChecker fresh(mc::modelProfile("tso"));
        fresh.replayRecorded(ew);
        reused.replayRecorded(ew);
        EXPECT_EQ(reused.violationDetected(), fresh.violationDetected())
            << "stream #" << i;
        EXPECT_EQ(reused.violationKind(), fresh.violationKind())
            << "stream #" << i;
        EXPECT_EQ(reused.eventsUntilDetection(),
                  fresh.eventsUntilDetection())
            << "stream #" << i;
    }
}

TEST(CheckerStreaming, SinkDrivenRecordingMatchesReplay)
{
    // Feeding events through the witness sink while recording (the
    // production path) must behave exactly like replayRecorded().
    mc::StreamingChecker sink_sc(mc::modelProfile("tso"));
    mc::StreamingChecker replay_sc(mc::modelProfile("tso"));

    mc::ExecWitness ew;
    ew.setEventSink(&sink_sc);
    sink_sc.begin();
    constexpr Addr kX = 0x100;
    ew.recordWrite(0, 0, kX, 1, kInitVal);
    ew.recordWrite(0, 1, kX, 2, 1);
    ew.recordRead(1, 0, kX, 2);
    ew.recordRead(1, 1, kX, 1); // CoRR: stale read closes the cycle.
    ew.setEventSink(nullptr);

    EXPECT_TRUE(sink_sc.violationDetected());
    EXPECT_EQ(sink_sc.violationKind(),
              mc::CheckResult::Kind::UniprocViolation);
    EXPECT_EQ(sink_sc.eventsUntilDetection(), 4u);

    replay_sc.replayRecorded(ew);
    EXPECT_EQ(replay_sc.violationKind(), sink_sc.violationKind());
    EXPECT_EQ(replay_sc.eventsUntilDetection(),
              sink_sc.eventsUntilDetection());
}

TEST(CheckerStreaming, ThrowOnViolationStopsAtViolatingEvent)
{
    mc::StreamingChecker sc(mc::modelProfile("tso"));
    sc.setThrowOnViolation(true);
    mc::ExecWitness ew;
    ew.setEventSink(&sc);
    sc.begin();
    constexpr Addr kX = 0x100;
    ew.recordWrite(0, 0, kX, 1, kInitVal);
    ew.recordWrite(0, 1, kX, 2, 1);
    ew.recordRead(1, 0, kX, 2);
    EXPECT_THROW(ew.recordRead(1, 1, kX, 1), mc::StreamingViolation);
    ew.setEventSink(nullptr);

    EXPECT_TRUE(sc.violationDetected());
    EXPECT_EQ(sc.eventsUntilDetection(), 4u);

    // The stopped prefix cannot be finalized; the early-stop verdict
    // renders the violation from streaming state alone.
    const mc::CheckResult early = sc.earlyStopResult(ew);
    EXPECT_EQ(early.kind, mc::CheckResult::Kind::UniprocViolation);
    EXPECT_FALSE(early.message.empty());
    EXPECT_FALSE(early.cycle.empty());
}

TEST(CheckerStreaming, StreamedVerdictCacheStaysModelSalted)
{
    // checkStreamed() composes with the collective-checking verdict
    // cache exactly like check(): an Ok hit short-circuits, and
    // verdicts stay per-model.
    mc::Checker cached(mc::makeTso());
    cached.enableVerdictCache({.capacity = 64});
    mc::StreamingChecker sc(mc::modelProfile("tso"));

    constexpr Addr kX = 0x100;
    mc::ExecWitness ew;
    ew.recordWrite(0, 0, kX, 1, kInitVal);
    ew.recordRead(1, 0, kX, 1);

    sc.replayRecorded(ew);
    EXPECT_TRUE(cached.checkStreamed(ew, sc).ok());
    const auto &stats = cached.verdictCache()->stats();
    const std::uint64_t misses = stats.misses;
    sc.replayRecorded(ew);
    EXPECT_TRUE(cached.checkStreamed(ew, sc).ok());
    EXPECT_EQ(stats.misses, misses);
    EXPECT_GT(stats.hits, 0u);
}
