#include "fleet/wire.hh"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace mcversi::fleet {

namespace {

bool
needsEscape(unsigned char c)
{
    return c <= 0x20 || c == '%' || c == '=' || c == 0x7F;
}

std::uint64_t
parseU64Field(const std::string &text)
{
    return std::strtoull(text.c_str(), nullptr, 10);
}

std::string
encodeDoubleVec(const std::vector<double> &values)
{
    std::string out;
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (i > 0)
            out += ',';
        out += encodeDouble(values[i]);
    }
    return out;
}

std::vector<double>
decodeDoubleVec(const std::string &text)
{
    std::vector<double> values;
    std::size_t pos = 0;
    while (pos < text.size()) {
        const std::size_t comma = text.find(',', pos);
        const std::size_t end =
            comma == std::string::npos ? text.size() : comma;
        values.push_back(decodeDouble(text.substr(pos, end - pos)));
        pos = end + 1;
    }
    return values;
}

void
appendField(std::string &out, const char *key, const std::string &value)
{
    if (!out.empty())
        out += ' ';
    out += key;
    out += '=';
    out += value;
}

void
appendU64(std::string &out, const char *key, std::uint64_t v)
{
    appendField(out, key, std::to_string(v));
}

} // namespace

std::string
escapeToken(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char ch : text) {
        const auto c = static_cast<unsigned char>(ch);
        if (needsEscape(c)) {
            char buf[4];
            std::snprintf(buf, sizeof(buf), "%%%02X", c);
            out += buf;
        } else {
            out += ch;
        }
    }
    return out;
}

std::string
unescapeToken(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (std::size_t i = 0; i < text.size(); ++i) {
        if (text[i] == '%' && i + 2 < text.size()) {
            const auto hex = [](char c) -> int {
                if (c >= '0' && c <= '9')
                    return c - '0';
                if (c >= 'a' && c <= 'f')
                    return c - 'a' + 10;
                if (c >= 'A' && c <= 'F')
                    return c - 'A' + 10;
                return -1;
            };
            const int hi = hex(text[i + 1]);
            const int lo = hex(text[i + 2]);
            if (hi >= 0 && lo >= 0) {
                out += static_cast<char>(hi * 16 + lo);
                i += 2;
                continue;
            }
        }
        out += text[i];
    }
    return out;
}

std::string
encodeDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%a", v);
    return buf;
}

double
decodeDouble(const std::string &text)
{
    return std::strtod(text.c_str(), nullptr);
}

std::string
encodeCell(const CellRecord &record)
{
    const host::HarnessResult &h = record.result.harness;
    std::string out;
    appendU64(out, "cell", record.cell);
    appendU64(out, "attempt", record.attempt);
    appendField(out, "spec", escapeToken(record.spec));
    appendField(out, "error", escapeToken(record.result.error));
    appendField(out, "pcov",
                encodeDouble(record.result.protocolCoverage));
    appendU64(out, "bug", h.bugFound ? 1 : 0);
    appendField(out, "detail", escapeToken(h.detail));
    appendU64(out, "runs", h.testRuns);
    appendU64(out, "runs2bug", h.testRunsToBug);
    appendField(out, "wall", encodeDouble(h.wallSeconds));
    appendField(out, "wall2bug", encodeDouble(h.wallSecondsToBug));
    appendField(out, "check", encodeDouble(h.checkSeconds));
    appendU64(out, "ticks", h.simTicks);
    appendU64(out, "events", h.eventsExecuted);
    appendU64(out, "simev", h.simEvents);
    appendU64(out, "msgs", h.messagesSent);
    appendField(out, "cov", encodeDouble(h.totalCoverage));
    appendU64(out, "hits", h.checkCacheHits);
    appendU64(out, "misses", h.checkCacheMisses);
    appendU64(out, "distinct", h.distinctInterleavings);
    appendField(out, "meanfit", encodeDouble(h.meanFitness));
    appendField(out, "traj", encodeDoubleVec(h.fitnessTrajectory));
    appendField(out, "ndt", encodeDoubleVec(h.ndtHistory));
    return out;
}

bool
decodeCell(const std::string &payload, CellRecord &out, std::string *err)
{
    out = CellRecord{};
    bool have_cell = false;
    bool have_spec = false;
    std::istringstream in(payload);
    std::string token;
    while (in >> token) {
        const std::size_t eq = token.find('=');
        if (eq == std::string::npos || eq == 0) {
            if (err != nullptr)
                *err = "malformed token '" + token + "'";
            return false;
        }
        const std::string key = token.substr(0, eq);
        const std::string value = token.substr(eq + 1);
        host::HarnessResult &h = out.result.harness;
        if (key == "cell") {
            out.cell = static_cast<std::size_t>(parseU64Field(value));
            have_cell = true;
        } else if (key == "attempt") {
            out.attempt =
                static_cast<std::uint32_t>(parseU64Field(value));
        } else if (key == "spec") {
            out.spec = unescapeToken(value);
            have_spec = true;
        } else if (key == "error") {
            out.result.error = unescapeToken(value);
        } else if (key == "pcov") {
            out.result.protocolCoverage = decodeDouble(value);
        } else if (key == "bug") {
            h.bugFound = parseU64Field(value) != 0;
        } else if (key == "detail") {
            h.detail = unescapeToken(value);
        } else if (key == "runs") {
            h.testRuns = parseU64Field(value);
        } else if (key == "runs2bug") {
            h.testRunsToBug = parseU64Field(value);
        } else if (key == "wall") {
            h.wallSeconds = decodeDouble(value);
        } else if (key == "wall2bug") {
            h.wallSecondsToBug = decodeDouble(value);
        } else if (key == "check") {
            h.checkSeconds = decodeDouble(value);
        } else if (key == "ticks") {
            h.simTicks = parseU64Field(value);
        } else if (key == "events") {
            h.eventsExecuted = parseU64Field(value);
        } else if (key == "simev") {
            h.simEvents = parseU64Field(value);
        } else if (key == "msgs") {
            h.messagesSent = parseU64Field(value);
        } else if (key == "cov") {
            h.totalCoverage = decodeDouble(value);
        } else if (key == "hits") {
            h.checkCacheHits = parseU64Field(value);
        } else if (key == "misses") {
            h.checkCacheMisses = parseU64Field(value);
        } else if (key == "distinct") {
            h.distinctInterleavings = parseU64Field(value);
        } else if (key == "meanfit") {
            h.meanFitness = decodeDouble(value);
        } else if (key == "traj") {
            h.fitnessTrajectory = decodeDoubleVec(value);
        } else if (key == "ndt") {
            h.ndtHistory = decodeDoubleVec(value);
        }
        // Unknown keys: ignored (forward compatibility).
    }
    if (!have_cell || !have_spec) {
        if (err != nullptr)
            *err = "record is missing its cell index or spec";
        return false;
    }
    return true;
}

std::string
encodeMeta(const MetaRecord &meta)
{
    std::string out;
    appendField(out, "meta", "mcvj1");
    appendU64(out, "cells", meta.cells);
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(meta.fingerprint));
    appendField(out, "matrix", buf);
    return out;
}

bool
decodeMeta(const std::string &payload, MetaRecord &out)
{
    out = MetaRecord{};
    bool is_meta = false;
    std::istringstream in(payload);
    std::string token;
    while (in >> token) {
        const std::size_t eq = token.find('=');
        if (eq == std::string::npos)
            return false;
        const std::string key = token.substr(0, eq);
        const std::string value = token.substr(eq + 1);
        if (key == "meta") {
            is_meta = value == "mcvj1";
        } else if (key == "cells") {
            out.cells = static_cast<std::size_t>(parseU64Field(value));
        } else if (key == "matrix") {
            out.fingerprint = std::strtoull(value.c_str(), nullptr, 16);
        }
    }
    return is_meta;
}

std::uint64_t
matrixFingerprint(const std::vector<campaign::CampaignSpec> &specs)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    const auto mix = [&h](const std::string &text) {
        for (const char c : text) {
            h ^= static_cast<unsigned char>(c);
            h *= 0x100000001b3ull;
        }
        h ^= 0x0A;
        h *= 0x100000001b3ull;
    };
    for (const campaign::CampaignSpec &spec : specs)
        mix(spec.toString());
    return h;
}

} // namespace mcversi::fleet
