/**
 * @file
 * Set-associative cache array with LRU replacement.
 *
 * Shared by both protocols' L1 and L2 controllers. An entry holds the
 * protocol state (as an opaque small integer), functional line data, and
 * the metadata fields either protocol needs. Transient (in-flight)
 * entries occupy ways and are never victimized; eviction-in-progress
 * state lives in the controllers' side buffers instead, freeing the way
 * immediately (TBE-style).
 */

#ifndef MCVERSI_SIM_CACHE_ARRAY_HH
#define MCVERSI_SIM_CACHE_ARRAY_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hh"
#include "sim/message.hh"

namespace mcversi::sim {

/** One cache line entry; meta fields are protocol-specific. */
struct CacheEntry
{
    Addr line = kNoAddr;
    std::uint8_t state = 0;
    LineData data{};
    Tick lastUse = 0;

    // MESI L2 metadata.
    std::uint32_t sharers = 0; ///< bitmask of sharer cores
    Pid owner = kInitPid;
    bool dirty = false;
    bool grantedClean = false;
    Pid pendingRequester = kInitPid;
    bool gotOwnerData = false;
    bool gotUnblock = false;

    // L1 ack counting (IM/SM).
    int acksOutstanding = 0;
    bool dataReceived = false;
    /** Fill must be consumed as invalidated-in-flight (stale). */
    bool consumeFlagged = false;

    // TSO-CC metadata.
    TsMeta meta{};
    int accessesLeft = 0;

    bool valid() const { return line != kNoAddr; }

    /** Reset all fields except the tag. */
    void
    clearMeta()
    {
        sharers = 0;
        owner = kInitPid;
        dirty = false;
        grantedClean = false;
        pendingRequester = kInitPid;
        gotOwnerData = false;
        gotUnblock = false;
        acksOutstanding = 0;
        dataReceived = false;
        consumeFlagged = false;
        meta = TsMeta{};
        accessesLeft = 0;
    }
};

/** Set-associative array of CacheEntry with LRU victimization. */
class CacheArray
{
  public:
    CacheArray(int sets, int ways);

    /** Find the entry caching @p line, or nullptr. */
    CacheEntry *find(Addr line);

    /**
     * Allocate a way for @p line in its set.
     *
     * @return the fresh entry, or nullptr if no way is free (caller
     *         must evict a victim or retry later)
     */
    CacheEntry *allocate(Addr line);

    /**
     * LRU victim among entries of @p line's set satisfying
     * @p evictable; nullptr if none.
     */
    CacheEntry *victim(Addr line,
                       const std::function<bool(const CacheEntry &)>
                           &evictable);

    /** Invalidate (free) one entry. */
    void free(CacheEntry &entry);

    /** Drop all entries (host-assisted reset between tests). */
    void reset();

    /** Visit every valid entry. */
    void forEachValid(const std::function<void(CacheEntry &)> &fn);

    int sets() const { return sets_; }
    int ways() const { return ways_; }

    /** Touch for LRU. */
    void
    touch(CacheEntry &entry, Tick now)
    {
        entry.lastUse = now;
    }

  private:
    std::size_t setIndex(Addr line) const;

    int sets_;
    int ways_;
    std::vector<CacheEntry> entries_;
};

} // namespace mcversi::sim

#endif // MCVERSI_SIM_CACHE_ARRAY_HH
