#include "gp/fitness.hh"

namespace mcversi::gp {

double
AdaptiveCoverageFitness::score(std::span<const std::uint64_t> pre_counts,
                               const std::vector<std::uint32_t> &covered,
                               std::uint64_t new_interleavings) const
{
    std::size_t considered = 0;
    for (const std::uint64_t c : pre_counts)
        if (c < cutoff_)
            ++considered;

    std::size_t hit = 0;
    for (const std::uint32_t id : covered) {
        if (id < pre_counts.size() && pre_counts[id] < cutoff_)
            ++hit;
    }

    const double coverage =
        considered == 0 ? 0.0
                        : static_cast<double>(hit) /
                              static_cast<double>(considered);

    const double w = params_.interleavingWeight;
    if (w <= 0.0)
        return coverage;
    const auto n = static_cast<double>(new_interleavings);
    return (1.0 - w) * coverage + w * (n / (n + 1.0));
}

void
AdaptiveCoverageFitness::record(double fitness)
{
    if (fitness < params_.stallThreshold) {
        if (++stalled_ >= params_.stallWindow) {
            cutoff_ *= 2;
            stalled_ = 0;
        }
    } else {
        stalled_ = 0;
    }
}

double
AdaptiveCoverageFitness::evaluate(
    std::span<const std::uint64_t> pre_counts,
    const std::vector<std::uint32_t> &covered,
    std::uint64_t new_interleavings)
{
    const double fitness = score(pre_counts, covered, new_interleavings);
    record(fitness);
    return fitness;
}

} // namespace mcversi::gp
