#include "litmus/runner.hh"

#include <chrono>

namespace mcversi::litmus {

LitmusRunner::LitmusRunner(Params params, std::vector<LitmusTest> suite)
    : params_(params)
{
    system_ = std::make_unique<sim::System>(params_.system);
    checker_ = std::make_unique<mc::Checker>(mc::makeModel(params_.model));

    // Unroll every test into its array form (diy -s semantics).
    Addr max_addrs = 1;
    suite_.reserve(suite.size());
    for (const LitmusTest &t : suite) {
        const Addr block =
            static_cast<Addr>(t.numAddrs) * params_.addrStride;
        suite_.push_back(unroll(t, params_.instances, block));
        max_addrs = std::max(
            max_addrs, static_cast<Addr>(suite_.back().numAddrs));
    }
    const Addr mem_size = max_addrs * params_.addrStride;

    host::Workload::Params wl;
    wl.iterations = params_.iterationsPerRun;
    wl.checkEveryIteration = false; // Self-checking only.
    wl.checkMode = params_.checkMode;
    wl.witnessWindow = params_.witnessWindow;
    workload_ = std::make_unique<host::Workload>(
        *system_, *checker_,
        host::TestMemLayout(mem_size, params_.addrStride), wl);
}

host::HarnessResult
LitmusRunner::run(const host::Budget &budget)
{
    const auto t0 = std::chrono::steady_clock::now();
    auto elapsed = [&t0]() {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
            .count();
    };

    host::HarnessResult result;
    if (suite_.empty()) {
        result.wallSeconds = elapsed();
        return result;
    }

    std::size_t idx = 0;
    for (;;) {
        if (budget.isInterrupted())
            break;
        if (budget.maxTestRuns > 0 &&
            result.testRuns >= budget.maxTestRuns) {
            break;
        }
        if (budget.maxWallSeconds > 0.0 &&
            elapsed() >= budget.maxWallSeconds) {
            break;
        }

        const LitmusTest &test = suite_[idx];
        idx = (idx + 1) % suite_.size(); // Outer loop over the suite.

        host::RunResult run = workload_->runTest(
            test.test, [&test](const mc::ExecWitness &ew) {
                return evalForbidden(test, ew);
            });
        ++result.testRuns;
        result.simTicks += run.simTicks;
        result.eventsExecuted += run.eventsExecuted;
        result.simEvents += run.simEvents;
        result.messagesSent += run.messagesSent;

        if (run.bugDetected()) {
            result.bugFound = true;
            result.detail = test.name + ": " + run.describe();
            result.testRunsToBug = result.testRuns;
            result.eventsUntilDetection = run.eventsUntilDetection;
            result.wallSecondsToBug = elapsed();
            break;
        }
    }
    result.wallSeconds = elapsed();
    result.totalCoverage = system_->coverage().totalCoverage();
    return result;
}

} // namespace mcversi::litmus
