/**
 * @file
 * Test sources: where the next test comes from (§5.2).
 *
 *  - RandomSource: McVerSi-RAND, stateless pseudo-random generation.
 *  - GaSource: the GP-based generators, backed by the island-model
 *    EvolutionEngine (gp/evolution.hh). In Selective mode (McVerSi-ALL)
 *    fitness is the adaptive coverage alone; in SinglePoint mode
 *    (McVerSi-Std.XO) fitness adds normalized NDT with equal weighting,
 *    since the standard crossover cannot otherwise converge towards
 *    racy tests.
 *
 * Every source supports both the serial next()/report() contract and
 * the batched nextBatch()/reportBatch() contract the ParallelHarness
 * drives: pull a batch of tests, evaluate them on independent
 * simulation lanes, and report the results in batch-slot order. The
 * base class supplies loop adapters in both directions, so a serial
 * source works under a batch harness and vice versa; GaSource forwards
 * batches to the engine natively.
 */

#ifndef MCVERSI_HOST_SOURCES_HH
#define MCVERSI_HOST_SOURCES_HH

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "gp/evolution.hh"
#include "gp/fitness.hh"
#include "gp/ga.hh"
#include "gp/ndmetrics.hh"
#include "gp/randgen.hh"
#include "gp/test.hh"

namespace mcversi::host {

/** Feedback passed back to a source after evaluating its test. */
struct RunFeedback
{
    /** Adaptive coverage fitness in [0, 1]. */
    double coverageFitness = 0.0;
    /** Non-determinism metrics of the test-run. */
    gp::NdInfo nd{};
};

/** Produces tests and consumes evaluation feedback. */
class TestSource
{
  public:
    virtual ~TestSource() = default;
    virtual gp::Test next() = 0;
    virtual void report(const RunFeedback &feedback) = 0;
    virtual std::string name() const = 0;

    /**
     * Fill @p out with out.size() tests (reusing the tests' node
     * capacity where possible). Must be followed by one reportBatch()
     * of the same size. Default: out.size() next() calls.
     */
    virtual void
    nextBatch(std::span<gp::Test> out)
    {
        for (gp::Test &test : out)
            test = next();
    }

    /**
     * Report the results of the last nextBatch(), in batch-slot order.
     * NdInfo payloads may be moved out of @p feedback. Default: one
     * report() call per slot.
     */
    virtual void
    reportBatch(std::span<RunFeedback> feedback)
    {
        for (const RunFeedback &fb : feedback)
            report(fb);
    }

    /** True if meanFitness() carries a real population metric. */
    virtual bool hasFitnessMetrics() const { return false; }
    /** Mean population fitness (generation-metric export). */
    virtual double meanFitness() const { return 0.0; }

    /**
     * Lane count a batch harness must use to honor this source's
     * internal sharding (a GaSource's island count), or 0 if any lane
     * count works (stateless sources).
     */
    virtual std::size_t requiredLanes() const { return 0; }
};

/** McVerSi-RAND: stateless pseudo-random tests. */
class RandomSource : public TestSource
{
  public:
    RandomSource(gp::GenParams params, std::uint64_t seed)
        : gen_(params), rng_(seed)
    {
    }

    gp::Test next() override { return gen_.randomTest(rng_); }
    void report(const RunFeedback &) override {}

    /** Batch pull, reusing each slot's node storage (no per-test
     * allocation in the steady state). Draw-compatible with next(). */
    void
    nextBatch(std::span<gp::Test> out) override
    {
        for (gp::Test &test : out)
            gen_.randomTestInto(rng_, test);
    }

    void reportBatch(std::span<RunFeedback>) override {}

    std::string name() const override { return "McVerSi-RAND"; }

  private:
    gp::RandomTestGen gen_;
    Rng rng_;
};

/** McVerSi-ALL / McVerSi-Std.XO: island-model GP generation. */
class GaSource : public TestSource
{
  public:
    GaSource(gp::GaParams ga, gp::GenParams gen, std::uint64_t seed,
             gp::XoMode mode, gp::EvolutionParams evo = {})
        : engine_(ga, gen, seed, mode, evo)
    {
    }

    gp::Test
    next() override
    {
        gp::EvolutionEngine::TestRef ref;
        engine_.nextBatch({&ref, 1});
        gp::Test test;
        test.assign(engine_.genome(ref));
        return test;
    }

    void
    report(const RunFeedback &feedback) override
    {
        gp::EvalResult result;
        result.fitness = blendFitness(feedback);
        result.nd = feedback.nd;
        engine_.reportBatch({&result, 1});
    }

    void
    nextBatch(std::span<gp::Test> out) override
    {
        refs_.resize(out.size());
        engine_.nextBatch(refs_);
        for (std::size_t i = 0; i < out.size(); ++i)
            out[i].assign(engine_.genome(refs_[i]));
    }

    void
    reportBatch(std::span<RunFeedback> feedback) override
    {
        results_.resize(feedback.size());
        for (std::size_t i = 0; i < feedback.size(); ++i) {
            results_[i].fitness = blendFitness(feedback[i]);
            results_[i].nd = std::move(feedback[i].nd);
        }
        engine_.reportBatch(results_);
    }

    std::string
    name() const override
    {
        return engine_.mode() == gp::XoMode::Selective
                   ? "McVerSi-ALL"
                   : "McVerSi-Std.XO";
    }

    bool hasFitnessMetrics() const override { return true; }
    double meanFitness() const override
    {
        return engine_.meanFitness();
    }

    /** Lane affinity: one simulation lane per engine island. */
    std::size_t requiredLanes() const override
    {
        return engine_.islandCount();
    }

    const gp::EvolutionEngine &engine() const { return engine_; }

  private:
    double
    blendFitness(const RunFeedback &feedback) const
    {
        double fitness = feedback.coverageFitness;
        if (engine_.mode() == gp::XoMode::SinglePoint) {
            // Std.XO: equal weighting of coverage and normalized NDT.
            fitness = 0.5 * fitness +
                      0.5 * gp::normalizedNdt(feedback.nd.ndt);
        }
        return fitness;
    }

    gp::EvolutionEngine engine_;
    /** Pending-batch scratch, reused across batches. */
    std::vector<gp::EvolutionEngine::TestRef> refs_;
    std::vector<gp::EvalResult> results_;
};

} // namespace mcversi::host

#endif // MCVERSI_HOST_SOURCES_HH
