/**
 * @file
 * Executable test representation for the simulated cores.
 *
 * The host "emits code on-the-fly" (§4) by translating each thread of a
 * generated test into a Program: a straight-line sequence of memory
 * instructions with physical addresses resolved. Address-dependent
 * loads compute their effective address from the value of the nearest
 * preceding load at run time, through the host-provided logical-to-
 * physical mapping.
 */

#ifndef MCVERSI_SIM_CPU_PROGRAM_HH
#define MCVERSI_SIM_CPU_PROGRAM_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hh"

namespace mcversi::sim {

/** Instruction kinds executed by the simulated core. */
enum class InstrKind : std::uint8_t {
    Load,
    LoadAddrDep, ///< load whose address depends on a prior load's value
    Store,
    Rmw,
    Flush,
    Delay,
};

/** One instruction of a thread program. */
struct ProgInstr
{
    InstrKind kind = InstrKind::Delay;
    /** Physical address (memory instructions; base for LoadAddrDep). */
    Addr addr = 0;
    /** Logical test-memory offset (base for LoadAddrDep arithmetic). */
    Addr logical = 0;
    /** Delay in cycles (Delay instructions). */
    std::uint32_t delay = 8;
};

/** One thread's program plus the address-mapping context. */
struct Program
{
    std::vector<ProgInstr> instrs;
    /** Maps a logical test-memory offset to a physical address. */
    std::function<Addr(Addr)> mapLogical;
    /** Logical test-memory size (for LoadAddrDep wrap-around). */
    Addr memSize = 0;
    /** Address stride (LoadAddrDep results are stride-aligned). */
    Addr stride = 16;

    /**
     * Effective address of a LoadAddrDep given the dependency value,
     * scrambled so distinct values spread over the region.
     */
    Addr
    depAddr(const ProgInstr &instr, WriteVal dep_value) const
    {
        if (memSize == 0 || !mapLogical)
            return instr.addr;
        const std::uint64_t mix =
            (dep_value * 0x9e3779b97f4a7c15ull) >> 32;
        const Addr slots = memSize / stride;
        const Addr slot = (instr.logical / stride + mix) % slots;
        return mapLogical(slot * stride);
    }
};

} // namespace mcversi::sim

#endif // MCVERSI_SIM_CPU_PROGRAM_HH
