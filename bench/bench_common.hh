/**
 * @file
 * Shared infrastructure for the paper-reproduction benches.
 *
 * Absolute numbers from the paper (hours on the authors' Xeon host)
 * are meaningless here; budgets are expressed in test-runs and scaled
 * down so every bench finishes in minutes. Set MCVERSI_BENCH_SCALE to
 * scale all budgets (e.g. 4 for a longer, higher-confidence run), and
 * MCVERSI_BENCH_SAMPLES to override the per-cell sample count (paper:
 * 10).
 */

#ifndef MCVERSI_BENCH_BENCH_COMMON_HH
#define MCVERSI_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "mcversi.hh"

namespace mcvbench {

using namespace mcversi;

inline double
benchScale()
{
    if (const char *s = std::getenv("MCVERSI_BENCH_SCALE"))
        return std::atof(s) > 0 ? std::atof(s) : 1.0;
    return 1.0;
}

inline int
benchSamples(int dflt)
{
    if (const char *s = std::getenv("MCVERSI_BENCH_SAMPLES"))
        return std::atoi(s) > 0 ? std::atoi(s) : dflt;
    return dflt;
}

/** Generator configurations of §5.2 (Table 4 columns). */
enum class GenConfig {
    All1K,
    All8K,
    StdXo1K,
    StdXo8K,
    Rand1K,
    Rand8K,
    DiyLitmus,
};

inline const char *
genConfigName(GenConfig c)
{
    switch (c) {
      case GenConfig::All1K: return "McVerSi-ALL (1KB)";
      case GenConfig::All8K: return "McVerSi-ALL (8KB)";
      case GenConfig::StdXo1K: return "McVerSi-Std.XO (1KB)";
      case GenConfig::StdXo8K: return "McVerSi-Std.XO (8KB)";
      case GenConfig::Rand1K: return "McVerSi-RAND (1KB)";
      case GenConfig::Rand8K: return "McVerSi-RAND (8KB)";
      case GenConfig::DiyLitmus: return "diy-litmus";
    }
    return "?";
}

inline bool
isLitmus(GenConfig c)
{
    return c == GenConfig::DiyLitmus;
}

inline Addr
memSizeOf(GenConfig c)
{
    switch (c) {
      case GenConfig::All1K:
      case GenConfig::StdXo1K:
      case GenConfig::Rand1K:
        return 1024;
      default:
        return 8 * 1024;
    }
}

/** Scaled-down Table 3 generation parameters for bench budgets. */
inline gp::GenParams
benchGenParams(GenConfig c)
{
    gp::GenParams gen;
    gen.testSize = 192; // paper: 1k ops; scaled for wall-clock budgets
    gen.iterations = 4; // paper: 10
    gen.memSize = memSizeOf(c);
    return gen;
}

struct CellResult
{
    int found = 0;
    int samples = 0;
    double meanRunsToBug = 0.0;
    double meanSecondsToBug = 0.0;
    std::vector<std::uint64_t> runsToBug;
};

/**
 * Run one generator/bug pair for several samples (different seeds),
 * mirroring §5.1's methodology with test-run budgets instead of a
 * 24-hour limit.
 */
inline CellResult
runCell(GenConfig config, sim::BugId bug, int samples,
        std::uint64_t max_runs, double max_seconds)
{
    CellResult cell;
    cell.samples = samples;
    double total_runs = 0.0;
    double total_secs = 0.0;

    for (int s = 0; s < samples; ++s) {
        const std::uint64_t seed =
            0xb5297a4dull * static_cast<std::uint64_t>(s + 1) +
            static_cast<std::uint64_t>(bug) * 97 +
            static_cast<std::uint64_t>(config);

        host::Budget budget;
        budget.maxTestRuns = max_runs;
        budget.maxWallSeconds = max_seconds;

        host::HarnessResult result;
        const sim::BugInfo &info = sim::bugInfo(bug);
        const sim::Protocol protocol =
            info.protocol == sim::ProtocolKind::Tsocc
                ? sim::Protocol::Tsocc
                : sim::Protocol::Mesi;

        if (isLitmus(config)) {
            litmus::LitmusRunner::Params params;
            params.system.bug = bug;
            params.system.seed = seed;
            params.system.protocol = protocol;
            params.iterationsPerRun = 12;
            litmus::LitmusRunner runner(params, litmus::x86TsoSuite());
            // Litmus runs are much cheaper per test-run.
            host::Budget lb = budget;
            lb.maxTestRuns = max_runs * 4;
            result = runner.run(lb);
        } else {
            host::VerificationHarness::Params params;
            params.system.bug = bug;
            params.system.seed = seed;
            params.system.protocol = protocol;
            params.gen = benchGenParams(config);
            params.workload.iterations = params.gen.iterations;
            params.recordNdt = false;

            gp::GaParams ga;
            ga.population = 40;

            switch (config) {
              case GenConfig::All1K:
              case GenConfig::All8K: {
                host::GaSource source(
                    ga, params.gen, seed,
                    gp::SteadyStateGa::XoMode::Selective);
                host::VerificationHarness harness(params, source);
                result = harness.run(budget);
                break;
              }
              case GenConfig::StdXo1K:
              case GenConfig::StdXo8K: {
                host::GaSource source(
                    ga, params.gen, seed,
                    gp::SteadyStateGa::XoMode::SinglePoint);
                host::VerificationHarness harness(params, source);
                result = harness.run(budget);
                break;
              }
              default: {
                host::RandomSource source(params.gen, seed);
                host::VerificationHarness harness(params, source);
                result = harness.run(budget);
                break;
              }
            }
        }

        if (result.bugFound) {
            ++cell.found;
            total_runs += static_cast<double>(result.testRunsToBug);
            total_secs += result.wallSecondsToBug;
            cell.runsToBug.push_back(result.testRunsToBug);
        }
    }
    if (cell.found > 0) {
        cell.meanRunsToBug = total_runs / cell.found;
        cell.meanSecondsToBug = total_secs / cell.found;
    }
    return cell;
}

} // namespace mcvbench

#endif // MCVERSI_BENCH_BENCH_COMMON_HH
