// Temporary diagnostic: transition frequencies under a bug config.
// Uses the generator registry + a hand-driven harness because it needs
// the live System (coverage counters, squash counts) after the run.
#include <iostream>
#include <string>

#include "mcversi.hh"

using namespace mcversi;

int
main(int argc, char **argv)
{
    campaign::CampaignSpec spec;
    spec.bug = argc > 1 ? argv[1] : "MESI,LQ+M,Inv";
    spec.generator = "McVerSi-RAND";
    spec.seed = 3;
    spec.maxTestRuns =
        argc > 2 ? std::strtoull(argv[2], nullptr, 0) : 100;

    auto source = campaign::SourceRegistry::instance().make(
        spec.generator, spec);
    host::VerificationHarness harness(spec.harnessParams(), *source);
    auto result = harness.run(spec.budget());
    std::cout << "bugFound=" << result.bugFound << " runs="
              << result.testRuns << "\n";

    auto &cov = harness.system().coverage();
    for (std::uint32_t id = 0; id < cov.numTransitions(); ++id) {
        std::cout << cov.name(id) << " = " << cov.counts()[id] << "\n";
    }
    std::uint64_t squashes = 0;
    for (Pid p = 0; p < 8; ++p)
        squashes += harness.system().core(p).squashes();
    std::cout << "total squashes = " << squashes << "\n";
    return 0;
}
