#include "host/parallel_harness.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>

#include "common/strict.hh"

namespace mcversi::host {

namespace {

/**
 * Persistent batch-evaluation pool: workers are spawned once per
 * harness run and parked between batch barriers, so the per-batch cost
 * is a wakeup instead of a thread spawn. dispatch() hands every worker
 * the same job (claim lanes from a shared counter) and returns when
 * all of them finished it.
 */
class BarrierPool
{
  public:
    BarrierPool(std::size_t workers, std::function<void()> job)
        : job_(std::move(job))
    {
        threads_.reserve(workers);
        for (std::size_t i = 0; i < workers; ++i)
            threads_.emplace_back([this]() { workerLoop(); });
    }

    ~BarrierPool()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stop_ = true;
        }
        wake_.notify_all();
        for (std::thread &t : threads_)
            t.join();
    }

    /** Run the job on every worker; returns after all complete. */
    void
    dispatch()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        working_ = threads_.size();
        ++epoch_;
        wake_.notify_all();
        done_.wait(lock, [this]() { return working_ == 0; });
    }

  private:
    void
    workerLoop()
    {
        std::uint64_t seen = 0;
        for (;;) {
            {
                std::unique_lock<std::mutex> lock(mutex_);
                wake_.wait(lock, [&]() {
                    return stop_ || epoch_ != seen;
                });
                if (stop_)
                    return;
                seen = epoch_;
            }
            job_();
            {
                std::lock_guard<std::mutex> lock(mutex_);
                if (--working_ == 0)
                    done_.notify_one();
            }
        }
    }

    const std::function<void()> job_;
    std::vector<std::thread> threads_;
    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;
    std::uint64_t epoch_ = 0;
    std::size_t working_ = 0;
    bool stop_ = false;
};

} // namespace

ParallelHarness::ParallelHarness(Params params, TestSource &source)
    : params_(params), source_(source),
      fitness_(params.harness.fitness)
{
    if (params_.lanes == 0)
        params_.lanes = 1;
    if (params_.batch == 0)
        params_.batch = 1;
    // The documented lane-affinity contract: a sharded source's tests
    // must land on the lane matching their island (both sides deal by
    // the same (issued + b) % N formula, so the counts must agree).
    checkApiContract(
        source_.requiredLanes() == 0 ||
            source_.requiredLanes() == params_.lanes,
        "ParallelHarness: lanes does not match the source's island "
        "count; island lane-affinity would be silently broken");

    lanes_.reserve(params_.lanes);
    for (std::size_t l = 0; l < params_.lanes; ++l) {
        auto lane = std::make_unique<Lane>();
        sim::SystemConfig config = params_.harness.system;
        // Counter-based per-lane sim streams; lane 0 keeps the base
        // seed, so a single lane reproduces the serial harness exactly.
        config.seed = Rng::streamSeed(config.seed, l);
        lane->system = std::make_unique<sim::System>(config);
        lane->checker =
            std::make_unique<mc::Checker>(mc::makeModel(params_.harness.model));
        // One verdict cache per lane (a Checker is single-threaded);
        // per-lane hit/distinct sequences depend only on that lane's
        // slots, so the summed telemetry is worker-count-invariant.
        if (params_.harness.checkCacheEntries > 0) {
            lane->checker->enableVerdictCache(
                {.capacity = params_.harness.checkCacheEntries});
        }
        lane->workload = std::make_unique<Workload>(
            *lane->system, *lane->checker, layoutFor(params_.harness.gen),
            params_.harness.workload);
        lanes_.push_back(std::move(lane));
    }

    batchTests_.resize(params_.batch);
    batchFeedback_.resize(params_.batch);
    batchOutcome_.resize(params_.batch);
    laneOfSlot_.resize(params_.batch);
}

void
ParallelHarness::evaluateLane(std::size_t lane)
{
    Workload &workload = *lanes_[lane]->workload;
    for (std::size_t b = 0; b < batchSize_; ++b) {
        if (laneOfSlot_[b] != lane)
            continue;
        RunResult run = workload.runTest(batchTests_[b]);

        SlotOutcome &outcome = batchOutcome_[b];
        outcome.bug = run.bugDetected();
        outcome.detail = outcome.bug ? run.describe() : std::string();
        outcome.eventsUntilDetection = run.eventsUntilDetection;
        outcome.ndt = run.nd.ndt;
        outcome.checkSeconds = run.checkSeconds;
        outcome.simTicks = run.simTicks;
        outcome.eventsExecuted = run.eventsExecuted;
        outcome.simEvents = run.simEvents;
        outcome.messagesSent = run.messagesSent;

        // Score against the cut-off frozen at the batch barrier (const
        // read; record() replays in slot order at the merge).
        batchFeedback_[b].coverageFitness =
            fitness_.score(run.preRunCounts, run.coveredTransitions,
                           run.newInterleavings);
        batchFeedback_[b].nd = std::move(run.nd);
    }
}

HarnessResult
ParallelHarness::run(const Budget &budget)
{
    const auto t0 = std::chrono::steady_clock::now();
    auto elapsed = [&t0]() {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
            .count();
    };

    std::size_t workers = params_.threads > 0
        ? static_cast<std::size_t>(params_.threads)
        : std::max(1u, std::thread::hardware_concurrency());
    workers = std::min(workers, lanes_.size());

    // Persistent worker pool, parked between batch barriers. Each
    // dispatch claims whole lanes off a shared counter.
    std::atomic<std::size_t> nextLane{0};
    const std::function<void()> job = [&]() {
        for (;;) {
            const std::size_t l =
                nextLane.fetch_add(1, std::memory_order_relaxed);
            if (l >= lanes_.size())
                return;
            evaluateLane(l);
        }
    };
    std::unique_ptr<BarrierPool> pool;
    if (workers > 1)
        pool = std::make_unique<BarrierPool>(workers, job);

    HarnessResult result;
    for (;;) {
        if (budget.isInterrupted())
            break;
        if (budget.maxTestRuns > 0 && result.testRuns >= budget.maxTestRuns)
            break;
        if (budget.maxWallSeconds > 0.0 &&
            elapsed() >= budget.maxWallSeconds) {
            break;
        }

        batchSize_ = params_.batch;
        if (budget.maxTestRuns > 0) {
            batchSize_ = std::min<std::size_t>(
                batchSize_, budget.maxTestRuns - result.testRuns);
        }

        source_.nextBatch({batchTests_.data(), batchSize_});
        for (std::size_t b = 0; b < batchSize_; ++b) {
            laneOfSlot_[b] = static_cast<std::uint32_t>(
                (issued_ + b) % lanes_.size());
        }
        issued_ += batchSize_;

        // Evaluate: workers claim whole lanes; each lane runs its slots
        // in ascending order on its own continuously-running system.
        if (pool == nullptr) {
            for (std::size_t l = 0; l < lanes_.size(); ++l)
                evaluateLane(l);
        } else {
            nextLane.store(0, std::memory_order_relaxed);
            pool->dispatch();
        }

        // Barrier merge, in slot order: deterministic for any worker
        // count. The whole batch is merged even when it contains a bug
        // (batch semantics); the stop points at the earliest bug slot.
        for (std::size_t b = 0; b < batchSize_; ++b) {
            const SlotOutcome &outcome = batchOutcome_[b];
            ++result.testRuns;
            result.checkSeconds += outcome.checkSeconds;
            result.simTicks += outcome.simTicks;
            result.eventsExecuted += outcome.eventsExecuted;
            result.simEvents += outcome.simEvents;
            result.messagesSent += outcome.messagesSent;
            if (params_.harness.recordNdt)
                result.ndtHistory.push_back(outcome.ndt);
            fitness_.record(batchFeedback_[b].coverageFitness);
            if (outcome.bug && !result.bugFound) {
                result.bugFound = true;
                result.detail = outcome.detail;
                result.testRunsToBug = result.testRuns;
                result.eventsUntilDetection = outcome.eventsUntilDetection;
                result.wallSecondsToBug = elapsed();
            }
        }

        // The source sees the full batch's feedback (as the serial
        // harness reports the bug-finding run before stopping).
        source_.reportBatch({batchFeedback_.data(), batchSize_});

        if (source_.hasFitnessMetrics() &&
            result.fitnessTrajectory.size() <
                HarnessResult::kMaxTrajectorySamples) {
            result.fitnessTrajectory.push_back(source_.meanFitness());
        }

        if (result.bugFound)
            break;
    }

    result.wallSeconds = elapsed();
    result.totalCoverage = aggregateCoverage();
    result.meanFitness = source_.meanFitness();
    for (const auto &lane : lanes_) {
        if (const mc::VerdictCache *cache = lane->checker->verdictCache()) {
            result.checkCacheHits += cache->stats().hits;
            result.checkCacheMisses += cache->stats().misses;
            result.distinctInterleavings += cache->stats().distinct;
        }
    }
    return result;
}

double
ParallelHarness::aggregateCoverage(const std::string &prefix) const
{
    const sim::TransitionCoverage &first = lanes_[0]->system->coverage();
    const std::size_t n = first.numTransitions();
    std::size_t total = 0;
    std::size_t hit = 0;
    for (std::uint32_t id = 0; id < n; ++id) {
        if (!prefix.empty() && first.name(id).rfind(prefix, 0) != 0)
            continue;
        ++total;
        for (const auto &lane : lanes_) {
            const auto &counts = lane->system->coverage().counts();
            if (id < counts.size() && counts[id] > 0) {
                ++hit;
                break;
            }
        }
    }
    if (total == 0)
        return 0.0;
    return static_cast<double>(hit) / static_cast<double>(total);
}

} // namespace mcversi::host
