/**
 * @file
 * End-to-end simulation throughput bench.
 *
 * McVerSi's premise is that simulation throughput bounds how much of
 * the coverage frontier a campaign can explore. This bench measures
 * the whole per-test loop -- generate (RandomSource), simulate (cores,
 * caches, mesh, memory on the DES kernel), record the witness, check
 * -- and reports tests/sec, kernel events/sec and us/kernel-event per
 * scenario, plus an aggregate. It is the repo's end-to-end perf
 * trajectory anchor: BENCH_sim.json records baseline-vs-current pairs
 * measured with this source on the same machine.
 *
 * Scenarios cover both protocols at two test sizes; events/sec is the
 * DES-kernel dispatch rate (EventQueue::processed), the quantity the
 * typed-event/time-wheel kernel optimizes.
 *
 * Output: JSON (schema below) written to BENCH_sim.json (override with
 * MCVERSI_BENCH_JSON). MCVERSI_BENCH_SCALE scales the per-scenario
 * test-run budget.
 *
 *   {
 *     "bench": "sim_throughput", "schema": 1,
 *     "scenarios": [{"name", "protocol", "testSize", "iterations",
 *                    "testRuns", "simEvents", "simTicks", "seconds",
 *                    "testsPerSec", "simEventsPerSec", "usPerEvent"},
 *                   ...],
 *     "aggregate": {"testsPerSec", "simEventsPerSec", "usPerEvent"}
 *   }
 */

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "host/harness.hh"

using namespace mcversi;
using namespace mcversi::host;

namespace {

struct Scenario
{
    const char *name;
    sim::Protocol protocol;
    int testSize;
    int iterations;
    std::uint64_t systemSeed;
    std::uint64_t sourceSeed;
    std::uint64_t testRuns; ///< budget before MCVERSI_BENCH_SCALE
};

constexpr Scenario kScenarios[] = {
    {"mesi-96", sim::Protocol::Mesi, 96, 4, 101, 11, 30},
    {"mesi-256", sim::Protocol::Mesi, 256, 8, 102, 12, 10},
    {"tsocc-96", sim::Protocol::Tsocc, 96, 4, 103, 13, 30},
    {"tsocc-256", sim::Protocol::Tsocc, 256, 8, 104, 14, 10},
};

struct ScenarioResult
{
    const Scenario *scenario = nullptr;
    std::uint64_t testRuns = 0;
    std::uint64_t simEvents = 0;
    std::uint64_t simTicks = 0;
    double seconds = 0.0;

    double
    testsPerSec() const
    {
        return seconds > 0.0 ? static_cast<double>(testRuns) / seconds
                             : 0.0;
    }

    double
    simEventsPerSec() const
    {
        return seconds > 0.0 ? static_cast<double>(simEvents) / seconds
                             : 0.0;
    }

    double
    usPerEvent() const
    {
        return simEvents > 0
                   ? seconds * 1e6 / static_cast<double>(simEvents)
                   : 0.0;
    }
};

ScenarioResult
runScenario(const Scenario &sc)
{
    VerificationHarness::Params params;
    params.system.protocol = sc.protocol;
    params.system.seed = sc.systemSeed;
    params.gen.testSize = sc.testSize;
    params.gen.iterations = sc.iterations;
    params.gen.memSize = 1024;
    params.workload.iterations = params.gen.iterations;
    params.recordNdt = false;

    RandomSource source(params.gen, sc.sourceSeed);
    VerificationHarness harness(params, source);

    const auto budget_runs = static_cast<std::uint64_t>(
        static_cast<double>(sc.testRuns) * mcvbench::benchScale());

    // Warmup: one test-run populates pools, caches and coverage
    // structures so the measurement sees steady state.
    Budget warm;
    warm.maxTestRuns = 1;
    if (harness.run(warm).bugFound) {
        std::fprintf(stderr, "bench scenario '%s' found a bug on the "
                             "clean system; broken build\n",
                     sc.name);
        std::exit(1);
    }

    const std::uint64_t events0 =
        harness.system().eventQueue().processed();
    const Tick ticks0 = harness.system().eventQueue().now();

    Budget budget;
    budget.maxTestRuns = budget_runs;
    const auto t0 = std::chrono::steady_clock::now();
    const HarnessResult result = harness.run(budget);
    const double seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
    if (result.bugFound)
        std::exit(1); // Unreachable on a clean system.

    ScenarioResult res;
    res.scenario = &sc;
    res.testRuns = result.testRuns;
    res.simEvents =
        harness.system().eventQueue().processed() - events0;
    res.simTicks = harness.system().eventQueue().now() - ticks0;
    res.seconds = seconds;
    return res;
}

std::string
toJson(const std::vector<ScenarioResult> &results)
{
    char buf[256];
    std::string out = "{\n  \"bench\": \"sim_throughput\",\n"
                      "  \"schema\": 1,\n  \"scenarios\": [\n";
    std::uint64_t total_tests = 0;
    std::uint64_t total_events = 0;
    double total_seconds = 0.0;
    for (std::size_t i = 0; i < results.size(); ++i) {
        const ScenarioResult &r = results[i];
        const Scenario &sc = *r.scenario;
        std::snprintf(
            buf, sizeof(buf),
            "    {\"name\": \"%s\", \"protocol\": \"%s\", "
            "\"testSize\": %d, \"iterations\": %d, "
            "\"testRuns\": %" PRIu64 ", \"simEvents\": %" PRIu64
            ", \"simTicks\": %" PRIu64 ", \"seconds\": %.6f, "
            "\"testsPerSec\": %.1f, \"simEventsPerSec\": %.0f, "
            "\"usPerEvent\": %.4f}%s\n",
            sc.name,
            sc.protocol == sim::Protocol::Mesi ? "MESI" : "TSO-CC",
            sc.testSize, sc.iterations, r.testRuns, r.simEvents,
            r.simTicks, r.seconds, r.testsPerSec(), r.simEventsPerSec(),
            r.usPerEvent(), i + 1 < results.size() ? "," : "");
        out += buf;
        total_tests += r.testRuns;
        total_events += r.simEvents;
        total_seconds += r.seconds;
    }
    const double agg_tests =
        total_seconds > 0.0
            ? static_cast<double>(total_tests) / total_seconds
            : 0.0;
    const double agg_events =
        total_seconds > 0.0
            ? static_cast<double>(total_events) / total_seconds
            : 0.0;
    const double agg_us =
        total_events > 0
            ? total_seconds * 1e6 / static_cast<double>(total_events)
            : 0.0;
    std::snprintf(buf, sizeof(buf),
                  "  ],\n  \"aggregate\": {\"testsPerSec\": %.1f, "
                  "\"simEventsPerSec\": %.0f, \"usPerEvent\": %.4f}\n}\n",
                  agg_tests, agg_events, agg_us);
    out += buf;
    return out;
}

} // namespace

int
main()
{
    std::vector<ScenarioResult> results;
    for (const Scenario &sc : kScenarios) {
        results.push_back(runScenario(sc));
        const ScenarioResult &r = results.back();
        std::printf("%-10s %8" PRIu64 " runs %12" PRIu64
                    " events  %8.3fs  %8.1f tests/s  %10.0f ev/s  "
                    "%.4f us/ev\n",
                    r.scenario->name, r.testRuns, r.simEvents, r.seconds,
                    r.testsPerSec(), r.simEventsPerSec(), r.usPerEvent());
    }

    const std::string json = toJson(results);
    const char *path = std::getenv("MCVERSI_BENCH_JSON");
    if (path == nullptr)
        path = "BENCH_sim.json";
    std::ofstream out(path, std::ios::binary);
    out << json;
    std::printf("wrote %s\n", path);
    return 0;
}
