#include "gp/test.hh"

namespace mcversi::gp {

void
Test::threadSlots(int num_threads, ThreadSlots &out) const
{
    const auto threads = static_cast<std::size_t>(num_threads);
    out.offsets_.assign(threads + 1, 0);

    // Counting sort: per-pid counts, prefix sums, then a fill pass via
    // per-pid cursors. Every buffer keeps its capacity across calls.
    for (const Node &node : nodes_) {
        const Pid pid = node.pid;
        if (pid >= 0 && pid < num_threads)
            ++out.offsets_[static_cast<std::size_t>(pid) + 1];
    }
    for (std::size_t t = 0; t < threads; ++t)
        out.offsets_[t + 1] += out.offsets_[t];

    out.slots_.resize(out.offsets_[threads]);
    out.cursor_.assign(out.offsets_.begin(),
                       out.offsets_.end() - 1);
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        const Pid pid = nodes_[i].pid;
        if (pid >= 0 && pid < num_threads)
            out.slots_[out.cursor_[static_cast<std::size_t>(pid)]++] = i;
    }
}

std::size_t
Test::countMemOps() const
{
    std::size_t n = 0;
    for (const Node &node : nodes_)
        if (node.op.isMem())
            ++n;
    return n;
}

AddrSet
Test::usedAddrs() const
{
    AddrSet out;
    for (const Node &node : nodes_)
        if (node.op.isMem())
            out.insert(node.op.addr);
    return out;
}

std::size_t
Test::countEvents() const
{
    std::size_t n = 0;
    for (const Node &node : nodes_)
        n += static_cast<std::size_t>(node.op.numEvents());
    return n;
}

std::uint64_t
fingerprintNodes(std::span<const Node> nodes)
{
    // FNV-1a over the node contents.
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 1099511628211ull;
    };
    for (const Node &node : nodes) {
        mix(static_cast<std::uint64_t>(node.pid));
        mix(static_cast<std::uint64_t>(node.op.kind));
        mix(node.op.addr);
        mix(node.op.delay);
    }
    return h;
}

std::uint64_t
Test::fingerprint() const
{
    return fingerprintNodes(nodes_);
}

} // namespace mcversi::gp
