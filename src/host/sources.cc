#include "host/sources.hh"

// Sources are header-only; this translation unit anchors them in the
// build.
