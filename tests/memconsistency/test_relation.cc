/** @file Unit tests for the Relation algebra. */

#include <gtest/gtest.h>

#include <algorithm>

#include "memconsistency/relation.hh"

using namespace mcversi::mc;

TEST(Relation, EmptyProperties)
{
    Relation r;
    EXPECT_TRUE(r.empty());
    EXPECT_EQ(r.size(), 0u);
    EXPECT_TRUE(r.acyclic());
    EXPECT_TRUE(r.irreflexive());
    EXPECT_FALSE(r.contains(0, 1));
}

TEST(Relation, InsertIsIdempotent)
{
    Relation r;
    EXPECT_TRUE(r.insert(1, 2));
    EXPECT_FALSE(r.insert(1, 2));
    EXPECT_EQ(r.size(), 1u);
    EXPECT_TRUE(r.contains(1, 2));
    EXPECT_FALSE(r.contains(2, 1));
}

TEST(Relation, SuccessorsQuery)
{
    Relation r;
    r.insert(1, 2);
    r.insert(1, 3);
    r.insert(2, 3);
    EXPECT_EQ(r.successors(1).size(), 2u);
    EXPECT_EQ(r.successors(2).size(), 1u);
    EXPECT_TRUE(r.successors(9).empty());
}

TEST(Relation, UnionWith)
{
    Relation a;
    a.insert(1, 2);
    Relation b;
    b.insert(2, 3);
    b.insert(1, 2);
    a.unionWith(b);
    EXPECT_EQ(a.size(), 2u);
    EXPECT_TRUE(a.contains(2, 3));
}

TEST(Relation, PairsEnumeration)
{
    Relation r;
    r.insert(5, 6);
    r.insert(6, 7);
    auto pairs = r.pairs();
    EXPECT_EQ(pairs.size(), 2u);
}

TEST(Relation, InDegrees)
{
    Relation r;
    r.insert(1, 3);
    r.insert(2, 3);
    r.insert(3, 4);
    auto in = r.inDegrees();
    ASSERT_EQ(in.size(), 5u);
    EXPECT_EQ(in[3], 2u);
    EXPECT_EQ(in[4], 1u);
    EXPECT_EQ(in[1], 0u);
}

TEST(Relation, SuccessorsAreSortedRegardlessOfInsertOrder)
{
    Relation r;
    r.insert(1, 9);
    r.insert(1, 3);
    r.insert(1, 7);
    r.insert(1, 3);
    const auto succs = r.successors(1);
    ASSERT_EQ(succs.size(), 3u);
    EXPECT_TRUE(std::is_sorted(succs.begin(), succs.end()));
    EXPECT_EQ(r.size(), 3u);
}

TEST(Relation, PairsAreLexicographicallySorted)
{
    Relation r;
    r.insert(6, 7);
    r.insert(5, 9);
    r.insert(5, 6);
    const auto pairs = r.pairs();
    ASSERT_EQ(pairs.size(), 3u);
    EXPECT_TRUE(std::is_sorted(pairs.begin(), pairs.end()));
}

TEST(Relation, TransitiveClosureChain)
{
    Relation r;
    r.insert(1, 2);
    r.insert(2, 3);
    r.insert(3, 4);
    Relation tc = r.transitiveClosure();
    EXPECT_TRUE(tc.contains(1, 4));
    EXPECT_TRUE(tc.contains(1, 3));
    EXPECT_TRUE(tc.contains(2, 4));
    EXPECT_FALSE(tc.contains(4, 1));
    EXPECT_EQ(tc.size(), 6u);
}

TEST(Relation, TransitiveClosureOnCycleContainsSelfLoops)
{
    Relation r;
    r.insert(1, 2);
    r.insert(2, 1);
    Relation tc = r.transitiveClosure();
    EXPECT_TRUE(tc.contains(1, 1));
    EXPECT_TRUE(tc.contains(2, 2));
}

TEST(Relation, AcyclicDetectsCycle)
{
    Relation r;
    r.insert(1, 2);
    r.insert(2, 3);
    EXPECT_TRUE(r.acyclic());
    r.insert(3, 1);
    EXPECT_FALSE(r.acyclic());
}

TEST(Relation, AcyclicDetectsSelfLoop)
{
    Relation r;
    r.insert(7, 7);
    EXPECT_FALSE(r.acyclic());
    EXPECT_FALSE(r.irreflexive());
}

TEST(Relation, AcyclicOnDag)
{
    // Diamond: acyclic despite shared nodes.
    Relation r;
    r.insert(1, 2);
    r.insert(1, 3);
    r.insert(2, 4);
    r.insert(3, 4);
    EXPECT_TRUE(r.acyclic());
}

TEST(Relation, ClearResets)
{
    Relation r;
    r.insert(1, 2);
    r.clear();
    EXPECT_TRUE(r.empty());
    EXPECT_FALSE(r.contains(1, 2));
    EXPECT_TRUE(r.acyclic());
    EXPECT_EQ(r.inDegrees().size(), 0u);
    // Reusable after clear.
    EXPECT_TRUE(r.insert(3, 4));
    EXPECT_EQ(r.size(), 1u);
}

TEST(Relation, LargeChainAcyclicIterative)
{
    // Deep chain: the DFS must be iterative (no stack overflow).
    Relation r;
    for (EventId i = 0; i < 100000; ++i)
        r.insert(i, i + 1);
    EXPECT_TRUE(r.acyclic());
    r.insert(100000, 0);
    EXPECT_FALSE(r.acyclic());
}
