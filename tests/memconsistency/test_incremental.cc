/**
 * @file
 * IncrementalGraph (Pearce-Kelly dynamic topological ordering) tests:
 * differential against the batch CycleGraph DFS on random edge
 * sequences, cycle-report validity, poisoning semantics, and
 * capacity-preserving reuse across resets.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hh"
#include "memconsistency/graph.hh"
#include "memconsistency/incremental.hh"

using namespace mcversi;
using namespace mcversi::mc;

namespace {

using Node = IncrementalGraph::Node;

/** True if @p to is reachable from @p from using @p g's edges. */
bool
reachable(const CycleGraph &g, Node from, Node to)
{
    std::vector<bool> seen(g.numNodes(), false);
    std::vector<Node> stack{from};
    while (!stack.empty()) {
        const Node cur = stack.back();
        stack.pop_back();
        if (cur == to)
            return true;
        if (seen[static_cast<std::size_t>(cur)])
            continue;
        seen[static_cast<std::size_t>(cur)] = true;
        for (const Node nxt : g.successors(cur))
            stack.push_back(nxt);
    }
    return false;
}

/** Every consecutive pair of the reported cycle must be a real edge. */
void
expectGenuineCycle(const IncrementalGraph &inc, const CycleGraph &ref)
{
    const std::vector<Node> &cycle = inc.lastCycle();
    ASSERT_FALSE(cycle.empty());
    for (std::size_t i = 0; i < cycle.size(); ++i) {
        const Node from = cycle[i];
        const Node to = cycle[(i + 1) % cycle.size()];
        const auto &succ = ref.successors(from);
        EXPECT_TRUE(std::find(succ.begin(), succ.end(), to) !=
                    succ.end())
            << "cycle edge " << from << " -> " << to
            << " was never inserted";
    }
}

} // namespace

TEST(IncrementalGraph, FastPathChainStaysAcyclic)
{
    IncrementalGraph g;
    const Node a = g.addNode();
    const Node b = g.addNode();
    const Node c = g.addNode();
    EXPECT_TRUE(g.addEdge(a, b));
    EXPECT_TRUE(g.addEdge(b, c));
    EXPECT_TRUE(g.addEdge(a, c)); // Transitive duplicate is fine.
    EXPECT_FALSE(g.hasCycle());
}

TEST(IncrementalGraph, TwoNodeCycleDetected)
{
    IncrementalGraph g;
    const Node a = g.addNode();
    const Node b = g.addNode();
    EXPECT_TRUE(g.addEdge(a, b));
    EXPECT_FALSE(g.addEdge(b, a));
    EXPECT_TRUE(g.hasCycle());
    // Cycle starts at the inserted edge's target: [a, b].
    EXPECT_EQ(g.lastCycle(), (std::vector<Node>{a, b}));
}

TEST(IncrementalGraph, SelfLoopDetected)
{
    IncrementalGraph g;
    const Node a = g.addNode();
    EXPECT_FALSE(g.addEdge(a, a));
    EXPECT_TRUE(g.hasCycle());
    EXPECT_EQ(g.lastCycle(), (std::vector<Node>{a}));
}

TEST(IncrementalGraph, ReorderAgainstInsertionOrder)
{
    // Insert edges strictly against node-creation order, forcing the
    // slow (reorder) path on every insertion.
    IncrementalGraph g;
    constexpr int kNodes = 64;
    std::vector<Node> nodes;
    for (int i = 0; i < kNodes; ++i)
        nodes.push_back(g.addNode());
    for (int i = kNodes - 1; i > 0; --i)
        EXPECT_TRUE(g.addEdge(nodes[static_cast<std::size_t>(i)],
                              nodes[static_cast<std::size_t>(i - 1)]));
    EXPECT_FALSE(g.hasCycle());
    // Now close the loop end-around.
    EXPECT_FALSE(g.addEdge(nodes[0], nodes[kNodes - 1]));
    EXPECT_EQ(g.lastCycle().size(), static_cast<std::size_t>(kNodes));
}

TEST(IncrementalGraph, DifferentialAgainstBatchDfs)
{
    // Random edge sequences over small node counts: the incremental
    // graph must flag a cycle at exactly the first edge that makes the
    // batch DFS find one, and the reported cycle must be genuine.
    Rng rng(0x1c4e11);
    for (int round = 0; round < 200; ++round) {
        const int n = 2 + static_cast<int>(rng.below(24));
        const int edges = 1 + static_cast<int>(rng.below(96));

        IncrementalGraph inc;
        CycleGraph ref(static_cast<std::size_t>(n));
        for (int i = 0; i < n; ++i)
            inc.addNode();

        bool done = false;
        for (int e = 0; e < edges && !done; ++e) {
            const Node from = static_cast<Node>(
                rng.below(static_cast<std::uint64_t>(n)));
            const Node to = static_cast<Node>(
                rng.below(static_cast<std::uint64_t>(n)));
            ref.addEdge(from, to);
            const bool still_acyclic = inc.addEdge(from, to);
            const bool ref_acyclic = !ref.findCycle().has_value();
            ASSERT_EQ(still_acyclic, ref_acyclic)
                << "round " << round << " edge " << from << "->" << to;
            if (!still_acyclic) {
                expectGenuineCycle(inc, ref);
                done = true;
            }
        }
    }
}

TEST(IncrementalGraph, TopologicalOrderMatchesReachability)
{
    // After a batch of random acyclic insertions, every inserted edge
    // must still be accepted as a (duplicate) fast-path or reorderable
    // insertion -- i.e. the maintained order is consistent.
    Rng rng(0x70b0);
    IncrementalGraph g;
    CycleGraph ref(32);
    for (int i = 0; i < 32; ++i)
        g.addNode();
    std::vector<std::pair<Node, Node>> inserted;
    for (int e = 0; e < 200; ++e) {
        const Node from =
            static_cast<Node>(rng.below(32));
        const Node to = static_cast<Node>(rng.below(32));
        if (from == to || reachable(ref, to, from))
            continue; // Would close a cycle; keep the graph a DAG.
        ref.addEdge(from, to);
        ASSERT_TRUE(g.addEdge(from, to));
        inserted.emplace_back(from, to);
    }
    for (const auto &[from, to] : inserted)
        ASSERT_TRUE(g.addEdge(from, to));
    EXPECT_FALSE(g.hasCycle());
}

TEST(IncrementalGraph, ResetReusesCapacityAndClearsPoison)
{
    IncrementalGraph g;
    const Node a = g.addNode();
    const Node b = g.addNode();
    EXPECT_TRUE(g.addEdge(a, b));
    EXPECT_FALSE(g.addEdge(b, a));
    EXPECT_TRUE(g.hasCycle());

    g.reset();
    EXPECT_FALSE(g.hasCycle());
    EXPECT_EQ(g.numNodes(), 0u);

    // Same shape again after reset: identical behavior.
    const Node a2 = g.addNode();
    const Node b2 = g.addNode();
    EXPECT_TRUE(g.addEdge(a2, b2));
    EXPECT_TRUE(g.addEdge(a2, b2));
    EXPECT_FALSE(g.addEdge(b2, a2));
    EXPECT_EQ(g.lastCycle(), (std::vector<Node>{a2, b2}));
}

TEST(IncrementalGraphRetire, BypassPreservesReachability)
{
    // a -> n -> b; retiring n must leave a -> b reachable, so closing
    // b -> a is still detected as a cycle among the survivors.
    IncrementalGraph g;
    const Node a = g.addNode();
    const Node n = g.addNode();
    const Node b = g.addNode();
    EXPECT_TRUE(g.addEdge(a, n));
    EXPECT_TRUE(g.addEdge(n, b));
    g.retireNode(n);
    EXPECT_EQ(g.numLive(), 2u);
    // The bypass edge a -> b took n's place.
    EXPECT_EQ(g.successors(a), (std::vector<Node>{b}));
    EXPECT_EQ(g.predecessors(b), (std::vector<Node>{a}));
    EXPECT_FALSE(g.addEdge(b, a));
    EXPECT_TRUE(g.hasCycle());
}

TEST(IncrementalGraphRetire, RecyclesSlotsAndPurgesDuplicates)
{
    IncrementalGraph g;
    const Node a = g.addNode();
    const Node n = g.addNode();
    const Node b = g.addNode();
    // Duplicate edges in both directions around n: the retire must
    // purge every copy from the neighbours' lists.
    EXPECT_TRUE(g.addEdge(a, n));
    EXPECT_TRUE(g.addEdge(a, n));
    EXPECT_TRUE(g.addEdge(n, b));
    EXPECT_TRUE(g.addEdge(n, b));
    g.retireNode(n);
    for (const Node s : g.successors(a))
        EXPECT_NE(s, n);
    for (const Node p : g.predecessors(b))
        EXPECT_NE(p, n);
    // One bypass edge, not four: neighbours are deduped first.
    EXPECT_EQ(g.successors(a), (std::vector<Node>{b}));

    // The freed slot is recycled before any fresh slot is allocated.
    const std::size_t slots = g.numNodes();
    const Node n2 = g.addNode();
    EXPECT_EQ(n2, n);
    EXPECT_EQ(g.numNodes(), slots);
    EXPECT_EQ(g.numLive(), 3u);
    // The recycled node joins at the end of the order: edges from the
    // old survivors into it are in-order fast paths.
    EXPECT_TRUE(g.addEdge(b, n2));
    EXPECT_FALSE(g.hasCycle());
}

TEST(IncrementalGraphRetire, ChainRetirementKeepsEndToEndOrdering)
{
    // Retire every interior node of a long chain; the two endpoints
    // must still be ordered, detected via the closing back-edge.
    IncrementalGraph g;
    constexpr int kNodes = 128;
    std::vector<Node> nodes;
    for (int i = 0; i < kNodes; ++i)
        nodes.push_back(g.addNode());
    for (int i = 0; i + 1 < kNodes; ++i)
        EXPECT_TRUE(g.addEdge(nodes[static_cast<std::size_t>(i)],
                              nodes[static_cast<std::size_t>(i + 1)]));
    for (int i = 1; i + 1 < kNodes; ++i)
        g.retireNode(nodes[static_cast<std::size_t>(i)]);
    EXPECT_EQ(g.numLive(), 2u);
    EXPECT_FALSE(g.addEdge(nodes[kNodes - 1], nodes[0]));
    EXPECT_TRUE(g.hasCycle());
}

TEST(IncrementalGraphRetire, CompactRemapsOntoDensePrefix)
{
    IncrementalGraph g;
    std::vector<Node> nodes;
    for (int i = 0; i < 6; ++i)
        nodes.push_back(g.addNode());
    // 0 -> 2 -> 4 and 1 -> 2; retire the odd nodes (1, 3, 5).
    EXPECT_TRUE(g.addEdge(nodes[0], nodes[2]));
    EXPECT_TRUE(g.addEdge(nodes[2], nodes[4]));
    EXPECT_TRUE(g.addEdge(nodes[1], nodes[2]));
    g.retireNode(nodes[1]);
    g.retireNode(nodes[3]);
    g.retireNode(nodes[5]);

    // Live ids {0, 2, 4} -> dense {0, 1, 2}, order preserved.
    std::vector<Node> remap{0, -1, 1, -1, 2, -1};
    g.compact(remap, 3);
    EXPECT_EQ(g.numNodes(), 3u);
    EXPECT_EQ(g.numLive(), 3u);
    EXPECT_EQ(g.successors(0), (std::vector<Node>{1}));
    EXPECT_EQ(g.successors(1), (std::vector<Node>{2}));
    EXPECT_EQ(g.predecessors(1), (std::vector<Node>{0}));
    // The order survived the renumbering: the closing edge cycles.
    EXPECT_FALSE(g.addEdge(2, 0));
    EXPECT_TRUE(g.hasCycle());
}

TEST(IncrementalGraphRetire, DifferentialAgainstFullGraphReachability)
{
    // Random interleavings of addNode/addEdge/retire/compact. The
    // reference CycleGraph keeps every node forever; because bypass
    // edges preserve reachability among live nodes exactly (including
    // paths through retired ones), an edge between live nodes must
    // close a cycle in the incremental graph iff it does in the full
    // reference graph. Retired nodes are never used as endpoints again
    // (the checker guarantees the same invariant).
    Rng rng(0xde7143);
    constexpr std::size_t kMaxNodes = 64;
    for (int round = 0; round < 100; ++round) {
        IncrementalGraph inc;
        CycleGraph ref(kMaxNodes);
        std::vector<Node> live;    // incremental-graph ids
        std::vector<Node> refId;   // live[i] <-> refId[i]
        std::size_t refNodes = 0;
        bool poisoned = false;

        for (int op = 0; op < 300 && !poisoned; ++op) {
            const auto pick = rng.below(10);
            if (pick < 4 || live.size() < 2) {
                if (refNodes == kMaxNodes)
                    continue;
                live.push_back(inc.addNode());
                refId.push_back(static_cast<Node>(refNodes++));
            } else if (pick < 8) {
                const auto i = rng.below(live.size());
                const auto j = rng.below(live.size());
                ref.addEdge(refId[i], refId[j]);
                const bool incAcyclic = inc.addEdge(live[i], live[j]);
                const bool refAcyclic = !ref.findCycle().has_value();
                ASSERT_EQ(incAcyclic, refAcyclic)
                    << "round " << round << " op " << op;
                poisoned = !incAcyclic;
            } else if (pick < 9) {
                const auto i = rng.below(live.size());
                inc.retireNode(live[i]);
                live.erase(live.begin() + static_cast<long>(i));
                refId.erase(refId.begin() + static_cast<long>(i));
                // The reference keeps the node: paths through it stand
                // in for the bypass edges.
            } else if (!live.empty()) {
                // Compact: dense new ids in ascending old-id order.
                std::vector<Node> remap(inc.numNodes(), -1);
                std::vector<std::size_t> order(live.size());
                for (std::size_t k = 0; k < live.size(); ++k)
                    order[k] = k;
                std::sort(order.begin(), order.end(),
                          [&](std::size_t a, std::size_t b) {
                              return live[a] < live[b];
                          });
                for (std::size_t rank = 0; rank < order.size(); ++rank) {
                    remap[static_cast<std::size_t>(live[order[rank]])] =
                        static_cast<Node>(rank);
                }
                inc.compact(remap, static_cast<Node>(live.size()));
                for (std::size_t k = 0; k < live.size(); ++k) {
                    live[k] =
                        remap[static_cast<std::size_t>(live[k])];
                }
            }
        }
        ASSERT_EQ(inc.numLive(), live.size());
    }
}
