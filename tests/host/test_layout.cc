/** @file Test-memory layout (512B partitions, 1MB apart) tests. */

#include <gtest/gtest.h>

#include "host/interface.hh"

using namespace mcversi::host;
using mcversi::Addr;

TEST(Layout, PartitionCount)
{
    EXPECT_EQ(TestMemLayout(1024, 16).numPartitions(), 2u);
    EXPECT_EQ(TestMemLayout(8 * 1024, 16).numPartitions(), 16u);
}

TEST(Layout, MappingWithinPartitionIsContiguous)
{
    TestMemLayout layout(8 * 1024, 16);
    const Addr base = layout.toPhys(0);
    for (Addr off = 0; off < 512; off += 8)
        EXPECT_EQ(layout.toPhys(off), base + off);
}

TEST(Layout, PartitionsAreSpacedOneMegabyte)
{
    TestMemLayout layout(8 * 1024, 16);
    EXPECT_EQ(layout.toPhys(512) - layout.toPhys(0), 1024u * 1024u);
    EXPECT_EQ(layout.toPhys(1024) - layout.toPhys(512), 1024u * 1024u);
}

TEST(Layout, RoundTrip)
{
    TestMemLayout layout(8 * 1024, 16);
    for (Addr logical = 0; logical < 8 * 1024; logical += 8) {
        const Addr phys = layout.toPhys(logical);
        EXPECT_EQ(layout.toLogical(phys), logical);
        EXPECT_TRUE(layout.contains(phys));
    }
}

TEST(Layout, ContainsRejectsOutside)
{
    TestMemLayout layout(1024, 16);
    EXPECT_FALSE(layout.contains(0));
    EXPECT_FALSE(layout.contains(layout.toPhys(0) + 600))
        << "between partitions";
    EXPECT_FALSE(layout.contains(layout.toPhys(0) + 3 * 1024 * 1024));
}

TEST(Layout, WordAddrsCoverRegionExactly)
{
    TestMemLayout layout(1024, 16);
    auto words = layout.wordAddrs();
    EXPECT_EQ(words.size(), 1024u / 8u);
    // All distinct and contained.
    std::set<Addr> set(words.begin(), words.end());
    EXPECT_EQ(set.size(), words.size());
    for (Addr a : words)
        EXPECT_TRUE(layout.contains(a));
}

TEST(Layout, PartitionsConflictInL1Sets)
{
    // The point of the layout: partition starts map to the same L1 set
    // (128 sets x 64B lines = 8KB period; 1MB is a multiple), forcing
    // capacity evictions with 8KB of test memory.
    TestMemLayout layout(8 * 1024, 16);
    auto set_of = [](Addr a) { return (a / 64) % 128; };
    const auto s0 = set_of(layout.toPhys(0));
    for (Addr p = 1; p < 16; ++p)
        EXPECT_EQ(set_of(layout.toPhys(p * 512)), s0);
}
