/**
 * @file
 * Algorithm 1 (selective crossover + mutation) property tests.
 */

#include <gtest/gtest.h>

#include "gp/crossover.hh"

namespace gp = mcversi::gp;
using namespace mcversi::gp;
using mcversi::Addr;
using mcversi::Rng;

namespace {

GenParams
genParams()
{
    GenParams p;
    p.testSize = 200;
    p.numThreads = 4;
    p.memSize = 1024;
    p.stride = 16;
    return p;
}

gp::Test
taggedTest(const GenParams &p, Rng &rng, Addr special, double frac)
{
    RandomTestGen gen(p);
    gp::Test t = gen.randomTest(rng);
    // Force a fraction of memory ops onto the special address.
    std::size_t count = static_cast<std::size_t>(
        static_cast<double>(t.size()) * frac);
    for (std::size_t i = 0; i < t.size() && count > 0; ++i) {
        if (t.node(i).op.isMem()) {
            t.node(i).op.addr = special;
            --count;
        }
    }
    return t;
}

} // namespace

TEST(Crossover, FitaddrFraction)
{
    GenParams p = genParams();
    Rng rng(1);
    gp::Test t = taggedTest(p, rng, 0x40, 0.25);
    mcversi::AddrSet fit{0x40};
    const double frac = fitaddrFraction(t, fit);
    EXPECT_GT(frac, 0.15);
    EXPECT_LT(frac, 0.40);
    EXPECT_DOUBLE_EQ(fitaddrFraction(t, {}), 0.0);
}

TEST(Crossover, ChildHasParentLength)
{
    GenParams p = genParams();
    GaParams ga;
    RandomTestGen gen(p);
    Rng rng(2);
    for (int trial = 0; trial < 20; ++trial) {
        gp::Test t1 = gen.randomTest(rng);
        gp::Test t2 = gen.randomTest(rng);
        gp::Test child = crossoverMutate(t1, {}, t2, {}, gen, ga, rng);
        EXPECT_EQ(child.size(), t1.size());
    }
}

TEST(Crossover, FitAddrOpsAlwaysInherited)
{
    // Memory ops whose address is in parent-1's fitaddrs are always
    // selected from parent 1 (unconditional selection).
    GenParams p = genParams();
    GaParams ga;
    ga.pMut = 0.0; // isolate selection behaviour
    RandomTestGen gen(p);
    Rng rng(3);
    const Addr special = 0x80;
    gp::Test t1 = taggedTest(p, rng, special, 0.3);
    gp::Test t2 = gen.randomTest(rng);
    NdInfo nd1;
    nd1.fitaddrs = {special};
    for (int trial = 0; trial < 10; ++trial) {
        gp::Test child = crossoverMutate(t1, nd1, t2, {}, gen, ga, rng);
        for (std::size_t i = 0; i < child.size(); ++i) {
            if (t1.node(i).op.isMem() &&
                t1.node(i).op.addr == special) {
                EXPECT_EQ(child.node(i), t1.node(i))
                    << "slot " << i << " must retain the fit node";
            }
        }
    }
}

TEST(Crossover, SlotPositionsPreserved)
{
    // Every child slot comes from the same slot of a parent or is a
    // fresh random node -- relative scheduling positions never move.
    GenParams p = genParams();
    GaParams ga;
    RandomTestGen gen(p);
    Rng rng(4);
    gp::Test t1 = gen.randomTest(rng);
    gp::Test t2 = gen.randomTest(rng);
    gp::Test child = crossoverMutate(t1, {}, t2, {}, gen, ga, rng);
    std::size_t from_parent = 0;
    for (std::size_t i = 0; i < child.size(); ++i) {
        if (child.node(i) == t1.node(i) || child.node(i) == t2.node(i))
            ++from_parent;
    }
    // With PUSEL=0.2 most slots are mutations only when unselected by
    // both (0.8*0.8 = 64% mutation for non-fit mem ops). Just require
    // a sane mix.
    EXPECT_GT(from_parent, child.size() / 10);
}

TEST(Crossover, PbfaBiasesMutationTowardsFitUnion)
{
    GenParams p = genParams();
    GaParams ga;
    ga.pUsel = 0.0; // nothing unconditionally selected
    ga.pBfa = 1.0;  // all mutations draw from the fit union
    RandomTestGen gen(p);
    Rng rng(5);
    gp::Test t1 = gen.randomTest(rng);
    gp::Test t2 = gen.randomTest(rng);
    NdInfo nd1;
    nd1.fitaddrs = {0x40};
    NdInfo nd2;
    nd2.fitaddrs = {0x80};
    gp::Test child = crossoverMutate(t1, nd1, t2, nd2, gen, ga, rng);
    for (std::size_t i = 0; i < child.size(); ++i) {
        const Op &op = child.node(i).op;
        // Non-fit mem ops of t1 were never selected; all mem-op slots
        // mutated into the union or inherited as fit.
        if (op.isMem() && !(child.node(i) == t1.node(i)) &&
            !(child.node(i) == t2.node(i))) {
            EXPECT_TRUE(op.addr == 0x40 || op.addr == 0x80);
        }
    }
}

TEST(Crossover, SinglePointProducesPrefixSuffix)
{
    GenParams p = genParams();
    GaParams ga;
    ga.pMut = 0.0;
    RandomTestGen gen(p);
    Rng rng(6);
    gp::Test t1 = gen.randomTest(rng);
    gp::Test t2 = gen.randomTest(rng);
    gp::Test child = singlePointCrossoverMutate(t1, t2, gen, ga, rng);
    ASSERT_EQ(child.size(), t1.size());
    // Find the crossover point: prefix from t1, suffix from t2.
    std::size_t point = 0;
    while (point < child.size() && child.node(point) == t1.node(point))
        ++point;
    for (std::size_t i = point; i < child.size(); ++i)
        EXPECT_EQ(child.node(i), t2.node(i)) << "slot " << i;
}

TEST(Crossover, MutationTopUpRespectsRate)
{
    // With PUSEL = 1 everything is selected from t1; the implicit
    // mutation count is 0 < PMUT so the top-up loop runs, mutating
    // roughly PMUT of genes.
    GenParams p = genParams();
    p.testSize = 5000;
    GaParams ga;
    ga.pUsel = 1.0;
    ga.pMut = 0.01;
    RandomTestGen gen(p);
    Rng rng(7);
    gp::Test t1 = gen.randomTest(rng);
    gp::Test t2 = gen.randomTest(rng);
    gp::Test child = crossoverMutate(t1, {}, t2, {}, gen, ga, rng);
    std::size_t mutated = 0;
    for (std::size_t i = 0; i < child.size(); ++i)
        if (!(child.node(i) == t1.node(i)))
            ++mutated;
    EXPECT_GT(mutated, 10u);
    EXPECT_LT(mutated, 200u);
}
