#include "memconsistency/arch.hh"

namespace mcversi::mc {

// Out-of-line virtual destructor anchor lives implicitly via the vtable
// of the concrete models; nothing further needed here. This translation
// unit exists so arch.hh has a home for future shared helpers.

} // namespace mcversi::mc
