/** @file Deterministic RNG tests. */

#include <gtest/gtest.h>

#include "common/rng.hh"

using mcversi::Rng;

TEST(Rng, DeterministicSequences)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowInRange)
{
    Rng r(3);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(7), 7u);
}

TEST(Rng, BelowCoversAllValues)
{
    Rng r(4);
    std::vector<int> hist(5, 0);
    for (int i = 0; i < 5000; ++i)
        ++hist[r.below(5)];
    for (int v : hist)
        EXPECT_GT(v, 800);
}

TEST(Rng, RangeInclusive)
{
    Rng r(5);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 1000; ++i) {
        const auto v = r.range(10, 12);
        EXPECT_GE(v, 10u);
        EXPECT_LE(v, 12u);
        saw_lo |= (v == 10);
        saw_hi |= (v == 12);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, BoolWithProbExtremes)
{
    Rng r(6);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.boolWithProb(0.0));
        EXPECT_TRUE(r.boolWithProb(1.0));
    }
}

TEST(Rng, BoolWithProbRoughRate)
{
    Rng r(7);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += r.boolWithProb(0.2) ? 1 : 0;
    EXPECT_NEAR(hits / 20000.0, 0.2, 0.02);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(8);
    for (int i = 0; i < 1000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, ForkIndependentStreams)
{
    Rng parent(9);
    Rng child1 = parent.fork();
    Rng child2 = parent.fork();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (child1.next() == child2.next())
            ++same;
    EXPECT_LT(same, 2);
}
