/**
 * @file
 * VerdictCache contract (verdict_cache.hh): hit/miss accounting, LRU
 * eviction order, recency refresh on lookup and re-insert, the
 * monotonic distinct counter, backward-shift deletion on the collision
 * path, clear(), and shard/capacity geometry.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "memconsistency/verdict_cache.hh"

using namespace mcversi;

namespace {

/** Deterministic distinct signatures. The single-shard configs below
 * make every key land in shard 0 regardless of sig.hi. */
mc::WitnessSignature
sig(std::uint64_t n)
{
    return mc::WitnessSignature{n * 0x9e3779b97f4a7c15ull + 1, n};
}

bool
contains(mc::VerdictCache &cache, std::uint64_t n)
{
    std::uint8_t verdict = 0;
    return cache.lookup(sig(n), verdict);
}

} // namespace

TEST(VerdictCache, LookupInsertRoundTrip)
{
    mc::VerdictCache cache({.capacity = 16, .shards = 2});
    std::uint8_t verdict = 0xff;

    EXPECT_FALSE(cache.lookup(sig(1), verdict));
    cache.insert(sig(1), 3);
    ASSERT_TRUE(cache.lookup(sig(1), verdict));
    EXPECT_EQ(verdict, 3);
    EXPECT_EQ(cache.size(), 1u);

    const mc::VerdictCache::Stats &st = cache.stats();
    EXPECT_EQ(st.lookups, 2u);
    EXPECT_EQ(st.hits, 1u);
    EXPECT_EQ(st.misses, 1u);
    EXPECT_EQ(st.distinct, 1u);
    EXPECT_EQ(st.evictions, 0u);
    EXPECT_DOUBLE_EQ(st.hitRate(), 0.5);
}

TEST(VerdictCache, EvictsLeastRecentlyUsed)
{
    mc::VerdictCache cache({.capacity = 4, .shards = 1});
    ASSERT_EQ(cache.capacity(), 4u);
    for (std::uint64_t n = 0; n < 4; ++n)
        cache.insert(sig(n), static_cast<std::uint8_t>(n));

    // Touch 0 so 1 becomes the LRU entry, then overflow.
    ASSERT_TRUE(contains(cache, 0));
    cache.insert(sig(4), 4);

    EXPECT_EQ(cache.size(), 4u);
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_FALSE(contains(cache, 1)); // evicted
    EXPECT_TRUE(contains(cache, 0));
    EXPECT_TRUE(contains(cache, 2));
    EXPECT_TRUE(contains(cache, 3));
    EXPECT_TRUE(contains(cache, 4));
}

TEST(VerdictCache, ReinsertRefreshesRecencyOnly)
{
    mc::VerdictCache cache({.capacity = 2, .shards = 1});
    cache.insert(sig(0), 7);
    cache.insert(sig(1), 1);

    // Re-insert 0: no new entry, but 0 is now most-recently-used, so
    // the next overflow evicts 1. The verdict stays the original one
    // (verdicts are immutable per equivalence class).
    cache.insert(sig(0), 9);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.stats().distinct, 2u);

    cache.insert(sig(2), 2);
    EXPECT_FALSE(contains(cache, 1));
    std::uint8_t verdict = 0;
    ASSERT_TRUE(cache.lookup(sig(0), verdict));
    EXPECT_EQ(verdict, 7);
}

TEST(VerdictCache, DistinctCountsEvictedReappearances)
{
    mc::VerdictCache cache({.capacity = 2, .shards = 1});
    cache.insert(sig(0), 0);
    cache.insert(sig(1), 0);
    EXPECT_EQ(cache.stats().distinct, 2u);

    // Exact while nothing is evicted...
    cache.insert(sig(0), 0);
    cache.insert(sig(1), 0);
    EXPECT_EQ(cache.stats().distinct, 2u);

    // ...after eviction a returning class is counted again.
    cache.insert(sig(2), 0); // evicts 0
    EXPECT_EQ(cache.stats().distinct, 3u);
    cache.insert(sig(0), 0); // 0 returns, evicting 1
    EXPECT_EQ(cache.stats().distinct, 4u);
    EXPECT_EQ(cache.stats().evictions, 2u);
}

TEST(VerdictCache, CollisionChainsSurviveEviction)
{
    // One shard, tiny capacity: every insert past the fourth both
    // evicts and backward-shifts the probe table. Interleave lookups
    // to verify chains stay contiguous across deletions.
    mc::VerdictCache cache({.capacity = 4, .shards = 1});
    const std::uint64_t keys = 64;
    for (std::uint64_t n = 0; n < keys; ++n) {
        cache.insert(sig(n), static_cast<std::uint8_t>(n & 0xff));
        // The four most recent keys must all be resident and return
        // their own verdicts. Touch oldest-first so the lookups
        // themselves preserve the insertion recency order.
        const std::uint64_t oldest = n < 3 ? 0 : n - 3;
        for (std::uint64_t k = oldest; k <= n; ++k) {
            std::uint8_t verdict = 0;
            ASSERT_TRUE(cache.lookup(sig(k), verdict))
                << "n=" << n << " k=" << k;
            ASSERT_EQ(verdict, static_cast<std::uint8_t>(k & 0xff));
        }
        ASSERT_EQ(cache.size(), std::min<std::uint64_t>(n + 1, 4));
    }
    EXPECT_EQ(cache.stats().evictions, keys - 4);
    EXPECT_EQ(cache.stats().distinct, keys);
}

TEST(VerdictCache, ClusteredLowBitsProbeCorrectly)
{
    // Home slot is sig.lo & mask: keys with identical low bits force
    // maximal linear-probe clustering in one shard.
    mc::VerdictCache cache({.capacity = 8, .shards = 1});
    auto clustered = [](std::uint64_t n) {
        return mc::WitnessSignature{n << 40, n};
    };
    for (std::uint64_t n = 0; n < 8; ++n)
        cache.insert(clustered(n), static_cast<std::uint8_t>(n));
    for (std::uint64_t n = 0; n < 8; ++n) {
        std::uint8_t verdict = 0xff;
        ASSERT_TRUE(cache.lookup(clustered(n), verdict)) << n;
        EXPECT_EQ(verdict, static_cast<std::uint8_t>(n));
    }
    EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(VerdictCache, ClearDropsEntriesAndStats)
{
    mc::VerdictCache cache({.capacity = 8, .shards = 2});
    for (std::uint64_t n = 0; n < 6; ++n)
        cache.insert(sig(n), 1);
    ASSERT_GT(cache.size(), 0u);

    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.stats().lookups, 0u);
    EXPECT_EQ(cache.stats().distinct, 0u);
    EXPECT_FALSE(contains(cache, 0));

    // Still fully usable after clear().
    cache.insert(sig(42), 2);
    std::uint8_t verdict = 0;
    EXPECT_TRUE(cache.lookup(sig(42), verdict));
    EXPECT_EQ(verdict, 2);
}

TEST(VerdictCache, GeometryClampsAndRounding)
{
    // Shards clamp to capacity; per-shard rounding may raise capacity.
    mc::VerdictCache tiny({.capacity = 1, .shards = 8});
    EXPECT_EQ(tiny.shardCount(), 1u);
    EXPECT_GE(tiny.capacity(), 1u);

    mc::VerdictCache odd({.capacity = 10, .shards = 4});
    EXPECT_EQ(odd.shardCount(), 4u);
    EXPECT_GE(odd.capacity(), 10u);

    // Default config matches the documented knobs.
    mc::VerdictCache def;
    EXPECT_EQ(def.shardCount(), 8u);
    EXPECT_GE(def.capacity(), 4096u);

    // Keys spread across shards: fill past one shard's share and
    // verify everything stays resident up to total capacity.
    mc::VerdictCache spread({.capacity = 64, .shards = 8});
    for (std::uint64_t n = 0; n < 64; ++n)
        spread.insert(mc::WitnessSignature{n, n << 32}, 1);
    EXPECT_EQ(spread.size(), 64u);
}
