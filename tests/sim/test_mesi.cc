/**
 * @file
 * White-box tests for the two-level MESI protocol: controllers are
 * assembled directly (no cores) and driven with explicit requests.
 */

#include <gtest/gtest.h>

#include "sim/mesi/mesi_l1.hh"
#include "sim/mesi/mesi_l2.hh"
#include "sim/memory.hh"
#include "sim/network.hh"

using namespace mcversi::sim;
using mcversi::Addr;
using mcversi::kLineBytes;
using mcversi::Pid;
using mcversi::Rng;
using mcversi::WriteVal;

namespace {

/** Line homed at tile 0: (line / 64) % 8 == 0. */
constexpr Addr kLineA = 0;
constexpr Addr kLineB = 8 * kLineBytes;
constexpr Addr kLineC = 16 * kLineBytes;

struct CoreStub
{
    std::vector<CacheResp> resps;
    std::vector<Addr> invs;
};

/** Swallows synthetic-injection acks that have no real recipient. */
struct AckSink : MsgHandler
{
    void handleMsg(const Msg &) override {}
};

struct MesiFixture
{
    SystemConfig cfg;
    EventQueue eq;
    Rng rng{7};
    Network net{eq, Rng(8)};
    MainMemory mem{eq, net, Rng(9)};
    TransitionCoverage cov;
    std::vector<std::unique_ptr<MesiL2>> l2s;
    std::vector<std::unique_ptr<MesiL1>> l1s;
    std::vector<CoreStub> stubs;

    explicit MesiFixture(BugId bug = BugId::None, int cores = 2)
    {
        cfg.numCores = cores;
        cfg.bug = bug;
        net.registerNode(kMemNode, &mem);
        for (int t = 0; t < cfg.numL2Tiles(); ++t) {
            l2s.push_back(std::make_unique<MesiL2>(t, cfg, eq, net, cov,
                                                   Rng(100 + t)));
            net.registerNode(l2Node(t), l2s.back().get());
        }
        stubs.resize(static_cast<std::size_t>(cores));
        for (Pid p = 0; p < cores; ++p) {
            l1s.push_back(std::make_unique<MesiL1>(p, cfg, eq, net, cov,
                                                   Rng(200 + p)));
            net.registerNode(coreNode(p), l1s.back().get());
            CoreHooks hooks;
            CoreStub *stub = &stubs[static_cast<std::size_t>(p)];
            hooks.respond = [stub](const CacheResp &r) {
                stub->resps.push_back(r);
            };
            hooks.addressInvalidated = [stub](Addr line) {
                stub->invs.push_back(line);
            };
            l1s.back()->setHooks(std::move(hooks));
        }
    }

    void run() { eq.runUntilQuiescent(); }

    /** Last response of core p. */
    const CacheResp &
    lastResp(Pid p)
    {
        return stubs[static_cast<std::size_t>(p)].resps.back();
    }

    bool
    gotInv(Pid p, Addr line)
    {
        const auto &v = stubs[static_cast<std::size_t>(p)].invs;
        return std::find(v.begin(), v.end(), line) != v.end();
    }
};

} // namespace

TEST(MesiProtocol, ColdLoadReturnsZeroAndGrantsExclusive)
{
    MesiFixture f;
    f.l1s[0]->coreLoad(1, kLineA);
    f.run();
    ASSERT_EQ(f.stubs[0].resps.size(), 1u);
    EXPECT_EQ(f.lastResp(0).value, 0u);
    // Sole reader: MESI E optimization.
    EXPECT_EQ(f.l1s[0]->lineState(kLineA), MesiL1::StE);
    EXPECT_EQ(f.l2s[0]->lineState(kLineA), MesiL2::StMT);
}

TEST(MesiProtocol, SecondReaderDowngradesToShared)
{
    MesiFixture f;
    f.l1s[0]->coreLoad(1, kLineA);
    f.run();
    f.l1s[1]->coreLoad(2, kLineA);
    f.run();
    EXPECT_EQ(f.l1s[0]->lineState(kLineA), MesiL1::StS);
    EXPECT_EQ(f.l1s[1]->lineState(kLineA), MesiL1::StS);
    EXPECT_EQ(f.l2s[0]->lineState(kLineA), MesiL2::StSS);
}

TEST(MesiProtocol, StoreMissObtainsM)
{
    MesiFixture f;
    f.l1s[0]->coreStore(1, kLineA + 8, 42);
    f.run();
    EXPECT_EQ(f.l1s[0]->lineState(kLineA), MesiL1::StM);
    EXPECT_EQ(f.lastResp(0).overwritten, 0u);
}

TEST(MesiProtocol, RemoteReadSeesWrittenValue)
{
    MesiFixture f;
    f.l1s[0]->coreStore(1, kLineA + 8, 42);
    f.run();
    f.l1s[1]->coreLoad(2, kLineA + 8);
    f.run();
    EXPECT_EQ(f.lastResp(1).value, 42u);
    // Owner downgraded by FwdGETS.
    EXPECT_EQ(f.l1s[0]->lineState(kLineA), MesiL1::StS);
}

TEST(MesiProtocol, StoreToSharedUpgradesAndInvalidates)
{
    MesiFixture f;
    f.l1s[0]->coreLoad(1, kLineA);
    f.run();
    f.l1s[1]->coreLoad(2, kLineA);
    f.run();
    // Both in S now; core 1 upgrades.
    f.l1s[1]->coreStore(3, kLineA, 7);
    f.run();
    EXPECT_EQ(f.l1s[1]->lineState(kLineA), MesiL1::StM);
    EXPECT_EQ(f.l1s[0]->lineState(kLineA), MesiL1::StI);
    EXPECT_TRUE(f.gotInv(0, kLineA))
        << "sharer's LQ must see the invalidation";
    // The new value is visible to the old sharer on re-read.
    f.l1s[0]->coreLoad(4, kLineA);
    f.run();
    EXPECT_EQ(f.lastResp(0).value, 7u);
}

TEST(MesiProtocol, WriteToUpgradeRaceLoserGetsData)
{
    // Both sharers upgrade simultaneously; exactly one wins, both end
    // with the correct final data.
    MesiFixture f;
    f.l1s[0]->coreLoad(1, kLineA);
    f.run();
    f.l1s[1]->coreLoad(2, kLineA);
    f.run();
    f.l1s[0]->coreStore(3, kLineA, 10);
    f.l1s[1]->coreStore(4, kLineA + 8, 20);
    f.run();
    // Both stores completed; the line is M at exactly one core.
    const bool m0 = f.l1s[0]->lineState(kLineA) == MesiL1::StM;
    const bool m1 = f.l1s[1]->lineState(kLineA) == MesiL1::StM;
    EXPECT_NE(m0, m1);
    // Final data contains both writes.
    f.l1s[0]->coreLoad(5, kLineA);
    f.run();
    f.l1s[0]->coreLoad(6, kLineA + 8);
    f.run();
    EXPECT_EQ(f.stubs[0].resps[f.stubs[0].resps.size() - 2].value, 10u);
    EXPECT_EQ(f.lastResp(0).value, 20u);
}

TEST(MesiProtocol, RmwReturnsOldWritesNew)
{
    MesiFixture f;
    f.l1s[0]->coreStore(1, kLineA, 5);
    f.run();
    f.l1s[0]->coreRmw(2, kLineA, 9);
    f.run();
    EXPECT_EQ(f.lastResp(0).value, 5u);
    EXPECT_EQ(f.lastResp(0).overwritten, 5u);
    f.l1s[1]->coreLoad(3, kLineA);
    f.run();
    EXPECT_EQ(f.lastResp(1).value, 9u);
}

TEST(MesiProtocol, FlushWritesBackAndInvalidates)
{
    MesiFixture f;
    f.l1s[0]->coreStore(1, kLineA, 11);
    f.run();
    f.l1s[0]->coreFlush(2, kLineA);
    f.run();
    EXPECT_EQ(f.l1s[0]->lineState(kLineA), MesiL1::StI);
    EXPECT_TRUE(f.gotInv(0, kLineA));
    // Data survives at the L2 (dirty) and re-reads correctly.
    f.l1s[1]->coreLoad(3, kLineA);
    f.run();
    EXPECT_EQ(f.lastResp(1).value, 11u);
}

TEST(MesiProtocol, InvSunkInFetchFlagsConsumedData)
{
    // Put the L1 in IS by loading a cold line, then inject an Inv
    // before the data response arrives: IS -> IS_I, and the consumed
    // data must carry the invalidated-in-flight flag.
    MesiFixture f;
    AckSink sink;
    f.net.registerNode(coreNode(6), &sink);
    f.l1s[0]->coreLoad(1, kLineA);
    EXPECT_EQ(f.l1s[0]->lineState(kLineA), MesiL1::StIS);
    Msg inv;
    inv.type = MsgType::Inv;
    inv.line = kLineA;
    inv.src = l2Node(0);
    inv.dst = coreNode(0);
    inv.ackTarget = coreNode(6);
    f.l1s[0]->handleMsg(inv);
    EXPECT_EQ(f.l1s[0]->lineState(kLineA), MesiL1::StIS_I);
    f.run();
    ASSERT_EQ(f.stubs[0].resps.size(), 1u);
    EXPECT_TRUE(f.lastResp(0).invalidatedInFlight);
}

TEST(MesiProtocol, BugIsInvSuppressesFlag)
{
    MesiFixture f(BugId::MesiLqIsInv);
    AckSink sink;
    f.net.registerNode(coreNode(6), &sink);
    f.l1s[0]->coreLoad(1, kLineA);
    Msg inv;
    inv.type = MsgType::Inv;
    inv.line = kLineA;
    inv.src = l2Node(0);
    inv.dst = coreNode(0);
    inv.ackTarget = coreNode(6);
    f.l1s[0]->handleMsg(inv);
    f.run();
    ASSERT_EQ(f.stubs[0].resps.size(), 1u);
    EXPECT_FALSE(f.lastResp(0).invalidatedInFlight)
        << "the injected bug must hide the invalidation";
}

TEST(MesiProtocol, BugSmInvSuppressesLqNotify)
{
    auto run_case = [](BugId bug) {
        MesiFixture f(bug);
        f.l1s[0]->coreLoad(1, kLineA);
        f.run();
        f.l1s[1]->coreLoad(2, kLineA);
        f.run();
        // Core 0 upgrades (SM), core 1's GETX processed first is not
        // controllable; instead inject the Inv directly while SM.
        f.l1s[0]->coreStore(3, kLineA, 5);
        EXPECT_EQ(f.l1s[0]->lineState(kLineA), MesiL1::StSM);
        AckSink sink;
        f.net.registerNode(coreNode(6), &sink);
        Msg inv;
        inv.type = MsgType::Inv;
        inv.line = kLineA;
        inv.src = l2Node(0);
        inv.dst = coreNode(0);
        inv.ackTarget = coreNode(6);
        f.l1s[0]->handleMsg(inv);
        EXPECT_EQ(f.l1s[0]->lineState(kLineA), MesiL1::StIM);
        return f.gotInv(0, kLineA);
    };
    EXPECT_TRUE(run_case(BugId::None));
    EXPECT_FALSE(run_case(BugId::MesiLqSmInv));
}

TEST(MesiProtocol, RecallInEAndMNotifiesLq)
{
    auto run_case = [](BugId bug, bool store_first) {
        MesiFixture f(bug);
        if (store_first)
            f.l1s[0]->coreStore(1, kLineA, 3);
        else
            f.l1s[0]->coreLoad(1, kLineA);
        f.run();
        Msg recall;
        recall.type = MsgType::Recall;
        recall.line = kLineA;
        recall.src = l2Node(0);
        recall.dst = coreNode(0);
        f.l1s[0]->handleMsg(recall);
        return f.gotInv(0, kLineA);
    };
    EXPECT_TRUE(run_case(BugId::None, false)) << "E + Recall notifies";
    EXPECT_TRUE(run_case(BugId::None, true)) << "M + Recall notifies";
    EXPECT_FALSE(run_case(BugId::MesiLqEInv, false));
    EXPECT_FALSE(run_case(BugId::MesiLqMInv, true));
    // The E bug must not affect the M path and vice versa.
    EXPECT_TRUE(run_case(BugId::MesiLqEInv, true));
    EXPECT_TRUE(run_case(BugId::MesiLqMInv, false));
}

TEST(MesiProtocol, CapacityEvictionFromSNotifiesLq)
{
    auto run_case = [](BugId bug) {
        SystemConfig small;
        small.l1Sets = 1;
        small.l1Ways = 2;
        small.bug = bug;
        MesiFixture f(bug);
        f.cfg = small; // not used post-construction; emulate by loads
        // Instead use 3 lines mapping to one set via a tiny fixture.
        MesiFixture g(bug);
        // Use the default geometry: pick 5 lines in the same L1 set:
        // set = (line/64) % 128 -- stride of 128*64 bytes.
        const Addr set_stride = 128 * kLineBytes;
        // Make all lines shared (load from both cores so they are S).
        for (int i = 0; i < 5; ++i) {
            const Addr a = static_cast<Addr>(i) * set_stride;
            g.l1s[1]->coreLoad(static_cast<ReqId>(100 + i), a);
            g.run();
            g.l1s[0]->coreLoad(static_cast<ReqId>(i + 1), a);
            g.run();
            EXPECT_EQ(g.l1s[0]->lineState(a), MesiL1::StS);
        }
        // 5 lines > 4 ways: at least one S line was replaced.
        return !g.stubs[0].invs.empty();
    };
    EXPECT_TRUE(run_case(BugId::None));
    EXPECT_FALSE(run_case(BugId::MesiLqSReplacement));
}

TEST(MesiProtocol, PutxRaceBugRemovesTransition)
{
    // White-box: deliver a PUTX from a non-owner to an L2 line in MT.
    // The synthetic PUTX comes from a fake node so the WbNack the
    // correct protocol sends does not confuse a real L1.
    auto run_case = [](BugId bug) {
        MesiFixture f(bug);
        AckSink sink;
        f.net.registerNode(coreNode(5), &sink);
        f.l1s[0]->coreStore(1, kLineA, 1);
        f.run(); // L2 now MT (owner=0)
        Msg putx;
        putx.type = MsgType::PUTX;
        putx.line = kLineA;
        putx.src = coreNode(5);
        putx.dst = l2Node(0);
        putx.requester = 5;
        putx.dirty = true;
        bool threw = false;
        try {
            f.l2s[0]->handleMsg(putx);
            f.run();
        } catch (const ProtocolError &) {
            threw = true;
        }
        return threw;
    };
    EXPECT_FALSE(run_case(BugId::None))
        << "correct protocol nacks the stale PUTX";
    EXPECT_TRUE(run_case(BugId::MesiPutxRace))
        << "the bug removes the transition: invalid transition error";
}

TEST(MesiProtocol, MemoryWritebackOnL2Eviction)
{
    // Fill one L2 set beyond capacity with dirty lines; evicted dirty
    // data must reach memory.
    MesiFixture f;
    // L2 tile 0, set = (line/64/8) % 512: lines at stride 8*512*64.
    const Addr l2_set_stride = 8 * 512 * kLineBytes;
    const int lines = 6; // > 4 ways
    for (int i = 0; i < lines; ++i) {
        const Addr a = static_cast<Addr>(i) * l2_set_stride;
        f.l1s[0]->coreStore(static_cast<ReqId>(i + 1), a,
                            static_cast<WriteVal>(100 + i));
        f.run();
        // Flush from L1 so the dirty data lives at the L2 only.
        f.l1s[0]->coreFlush(static_cast<ReqId>(50 + i), a);
        f.run();
    }
    EXPECT_GT(f.mem.writes(), 0u) << "L2 evictions must write back";
    // And the values are recoverable.
    f.l1s[0]->coreLoad(99, 0);
    f.run();
    EXPECT_EQ(f.lastResp(0).value, 100u);
}

TEST(MesiProtocol, ResetAllClearsState)
{
    MesiFixture f;
    f.l1s[0]->coreStore(1, kLineA, 1);
    f.run();
    f.l1s[0]->resetAll();
    f.l2s[0]->resetAll();
    EXPECT_EQ(f.l1s[0]->lineState(kLineA), MesiL1::StI);
    EXPECT_EQ(f.l2s[0]->lineState(kLineA), MesiL2::StNP);
}
