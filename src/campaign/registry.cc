#include "campaign/registry.hh"

#include <stdexcept>

#include "common/strings.hh"

namespace mcversi::campaign {

SourceRegistry &
SourceRegistry::instance()
{
    static SourceRegistry registry;
    return registry;
}

SourceRegistry::SourceRegistry()
{
    // The paper's generator configurations (§5.2). GA modes differ only
    // in the crossover; the coverage-vs-NDT fitness weighting lives in
    // GaSource::report().
    addEntry({"McVerSi-ALL",
              [](const CampaignSpec &spec) {
                  return std::make_unique<host::GaSource>(
                      spec.gaParams(), spec.genParams(), spec.seed,
                      gp::XoMode::Selective, spec.evolutionParams());
              },
              false},
             {"selective"});
    addEntry({"McVerSi-Std.XO",
              [](const CampaignSpec &spec) {
                  return std::make_unique<host::GaSource>(
                      spec.gaParams(), spec.genParams(), spec.seed,
                      gp::XoMode::SinglePoint, spec.evolutionParams());
              },
              false},
             {"stdxo", "std.xo", "single-point"});
    addEntry({"McVerSi-RAND",
              [](const CampaignSpec &spec) {
                  return std::make_unique<host::RandomSource>(
                      spec.genParams(), spec.seed);
              },
              false},
             {"rand", "random"});
    addEntry({"diy-litmus", nullptr, true}, {"litmus"});
}

void
SourceRegistry::add(const std::string &name, Factory factory,
                    const std::vector<std::string> &aliases)
{
    addEntry({name, std::move(factory), false}, aliases);
}

void
SourceRegistry::addLitmus(const std::string &name,
                          const std::vector<std::string> &aliases)
{
    addEntry({name, nullptr, true}, aliases);
}

void
SourceRegistry::addEntry(Entry entry,
                         const std::vector<std::string> &aliases)
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> keys = {asciiLowered(entry.name)};
    for (const std::string &alias : aliases)
        keys.push_back(asciiLowered(alias));
    for (const std::string &key : keys) {
        if (index_.count(key) != 0) {
            throw std::invalid_argument(
                "generator registry: duplicate name '" + key + "'");
        }
    }
    entries_.push_back(std::move(entry));
    for (const std::string &key : keys)
        index_[key] = entries_.size() - 1;
}

const SourceRegistry::Entry &
SourceRegistry::lookup(const std::string &name) const
{
    const auto it = index_.find(asciiLowered(name));
    if (it == index_.end()) {
        throw std::invalid_argument("generator registry: unknown "
                                    "generator '" + name + "'");
    }
    return entries_[it->second];
}

bool
SourceRegistry::has(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return index_.count(asciiLowered(name)) != 0;
}

std::string
SourceRegistry::canonicalName(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return lookup(name).name;
}

bool
SourceRegistry::isLitmus(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return lookup(name).litmus;
}

std::unique_ptr<host::TestSource>
SourceRegistry::make(const std::string &name,
                     const CampaignSpec &spec) const
{
    Factory factory;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const Entry &entry = lookup(name);
        if (entry.litmus) {
            throw std::invalid_argument(
                "generator registry: '" + entry.name +
                "' is litmus-kind and has no TestSource; run it "
                "through CampaignRunner");
        }
        factory = entry.factory;
    }
    return factory(spec);
}

std::vector<std::string>
SourceRegistry::names() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> names;
    names.reserve(entries_.size());
    for (const Entry &entry : entries_)
        names.push_back(entry.name);
    return names;
}

std::vector<std::string>
resolveGeneratorList(const std::string &token)
{
    if (asciiLowered(token) == "all")
        return SourceRegistry::instance().names();
    return splitList(token);
}

} // namespace mcversi::campaign
