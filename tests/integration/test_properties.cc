/**
 * @file
 * Parameterized property tests across seeds:
 *
 *  - witnesses built from a sequentially-consistent interleaving (by
 *    construction) must pass both the SC and TSO checkers;
 *  - the (correct) TSO hardware must *fail* an SC check quickly -- the
 *    W->R relaxation is real and the checker is sensitive to it;
 *  - Algorithm 1 invariants hold for every seed;
 *  - litmus unrolling preserves per-instance conditions.
 */

#include <gtest/gtest.h>

#include "host/harness.hh"
#include "litmus/suites.hh"

using namespace mcversi;

// ---------------------------------------------------------------------
// SC-by-construction witnesses.
// ---------------------------------------------------------------------

namespace {

class ScWitnessProperty : public testing::TestWithParam<std::uint64_t>
{
};

/** Simulate a random global interleaving over a flat memory. */
mc::ExecWitness
randomScWitness(std::uint64_t seed)
{
    Rng rng(seed);
    mc::ExecWitness ew;
    const Addr addrs[] = {0x0, 0x40, 0x80, 0xc0};
    std::unordered_map<Addr, WriteVal> memory;
    std::vector<std::int32_t> poi(4, 0);
    WriteVal next = 1;
    for (int step = 0; step < 200; ++step) {
        const Pid p = static_cast<Pid>(rng.below(4));
        const Addr a = addrs[rng.below(4)];
        const bool is_write = rng.boolWithProb(0.5);
        const bool is_rmw = !is_write && rng.boolWithProb(0.1);
        if (is_write) {
            const WriteVal old = memory.count(a) ? memory[a] : kInitVal;
            const WriteVal v = next++;
            ew.recordWrite(p, poi[static_cast<std::size_t>(p)]++, a, v,
                           old);
            memory[a] = v;
        } else if (is_rmw) {
            const WriteVal old = memory.count(a) ? memory[a] : kInitVal;
            const WriteVal v = next++;
            const auto i = poi[static_cast<std::size_t>(p)]++;
            ew.recordRead(p, i, a, old, true);
            ew.recordWrite(p, i, a, v, old, true);
            memory[a] = v;
        } else {
            const WriteVal cur = memory.count(a) ? memory[a] : kInitVal;
            ew.recordRead(p, poi[static_cast<std::size_t>(p)]++, a, cur);
        }
    }
    return ew;
}

} // namespace

TEST_P(ScWitnessProperty, PassesScAndTso)
{
    mc::ExecWitness ew = randomScWitness(GetParam());
    mc::Checker sc(mc::makeSc());
    mc::Checker tso(mc::makeTso());
    const auto sc_res = sc.check(ew);
    EXPECT_TRUE(sc_res.ok()) << sc_res.message;
    const auto tso_res = tso.check(ew);
    EXPECT_TRUE(tso_res.ok()) << tso_res.message;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScWitnessProperty,
                         testing::Range<std::uint64_t>(1, 21));

// ---------------------------------------------------------------------
// Checker sensitivity: real TSO hardware is not SC.
// ---------------------------------------------------------------------

TEST(CheckerSensitivity, TsoHardwareViolatesScQuickly)
{
    // Replace the harness's TSO checker with SC: the store-buffering
    // relaxation of the correct hardware must show up as an "SC
    // violation" within few runs. This proves the whole recording +
    // checking path can actually see reorderings (i.e. the clean-runs
    // passing TSO is not vacuous).
    sim::SystemConfig cfg;
    cfg.seed = 9;
    sim::System system(cfg);
    mc::Checker sc(mc::makeSc());

    gp::GenParams gen;
    gen.testSize = 128;
    gen.iterations = 4;
    gen.memSize = 1024;
    host::Workload::Params wl;
    wl.iterations = gen.iterations;
    host::Workload workload(system, sc, host::layoutFor(gen), wl);
    gp::RandomTestGen rtg(gen);
    Rng rng(9);

    bool violated = false;
    for (int t = 0; t < 100 && !violated; ++t) {
        host::RunResult r = workload.runTest(rtg.randomTest(rng));
        if (r.violation) {
            violated = true;
            EXPECT_EQ(r.checkResult.kind,
                      mc::CheckResult::Kind::GhbViolation);
        }
    }
    EXPECT_TRUE(violated)
        << "TSO hardware passed an SC check for 100 runs: the witness "
           "or checker is too weak to see W->R reordering";
}

// ---------------------------------------------------------------------
// Crossover invariants across seeds.
// ---------------------------------------------------------------------

namespace {

class CrossoverProperty : public testing::TestWithParam<std::uint64_t>
{
};

} // namespace

TEST_P(CrossoverProperty, InvariantsHold)
{
    Rng rng(GetParam());
    gp::GenParams gen;
    gen.testSize = 120;
    gp::GaParams ga;
    gp::RandomTestGen rtg(gen);

    gp::Test t1 = rtg.randomTest(rng);
    gp::Test t2 = rtg.randomTest(rng);
    gp::NdInfo nd1;
    gp::NdInfo nd2;
    for (int i = 0; i < 4; ++i) {
        nd1.fitaddrs.insert(rtg.randomAddr(rng));
        nd2.fitaddrs.insert(rtg.randomAddr(rng));
    }
    gp::Test child = gp::crossoverMutate(t1, nd1, t2, nd2, rtg, ga, rng);

    // Constant length (bounded simulated execution time, §3.3).
    ASSERT_EQ(child.size(), t1.size());
    for (std::size_t i = 0; i < child.size(); ++i) {
        const gp::Node &c = child.node(i);
        // Valid pid range regardless of provenance.
        EXPECT_GE(c.pid, 0);
        EXPECT_LT(c.pid, gen.numThreads);
        // Memory ops stay inside the configured range and stride.
        if (c.op.isMem()) {
            EXPECT_LT(c.op.addr, gen.memSize);
            EXPECT_EQ(c.op.addr % gen.stride, 0u);
        }
        // Fit nodes of parent 1 are always retained.
        const gp::Node &n1 = t1.node(i);
        if (n1.op.isMem() && nd1.fitaddrs.count(n1.op.addr)) {
            EXPECT_EQ(c, n1);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossoverProperty,
                         testing::Range<std::uint64_t>(100, 140));

// ---------------------------------------------------------------------
// Litmus unrolling.
// ---------------------------------------------------------------------

TEST(LitmusUnroll, InstancesGetOwnVariablesAndConditions)
{
    litmus::LitmusTest mp = litmus::messagePassing();
    litmus::LitmusTest unrolled = litmus::unroll(mp, 3, 0x1000);
    EXPECT_EQ(unrolled.test.size(), 3 * mp.test.size());
    EXPECT_EQ(unrolled.forbiddenAlternatives.size(), 3u);
    EXPECT_EQ(unrolled.numAddrs, 3 * mp.numAddrs);

    // Instance k's forbidden condition matches a witness where only
    // instance k exhibits the outcome.
    for (int k = 0; k < 3; ++k) {
        mc::ExecWitness ew;
        const Addr base = static_cast<Addr>(k) * 0x1000;
        // Writer thread 0 executes all three instances in order; only
        // instance k's reads observe the forbidden mix.
        for (int inst = 0; inst < 3; ++inst) {
            const Addr b = static_cast<Addr>(inst) * 0x1000;
            ew.recordWrite(0, inst * 2 + 0, b + 0x0,
                           static_cast<WriteVal>(100 + inst * 2), kInitVal);
            ew.recordWrite(0, inst * 2 + 1, b + 0x40,
                           static_cast<WriteVal>(101 + inst * 2), kInitVal);
        }
        for (int inst = 0; inst < 3; ++inst) {
            const Addr b = static_cast<Addr>(inst) * 0x1000;
            if (inst == k) {
                // Forbidden: r(y) new, r(x) init.
                ew.recordRead(1, inst * 2 + 0, b + 0x40,
                              static_cast<WriteVal>(101 + inst * 2));
                ew.recordRead(1, inst * 2 + 1, b + 0x0, kInitVal);
            } else {
                // Allowed: both new.
                ew.recordRead(1, inst * 2 + 0, b + 0x40,
                              static_cast<WriteVal>(101 + inst * 2));
                ew.recordRead(1, inst * 2 + 1, b + 0x0,
                              static_cast<WriteVal>(100 + inst * 2));
            }
        }
        ew.finalize();
        EXPECT_TRUE(litmus::evalForbidden(unrolled, ew))
            << "instance " << k << " outcome must be detected";
        (void)base;
    }
}

TEST(LitmusUnroll, AllAllowedNotDetected)
{
    litmus::LitmusTest mp = litmus::messagePassing();
    litmus::LitmusTest unrolled = litmus::unroll(mp, 2, 0x1000);
    mc::ExecWitness ew;
    for (int inst = 0; inst < 2; ++inst) {
        const Addr b = static_cast<Addr>(inst) * 0x1000;
        ew.recordWrite(0, inst * 2 + 0, b + 0x0,
                       static_cast<WriteVal>(50 + inst * 2), kInitVal);
        ew.recordWrite(0, inst * 2 + 1, b + 0x40,
                       static_cast<WriteVal>(51 + inst * 2), kInitVal);
        ew.recordRead(1, inst * 2 + 0, b + 0x40,
                      static_cast<WriteVal>(51 + inst * 2));
        ew.recordRead(1, inst * 2 + 1, b + 0x0,
                      static_cast<WriteVal>(50 + inst * 2));
    }
    ew.finalize();
    EXPECT_FALSE(litmus::evalForbidden(unrolled, ew));
}
