/**
 * @file
 * Non-determinism metrics (Definitions 1-3 of the paper).
 *
 * The simulator records the conflict orders rf_i and co_i of each
 * iteration i of a test-run; their union over all iterations is
 * rfcoRUN (Def. 1). Events are identified *statically* (by test node),
 * so the same operation observed with different conflict predecessors in
 * different iterations accumulates multiple predecessors:
 *
 *   NDT  = |rfcoRUN| / n          (Def. 2, n = events in the test)
 *   NDe  = |{e | (e, ek) in rfcoRUN}|   (Def. 3)
 *
 * NDT == 1 means every event only ever follows one producer (typically
 * the initial write): the test-run was observed fully deterministic.
 * fitaddrs is the set of addresses of events whose NDe exceeds the
 * rounded NDT (§3.3).
 */

#ifndef MCVERSI_GP_NDMETRICS_HH
#define MCVERSI_GP_NDMETRICS_HH

#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "common/types.hh"
#include "gp/test.hh"

namespace mcversi::gp {

/** Static id for the initial write of a logical address. */
constexpr StaticEventId
initStaticEventId(Addr logical_addr)
{
    return -2 - static_cast<StaticEventId>(logical_addr);
}

/** Summary of a test-run's non-determinism, attached to individuals. */
struct NdInfo
{
    double ndt = 0.0;
    std::unordered_set<Addr> fitaddrs;
};

/** Accumulates rfcoRUN across the iterations of one test-run. */
class NdAccumulator
{
  public:
    /**
     * Start a new test-run.
     *
     * @param num_events number of (static) MCM events in the test (n in
     *                   Def. 2)
     */
    void
    beginRun(std::size_t num_events)
    {
        preds_.clear();
        eventAddr_.clear();
        numPairs_ = 0;
        numEvents_ = num_events;
    }

    /**
     * Record one conflict-order pair (producer, consumer) observed in
     * some iteration. Idempotent across iterations.
     */
    void
    addEdge(StaticEventId producer, StaticEventId consumer)
    {
        if (preds_[consumer].insert(producer).second)
            ++numPairs_;
    }

    /** Record the (logical) address of a static event. */
    void
    noteEventAddr(StaticEventId sid, Addr logical_addr)
    {
        eventAddr_[sid] = logical_addr;
    }

    /** |rfcoRUN|: distinct conflict-order pairs observed. */
    std::size_t distinctPairs() const { return numPairs_; }

    /** NDT (Def. 2). */
    double
    ndt() const
    {
        if (numEvents_ == 0)
            return 0.0;
        return static_cast<double>(numPairs_) /
               static_cast<double>(numEvents_);
    }

    /** NDe of one event (Def. 3). */
    std::size_t
    nde(StaticEventId sid) const
    {
        auto it = preds_.find(sid);
        return it == preds_.end() ? 0 : it->second.size();
    }

    /** Addresses of events whose NDe exceeds the rounded NDT. */
    std::unordered_set<Addr>
    fitaddrs() const
    {
        const auto threshold =
            static_cast<std::size_t>(std::llround(ndt()));
        std::unordered_set<Addr> out;
        for (const auto &[sid, producers] : preds_) {
            if (producers.size() <= threshold)
                continue;
            auto it = eventAddr_.find(sid);
            if (it != eventAddr_.end())
                out.insert(it->second);
        }
        return out;
    }

    /** Bundle NDT and fitaddrs. */
    NdInfo
    info() const
    {
        return NdInfo{ndt(), fitaddrs()};
    }

  private:
    std::unordered_map<StaticEventId, std::unordered_set<StaticEventId>>
        preds_;
    std::unordered_map<StaticEventId, Addr> eventAddr_;
    std::size_t numPairs_ = 0;
    std::size_t numEvents_ = 0;
};

} // namespace mcversi::gp

#endif // MCVERSI_GP_NDMETRICS_HH
