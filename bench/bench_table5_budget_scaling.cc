/**
 * @file
 * Table 5 reproduction: bugs found when running up to the equivalent
 * of larger budgets.
 *
 * The paper extends the 24h-per-sample runs of the stateless
 * generators to an effective 10 days by pooling samples. Here the
 * budget axis is test-runs: each configuration is given 1x, 4x and 8x
 * the base budget, and the table reports the fraction of the 11 bugs
 * found at each level. McVerSi-ALL (8KB) reaches 100% at 1x; the
 * stateless generators improve with budget but stay short of 100%.
 *
 * One campaign per (config, multiplier, bug); the full matrix runs on
 * the shared parallel runner.
 */

#include "bench_common.hh"

using namespace mcvbench;

int
main()
{
    const double scale = benchScale();
    const auto base_runs = static_cast<std::uint64_t>(100 * scale);
    const double base_secs = 4.0 * scale;

    const std::vector<GenConfig> configs = {
        GenConfig::All8K,
        GenConfig::Rand1K,
        GenConfig::Rand8K,
        GenConfig::DiyLitmus,
    };
    const std::vector<int> multipliers = {1, 4, 8};

    // McVerSi-ALL is stateful and already complete at 1x; the paper
    // marks larger budgets N/A, so those cells get no campaigns.
    auto isNa = [](GenConfig config, int mult) {
        return config == GenConfig::All8K && mult > 1;
    };

    std::vector<campaign::CampaignSpec> specs;
    for (GenConfig config : configs) {
        for (int mult : multipliers) {
            if (isNa(config, mult))
                continue;
            for (const sim::BugInfo &bug : sim::allBugs()) {
                specs.push_back(benchSpec(
                    config, bug.name, cellSeed(0, bug.id, config),
                    base_runs * static_cast<std::uint64_t>(mult),
                    base_secs * mult));
            }
        }
    }
    const campaign::CampaignSummary summary = runBenchCampaigns(specs);

    std::printf("Table 5: %% of the 11 bugs found at 1x/4x/8x budget "
                "(base %llu test-runs)\n\n",
                static_cast<unsigned long long>(base_runs));
    std::printf("%-22s | %-8s | %-8s | %-8s\n", "Configuration",
                "1x", "4x", "8x");

    std::size_t cell_begin = 0;
    const std::size_t bugs = sim::allBugs().size();
    for (GenConfig config : configs) {
        std::printf("%-22s", genConfigName(config));
        for (int mult : multipliers) {
            if (isNa(config, mult)) {
                std::printf(" | %-8s", "N/A");
                continue;
            }
            int found = 0;
            for (std::size_t b = 0; b < bugs; ++b) {
                const campaign::CampaignResult &r =
                    summary.results[cell_begin + b];
                if (r.ok() && r.harness.bugFound)
                    ++found;
            }
            cell_begin += bugs;
            char buf[16];
            std::snprintf(buf, sizeof(buf), "%.0f%%",
                          100.0 * found / static_cast<double>(bugs));
            std::printf(" | %-8s", buf);
        }
        std::printf("\n");
    }
    return 0;
}
