/**
 * @file
 * A binary relation over events, with the small algebra the checker and
 * the GP non-determinism metrics need (union, composition-lite queries,
 * transitive closure, acyclicity via Graph).
 */

#ifndef MCVERSI_MEMCONSISTENCY_RELATION_HH
#define MCVERSI_MEMCONSISTENCY_RELATION_HH

#include <cstddef>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "memconsistency/event.hh"

namespace mcversi::mc {

/**
 * Binary relation over EventIds, stored as an adjacency map of successor
 * sets. Insertion is idempotent; size() counts distinct ordered pairs.
 */
class Relation
{
  public:
    using SuccSet = std::unordered_set<EventId>;

    /** Insert the ordered pair (from, to). Returns true if it was new. */
    bool insert(EventId from, EventId to);

    /** True if (from, to) is in the relation. */
    bool contains(EventId from, EventId to) const;

    /** Number of distinct ordered pairs. */
    std::size_t size() const { return numPairs_; }

    bool empty() const { return numPairs_ == 0; }

    /** Remove all pairs. */
    void clear();

    /** Successors of @p from (empty set if none). */
    const SuccSet &successors(EventId from) const;

    /** Union @p other into this relation. */
    void unionWith(const Relation &other);

    /** All ordered pairs, in unspecified order. */
    std::vector<std::pair<EventId, EventId>> pairs() const;

    /** In-degree of each event mentioned as a target. */
    std::unordered_map<EventId, std::size_t> inDegrees() const;

    /**
     * Transitive closure (Warshall-style over reachable sets). Intended
     * for tests and small relations; the checker itself uses generator
     * edges plus DFS and never materializes closures.
     */
    Relation transitiveClosure() const;

    /** True if the relation, viewed as a digraph, has no cycle. */
    bool acyclic() const;

    /** True if no (x, x) pair is present. */
    bool irreflexive() const;

    /** Iterate adjacency: f(from, const SuccSet&). */
    template <typename F>
    void
    forEach(F &&f) const
    {
        for (const auto &[from, succs] : adj_)
            f(from, succs);
    }

  private:
    std::unordered_map<EventId, SuccSet> adj_;
    std::size_t numPairs_ = 0;

    static const SuccSet emptySet_;
};

} // namespace mcversi::mc

#endif // MCVERSI_MEMCONSISTENCY_RELATION_HH
