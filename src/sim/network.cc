#include "sim/network.hh"

#include <cstdlib>
#include <stdexcept>

namespace mcversi::sim {

const char *
msgTypeName(MsgType t)
{
    switch (t) {
      case MsgType::GETS: return "GETS";
      case MsgType::GETX: return "GETX";
      case MsgType::UPGRADE: return "UPGRADE";
      case MsgType::PUTS: return "PUTS";
      case MsgType::PUTX: return "PUTX";
      case MsgType::Unblock: return "Unblock";
      case MsgType::Data: return "Data";
      case MsgType::AckCount: return "AckCount";
      case MsgType::InvAck: return "InvAck";
      case MsgType::WbDataToL2: return "WbDataToL2";
      case MsgType::RecallData: return "RecallData";
      case MsgType::RecallAckNoData: return "RecallAckNoData";
      case MsgType::Inv: return "Inv";
      case MsgType::Recall: return "Recall";
      case MsgType::FwdGETS: return "FwdGETS";
      case MsgType::FwdGETX: return "FwdGETX";
      case MsgType::WbAck: return "WbAck";
      case MsgType::WbNack: return "WbNack";
      case MsgType::TsReset: return "TsReset";
      case MsgType::MemRead: return "MemRead";
      case MsgType::MemWrite: return "MemWrite";
      case MsgType::MemData: return "MemData";
    }
    return "?";
}

std::string
Msg::toString() const
{
    std::string s = msgTypeName(type);
    s += " line=0x";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llx",
                  static_cast<unsigned long long>(line));
    s += buf;
    s += " src=" + std::to_string(src) + " dst=" + std::to_string(dst);
    return s;
}

Network::XY
Network::position(NodeId node) const
{
    if (node == kMemNode)
        return {params_.cols, 0}; // east edge
    int idx = isL2Node(node) ? l2Tile(node) : node;
    return {idx % params_.cols, idx / params_.cols};
}

int
Network::hops(NodeId a, NodeId b) const
{
    const XY pa = position(a);
    const XY pb = position(b);
    int h = std::abs(pa.x - pb.x) + std::abs(pa.y - pb.y);
    // Colocated core/L2 pairs still traverse the local router.
    return h + 1;
}

void
Network::send(Msg msg)
{
    auto it = handlers_.find(msg.dst);
    if (it == handlers_.end())
        throw std::runtime_error("Network: no handler for node " +
                                 std::to_string(msg.dst));
    MsgHandler *handler = it->second;

    const Tick lat = params_.baseLatency +
                     params_.perHop * static_cast<Tick>(
                                          hops(msg.src, msg.dst)) +
                     rng_.below(params_.maxJitter + 1);
    Tick when = eq_.now() + lat;

    const auto key = std::make_tuple(msg.src, msg.dst,
                                     static_cast<int>(msg.vnet));
    auto &last = lastDelivery_[key];
    if (when <= last)
        when = last + 1;
    last = when;

    ++sent_;
    eq_.schedule(when, [handler, m = std::move(msg)]() mutable {
        handler->handleMsg(m);
    });
}

} // namespace mcversi::sim
