/**
 * @file
 * Strict API-contract checking, mirroring the event-queue's strict
 * scheduling contract: misuse of a documented call pairing throws in
 * debug and sanitizer builds (MCVERSI_SANITIZE defines
 * MCVERSI_STRICT_SCHEDULE) with a message naming the violating call;
 * release builds keep the historical tolerant behavior.
 */

#ifndef MCVERSI_COMMON_STRICT_HH
#define MCVERSI_COMMON_STRICT_HH

#include <stdexcept>

namespace mcversi {

/** True when API-contract violations throw instead of being ignored. */
constexpr bool
strictApiChecks()
{
#if !defined(NDEBUG) || defined(MCVERSI_STRICT_SCHEDULE)
    return true;
#else
    return false;
#endif
}

/**
 * Enforce an API pairing contract: when @p ok is false, throws
 * std::logic_error(@p what) in strict builds. @p what should name the
 * violating call and the missing counterpart.
 */
inline void
checkApiContract(bool ok, const char *what)
{
    if (strictApiChecks() && !ok)
        throw std::logic_error(what);
}

} // namespace mcversi

#endif // MCVERSI_COMMON_STRICT_HH
