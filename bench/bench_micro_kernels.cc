/**
 * @file
 * google-benchmark micro-benchmarks for the hot kernels: the axiomatic
 * checker (per-iteration cost, §4.1), witness recording, relation
 * algebra, the selective crossover, and the RNG.
 */

#include <benchmark/benchmark.h>

#include "mcversi.hh"

using namespace mcversi;

namespace {

/** Build a racy multi-threaded witness of ~n events. */
mc::ExecWitness
buildWitness(int threads, int events_per_thread, std::uint64_t seed)
{
    Rng rng(seed);
    mc::ExecWitness ew;
    const Addr addrs[] = {0x0, 0x40, 0x80, 0xc0, 0x100, 0x140};
    std::vector<WriteVal> last(std::size(addrs), kInitVal);
    WriteVal next = 1;
    for (int e = 0; e < events_per_thread; ++e) {
        for (Pid p = 0; p < threads; ++p) {
            const std::size_t a = rng.below(std::size(addrs));
            if (rng.boolWithProb(0.45)) {
                const WriteVal v = next++;
                ew.recordWrite(p, e, addrs[a], v, last[a]);
                last[a] = v;
            } else {
                ew.recordRead(p, e, addrs[a], last[a]);
            }
        }
    }
    return ew;
}

void
BM_CheckerTso(benchmark::State &state)
{
    const int per_thread = static_cast<int>(state.range(0));
    mc::Checker checker(mc::makeTso());
    std::uint64_t seed = 1;
    for (auto _ : state) {
        state.PauseTiming();
        mc::ExecWitness ew = buildWitness(8, per_thread, seed++);
        state.ResumeTiming();
        benchmark::DoNotOptimize(checker.check(ew));
    }
    state.SetItemsProcessed(state.iterations() * 8 * per_thread);
}
BENCHMARK(BM_CheckerTso)->Arg(32)->Arg(128)->Arg(512);

void
BM_CheckerSc(benchmark::State &state)
{
    mc::Checker checker(mc::makeSc());
    std::uint64_t seed = 1;
    for (auto _ : state) {
        state.PauseTiming();
        mc::ExecWitness ew = buildWitness(8, 128, seed++);
        state.ResumeTiming();
        benchmark::DoNotOptimize(checker.check(ew));
    }
}
BENCHMARK(BM_CheckerSc);

void
BM_WitnessRecording(benchmark::State &state)
{
    for (auto _ : state) {
        mc::ExecWitness ew = buildWitness(8, 128, 7);
        ew.finalize();
        benchmark::DoNotOptimize(ew.numEvents());
    }
}
BENCHMARK(BM_WitnessRecording);

void
BM_RelationTransitiveClosure(benchmark::State &state)
{
    mc::Relation r;
    Rng rng(3);
    for (int i = 0; i < 200; ++i)
        r.insert(static_cast<mc::EventId>(rng.below(100)),
                 static_cast<mc::EventId>(rng.below(100)));
    for (auto _ : state)
        benchmark::DoNotOptimize(r.transitiveClosure());
}
BENCHMARK(BM_RelationTransitiveClosure);

void
BM_SelectiveCrossover(benchmark::State &state)
{
    gp::GenParams gen;
    gen.testSize = 1000; // Table 3 size
    gp::GaParams ga;
    gp::RandomTestGen rtg(gen);
    Rng rng(9);
    gp::Test t1 = rtg.randomTest(rng);
    gp::Test t2 = rtg.randomTest(rng);
    gp::NdInfo nd1;
    gp::NdInfo nd2;
    for (int i = 0; i < 8; ++i) {
        nd1.fitaddrs.insert(rtg.randomAddr(rng));
        nd2.fitaddrs.insert(rtg.randomAddr(rng));
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            gp::crossoverMutate(t1, nd1, t2, nd2, rtg, ga, rng));
    }
}
BENCHMARK(BM_SelectiveCrossover);

void
BM_RandomTestGeneration(benchmark::State &state)
{
    gp::GenParams gen;
    gen.testSize = 1000;
    gp::RandomTestGen rtg(gen);
    Rng rng(11);
    for (auto _ : state)
        benchmark::DoNotOptimize(rtg.randomTest(rng));
}
BENCHMARK(BM_RandomTestGeneration);

void
BM_Rng(benchmark::State &state)
{
    Rng rng(13);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.below(1000));
}
BENCHMARK(BM_Rng);

void
BM_SimTestRun(benchmark::State &state)
{
    // End-to-end cost of one test-run on the full system (the unit of
    // GP evaluation): dominates verification wall-clock.
    sim::SystemConfig cfg;
    cfg.seed = 21;
    sim::System system(cfg);
    mc::Checker checker(mc::makeTso());
    gp::GenParams gen;
    gen.testSize = static_cast<std::size_t>(state.range(0));
    gen.iterations = 4;
    gen.memSize = 8 * 1024;
    host::Workload::Params wl;
    wl.iterations = gen.iterations;
    host::Workload workload(system, checker, host::layoutFor(gen), wl);
    gp::RandomTestGen rtg(gen);
    Rng rng(22);
    for (auto _ : state) {
        host::RunResult r = workload.runTest(rtg.randomTest(rng));
        benchmark::DoNotOptimize(r.eventsExecuted);
    }
}
BENCHMARK(BM_SimTestRun)->Arg(64)->Arg(256)->Unit(
    benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
