/**
 * @file
 * Mini-diy: litmus test generation from critical cycles.
 *
 * Following the diy tool (Alglave et al., "Fences in weak memory
 * models"), a litmus test is synthesized from a *cycle of relaxation
 * edges*. Communication edges (Rfe, Fre, Coe/Wse) connect events on the
 * same address across threads; program-order edges (PodRR, PodRW,
 * PodWW, MFencedWR) connect events of one thread on different
 * addresses. Any cycle built solely from edges that x86-TSO globally
 * orders is forbidden; observing it is a violation. The final condition
 * is derived per communication edge:
 *
 *   Rfe(W -> R)  : R reads from W
 *   Fre(R -> W)  : R reads a write strictly co-before W (or init)
 *   Coe(W -> W') : W is co-before W'
 *
 * x86 has no standalone mfence in our op set; MFencedWR edges insert an
 * atomic RMW to a scratch location (the x86 "lock-prefix as fence"
 * idiom, which the paper's operation mix also relies on).
 */

#ifndef MCVERSI_LITMUS_DIY_HH
#define MCVERSI_LITMUS_DIY_HH

#include <optional>
#include <string>
#include <vector>

#include "litmus/litmus.hh"

namespace mcversi::litmus {

/**
 * Relaxation edge alphabet. The cycle enumerator uses the x86-TSO
 * subset (everything but PodWR: TSO never orders a plain write before
 * a po-later read, so no forbidden TSO cycle contains one); PodWR
 * exists for hand-built tests of stricter models (SC's SB).
 */
enum class EdgeType : std::uint8_t {
    Rfe,       ///< external read-from            (W -> R, same addr)
    Fre,       ///< external from-read            (R -> W, same addr)
    Coe,       ///< external coherence            (W -> W, same addr)
    PodRR,     ///< program order read-read       (different addr)
    PodRW,     ///< program order read-write      (different addr)
    PodWW,     ///< program order write-write     (different addr)
    MFencedWR, ///< fenced write-read             (different addr)
    PodWR,     ///< program order write-read      (different addr)
};

const char *edgeName(EdgeType e);

/** True for Rfe / Fre / Coe. */
bool isCommEdge(EdgeType e);

/** Source / destination event type: true = write. */
bool edgeSrcIsWrite(EdgeType e);
bool edgeDstIsWrite(EdgeType e);

/** A cycle of edges. */
using CycleSpec = std::vector<EdgeType>;

/** diy-style name: edge names joined by spaces. */
std::string cycleName(const CycleSpec &spec);

/**
 * Build a litmus test from a cycle.
 *
 * Validity: adjacent edge types must agree (including wrap-around),
 * the last edge must be a communication edge (canonical rotation), at
 * least two communication and two program-order edges must be present.
 *
 * @param addr_stride byte distance between test variables (>= one
 *        cache line keeps variables from false sharing)
 * @return the test, or nullopt if the spec is invalid
 */
std::optional<LitmusTest> buildTest(const CycleSpec &spec,
                                    Addr addr_stride = kLineBytes);

/**
 * Enumerate forbidden critical cycles of length [4, max_len],
 * canonicalized by rotation, in deterministic order.
 */
std::vector<CycleSpec> enumerateCycles(std::size_t max_len,
                                       std::size_t max_tests);

} // namespace mcversi::litmus

#endif // MCVERSI_LITMUS_DIY_HH
