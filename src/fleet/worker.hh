/**
 * @file
 * Fleet worker: the child-process side of the coordinator/worker
 * protocol.
 *
 * A worker is a fork of the coordinator process; it inherits the
 * expanded spec vector by memory and speaks a tiny framed protocol
 * over two inherited pipes:
 *
 *   request  (coordinator -> worker):  u32 cell, u32 attempt  (LE)
 *   response (worker -> coordinator):  u32 payload-length (LE),
 *                                      then the wire::encodeCell bytes
 *
 * The worker runs exactly one cell at a time and replies only with
 * COMPLETE results: on SIGTERM the in-flight campaign is cancelled via
 * the host-layer Budget::interrupted hook and the partial result is
 * discarded (no reply), so the coordinator/journal never see a
 * truncated cell. EOF on the request pipe is the normal shutdown
 * signal. The caller (coordinator) redirects the worker's stdout and
 * stderr to a per-slot log file before entering this loop, so a
 * crashing cell's diagnostics can be attached to its error row.
 */

#ifndef MCVERSI_FLEET_WORKER_HH
#define MCVERSI_FLEET_WORKER_HH

#include <vector>

#include "campaign/spec.hh"

namespace mcversi::fleet {

struct WorkerConfig
{
    /** Read end of the request pipe. */
    int requestFd = -1;
    /** Write end of the response pipe. */
    int responseFd = -1;
    /** Batch-evaluation threads per cell (CampaignRunner::runOne). */
    int evalThreads = 1;
};

/**
 * Worker main loop; only ever called in a forked child. Returns the
 * process exit status (0 = clean shutdown). The caller must _exit()
 * with it rather than return, so the child never unwinds into the
 * parent's stack/atexit state.
 */
int runWorkerLoop(const WorkerConfig &config,
                  const std::vector<campaign::CampaignSpec> &specs);

} // namespace mcversi::fleet

#endif // MCVERSI_FLEET_WORKER_HH
