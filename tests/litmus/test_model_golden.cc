/**
 * @file
 * Per-model golden litmus regression for the consistency-model zoo.
 *
 * Pins, for every entry of the shared litmus pool (38 enumerated
 * x86-TSO cycles + SB + MP through a release/acquire RMW pair) and
 * every registered model, the checker's verdict on the forbidden
 * witness -- one character per model in registry (strictness) order
 * sc, tso, pso, rmo, rc:
 *
 *   U  UniprocViolation (coherence alone; model-independent)
 *   G  GhbViolation     (the model's ppo/fences forbid the cycle)
 *   O  Ok               (the model permits the relaxed outcome)
 *
 * The table is the observable definition of each model: any change to
 * a profile, the shared engine, or the pool shows up as a cell diff.
 * It also pins the zoo's separating tests -- each adjacent model pair
 * disagrees on at least one entry -- and the strictness ladder
 * (verdicts weaken monotonically left to right), which a second test
 * re-checks dynamically over random witnesses.
 */

#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "litmus/suites.hh"
#include "memconsistency/checker.hh"
#include "memconsistency/models/registry.hh"
#include "witness_synthesis.hh"

using namespace mcversi;
using namespace mcversi::litmus;

namespace {

struct GoldenRow
{
    const char *name;
    /** Verdict per model, registry order (sc, tso, pso, rmo, rc). */
    const char *verdicts;
};

constexpr GoldenRow kModelGolden[] = {
    {"Rfe PodRR PodRR Fre", "UUUUU"},
    {"Rfe PodRR PodRW Coe", "UUUUU"},
    {"Rfe PodRW PodWW Coe", "UUUUU"},
    {"Rfe PodRW MFencedWR Fre", "UUUUU"},
    {"Fre PodWW PodWW Rfe", "UUUUU"},
    {"Fre MFencedWR PodRW Rfe", "UUUUU"},
    {"Coe PodWW PodWW Coe", "UUUUU"},
    {"Coe PodWW MFencedWR Fre", "UUUUU"},
    {"Coe MFencedWR PodRR Fre", "UUUUU"},
    {"Coe MFencedWR PodRW Coe", "UUUUU"},
    {"PodRR Fre PodWW Rfe", "GGOOO"},
    {"PodRW Rfe PodRW Rfe", "GGGOO"},
    {"PodRW Coe PodWW Rfe", "GGOOO"},
    {"PodWW Coe PodWW Coe", "GGOOO"},
    {"PodWW Coe MFencedWR Fre", "GGOOO"},
    {"MFencedWR Fre MFencedWR Fre", "GGGGO"},
    {"Rfe Fre PodWW PodWW Coe", "UUUUU"},
    {"Rfe Fre PodWW MFencedWR Fre", "UUUUU"},
    {"Rfe Fre MFencedWR PodRR Fre", "UUUUU"},
    {"Rfe Fre MFencedWR PodRW Coe", "UUUUU"},
    {"Rfe PodRR Fre PodWW Coe", "GGOOO"},
    {"Rfe PodRR Fre MFencedWR Fre", "GGGOO"},
    {"Rfe PodRR PodRR Fre Coe", "UUUUU"},
    {"Rfe PodRR PodRR PodRR Fre", "UUUUU"},
    {"Rfe PodRR PodRR PodRW Coe", "UUUUU"},
    {"Rfe PodRR PodRW Rfe Fre", "UUUUU"},
    {"Rfe PodRR PodRW Coe Coe", "UUUUU"},
    {"Rfe PodRR PodRW PodWW Coe", "UUUUU"},
    {"Rfe PodRR PodRW MFencedWR Fre", "UUUUU"},
    {"Rfe PodRW Rfe PodRR Fre", "GGGOO"},
    {"Rfe PodRW Rfe PodRW Coe", "GGGOO"},
    {"Rfe PodRW Coe PodWW Coe", "GGOOO"},
    {"Rfe PodRW Coe MFencedWR Fre", "GGGOO"},
    {"Rfe PodRW PodWW Rfe Fre", "UUUUU"},
    {"Rfe PodRW PodWW Coe Coe", "UUUUU"},
    {"Rfe PodRW PodWW PodWW Coe", "UUUUU"},
    {"Rfe PodRW PodWW MFencedWR Fre", "UUUUU"},
    {"Rfe PodRW MFencedWR Fre Coe", "UUUUU"},
    {"SB (PodWR Fre PodWR Fre)", "GOOOO"},
    {"MP+rel-acq", "GGGGG"},
};

constexpr std::size_t kPoolSize = std::size(kModelGolden);

/** Expected suiteForModel sizes (non-Ok columns of the table). */
constexpr std::array<std::size_t, 5> kSuiteSizes = {40, 39, 33, 28, 27};

char
verdictChar(mc::CheckResult::Kind kind)
{
    switch (kind) {
      case mc::CheckResult::Kind::Ok: return 'O';
      case mc::CheckResult::Kind::UniprocViolation: return 'U';
      case mc::CheckResult::Kind::AtomicityViolation: return 'A';
      case mc::CheckResult::Kind::GhbViolation: return 'G';
      default: return '?';
    }
}

/** Same witness generator family as the cache differential test,
 * consistent-by-construction (every read sees the current value). */
mc::ExecWitness
randomConsistentWitness(Rng &rng, int threads, int ops, int addrs)
{
    mc::ExecWitness ew;
    std::vector<WriteVal> memory(static_cast<std::size_t>(addrs),
                                 kInitVal);
    std::vector<std::int32_t> poi(static_cast<std::size_t>(threads), 0);
    WriteVal next = 1;
    for (int i = 0; i < ops; ++i) {
        const Pid pid = static_cast<Pid>(
            rng.below(static_cast<std::uint64_t>(threads)));
        const auto ai = static_cast<std::size_t>(
            rng.below(static_cast<std::uint64_t>(addrs)));
        const Addr addr = 0x100 + 64 * static_cast<Addr>(ai);
        const std::int32_t p = poi[static_cast<std::size_t>(pid)]++;
        const double roll = rng.uniform();
        if (roll < 0.5) {
            ew.recordRead(pid, p, addr, memory[ai]);
        } else if (roll < 0.85) {
            const WriteVal v = next++;
            ew.recordWrite(pid, p, addr, v, memory[ai]);
            memory[ai] = v;
        } else {
            const WriteVal v = next++;
            ew.recordRead(pid, p, addr, memory[ai], /*rmw=*/true);
            ew.recordWrite(pid, p, addr, v, memory[ai], /*rmw=*/true);
            memory[ai] = v;
        }
    }
    return ew;
}

std::vector<std::unique_ptr<mc::Checker>>
ladderCheckers()
{
    std::vector<std::unique_ptr<mc::Checker>> checkers;
    for (const std::string &name : mc::modelNames())
        checkers.push_back(
            std::make_unique<mc::Checker>(mc::makeModel(name)));
    return checkers;
}

} // namespace

TEST(ModelGolden, PoolNamesAreStable)
{
    const auto &pool = litmusPool();
    ASSERT_EQ(pool.size(), kPoolSize);
    // The first kX86SuiteSize entries are the generated TSO suite.
    const std::vector<LitmusTest> tso = x86TsoSuite();
    ASSERT_EQ(tso.size(), kX86SuiteSize);
    for (std::size_t i = 0; i < kX86SuiteSize; ++i)
        EXPECT_EQ(pool[i].test.name, tso[i].name) << i;
    for (std::size_t i = 0; i < kPoolSize; ++i)
        EXPECT_EQ(pool[i].test.name, kModelGolden[i].name) << i;
}

TEST(ModelGolden, ForbiddenVerdictsMatchGoldenTable)
{
    const auto &pool = litmusPool();
    ASSERT_EQ(pool.size(), kPoolSize);
    const auto checkers = ladderCheckers();
    ASSERT_EQ(checkers.size(), 5u);

    for (std::size_t i = 0; i < kPoolSize; ++i) {
        std::string row;
        for (const auto &checker : checkers) {
            mc::ExecWitness ew =
                testsupport::forbiddenWitness(pool[i].test);
            row += verdictChar(checker->check(ew).kind);
        }
        EXPECT_EQ(row, kModelGolden[i].verdicts)
            << pool[i].test.name << ": verdict drift (models "
            << mc::modelNamesJoined() << ")";

        // The static classification must agree with the checkers: an
        // entry is in a model's suite iff its verdict is a violation.
        for (std::size_t m = 0; m < checkers.size(); ++m) {
            const bool forbidden = forbiddenUnder(
                pool[i], mc::modelProfile(mc::modelNames()[m]));
            EXPECT_EQ(forbidden, kModelGolden[i].verdicts[m] != 'O')
                << pool[i].test.name << " under "
                << mc::modelNames()[m];
        }
    }
}

TEST(ModelGolden, SequentialOutcomesPermittedEverywhere)
{
    const auto checkers = ladderCheckers();
    for (const SuiteEntry &entry : litmusPool()) {
        for (const auto &checker : checkers) {
            mc::ExecWitness ew =
                testsupport::sequentialWitness(entry.test);
            EXPECT_TRUE(checker->check(ew).ok())
                << entry.test.name << " under "
                << checker->arch().name();
        }
    }
}

TEST(ModelGolden, AdjacentModelsAreDistinct)
{
    // One separating pool entry per adjacent pair of the ladder: the
    // stricter model rejects the forbidden outcome, the weaker permits
    // it. These cells double as the zoo's documentation.
    const struct
    {
        const char *test;
        const char *strict;
        const char *weak;
    } kSeparators[] = {
        {"SB (PodWR Fre PodWR Fre)", "sc", "tso"},
        {"PodRR Fre PodWW Rfe", "tso", "pso"},
        {"PodRW Rfe PodRW Rfe", "pso", "rmo"},
        {"MFencedWR Fre MFencedWR Fre", "rmo", "rc"},
    };
    for (const auto &sep : kSeparators) {
        const SuiteEntry *entry = nullptr;
        for (const SuiteEntry &e : litmusPool())
            if (e.test.name == sep.test)
                entry = &e;
        ASSERT_NE(entry, nullptr) << sep.test;
        const mc::Checker strict(mc::makeModel(sep.strict));
        const mc::Checker weak(mc::makeModel(sep.weak));
        mc::ExecWitness ew1 = testsupport::forbiddenWitness(entry->test);
        mc::ExecWitness ew2 = testsupport::forbiddenWitness(entry->test);
        EXPECT_EQ(strict.check(ew1).kind,
                  mc::CheckResult::Kind::GhbViolation)
            << sep.test << " under " << sep.strict;
        EXPECT_TRUE(weak.check(ew2).ok())
            << sep.test << " under " << sep.weak;
    }
}

TEST(ModelGolden, VerdictsMonotoneAlongStrictnessLadder)
{
    // Structural strictness decreases along registry order...
    const auto &names = mc::modelNames();
    for (std::size_t i = 0; i + 1 < names.size(); ++i) {
        EXPECT_TRUE(mc::modelProfile(names[i]).atLeastAsStrongAs(
            mc::modelProfile(names[i + 1])))
            << names[i] << " !>= " << names[i + 1];
        EXPECT_FALSE(mc::modelProfile(names[i + 1]).atLeastAsStrongAs(
            mc::modelProfile(names[i])))
            << names[i + 1] << " >= " << names[i];
    }

    // ...and so must the verdicts: Ok under a stricter model implies
    // Ok under every weaker one (a weaker model permits strictly more
    // executions). Checked over the pool's forbidden witnesses plus
    // seeded random well-formed witnesses.
    const auto checkers = ladderCheckers();
    auto expect_monotone = [&](mc::ExecWitness &ew,
                               const std::string &label) {
        bool ok_seen = false;
        for (std::size_t m = 0; m < checkers.size(); ++m) {
            const mc::CheckResult r = checkers[m]->check(ew);
            ASSERT_NE(r.kind, mc::CheckResult::Kind::WitnessAnomaly)
                << label;
            if (ok_seen) {
                EXPECT_TRUE(r.ok())
                    << label << ": Ok under a stricter model but '"
                    << mc::CheckResult::kindName(r.kind) << "' under "
                    << names[m];
            }
            ok_seen = ok_seen || r.ok();
        }
    };

    for (const SuiteEntry &entry : litmusPool()) {
        mc::ExecWitness ew = testsupport::forbiddenWitness(entry.test);
        expect_monotone(ew, entry.test.name);
    }

    Rng rng(0x3a2b1c);
    for (int i = 0; i < 80; ++i) {
        const int threads = 2 + static_cast<int>(rng.below(4));
        const int ops = 16 + static_cast<int>(rng.below(100));
        const int addrs = 1 + static_cast<int>(rng.below(5));
        mc::ExecWitness ew =
            randomConsistentWitness(rng, threads, ops, addrs);
        expect_monotone(ew, "random witness #" + std::to_string(i));
    }
}

TEST(ModelGolden, SuiteForModelSelectsTheNonOkRows)
{
    const auto &names = mc::modelNames();
    ASSERT_EQ(names.size(), kSuiteSizes.size());
    for (std::size_t m = 0; m < names.size(); ++m) {
        const std::vector<LitmusTest> suite = suiteForModel(names[m]);
        EXPECT_EQ(suite.size(), kSuiteSizes[m]) << names[m];
        // The suite is exactly the pool rows whose golden verdict for
        // this model is a violation, in pool order.
        std::size_t s = 0;
        for (std::size_t i = 0; i < kPoolSize; ++i) {
            if (kModelGolden[i].verdicts[m] == 'O')
                continue;
            ASSERT_LT(s, suite.size()) << names[m];
            EXPECT_EQ(suite[s].name, kModelGolden[i].name)
                << names[m] << " row " << s;
            ++s;
        }
        EXPECT_EQ(s, suite.size()) << names[m];
    }
    EXPECT_THROW(suiteForModel("alpha"), std::invalid_argument);
}
