/**
 * @file
 * IncrementalGraph (Pearce-Kelly dynamic topological ordering) tests:
 * differential against the batch CycleGraph DFS on random edge
 * sequences, cycle-report validity, poisoning semantics, and
 * capacity-preserving reuse across resets.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hh"
#include "memconsistency/graph.hh"
#include "memconsistency/incremental.hh"

using namespace mcversi;
using namespace mcversi::mc;

namespace {

using Node = IncrementalGraph::Node;

/** True if @p to is reachable from @p from using @p g's edges. */
bool
reachable(const CycleGraph &g, Node from, Node to)
{
    std::vector<bool> seen(g.numNodes(), false);
    std::vector<Node> stack{from};
    while (!stack.empty()) {
        const Node cur = stack.back();
        stack.pop_back();
        if (cur == to)
            return true;
        if (seen[static_cast<std::size_t>(cur)])
            continue;
        seen[static_cast<std::size_t>(cur)] = true;
        for (const Node nxt : g.successors(cur))
            stack.push_back(nxt);
    }
    return false;
}

/** Every consecutive pair of the reported cycle must be a real edge. */
void
expectGenuineCycle(const IncrementalGraph &inc, const CycleGraph &ref)
{
    const std::vector<Node> &cycle = inc.lastCycle();
    ASSERT_FALSE(cycle.empty());
    for (std::size_t i = 0; i < cycle.size(); ++i) {
        const Node from = cycle[i];
        const Node to = cycle[(i + 1) % cycle.size()];
        const auto &succ = ref.successors(from);
        EXPECT_TRUE(std::find(succ.begin(), succ.end(), to) !=
                    succ.end())
            << "cycle edge " << from << " -> " << to
            << " was never inserted";
    }
}

} // namespace

TEST(IncrementalGraph, FastPathChainStaysAcyclic)
{
    IncrementalGraph g;
    const Node a = g.addNode();
    const Node b = g.addNode();
    const Node c = g.addNode();
    EXPECT_TRUE(g.addEdge(a, b));
    EXPECT_TRUE(g.addEdge(b, c));
    EXPECT_TRUE(g.addEdge(a, c)); // Transitive duplicate is fine.
    EXPECT_FALSE(g.hasCycle());
}

TEST(IncrementalGraph, TwoNodeCycleDetected)
{
    IncrementalGraph g;
    const Node a = g.addNode();
    const Node b = g.addNode();
    EXPECT_TRUE(g.addEdge(a, b));
    EXPECT_FALSE(g.addEdge(b, a));
    EXPECT_TRUE(g.hasCycle());
    // Cycle starts at the inserted edge's target: [a, b].
    EXPECT_EQ(g.lastCycle(), (std::vector<Node>{a, b}));
}

TEST(IncrementalGraph, SelfLoopDetected)
{
    IncrementalGraph g;
    const Node a = g.addNode();
    EXPECT_FALSE(g.addEdge(a, a));
    EXPECT_TRUE(g.hasCycle());
    EXPECT_EQ(g.lastCycle(), (std::vector<Node>{a}));
}

TEST(IncrementalGraph, ReorderAgainstInsertionOrder)
{
    // Insert edges strictly against node-creation order, forcing the
    // slow (reorder) path on every insertion.
    IncrementalGraph g;
    constexpr int kNodes = 64;
    std::vector<Node> nodes;
    for (int i = 0; i < kNodes; ++i)
        nodes.push_back(g.addNode());
    for (int i = kNodes - 1; i > 0; --i)
        EXPECT_TRUE(g.addEdge(nodes[static_cast<std::size_t>(i)],
                              nodes[static_cast<std::size_t>(i - 1)]));
    EXPECT_FALSE(g.hasCycle());
    // Now close the loop end-around.
    EXPECT_FALSE(g.addEdge(nodes[0], nodes[kNodes - 1]));
    EXPECT_EQ(g.lastCycle().size(), static_cast<std::size_t>(kNodes));
}

TEST(IncrementalGraph, DifferentialAgainstBatchDfs)
{
    // Random edge sequences over small node counts: the incremental
    // graph must flag a cycle at exactly the first edge that makes the
    // batch DFS find one, and the reported cycle must be genuine.
    Rng rng(0x1c4e11);
    for (int round = 0; round < 200; ++round) {
        const int n = 2 + static_cast<int>(rng.below(24));
        const int edges = 1 + static_cast<int>(rng.below(96));

        IncrementalGraph inc;
        CycleGraph ref(static_cast<std::size_t>(n));
        for (int i = 0; i < n; ++i)
            inc.addNode();

        bool done = false;
        for (int e = 0; e < edges && !done; ++e) {
            const Node from = static_cast<Node>(
                rng.below(static_cast<std::uint64_t>(n)));
            const Node to = static_cast<Node>(
                rng.below(static_cast<std::uint64_t>(n)));
            ref.addEdge(from, to);
            const bool still_acyclic = inc.addEdge(from, to);
            const bool ref_acyclic = !ref.findCycle().has_value();
            ASSERT_EQ(still_acyclic, ref_acyclic)
                << "round " << round << " edge " << from << "->" << to;
            if (!still_acyclic) {
                expectGenuineCycle(inc, ref);
                done = true;
            }
        }
    }
}

TEST(IncrementalGraph, TopologicalOrderMatchesReachability)
{
    // After a batch of random acyclic insertions, every inserted edge
    // must still be accepted as a (duplicate) fast-path or reorderable
    // insertion -- i.e. the maintained order is consistent.
    Rng rng(0x70b0);
    IncrementalGraph g;
    CycleGraph ref(32);
    for (int i = 0; i < 32; ++i)
        g.addNode();
    std::vector<std::pair<Node, Node>> inserted;
    for (int e = 0; e < 200; ++e) {
        const Node from =
            static_cast<Node>(rng.below(32));
        const Node to = static_cast<Node>(rng.below(32));
        if (from == to || reachable(ref, to, from))
            continue; // Would close a cycle; keep the graph a DAG.
        ref.addEdge(from, to);
        ASSERT_TRUE(g.addEdge(from, to));
        inserted.emplace_back(from, to);
    }
    for (const auto &[from, to] : inserted)
        ASSERT_TRUE(g.addEdge(from, to));
    EXPECT_FALSE(g.hasCycle());
}

TEST(IncrementalGraph, ResetReusesCapacityAndClearsPoison)
{
    IncrementalGraph g;
    const Node a = g.addNode();
    const Node b = g.addNode();
    EXPECT_TRUE(g.addEdge(a, b));
    EXPECT_FALSE(g.addEdge(b, a));
    EXPECT_TRUE(g.hasCycle());

    g.reset();
    EXPECT_FALSE(g.hasCycle());
    EXPECT_EQ(g.numNodes(), 0u);

    // Same shape again after reset: identical behavior.
    const Node a2 = g.addNode();
    const Node b2 = g.addNode();
    EXPECT_TRUE(g.addEdge(a2, b2));
    EXPECT_TRUE(g.addEdge(a2, b2));
    EXPECT_FALSE(g.addEdge(b2, a2));
    EXPECT_EQ(g.lastCycle(), (std::vector<Node>{a2, b2}));
}
