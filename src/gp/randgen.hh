/**
 * @file
 * Biased pseudo-random test generation.
 *
 * Implements the baseline generator (McVerSi-RAND), the initial GP
 * population, and the "Make random 〈pid, op〉" primitive of Algorithm 1,
 * with user constraints per §3.1: distribution of operations, memory
 * address range, and stride.
 */

#ifndef MCVERSI_GP_RANDGEN_HH
#define MCVERSI_GP_RANDGEN_HH

#include <vector>

#include "common/addrset.hh"
#include "common/rng.hh"
#include "gp/params.hh"
#include "gp/test.hh"

namespace mcversi::gp {

/** Random node / test factory. */
class RandomTestGen
{
  public:
    explicit RandomTestGen(GenParams params) : params_(params) {}

    const GenParams &params() const { return params_; }

    /** Random logical address: a multiple of stride within the range. */
    Addr randomAddr(Rng &rng) const;

    /** Random operation per the configured kind biases. */
    Op randomOp(Rng &rng) const;

    /** Random gene: uniform pid, biased op. */
    Node randomNode(Rng &rng) const;

    /**
     * Random gene with the address constrained to @p addrs when the op
     * is a memory operation (Algorithm 1's PBFA case). Falls back to an
     * unconstrained address if @p addrs is empty.
     */
    Node randomNodeConstrained(Rng &rng, const AddrSet &addrs) const;

    /** A full random test of params().testSize genes. */
    Test randomTest(Rng &rng) const;

    /**
     * Fill @p out with params().testSize random genes, reusing the
     * test's node capacity. Draw-for-draw identical to randomTest().
     */
    void randomTestInto(Rng &rng, Test &out) const;

    /**
     * Fill the gene span @p out with random genes (slab-backed genome
     * storage). Draw-for-draw identical to randomTest() when out.size()
     * == params().testSize.
     */
    void randomTestInto(Rng &rng, std::span<Node> out) const;

  private:
    GenParams params_;
};

} // namespace mcversi::gp

#endif // MCVERSI_GP_RANDGEN_HH
