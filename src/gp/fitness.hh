/**
 * @file
 * Adaptive coverage fitness (§3.2).
 *
 * Coverage is the GP fitness function. The computation dynamically
 * adapts so that frequent state transitions are excluded: upon
 * initialization, only transitions whose global count is below a low
 * cut-off are considered; if the adaptive coverage stays below a
 * threshold for too many test evaluations, the cut-off doubles
 * (exponential increase). If t transitions are under consideration and
 * a test-run covered n of them, its fitness is n / t. Each test's
 * fitness is evaluated exactly once.
 */

#ifndef MCVERSI_GP_FITNESS_HH
#define MCVERSI_GP_FITNESS_HH

#include <cstdint>
#include <span>
#include <vector>

namespace mcversi::gp {

/** Adaptive structural-coverage fitness function. */
class AdaptiveCoverageFitness
{
  public:
    struct Params
    {
        /** Initial transition-count cut-off. */
        std::uint64_t initialCutoff = 4;
        /** Fitness below this counts as a stalled evaluation. */
        double stallThreshold = 0.02;
        /** Consecutive stalled evaluations before doubling cut-off. */
        int stallWindow = 50;
        /**
         * Weight in [0, 1] of the distinct-interleaving signal (new
         * checking equivalence classes a run discovered, reported by
         * the verdict cache): fitness becomes
         *   (1 - w) * coverage + w * n / (n + 1).
         * 0 (the default) ignores the signal entirely, keeping
         * campaigns byte-identical whether or not the cache is on.
         */
        double interleavingWeight = 0.0;
    };

    explicit AdaptiveCoverageFitness(Params params)
        : params_(params), cutoff_(params.initialCutoff)
    {
    }

    AdaptiveCoverageFitness() : AdaptiveCoverageFitness(Params{}) {}

    /**
     * Evaluate one test-run: score(...) against the current cut-off,
     * then record(...) the outcome (the serial one-at-a-time path).
     *
     * @param pre_counts view of the global per-transition counts at
     *                   run start, indexed by transition id; read in
     *                   place (the counters are never copied)
     * @param covered    ids of transitions this run covered
     * @param new_interleavings distinct checking equivalence classes
     *                   this run discovered (0 when the verdict cache
     *                   is off; ignored unless interleavingWeight > 0)
     * @return fitness in [0, 1]
     */
    double evaluate(std::span<const std::uint64_t> pre_counts,
                    const std::vector<std::uint32_t> &covered,
                    std::uint64_t new_interleavings = 0);

    /**
     * Fitness of one test-run against the *current* cut-off, without
     * touching the adaptive state. Const and data-race-free against
     * concurrent score() calls: batch evaluation scores every slot of a
     * batch against the cut-off frozen at the batch barrier, then
     * replays record() in slot order (deterministic for any worker
     * count).
     */
    double score(std::span<const std::uint64_t> pre_counts,
                 const std::vector<std::uint32_t> &covered,
                 std::uint64_t new_interleavings = 0) const;

    /**
     * Advance the adaptive cut-off state with one scored fitness.
     * Must be called exactly once per score(), in a deterministic
     * order (batch-slot order at batch barriers).
     */
    void record(double fitness);

    std::uint64_t cutoff() const { return cutoff_; }
    int stalledEvals() const { return stalled_; }

  private:
    Params params_;
    std::uint64_t cutoff_;
    int stalled_ = 0;
};

/**
 * Normalize NDT into [0, 1) for fitness blending (used by the
 * McVerSi-Std.XO configuration, which adds "equal weighting for coverage
 * and normalized NDT" to its fitness). NDT has no a-priori upper bound,
 * so we use the monotone map ndt / (ndt + 1).
 */
inline double
normalizedNdt(double ndt)
{
    if (ndt <= 0.0)
        return 0.0;
    return ndt / (ndt + 1.0);
}

} // namespace mcversi::gp

#endif // MCVERSI_GP_FITNESS_HH
