/**
 * @file
 * On-chip interconnect model.
 *
 * A 2D mesh (Table 2: 2 rows) connecting cores/L1s, L2 tiles (one per
 * core, colocated) and a memory controller at the east edge. Latency is
 * base + hops * perHop + uniform jitter, with point-to-point FIFO
 * ordering preserved per (src, dst, vnet) and no ordering across vnets.
 * The jitter, together with per-core issue jitter, is the timing
 * non-determinism that perturbs each test execution differently (§5.1).
 */

#ifndef MCVERSI_SIM_NETWORK_HH
#define MCVERSI_SIM_NETWORK_HH

#include <map>
#include <unordered_map>

#include "common/rng.hh"
#include "sim/eventq.hh"
#include "sim/message.hh"

namespace mcversi::sim {

/** Mesh interconnect with per-vnet point-to-point ordering. */
class Network
{
  public:
    struct Params
    {
        int cols = 4;
        int rows = 2;
        Tick baseLatency = 2;
        Tick perHop = 3;
        Tick maxJitter = 5; ///< uniform in [0, maxJitter]
    };

    Network(EventQueue &eq, Rng rng, Params params)
        : eq_(eq), rng_(rng), params_(params)
    {
    }

    Network(EventQueue &eq, Rng rng) : Network(eq, rng, Params{}) {}

    /** Register the handler for a node id. */
    void
    registerNode(NodeId node, MsgHandler *handler)
    {
        handlers_[node] = handler;
    }

    /** Inject a message; delivery is scheduled on the event queue. */
    void send(Msg msg);

    /** Manhattan hop count between two nodes. */
    int hops(NodeId a, NodeId b) const;

    std::uint64_t messagesSent() const { return sent_; }

    /** Forget FIFO ordering state (safe only at quiescence). */
    void resetOrdering() { lastDelivery_.clear(); }

  private:
    struct XY
    {
        int x;
        int y;
    };
    XY position(NodeId node) const;

    EventQueue &eq_;
    Rng rng_;
    Params params_;
    std::unordered_map<NodeId, MsgHandler *> handlers_;
    /** Last scheduled delivery per (src, dst, vnet), for FIFO order. */
    std::map<std::tuple<NodeId, NodeId, int>, Tick> lastDelivery_;
    std::uint64_t sent_ = 0;
};

} // namespace mcversi::sim

#endif // MCVERSI_SIM_NETWORK_HH
