#include "sim/eventq.hh"

#include <stdexcept>
#include <utility>

namespace mcversi::sim {

void
EventQueue::schedule(Tick when, Callback cb)
{
    if (when < now_)
        when = now_;
    queue_.push(Item{when, seq_++, std::move(cb)});
}

std::uint64_t
EventQueue::runUntilQuiescent(std::uint64_t max_events)
{
    std::uint64_t n = 0;
    while (!queue_.empty()) {
        if (++n > max_events) {
            throw std::runtime_error(
                "EventQueue: exceeded max events; likely protocol "
                "deadlock/livelock");
        }
        // priority_queue::top() is const; move out via const_cast is the
        // standard idiom-free alternative: copy the callback.
        Item item = queue_.top();
        queue_.pop();
        now_ = item.when;
        ++processed_;
        item.cb();
    }
    return n;
}

void
EventQueue::reset()
{
    clearPending();
    now_ = 0;
}

void
EventQueue::clearPending()
{
    while (!queue_.empty())
        queue_.pop();
}

} // namespace mcversi::sim
