/** @file Unit tests for operation (gene) semantics. */

#include <gtest/gtest.h>

#include "gp/ops.hh"

using namespace mcversi::gp;

TEST(Ops, MemOpClassification)
{
    // Algorithm 1's is_memop: everything except Delay carries an
    // address attribute (CacheFlush accesses an address even though it
    // produces no events).
    EXPECT_TRUE(Op{OpKind::Read}.isMem());
    EXPECT_TRUE(Op{OpKind::ReadAddrDp}.isMem());
    EXPECT_TRUE(Op{OpKind::Write}.isMem());
    EXPECT_TRUE(Op{OpKind::ReadModifyWrite}.isMem());
    EXPECT_TRUE(Op{OpKind::CacheFlush}.isMem());
    EXPECT_FALSE(Op{OpKind::Delay}.isMem());
}

TEST(Ops, EventCounts)
{
    EXPECT_EQ(Op{OpKind::Read}.numEvents(), 1);
    EXPECT_EQ(Op{OpKind::ReadAddrDp}.numEvents(), 1);
    EXPECT_EQ(Op{OpKind::Write}.numEvents(), 1);
    EXPECT_EQ(Op{OpKind::ReadModifyWrite}.numEvents(), 2);
    EXPECT_EQ(Op{OpKind::CacheFlush}.numEvents(), 0);
    EXPECT_EQ(Op{OpKind::Delay}.numEvents(), 0);
}

TEST(Ops, Names)
{
    EXPECT_STREQ(opKindName(OpKind::Read), "Read");
    EXPECT_STREQ(opKindName(OpKind::ReadModifyWrite), "ReadModifyWrite");
    EXPECT_STREQ(opKindName(OpKind::Delay), "Delay");
}

TEST(Ops, Equality)
{
    Op a{OpKind::Read, 0x40, 8};
    Op b{OpKind::Read, 0x40, 8};
    Op c{OpKind::Read, 0x80, 8};
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    Node n1{2, a};
    Node n2{2, b};
    Node n3{3, a};
    EXPECT_EQ(n1, n2);
    EXPECT_NE(n1, n3);
}

TEST(Ops, ToStringContainsAddr)
{
    Op op{OpKind::Write, 0xf0, 0};
    const std::string s = op.toString();
    EXPECT_NE(s.find("Write"), std::string::npos);
    EXPECT_NE(s.find("f0"), std::string::npos);
    EXPECT_EQ(Op{OpKind::Delay}.toString(), "Delay");
}
