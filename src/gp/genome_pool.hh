/**
 * @file
 * Slab-backed arena for fixed-length genomes.
 *
 * Every test the EvolutionEngine carries -- population members, pending
 * offspring, migration copies -- is a fixed-length gene sequence of
 * testSize Nodes. Instead of one heap-allocated std::vector<Node> per
 * individual (the SteadyStateGa representation), the pool hands out
 * slots inside large slabs: a slot is a span into stable storage, freed
 * slots are recycled through a free list, and after the population
 * warms up the engine performs no genome allocation at all. Slabs are
 * never deallocated or moved, so spans stay valid for the life of the
 * pool.
 */

#ifndef MCVERSI_GP_GENOME_POOL_HH
#define MCVERSI_GP_GENOME_POOL_HH

#include <cassert>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "gp/ops.hh"

namespace mcversi::gp {

/** Arena of fixed-length genome slots with slab storage. */
class GenomePool
{
  public:
    /** Slot handle; dense, recycled through the free list. */
    using Slot = std::uint32_t;

    /**
     * @param genome_size genes per slot (the engine's testSize)
     * @param slab_genomes slots allocated per slab
     */
    explicit GenomePool(std::size_t genome_size,
                        std::size_t slab_genomes = 64)
        : genomeSize_(genome_size > 0 ? genome_size : 1),
          slabGenomes_(slab_genomes > 0 ? slab_genomes : 1)
    {
    }

    /** Take a free slot, growing by one slab if none is free. */
    Slot
    acquire()
    {
        if (freeList_.empty())
            addSlab();
        const Slot slot = freeList_.back();
        freeList_.pop_back();
        ++live_;
        return slot;
    }

    /** Return @p slot to the free list (contents become unspecified). */
    void
    release(Slot slot)
    {
        assert(live_ > 0);
        --live_;
        freeList_.push_back(slot);
    }

    std::span<Node>
    nodes(Slot slot)
    {
        return {slabs_[slot / slabGenomes_].get() +
                    (slot % slabGenomes_) * genomeSize_,
                genomeSize_};
    }

    std::span<const Node>
    nodes(Slot slot) const
    {
        return {slabs_[slot / slabGenomes_].get() +
                    (slot % slabGenomes_) * genomeSize_,
                genomeSize_};
    }

    std::size_t genomeSize() const { return genomeSize_; }
    std::size_t liveGenomes() const { return live_; }
    /** Slabs allocated so far; flat after warmup. */
    std::size_t slabCount() const { return slabs_.size(); }

  private:
    void
    addSlab()
    {
        slabs_.push_back(
            std::make_unique<Node[]>(slabGenomes_ * genomeSize_));
        const auto base =
            static_cast<Slot>((slabs_.size() - 1) * slabGenomes_);
        // Push in reverse so acquire() hands out ascending slots.
        for (std::size_t i = slabGenomes_; i-- > 0;)
            freeList_.push_back(base + static_cast<Slot>(i));
    }

    std::size_t genomeSize_;
    std::size_t slabGenomes_;
    std::vector<std::unique_ptr<Node[]>> slabs_;
    std::vector<Slot> freeList_;
    std::size_t live_ = 0;
};

} // namespace mcversi::gp

#endif // MCVERSI_GP_GENOME_POOL_HH
