/**
 * @file
 * Load-queue squash discipline tests (the rules DESIGN.md §4 fixes):
 * targeted squash on invalidation, address-dependent cascade, the
 * oldest-load exception, and the RMW fence full squash.
 */

#include <gtest/gtest.h>

#include "host/harness.hh"
#include "host/workload.hh"
#include "gp/randgen.hh"

using namespace mcversi;
using namespace mcversi::host;

namespace {

/** Fuzz one config and count squashes + verify no violation. */
std::uint64_t
fuzzSquashes(sim::Protocol protocol, std::uint64_t seed,
             std::uint64_t runs)
{
    VerificationHarness::Params params;
    params.system.protocol = protocol;
    params.system.seed = seed;
    params.gen.testSize = 128;
    params.gen.iterations = 3;
    params.gen.memSize = 8 * 1024;
    params.workload.iterations = 3;
    RandomSource source(params.gen, seed);
    VerificationHarness harness(params, source);
    Budget budget;
    budget.maxTestRuns = runs;
    HarnessResult result = harness.run(budget);
    EXPECT_FALSE(result.bugFound) << result.detail;
    std::uint64_t squashes = 0;
    for (Pid p = 0;
         p < static_cast<Pid>(harness.system().numCores()); ++p) {
        squashes += harness.system().core(p).squashes();
    }
    return squashes;
}

} // namespace

TEST(Squash, InvalidationsDoTriggerReplays)
{
    // With 8KB conflicting tests, some loads must get squashed --
    // otherwise the protection machinery is dead and the clean runs
    // prove nothing.
    EXPECT_GT(fuzzSquashes(sim::Protocol::Mesi, 11, 40), 0u);
}

TEST(Squash, TsoccAlsoReplays)
{
    EXPECT_GT(fuzzSquashes(sim::Protocol::Tsocc, 12, 40), 0u);
}

TEST(Squash, TargetedSquashKeepsThroughputSane)
{
    // The targeted discipline must not replay every load several
    // times: across a fuzz run, squashes stay well below the total
    // loads executed.
    VerificationHarness::Params params;
    params.system.seed = 13;
    params.gen.testSize = 128;
    params.gen.iterations = 3;
    params.gen.memSize = 8 * 1024;
    params.workload.iterations = 3;
    RandomSource source(params.gen, 13);
    VerificationHarness harness(params, source);
    Budget budget;
    budget.maxTestRuns = 40;
    harness.run(budget);
    std::uint64_t squashes = 0;
    std::uint64_t loads = 0;
    for (Pid p = 0; p < 8; ++p) {
        squashes += harness.system().core(p).squashes();
        loads += harness.system().core(p).loadsExecuted();
    }
    EXPECT_LT(squashes, loads)
        << "collateral squash storm: discipline regressed";
}

TEST(Squash, LqNoTsoBugDisablesReplays)
{
    // With the LQ bug, invalidations are ignored: violations happen
    // (found quickly) and the squash count from invalidations drops.
    VerificationHarness::Params params;
    params.system.seed = 14;
    params.system.bug = sim::BugId::LqNoTso;
    params.gen.testSize = 128;
    params.gen.iterations = 4;
    params.gen.memSize = 1024;
    params.workload.iterations = 4;
    RandomSource source(params.gen, 14);
    VerificationHarness harness(params, source);
    Budget budget;
    budget.maxTestRuns = 500;
    HarnessResult result = harness.run(budget);
    EXPECT_TRUE(result.bugFound);
}
