#include "fleet/fs.hh"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

namespace mcversi::fleet {

namespace {

void
setErr(std::string *err, const std::string &what)
{
    if (err != nullptr)
        *err = what + ": " + std::strerror(errno);
}

/** Write the whole buffer, retrying on short writes and EINTR. */
bool
writeAll(int fd, const char *data, std::size_t size)
{
    std::size_t written = 0;
    while (written < size) {
        const ssize_t n = ::write(fd, data + written, size - written);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        written += static_cast<std::size_t>(n);
    }
    return true;
}

std::string
dirnameOf(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    if (slash == std::string::npos)
        return ".";
    if (slash == 0)
        return "/";
    return path.substr(0, slash);
}

} // namespace

bool
writeFileAtomic(const std::string &path, const std::string &content,
                std::string *err)
{
    const std::string tmp = path + ".tmp";
    const int fd =
        ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
        setErr(err, "cannot create " + tmp);
        return false;
    }
    if (!writeAll(fd, content.data(), content.size())) {
        setErr(err, "cannot write " + tmp);
        ::close(fd);
        ::unlink(tmp.c_str());
        return false;
    }
    if (::fsync(fd) != 0) {
        setErr(err, "cannot fsync " + tmp);
        ::close(fd);
        ::unlink(tmp.c_str());
        return false;
    }
    if (::close(fd) != 0) {
        setErr(err, "cannot close " + tmp);
        ::unlink(tmp.c_str());
        return false;
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        setErr(err, "cannot rename " + tmp + " to " + path);
        ::unlink(tmp.c_str());
        return false;
    }
    // Make the rename durable: fsync the containing directory. Failure
    // here is not fatal for correctness (the file content is already
    // safe), so it is deliberately ignored on filesystems that reject
    // directory fsync.
    const int dirfd =
        ::open(dirnameOf(path).c_str(), O_RDONLY | O_DIRECTORY);
    if (dirfd >= 0) {
        ::fsync(dirfd);
        ::close(dirfd);
    }
    return true;
}

bool
ensureDir(const std::string &path, std::string *err)
{
    if (path.empty()) {
        if (err != nullptr)
            *err = "empty directory path";
        return false;
    }
    std::string prefix;
    prefix.reserve(path.size());
    std::size_t pos = 0;
    while (pos <= path.size()) {
        const std::size_t slash = path.find('/', pos);
        const std::size_t end =
            slash == std::string::npos ? path.size() : slash;
        prefix.assign(path, 0, end);
        pos = end + 1;
        if (prefix.empty() || prefix == ".")
            continue;
        if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
            setErr(err, "cannot mkdir " + prefix);
            return false;
        }
        if (slash == std::string::npos)
            break;
    }
    struct stat st{};
    if (::stat(path.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
        if (err != nullptr)
            *err = path + " exists but is not a directory";
        return false;
    }
    return true;
}

bool
nonEmptyFileExists(const std::string &path)
{
    struct stat st{};
    return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode) &&
           st.st_size > 0;
}

std::uint64_t
fileSize(const std::string &path)
{
    struct stat st{};
    if (::stat(path.c_str(), &st) != 0)
        return 0;
    return static_cast<std::uint64_t>(st.st_size);
}

std::string
readFileRange(const std::string &path, std::uint64_t offset,
              std::size_t max_bytes)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return {};
    std::string out;
    if (::lseek(fd, static_cast<off_t>(offset), SEEK_SET) >= 0) {
        out.resize(max_bytes);
        std::size_t got = 0;
        while (got < max_bytes) {
            const ssize_t n =
                ::read(fd, out.data() + got, max_bytes - got);
            if (n < 0 && errno == EINTR)
                continue;
            if (n <= 0)
                break;
            got += static_cast<std::size_t>(n);
        }
        out.resize(got);
    }
    ::close(fd);
    return out;
}

bool
readFile(const std::string &path, std::string &out, std::string *err)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        setErr(err, "cannot open " + path);
        return false;
    }
    out.clear();
    char buf[1 << 16];
    for (;;) {
        const ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0) {
            setErr(err, "cannot read " + path);
            ::close(fd);
            return false;
        }
        if (n == 0)
            break;
        out.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return true;
}

} // namespace mcversi::fleet
