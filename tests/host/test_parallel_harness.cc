/**
 * @file
 * ParallelHarness tests: worker-count byte-determinism, serial-harness
 * equivalence in the degenerate configuration, budget handling, lane
 * sharding, and bug-stop batch semantics.
 */

#include <gtest/gtest.h>

#include "common/strict.hh"
#include "host/harness.hh"
#include "host/parallel_harness.hh"

using namespace mcversi;
using namespace mcversi::host;

namespace {

VerificationHarness::Params
smallParams(sim::BugId bug = sim::BugId::None, std::uint64_t seed = 5)
{
    VerificationHarness::Params p;
    p.system.bug = bug;
    p.system.seed = seed;
    p.gen.testSize = 64;
    p.gen.iterations = 2;
    p.gen.memSize = 1024;
    p.workload.iterations = 2;
    return p;
}

gp::GaParams
smallGa()
{
    gp::GaParams ga;
    ga.population = 8;
    return ga;
}

/** Timing-free comparison of two harness results. */
void
expectSameResult(const HarnessResult &a, const HarnessResult &b)
{
    EXPECT_EQ(a.bugFound, b.bugFound);
    EXPECT_EQ(a.detail, b.detail);
    EXPECT_EQ(a.testRuns, b.testRuns);
    EXPECT_EQ(a.testRunsToBug, b.testRunsToBug);
    EXPECT_EQ(a.simTicks, b.simTicks);
    EXPECT_EQ(a.eventsExecuted, b.eventsExecuted);
    EXPECT_EQ(a.simEvents, b.simEvents);
    EXPECT_EQ(a.messagesSent, b.messagesSent);
    EXPECT_EQ(a.ndtHistory, b.ndtHistory);
    EXPECT_EQ(a.totalCoverage, b.totalCoverage);
    EXPECT_EQ(a.meanFitness, b.meanFitness);
    EXPECT_EQ(a.fitnessTrajectory, b.fitnessTrajectory);
    // Collective-checking telemetry is per-lane, so it too must be
    // byte-identical for any worker count.
    EXPECT_EQ(a.checkCacheHits, b.checkCacheHits);
    EXPECT_EQ(a.checkCacheMisses, b.checkCacheMisses);
    EXPECT_EQ(a.distinctInterleavings, b.distinctInterleavings);
}

HarnessResult
runGaCampaign(std::size_t islands, std::size_t batch, int threads,
              std::uint64_t budget_runs = 48)
{
    auto params = smallParams();
    gp::EvolutionParams evo;
    evo.islands = islands;
    evo.migrationInterval = 16;
    GaSource source(smallGa(), params.gen, 7, gp::XoMode::Selective,
                    evo);
    ParallelHarness::Params pp;
    pp.harness = params;
    pp.lanes = islands;
    pp.batch = batch;
    pp.threads = threads;
    ParallelHarness harness(pp, source);
    Budget budget;
    budget.maxTestRuns = budget_runs;
    return harness.run(budget);
}

} // namespace

TEST(ParallelHarness, WorkerCountDoesNotChangeTheResult)
{
    const HarnessResult t1 = runGaCampaign(4, 8, 1);
    const HarnessResult t8 = runGaCampaign(4, 8, 8);
    expectSameResult(t1, t8);
    EXPECT_EQ(t1.testRuns, 48u);
    EXPECT_GT(t1.totalCoverage, 0.0);
    EXPECT_GT(t1.meanFitness, 0.0);
    // The default-on verdict caches feed the summed telemetry.
    EXPECT_GT(t1.checkCacheHits + t1.checkCacheMisses, 0u);
    EXPECT_GT(t1.distinctInterleavings, 0u);
    // One trajectory sample per batch barrier.
    EXPECT_EQ(t1.fitnessTrajectory.size(), 48u / 8u);
}

TEST(ParallelHarness, DegenerateConfigMatchesSerialHarness)
{
    // lanes=1, batch=1: same systems, same source decisions, same
    // fitness-state updates as the serial VerificationHarness.
    auto params = smallParams();
    gp::EvolutionParams evo;
    GaSource serial_source(smallGa(), params.gen, 7,
                           gp::XoMode::Selective, evo);
    VerificationHarness serial(params, serial_source);
    Budget budget;
    budget.maxTestRuns = 24;
    const HarnessResult a = serial.run(budget);

    GaSource batch_source(smallGa(), params.gen, 7,
                          gp::XoMode::Selective, evo);
    ParallelHarness::Params pp;
    pp.harness = params;
    pp.lanes = 1;
    pp.batch = 1;
    pp.threads = 1;
    ParallelHarness parallel(pp, batch_source);
    const HarnessResult b = parallel.run(budget);

    EXPECT_EQ(a.testRuns, b.testRuns);
    EXPECT_EQ(a.simTicks, b.simTicks);
    EXPECT_EQ(a.eventsExecuted, b.eventsExecuted);
    EXPECT_EQ(a.simEvents, b.simEvents);
    EXPECT_EQ(a.ndtHistory, b.ndtHistory);
    EXPECT_EQ(a.totalCoverage, b.totalCoverage);
    EXPECT_EQ(a.meanFitness, b.meanFitness);
}

TEST(ParallelHarness, BudgetClampsTheFinalBatch)
{
    // 20 runs with batch 8: batches of 8, 8, 4.
    const HarnessResult r = runGaCampaign(4, 8, 2, 20);
    EXPECT_EQ(r.testRuns, 20u);
    EXPECT_EQ(r.fitnessTrajectory.size(), 3u);
}

TEST(ParallelHarness, RandomSourceBatchesDeterministically)
{
    auto params = smallParams();
    auto run = [&](int threads) {
        RandomSource source(params.gen, 3);
        ParallelHarness::Params pp;
        pp.harness = params;
        pp.lanes = 4;
        pp.batch = 8;
        pp.threads = threads;
        ParallelHarness harness(pp, source);
        Budget budget;
        budget.maxTestRuns = 32;
        return harness.run(budget);
    };
    const HarnessResult t1 = run(1);
    const HarnessResult t4 = run(4);
    expectSameResult(t1, t4);
    EXPECT_EQ(t1.testRuns, 32u);
    // Random sources carry no population fitness.
    EXPECT_EQ(t1.meanFitness, 0.0);
    EXPECT_TRUE(t1.fitnessTrajectory.empty());
}

TEST(ParallelHarness, LaneIslandMismatchThrowsInStrictBuilds)
{
    if (!strictApiChecks())
        GTEST_SKIP() << "release build: contract checks are relaxed";

    auto params = smallParams();
    gp::EvolutionParams evo;
    evo.islands = 4;
    GaSource source(smallGa(), params.gen, 1, gp::XoMode::Selective,
                    evo);
    ParallelHarness::Params pp;
    pp.harness = params;
    pp.lanes = 2; // != the source's 4 islands
    EXPECT_THROW((ParallelHarness{pp, source}), std::logic_error);
    pp.lanes = 4;
    EXPECT_NO_THROW((ParallelHarness{pp, source}));
}

TEST(ParallelHarness, FindsInjectedBugDeterministically)
{
    auto params = smallParams(sim::BugId::LqNoTso, 2);
    params.gen.testSize = 96;
    params.gen.iterations = 3;
    params.workload.iterations = 3;
    auto run = [&](int threads) {
        RandomSource source(params.gen, 2);
        ParallelHarness::Params pp;
        pp.harness = params;
        pp.lanes = 2;
        pp.batch = 8;
        pp.threads = threads;
        ParallelHarness harness(pp, source);
        Budget budget;
        budget.maxTestRuns = 400;
        return harness.run(budget);
    };
    const HarnessResult t1 = run(1);
    const HarnessResult t3 = run(3);
    ASSERT_TRUE(t1.bugFound);
    expectSameResult(t1, t3);
    EXPECT_GT(t1.testRunsToBug, 0u);
    EXPECT_LE(t1.testRunsToBug, t1.testRuns);
    // Batch semantics: the bug batch is merged in full, so the run
    // count is the bug batch's end, at or past the bug slot.
    EXPECT_FALSE(t1.detail.empty());
}
