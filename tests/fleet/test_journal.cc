/**
 * @file
 * Journal robustness: the crash-safety contract of the fleet's
 * append-only result journal. A record is either fully durable or
 * detectably absent -- a torn final line (SIGKILL mid-write) is
 * dropped, a corrupt mid-file record is skipped with resync, and
 * valid records always survive their damaged neighbours.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <unistd.h>

#include "fleet/fs.hh"
#include "fleet/journal.hh"

using namespace mcversi::fleet;

namespace {

std::string
tempPath(const char *stem)
{
    const char *dir = std::getenv("TMPDIR");
    std::string path = dir != nullptr ? dir : "/tmp";
    path += '/';
    path += stem;
    path += '.';
    path += std::to_string(static_cast<unsigned long>(::getpid()));
    return path;
}

} // namespace

TEST(Crc32, MatchesTheIeeeCheckValue)
{
    // The canonical CRC-32 check value ("123456789" -> 0xCBF43926).
    EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
    EXPECT_EQ(crc32(""), 0x00000000u);
}

TEST(Journal, RoundTripsRecordsInOrder)
{
    std::string content;
    content += journalLine("first payload");
    content += journalLine("second=2 with tokens");
    content += journalLine("");

    const JournalReadResult read = parseJournal(content);
    EXPECT_FALSE(read.droppedTornTail);
    EXPECT_EQ(read.corruptSkipped, 0u);
    ASSERT_EQ(read.payloads.size(), 3u);
    EXPECT_EQ(read.payloads[0], "first payload");
    EXPECT_EQ(read.payloads[1], "second=2 with tokens");
    EXPECT_EQ(read.payloads[2], "");
}

TEST(Journal, TruncatedLastRecordIsDroppedNotTrusted)
{
    std::string content;
    content += journalLine("complete record");
    const std::string torn = journalLine("record interrupted mid-write");
    // SIGKILL between write(2) and completion: any prefix may land.
    for (std::size_t cut = 1; cut < torn.size() - 1; cut += 7) {
        const JournalReadResult read =
            parseJournal(content + torn.substr(0, cut));
        EXPECT_TRUE(read.droppedTornTail) << "cut=" << cut;
        ASSERT_EQ(read.payloads.size(), 1u) << "cut=" << cut;
        EXPECT_EQ(read.payloads[0], "complete record");
    }
}

TEST(Journal, ChecksumCorruptionIsDetected)
{
    std::string good = journalLine("cell=1 spec=x runs=100");
    // Flip one payload byte without touching framing.
    std::string bad = good;
    bad[bad.size() - 5] ^= 0x01;

    // Corrupt final record: treated like a torn tail.
    const JournalReadResult tail = parseJournal(journalLine("ok") + bad);
    EXPECT_TRUE(tail.droppedTornTail);
    ASSERT_EQ(tail.payloads.size(), 1u);

    // Corrupt mid-file record: skipped with resync, the rest survives.
    const JournalReadResult mid =
        parseJournal(journalLine("before") + bad + journalLine("after"));
    EXPECT_EQ(mid.corruptSkipped, 1u);
    EXPECT_FALSE(mid.droppedTornTail);
    ASSERT_EQ(mid.payloads.size(), 2u);
    EXPECT_EQ(mid.payloads[0], "before");
    EXPECT_EQ(mid.payloads[1], "after");
}

TEST(Journal, GarbageLinesDoNotPoisonValidRecords)
{
    std::string content;
    content += "this is not a journal line\n";
    content += journalLine("valid");
    content += "MCVJ1 999999 deadbeef short\n";
    content += journalLine("also valid");
    const JournalReadResult read = parseJournal(content);
    EXPECT_EQ(read.corruptSkipped, 2u);
    ASSERT_EQ(read.payloads.size(), 2u);
    EXPECT_EQ(read.payloads[0], "valid");
    EXPECT_EQ(read.payloads[1], "also valid");
}

TEST(Journal, EmptyFileIsAValidEmptyJournal)
{
    const JournalReadResult read = parseJournal("");
    EXPECT_TRUE(read.payloads.empty());
    EXPECT_FALSE(read.droppedTornTail);
    EXPECT_EQ(read.corruptSkipped, 0u);
}

TEST(JournalWriter, AppendsAreDurableAndReadBack)
{
    const std::string path = tempPath("mcversi_journal_rw");
    std::remove(path.c_str());

    {
        JournalWriter writer;
        writer.open(path);
        writer.append("cell=0 spec=a");
        writer.append("cell=1 spec=b");
    }
    {
        // Re-open appends, never truncates.
        JournalWriter writer;
        writer.open(path);
        writer.append("cell=0 spec=a attempt=2");
    }

    const JournalReadResult read = readJournal(path);
    EXPECT_FALSE(read.droppedTornTail);
    ASSERT_EQ(read.payloads.size(), 3u);
    EXPECT_EQ(read.payloads[2], "cell=0 spec=a attempt=2");
    std::remove(path.c_str());
}

TEST(JournalWriter, RejectsPayloadsThatWouldBreakFraming)
{
    const std::string path = tempPath("mcversi_journal_nl");
    std::remove(path.c_str());
    JournalWriter writer;
    writer.open(path);
    EXPECT_THROW(writer.append("two\nlines"), std::runtime_error);
    writer.close();
    std::remove(path.c_str());
}

TEST(FsAtomic, WriteFileAtomicReplacesWholeFileOrNothing)
{
    const std::string path = tempPath("mcversi_atomic");
    std::string err;
    ASSERT_TRUE(writeFileAtomic(path, "version one", &err)) << err;
    ASSERT_TRUE(writeFileAtomic(path, "version two", &err)) << err;
    std::string content;
    ASSERT_TRUE(readFile(path, content));
    EXPECT_EQ(content, "version two");
    // No temp file left behind.
    EXPECT_FALSE(nonEmptyFileExists(path + ".tmp"));
    std::remove(path.c_str());

    // Unwritable target reports instead of crashing.
    EXPECT_FALSE(writeFileAtomic("/nonexistent-dir/x/y", "data", &err));
    EXPECT_FALSE(err.empty());
}
