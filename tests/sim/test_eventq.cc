/** @file Discrete-event kernel tests. */

#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "sim/eventq.hh"
#include "sim/message.hh"

using namespace mcversi::sim;
using mcversi::Tick;

TEST(EventQueue, OrdersByTick)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(10, [&]() { order.push_back(2); });
    eq.schedule(5, [&]() { order.push_back(1); });
    eq.schedule(20, [&]() { order.push_back(3); });
    eq.runUntilQuiescent();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 20u);
}

TEST(EventQueue, FifoWithinSameTick)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(7, [&order, i]() { order.push_back(i); });
    eq.runUntilQuiescent();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, NestedScheduling)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&]() {
        ++fired;
        eq.scheduleIn(5, [&]() { ++fired; });
    });
    EXPECT_EQ(eq.runUntilQuiescent(), 2u);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 6u);
}

TEST(EventQueue, PastTickClampedToNow)
{
    // Scheduling in the past hides protocol latency bugs: debug and
    // sanitizer builds make it a hard error, release builds keep the
    // historical clamp-to-now behavior.
    EventQueue eq;
    if (EventQueue::strictPastScheduling()) {
        bool threw = false;
        eq.schedule(10, [&]() {
            try {
                eq.schedule(3, []() {}); // in the past
            } catch (const std::logic_error &) {
                threw = true;
            }
        });
        eq.runUntilQuiescent();
        EXPECT_TRUE(threw);
    } else {
        Tick seen = 0;
        eq.schedule(10, [&]() {
            eq.schedule(3, [&]() { seen = eq.now(); }); // in the past
        });
        eq.runUntilQuiescent();
        EXPECT_EQ(seen, 10u);
    }
}

TEST(EventQueue, MaxEventsGuard)
{
    EventQueue eq;
    std::function<void()> loop = [&]() { eq.scheduleIn(1, loop); };
    eq.schedule(0, loop);
    EXPECT_THROW(eq.runUntilQuiescent(1000), std::runtime_error);
}

TEST(EventQueue, ResetClears)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(5, [&]() { ++fired; });
    eq.reset();
    EXPECT_TRUE(eq.empty());
    eq.runUntilQuiescent();
    EXPECT_EQ(fired, 0);
    EXPECT_EQ(eq.now(), 0u);
}

TEST(EventQueue, ProcessedCounter)
{
    EventQueue eq;
    for (int i = 0; i < 5; ++i)
        eq.schedule(static_cast<Tick>(i), []() {});
    eq.runUntilQuiescent();
    EXPECT_EQ(eq.processed(), 5u);
}

TEST(EventQueue, TypedFnEventCarriesArgs)
{
    EventQueue eq;
    std::uint64_t sum = 0;
    eq.scheduleFn(
        5,
        [](void *obj, std::uint64_t a, std::uint64_t b, std::uint64_t c,
           std::uint64_t d) {
            *static_cast<std::uint64_t *>(obj) = a + b + c + d;
        },
        &sum, 1, 2, 3, 4);
    eq.runUntilQuiescent();
    EXPECT_EQ(sum, 10u);
    EXPECT_EQ(eq.now(), 5u);
}

/**
 * Same-tick insertion-order golden: a fixed schedule pattern mixing
 * near (wheel), far (overflow) and same-tick nested insertions must
 * fire in exactly (tick, insertion-seq) order -- the determinism
 * contract every witness golden builds on.
 */
TEST(EventQueue, SameTickInsertionOrderGolden)
{
    EventQueue eq;
    std::vector<int> order;
    auto mark = [&order](int id) { return [&order, id]() { order.push_back(id); }; };

    // Far-future first (overflow path), interleaved with near ticks,
    // with several events sharing each tick in scrambled insert order.
    eq.schedule(1000, mark(0)); // overflow
    eq.schedule(7, mark(1));
    eq.schedule(1000, mark(2)); // overflow, same far tick
    eq.schedule(7, mark(3));
    eq.schedule(300, mark(4));  // overflow (>= wheel horizon)
    eq.schedule(0, mark(5));
    eq.schedule(7, [&eq, &order]() {
        order.push_back(6);
        // Nested same-tick: must run this tick, after already-queued
        // tick-7 events.
        eq.scheduleIn(0, [&order]() { order.push_back(7); });
        // Nested far: crosses the wheel horizon from tick 7.
        eq.schedule(1000, [&order]() { order.push_back(8); });
    });
    eq.schedule(300, mark(9));

    eq.runUntilQuiescent();

    const std::vector<int> golden{5, 1, 3, 6, 7, 4, 9, 0, 2, 8};
    EXPECT_EQ(order, golden);
    EXPECT_EQ(eq.now(), 1000u);
}

TEST(EventQueue, SeqMonotonicityAcrossReset)
{
    // Determinism relies on the insertion sequence being monotonic,
    // never on its absolute value: reset() deliberately does not
    // rewind the counter, and same-tick ordering after a reset is
    // still pure insertion order.
    EventQueue eq;
    for (int i = 0; i < 100; ++i)
        eq.schedule(static_cast<Tick>(i % 3), []() {});
    eq.runUntilQuiescent();
    eq.reset();
    EXPECT_EQ(eq.now(), 0u);

    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(4, [&order, i]() { order.push_back(i); });
    eq.runUntilQuiescent();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, ClearPendingReclaimsPooledPayloads)
{
    // Dropped Deliver/NetSend events must return their messages to the
    // pool (the livelock watchdog clears mid-flight state every time
    // it fires); repeated clear cycles must not grow the pool.
    EventQueue eq;

    struct Sink : MsgHandler
    {
        void handleMsg(const Msg &) override {}
    } sink;

    for (int round = 0; round < 50; ++round) {
        for (int i = 0; i < 20; ++i)
            eq.scheduleDeliver(static_cast<Tick>(eq.now() + 5), &sink,
                               eq.msgPool().acquire());
        eq.clearPending();
        EXPECT_TRUE(eq.empty());
    }
    // One slab (64 messages) covers the 20 in flight; reclamation
    // keeps it that way across 50 clear cycles.
    EXPECT_EQ(eq.msgPool().slabsAllocated(), 1u);

    // And clearing must not disturb time or subsequent scheduling.
    int fired = 0;
    eq.schedule(eq.now() + 3, [&]() { ++fired; });
    eq.runUntilQuiescent();
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, SteadyStateSchedulingIsAllocationFree)
{
    // Mirrors PR 3's frMaterializations() instrumentation approach:
    // after a warmup round sizes the wheel buckets, thunk slots and
    // message pool, further schedule/dispatch cycles -- including
    // overflow ticks and pooled deliveries -- must not grow any
    // kernel-internal structure.
    EventQueue eq;

    struct Sink : MsgHandler
    {
        void handleMsg(const Msg &) override {}
    } sink;

    auto spin = [&eq, &sink]() {
        // Phase-align: identical tick patterns hit identical buckets,
        // the steady state a test-iteration loop reaches.
        eq.reset();
        for (int round = 0; round < 40; ++round) {
            for (std::uint64_t i = 0; i < 32; ++i) {
                eq.scheduleFnIn(
                    i % 97,
                    [](void *, std::uint64_t, std::uint64_t,
                       std::uint64_t, std::uint64_t) {},
                    nullptr);
            }
            for (std::uint64_t i = 0; i < 8; ++i)
                eq.scheduleDeliver(eq.now() + 300 + i, &sink,
                                   eq.msgPool().acquire());
            eq.runUntilQuiescent();
        }
    };

    spin(); // Warmup: capacities grow here.
    const std::uint64_t baseline = eq.structuralAllocations();
    spin();
    EXPECT_EQ(eq.structuralAllocations(), baseline)
        << "steady-state scheduling grew a kernel structure";
}
