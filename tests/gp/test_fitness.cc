/** @file Adaptive coverage fitness (§3.2) unit tests. */

#include <gtest/gtest.h>

#include "gp/fitness.hh"

using namespace mcversi::gp;

TEST(Fitness, BasicFraction)
{
    AdaptiveCoverageFitness fit({4, 0.02, 50});
    // 4 transitions, all counts below cut-off, 2 covered => 0.5.
    std::vector<std::uint64_t> pre{0, 1, 2, 3};
    std::vector<std::uint32_t> covered{0, 2};
    EXPECT_DOUBLE_EQ(fit.evaluate(pre, covered), 0.5);
}

TEST(Fitness, FrequentTransitionsExcluded)
{
    AdaptiveCoverageFitness fit({4, 0.02, 50});
    // Counts >= cutoff are excluded from both numerator and
    // denominator.
    std::vector<std::uint64_t> pre{100, 200, 1, 0};
    std::vector<std::uint32_t> covered{0, 1, 2};
    EXPECT_DOUBLE_EQ(fit.evaluate(pre, covered), 0.5); // 1 of {2,3}
}

TEST(Fitness, AllFrequentGivesZero)
{
    AdaptiveCoverageFitness fit({2, 0.02, 50});
    std::vector<std::uint64_t> pre{10, 10};
    std::vector<std::uint32_t> covered{0, 1};
    EXPECT_DOUBLE_EQ(fit.evaluate(pre, covered), 0.0);
}

TEST(Fitness, CutoffDoublesAfterStall)
{
    AdaptiveCoverageFitness::Params p;
    p.initialCutoff = 4;
    p.stallThreshold = 0.5;
    p.stallWindow = 3;
    AdaptiveCoverageFitness fit(p);
    std::vector<std::uint64_t> pre{0, 0};
    std::vector<std::uint32_t> none;
    EXPECT_EQ(fit.cutoff(), 4u);
    fit.evaluate(pre, none);
    fit.evaluate(pre, none);
    EXPECT_EQ(fit.cutoff(), 4u);
    fit.evaluate(pre, none);
    EXPECT_EQ(fit.cutoff(), 8u) << "exponential increase after window";
    // Stall counter resets after doubling.
    fit.evaluate(pre, none);
    EXPECT_EQ(fit.cutoff(), 8u);
}

TEST(Fitness, GoodRunResetsStall)
{
    AdaptiveCoverageFitness::Params p;
    p.initialCutoff = 4;
    p.stallThreshold = 0.5;
    p.stallWindow = 2;
    AdaptiveCoverageFitness fit(p);
    std::vector<std::uint64_t> pre{0, 0};
    fit.evaluate(pre, {});
    // High-fitness run resets the stall counter.
    fit.evaluate(pre, {0, 1});
    fit.evaluate(pre, {});
    EXPECT_EQ(fit.cutoff(), 4u);
    fit.evaluate(pre, {});
    EXPECT_EQ(fit.cutoff(), 8u);
}

TEST(Fitness, EmptyTransitionTable)
{
    AdaptiveCoverageFitness fit;
    EXPECT_DOUBLE_EQ(fit.evaluate({}, {}), 0.0);
}

TEST(Fitness, NormalizedNdtMonotone)
{
    EXPECT_DOUBLE_EQ(normalizedNdt(0.0), 0.0);
    EXPECT_DOUBLE_EQ(normalizedNdt(1.0), 0.5);
    EXPECT_GT(normalizedNdt(3.0), normalizedNdt(2.0));
    EXPECT_LT(normalizedNdt(100.0), 1.0);
}

TEST(Fitness, InterleavingSignalBlend)
{
    AdaptiveCoverageFitness::Params p;
    p.interleavingWeight = 0.25;
    AdaptiveCoverageFitness fit(p);
    std::vector<std::uint64_t> pre{0, 1, 2, 3};
    std::vector<std::uint32_t> covered{0, 2};
    // coverage = 0.5; 3 new classes => saturating term 3/4.
    EXPECT_DOUBLE_EQ(fit.score(pre, covered, 3),
                     0.75 * 0.5 + 0.25 * 0.75);
    // No new classes: the signal term vanishes but keeps its weight.
    EXPECT_DOUBLE_EQ(fit.score(pre, covered, 0), 0.75 * 0.5);
    // The blend stays within [0, 1] even as the signal saturates.
    EXPECT_LE(fit.score(pre, covered, 1u << 30), 1.0);
}

TEST(Fitness, InterleavingSignalOffByDefault)
{
    // Default weight 0: the signal is ignored entirely, so campaigns
    // score identically whether or not the verdict cache feeds it.
    AdaptiveCoverageFitness fit({4, 0.02, 50});
    std::vector<std::uint64_t> pre{0, 1, 2, 3};
    std::vector<std::uint32_t> covered{0, 2};
    EXPECT_DOUBLE_EQ(fit.score(pre, covered, 1000),
                     fit.score(pre, covered, 0));
    EXPECT_DOUBLE_EQ(fit.evaluate(pre, covered, 1000), 0.5);
}
