/** @file Bug registry tests (the 11 studied bugs of §5.3). */

#include <gtest/gtest.h>

#include "sim/bugs.hh"

using namespace mcversi::sim;

TEST(Bugs, ExactlyElevenStudiedBugs)
{
    EXPECT_EQ(allBugs().size(), 11u);
}

TEST(Bugs, PaperNamesResolve)
{
    EXPECT_EQ(bugByName("MESI,LQ+IS,Inv"), BugId::MesiLqIsInv);
    EXPECT_EQ(bugByName("MESI,LQ+SM,Inv"), BugId::MesiLqSmInv);
    EXPECT_EQ(bugByName("MESI,LQ+E,Inv"), BugId::MesiLqEInv);
    EXPECT_EQ(bugByName("MESI,LQ+M,Inv"), BugId::MesiLqMInv);
    EXPECT_EQ(bugByName("MESI,LQ+S,Replacement"),
              BugId::MesiLqSReplacement);
    EXPECT_EQ(bugByName("MESI+PUTX-Race"), BugId::MesiPutxRace);
    EXPECT_EQ(bugByName("MESI+Replace-Race"), BugId::MesiReplaceRace);
    EXPECT_EQ(bugByName("TSO-CC+no-epoch-ids"), BugId::TsoccNoEpochIds);
    EXPECT_EQ(bugByName("TSO-CC+compare"), BugId::TsoccCompare);
    EXPECT_EQ(bugByName("LQ+no-TSO"), BugId::LqNoTso);
    EXPECT_EQ(bugByName("SQ+no-FIFO"), BugId::SqNoFifo);
    EXPECT_EQ(bugByName("bogus"), BugId::None);
}

TEST(Bugs, NameLookupIsCaseInsensitive)
{
    EXPECT_EQ(bugByName("mesi,lq+is,inv"), BugId::MesiLqIsInv);
    EXPECT_EQ(bugByName("MESI,LQ+IS,INV"), BugId::MesiLqIsInv);
    EXPECT_EQ(bugByName("tso-cc+COMPARE"), BugId::TsoccCompare);
}

TEST(Bugs, FindBugByNameDistinguishesNoneFromUnknown)
{
    const BugInfo *none = findBugByName("none");
    ASSERT_NE(none, nullptr);
    EXPECT_EQ(none->id, BugId::None);
    const BugInfo *upper = findBugByName("NONE");
    ASSERT_NE(upper, nullptr);
    EXPECT_EQ(upper->id, BugId::None);

    EXPECT_EQ(findBugByName("bogus"), nullptr);
    EXPECT_EQ(findBugByName(""), nullptr);

    const BugInfo *real = findBugByName("MESI+PUTX-Race");
    ASSERT_NE(real, nullptr);
    EXPECT_EQ(real->id, BugId::MesiPutxRace);
}

TEST(Bugs, RealBugsMarked)
{
    // Bugs with "*" in the paper: IS, SM, PUTX-Race, LQ+no-TSO, and
    // the two new Gem5 bugs among them.
    EXPECT_TRUE(bugInfo(BugId::MesiLqIsInv).real);
    EXPECT_TRUE(bugInfo(BugId::MesiLqSmInv).real);
    EXPECT_TRUE(bugInfo(BugId::MesiPutxRace).real);
    EXPECT_TRUE(bugInfo(BugId::LqNoTso).real);
    EXPECT_FALSE(bugInfo(BugId::MesiLqEInv).real);
    EXPECT_FALSE(bugInfo(BugId::SqNoFifo).real);
}

TEST(Bugs, ProtocolAssignment)
{
    int mesi = 0;
    int tsocc = 0;
    int any = 0;
    for (const BugInfo &b : allBugs()) {
        switch (b.protocol) {
          case ProtocolKind::Mesi: ++mesi; break;
          case ProtocolKind::Tsocc: ++tsocc; break;
          case ProtocolKind::Any: ++any; break;
        }
    }
    EXPECT_EQ(mesi, 7);
    EXPECT_EQ(tsocc, 2);
    EXPECT_EQ(any, 2);
}

TEST(Bugs, NoneHasMetadata)
{
    const BugInfo &info = bugInfo(BugId::None);
    EXPECT_EQ(info.id, BugId::None);
    EXPECT_STREQ(info.name, "none");
}

TEST(Bugs, DescriptionsNonEmpty)
{
    for (const BugInfo &b : allBugs()) {
        EXPECT_NE(std::string(b.description), "");
        EXPECT_NE(std::string(b.name), "");
    }
}
