#include "sim/cache_array.hh"

namespace mcversi::sim {

CacheArray::CacheArray(int sets, int ways)
    : sets_(sets), ways_(ways),
      entries_(static_cast<std::size_t>(sets) *
               static_cast<std::size_t>(ways))
{
}

std::size_t
CacheArray::setIndex(Addr line) const
{
    return static_cast<std::size_t>((line / kLineBytes) %
                                    static_cast<Addr>(sets_));
}

CacheEntry *
CacheArray::find(Addr line)
{
    const std::size_t base = setIndex(line) *
                             static_cast<std::size_t>(ways_);
    for (int w = 0; w < ways_; ++w) {
        CacheEntry &e = entries_[base + static_cast<std::size_t>(w)];
        if (e.valid() && e.line == line)
            return &e;
    }
    return nullptr;
}

CacheEntry *
CacheArray::allocate(Addr line)
{
    const std::size_t base = setIndex(line) *
                             static_cast<std::size_t>(ways_);
    for (int w = 0; w < ways_; ++w) {
        CacheEntry &e = entries_[base + static_cast<std::size_t>(w)];
        if (!e.valid()) {
            e = CacheEntry{};
            e.line = line;
            return &e;
        }
    }
    return nullptr;
}

CacheEntry *
CacheArray::victim(Addr line,
                   const std::function<bool(const CacheEntry &)>
                       &evictable)
{
    const std::size_t base = setIndex(line) *
                             static_cast<std::size_t>(ways_);
    CacheEntry *best = nullptr;
    for (int w = 0; w < ways_; ++w) {
        CacheEntry &e = entries_[base + static_cast<std::size_t>(w)];
        if (!e.valid() || !evictable(e))
            continue;
        if (!best || e.lastUse < best->lastUse)
            best = &e;
    }
    return best;
}

void
CacheArray::free(CacheEntry &entry)
{
    entry = CacheEntry{};
}

void
CacheArray::reset()
{
    for (CacheEntry &e : entries_)
        e = CacheEntry{};
}

void
CacheArray::forEachValid(const std::function<void(CacheEntry &)> &fn)
{
    for (CacheEntry &e : entries_)
        if (e.valid())
            fn(e);
}

} // namespace mcversi::sim
